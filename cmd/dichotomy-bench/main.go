// Command dichotomy-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dichotomy-bench [-full] <experiment> [experiment...]
//	dichotomy-bench all
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 table4 table5 peak contention blockshape recovery
// sigverify authreads.
//
// contention sweeps closed-loop worker counts per system and reports
// throughput with tail latency — the lock-convoy diagnostic behind the
// shared internal/state layer.
//
// blockshape sweeps Fabric's block-processing pipeline shape — block
// size × validation workers × cross-block pipeline depth — against the
// serial baseline (workers=1, depth=1), measuring what the shared
// internal/pipeline layer recovers from the paper's validation
// bottleneck.
//
// peak is the open-loop latency-under-load sweep: it calibrates each
// system's closed-loop saturation throughput, then offers Poisson
// arrivals at fractions of that peak and reports delivered tps with
// service latency and queueing delay separated.
//
// recovery sweeps checkpoint mode (full vs delta) × interval × crash
// height on a durable Fabric network: each recovery restores the newest
// checkpoint chain at or below the crash height and replays the ledger
// tail through the live pipeline stages, reporting checkpoint bytes
// written, mean commit-path pause per checkpoint, replayed blocks,
// chain bytes read, and restore/replay time, with the recovered replica
// verified byte-identical to a healthy one.
//
// sigverify sweeps the endorsement-verification mode on Fabric's
// validate stage — serial per-signature checks vs batched verification
// with the verified-signature cache vs aggregate endorsements — and
// attributes the remaining crypto cost per committed transaction
// through the cryptoutil counters.
//
// authreads drives verifying light-client readers (VerifiedGet + local
// proof and root-signature checks) against Quorum's proof servers while
// Smallbank writers commit, sweeping reader count × proof-cache budget ×
// root publish interval, and reports writer throughput, proof latency,
// cache hit rate, and root staleness.
//
// chaos sweeps fault type × rate × system with seeded fault injection
// under open-loop load — scheduled node crashes with live recovery,
// transport drop/delay, engine write failures and fsync stalls, and
// clock-skewed commit timeouts — reporting throughput, shed/retry/error
// attribution, mean recovery time, and a zero-divergence verification of
// every replica after each row.
//
// -full approaches the paper's parameters (100K records, 10s windows,
// large sweeps); the default quick scale finishes the whole suite in
// minutes and preserves every qualitative shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dichotomy/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at (near-)paper scale; slow")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dichotomy-bench [-full] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: all fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 table4 table5 peak contention blockshape recovery sigverify authreads ingress chaos\n")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	sc := experiments.Quick()
	var (
		fs      = []int{1, 2}
		nodes   = []int{3, 7, 11}
		grid    = []int{1, 3, 5}
		thetas  = []float64{0, 0.6, 1.0}
		ops     = []int{1, 4, 10}
		sizes   = []int{10, 100, 1000, 5000}
		shards  = []int{1, 2, 4}
		fracs   = []float64{0.5, 0.9, 1.2}
		conc    = []int{1, 4, 16}
		bsizes  = []int{50, 200}
		vwork   = []int{1, 4}
		depths  = []int{1, 2}
		ckints  = []uint64{4, 16}
		ckmodes = []string{"full", "delta"}
		crashes = []float64{0.5, 1.0}
		vmodes  = []string{"serial", "batch", "aggregate"}
		mults   = []float64{1, 2, 4}
		cfaults = []string{"crash", "net", "engine", "skew"}
		crates  = []float64{0.05}
	)
	if *full {
		sc = experiments.Full()
		fs = []int{1, 2, 3, 4, 5, 6}
		nodes = []int{3, 7, 11, 15, 19}
		grid = []int{3, 7, 11, 15, 19}
		thetas = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
		ops = []int{1, 2, 4, 6, 8, 10}
		shards = []int{1, 2, 4, 8, 16}
		fracs = []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.2}
		conc = []int{1, 4, 16, 64}
		bsizes = []int{50, 100, 500, 1000}
		vwork = []int{1, 2, 4, 8}
		depths = []int{1, 2, 4}
		ckints = []uint64{2, 8, 32, 128}
		crashes = []float64{0.25, 0.5, 0.75, 1.0}
		mults = []float64{0.5, 1, 2, 4, 8}
		crates = []float64{0.02, 0.1}
	}

	runners := map[string]func(){
		"fig4":       func() { experiments.Fig4(os.Stdout, sc) },
		"fig5":       func() { experiments.Fig5(os.Stdout, sc) },
		"fig6":       func() { experiments.Fig6(os.Stdout, sc) },
		"fig7":       func() { experiments.Fig7(os.Stdout, sc, fs) },
		"fig8":       func() { experiments.Fig8(os.Stdout, sc) },
		"fig9":       func() { experiments.Fig9(os.Stdout, sc, thetas) },
		"fig10":      func() { experiments.Fig10(os.Stdout, sc, ops) },
		"fig11":      func() { experiments.Fig11(os.Stdout, sc, sizes) },
		"fig12":      func() { experiments.Fig12(os.Stdout, sc, sizes) },
		"fig13":      func() { experiments.Fig13(os.Stdout, sc, sizes) },
		"fig14":      func() { experiments.Fig14(os.Stdout, sc, shards) },
		"fig15":      func() { experiments.Fig15(os.Stdout, sc) },
		"table4":     func() { experiments.Table4(os.Stdout, sc, nodes) },
		"table5":     func() { experiments.Table5(os.Stdout, sc, grid) },
		"peak":       func() { experiments.Peak(os.Stdout, sc, fracs) },
		"contention": func() { experiments.Contention(os.Stdout, sc, conc) },
		"blockshape": func() { experiments.BlockShape(os.Stdout, sc, bsizes, vwork, depths) },
		"recovery":   func() { experiments.Recovery(os.Stdout, sc, ckmodes, ckints, crashes) },
		"sigverify":  func() { experiments.SigVerify(os.Stdout, sc, vmodes) },
		"authreads":  func() { experiments.AuthReads(os.Stdout, sc) },
		"ingress":    func() { experiments.Ingress(os.Stdout, sc, mults) },
		"chaos":      func() { experiments.Chaos(os.Stdout, sc, cfaults, crates) },
	}
	order := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "table4", "table5",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "peak",
		"contention", "blockshape", "recovery", "sigverify", "authreads", "ingress",
		"chaos"}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	start := time.Now()
	for _, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		run()
	}
	fmt.Printf("\ncompleted %d experiment(s) in %v\n", len(args), time.Since(start).Round(time.Millisecond))
}
