// Command dichotomy-lint is the repo's analyzer suite, runnable two
// ways that share one code path:
//
//	go vet -vettool=$(which dichotomy-lint) ./...   # as a vet tool
//	dichotomy-lint ./...                            # standalone
//
// Standalone mode re-execs `go vet -vettool=<self>` so cmd/go does the
// package loading, export data, and caching; the binary itself only
// implements the unitchecker protocol over the stdlib go/* packages.
package main

import (
	"dichotomy/internal/analysis/blockingsend"
	"dichotomy/internal/analysis/errshadow"
	"dichotomy/internal/analysis/gatediscipline"
	"dichotomy/internal/analysis/nopanic"
	"dichotomy/internal/analysis/sleepyloop"
	"dichotomy/internal/analysis/unit"
)

func main() {
	unit.Main(
		nopanic.Analyzer,
		blockingsend.Analyzer,
		gatediscipline.Analyzer,
		sleepyloop.Analyzer,
		errshadow.Analyzer,
	)
}
