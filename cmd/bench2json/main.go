// Command bench2json converts `go test -bench` output on stdin into the
// BENCH_ci.json trajectory format on stdout: a JSON object mapping each
// benchmark name to its iteration count and reported metrics (ns/op,
// tps, B/op, allocs/op, and any custom ReportMetric units). CI runs the
// smoke benchmarks through it — with -benchmem, so the B/op and
// allocs/op columns land in every entry and the trajectory catches
// allocation regressions, not just time ones — and uploads the result
// as an artifact, so the repository accumulates a perf trajectory over
// time instead of throwing benchmark output away in the job log.
//
//	go test -run '^$' -bench 'Recovery|StateScaling|BlockShape' -benchmem . | go run ./cmd/bench2json > BENCH_ci.json
//
// Lines that are not benchmark results (experiment tables, PASS/ok) are
// ignored. A benchmark that appears more than once keeps its last result.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the BENCH_ci.json document shape.
type Output struct {
	// Go is the toolchain that produced the run (from `go version`-style
	// env, best effort).
	Go string `json:"go,omitempty"`
	// Benchmarks maps benchmark name (with -cpu suffix stripped) to its
	// last parsed result.
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := Output{Go: os.Getenv("BENCH_GO_VERSION"), Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if ok {
			out.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: read: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: write: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkFoo/sub=1-8   123   456789 ns/op   12.3 tps   64 B/op
//
// i.e. name, iterations, then value-unit pairs.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix (-8) so trajectories compare across
	// runner shapes.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	res := Result{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return "", Result{}, false
	}
	return name, res, true
}
