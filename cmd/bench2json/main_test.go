package main

import "testing"

func TestParseLine(t *testing.T) {
	name, res, ok := parseLine("BenchmarkStateScaling/striped/workers=4-8  \t 1250\t    912345 ns/op\t  42.5 tps")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "BenchmarkStateScaling/striped/workers=4" {
		t.Fatalf("name %q (cpu suffix not stripped?)", name)
	}
	if res.Iterations != 1250 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	if res.Metrics["ns/op"] != 912345 || res.Metrics["tps"] != 42.5 {
		t.Fatalf("metrics %v", res.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \tdichotomy\t12.3s",
		"interval  tip  crash@",
		"4   227   113   112", // experiment table row, no Benchmark prefix
		"BenchmarkBroken notanumber 5 ns/op",
		"BenchmarkNoMetrics 5",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q as benchmark %q", line, name)
		}
	}
}
