package main

import "testing"

func TestParseLine(t *testing.T) {
	name, res, ok := parseLine("BenchmarkStateScaling/striped/workers=4-8  \t 1250\t    912345 ns/op\t  42.5 tps")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "BenchmarkStateScaling/striped/workers=4" {
		t.Fatalf("name %q (cpu suffix not stripped?)", name)
	}
	if res.Iterations != 1250 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	if res.Metrics["ns/op"] != 912345 || res.Metrics["tps"] != 42.5 {
		t.Fatalf("metrics %v", res.Metrics)
	}
}

func TestParseLineCapturesBenchmem(t *testing.T) {
	// A -benchmem line carries B/op and allocs/op after the time; the
	// trajectory must keep them so allocation regressions are visible.
	name, res, ok := parseLine("BenchmarkTxMarshal-8   1173304   209.2 ns/op   576 B/op   1 allocs/op")
	if !ok {
		t.Fatal("benchmem line rejected")
	}
	if name != "BenchmarkTxMarshal" {
		t.Fatalf("name %q", name)
	}
	if res.Metrics["B/op"] != 576 || res.Metrics["allocs/op"] != 1 {
		t.Fatalf("benchmem metrics %v", res.Metrics)
	}
	// Sub-benchmark names keep their mode labels distinct (the recovery
	// full-vs-delta separation relies on it).
	name, _, ok = parseLine("BenchmarkRecovery/mode=delta-8   1   5123456 ns/op   0 B/op   0 allocs/op")
	if !ok || name != "BenchmarkRecovery/mode=delta" {
		t.Fatalf("sub-benchmark name %q (ok=%v)", name, ok)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \tdichotomy\t12.3s",
		"interval  tip  crash@",
		"4   227   113   112", // experiment table row, no Benchmark prefix
		"BenchmarkBroken notanumber 5 ns/op",
		"BenchmarkNoMetrics 5",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q as benchmark %q", line, name)
		}
	}
}
