package mbt

import (
	"fmt"
	"math/rand"
	"testing"

	"dichotomy/internal/cryptoutil"
)

func smallCfg() Config { return Config{Buckets: 16, Fanout: 4} }

func TestPutGet(t *testing.T) {
	tr := New(smallCfg())
	for i := 0; i < 200; i++ {
		tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 200; i++ {
		v, ok := tr.Get([]byte(fmt.Sprintf("k%d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(k%d) = %q,%v", i, v, ok)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d, want 200", tr.Len())
	}
}

func TestGetMissing(t *testing.T) {
	tr := New(smallCfg())
	if _, ok := tr.Get([]byte("ghost")); ok {
		t.Fatal("found absent key")
	}
}

func TestOverwriteChangesRoot(t *testing.T) {
	tr := New(smallCfg())
	tr.Put([]byte("k"), []byte("v1"))
	r1 := tr.RootHash()
	tr.Put([]byte("k"), []byte("v2"))
	r2 := tr.RootHash()
	if r1 == r2 {
		t.Fatal("root unchanged after overwrite")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New(smallCfg())
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("b"), []byte("2"))
	r1 := tr.RootHash()
	tr.Delete([]byte("a"))
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatal("deleted key visible")
	}
	if tr.RootHash() == r1 {
		t.Fatal("root unchanged after delete")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	tr.Delete([]byte("never")) // no-op
}

func TestRootContentAddressed(t *testing.T) {
	// Two trees with the same final content must agree on the root even if
	// their mutation histories differ (including touched-then-deleted keys).
	a := New(smallCfg())
	b := New(smallCfg())
	for i := 0; i < 50; i++ {
		a.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	// b inserts in reverse and detours through extra keys.
	b.Put([]byte("transient"), []byte("x"))
	for i := 49; i >= 0; i-- {
		b.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	b.Delete([]byte("transient"))
	if a.RootHash() != b.RootHash() {
		t.Fatal("root is not a pure function of content")
	}
}

func TestEmptyTreeRootsAgree(t *testing.T) {
	if New(smallCfg()).RootHash() != New(smallCfg()).RootHash() {
		t.Fatal("two empty trees disagree")
	}
}

func TestDepthCappedAtPaperValue(t *testing.T) {
	tr := New(DefaultConfig)
	if got := tr.Depth(); got != 5 {
		t.Fatalf("Depth = %d, want 5 (⌈log4 1000⌉)", got)
	}
	// Depth must not grow with data.
	for i := 0; i < 5000; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v"))
	}
	if got := tr.Depth(); got != 5 {
		t.Fatalf("Depth after inserts = %d, want 5", got)
	}
}

func TestOverheadConstantPerTree(t *testing.T) {
	tr := New(DefaultConfig)
	before := tr.OverheadBytes()
	for i := 0; i < 10000; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), make([]byte, 100))
	}
	if tr.OverheadBytes() != before {
		t.Fatal("MBT overhead should be fixed by configuration, not data size")
	}
	// Per-record overhead for 10K records ≈ paper's ~24 B/record ballpark
	// (tree hash bytes / records).
	per := float64(tr.OverheadBytes()) / 10000
	if per < 1 || per > 64 {
		t.Fatalf("per-record overhead %.1f B out of expected range", per)
	}
}

func TestProveVerify(t *testing.T) {
	tr := New(smallCfg())
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	root := tr.RootHash()
	for i := 0; i < 100; i += 9 {
		key := []byte(fmt.Sprintf("k%03d", i))
		val := []byte(fmt.Sprintf("v%03d", i))
		proof, ok := tr.Prove(key)
		if !ok {
			t.Fatalf("Prove(%s) failed", key)
		}
		if err := VerifyProof(root, smallCfg(), key, val, proof); err != nil {
			t.Fatalf("VerifyProof(%s): %v", key, err)
		}
	}
}

func TestProveAbsent(t *testing.T) {
	tr := New(smallCfg())
	tr.Put([]byte("k"), []byte("v"))
	if _, ok := tr.Prove([]byte("ghost")); ok {
		t.Fatal("proved absent key")
	}
}

func TestVerifyRejectsForgedValue(t *testing.T) {
	tr := New(smallCfg())
	tr.Put([]byte("k1"), []byte("honest"))
	tr.Put([]byte("k2"), []byte("x"))
	root := tr.RootHash()
	proof, _ := tr.Prove([]byte("k1"))
	if err := VerifyProof(root, smallCfg(), []byte("k1"), []byte("forged"), proof); err == nil {
		t.Fatal("forged value accepted")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tr := New(smallCfg())
	tr.Put([]byte("k1"), []byte("v"))
	proof, _ := tr.Prove([]byte("k1"))
	bogus := cryptoutil.HashBytes([]byte("nope"))
	if err := VerifyProof(bogus, smallCfg(), []byte("k1"), []byte("v"), proof); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestVerifyRejectsTamperedBucket(t *testing.T) {
	tr := New(smallCfg())
	tr.Put([]byte("k1"), []byte("v1"))
	tr.Put([]byte("k2"), []byte("v2"))
	root := tr.RootHash()
	proof, _ := tr.Prove([]byte("k1"))
	// Smuggle a forged entry into the shipped bucket.
	proof.BucketEntries = append(proof.BucketEntries, ProofEntry{Key: []byte("evil"), Value: []byte("1")})
	if err := VerifyProof(root, smallCfg(), []byte("k1"), []byte("v1"), proof); err == nil {
		t.Fatal("tampered bucket contents accepted")
	}
}

func TestIncrementalRootMatchesFreshBuild(t *testing.T) {
	// Root via incremental dirty-path maintenance must equal a fresh tree
	// built directly with the final content.
	rng := rand.New(rand.NewSource(21))
	inc := New(smallCfg())
	final := map[string]string{}
	for step := 0; step < 500; step++ {
		k := fmt.Sprintf("k%d", rng.Intn(80))
		if rng.Intn(4) == 0 {
			inc.Delete([]byte(k))
			delete(final, k)
		} else {
			v := fmt.Sprintf("v%d", step)
			inc.Put([]byte(k), []byte(v))
			final[k] = v
		}
		if step%97 == 0 {
			inc.RootHash() // interleave recomputations
		}
	}
	fresh := New(smallCfg())
	for k, v := range final {
		fresh.Put([]byte(k), []byte(v))
	}
	if inc.RootHash() != fresh.RootHash() {
		t.Fatal("incremental root diverged from fresh build")
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := New(Config{})
	if tr.cfg.Buckets != 1000 || tr.cfg.Fanout != 4 {
		t.Fatalf("defaults not applied: %+v", tr.cfg)
	}
}
