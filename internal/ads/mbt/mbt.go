// Package mbt implements a Merkle Bucket Tree, the authenticated state
// index of Hyperledger Fabric v0.6. Keys hash into a fixed number of
// buckets; each bucket's content hash covers its sorted key/value pairs,
// and a Merkle tree with a fixed fan-out aggregates bucket hashes up to a
// root. Because the bucket count is fixed, the tree depth is capped at
// ⌈log_fanout(buckets)⌉ — the structural property behind the paper's
// finding that MBT adds ~24 bytes per record while an MPT adds over 1 KB
// (Fig 13).
package mbt

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"dichotomy/internal/cryptoutil"
)

// Config sizes the tree. The paper's experiments use 1000 buckets with
// fan-out 4, giving depth ⌈log4 1000⌉ = 5.
type Config struct {
	Buckets int
	Fanout  int
}

// DefaultConfig matches the paper's setup.
var DefaultConfig = Config{Buckets: 1000, Fanout: 4}

func (c Config) withDefaults() Config {
	if c.Buckets <= 0 {
		c.Buckets = DefaultConfig.Buckets
	}
	if c.Fanout <= 1 {
		c.Fanout = DefaultConfig.Fanout
	}
	return c
}

// Tree is a Merkle Bucket Tree. Not safe for concurrent mutation.
type Tree struct {
	cfg     Config
	buckets []bucket
	// dirty tracks buckets whose hash must be recomputed.
	dirty map[int]bool
	// levels[0] is the bucket hash layer; levels[len-1] is the root layer.
	levels [][]cryptoutil.Hash
	count  int
}

type bucket struct {
	// entries stay sorted by key so the bucket hash is canonical.
	entries []kv
}

type kv struct {
	key, value []byte
}

// New returns an empty tree with the given configuration.
func New(cfg Config) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{
		cfg:     cfg,
		buckets: make([]bucket, cfg.Buckets),
		dirty:   make(map[int]bool),
	}
	// Build the level structure bottom-up.
	width := cfg.Buckets
	for {
		t.levels = append(t.levels, make([]cryptoutil.Hash, width))
		if width == 1 {
			break
		}
		width = (width + cfg.Fanout - 1) / cfg.Fanout
	}
	// Initialize every interior node from its (empty) children so the root
	// is a pure function of content: without this, lazily-computed paths
	// would make the root depend on which buckets were ever touched.
	for lvl := 1; lvl < len(t.levels); lvl++ {
		for i := range t.levels[lvl] {
			t.levels[lvl][i] = t.combine(lvl, i)
		}
	}
	return t
}

// bucketOf assigns a key to a bucket with a stable non-cryptographic hash,
// as Fabric v0.6 did.
func (t *Tree) bucketOf(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(t.cfg.Buckets))
}

// Get returns the stored value and whether the key exists.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	b := &t.buckets[t.bucketOf(key)]
	i, found := b.find(key)
	if !found {
		return nil, false
	}
	return b.entries[i].value, true
}

func (b *bucket) find(key []byte) (int, bool) {
	i := sort.Search(len(b.entries), func(i int) bool {
		return bytes.Compare(b.entries[i].key, key) >= 0
	})
	if i < len(b.entries) && bytes.Equal(b.entries[i].key, key) {
		return i, true
	}
	return i, false
}

// Put inserts or replaces a key. The bucket is marked dirty; hashes are
// recomputed lazily at RootHash, matching Fabric's batched commit.
func (t *Tree) Put(key, value []byte) {
	idx := t.bucketOf(key)
	b := &t.buckets[idx]
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	i, found := b.find(key)
	if found {
		b.entries[i].value = v
	} else {
		b.entries = append(b.entries, kv{})
		copy(b.entries[i+1:], b.entries[i:])
		b.entries[i] = kv{key: k, value: v}
		t.count++
	}
	t.dirty[idx] = true
}

// Delete removes a key if present.
func (t *Tree) Delete(key []byte) {
	idx := t.bucketOf(key)
	b := &t.buckets[idx]
	i, found := b.find(key)
	if !found {
		return
	}
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	t.count--
	t.dirty[idx] = true
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.count }

// RootHash recomputes hashes for dirty buckets and their ancestor paths,
// then returns the root commitment. Only O(dirty × depth) hashes are
// recomputed — the incremental-maintenance property that makes MBT cheap.
func (t *Tree) RootHash() cryptoutil.Hash {
	if len(t.dirty) > 0 {
		// Recompute dirty bucket hashes.
		parents := make(map[int]bool)
		for idx := range t.dirty {
			t.levels[0][idx] = t.buckets[idx].hash()
			parents[idx/t.cfg.Fanout] = true
		}
		t.dirty = make(map[int]bool)
		// Propagate up level by level.
		for lvl := 1; lvl < len(t.levels); lvl++ {
			next := make(map[int]bool)
			for p := range parents {
				t.levels[lvl][p] = t.combine(lvl, p)
				next[p/t.cfg.Fanout] = true
			}
			parents = next
		}
	}
	return t.levels[len(t.levels)-1][0]
}

func (t *Tree) combine(lvl, idx int) cryptoutil.Hash {
	lower := t.levels[lvl-1]
	start := idx * t.cfg.Fanout
	end := start + t.cfg.Fanout
	if end > len(lower) {
		end = len(lower)
	}
	parts := make([][]byte, 0, t.cfg.Fanout)
	for i := start; i < end; i++ {
		h := lower[i]
		parts = append(parts, h[:])
	}
	return cryptoutil.HashConcat(parts...)
}

func (b *bucket) hash() cryptoutil.Hash {
	if len(b.entries) == 0 {
		return cryptoutil.ZeroHash
	}
	parts := make([][]byte, 0, len(b.entries)*2)
	for _, e := range b.entries {
		parts = append(parts, lenPrefix(e.key), lenPrefix(e.value))
	}
	return cryptoutil.HashConcat(parts...)
}

func lenPrefix(b []byte) []byte {
	out := make([]byte, 2+len(b))
	out[0] = byte(len(b) >> 8)
	out[1] = byte(len(b))
	copy(out[2:], b)
	return out
}

// Depth returns the number of levels above the buckets — ⌈log_fanout
// buckets⌉, the capped height the paper highlights (5 for 1000 buckets at
// fan-out 4).
func (t *Tree) Depth() int { return len(t.levels) - 1 }

// OverheadBytes returns the storage consumed by the authentication
// structure itself: every level's hashes. Bucket contents are the raw data
// and excluded, so OverheadBytes/Len is the per-record tamper-evidence cost
// that Fig 13 reports.
func (t *Tree) OverheadBytes() int64 {
	var total int64
	for _, lvl := range t.levels {
		total += int64(len(lvl)) * 32
	}
	return total
}

// Proof authenticates one key's value against the root hash.
type Proof struct {
	// BucketEntries is the full content of the key's bucket; the verifier
	// rehashes it. (Fabric v0.6 shipped bucket contents in proofs too.)
	BucketEntries []ProofEntry
	// Siblings holds, per level, the hashes of the bucket/node group with
	// the on-path position's slot left to be filled by the verifier.
	Siblings [][]cryptoutil.Hash
	// Positions[i] is the index of the on-path node within Siblings[i].
	Positions []int
	BucketIdx int
}

// ProofEntry is one key/value pair in the proven bucket.
type ProofEntry struct {
	Key, Value []byte
}

// Prove returns a proof for key, or false if absent.
func (t *Tree) Prove(key []byte) (Proof, bool) {
	idx := t.bucketOf(key)
	b := &t.buckets[idx]
	if _, found := b.find(key); !found {
		return Proof{}, false
	}
	t.RootHash() // ensure levels are current
	proof := Proof{BucketIdx: idx}
	for _, e := range b.entries {
		proof.BucketEntries = append(proof.BucketEntries, ProofEntry{Key: e.key, Value: e.value})
	}
	pos := idx
	for lvl := 0; lvl+1 < len(t.levels); lvl++ {
		start := (pos / t.cfg.Fanout) * t.cfg.Fanout
		end := start + t.cfg.Fanout
		if end > len(t.levels[lvl]) {
			end = len(t.levels[lvl])
		}
		group := make([]cryptoutil.Hash, end-start)
		copy(group, t.levels[lvl][start:end])
		proof.Siblings = append(proof.Siblings, group)
		proof.Positions = append(proof.Positions, pos-start)
		pos /= t.cfg.Fanout
	}
	return proof, true
}

// ErrInvalidProof is returned when a proof does not verify.
var ErrInvalidProof = errors.New("mbt: invalid proof")

// VerifyProof checks that key→value is bound to root by proof under the
// given configuration. A nil return means the binding holds; any other
// result is the authoritative rejection, so discarding it admits forged
// reads — internal/analysis/errshadow enforces that it is handled.
func VerifyProof(root cryptoutil.Hash, cfg Config, key, value []byte, proof Proof) error {
	cfg = cfg.withDefaults()
	// The key/value must be inside the shipped bucket contents.
	found := false
	parts := make([][]byte, 0, len(proof.BucketEntries)*2)
	for _, e := range proof.BucketEntries {
		if bytes.Equal(e.Key, key) && bytes.Equal(e.Value, value) {
			found = true
		}
		parts = append(parts, lenPrefix(e.Key), lenPrefix(e.Value))
	}
	if !found {
		return fmt.Errorf("%w: key/value not in proven bucket", ErrInvalidProof)
	}
	if len(proof.Siblings) != len(proof.Positions) {
		return fmt.Errorf("%w: sibling/position length mismatch", ErrInvalidProof)
	}
	cur := cryptoutil.HashConcat(parts...)
	for lvl, group := range proof.Siblings {
		pos := proof.Positions[lvl]
		if pos < 0 || pos >= len(group) {
			return fmt.Errorf("%w: position out of range at level %d", ErrInvalidProof, lvl)
		}
		// The on-path slot must match the hash computed so far.
		if group[pos] != cur {
			return fmt.Errorf("%w: on-path hash mismatch at level %d", ErrInvalidProof, lvl)
		}
		concat := make([][]byte, 0, len(group))
		for i := range group {
			concat = append(concat, group[i][:])
		}
		cur = cryptoutil.HashConcat(concat...)
	}
	if cur != root {
		return fmt.Errorf("%w: root mismatch", ErrInvalidProof)
	}
	return nil
}
