package mpt

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzVerifyProof pins the proof-verification security contract that the
// light-client read path (internal/authstate) depends on:
//
//   - a valid proof round-trips against the root it was generated under;
//   - any single corruption — a flipped byte in a step encoding or the
//     bound value, a truncated step chain — must fail verification;
//   - a wrong root must fail verification;
//   - arbitrary bytes presented as a proof must fail without panicking.
func FuzzVerifyProof(f *testing.F) {
	const nKeys = 64
	tr := New()
	for i := 0; i < nKeys; i++ {
		tr.Put(fuzzKey(i), []byte(fmt.Sprintf("value-%04d", i)))
	}
	root := tr.RootHash()

	f.Add(uint8(0), uint16(0), uint16(0), byte(1), byte(0), byte(0), []byte{})
	f.Add(uint8(7), uint16(1), uint16(5), byte(0), byte(1), byte(3), []byte{tagBranch, 0, 0})
	f.Add(uint8(63), uint16(2), uint16(40), byte(255), byte(2), byte(9), []byte("garbage"))

	f.Fuzz(func(t *testing.T, keyIdx uint8, stepSel, bytePos uint16, xor, mode, rootXor byte, garbage []byte) {
		key := fuzzKey(int(keyIdx) % nKeys)
		proof, ok := tr.Prove(key)
		if !ok {
			t.Fatalf("Prove(%s) failed", key)
		}
		if err := VerifyProof(root, key, proof); err != nil {
			t.Fatalf("valid proof rejected: %v", err)
		}

		// One corruption, selected by mode, applied to a deep copy.
		cp := copyProof(proof)
		corrupted := false
		switch mode % 3 {
		case 0: // flip a byte inside one step encoding
			if xor != 0 && len(cp.Steps) > 0 {
				step := &cp.Steps[int(stepSel)%len(cp.Steps)]
				if len(step.Encoding) > 0 {
					step.Encoding[int(bytePos)%len(step.Encoding)] ^= xor
					corrupted = true
				}
			}
		case 1: // truncate the step chain
			if len(cp.Steps) > 0 {
				cp.Steps = cp.Steps[:int(stepSel)%len(cp.Steps)]
				corrupted = true
			}
		case 2: // flip a byte of the bound value
			if xor != 0 && len(cp.Value) > 0 {
				cp.Value[int(bytePos)%len(cp.Value)] ^= xor
				corrupted = true
			}
		}
		if corrupted {
			if err := VerifyProof(root, key, cp); err == nil {
				t.Fatalf("corrupted proof verified (mode %d)", mode%3)
			}
		}

		// A wrong root must never accept the valid proof.
		if rootXor != 0 {
			badRoot := root
			badRoot[int(bytePos)%len(badRoot)] ^= rootXor
			if err := VerifyProof(badRoot, key, proof); err == nil {
				t.Fatal("proof verified against a wrong root")
			}
		}

		// Arbitrary bytes as a proof: must fail, must not panic.
		g := Proof{Steps: []ProofStep{{Encoding: garbage}}, Value: garbage}
		if err := VerifyProof(root, key, g); err == nil {
			t.Fatal("garbage proof verified")
		}
	})
}

func fuzzKey(i int) []byte { return []byte(fmt.Sprintf("chk:acct%08d", i)) }

func copyProof(p Proof) Proof {
	cp := Proof{
		Steps: make([]ProofStep, len(p.Steps)),
		Value: bytes.Clone(p.Value),
	}
	for i, s := range p.Steps {
		cp.Steps[i] = ProofStep{Encoding: bytes.Clone(s.Encoding)}
	}
	return cp
}
