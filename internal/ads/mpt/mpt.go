// Package mpt implements a Merkle Patricia Trie, the authenticated state
// index used by Ethereum and Quorum. Keys are split into 4-bit nibbles;
// the trie has three node kinds — branch (16 children + optional value),
// extension (shared nibble run), and leaf. Every node is identified by the
// SHA-256 hash of its serialized form, so the root hash commits to the
// entire state and any access path doubles as an integrity proof.
//
// Serialization is a compact custom format rather than Ethereum's RLP; the
// paper's storage-overhead findings (Fig 13) depend on the trie *shape*
// (depth × per-node hashing), which is preserved exactly.
package mpt

import (
	"bytes"
	"errors"
	"fmt"

	"dichotomy/internal/cryptoutil"
)

// Trie is a Merkle Patricia Trie. It is not safe for concurrent mutation;
// systems guard it with their commit lock, mirroring geth's usage.
// Snapshot captures an immutable view that IS safe for concurrent reads.
type Trie struct {
	root node
	// rebuildCount tracks how many times the root commitment actually
	// had to be recomputed; the record-size experiment (Fig 11) reads it.
	rebuilds int
}

type node interface {
	// encoded returns the canonical serialization used for hashing.
	encoded() []byte
	// cacheRef exposes the node's memoized-hash slot.
	cacheRef() *hashCache
}

// hashCache memoizes a node's commitment. Mutation is copy-on-write —
// Put and Delete allocate fresh (unhashed) nodes along the mutated path
// and share everything else — so a cache, once filled, is valid for the
// node's lifetime: RootHash after a K-key block re-hashes only the
// O(K·depth) fresh nodes, and a fully-hashed subgraph can be read from
// any number of goroutines without synchronization.
type hashCache struct {
	hash   cryptoutil.Hash
	hashed bool
}

type (
	leafNode struct {
		path  []byte // remaining nibbles
		value []byte
		cache hashCache
	}
	extNode struct {
		path  []byte // shared nibbles
		child node
		cache hashCache
	}
	branchNode struct {
		children [16]node
		value    []byte // set when a key terminates at this branch
		cache    hashCache
	}
)

func (n *leafNode) cacheRef() *hashCache   { return &n.cache }
func (n *extNode) cacheRef() *hashCache    { return &n.cache }
func (n *branchNode) cacheRef() *hashCache { return &n.cache }

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// nibbles expands a byte key into 4-bit digits, high nibble first.
func nibbles(key []byte) []byte {
	out := make([]byte, 0, len(key)*2)
	for _, b := range key {
		out = append(out, b>>4, b&0x0f)
	}
	return out
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Get returns the value stored under key and whether it exists.
func (t *Trie) Get(key []byte) ([]byte, bool) {
	return get(t.root, nibbles(key))
}

func get(n node, path []byte) ([]byte, bool) {
	switch n := n.(type) {
	case nil:
		return nil, false
	case *leafNode:
		if bytes.Equal(n.path, path) {
			return n.value, true
		}
		return nil, false
	case *extNode:
		if len(path) < len(n.path) || !bytes.Equal(path[:len(n.path)], n.path) {
			return nil, false
		}
		return get(n.child, path[len(n.path):])
	case *branchNode:
		if len(path) == 0 {
			if n.value == nil {
				return nil, false
			}
			return n.value, true
		}
		return get(n.children[path[0]], path[1:])
	default:
		panic(fmt.Sprintf("mpt: unknown node %T", n))
	}
}

// Put inserts or replaces the value for key. Values are copied. An empty
// value is a legal stored value (distinct from absence, which branch nodes
// represent with a nil slice internally).
func (t *Trie) Put(key, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	t.root = put(t.root, nibbles(key), v)
}

func put(n node, path []byte, value []byte) node {
	switch n := n.(type) {
	case nil:
		return &leafNode{path: path, value: value}
	case *leafNode:
		if bytes.Equal(n.path, path) {
			return &leafNode{path: path, value: value}
		}
		return splitInsert(n.path, n.value, path, value)
	case *extNode:
		cp := commonPrefix(n.path, path)
		if cp == len(n.path) {
			return &extNode{path: n.path, child: put(n.child, path[cp:], value)}
		}
		// Split the extension at the divergence point.
		branch := &branchNode{}
		// Remainder of the extension path goes under its first nibble.
		extRest := n.path[cp:]
		if len(extRest) == 1 {
			branch.children[extRest[0]] = n.child
		} else {
			branch.children[extRest[0]] = &extNode{path: extRest[1:], child: n.child}
		}
		// Insert the new key under the branch.
		keyRest := path[cp:]
		if len(keyRest) == 0 {
			branch.value = value
		} else {
			branch.children[keyRest[0]] = &leafNode{path: keyRest[1:], value: value}
		}
		if cp == 0 {
			return branch
		}
		return &extNode{path: path[:cp:cp], child: branch}
	case *branchNode:
		if len(path) == 0 {
			nb := *n
			nb.value = value
			nb.cache = hashCache{}
			return &nb
		}
		nb := *n
		nb.children[path[0]] = put(n.children[path[0]], path[1:], value)
		nb.cache = hashCache{}
		return &nb
	default:
		panic(fmt.Sprintf("mpt: unknown node %T", n))
	}
}

// splitInsert builds the subtree for two diverging leaf paths.
func splitInsert(aPath, aVal, bPath, bVal []byte) node {
	cp := commonPrefix(aPath, bPath)
	branch := &branchNode{}
	aRest, bRest := aPath[cp:], bPath[cp:]
	switch {
	case len(aRest) == 0:
		branch.value = aVal
	default:
		branch.children[aRest[0]] = &leafNode{path: aRest[1:], value: aVal}
	}
	switch {
	case len(bRest) == 0:
		branch.value = bVal
	default:
		branch.children[bRest[0]] = &leafNode{path: bRest[1:], value: bVal}
	}
	if cp == 0 {
		return branch
	}
	return &extNode{path: aPath[:cp:cp], child: branch}
}

// Delete removes key from the trie. Absent keys are a no-op. The resulting
// structure is left un-collapsed (a branch with one child is kept), which
// changes no hashes of live data and keeps the implementation compact.
func (t *Trie) Delete(key []byte) {
	t.root, _ = del(t.root, nibbles(key))
}

func del(n node, path []byte) (node, bool) {
	switch n := n.(type) {
	case nil:
		return nil, false
	case *leafNode:
		if bytes.Equal(n.path, path) {
			return nil, true
		}
		return n, false
	case *extNode:
		if len(path) < len(n.path) || !bytes.Equal(path[:len(n.path)], n.path) {
			return n, false
		}
		child, ok := del(n.child, path[len(n.path):])
		if !ok {
			return n, false
		}
		if child == nil {
			return nil, true
		}
		return &extNode{path: n.path, child: child}, true
	case *branchNode:
		nb := *n
		nb.cache = hashCache{}
		if len(path) == 0 {
			if n.value == nil {
				return n, false
			}
			nb.value = nil
		} else {
			child, ok := del(n.children[path[0]], path[1:])
			if !ok {
				return n, false
			}
			nb.children[path[0]] = child
		}
		// Collapse to nil when completely empty.
		if nb.value == nil {
			empty := true
			for _, c := range nb.children {
				if c != nil {
					empty = false
					break
				}
			}
			if empty {
				return nil, true
			}
		}
		return &nb, true
	default:
		panic(fmt.Sprintf("mpt: unknown node %T", n))
	}
}

// --- hashing & serialization ---

const (
	tagLeaf   = 0x01
	tagExt    = 0x02
	tagBranch = 0x03
)

func appendBytes(dst, b []byte) []byte {
	dst = append(dst, byte(len(b)>>8), byte(len(b)))
	return append(dst, b...)
}

func (n *leafNode) encoded() []byte {
	out := []byte{tagLeaf}
	out = appendBytes(out, n.path)
	out = appendBytes(out, n.value)
	return out
}

func (n *extNode) encoded() []byte {
	out := []byte{tagExt}
	out = appendBytes(out, n.path)
	h := hashNode(n.child)
	return append(out, h[:]...)
}

func (n *branchNode) encoded() []byte {
	out := []byte{tagBranch}
	for _, c := range n.children {
		if c == nil {
			out = append(out, 0)
			continue
		}
		out = append(out, 1)
		h := hashNode(c)
		out = append(out, h[:]...)
	}
	out = appendBytes(out, n.value)
	return out
}

func hashNode(n node) cryptoutil.Hash {
	if n == nil {
		return cryptoutil.ZeroHash
	}
	c := n.cacheRef()
	if c.hashed {
		return c.hash
	}
	c.hash = cryptoutil.HashBytes(n.encoded())
	c.hashed = true
	return c.hash
}

// RootHash returns the root commitment, recomputing only what a mutation
// invalidated. Copy-on-write mutation allocates fresh nodes along the
// touched path, so after a K-key block only O(K·depth) nodes lack a
// memoized hash — the incremental maintenance the paper contrasts with
// Quorum's whole-trie reconstruction per commit. As a side effect every
// reachable node's cache is filled, which is what makes a subsequent
// Snapshot safe for lock-free concurrent reads.
func (t *Trie) RootHash() cryptoutil.Hash {
	if t.root == nil {
		return cryptoutil.ZeroHash
	}
	if !t.root.cacheRef().hashed {
		t.rebuilds++
	}
	return hashNode(t.root)
}

// Rebuilds reports how many root recomputations actually happened: calls
// to RootHash on an unchanged trie are cache hits and do not count.
func (t *Trie) Rebuilds() int { return t.rebuilds }

// Snapshot is an immutable point-in-time view of a trie. Because
// mutation is copy-on-write, the captured subgraph is never modified by
// later writes to the parent trie; capturing also forces every reachable
// node's hash cache (via RootHash), so Get and Prove on a Snapshot
// perform no writes at all and are safe from any number of goroutines
// while the owner keeps mutating the live trie.
type Snapshot struct {
	root node
	hash cryptoutil.Hash
}

// Snapshot captures the trie's current state. O(1) plus the incremental
// RootHash cost; the returned view shares structure with the live trie.
func (t *Trie) Snapshot() *Snapshot {
	return &Snapshot{root: t.root, hash: t.RootHash()}
}

// RootHash returns the commitment the snapshot was captured at.
func (s *Snapshot) RootHash() cryptoutil.Hash { return s.hash }

// Get returns the value stored under key at the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, bool) { return get(s.root, nibbles(key)) }

// Prove returns the integrity proof for key at the snapshot. The proof
// shares underlying byte storage with the trie; callers must not mutate
// it.
func (s *Snapshot) Prove(key []byte) (Proof, bool) { return prove(s.root, key) }

// Len returns the number of keys stored at the snapshot.
func (s *Snapshot) Len() int { return countKeys(s.root) }

// StorageBytes is Trie.StorageBytes at the snapshot.
func (s *Snapshot) StorageBytes() int64 { return storageBytes(s.root) }

// NodeBytes returns the total serialized size of every node in the trie —
// the storage footprint of the authenticated index (Fig 13).
func (t *Trie) NodeBytes() int64 {
	return nodeBytes(t.root)
}

// StorageBytes models Ethereum's node store, where every trie node is a
// separate engine record keyed by its 32-byte hash: per node the cost is
// 32 (key) + len(encoding). Fig 13's "storage overhead to achieve tamper
// evidence" is StorageBytes minus the raw key/value payload.
func (t *Trie) StorageBytes() int64 {
	return storageBytes(t.root)
}

func storageBytes(n node) int64 {
	if n == nil {
		return 0
	}
	size := int64(32 + len(n.encoded()))
	switch n := n.(type) {
	case *extNode:
		size += storageBytes(n.child)
	case *branchNode:
		for _, c := range n.children {
			size += storageBytes(c)
		}
	}
	return size
}

func nodeBytes(n node) int64 {
	if n == nil {
		return 0
	}
	size := int64(len(n.encoded()))
	switch n := n.(type) {
	case *extNode:
		size += nodeBytes(n.child)
	case *branchNode:
		for _, c := range n.children {
			size += nodeBytes(c)
		}
	}
	return size
}

// Len returns the number of stored keys.
func (t *Trie) Len() int { return countKeys(t.root) }

func countKeys(n node) int {
	switch n := n.(type) {
	case nil:
		return 0
	case *leafNode:
		return 1
	case *extNode:
		return countKeys(n.child)
	case *branchNode:
		total := 0
		if n.value != nil {
			total++
		}
		for _, c := range n.children {
			total += countKeys(c)
		}
		return total
	default:
		return 0
	}
}

// MaxDepth returns the deepest node level; tests use it to check the
// prefix-compression behaviour the paper contrasts against MBT's fixed
// depth.
func (t *Trie) MaxDepth() int { return depth(t.root) }

func depth(n node) int {
	switch n := n.(type) {
	case nil:
		return 0
	case *leafNode:
		return 1
	case *extNode:
		return 1 + depth(n.child)
	case *branchNode:
		max := 0
		for _, c := range n.children {
			if d := depth(c); d > max {
				max = d
			}
		}
		return 1 + max
	default:
		return 0
	}
}

// --- proofs ---

// ProofStep is one node encoding along the path from root to the key.
type ProofStep struct {
	Encoding []byte
}

// Proof is an authenticated path for a key.
type Proof struct {
	Steps []ProofStep
	Value []byte
}

// ErrInvalidProof is returned when a proof does not verify.
var ErrInvalidProof = errors.New("mpt: invalid proof")

// Prove returns the integrity proof for key, or false if the key is absent.
// (Absence proofs are not needed by the experiments and are omitted.)
func (t *Trie) Prove(key []byte) (Proof, bool) { return prove(t.root, key) }

func prove(root node, key []byte) (Proof, bool) {
	var proof Proof
	n := root
	path := nibbles(key)
	for {
		switch cur := n.(type) {
		case nil:
			return Proof{}, false
		case *leafNode:
			if !bytes.Equal(cur.path, path) {
				return Proof{}, false
			}
			proof.Steps = append(proof.Steps, ProofStep{Encoding: cur.encoded()})
			proof.Value = cur.value
			return proof, true
		case *extNode:
			if len(path) < len(cur.path) || !bytes.Equal(path[:len(cur.path)], cur.path) {
				return Proof{}, false
			}
			proof.Steps = append(proof.Steps, ProofStep{Encoding: cur.encoded()})
			path = path[len(cur.path):]
			n = cur.child
		case *branchNode:
			proof.Steps = append(proof.Steps, ProofStep{Encoding: cur.encoded()})
			if len(path) == 0 {
				if cur.value == nil {
					return Proof{}, false
				}
				proof.Value = cur.value
				return proof, true
			}
			n = cur.children[path[0]]
			path = path[1:]
		}
	}
}

// VerifyProof checks that proof binds key to proof.Value under root. It
// re-derives each step's hash and confirms the chain of commitments.
func VerifyProof(root cryptoutil.Hash, key []byte, proof Proof) error {
	if len(proof.Steps) == 0 {
		return ErrInvalidProof
	}
	want := root
	path := nibbles(key)
	for i, step := range proof.Steps {
		if cryptoutil.HashBytes(step.Encoding) != want {
			return fmt.Errorf("%w: step %d hash mismatch", ErrInvalidProof, i)
		}
		n, err := decodeNode(step.Encoding)
		if err != nil {
			return err
		}
		switch n := n.(type) {
		case *proofLeaf:
			if !bytes.Equal(n.path, path) || !bytes.Equal(n.value, proof.Value) {
				return fmt.Errorf("%w: leaf mismatch", ErrInvalidProof)
			}
			return nil
		case *proofExt:
			if len(path) < len(n.path) || !bytes.Equal(path[:len(n.path)], n.path) {
				return fmt.Errorf("%w: extension path mismatch", ErrInvalidProof)
			}
			path = path[len(n.path):]
			want = n.child
		case *proofBranch:
			if len(path) == 0 {
				if !bytes.Equal(n.value, proof.Value) {
					return fmt.Errorf("%w: branch value mismatch", ErrInvalidProof)
				}
				return nil
			}
			child := n.children[path[0]]
			if child == cryptoutil.ZeroHash {
				return fmt.Errorf("%w: missing branch child", ErrInvalidProof)
			}
			path = path[1:]
			want = child
		}
	}
	return fmt.Errorf("%w: proof ended before key resolved", ErrInvalidProof)
}

// Decoded proof node forms: children are hashes, not pointers.
type (
	proofLeaf struct {
		path, value []byte
	}
	proofExt struct {
		path  []byte
		child cryptoutil.Hash
	}
	proofBranch struct {
		children [16]cryptoutil.Hash
		value    []byte
	}
)

func readBytes(data []byte) ([]byte, []byte, error) {
	if len(data) < 2 {
		return nil, nil, ErrInvalidProof
	}
	n := int(data[0])<<8 | int(data[1])
	if len(data) < 2+n {
		return nil, nil, ErrInvalidProof
	}
	return data[2 : 2+n], data[2+n:], nil
}

func decodeNode(enc []byte) (any, error) {
	if len(enc) == 0 {
		return nil, ErrInvalidProof
	}
	switch enc[0] {
	case tagLeaf:
		path, rest, err := readBytes(enc[1:])
		if err != nil {
			return nil, err
		}
		value, _, err := readBytes(rest)
		if err != nil {
			return nil, err
		}
		return &proofLeaf{path: path, value: value}, nil
	case tagExt:
		path, rest, err := readBytes(enc[1:])
		if err != nil {
			return nil, err
		}
		if len(rest) < 32 {
			return nil, ErrInvalidProof
		}
		var h cryptoutil.Hash
		copy(h[:], rest)
		return &proofExt{path: path, child: h}, nil
	case tagBranch:
		rest := enc[1:]
		var b proofBranch
		for i := 0; i < 16; i++ {
			if len(rest) < 1 {
				return nil, ErrInvalidProof
			}
			present := rest[0]
			rest = rest[1:]
			if present == 1 {
				if len(rest) < 32 {
					return nil, ErrInvalidProof
				}
				copy(b.children[i][:], rest)
				rest = rest[32:]
			}
		}
		value, _, err := readBytes(rest)
		if err != nil {
			return nil, err
		}
		if len(value) > 0 {
			b.value = value
		}
		return &b, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrInvalidProof, enc[0])
	}
}
