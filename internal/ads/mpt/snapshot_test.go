package mpt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestMemoizedRootMatchesUncached pins the memoization invariant: after
// every block of mixed puts, overwrites, and deletes the memoized root
// equals what a from-scratch rehash of the identical structure computes
// (caches cleared, every node re-encoded and re-hashed).
func TestMemoizedRootMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	for block := 0; block < 20; block++ {
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(200))
			if rng.Intn(5) == 0 {
				tr.Delete([]byte(k))
				continue
			}
			tr.Put([]byte(k), []byte(fmt.Sprintf("val-%d-%d", block, i)))
		}
		got := tr.RootHash()
		clearCaches(tr.root)
		if want := tr.RootHash(); got != want {
			t.Fatalf("block %d: memoized root %x != uncached root %x", block, got, want)
		}
	}
}

// TestMemoizedRootMatchesFresh: without deletes (which deliberately
// leave branches un-collapsed), an incrementally-maintained trie reaches
// exactly the root a freshly-built trie computes — the property Quorum
// recovery's reseed-then-replay path relies on.
func TestMemoizedRootMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New()
	live := map[string]string{}
	for block := 0; block < 10; block++ {
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(200))
			v := fmt.Sprintf("val-%d-%d", block, i)
			tr.Put([]byte(k), []byte(v))
			live[k] = v
		}
		fresh := New()
		for k, v := range live {
			fresh.Put([]byte(k), []byte(v))
		}
		if got, want := tr.RootHash(), fresh.RootHash(); got != want {
			t.Fatalf("block %d: memoized root %x != fresh root %x", block, got, want)
		}
	}
}

// TestSnapshotIsolation: a snapshot keeps serving the state it was
// captured at while the live trie moves on, and its proofs verify
// against its own root, not the live one.
func TestSnapshotIsolation(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
	}
	snap := tr.Snapshot()
	oldRoot := snap.RootHash()

	tr.Put([]byte("k00"), []byte("mutated"))
	tr.Delete([]byte("k01"))
	newRoot := tr.RootHash()
	if newRoot == oldRoot {
		t.Fatal("mutation did not change the live root")
	}

	if v, ok := snap.Get([]byte("k00")); !ok || string(v) != "v00" {
		t.Fatalf("snapshot leaked mutation: %q %v", v, ok)
	}
	if _, ok := snap.Get([]byte("k01")); !ok {
		t.Fatal("snapshot leaked deletion")
	}
	proof, ok := snap.Prove([]byte("k00"))
	if !ok {
		t.Fatal("snapshot Prove failed")
	}
	if err := VerifyProof(oldRoot, []byte("k00"), proof); err != nil {
		t.Fatalf("snapshot proof vs snapshot root: %v", err)
	}
	if err := VerifyProof(newRoot, []byte("k00"), proof); err == nil {
		t.Fatal("stale proof verified against the live root")
	}
}

// TestSnapshotConcurrentReads hammers one snapshot from many goroutines
// while the owner keeps mutating the live trie and capturing newer
// snapshots — the maintainer/proof-server access pattern. Run under
// -race this pins that a published snapshot is read-only.
func TestSnapshotConcurrentReads(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	snap := tr.Snapshot()
	root := snap.RootHash()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("k%03d", rng.Intn(200)))
				proof, ok := snap.Prove(k)
				if !ok {
					t.Errorf("Prove(%s) failed on snapshot", k)
					return
				}
				if err := VerifyProof(root, k, proof); err != nil {
					t.Errorf("VerifyProof(%s): %v", k, err)
					return
				}
			}
		}(int64(g))
	}
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("k%03d", i%200)), []byte(fmt.Sprintf("w%d", i)))
		tr.Snapshot()
	}
	close(stop)
	wg.Wait()
}

// BenchmarkRootHash pins the memoization win: after a K-key block the
// memoized trie re-hashes only the mutated paths, while mode=rebuild
// models the seed behaviour (every cache invalidated, whole-trie
// rehash) on the identical mutation.
func BenchmarkRootHash(b *testing.B) {
	const keys = 20_000
	const blockKeys = 100
	build := func() *Trie {
		tr := New()
		for i := 0; i < keys; i++ {
			tr.Put([]byte(fmt.Sprintf("acct%08d", i)), []byte(fmt.Sprintf("balance-%d", i)))
		}
		tr.RootHash()
		return tr
	}
	mutate := func(tr *Trie, round int) {
		for i := 0; i < blockKeys; i++ {
			k := (round*blockKeys + i) % keys
			tr.Put([]byte(fmt.Sprintf("acct%08d", k)), []byte(fmt.Sprintf("bal-%d-%d", round, i)))
		}
	}
	b.Run("mode=memoized", func(b *testing.B) {
		tr := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mutate(tr, i)
			tr.RootHash()
		}
	})
	b.Run("mode=rebuild", func(b *testing.B) {
		tr := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mutate(tr, i)
			clearCaches(tr.root)
			tr.RootHash()
		}
	})
}

// clearCaches invalidates every memoized hash — the whole-trie rehash
// baseline the benchmark compares against.
func clearCaches(n node) {
	if n == nil {
		return
	}
	*n.cacheRef() = hashCache{}
	switch n := n.(type) {
	case *extNode:
		clearCaches(n.child)
	case *branchNode:
		for _, c := range n.children {
			clearCaches(c)
		}
	}
}
