package mpt

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dichotomy/internal/cryptoutil"
)

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	for i := 0; i < 500; i++ {
		v, ok := tr.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(key-%d) = %q,%v", i, v, ok)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
}

func TestGetMissing(t *testing.T) {
	tr := New()
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("empty trie found a key")
	}
	tr.Put([]byte("abc"), []byte("1"))
	if _, ok := tr.Get([]byte("abd")); ok {
		t.Fatal("sibling key leaked")
	}
	if _, ok := tr.Get([]byte("ab")); ok {
		t.Fatal("prefix key leaked")
	}
	if _, ok := tr.Get([]byte("abcd")); ok {
		t.Fatal("extension key leaked")
	}
}

func TestOverwrite(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v1"))
	r1 := tr.RootHash()
	tr.Put([]byte("k"), []byte("v2"))
	r2 := tr.RootHash()
	if r1 == r2 {
		t.Fatal("root unchanged after overwrite")
	}
	v, _ := tr.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("Get = %q", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPrefixKeys(t *testing.T) {
	tr := New()
	// Keys that are prefixes of each other exercise branch-with-value.
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("ab"), []byte("2"))
	tr.Put([]byte("abc"), []byte("3"))
	for k, want := range map[string]string{"a": "1", "ab": "2", "abc": "3"} {
		v, ok := tr.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q,%v want %s", k, v, ok, want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Put([]byte("aaa"), []byte("1"))
	tr.Put([]byte("aab"), []byte("2"))
	tr.Put([]byte("abc"), []byte("3"))
	tr.Delete([]byte("aab"))
	if _, ok := tr.Get([]byte("aab")); ok {
		t.Fatal("deleted key visible")
	}
	if v, ok := tr.Get([]byte("aaa")); !ok || string(v) != "1" {
		t.Fatal("sibling damaged by delete")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	tr.Delete([]byte("absent")) // no-op
	if tr.Len() != 2 {
		t.Fatal("deleting absent key changed size")
	}
}

func TestDeleteAllEmptiesTrie(t *testing.T) {
	tr := New()
	keys := []string{"x", "xy", "xyz", "w"}
	for _, k := range keys {
		tr.Put([]byte(k), []byte("v"))
	}
	for _, k := range keys {
		tr.Delete([]byte(k))
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if tr.RootHash() != cryptoutil.ZeroHash {
		t.Fatal("empty trie root should be ZeroHash")
	}
}

func TestRootDeterministicAcrossInsertionOrder(t *testing.T) {
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
	}
	build := func(perm []int) cryptoutil.Hash {
		tr := New()
		for _, i := range perm {
			tr.Put(keys[i], []byte(fmt.Sprintf("val-%03d", i)))
		}
		return tr.RootHash()
	}
	rng := rand.New(rand.NewSource(5))
	base := build(rng.Perm(100))
	for trial := 0; trial < 5; trial++ {
		if got := build(rng.Perm(100)); got != base {
			t.Fatal("root depends on insertion order")
		}
	}
}

func TestRootChangesOnAnyMutation(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	r0 := tr.RootHash()
	tr.Put([]byte("k25"), []byte("changed"))
	if tr.RootHash() == r0 {
		t.Fatal("root unchanged after value mutation")
	}
}

func TestProveVerify(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)))
	}
	root := tr.RootHash()
	for i := 0; i < 200; i += 17 {
		key := []byte(fmt.Sprintf("key-%03d", i))
		proof, ok := tr.Prove(key)
		if !ok {
			t.Fatalf("Prove(%s) failed", key)
		}
		if string(proof.Value) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("proof value = %q", proof.Value)
		}
		if err := VerifyProof(root, key, proof); err != nil {
			t.Fatalf("VerifyProof(%s): %v", key, err)
		}
	}
}

func TestProveAbsentKey(t *testing.T) {
	tr := New()
	tr.Put([]byte("exists"), []byte("v"))
	if _, ok := tr.Prove([]byte("missing")); ok {
		t.Fatal("proved an absent key")
	}
}

func TestVerifyRejectsTamperedValue(t *testing.T) {
	tr := New()
	tr.Put([]byte("k1"), []byte("honest"))
	tr.Put([]byte("k2"), []byte("other"))
	root := tr.RootHash()
	proof, _ := tr.Prove([]byte("k1"))
	proof.Value = []byte("forged")
	if err := VerifyProof(root, []byte("k1"), proof); err == nil {
		t.Fatal("tampered value accepted")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	tr := New()
	tr.Put([]byte("k1"), []byte("v"))
	proof, _ := tr.Prove([]byte("k1"))
	bogus := cryptoutil.HashBytes([]byte("bogus"))
	if err := VerifyProof(bogus, []byte("k1"), proof); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	tr := New()
	tr.Put([]byte("k1"), []byte("v1"))
	tr.Put([]byte("k2"), []byte("v2"))
	root := tr.RootHash()
	proof, _ := tr.Prove([]byte("k1"))
	if err := VerifyProof(root, []byte("k2"), proof); err == nil {
		t.Fatal("proof transplanted to another key")
	}
}

func TestNodeBytesGrowsWithRecordSize(t *testing.T) {
	small := New()
	large := New()
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("%016d", i))
		small.Put(k, make([]byte, 10))
		large.Put(k, make([]byte, 1000))
	}
	if small.NodeBytes() >= large.NodeBytes() {
		t.Fatal("NodeBytes should grow with value size")
	}
	// Encodings must exceed raw data: paths, tags, and hash links all cost.
	if overhead := small.NodeBytes() - 100*(16+10); overhead <= 0 {
		t.Fatalf("node encodings smaller than raw data: %d", overhead)
	}
	// The node-store model (each node keyed by its 32-byte hash) is what
	// Fig 13 measures; it must dwarf MBT's ~24 B/record.
	if per := small.StorageBytes() / 100; per < 64 {
		t.Fatalf("per-record storage %d B too low for an MPT", per)
	}
}

func TestRebuildCounter(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v"))
	tr.RootHash()
	// An unchanged trie serves the memoized root: no recomputation.
	tr.RootHash()
	if tr.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", tr.Rebuilds())
	}
	// A mutation invalidates the root path; the next RootHash rebuilds.
	tr.Put([]byte("k2"), []byte("v2"))
	tr.RootHash()
	if tr.Rebuilds() != 2 {
		t.Fatalf("Rebuilds = %d, want 2", tr.Rebuilds())
	}
}

func TestMaxDepthBounded(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(cryptoutil.HashUint64(uint64(i)).Bytes(), []byte("v"))
	}
	// 32-byte keys = 64 nibbles; depth can be at most 65ish but with 1000
	// random keys the trie should be shallow near the top.
	if d := tr.MaxDepth(); d < 2 || d > 66 {
		t.Fatalf("MaxDepth = %d out of sane range", d)
	}
}

func TestQuickModelMatch(t *testing.T) {
	f := func(ops [][2][]byte) bool {
		tr := New()
		model := map[string][]byte{}
		for _, op := range ops {
			k, v := op[0], op[1]
			if len(k) == 0 {
				continue
			}
			tr.Put(k, v)
			model[string(k)] = v
		}
		for k, want := range model {
			got, ok := tr.Get([]byte(k))
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		return tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
