// Package mvcc implements a multi-version store with Percolator-style
// two-phase locking over snapshots — TiDB/TiKV's transaction substrate.
// Writers prewrite locks (primary first), then commit by converting locks
// to versions at a commit timestamp; readers see the latest version at or
// below their snapshot timestamp and block on (here: abort at) conflicting
// locks. The latch contention this creates on hot primary records is the
// mechanism behind TiDB's collapse under skew in Fig 9.
package mvcc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
)

// ErrLocked is returned when a read or prewrite encounters another
// transaction's lock.
var ErrLocked = errors.New("mvcc: key locked by another transaction")

// ErrWriteConflict is returned at prewrite when a newer committed version
// exists than the transaction's snapshot — Percolator's write-write
// conflict.
var ErrWriteConflict = errors.New("mvcc: write-write conflict")

// ErrNotFound is returned when no visible version exists.
var ErrNotFound = errors.New("mvcc: key not found")

// version is one committed value of a key.
type version struct {
	startTS  uint64
	commitTS uint64
	value    []byte // nil for delete markers
}

// lock is a Percolator lock.
type lock struct {
	startTS uint64
	primary string
	value   []byte
	delete_ bool
}

// Store is a multi-version key space. Safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	versions map[string][]version // ascending commitTS
	locks    map[string]*lock
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		versions: make(map[string][]version),
		locks:    make(map[string]*lock),
	}
}

// Get reads key at snapshot ts. A lock with startTS ≤ ts from another
// transaction makes the outcome ambiguous; Percolator waits or resolves,
// TiDB's optimistic path surfaces it — we return ErrLocked and the caller
// retries or aborts.
func (s *Store) Get(key string, ts uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if l, ok := s.locks[key]; ok && l.startTS <= ts {
		return nil, fmt.Errorf("%w: key %q since ts %d", ErrLocked, key, l.startTS)
	}
	return s.readVersionLocked(key, ts)
}

func (s *Store) readVersionLocked(key string, ts uint64) ([]byte, error) {
	vs := s.versions[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].commitTS <= ts {
			if vs[i].value == nil {
				return nil, ErrNotFound
			}
			return vs[i].value, nil
		}
	}
	return nil, ErrNotFound
}

// LatestCommitTS returns the newest commit timestamp of key (0 if never
// written).
func (s *Store) LatestCommitTS(key string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.versions[key]
	if len(vs) == 0 {
		return 0
	}
	return vs[len(vs)-1].commitTS
}

// Prewrite attempts to lock key for the transaction that started at
// startTS, buffering the new value. primary names the transaction's
// primary key, whose lock decides the transaction's fate.
func (s *Store) Prewrite(key string, value []byte, del bool, startTS uint64, primary string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.locks[key]; ok {
		if l.startTS == startTS {
			// Idempotent re-prewrite by the same transaction.
			l.value, l.delete_ = value, del
			return nil
		}
		return fmt.Errorf("%w: key %q held since ts %d", ErrLocked, key, l.startTS)
	}
	// Write-write conflict: someone committed after our snapshot.
	if vs := s.versions[key]; len(vs) > 0 && vs[len(vs)-1].commitTS > startTS {
		return fmt.Errorf("%w: key %q committed at %d > start %d",
			ErrWriteConflict, key, vs[len(vs)-1].commitTS, startTS)
	}
	s.locks[key] = &lock{startTS: startTS, primary: primary, value: value, delete_: del}
	return nil
}

// Commit converts the lock at startTS into a committed version at
// commitTS. Committing a missing lock is an error (the transaction was
// rolled back by a conflicting writer).
func (s *Store) Commit(key string, startTS, commitTS uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[key]
	if !ok || l.startTS != startTS {
		return fmt.Errorf("mvcc: commit of %q at %d: lock gone", key, startTS)
	}
	delete(s.locks, key)
	var val []byte
	if !l.delete_ {
		val = l.value
	}
	s.versions[key] = append(s.versions[key], version{
		startTS: startTS, commitTS: commitTS, value: val,
	})
	return nil
}

// Rollback removes the transaction's lock on key, if held.
func (s *Store) Rollback(key string, startTS uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.locks[key]; ok && l.startTS == startTS {
		delete(s.locks, key)
	}
}

// Locked reports whether key currently carries a lock.
func (s *Store) Locked(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.locks[key]
	return ok
}

// Keys returns the number of distinct keys with at least one live version.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, vs := range s.versions {
		if len(vs) > 0 && vs[len(vs)-1].value != nil {
			n++
		}
	}
	return n
}

// Bytes returns the resident size of the newest live versions (the state
// a database retains; older versions are GC'd in real systems, and Fig 12
// counts only live state for TiDB).
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for k, vs := range s.versions {
		if len(vs) > 0 && vs[len(vs)-1].value != nil {
			total += int64(len(k) + len(vs[len(vs)-1].value))
		}
	}
	return total
}

// Scan returns up to limit live keys ≥ start at snapshot ts, in order.
func (s *Store) Scan(start string, limit int, ts uint64) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.versions {
		if k >= start {
			keys = append(keys, k)
		}
	}
	sortStrings(keys)
	out := keys[:0]
	for _, k := range keys {
		if v, err := s.readVersionLocked(k, ts); err == nil && v != nil {
			out = append(out, k)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

func sortStrings(s []string) {
	// Insertion sort is fine for scan-sized slices and avoids importing
	// sort for one call site... but clarity wins: use a simple qsort.
	if len(s) < 2 {
		return
	}
	pivot := s[len(s)/2]
	var less, eq, more []string
	for _, v := range s {
		switch bytes.Compare([]byte(v), []byte(pivot)) {
		case -1:
			less = append(less, v)
		case 0:
			eq = append(eq, v)
		default:
			more = append(more, v)
		}
	}
	sortStrings(less)
	sortStrings(more)
	copy(s, less)
	copy(s[len(less):], eq)
	copy(s[len(less)+len(eq):], more)
}
