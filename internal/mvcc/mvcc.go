// Package mvcc implements a multi-version store with Percolator-style
// two-phase locking over snapshots — TiDB/TiKV's transaction substrate.
// Writers prewrite locks (primary first), then commit by converting locks
// to versions at a commit timestamp; readers see the latest version at or
// below their snapshot timestamp and block on (here: abort at) conflicting
// locks. The latch contention this creates on hot primary records is the
// mechanism behind TiDB's collapse under skew in Fig 9.
//
// The store is built on the lock-striped shard map of internal/state:
// each key's version chain and Percolator lock live in one entry whose
// stripe lock scopes every per-key operation, so transactions touching
// different keys no longer funnel through a single store-wide mutex.
package mvcc

import (
	"errors"
	"fmt"
	"slices"

	"dichotomy/internal/state"
)

// ErrLocked is returned when a read or prewrite encounters another
// transaction's lock.
var ErrLocked = errors.New("mvcc: key locked by another transaction")

// ErrWriteConflict is returned at prewrite when a newer committed version
// exists than the transaction's snapshot — Percolator's write-write
// conflict.
var ErrWriteConflict = errors.New("mvcc: write-write conflict")

// ErrNotFound is returned when no visible version exists.
var ErrNotFound = errors.New("mvcc: key not found")

// version is one committed value of a key.
type version struct {
	startTS  uint64
	commitTS uint64
	value    []byte // nil for delete markers
}

// lock is a Percolator lock.
type lock struct {
	startTS uint64
	primary string
	value   []byte
	delete_ bool
}

// keyEntry is one key's transactional state: its committed version chain
// (ascending commitTS) and its current Percolator lock, if any. Keeping
// both in one striped-map entry makes the combined lock-then-version
// checks atomic under the stripe lock.
type keyEntry struct {
	versions []version
	lock     *lock
}

// Store is a multi-version key space. Safe for concurrent use; keys hash
// to independent stripes.
type Store struct {
	keys *state.Map[*keyEntry]
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{keys: state.NewMap[*keyEntry](0)}
}

// readVersion returns the newest value at or below ts.
func readVersion(vs []version, ts uint64) ([]byte, error) {
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].commitTS <= ts {
			if vs[i].value == nil {
				return nil, ErrNotFound
			}
			return vs[i].value, nil
		}
	}
	return nil, ErrNotFound
}

// Get reads key at snapshot ts. A lock with startTS ≤ ts from another
// transaction makes the outcome ambiguous; Percolator waits or resolves,
// TiDB's optimistic path surfaces it — we return ErrLocked and the caller
// retries or aborts.
func (s *Store) Get(key string, ts uint64) ([]byte, error) {
	val, err := []byte(nil), error(ErrNotFound)
	s.keys.View(key, func(e *keyEntry, ok bool) {
		if !ok {
			return
		}
		if e.lock != nil && e.lock.startTS <= ts {
			err = fmt.Errorf("%w: key %q since ts %d", ErrLocked, key, e.lock.startTS)
			return
		}
		val, err = readVersion(e.versions, ts)
	})
	return val, err
}

// LatestCommitTS returns the newest commit timestamp of key (0 if never
// written).
func (s *Store) LatestCommitTS(key string) uint64 {
	var ts uint64
	s.keys.View(key, func(e *keyEntry, ok bool) {
		if ok && len(e.versions) > 0 {
			ts = e.versions[len(e.versions)-1].commitTS
		}
	})
	return ts
}

// Prewrite attempts to lock key for the transaction that started at
// startTS, buffering the new value. primary names the transaction's
// primary key, whose lock decides the transaction's fate.
func (s *Store) Prewrite(key string, value []byte, del bool, startTS uint64, primary string) error {
	var err error
	s.keys.Update(key, func(e *keyEntry, ok bool) (*keyEntry, bool) {
		if !ok {
			e = &keyEntry{}
		}
		if e.lock != nil {
			if e.lock.startTS == startTS {
				// Idempotent re-prewrite by the same transaction.
				e.lock.value, e.lock.delete_ = value, del
				return e, true
			}
			err = fmt.Errorf("%w: key %q held since ts %d", ErrLocked, key, e.lock.startTS)
			return e, ok
		}
		// Write-write conflict: someone committed after our snapshot.
		if n := len(e.versions); n > 0 && e.versions[n-1].commitTS > startTS {
			err = fmt.Errorf("%w: key %q committed at %d > start %d",
				ErrWriteConflict, key, e.versions[n-1].commitTS, startTS)
			return e, ok
		}
		e.lock = &lock{startTS: startTS, primary: primary, value: value, delete_: del}
		return e, true
	})
	return err
}

// Commit converts the lock at startTS into a committed version at
// commitTS. Committing a missing lock is an error (the transaction was
// rolled back by a conflicting writer).
func (s *Store) Commit(key string, startTS, commitTS uint64) error {
	var err error
	s.keys.Update(key, func(e *keyEntry, ok bool) (*keyEntry, bool) {
		if !ok || e.lock == nil || e.lock.startTS != startTS {
			err = fmt.Errorf("mvcc: commit of %q at %d: lock gone", key, startTS)
			return e, ok
		}
		l := e.lock
		e.lock = nil
		var val []byte
		if !l.delete_ {
			val = l.value
		}
		e.versions = append(e.versions, version{
			startTS: startTS, commitTS: commitTS, value: val,
		})
		return e, true
	})
	return err
}

// Rollback removes the transaction's lock on key, if held.
func (s *Store) Rollback(key string, startTS uint64) {
	s.keys.Update(key, func(e *keyEntry, ok bool) (*keyEntry, bool) {
		if !ok {
			return e, false
		}
		if e.lock != nil && e.lock.startTS == startTS {
			e.lock = nil
		}
		// Drop entries a rollback leaves empty.
		return e, e.lock != nil || len(e.versions) > 0
	})
}

// Locked reports whether key currently carries a lock.
func (s *Store) Locked(key string) bool {
	locked := false
	s.keys.View(key, func(e *keyEntry, ok bool) {
		locked = ok && e.lock != nil
	})
	return locked
}

// Keys returns the number of distinct keys with at least one live version.
func (s *Store) Keys() int {
	n := 0
	s.keys.Range(func(_ string, e *keyEntry) bool {
		if len(e.versions) > 0 && e.versions[len(e.versions)-1].value != nil {
			n++
		}
		return true
	})
	return n
}

// Bytes returns the resident size of the newest live versions (the state
// a database retains; older versions are GC'd in real systems, and Fig 12
// counts only live state for TiDB).
func (s *Store) Bytes() int64 {
	var total int64
	s.keys.Range(func(k string, e *keyEntry) bool {
		if len(e.versions) > 0 && e.versions[len(e.versions)-1].value != nil {
			total += int64(len(k) + len(e.versions[len(e.versions)-1].value))
		}
		return true
	})
	return total
}

// Scan returns up to limit live keys ≥ start at snapshot ts, in order.
// Candidates are collected under the stripe read locks; sorting happens
// outside any lock.
func (s *Store) Scan(start string, limit int, ts uint64) []string {
	var keys []string
	s.keys.Range(func(k string, _ *keyEntry) bool {
		if k >= start {
			keys = append(keys, k)
		}
		return true
	})
	slices.Sort(keys)
	out := keys[:0]
	for _, k := range keys {
		live := false
		s.keys.View(k, func(e *keyEntry, ok bool) {
			if !ok {
				return
			}
			if v, err := readVersion(e.versions, ts); err == nil && v != nil {
				live = true
			}
		})
		if live {
			out = append(out, k)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}
