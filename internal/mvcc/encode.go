package mvcc

import (
	"encoding/binary"
	"fmt"
)

// Checkpoint serialization: one opaque record per key carrying the key's
// complete transactional state — the full version chain AND any live
// Percolator lock. Checkpointing locks matters for crash recovery: a
// replica restored from a checkpoint taken mid-transaction must
// re-enter with the prewrite intact, so the replicated commit/rollback
// record that follows it in the raft log still applies cleanly.
//
// Record layout (big-endian):
//
//	nversions u32 | nversions × ( startTS u64 | commitTS u64 |
//	                              live u8 | live: vlen u32 | value ) |
//	hasLock u8 | hasLock: ( startTS u64 | plen u32 | primary |
//	                        del u8 | vlen u32 | value )
//
// The encoding is a pure function of the entry's content, so identical
// replicas produce byte-identical records — the property the
// crash-equivalence tests compare.

func appendValue(buf []byte, v []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	return append(buf, v...)
}

// encodeEntry serializes one keyEntry.
func encodeEntry(e *keyEntry) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(e.versions)))
	for _, v := range e.versions {
		buf = binary.BigEndian.AppendUint64(buf, v.startTS)
		buf = binary.BigEndian.AppendUint64(buf, v.commitTS)
		if v.value == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = appendValue(buf, v.value)
	}
	if e.lock == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint64(buf, e.lock.startTS)
	buf = appendValue(buf, []byte(e.lock.primary))
	if e.lock.delete_ {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return appendValue(buf, e.lock.value)
}

// entryDecoder walks one encoded record with bounds checks.
type entryDecoder struct {
	buf []byte
	off int
}

func (d *entryDecoder) u8() (byte, error) {
	if d.off+1 > len(d.buf) {
		return 0, fmt.Errorf("mvcc: truncated entry at %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *entryDecoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, fmt.Errorf("mvcc: truncated entry at %d", d.off)
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *entryDecoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, fmt.Errorf("mvcc: truncated entry at %d", d.off)
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *entryDecoder) bytes() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if d.off+int(n) > len(d.buf) || n > 1<<30 {
		return nil, fmt.Errorf("mvcc: implausible length %d at %d", n, d.off)
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out, nil
}

// decodeEntry parses one record back into a keyEntry.
func decodeEntry(buf []byte) (*keyEntry, error) {
	d := &entryDecoder{buf: buf}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > len(buf) {
		return nil, fmt.Errorf("mvcc: implausible version count %d", n)
	}
	e := &keyEntry{}
	if n > 0 {
		e.versions = make([]version, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var v version
		if v.startTS, err = d.u64(); err != nil {
			return nil, err
		}
		if v.commitTS, err = d.u64(); err != nil {
			return nil, err
		}
		live, err := d.u8()
		if err != nil {
			return nil, err
		}
		if live == 1 {
			if v.value, err = d.bytes(); err != nil {
				return nil, err
			}
		}
		e.versions = append(e.versions, v)
	}
	hasLock, err := d.u8()
	if err != nil {
		return nil, err
	}
	if hasLock == 1 {
		l := &lock{}
		if l.startTS, err = d.u64(); err != nil {
			return nil, err
		}
		primary, err := d.bytes()
		if err != nil {
			return nil, err
		}
		l.primary = string(primary)
		del, err := d.u8()
		if err != nil {
			return nil, err
		}
		l.delete_ = del == 1
		if l.value, err = d.bytes(); err != nil {
			return nil, err
		}
		e.lock = l
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("mvcc: %d trailing bytes in entry", len(buf)-d.off)
	}
	return e, nil
}

// DumpEntries streams every key's encoded transactional state. The
// iteration order is unspecified; callers that need determinism sort.
// Records are fresh allocations — safe to retain.
func (s *Store) DumpEntries(emit func(key string, entry []byte)) {
	s.keys.Range(func(k string, e *keyEntry) bool {
		emit(k, encodeEntry(e))
		return true
	})
}

// SetEntry installs an encoded record under key, replacing any existing
// state. Checkpoint restore uses it on an otherwise-idle store.
func (s *Store) SetEntry(key string, encoded []byte) error {
	e, err := decodeEntry(encoded)
	if err != nil {
		return fmt.Errorf("mvcc: restore %q: %w", key, err)
	}
	s.keys.Update(key, func(_ *keyEntry, _ bool) (*keyEntry, bool) {
		return e, true
	})
	return nil
}
