package mvcc

import (
	"bytes"
	"testing"
)

// TestEntryRoundTrip drives a store through commits, a delete marker,
// and a live prewrite lock, then round-trips every entry through the
// checkpoint encoding into a second store and compares re-encodings
// byte for byte.
func TestEntryRoundTrip(t *testing.T) {
	src := NewStore()
	if err := src.Prewrite("a", []byte("v1"), false, 1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := src.Commit("a", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := src.Prewrite("a", nil, true, 3, "a"); err != nil {
		t.Fatal(err)
	}
	if err := src.Commit("a", 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := src.Prewrite("b", []byte("v2"), false, 5, "b"); err != nil {
		t.Fatal(err)
	}
	if err := src.Commit("b", 5, 6); err != nil {
		t.Fatal(err)
	}
	// A live lock must survive the round trip too.
	if err := src.Prewrite("c", []byte("pending"), false, 7, "c"); err != nil {
		t.Fatal(err)
	}

	dst := NewStore()
	n := 0
	src.DumpEntries(func(key string, entry []byte) {
		if err := dst.SetEntry(key, entry); err != nil {
			t.Fatalf("SetEntry(%s): %v", key, err)
		}
		n++
	})
	if n != 3 {
		t.Fatalf("dumped %d entries, want 3", n)
	}

	want := map[string][]byte{}
	src.DumpEntries(func(key string, entry []byte) { want[key] = entry })
	got := map[string][]byte{}
	dst.DumpEntries(func(key string, entry []byte) { got[key] = entry })
	if len(got) != len(want) {
		t.Fatalf("restored %d keys, want %d", len(got), len(want))
	}
	for k, w := range want {
		if !bytes.Equal(got[k], w) {
			t.Fatalf("key %s: re-encoding differs\n got %x\nwant %x", k, got[k], w)
		}
	}

	// Behavioural spot checks on the restored store.
	if _, err := dst.Get("a", 10); err == nil {
		t.Fatal("deleted key readable after restore")
	}
	if v, err := dst.Get("b", 10); err != nil || string(v) != "v2" {
		t.Fatalf("Get(b): %q %v", v, err)
	}
	if !dst.Locked("c") {
		t.Fatal("live lock lost in round trip")
	}
	// The restored lock is functional: commit converts it.
	if err := dst.Commit("c", 7, 8); err != nil {
		t.Fatal(err)
	}
	if v, err := dst.Get("c", 10); err != nil || string(v) != "pending" {
		t.Fatalf("Get(c): %q %v", v, err)
	}
}

func TestDecodeEntryRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff},
		{0, 0, 0, 1},          // one version, no body
		{0, 0, 0, 0, 1},       // lock flag set, no lock body
		{0, 0, 0, 0, 0, 0xaa}, // trailing byte
	} {
		if _, err := decodeEntry(buf); err == nil {
			t.Fatalf("garbage %x decoded", buf)
		}
	}
}
