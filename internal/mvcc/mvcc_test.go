package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dichotomy/internal/tso"
)

func TestPrewriteCommitGet(t *testing.T) {
	s := NewStore()
	o := tso.New()
	start := o.Next()
	if err := s.Prewrite("k", []byte("v1"), false, start, "k"); err != nil {
		t.Fatal(err)
	}
	commit := o.Next()
	if err := s.Commit("k", start, commit); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k", o.Next())
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestSnapshotReadsOldVersion(t *testing.T) {
	s := NewStore()
	o := tso.New()
	// Version 1.
	st1 := o.Next()
	s.Prewrite("k", []byte("v1"), false, st1, "k")
	ct1 := o.Next()
	s.Commit("k", st1, ct1)
	snapshotTS := o.Next()
	// Version 2 commits after the snapshot.
	st2 := o.Next()
	s.Prewrite("k", []byte("v2"), false, st2, "k")
	s.Commit("k", st2, o.Next())

	got, err := s.Get("k", snapshotTS)
	if err != nil || string(got) != "v1" {
		t.Fatalf("snapshot read = %q, %v; want v1", got, err)
	}
	got, _ = s.Get("k", o.Next())
	if string(got) != "v2" {
		t.Fatalf("latest read = %q, want v2", got)
	}
}

func TestReadBlockedByLock(t *testing.T) {
	s := NewStore()
	o := tso.New()
	start := o.Next()
	s.Prewrite("k", []byte("v"), false, start, "k")
	_, err := s.Get("k", o.Next())
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	// A snapshot older than the lock is unaffected.
	if _, err := s.Get("k", start-1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old snapshot err = %v, want not-found", err)
	}
}

func TestPrewriteConflictsWithLock(t *testing.T) {
	s := NewStore()
	o := tso.New()
	t1 := o.Next()
	t2 := o.Next()
	if err := s.Prewrite("k", []byte("a"), false, t1, "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Prewrite("k", []byte("b"), false, t2, "k"); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	// Same transaction re-prewriting is idempotent.
	if err := s.Prewrite("k", []byte("a2"), false, t1, "k"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := NewStore()
	o := tso.New()
	early := o.Next() // snapshot taken before the other writer commits
	st := o.Next()
	s.Prewrite("k", []byte("v"), false, st, "k")
	s.Commit("k", st, o.Next())
	err := s.Prewrite("k", []byte("late"), false, early, "k")
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
}

func TestRollbackReleasesLock(t *testing.T) {
	s := NewStore()
	o := tso.New()
	st := o.Next()
	s.Prewrite("k", []byte("v"), false, st, "k")
	s.Rollback("k", st)
	if s.Locked("k") {
		t.Fatal("lock survived rollback")
	}
	if _, err := s.Get("k", o.Next()); !errors.Is(err, ErrNotFound) {
		t.Fatal("rolled-back write became visible")
	}
	// Rollback of a foreign lock is a no-op.
	st2 := o.Next()
	s.Prewrite("k", []byte("v"), false, st2, "k")
	s.Rollback("k", st2+99)
	if !s.Locked("k") {
		t.Fatal("foreign rollback removed the lock")
	}
}

func TestCommitWithoutLockFails(t *testing.T) {
	s := NewStore()
	if err := s.Commit("k", 5, 6); err == nil {
		t.Fatal("commit of missing lock succeeded")
	}
}

func TestDeleteMarker(t *testing.T) {
	s := NewStore()
	o := tso.New()
	st := o.Next()
	s.Prewrite("k", []byte("v"), false, st, "k")
	s.Commit("k", st, o.Next())
	st2 := o.Next()
	s.Prewrite("k", nil, true, st2, "k")
	s.Commit("k", st2, o.Next())
	if _, err := s.Get("k", o.Next()); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key visible")
	}
	if s.Keys() != 0 {
		t.Fatalf("Keys = %d, want 0", s.Keys())
	}
}

func TestLatestCommitTS(t *testing.T) {
	s := NewStore()
	o := tso.New()
	if s.LatestCommitTS("k") != 0 {
		t.Fatal("unwritten key has a commit ts")
	}
	st := o.Next()
	s.Prewrite("k", []byte("v"), false, st, "k")
	ct := o.Next()
	s.Commit("k", st, ct)
	if s.LatestCommitTS("k") != ct {
		t.Fatalf("LatestCommitTS = %d, want %d", s.LatestCommitTS("k"), ct)
	}
}

func TestScan(t *testing.T) {
	s := NewStore()
	o := tso.New()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%02d", i)
		st := o.Next()
		s.Prewrite(k, []byte("v"), false, st, k)
		s.Commit(k, st, o.Next())
	}
	keys := s.Scan("k05", 3, o.Next())
	if len(keys) != 3 || keys[0] != "k05" || keys[2] != "k07" {
		t.Fatalf("Scan = %v", keys)
	}
}

func TestBytesCountsLiveStateOnly(t *testing.T) {
	s := NewStore()
	o := tso.New()
	st := o.Next()
	s.Prewrite("key", make([]byte, 100), false, st, "key")
	s.Commit("key", st, o.Next())
	st2 := o.Next()
	s.Prewrite("key", make([]byte, 200), false, st2, "key")
	s.Commit("key", st2, o.Next())
	want := int64(3 + 200) // only the newest version counts
	if got := s.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

func TestConcurrentNonOverlappingWriters(t *testing.T) {
	s := NewStore()
	o := tso.New()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				st := o.Next()
				if err := s.Prewrite(k, []byte("v"), false, st, k); err != nil {
					errs <- err
					return
				}
				if err := s.Commit(k, st, o.Next()); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Keys() != 800 {
		t.Fatalf("Keys = %d, want 800", s.Keys())
	}
}

func TestContendedKeySerializes(t *testing.T) {
	// Concurrent writers on one key: exactly the lock/conflict dance that
	// throttles TiDB under skew. At least one attempt must succeed per
	// round and the final state must be a value some writer wrote.
	s := NewStore()
	o := tso.New()
	var wg sync.WaitGroup
	var committed Counter
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st := o.Next()
				if err := s.Prewrite("hot", []byte{byte(w)}, false, st, "hot"); err != nil {
					continue // lock or ww-conflict: abort and move on
				}
				if err := s.Commit("hot", st, o.Next()); err == nil {
					committed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if committed.Load() == 0 {
		t.Fatal("no writer ever succeeded on the hot key")
	}
	if s.Locked("hot") {
		t.Fatal("lock leaked")
	}
}

// Counter is a tiny atomic counter for tests.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Add(d int) { c.mu.Lock(); c.n += d; c.mu.Unlock() }
func (c *Counter) Load() int { c.mu.Lock(); defer c.mu.Unlock(); return c.n }
