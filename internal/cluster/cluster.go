// Package cluster simulates the multi-node deployment the paper runs on a
// 96-machine, 1 Gb Ethernet testbed. Every node lives in-process; messages
// between nodes cross a Network that models per-link propagation latency and
// serialization (bandwidth) delay, and supports fault injection: node
// crashes, restarts, and network partitions.
//
// The simulation deliberately keeps the *structure* of distributed cost —
// number of message rounds, fan-out, payload size — while scaling absolute
// latency down so that experiments finish quickly. Consensus protocols built
// on top of it therefore exhibit the paper's qualitative behaviour (O(N)
// CFT vs O(N²) BFT traffic, view-change sensitivity) at tractable speed.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// NodeID identifies a node within one Network.
type NodeID int

// Message is an opaque payload delivered between nodes. Size is used by the
// bandwidth model; implementations report their serialized size rather than
// actually serializing, which keeps the hot path allocation-free.
type Message interface {
	// Size returns the approximate wire size of the message in bytes.
	Size() int
}

// Envelope is a delivered message together with its sender.
type Envelope struct {
	From NodeID
	Msg  Message
}

// LinkModel computes the one-way delivery delay for a payload of the given
// size between two nodes. Implementations must be safe for concurrent use.
type LinkModel interface {
	Delay(from, to NodeID, size int) time.Duration
}

// UniformLink models every pair of distinct nodes with the same base
// propagation latency plus size/bandwidth serialization delay and
// optional ±Jitter. Loopback delivery is immediate.
type UniformLink struct {
	Latency   time.Duration // one-way propagation
	BytesPerS float64       // bandwidth; 0 disables the serialization term
	Jitter    time.Duration // uniform ±Jitter added to Latency

	mu  sync.Mutex
	rng *rand.Rand
}

// NewUniformLink returns a link model with the given latency and a 1 Gb/s
// bandwidth default matching the paper's testbed (scaled time).
func NewUniformLink(latency time.Duration) *UniformLink {
	return &UniformLink{
		Latency:   latency,
		BytesPerS: 125e6, // 1 Gb/s
		rng:       rand.New(rand.NewSource(42)),
	}
}

// Delay implements LinkModel.
func (l *UniformLink) Delay(from, to NodeID, size int) time.Duration {
	if from == to {
		return 0
	}
	d := l.Latency
	if l.BytesPerS > 0 {
		d += time.Duration(float64(size) / l.BytesPerS * float64(time.Second))
	}
	if l.Jitter > 0 {
		l.mu.Lock()
		j := time.Duration(l.rng.Int63n(int64(2*l.Jitter))) - l.Jitter
		l.mu.Unlock()
		d += j
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ZeroLink delivers everything instantly; unit tests use it.
type ZeroLink struct{}

// Delay implements LinkModel.
func (ZeroLink) Delay(NodeID, NodeID, int) time.Duration { return 0 }

// Network connects a set of nodes. Create one per simulated cluster.
type Network struct {
	link LinkModel

	mu        sync.RWMutex
	endpoints map[NodeID]*Endpoint
	down      map[NodeID]bool
	cut       map[[2]NodeID]bool // unordered pair partitions
	closed    bool
}

// NewNetwork returns an empty network using the given link model.
func NewNetwork(link LinkModel) *Network {
	if link == nil {
		link = ZeroLink{}
	}
	return &Network{
		link:      link,
		endpoints: make(map[NodeID]*Endpoint),
		down:      make(map[NodeID]bool),
		cut:       make(map[[2]NodeID]bool),
	}
}

// ErrClosed is returned when sending through a closed network or endpoint.
var ErrClosed = errors.New("cluster: network closed")

// Register attaches a node to the network and returns its endpoint. The
// inbox holds up to queue messages; deliveries beyond that block the
// delivery goroutine, applying natural backpressure. Registering the same
// id twice panics: it is a programming error in cluster assembly.
func (n *Network) Register(id NodeID, queue int) *Endpoint {
	if queue <= 0 {
		queue = 4096
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		panic("cluster: register on closed network")
	}
	if _, dup := n.endpoints[id]; dup {
		panic(fmt.Sprintf("cluster: duplicate node id %d", id))
	}
	ep := &Endpoint{
		id:    id,
		net:   n,
		inbox: make(chan Envelope, queue),
	}
	n.endpoints[id] = ep
	return ep
}

// Nodes returns the ids of all registered endpoints.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := make([]NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		ids = append(ids, id)
	}
	return ids
}

// Crash marks a node as failed: messages to and from it are dropped until
// Restart. The endpoint itself stays registered so state survives restart,
// matching a process crash that keeps its disk.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	n.down[id] = true
	n.mu.Unlock()
}

// Restart clears the crash flag for a node.
func (n *Network) Restart(id NodeID) {
	n.mu.Lock()
	delete(n.down, id)
	n.mu.Unlock()
}

// Partition cuts bidirectional connectivity between a and b.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	n.cut[pairKey(a, b)] = true
	n.mu.Unlock()
}

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	delete(n.cut, pairKey(a, b))
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.cut = make(map[[2]NodeID]bool)
	n.mu.Unlock()
}

func pairKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Close shuts the network down; all inboxes are closed and further sends
// return ErrClosed.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, ep := range n.endpoints {
		ep.closeInbox()
	}
}

// reachable reports whether a message from -> to would currently be
// delivered.
func (n *Network) reachable(from, to NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed || n.down[from] || n.down[to] {
		return false
	}
	return !n.cut[pairKey(from, to)]
}

func (n *Network) endpoint(id NodeID) *Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.endpoints[id]
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	id    NodeID
	net   *Network
	inbox chan Envelope

	closeOnce sync.Once
}

// ID returns the node id of this endpoint.
func (e *Endpoint) ID() NodeID { return e.id }

// Inbox returns the channel of incoming messages. It is closed when the
// network shuts down.
func (e *Endpoint) Inbox() <-chan Envelope { return e.inbox }

func (e *Endpoint) closeInbox() {
	e.closeOnce.Do(func() { close(e.inbox) })
}

// Send delivers msg to the destination node after the modeled link delay.
// Delivery is asynchronous: Send returns immediately. Messages between the
// same pair of nodes are delivered in send order (FIFO links), which Raft
// and PBFT both assume of their transport.
func (e *Endpoint) Send(to NodeID, msg Message) error {
	dst := e.net.endpoint(to)
	if dst == nil {
		return fmt.Errorf("cluster: unknown node %d", to)
	}
	if !e.net.reachable(e.id, to) {
		// Dropped silently, like a real network during partition/crash.
		return nil
	}
	delay := e.net.link.Delay(e.id, to, msg.Size())
	env := Envelope{From: e.id, Msg: msg}
	if delay == 0 {
		dst.deliver(env)
		return nil
	}
	// A per-destination delivery queue would preserve FIFO under delay;
	// with a uniform link model equal delays preserve order through the
	// timer heap, so a goroutine per message suffices and keeps the
	// implementation simple. Jittered links may reorder, which consensus
	// protocols must tolerate anyway.
	time.AfterFunc(delay, func() {
		if e.net.reachable(e.id, to) {
			dst.deliver(env)
		}
	})
	return nil
}

func (e *Endpoint) deliver(env Envelope) {
	defer func() {
		// Recover from send-on-closed when the network shuts down while
		// timers are in flight; losing messages at shutdown is fine.
		_ = recover()
	}()
	e.inbox <- env
}

// Broadcast sends msg to every other registered node.
func (e *Endpoint) Broadcast(msg Message) {
	for _, id := range e.net.Nodes() {
		if id != e.id {
			_ = e.Send(id, msg)
		}
	}
}
