// Package cluster simulates the multi-node deployment the paper runs on a
// 96-machine, 1 Gb Ethernet testbed. Every node lives in-process; messages
// between nodes cross a Network that models per-link propagation latency and
// serialization (bandwidth) delay, and supports fault injection: node
// crashes, restarts, and network partitions.
//
// The simulation deliberately keeps the *structure* of distributed cost —
// number of message rounds, fan-out, payload size — while scaling absolute
// latency down so that experiments finish quickly. Consensus protocols built
// on top of it therefore exhibit the paper's qualitative behaviour (O(N)
// CFT vs O(N²) BFT traffic, view-change sensitivity) at tractable speed.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID identifies a node within one Network.
type NodeID int

// Message is an opaque payload delivered between nodes. Size is used by the
// bandwidth model; implementations report their serialized size rather than
// actually serializing, which keeps the hot path allocation-free.
type Message interface {
	// Size returns the approximate wire size of the message in bytes.
	Size() int
}

// Envelope is a delivered message together with its sender.
type Envelope struct {
	From NodeID
	Msg  Message
}

// LinkModel computes the one-way delivery delay for a payload of the given
// size between two nodes. Implementations must be safe for concurrent use.
type LinkModel interface {
	Delay(from, to NodeID, size int) time.Duration
}

// FaultHook is consulted on every Send that passes the reachability
// check: it may drop the message outright (silently, like loss on the
// wire) or add extra in-flight delay on top of the link model's. Extra
// delay reorders traffic *across* endpoint pairs while the per-pair
// FIFO guarantee below is preserved — the reordering consensus
// transports must actually tolerate. Implementations must be safe for
// concurrent use; the chaos injector provides one.
type FaultHook func(from, to NodeID) (drop bool, delay time.Duration)

// UniformLink models every pair of distinct nodes with the same base
// propagation latency plus size/bandwidth serialization delay and
// optional ±Jitter. Loopback delivery is immediate.
type UniformLink struct {
	Latency   time.Duration // one-way propagation
	BytesPerS float64       // bandwidth; 0 disables the serialization term
	Jitter    time.Duration // uniform ±Jitter added to Latency

	mu  sync.Mutex
	rng *rand.Rand
}

// NewUniformLink returns a link model with the given latency and a 1 Gb/s
// bandwidth default matching the paper's testbed (scaled time).
func NewUniformLink(latency time.Duration) *UniformLink {
	return &UniformLink{
		Latency:   latency,
		BytesPerS: 125e6, // 1 Gb/s
		rng:       rand.New(rand.NewSource(42)),
	}
}

// Delay implements LinkModel.
func (l *UniformLink) Delay(from, to NodeID, size int) time.Duration {
	if from == to {
		return 0
	}
	d := l.Latency
	if l.BytesPerS > 0 {
		d += time.Duration(float64(size) / l.BytesPerS * float64(time.Second))
	}
	if l.Jitter > 0 {
		l.mu.Lock()
		j := time.Duration(l.rng.Int63n(int64(2*l.Jitter))) - l.Jitter
		l.mu.Unlock()
		d += j
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ZeroLink delivers everything instantly; unit tests use it.
type ZeroLink struct{}

// Delay implements LinkModel.
func (ZeroLink) Delay(NodeID, NodeID, int) time.Duration { return 0 }

// Network connects a set of nodes. Create one per simulated cluster.
type Network struct {
	link   LinkModel
	quit   chan struct{} // closed on Close; stops endpoint pumps
	faults atomic.Pointer[FaultHook]

	mu        sync.RWMutex
	endpoints map[NodeID]*Endpoint
	down      map[NodeID]bool
	cut       map[[2]NodeID]bool // unordered pair partitions
	closed    bool
}

// NewNetwork returns an empty network using the given link model.
func NewNetwork(link LinkModel) *Network {
	if link == nil {
		link = ZeroLink{}
	}
	return &Network{
		link:      link,
		quit:      make(chan struct{}),
		endpoints: make(map[NodeID]*Endpoint),
		down:      make(map[NodeID]bool),
		cut:       make(map[[2]NodeID]bool),
	}
}

// ErrClosed is returned when sending through a closed network or endpoint.
var ErrClosed = errors.New("cluster: network closed")

// ErrBackpressure is returned by Send when the sender's bounded outbound
// queue is full — the network-card analogue of a full transmit ring.
// Protocol messages treat it as loss (retransmission recovers); proposal
// forwarding propagates it so clients retry, which is the flow control
// that keeps unbounded bursts from wedging a consensus state machine.
var ErrBackpressure = errors.New("cluster: send queue full")

// Register attaches a node to the network and returns its endpoint. The
// inbox holds up to queue messages, and the outbound queue is bounded to
// the same depth: Send never blocks the caller — when the outbox is full
// it fails fast with ErrBackpressure instead of stalling a state machine
// that may be holding its own lock. Registering the same id twice panics:
// it is a programming error in cluster assembly.
func (n *Network) Register(id NodeID, queue int) *Endpoint {
	if queue <= 0 {
		queue = 4096
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		//lint:allow nopanic API-misuse guard, registration races teardown only through a caller bug
		panic("cluster: register on closed network")
	}
	if _, dup := n.endpoints[id]; dup {
		//lint:allow nopanic API-misuse guard, duplicate ids are a construction-time bug
		panic(fmt.Sprintf("cluster: duplicate node id %d", id))
	}
	ep := &Endpoint{
		id:    id,
		net:   n,
		queue: queue,
		inbox: make(chan Envelope, queue),
		outs:  make(map[NodeID]*conn),
	}
	n.endpoints[id] = ep
	return ep
}

// Nodes returns the ids of all registered endpoints.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := make([]NodeID, 0, len(n.endpoints))
	for id := range n.endpoints {
		ids = append(ids, id)
	}
	return ids
}

// Crash marks a node as failed: messages to and from it are dropped until
// Restart. The endpoint itself stays registered so state survives restart,
// matching a process crash that keeps its disk.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	n.down[id] = true
	n.mu.Unlock()
}

// Restart clears the crash flag for a node.
func (n *Network) Restart(id NodeID) {
	n.mu.Lock()
	delete(n.down, id)
	n.mu.Unlock()
}

// Partition cuts bidirectional connectivity between a and b.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	n.cut[pairKey(a, b)] = true
	n.mu.Unlock()
}

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	delete(n.cut, pairKey(a, b))
	n.mu.Unlock()
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.cut = make(map[[2]NodeID]bool)
	n.mu.Unlock()
}

func pairKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Close shuts the network down; endpoint pumps stop, all inboxes are
// closed, and further sends are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	close(n.quit)
	for _, ep := range n.endpoints {
		ep.closeInbox()
	}
}

// SetFaults installs (or, with nil, removes) the message-fault hook.
// Takes effect for subsequent sends; in-flight messages are untouched.
func (n *Network) SetFaults(hook FaultHook) {
	if hook == nil {
		n.faults.Store(nil)
		return
	}
	n.faults.Store(&hook)
}

func (n *Network) faultHook() FaultHook {
	if p := n.faults.Load(); p != nil {
		return *p
	}
	return nil
}

// reachable reports whether a message from -> to would currently be
// delivered.
func (n *Network) reachable(from, to NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed || n.down[from] || n.down[to] {
		return false
	}
	return !n.cut[pairKey(from, to)]
}

func (n *Network) endpoint(id NodeID) *Endpoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.endpoints[id]
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	id      NodeID
	net     *Network
	queue   int
	inbox   chan Envelope
	dropped atomic.Uint64

	// outs holds one bounded outbound connection per destination — the
	// simulation's analogue of a TCP connection per peer. Each queue is
	// drained by its own pump goroutine, so one slow receiver never
	// head-of-line-blocks traffic to the others.
	outMu sync.Mutex
	outs  map[NodeID]*conn

	// sendMu guards inbox against close-during-send: deliverers hold it
	// shared, closeInbox holds it exclusively. Deliverers never hold it
	// across shutdown — the quit channel (closed before any inbox)
	// unblocks them first.
	sendMu      sync.RWMutex
	inboxClosed bool
	closeOnce   sync.Once
}

// outbound is one queued send: the envelope and the instant the link
// model says it arrives.
type outbound struct {
	env Envelope
	due time.Time
}

// conn is one sender→destination link: a bounded queue plus the count of
// messages accepted but not yet delivered. inflight gates the inline
// fast path — a zero-delay send may skip the queue only when nothing is
// pending on it, which preserves the link's FIFO order.
type conn struct {
	ch       chan outbound
	inflight atomic.Int64
}

// ID returns the node id of this endpoint.
func (e *Endpoint) ID() NodeID { return e.id }

// Inbox returns the channel of incoming messages. It is closed when the
// network shuts down.
func (e *Endpoint) Inbox() <-chan Envelope { return e.inbox }

func (e *Endpoint) closeInbox() {
	e.closeOnce.Do(func() {
		e.sendMu.Lock()
		e.inboxClosed = true
		close(e.inbox)
		e.sendMu.Unlock()
	})
}

// Send delivers (or queues) msg toward the destination node after the
// modeled link delay. Send never blocks and its memory footprint is
// bounded — a consensus state machine holding its own mutex must never
// wedge on a slow peer's inbox, the flow-control gap an unbounded burst
// used to expose:
//
//   - Fast path: a zero-delay send with nothing pending on the link goes
//     straight into the destination inbox when there is room. This keeps
//     the global enqueue order of concurrent broadcasts causally
//     consistent — the lockstep the height-sequential BFT protocols rely
//     on, since they drop other-height messages rather than backlog them.
//   - Queued path: delayed sends, and sends the inbox can't take right
//     now, enter the link's fixed-size queue, drained in FIFO order by
//     the link's pump. A full queue fails fast with ErrBackpressure;
//     protocol messages treat that as loss (retransmission recovers) and
//     proposal forwarding propagates it so clients retry.
//
// Messages between the same pair of nodes are delivered in send order
// (FIFO links), which Raft and PBFT both assume of their transport.
func (e *Endpoint) Send(to NodeID, msg Message) error {
	dst := e.net.endpoint(to)
	if dst == nil {
		return fmt.Errorf("cluster: unknown node %d", to)
	}
	if !e.net.reachable(e.id, to) {
		// Dropped silently, like a real network during partition/crash.
		return nil
	}
	delay := e.net.link.Delay(e.id, to, msg.Size())
	if hook := e.net.faultHook(); hook != nil {
		drop, extra := hook(e.id, to)
		if drop {
			// Dropped silently: injected loss is indistinguishable from
			// the wire kind, which is the point.
			return nil
		}
		delay += extra
	}
	env := Envelope{From: e.id, Msg: msg}
	c := e.connTo(to)
	if delay == 0 && c.inflight.Load() == 0 && dst.tryDeliver(env) {
		return nil
	}
	c.inflight.Add(1)
	select {
	case c.ch <- outbound{env: env, due: time.Now().Add(delay)}:
		return nil
	default:
		c.inflight.Add(-1)
		e.dropped.Add(1)
		return ErrBackpressure
	}
}

// Dropped reports how many messages Send rejected with ErrBackpressure.
func (e *Endpoint) Dropped() uint64 { return e.dropped.Load() }

// connTo returns the link toward one destination, starting its pump on
// first use.
func (e *Endpoint) connTo(to NodeID) *conn {
	e.outMu.Lock()
	defer e.outMu.Unlock()
	c, ok := e.outs[to]
	if !ok {
		c = &conn{ch: make(chan outbound, e.queue)}
		e.outs[to] = c
		go e.pump(to, c)
	}
	return c
}

// pump drains one link's queue in order, waits out each message's link
// delay, and delivers it. Per-pair FIFO is exact; a jittered link
// inflates a reordered message's delay to its predecessor's instead of
// reordering, which is within the model's tolerance. Delivery into a
// full destination inbox blocks only this pair's pump — the receiver's
// backpressure propagates to this one queue, never into the sender's
// state machine and never across its other links.
func (e *Endpoint) pump(to NodeID, c *conn) {
	for {
		select {
		case <-e.net.quit:
			return
		case out := <-c.ch:
			if wait := time.Until(out.due); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-e.net.quit:
					timer.Stop()
					return
				}
			}
			// Reachability is evaluated at delivery time, so a crash or
			// partition that lands mid-flight still drops the message.
			if e.net.reachable(e.id, to) {
				if dst := e.net.endpoint(to); dst != nil {
					dst.deliver(out.env, e.net.quit)
				}
			}
			c.inflight.Add(-1)
		}
	}
}

// tryDeliver lands the envelope in the inbox only if there is room right
// now.
func (e *Endpoint) tryDeliver(env Envelope) bool {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.inboxClosed {
		return true // swallowed, like any delivery racing shutdown
	}
	select {
	case e.inbox <- env:
		return true
	default:
		return false
	}
}

// deliver blocks until the envelope lands in the inbox or the network
// shuts down; losing messages at shutdown is fine.
func (e *Endpoint) deliver(env Envelope, quit <-chan struct{}) {
	e.sendMu.RLock()
	defer e.sendMu.RUnlock()
	if e.inboxClosed {
		return
	}
	select {
	case e.inbox <- env:
	case <-quit:
	}
}

// Broadcast sends msg to every other registered node.
func (e *Endpoint) Broadcast(msg Message) {
	for _, id := range e.net.Nodes() {
		if id != e.id {
			_ = e.Send(id, msg)
		}
	}
}
