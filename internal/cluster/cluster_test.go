package cluster

import (
	"testing"
	"time"
)

type testMsg struct {
	seq int
	sz  int
}

func (m testMsg) Size() int { return m.sz }

func TestSendReceive(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	a := net.Register(1, 16)
	b := net.Register(2, 16)
	if err := a.Send(2, testMsg{seq: 7}); err != nil {
		t.Fatal(err)
	}
	env := <-b.Inbox()
	if env.From != 1 || env.Msg.(testMsg).seq != 7 {
		t.Fatalf("got %+v", env)
	}
}

func TestSendUnknownNode(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	a := net.Register(1, 1)
	if err := a.Send(99, testMsg{}); err == nil {
		t.Fatal("expected error for unknown destination")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	net.Register(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate register")
		}
	}()
	net.Register(1, 1)
}

func TestCrashDropsMessages(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	a := net.Register(1, 16)
	b := net.Register(2, 16)
	net.Crash(2)
	if err := a.Send(2, testMsg{seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		t.Fatalf("crashed node received %+v", env)
	case <-time.After(20 * time.Millisecond):
	}
	net.Restart(2)
	if err := a.Send(2, testMsg{seq: 2}); err != nil {
		t.Fatal(err)
	}
	env := <-b.Inbox()
	if env.Msg.(testMsg).seq != 2 {
		t.Fatalf("got seq %d after restart, want 2", env.Msg.(testMsg).seq)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	a := net.Register(1, 16)
	b := net.Register(2, 16)
	net.Partition(1, 2)
	_ = a.Send(2, testMsg{seq: 1})
	select {
	case <-b.Inbox():
		t.Fatal("partitioned nodes exchanged a message")
	case <-time.After(20 * time.Millisecond):
	}
	net.Heal(1, 2)
	_ = a.Send(2, testMsg{seq: 2})
	if env := <-b.Inbox(); env.Msg.(testMsg).seq != 2 {
		t.Fatal("message lost after heal")
	}
}

func TestHealAll(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	a := net.Register(1, 16)
	b := net.Register(2, 16)
	net.Partition(1, 2)
	net.HealAll()
	_ = a.Send(2, testMsg{seq: 3})
	if env := <-b.Inbox(); env.Msg.(testMsg).seq != 3 {
		t.Fatal("HealAll did not restore connectivity")
	}
}

func TestBroadcast(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	a := net.Register(1, 16)
	b := net.Register(2, 16)
	c := net.Register(3, 16)
	a.Broadcast(testMsg{seq: 9})
	for _, ep := range []*Endpoint{b, c} {
		env := <-ep.Inbox()
		if env.Msg.(testMsg).seq != 9 {
			t.Fatalf("node %d got %+v", ep.ID(), env)
		}
	}
	select {
	case <-a.Inbox():
		t.Fatal("sender received its own broadcast")
	case <-time.After(10 * time.Millisecond):
	}
}

func TestUniformLinkDelay(t *testing.T) {
	l := NewUniformLink(time.Millisecond)
	if d := l.Delay(1, 1, 1000); d != 0 {
		t.Fatalf("loopback delay = %v, want 0", d)
	}
	d := l.Delay(1, 2, 125_000) // 1ms serialization at 1 Gb/s
	if d < 1900*time.Microsecond || d > 2100*time.Microsecond {
		t.Fatalf("delay = %v, want ~2ms", d)
	}
}

func TestUniformLinkJitterBounds(t *testing.T) {
	l := NewUniformLink(time.Millisecond)
	l.BytesPerS = 0
	l.Jitter = 200 * time.Microsecond
	for i := 0; i < 100; i++ {
		d := l.Delay(1, 2, 10)
		if d < 800*time.Microsecond || d > 1200*time.Microsecond {
			t.Fatalf("jittered delay %v out of bounds", d)
		}
	}
}

func TestDelayedDelivery(t *testing.T) {
	net := NewNetwork(NewUniformLink(5 * time.Millisecond))
	defer net.Close()
	a := net.Register(1, 16)
	b := net.Register(2, 16)
	start := time.Now()
	_ = a.Send(2, testMsg{seq: 1, sz: 100})
	<-b.Inbox()
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ ~5ms", elapsed)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	a := net.Register(1, 16)
	net.Register(2, 16)
	net.Close()
	if err := a.Send(2, testMsg{}); err != nil {
		// Either silently dropped or error is acceptable; must not panic.
		t.Logf("send after close: %v", err)
	}
}

func TestNodesList(t *testing.T) {
	net := NewNetwork(ZeroLink{})
	defer net.Close()
	net.Register(3, 1)
	net.Register(1, 1)
	if got := len(net.Nodes()); got != 2 {
		t.Fatalf("Nodes() returned %d ids, want 2", got)
	}
}
