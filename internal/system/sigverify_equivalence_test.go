// System-level equivalence of the signature-verification modes: for each
// system family, the same sequential workload — honest transactions plus
// planted bad-signature submissions — must produce identical per-tx
// verdicts and byte-identical replica state under serial, batch, and
// (for Fabric) aggregate verification. The txn- and cryptoutil-level
// tests prove per-index verdict equality and bisection isolation; this
// test proves the wiring through the validate stages preserves it
// end-to-end. Plus the cost-accounting satellite: with the verified-
// signature cache, an E-peer Fabric endorsement costs one client curve
// check, not E.
package system_test

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/state"
	"dichotomy/internal/system"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/txn"
)

// sigWorkload drives a deterministic sequential mix through sys: honest
// kv puts interleaved with submissions whose client signature was
// corrupted after signing. It returns the per-tx verdict string
// ("C"=committed, "A"=rejected/aborted).
func sigWorkload(t *testing.T, sys system.System, client *cryptoutil.Signer) string {
	t.Helper()
	verdicts := ""
	for i := 0; i < 12; i++ {
		tx := signTx(t, client, "kv", "put", fmt.Sprintf("sigv-key-%d", i), fmt.Sprintf("val-%d", i))
		if i == 4 || i == 9 {
			tx.Sig[i] ^= 0x01 // planted bad client signature
		}
		r := sys.Execute(tx)
		if r.Committed {
			verdicts += "C"
		} else {
			verdicts += "A"
		}
		if (i == 4 || i == 9) && r.Committed {
			t.Fatalf("tx %d with corrupted signature committed", i)
		}
	}
	return verdicts
}

func TestSigVerifyModeEquivalence(t *testing.T) {
	client := cryptoutil.MustNewSigner("sigv-client")
	families := []struct {
		name   string
		modes  []string
		build  func(t *testing.T, mode string) system.System
		states func(sys system.System) []*state.Store
	}{
		{
			name:  "fabric",
			modes: []string{"serial", "batch", "aggregate"},
			build: func(t *testing.T, mode string) system.System {
				nw, err := fabric.New(fabric.Config{
					Peers:                 4,
					ValidationWorkers:     3,
					PipelineDepth:         2,
					BatchVerify:           mode == "batch",
					AggregateEndorsements: mode == "aggregate",
				})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			states: func(sys system.System) []*state.Store {
				nw := sys.(*fabric.Network)
				out := make([]*state.Store, 4)
				for i := range out {
					out[i] = nw.State(i)
				}
				return out
			},
		},
		{
			name:  "quorum",
			modes: []string{"serial", "batch"},
			build: func(t *testing.T, mode string) system.System {
				nw, err := quorum.New(quorum.Config{
					Nodes:            4,
					ExecutionWorkers: 3,
					PipelineDepth:    2,
					BatchVerify:      mode == "batch",
				})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			states: func(sys system.System) []*state.Store {
				nw := sys.(*quorum.Network)
				out := make([]*state.Store, 4)
				for i := range out {
					out[i] = nw.State(i)
				}
				return out
			},
		},
		{
			name:  "veritas",
			modes: []string{"serial", "batch"},
			build: func(t *testing.T, mode string) system.System {
				v, err := hybrid.NewVeritas(hybrid.VeritasConfig{
					Verifiers:         3,
					ValidationWorkers: 3,
					PipelineDepth:     2,
					VerifyClients:     true,
					BatchVerify:       mode == "batch",
				})
				if err != nil {
					t.Fatal(err)
				}
				v.RegisterClient(client.Name(), client.Public())
				return v
			},
			states: func(sys system.System) []*state.Store {
				v := sys.(*hybrid.Veritas)
				out := make([]*state.Store, 3)
				for i := range out {
					out[i] = v.State(i)
				}
				return out
			},
		},
	}

	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			var refVerdicts string
			var refDump map[string]string
			for _, mode := range fam.modes {
				cryptoutil.ResetSigCache()
				sys := fam.build(t, mode)
				verdicts := sigWorkload(t, sys, client)

				// Execute returns when the acking replica seals; poll the
				// laggards until every replica agrees, as the pipeline
				// equivalence test does.
				stores := fam.states(sys)
				deadline := time.Now().Add(15 * time.Second)
				var dumps []map[string]string
				for {
					dumps = dumps[:0]
					for _, st := range stores {
						dumps = append(dumps, dumpState(st))
					}
					equal := true
					for i := 1; i < len(dumps); i++ {
						if !dumpsEqual(dumps[0], dumps[i]) {
							equal = false
							break
						}
					}
					if equal {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("%s/%s: replicas never converged", fam.name, mode)
					}
					time.Sleep(20 * time.Millisecond)
				}
				sys.Close()
				// Planted-bad writes never reached state.
				for _, bad := range []int{4, 9} {
					if _, ok := dumps[0][fmt.Sprintf("sigv-key-%d", bad)]; ok {
						t.Fatalf("%s/%s: corrupted tx %d wrote state", fam.name, mode, bad)
					}
				}
				if refVerdicts == "" {
					refVerdicts, refDump = verdicts, dumps[0]
					continue
				}
				// This mode matches the family's serial baseline exactly.
				if verdicts != refVerdicts {
					t.Errorf("%s/%s verdicts %q differ from serial %q", fam.name, mode, verdicts, refVerdicts)
				}
				if !dumpsEqual(refDump, dumps[0]) {
					t.Errorf("%s/%s final state differs from serial baseline", fam.name, mode)
				}
			}
		})
	}
}

// TestFabricEndorsedTxCostsOneClientCheck pins the redundant-verification
// fix: every endorsing peer authenticates the same client signature, and
// the verified-signature cache (with single-flight on concurrent misses)
// collapses those E checks to one curve check per transaction. Batch mode
// keeps endorsement checks out of VerifyOps (they account per batch), so
// the client checks are exactly the VerifyOps delta.
func TestFabricEndorsedTxCostsOneClientCheck(t *testing.T) {
	const peers, iters = 4, 6
	client := cryptoutil.MustNewSigner("sigv-cost-client")
	nw, err := fabric.New(fabric.Config{
		Peers:       peers,
		BatchVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.RegisterClient(client.Name(), client.Public())

	cryptoutil.ResetSigCache()
	v0 := cryptoutil.VerifyOps()
	b0 := cryptoutil.BatchVerifyOps()
	h0, _ := cryptoutil.SigCacheStats()
	for i := 0; i < iters; i++ {
		r := nw.Execute(mustSignTx(t, client, fmt.Sprintf("cost-key-%d", i)))
		if r.Err != nil || !r.Committed {
			t.Fatalf("tx %d: %+v", i, r)
		}
	}
	if got := cryptoutil.VerifyOps() - v0; got != iters {
		t.Errorf("VerifyOps advanced by %d for %d txs × %d peers, want %d (one cached client check per tx, not %d)",
			got, iters, peers, iters, iters*peers)
	}
	if got := cryptoutil.BatchVerifyOps() - b0; got < iters {
		t.Errorf("BatchVerifyOps advanced by %d, want ≥ %d (endorsements verify in batches)", got, iters)
	}
	h1, _ := cryptoutil.SigCacheStats()
	if got := h1 - h0; got < uint64(iters*(peers-1)) {
		t.Errorf("cache hits advanced by %d, want ≥ %d (the other %d peers hit the client check)",
			got, iters*(peers-1), peers-1)
	}
}

func mustSignTx(t *testing.T, client *cryptoutil.Signer, key string) *txn.Tx {
	t.Helper()
	return signTx(t, client, "kv", "put", key, "v")
}
