// Mempool-fed vs direct-path conformance for the ingress front door.
//
// Three claims pin the redesigned Submit API to the paper-faithful
// Execute path it replaced:
//
//  1. Equivalence — a deterministic serial workload produces identical
//     per-transaction verdicts and value-identical final state whether it
//     enters through the mempool or calls the pipeline directly, and a
//     concurrent conflicting Smallbank workload through the mempool still
//     leaves every replica byte-identical (versions included) with total
//     balance conserved. Run with -race this is also the thread-safety
//     proof for the sink paths.
//  2. Dedup — concurrent submissions of one identical transaction (equal
//     content hash, the collision that corrupted per-system waiter maps
//     before the mempool existed) share a single execution: both callers
//     observe the same committed result and the money moves exactly once.
//  3. Overload — an open-loop burst far past the system's measured peak
//     sheds at admission with the typed ingress.ErrOverloaded, keeps
//     queueing delay bounded by the mempool capacity, and leaves the
//     system healthy once the burst passes.
package system_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/bench"
	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/ingress"
	"dichotomy/internal/state"
	"dichotomy/internal/system"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/txn"
)

// ingressCase builds one system twice — direct (nil Ingress) and
// mempool-fed — and exposes its replica stores and front-door stats.
type ingressCase struct {
	name   string
	build  func(t *testing.T, ic *ingress.Config) system.System
	states func(sys system.System) []*state.Store
	stats  func(sys system.System) (ingress.Stats, bool)
}

func ingressCases(client *cryptoutil.Signer) []ingressCase {
	return []ingressCase{
		{
			name: "fabric",
			build: func(t *testing.T, ic *ingress.Config) system.System {
				nw, err := fabric.New(fabric.Config{Peers: 4, Ingress: ic})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			states: func(sys system.System) []*state.Store {
				nw := sys.(*fabric.Network)
				out := make([]*state.Store, 4)
				for i := range out {
					out[i] = nw.State(i)
				}
				return out
			},
			stats: func(sys system.System) (ingress.Stats, bool) {
				return sys.(*fabric.Network).IngressStats()
			},
		},
		{
			name: "quorum",
			build: func(t *testing.T, ic *ingress.Config) system.System {
				nw, err := quorum.New(quorum.Config{Nodes: 4, Ingress: ic})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			states: func(sys system.System) []*state.Store {
				nw := sys.(*quorum.Network)
				out := make([]*state.Store, 4)
				for i := range out {
					out[i] = nw.State(i)
				}
				return out
			},
			stats: func(sys system.System) (ingress.Stats, bool) {
				return sys.(*quorum.Network).IngressStats()
			},
		},
		{
			name: "veritas",
			build: func(t *testing.T, ic *ingress.Config) system.System {
				v, err := hybrid.NewVeritas(hybrid.VeritasConfig{Verifiers: 3, Ingress: ic})
				if err != nil {
					t.Fatal(err)
				}
				return v
			},
			states: func(sys system.System) []*state.Store {
				v := sys.(*hybrid.Veritas)
				out := make([]*state.Store, 3)
				for i := range out {
					out[i] = v.State(i)
				}
				return out
			},
			stats: func(sys system.System) (ingress.Stats, bool) {
				return sys.(*hybrid.Veritas).IngressStats()
			},
		},
	}
}

// dumpValues snapshots key→value without commit versions: the mempool
// batches transactions into different block boundaries than the direct
// path, so versions legitimately differ while values must not.
func dumpValues(st *state.Store) map[string]string {
	out := make(map[string]string)
	st.Range(func(key string, value []byte) bool {
		out[key] = fmt.Sprintf("%x", value)
		return true
	})
	return out
}

func waitReplicasEqual(t *testing.T, stores []*state.Store) []map[string]string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		dumps := make([]map[string]string, 0, len(stores))
		for _, st := range stores {
			dumps = append(dumps, dumpState(st))
		}
		equal := true
		for i := 1; i < len(dumps); i++ {
			if !dumpsEqual(dumps[0], dumps[i]) {
				equal = false
				break
			}
		}
		if equal {
			return dumps
		}
		if time.Now().After(deadline) {
			for i, d := range dumps {
				t.Logf("replica %d: %v", i, d)
			}
			t.Fatal("replica states diverged on the mempool-fed path")
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestIngressEquivalence(t *testing.T) {
	client := cryptoutil.MustNewSigner("ingress-equiv-client")
	poolCfg := &ingress.Config{MaxBlock: 8, BuildInterval: time.Millisecond}
	for _, tc := range ingressCases(client) {
		t.Run(tc.name, func(t *testing.T) {
			direct := tc.build(t, nil)
			defer direct.Close()
			pooled := tc.build(t, poolCfg)
			defer pooled.Close()
			if _, ok := tc.stats(direct); ok {
				t.Fatal("direct build reports ingress stats")
			}
			if _, ok := tc.stats(pooled); !ok {
				t.Fatal("mempool build reports no ingress stats")
			}

			// Phase 1: a deterministic serial workload, letting every
			// replica catch up between transactions so endorsement-lag
			// aborts cannot inject noise. Verdicts and final values must
			// match transaction for transaction.
			type verdict struct {
				committed bool
				reason    string
			}
			run := func(sys system.System, stores []*state.Store) []verdict {
				var out []verdict
				for i := 0; i < pipeAccounts; i++ {
					r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
						pipeAccount(i), string(contract.EncodeInt64(pipeInitial)),
						string(contract.EncodeInt64(pipeInitial))))
					if r.Err != nil {
						t.Fatalf("create_account %d: %+v", i, r)
					}
					out = append(out, verdict{r.Committed, r.Reason.String()})
					waitReplicasEqual(t, stores)
				}
				for i := 0; i < 12; i++ {
					r := sys.Execute(signTx(t, client, contract.SmallbankName, "send_payment",
						pipeAccount(i), pipeAccount(i+1),
						string(contract.EncodeInt64(int64(1+i)))))
					if r.Err != nil && !errors.Is(r.Err, contract.ErrAbort) {
						t.Fatalf("send_payment %d: %v", i, r.Err)
					}
					out = append(out, verdict{r.Committed, r.Reason.String()})
					waitReplicasEqual(t, stores)
				}
				return out
			}
			vd := run(direct, tc.states(direct))
			vp := run(pooled, tc.states(pooled))
			for i := range vd {
				if vd[i] != vp[i] {
					t.Fatalf("tx %d: direct verdict %+v, mempool verdict %+v", i, vd[i], vp[i])
				}
			}
			if dv, pv := dumpValues(tc.states(direct)[0]), dumpValues(tc.states(pooled)[0]); !dumpsEqual(dv, pv) {
				t.Fatalf("final values diverge:\ndirect:  %v\nmempool: %v", dv, pv)
			}

			// Phase 2: concurrent conflicting transfers through the mempool.
			// Replicas must stay byte-identical (versions included) and the
			// total balance conserved — the mempool path's pipeline proof.
			var wg sync.WaitGroup
			for w := 0; w < pipeWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < pipeIters; i++ {
						amt := string(contract.EncodeInt64(int64(100 + w*pipeIters + i)))
						r := pooled.Execute(signTx(t, client, contract.SmallbankName,
							"send_payment", pipeAccount(w+i), pipeAccount(w+i+1), amt))
						if r.Err != nil && !errors.Is(r.Err, contract.ErrAbort) {
							t.Errorf("worker %d tx %d: %v", w, i, r.Err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			stores := tc.states(pooled)
			waitReplicasEqual(t, stores)
			var total int64
			for i := 0; i < pipeAccounts; i++ {
				for _, prefix := range []string{"chk:", "sav:"} {
					v, _, err := stores[0].Get(prefix + pipeAccount(i))
					if err != nil {
						t.Fatalf("read %s%s: %v", prefix, pipeAccount(i), err)
					}
					total += contract.DecodeInt64(v)
				}
			}
			if want := 2 * pipeInitial * pipeAccounts; total != want {
				t.Fatalf("total balance %d, want %d — a mempool-path verdict diverged", total, want)
			}
			st, _ := tc.stats(pooled)
			if st.Admitted == 0 || st.Blocks == 0 {
				t.Fatalf("workload bypassed the mempool: %+v", st)
			}
		})
	}
}

// TestIngressDedupRegression is the regression for the waiter-map
// collision documented since the recovery work: two concurrent
// submissions of one identical transaction (same content hash) used to
// race in the per-system waiter registries. Through the mempool they
// share a single pending handle — both callers get the same committed
// result, and the balance moves exactly once.
func TestIngressDedupRegression(t *testing.T) {
	client := cryptoutil.MustNewSigner("ingress-dedup-client")
	// A long build interval with MinBlock > 1 keeps the duplicate window
	// open: both submissions land before the batch cuts.
	poolCfg := &ingress.Config{MinBlock: 4, MaxBlock: 8, BuildInterval: 50 * time.Millisecond}
	for _, tc := range ingressCases(client) {
		t.Run(tc.name, func(t *testing.T) {
			sys := tc.build(t, poolCfg)
			defer sys.Close()

			r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
				"dup-src", string(contract.EncodeInt64(1000)), string(contract.EncodeInt64(1000))))
			if !r.Committed {
				t.Fatalf("create dup-src: %+v", r)
			}
			r = sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
				"dup-dst", string(contract.EncodeInt64(1000)), string(contract.EncodeInt64(1000))))
			if !r.Committed {
				t.Fatalf("create dup-dst: %+v", r)
			}

			// Two byte-identical transfers: same signer, args, amount —
			// same content-hash ID.
			txA := signTx(t, client, contract.SmallbankName, "send_payment",
				"dup-src", "dup-dst", string(contract.EncodeInt64(7)))
			txB := signTx(t, client, contract.SmallbankName, "send_payment",
				"dup-src", "dup-dst", string(contract.EncodeInt64(7)))
			if txA.ID != txB.ID {
				t.Fatal("identical invocations hashed differently")
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var wg sync.WaitGroup
			results := make([]system.Result, 2)
			for i, tx := range []*txn.Tx{txA, txB} {
				wg.Add(1)
				go func(i int, tx *txn.Tx) {
					defer wg.Done()
					h, err := sys.Submit(ctx, tx)
					if err != nil {
						results[i] = system.Result{Err: err}
						return
					}
					results[i] = h.Wait(ctx)
				}(i, tx)
			}
			wg.Wait()
			for i, r := range results {
				if !r.Committed || r.Err != nil {
					t.Fatalf("caller %d: %+v", i, r)
				}
			}
			st, _ := tc.stats(sys)
			if st.Deduped == 0 {
				t.Fatalf("duplicate submission was not deduplicated: %+v", st)
			}

			stores := tc.states(sys)
			waitReplicasEqual(t, stores)
			v, _, err := stores[0].Get("chk:dup-src")
			if err != nil {
				t.Fatalf("read dup-src: %v", err)
			}
			if got := contract.DecodeInt64(v); got != 993 {
				t.Fatalf("dup-src balance %d, want 993: the deduplicated transfer did not execute exactly once", got)
			}
		})
	}
}

// overloadSource feeds distinct kv puts (per-worker key space, monotonic
// suffix) so dedup never kicks in and every arrival is new work.
type overloadSource struct {
	client *cryptoutil.Signer
	worker int
	n      int
}

func (s *overloadSource) Next() (*txn.Tx, error) {
	s.n++
	return txn.Sign(s.client, txn.Invocation{Contract: "kv", Method: "put",
		Args: [][]byte{[]byte(fmt.Sprintf("ow%d-%d", s.worker, s.n)), []byte("v")}})
}

// TestIngressOverloadSheds drives an open-loop burst at ~4× the measured
// closed-loop peak through a deliberately small mempool. The acceptance
// claims: the run completes without wedging, every rejection is a typed
// admission shed (never an untyped consensus failure), queueing delay
// stays bounded by the small pool, and the system commits again as soon
// as the burst ends.
func TestIngressOverloadSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	client := cryptoutil.MustNewSigner("ingress-overload-client")
	// A small block budget caps consensus throughput so the 4× burst has
	// a real wall to hit, and a small mempool keeps queueing bounded:
	// once the proposer pool (4×blockCap) and the 64-slot mempool are
	// both full, new arrivals must shed at the door.
	sys, err := quorum.New(quorum.Config{
		Nodes:     4,
		BlockSize: 8,
		Ingress:   &ingress.Config{Capacity: 32, MaxBlock: 16, BuildInterval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.RegisterClient(client.Name(), client.Public())

	mkSources := func(n int) []bench.TxSource {
		out := make([]bench.TxSource, n)
		for i := range out {
			out[i] = &overloadSource{client: client, worker: i}
		}
		return out
	}

	// Calibrate: a short closed-loop run finds this machine's peak.
	cal := bench.Run(sys, mkSources(32), bench.Options{
		Workers:  32,
		Duration: 400 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
	})
	if cal.Committed == 0 || cal.TPS <= 0 {
		t.Fatalf("calibration run found no peak: %+v", cal)
	}

	// Burst: open-loop arrivals at 4× that peak. Dispatch concurrency
	// exceeds everything the system can hold in flight (mempool 32 +
	// proposer pool 4×16 + blocks in transit), so arrivals keep reaching
	// Submit while the pipeline is full — the arrival process, not the
	// pool of waiting clients, is the limit.
	burst := bench.Run(sys, mkSources(256), bench.Options{
		Workers:     256,
		Duration:    800 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Mode:        bench.OpenLoop,
		TargetRate:  4 * cal.TPS,
		Arrival:     bench.Poisson,
		Seed:        1,
		MaxInFlight: 1024,
	})
	if burst.Committed == 0 {
		t.Fatalf("burst wedged the system: %+v", burst)
	}
	if burst.Sheds == 0 {
		t.Fatalf("4× peak (%.0f tx/s offered) produced no admission sheds: %+v", 4*cal.TPS, burst)
	}
	// Every rejection is a typed admission shed; nothing failed untyped
	// inside consensus.
	if burst.Errors != burst.Sheds {
		t.Fatalf("%d of %d errors were not typed admission sheds", burst.Errors-burst.Sheds, burst.Errors)
	}
	st, ok := sys.IngressStats()
	if !ok {
		t.Fatal("mempool-fed system reports no ingress stats")
	}
	// A 64-deep pool cannot accumulate unbounded queueing delay: p99
	// admission-to-build delay stays far under the direct paths' 60s
	// commit timeout even at 4× overload.
	if st.QueueDelayP99 > 10*time.Second {
		t.Fatalf("queueing delay p99 %v unbounded under overload", st.QueueDelayP99)
	}

	// Recovery: with the burst gone, a fresh transaction commits promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := sys.Execute(signTx(t, client, "kv", "put", "post-burst", "v"))
		if r.Committed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("system did not recover after the burst: %+v", r)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
