package etcd

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/txn"
)

func newCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c := New(Config{Nodes: nodes})
	t.Cleanup(c.Close)
	return c
}

func TestPutGet(t *testing.T) {
	c := newCluster(t, 3)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestGetMissing(t *testing.T) {
	c := newCluster(t, 3)
	v, err := c.Get("ghost")
	if err != nil || v != nil {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestDelete(t *testing.T) {
	c := newCluster(t, 3)
	c.Put("k", []byte("v"))
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get("k"); v != nil {
		t.Fatal("deleted key visible")
	}
}

func TestAllReplicasApply(t *testing.T) {
	c := newCluster(t, 3)
	for i := 0; i < 50; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// The leader has applied everything (replicate waits for it); the
	// others converge shortly after.
	lead := c.leader()
	if lead.tree.Len() != 50 {
		t.Fatalf("leader has %d keys", lead.tree.Len())
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := c.Put(fmt.Sprintf("w%d-k%d", w, i), []byte("v")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.leader().tree.Len(); got != 200 {
		t.Fatalf("leader has %d keys, want 200", got)
	}
}

func TestExecuteAdapter(t *testing.T) {
	c := newCluster(t, 3)
	client := cryptoutil.MustNewSigner("client")
	put, _ := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: "put",
		Args: [][]byte{[]byte("k"), []byte("v")}})
	if r := c.Execute(put); !r.Committed {
		t.Fatalf("put: %+v", r)
	}
	get, _ := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: "get",
		Args: [][]byte{[]byte("k")}})
	r := c.Execute(get)
	if !r.Committed || !bytes.Equal(r.Value, []byte("v")) {
		t.Fatalf("get: %+v", r)
	}
}

func TestRejectsTransactionalWork(t *testing.T) {
	c := newCluster(t, 3)
	client := cryptoutil.MustNewSigner("client")
	sb, _ := txn.Sign(client, txn.Invocation{Contract: contract.SmallbankName, Method: "query",
		Args: [][]byte{[]byte("a")}})
	if r := c.Execute(sb); r.Err == nil {
		t.Fatal("etcd accepted a transactional workload")
	}
}

func TestStateBytes(t *testing.T) {
	c := newCluster(t, 3)
	before := c.StateBytes()
	if err := c.Put("key", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	// Node 0 (whose tree StateBytes reads) may apply shortly after the
	// first replica resolves the waiter.
	deadline := time.Now().Add(5 * time.Second)
	for c.StateBytes() <= before {
		if time.Now().After(deadline) {
			t.Fatal("state bytes did not grow")
		}
		time.Sleep(time.Millisecond)
	}
}
