// Package etcd models etcd v3.3, the paper's NoSQL representative: a
// single Raft group fully replicating a key-value store backed by a
// copy-on-write B+tree (BoltDB), with one consensus instance sequencing
// all requests and strictly serial application.
//
// Serial execution makes etcd immune to workload skew (Fig 9's flat line)
// but ties its throughput to the Raft group size (Table 4's decay), and
// its relaxed transactional surface (single-op requests; no general
// transactions) is why the Smallbank experiment excludes it.
package etcd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/raft"
	"dichotomy/internal/contract"
	"dichotomy/internal/metrics"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/bptree"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

// Config assembles an etcd cluster.
type Config struct {
	// Nodes is the Raft group size.
	Nodes int
	// Link models the network; nil = zero latency.
	Link cluster.LinkModel
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	return c
}

// Cluster is a running etcd deployment.
type Cluster struct {
	cfg     Config
	net     *cluster.Network
	nodes   []*node
	box     *system.PayloadBox
	waiters *system.Waiters
	reqSeq  atomic.Uint64

	closeOne sync.Once
}

var _ system.System = (*Cluster)(nil)

type node struct {
	id     cluster.NodeID
	c      *Cluster
	cons   *raft.Node
	tree   *bptree.Tree
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// op is the replicated request.
type op struct {
	reqID uint64
	del   bool
	key   string
	value []byte
}

// New assembles and starts a cluster.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		net:     cluster.NewNetwork(cfg.Link),
		box:     system.NewPayloadBox(),
		waiters: system.NewWaiters(),
	}
	peers := make([]cluster.NodeID, cfg.Nodes)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	for _, id := range peers {
		n := &node{
			id:     id,
			c:      c,
			tree:   bptree.New(),
			stopCh: make(chan struct{}),
		}
		n.cons = raft.New(raft.Config{ID: id, Peers: peers, Endpoint: c.net.Register(id, 8192)})
		c.nodes = append(c.nodes, n)
	}
	for _, n := range c.nodes {
		n.wg.Add(1)
		go n.applyLoop()
	}
	return c
}

// Name implements system.System.
func (c *Cluster) Name() string { return "etcd" }

// applyLoop applies committed operations serially — etcd's single apply
// thread.
func (n *node) applyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case e, ok := <-n.cons.Committed():
			if !ok {
				return
			}
			n.apply(e)
		}
	}
}

func (n *node) apply(e consensus.Entry) {
	id, ok := system.HandleID(e.Data)
	if !ok {
		return
	}
	v, ok := n.c.box.Take(id)
	if !ok {
		return
	}
	o := v.(*op)
	if o.del {
		_ = n.tree.Delete([]byte(o.key))
	} else {
		_ = n.tree.Put([]byte(o.key), o.value)
	}
	n.c.waiters.Resolve(fmt.Sprintf("%d", o.reqID), system.Result{Committed: true})
}

// Put writes a key through consensus and waits for apply.
func (c *Cluster) Put(key string, value []byte) error {
	return c.replicate(&op{key: key, value: value})
}

// Delete removes a key through consensus.
func (c *Cluster) Delete(key string) error {
	return c.replicate(&op{key: key, del: true})
}

func (c *Cluster) replicate(o *op) error {
	o.reqID = c.reqSeq.Add(1)
	done := c.waiters.Register(fmt.Sprintf("%d", o.reqID))
	id := c.box.Put(o, len(c.nodes))
	payload := system.EncodeHandle(id)
	deadline := time.Now().Add(30 * time.Second)
	for {
		proposed := false
		for _, n := range c.nodes {
			if n.cons.Propose(payload) == nil {
				proposed = true
				break
			}
		}
		if proposed {
			break
		}
		if time.Now().After(deadline) {
			c.waiters.Cancel(fmt.Sprintf("%d", o.reqID))
			return errors.New("etcd: leaderless")
		}
		//lint:allow sleepyloop bounded retry backoff while the cluster re-elects
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		return nil
	case <-time.After(30 * time.Second):
		c.waiters.Cancel(fmt.Sprintf("%d", o.reqID))
		return errors.New("etcd: apply timeout")
	}
}

// Get serves a linearizable read from the leader's tree (leader leases;
// elections are not exercised by the experiments).
func (c *Cluster) Get(key string) ([]byte, error) {
	n := c.leader()
	v, err := n.tree.Get([]byte(key))
	if errors.Is(err, storage.ErrNotFound) {
		return nil, nil
	}
	return v, err
}

func (c *Cluster) leader() *node {
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, n := range c.nodes {
			if n.cons.IsLeader() {
				return n
			}
		}
		if time.Now().After(deadline) {
			return c.nodes[0]
		}
		//lint:allow sleepyloop bounded wait for a leader during elections
		time.Sleep(time.Millisecond)
	}
}

// Execute implements system.System as the thin Submit+Wait wrapper.
func (c *Cluster) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(c, t)
}

// Submit implements system.System by running the blocking path on its own
// goroutine (this system has no mempool-fed path).
func (c *Cluster) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return system.GoSubmit(func() system.Result { return c.execute(t) }), nil
}

// execute serves single-operation requests only, mirroring etcd's data
// model. Multi-op invocations are rejected the way the paper excludes
// etcd from transactional workloads.
func (c *Cluster) execute(t *txn.Tx) system.Result {
	if t.Invocation.Contract != contract.KVName {
		return system.Result{Err: fmt.Errorf("etcd: unsupported contract %q (no general transactions)", t.Invocation.Contract)}
	}
	inv := t.Invocation
	switch inv.Method {
	case "get":
		var v []byte
		var err error
		t.Trace.Time(metrics.PhaseStorage, func() {
			v, err = c.Get(string(inv.Args[0]))
		})
		if err != nil {
			return system.Result{Err: err}
		}
		return system.Result{Committed: true, Value: v}
	case "put", "modify":
		start := time.Now()
		err := c.Put(string(inv.Args[0]), inv.Args[1])
		t.Trace.Observe(metrics.PhaseCommit, time.Since(start))
		if err != nil {
			return system.Result{Err: err}
		}
		return system.Result{Committed: true}
	default:
		return system.Result{Err: fmt.Errorf("etcd: unsupported method %q", inv.Method)}
	}
}

// StateBytes returns one replica's resident state size.
func (c *Cluster) StateBytes() int64 { return c.nodes[0].tree.ApproxSize() }

// Close implements system.System.
func (c *Cluster) Close() {
	c.closeOne.Do(func() {
		for _, n := range c.nodes {
			close(n.stopCh)
		}
		for _, n := range c.nodes {
			n.cons.Stop()
			n.wg.Wait()
			n.tree.Close()
		}
		c.net.Close()
	})
}
