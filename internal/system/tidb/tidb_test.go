package tidb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/metrics"
	"dichotomy/internal/occ"
	"dichotomy/internal/txn"
)

func clusterUp(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

func small(t *testing.T) *Cluster {
	return clusterUp(t, Config{Servers: 2, StorageNodes: 3, Regions: 4})
}

func TestParse(t *testing.T) {
	cases := map[string]Stmt{
		"SELECT v FROM kv WHERE k = 'alpha'":    {Kind: StmtSelect, Table: "KV", Key: "alpha"},
		"INSERT INTO kv VALUES ('a', 'b')":      {Kind: StmtInsert, Table: "KV", Key: "a", Value: "b"},
		"UPDATE kv SET v = 'nv' WHERE k = 'a';": {Kind: StmtUpdate, Table: "KV", Key: "a", Value: "nv"},
		"DELETE FROM kv WHERE k = 'gone'":       {Kind: StmtDelete, Table: "KV", Key: "gone"},
		"select * from chk where k = 'x'":       {Kind: StmtSelect, Table: "CHK", Key: "x"},
		"SELECT v FROM kv WHERE k = 'it''s'":    {Kind: StmtSelect, Table: "KV", Key: "it's"},
	}
	for sql, want := range cases {
		got, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %+v, want %+v", sql, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"DROP TABLE kv",
		"SELECT v FROM kv",
		"SELECT v FROM kv WHERE k = unquoted",
		"INSERT INTO kv VALUES ('only-key')",
		"SELECT v FROM kv WHERE k = 'a' garbage",
		"SELECT v FROM kv WHERE k = 'unterminated",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted", sql)
		}
	}
}

func TestCompile(t *testing.T) {
	plan, err := Compile(Stmt{Kind: StmtSelect, Table: "KV", Key: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.StorageKey != "kv/alpha" {
		t.Fatalf("StorageKey = %q", plan.StorageKey)
	}
	if _, err := Compile(Stmt{Kind: StmtSelect}); err == nil {
		t.Fatal("empty statement compiled")
	}
}

func TestQuote(t *testing.T) {
	if Quote("it's") != "'it''s'" {
		t.Fatalf("Quote = %q", Quote("it's"))
	}
}

func TestExecRoundTrip(t *testing.T) {
	c := small(t)
	s := c.NewSession()
	tr := metrics.NewTrace()
	if _, err := s.Exec("INSERT INTO kv VALUES ('alpha', 'one')", tr); err != nil {
		t.Fatal(err)
	}
	v, err := s.Exec("SELECT v FROM kv WHERE k = 'alpha'", tr)
	if err != nil || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("SELECT = %q, %v", v, err)
	}
	if _, err := s.Exec("UPDATE kv SET v = 'two' WHERE k = 'alpha'", tr); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Exec("SELECT v FROM kv WHERE k = 'alpha'", tr)
	if !bytes.Equal(v, []byte("two")) {
		t.Fatalf("after update: %q", v)
	}
	if _, err := s.Exec("DELETE FROM kv WHERE k = 'alpha'", tr); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Exec("SELECT v FROM kv WHERE k = 'alpha'", tr)
	if v != nil {
		t.Fatalf("after delete: %q", v)
	}
	// Parse/compile phases did work.
	d := tr.Durations()
	if d[metrics.PhaseSQLParse] == 0 || d[metrics.PhaseSQLPlan] == 0 {
		t.Fatal("SQL phases unrecorded")
	}
}

func TestSnapshotIsolationAcrossTxns(t *testing.T) {
	c := small(t)
	tr := metrics.NewTrace()
	w := c.NewTxn()
	w.Write("kv/a", []byte("v1"))
	if err := w.Commit(tr); err != nil {
		t.Fatal(err)
	}
	reader := c.NewTxn() // snapshot before second write
	w2 := c.NewTxn()
	w2.Write("kv/a", []byte("v2"))
	if err := w2.Commit(tr); err != nil {
		t.Fatal(err)
	}
	v, err := reader.Get("kv/a")
	if err != nil || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("snapshot read = %q, %v; want v1", v, err)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	c := small(t)
	tr := metrics.NewTrace()
	t1 := c.NewTxn()
	t2 := c.NewTxn()
	t1.Write("kv/hot", []byte("a"))
	t2.Write("kv/hot", []byte("b"))
	if err := t1.Commit(tr); err != nil {
		t.Fatal(err)
	}
	err := t2.Commit(tr)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want conflict", err)
	}
	if c.WWConf.Load() == 0 {
		t.Fatal("conflict counter untouched")
	}
}

func TestMultiKeyTransactionAtomic(t *testing.T) {
	c := small(t)
	tr := metrics.NewTrace()
	tx := c.NewTxn()
	for i := 0; i < 6; i++ {
		tx.Write(fmt.Sprintf("kv/k%d", i), []byte("v"))
	}
	if err := tx.Commit(tr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v, err := c.RawGet(fmt.Sprintf("kv/k%d", i))
		if err != nil || v == nil {
			t.Fatalf("k%d missing after commit: %v", i, err)
		}
	}
}

func TestFailedPrewriteRollsBackEverything(t *testing.T) {
	c := small(t)
	tr := metrics.NewTrace()
	// Hold a lock on one key with an uncommitted transaction.
	blocker := c.NewTxn()
	blocker.Write("kv/locked", []byte("x"))
	// Manually prewrite without committing to keep the lock held.
	reg := c.regionOf("kv/locked")
	if err := reg.propose(&regionCmd{kind: cmdPrewrite, key: "kv/locked",
		value: []byte("x"), startTS: blocker.startTS, primary: "kv/locked"}); err != nil {
		t.Fatal(err)
	}
	victim := c.NewTxn()
	victim.Write("kv/free", []byte("y"))
	victim.Write("kv/locked", []byte("z"))
	if err := victim.Commit(tr); err == nil {
		t.Fatal("commit through a foreign lock succeeded")
	}
	// The free key must not be left locked.
	if c.regionOf("kv/free").leaderStore().Locked("kv/free") {
		t.Fatal("rollback leaked a lock")
	}
}

func TestReadYourWrites(t *testing.T) {
	c := small(t)
	tx := c.NewTxn()
	tx.Write("kv/k", []byte("mine"))
	v, err := tx.Get("kv/k")
	if err != nil || !bytes.Equal(v, []byte("mine")) {
		t.Fatalf("read-your-writes = %q, %v", v, err)
	}
}

func TestExecuteKVAdapter(t *testing.T) {
	c := small(t)
	client := cryptoutil.MustNewSigner("client")
	put, _ := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: "put",
		Args: [][]byte{[]byte("k"), []byte("v")}})
	if r := c.Execute(put); !r.Committed {
		t.Fatalf("put: %+v", r)
	}
	get, _ := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: "get",
		Args: [][]byte{[]byte("k")}})
	r := c.Execute(get)
	if !r.Committed || !bytes.Equal(r.Value, []byte("v")) {
		t.Fatalf("get: %+v", r)
	}
}

func TestExecuteSmallbankAdapter(t *testing.T) {
	c := small(t)
	client := cryptoutil.MustNewSigner("client")
	sign := func(method string, args ...[]byte) *txn.Tx {
		tx, err := txn.Sign(client, txn.Invocation{Contract: contract.SmallbankName, Method: method, Args: args})
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	if r := c.Execute(sign("create_account", []byte("a1"), contract.EncodeInt64(100), contract.EncodeInt64(50))); !r.Committed {
		t.Fatalf("create: %+v", r)
	}
	if r := c.Execute(sign("create_account", []byte("a2"), contract.EncodeInt64(10), contract.EncodeInt64(0))); !r.Committed {
		t.Fatalf("create: %+v", r)
	}
	if r := c.Execute(sign("send_payment", []byte("a1"), []byte("a2"), contract.EncodeInt64(30))); !r.Committed {
		t.Fatalf("payment: %+v", r)
	}
	v, _ := c.RawGet("chk/a1")
	if contract.DecodeInt64(v) != 70 {
		t.Fatalf("src balance = %d, want 70", contract.DecodeInt64(v))
	}
	// Insufficient funds is a business abort, not a conflict.
	r := c.Execute(sign("send_payment", []byte("a1"), []byte("a2"), contract.EncodeInt64(10000)))
	if r.Committed || !errors.Is(r.Err, contract.ErrAbort) {
		t.Fatalf("overdraft: %+v", r)
	}
}

func TestHotKeyContention(t *testing.T) {
	c := small(t)
	client := cryptoutil.MustNewSigner("client")
	seed, _ := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: "put",
		Args: [][]byte{[]byte("hot"), []byte("0")}})
	if r := c.Execute(seed); !r.Committed {
		t.Fatalf("seed: %+v", r)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, conflicts := 0, 0
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, _ := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: "modify",
				Args: [][]byte{[]byte("hot"), []byte(fmt.Sprintf("w%d", w))}})
			r := c.Execute(tx)
			mu.Lock()
			defer mu.Unlock()
			if r.Committed {
				committed++
			} else if r.Reason == occ.WriteWriteConflict {
				conflicts++
			}
		}(w)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("no writer ever won the hot key")
	}
	if committed+conflicts != 12 {
		t.Fatalf("committed %d + conflicts %d ≠ 12", committed, conflicts)
	}
}

func TestRawPath(t *testing.T) {
	c := small(t)
	if err := c.RawPut("raw/k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.RawGet("raw/k")
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("RawGet = %q, %v", v, err)
	}
}

func TestStateBytes(t *testing.T) {
	c := small(t)
	before := c.StateBytes()
	if err := c.RawPut("kv/big", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	// StateBytes reads replica 0 of each region, which may apply shortly
	// after the (leader-resolved) RawPut returns.
	deadline := time.Now().Add(5 * time.Second)
	for c.StateBytes() <= before {
		if time.Now().After(deadline) {
			t.Fatal("StateBytes did not grow")
		}
		time.Sleep(time.Millisecond)
	}
}
