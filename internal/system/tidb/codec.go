package tidb

import "encoding/binary"

// Region-command wire codec. Commands are serialized INTO the raft log
// entry rather than passed by payload-box handle: the handle scheme
// (one in-memory copy per live replica) cannot survive a replica crash
// or feed a log-replay recovery, because the box copies die with the
// process. A self-contained log costs a copy per entry and buys the
// whole recovery story — the leader's re-replication alone rebuilds any
// replica.
//
// Layout (big-endian):
//
//	kind u8 | reqID u64 | del u8 | startTS u64 | commitTS u64 |
//	klen u32 | key | plen u32 | primary | hasValue u8 | [vlen u32 | value]

func encodeRegionCmd(cmd *regionCmd) []byte {
	buf := make([]byte, 0, 31+len(cmd.key)+len(cmd.primary)+len(cmd.value))
	buf = append(buf, byte(cmd.kind))
	buf = binary.BigEndian.AppendUint64(buf, cmd.reqID)
	if cmd.del {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint64(buf, cmd.startTS)
	buf = binary.BigEndian.AppendUint64(buf, cmd.commitTS)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cmd.key)))
	buf = append(buf, cmd.key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cmd.primary)))
	buf = append(buf, cmd.primary...)
	if cmd.value == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cmd.value)))
	return append(buf, cmd.value...)
}

func decodeRegionCmd(buf []byte) (*regionCmd, bool) {
	off := 0
	u8 := func() (byte, bool) {
		if off+1 > len(buf) {
			return 0, false
		}
		b := buf[off]
		off++
		return b, true
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(buf) {
			return 0, false
		}
		v := binary.BigEndian.Uint32(buf[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.BigEndian.Uint64(buf[off:])
		off += 8
		return v, true
	}
	str := func() (string, bool) {
		n, ok := u32()
		if !ok || off+int(n) > len(buf) {
			return "", false
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, true
	}

	cmd := &regionCmd{}
	k, ok := u8()
	if !ok {
		return nil, false
	}
	cmd.kind = cmdKind(k)
	if cmd.reqID, ok = u64(); !ok {
		return nil, false
	}
	del, ok := u8()
	if !ok {
		return nil, false
	}
	cmd.del = del == 1
	if cmd.startTS, ok = u64(); !ok {
		return nil, false
	}
	if cmd.commitTS, ok = u64(); !ok {
		return nil, false
	}
	if cmd.key, ok = str(); !ok {
		return nil, false
	}
	if cmd.primary, ok = str(); !ok {
		return nil, false
	}
	hasValue, ok := u8()
	if !ok {
		return nil, false
	}
	if hasValue == 1 {
		n, ok := u32()
		if !ok || off+int(n) > len(buf) {
			return nil, false
		}
		cmd.value = make([]byte, n)
		copy(cmd.value, buf[off:])
		off += int(n)
	}
	return cmd, off == len(buf)
}
