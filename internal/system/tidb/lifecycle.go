package tidb

import (
	"fmt"
	"time"

	"dichotomy/internal/recovery"
)

// Region-replica crash/recover lifecycle. The unit of failure is one
// replica of one region — a TiKV store losing one raft member — not a
// whole-node ledger: recovery is per-region raft-log replay on top of
// that region's own checkpoint chain, never a global pause.

// CrashReplica fail-stops one replica of one region: the network drops
// its traffic, its consensus member halts, and its in-memory MVCC store
// is abandoned. The durable checkpoint chain under DataDir survives,
// like a process crash that keeps its disk. The region keeps committing
// as long as a raft quorum of replicas remains.
func (c *Cluster) CrashReplica(region, replica int) {
	rep := c.regions[region].replicas[replica]
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.crashed.Load() {
		return
	}
	// Flip the flag first so proposals and reads stop routing here
	// before the consensus member goes down.
	rep.crashed.Store(true)
	c.net.Crash(rep.id)
	close(rep.stopCh)
	rep.cons.Load().Stop()
	rep.wg.Wait()
}

// RecoverReplica restarts a crashed replica: restore the newest intact
// checkpoint chain into a fresh MVCC store, rejoin the raft group on
// the same endpoint, and let the leader re-replicate the log. The apply
// loop skips entries at or below the restored height (the checkpoint
// already holds their effects — including live Percolator locks, which
// the chain serializes) and applies everything above through the
// ordinary code path, while the region keeps serving.
//
// Catch-up is asynchronous by design — the replica is a full cluster
// member again when this returns, still absorbing backfill. The stats
// therefore cover the restore; ReplayedBlocks/TipHeight stay zero.
func (c *Cluster) RecoverReplica(region, replica int) (recovery.Stats, error) {
	rep := c.regions[region].replicas[replica]
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.crashed.Load() {
		return recovery.Stats{}, fmt.Errorf("tidb: region %d replica %d is not crashed", region, replica)
	}
	start := time.Now()
	skipTo, ckptBytes, err := rep.start(true)
	if err != nil {
		return recovery.Stats{}, fmt.Errorf("tidb: recover region %d replica %d: %w", region, replica, err)
	}
	c.net.Restart(rep.id)
	rep.crashed.Store(false)
	return recovery.Stats{
		CheckpointHeight: skipTo,
		CheckpointBytes:  ckptBytes,
		RestoreDuration:  time.Since(start),
	}, nil
}

// Regions returns the region count (test/experiment surface).
func (c *Cluster) Regions() int { return len(c.regions) }

// RegionReplicas returns how many replicas region has.
func (c *Cluster) RegionReplicas(region int) int { return len(c.regions[region].replicas) }

// ReplicaApplied returns the newest raft index the replica has applied
// (or restored); convergence checks poll it.
func (c *Cluster) ReplicaApplied(region, replica int) uint64 {
	return c.regions[region].replicas[replica].applied.Load()
}

// DumpRegion returns one replica's complete encoded MVCC content —
// full version chains and any live locks, one deterministic record per
// key. Two replicas of the same region that have applied the same log
// prefix must return byte-identical maps; the crash-equivalence tests
// compare exactly this.
func (c *Cluster) DumpRegion(region, replica int) map[string][]byte {
	out := make(map[string][]byte)
	c.regions[region].replicas[replica].store.Load().DumpEntries(func(key string, entry []byte) {
		out[key] = entry
	})
	return out
}
