// Package tidb models TiDB v4.0, the paper's NewSQL database: stateless
// SQL servers over a TiKV-like storage layer of Raft-replicated regions,
// with a Placement Driver issuing timestamps, Percolator-style two-phase
// commit, and snapshot isolation.
//
// The layering reproduces the paper's Table 5 interplay: few SQL servers
// bottleneck on statement processing; many TiKV replicas inflate the
// consensus cost of every write. The Percolator primary-lock latch is the
// mechanism behind the skew collapse of Fig 9, and per-region 2PC fan-out
// is the operation-count cost of Fig 10.
package tidb

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/raft"
	"dichotomy/internal/contract"
	"dichotomy/internal/metrics"
	"dichotomy/internal/mvcc"
	"dichotomy/internal/occ"
	"dichotomy/internal/recovery"
	"dichotomy/internal/sharding"
	"dichotomy/internal/system"
	"dichotomy/internal/tso"
	"dichotomy/internal/txn"
)

// Config assembles a TiDB cluster.
type Config struct {
	// Servers is the number of stateless TiDB (SQL) servers.
	Servers int
	// StorageNodes is the number of TiKV nodes.
	StorageNodes int
	// Regions is the number of key-space shards. Default 16.
	Regions int
	// ReplicationFactor is replicas per region; 0 means full replication
	// (every storage node holds every region), the paper's default mode.
	ReplicationFactor int
	// Link models the network; nil = zero latency.
	Link cluster.LinkModel

	// DataDir, when set together with CheckpointInterval, enables
	// per-region-replica checkpoint chains under
	// DataDir/region-NNN/replica-N. A recovered replica restores its own
	// chain and has the raft leader re-replicate only the log above it.
	DataDir string
	// CheckpointInterval is how many applied raft entries between
	// checkpoints; 0 disables checkpointing (recovery then replays the
	// whole region log, which raft backfills anyway).
	CheckpointInterval uint64
	// CheckpointKeep bounds retained checkpoint files per replica.
	CheckpointKeep int
	// CheckpointMode selects full or delta region checkpoints.
	CheckpointMode recovery.Mode
	// CheckpointFullEvery folds delta chains every N-th checkpoint.
	CheckpointFullEvery int
}

func (c Config) withDefaults() Config {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.StorageNodes <= 0 {
		c.StorageNodes = 3
	}
	if c.Regions <= 0 {
		c.Regions = 16
	}
	return c
}

// Cluster is a running TiDB deployment.
type Cluster struct {
	cfg     Config
	net     *cluster.Network
	pd      *tso.Oracle
	part    sharding.Partitioner
	regions []*region
	rr      atomic.Uint64
	// gate models the SQL layer's aggregate processing capacity: each
	// stateless server contributes a fixed number of concurrent statement
	// slots. Few servers ⇒ statements queue here (Table 5's left column
	// bottleneck); many servers ⇒ the storage layer becomes the limit.
	gate chan struct{}

	// abort counters, read by the experiments.
	Aborts metrics.Counter
	WWConf metrics.Counter

	closeOne sync.Once
}

var _ system.System = (*Cluster)(nil)

// region is one Raft-replicated shard of the key space.
type region struct {
	idx      int
	replicas []*regionReplica
	peers    []cluster.NodeID
	waiters  *system.Waiters
	reqSeq   atomic.Uint64
}

// regionReplica is one node's copy of a region: a raft member plus the
// MVCC store the raft log applies into. Replicated commands are encoded
// directly into log entries (see codec.go), so the log is
// self-contained: a replica restarted with an empty log is fully
// rebuilt by the leader's re-replication, and one restored from a
// checkpoint chain just skips the prefix the checkpoint covers.
//
// cons and store are swapped atomically by crash/recover while reads
// and proposals keep flowing; mu serializes the lifecycle transitions
// themselves.
type regionReplica struct {
	id       cluster.NodeID
	ep       *cluster.Endpoint
	region   *region
	ckptOpts recovery.Options // zero Dir disables checkpointing

	cons    atomic.Pointer[raft.Node]
	store   atomic.Pointer[mvcc.Store]
	applied atomic.Uint64 // newest applied raft index (checkpoint height)

	mu      sync.Mutex // serializes crash/recover/close transitions
	crashed atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// regionCmd is the replicated storage command.
type regionCmd struct {
	kind     cmdKind
	reqID    uint64
	key      string
	value    []byte
	del      bool
	startTS  uint64
	commitTS uint64
	primary  string
}

type cmdKind uint8

const (
	cmdPrewrite cmdKind = iota
	cmdCommit
	cmdRollback
	// cmdRawPut applies a non-transactional write in one consensus round,
	// the raw KV surface TiKV exposes without the Percolator layer.
	cmdRawPut
)

// New assembles and starts a cluster.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:  cfg,
		net:  cluster.NewNetwork(cfg.Link),
		pd:   tso.New(),
		part: sharding.HashPartitioner{N: cfg.Regions},
		gate: make(chan struct{}, cfg.Servers*slotsPerServer),
	}
	replicasPer := cfg.ReplicationFactor
	if replicasPer <= 0 || replicasPer > cfg.StorageNodes {
		replicasPer = cfg.StorageNodes // full replication
	}
	for r := 0; r < cfg.Regions; r++ {
		reg := &region{
			idx:     r,
			waiters: system.NewWaiters(),
		}
		peers := make([]cluster.NodeID, replicasPer)
		for i := range peers {
			// Spread region replicas across storage nodes round-robin;
			// node ids are namespaced per region to keep raft groups
			// independent on the shared network.
			node := (r + i) % cfg.StorageNodes
			peers[i] = cluster.NodeID(100000 + r*1000 + node)
		}
		reg.peers = peers
		for i, id := range peers {
			rep := &regionReplica{
				id:     id,
				ep:     c.net.Register(id, 8192),
				region: reg,
			}
			if cfg.DataDir != "" && cfg.CheckpointInterval > 0 {
				rep.ckptOpts = recovery.Options{
					Dir: filepath.Join(cfg.DataDir,
						fmt.Sprintf("region-%03d", r), fmt.Sprintf("replica-%d", i)),
					Interval:  cfg.CheckpointInterval,
					Keep:      cfg.CheckpointKeep,
					Mode:      cfg.CheckpointMode,
					FullEvery: cfg.CheckpointFullEvery,
				}
			}
			reg.replicas = append(reg.replicas, rep)
		}
		for _, rep := range reg.replicas {
			if _, _, err := rep.start(false); err != nil {
				// A pre-existing corrupt chain directory is the only way
				// here; run without checkpoints rather than fail — the
				// raft log still fully rebuilds the replica.
				rep.ckptOpts = recovery.Options{}
				_, _, _ = rep.start(false)
			}
		}
		c.regions = append(c.regions, reg)
	}
	return c
}

// Name implements system.System.
func (c *Cluster) Name() string { return "tidb" }

// SetFaults installs (or, with nil, removes) a message-fault hook on the
// cluster's transport — the chaos layer's drop/delay/reorder seam.
func (c *Cluster) SetFaults(hook cluster.FaultHook) { c.net.SetFaults(hook) }

// Close implements system.System.
func (c *Cluster) Close() {
	c.closeOne.Do(func() {
		for _, reg := range c.regions {
			for _, rep := range reg.replicas {
				rep.mu.Lock()
				if !rep.crashed.Load() {
					close(rep.stopCh)
				}
				rep.mu.Unlock()
			}
			for _, rep := range reg.replicas {
				rep.mu.Lock()
				if !rep.crashed.Load() {
					rep.cons.Load().Stop()
					rep.wg.Wait()
				}
				rep.mu.Unlock()
			}
		}
		c.net.Close()
	})
}

// regionOf routes a key.
func (c *Cluster) regionOf(key string) *region {
	return c.regions[c.part.Shard(key)]
}

// start boots (or re-boots) the replica: restore its checkpoint chain
// when one is configured, join the raft group on the replica's fixed
// endpoint, and run the apply loop. Entries at or below the restored
// height are skipped — their effects are already in the checkpoint —
// and everything above arrives through the leader's ordinary log
// re-replication. rejoin distinguishes a post-crash reboot from initial
// construction: a rebooted replica lost its raft log and must sit out
// elections until re-replication catches it up (raft.Config.Recovering),
// while at construction every replica is equally empty and someone has
// to campaign. Callers hold rr.mu (or are constructing the cluster).
func (rr *regionReplica) start(rejoin bool) (skipTo uint64, ckptBytes int64, err error) {
	store := mvcc.NewStore()
	var ckpt *recovery.ChainWriter
	if rr.ckptOpts.Dir != "" {
		w, err := recovery.OpenChainWriter(rr.ckptOpts)
		if err != nil {
			return 0, 0, err
		}
		if err := w.Restore(func(key string, value []byte, _ txn.Version) error {
			return store.SetEntry(key, value)
		}); err != nil {
			return 0, 0, err
		}
		ckpt, skipTo, ckptBytes = w, w.LastHeight(), w.RestoredBytes()
	}
	cons := raft.New(raft.Config{ID: rr.id, Peers: rr.region.peers, Endpoint: rr.ep, Recovering: rejoin})
	rr.store.Store(store)
	rr.cons.Store(cons)
	rr.applied.Store(skipTo)
	stopCh := make(chan struct{})
	rr.stopCh = stopCh
	rr.wg.Add(1)
	go rr.applyLoop(cons, store, ckpt, skipTo, stopCh)
	return skipTo, ckptBytes, nil
}

// applyLoop applies committed region commands to the replica's MVCC store.
// The command outcome is deterministic given the log prefix, so every
// replica computes the same result; the replica that holds the waiter
// resolves it. All loop state is passed by value so a crash/recover
// swap of the replica's cons/store never races a stale loop.
func (rr *regionReplica) applyLoop(cons *raft.Node, store *mvcc.Store, ckpt *recovery.ChainWriter, skipTo uint64, stopCh chan struct{}) {
	defer rr.wg.Done()
	for {
		select {
		case <-stopCh:
			return
		case e, ok := <-cons.Committed():
			if !ok {
				return
			}
			if e.Index <= skipTo {
				// Covered by the restored checkpoint; re-applying would
				// double-append versions.
				continue
			}
			reqID, res, ok := rr.apply(store, e)
			// Publish the applied index BEFORE resolving the waiter:
			// reads route to the most-caught-up live replica, so a
			// resolved request is guaranteed visible to the next read.
			rr.applied.Store(e.Index)
			if ok {
				rr.region.waiters.Resolve(waiterKey(reqID), res)
			}
			if ckpt != nil {
				// A failed checkpoint write only degrades durability —
				// recovery falls back to a longer log replay — so the
				// apply path keeps going.
				_ = ckpt.MaybeCheckpoint(e.Index, func(emit func(key string, value []byte, ver txn.Version)) {
					store.DumpEntries(func(key string, entry []byte) {
						emit(key, entry, txn.Version{})
					})
				})
			}
		}
	}
}

func (rr *regionReplica) apply(store *mvcc.Store, e consensus.Entry) (reqID uint64, res system.Result, ok bool) {
	cmd, ok := decodeRegionCmd(e.Data)
	if !ok {
		return 0, system.Result{}, false
	}
	var err error
	switch cmd.kind {
	case cmdPrewrite:
		err = store.Prewrite(cmd.key, cmd.value, cmd.del, cmd.startTS, cmd.primary)
	case cmdCommit:
		err = store.Commit(cmd.key, cmd.startTS, cmd.commitTS)
	case cmdRollback:
		store.Rollback(cmd.key, cmd.startTS)
	case cmdRawPut:
		if err = store.Prewrite(cmd.key, cmd.value, cmd.del, cmd.startTS, cmd.key); err == nil {
			err = store.Commit(cmd.key, cmd.startTS, cmd.commitTS)
		}
	}
	return cmd.reqID, system.Result{Committed: err == nil, Err: err}, true
}

func waiterKey(reqID uint64) string { return fmt.Sprintf("r%d", reqID) }

// propose replicates a command through the region's raft group and waits
// for its application outcome. The command is encoded into the log entry
// itself, so the replicated history is self-contained — the property
// region recovery replays against.
func (reg *region) propose(cmd *regionCmd) error {
	cmd.reqID = reg.reqSeq.Add(1)
	done := reg.waiters.Register(waiterKey(cmd.reqID))
	payload := encodeRegionCmd(cmd)
	deadline := time.Now().Add(30 * time.Second)
	// Re-propose until the command is applied. A proposal accepted by a
	// replica that crashes before replicating it is silently lost;
	// waiting on it alone would stall the client 30s and — worse — leave
	// a prewritten Percolator lock dangling forever. Duplicate
	// application is safe: every replica applies the same log, and a
	// second prewrite/commit/rollback of the same (key, startTS) is a
	// deterministic no-op or error whose result no waiter observes.
	for {
		proposed := false
		for _, rep := range reg.replicas {
			if rep.crashed.Load() {
				continue
			}
			if rep.cons.Load().Propose(payload) == nil {
				proposed = true
				break
			}
		}
		if !proposed {
			if time.Now().After(deadline) {
				reg.waiters.Cancel(waiterKey(cmd.reqID))
				return errors.New("tidb: region leaderless")
			}
			//lint:allow sleepyloop bounded retry backoff while the region re-elects
			time.Sleep(time.Millisecond)
			continue
		}
		select {
		case r := <-done:
			return r.Err
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				reg.waiters.Cancel(waiterKey(cmd.reqID))
				return errors.New("tidb: region apply timeout")
			}
		}
	}
}

// leaderStore returns the current leader replica's MVCC store for reads.
func (reg *region) leaderStore() *mvcc.Store {
	// Route reads to the most-caught-up live replica. Any replica's
	// apply resolves the request waiter (after publishing its applied
	// index), so the maximum applied index is ≥ every resolved entry —
	// read-your-writes holds without waiting for an election.
	var best *regionReplica
	var bestApplied uint64
	for _, rep := range reg.replicas {
		if rep.crashed.Load() {
			continue
		}
		if a := rep.applied.Load(); best == nil || a > bestApplied {
			best, bestApplied = rep, a
		}
	}
	if best == nil {
		return reg.replicas[0].store.Load()
	}
	return best.store.Load()
}

// --- the SQL/transaction front end ---

// Session is a client connection to one (stateless) SQL server. Sessions
// are cheap; the driver opens one per worker.
type Session struct {
	c *Cluster
}

// NewSession returns a session routed round-robin across SQL servers. The
// server count gates statement throughput via serverGate.
func (c *Cluster) NewSession() *Session { return &Session{c: c} }

// Exec parses, compiles, and runs a single autocommit statement.
func (s *Session) Exec(sql string, trace *metrics.Trace) (value []byte, err error) {
	stmt, plan, err := s.compile(sql, trace)
	if err != nil {
		return nil, err
	}
	switch stmt.Kind {
	case StmtSelect:
		var v []byte
		trace.Time(metrics.PhaseStorage, func() {
			v, err = s.c.read(plan.StorageKey)
		})
		return v, err
	case StmtInsert, StmtUpdate:
		t := s.c.NewTxn()
		t.Write(plan.StorageKey, []byte(stmt.Value))
		return nil, t.Commit(trace)
	case StmtDelete:
		t := s.c.NewTxn()
		t.Delete(plan.StorageKey)
		return nil, t.Commit(trace)
	}
	return nil, fmt.Errorf("tidb: unhandled statement kind %d", stmt.Kind)
}

// slotsPerServer is each SQL server's concurrent-statement capacity.
const slotsPerServer = 8

func (s *Session) compile(sql string, trace *metrics.Trace) (Stmt, Plan, error) {
	// Occupy a server slot for the statement's front-end processing.
	s.c.gate <- struct{}{}
	defer func() { <-s.c.gate }()
	var stmt Stmt
	var plan Plan
	var err error
	trace.Time(metrics.PhaseSQLParse, func() {
		stmt, err = Parse(sql)
	})
	if err != nil {
		return Stmt{}, Plan{}, err
	}
	trace.Time(metrics.PhaseSQLPlan, func() {
		plan, err = Compile(stmt)
	})
	return stmt, plan, err
}

// read performs a snapshot point read at a fresh timestamp.
func (c *Cluster) read(key string) ([]byte, error) {
	ts := c.pd.Next()
	v, err := c.regionOf(key).leaderStore().Get(key, ts)
	if errors.Is(err, mvcc.ErrNotFound) {
		return nil, nil
	}
	return v, err
}

// Txn is an interactive optimistic transaction (snapshot isolation,
// Percolator commit).
type Txn struct {
	c       *Cluster
	startTS uint64
	reads   map[string][]byte
	writes  []txn.Write
	order   map[string]int
}

// NewTxn begins a transaction at a fresh snapshot.
func (c *Cluster) NewTxn() *Txn {
	return &Txn{
		c:       c,
		startTS: c.pd.Next(),
		reads:   make(map[string][]byte),
		order:   make(map[string]int),
	}
}

// Get reads a key at the transaction's snapshot (read-your-writes).
func (t *Txn) Get(key string) ([]byte, error) {
	if i, ok := t.order[key]; ok {
		return t.writes[i].Value, nil
	}
	if v, ok := t.reads[key]; ok {
		return v, nil
	}
	v, err := t.c.regionOf(key).leaderStore().Get(key, t.startTS)
	if errors.Is(err, mvcc.ErrNotFound) {
		v = nil
	} else if err != nil {
		return nil, err
	}
	t.reads[key] = v
	return v, nil
}

// Write buffers an upsert.
func (t *Txn) Write(key string, value []byte) {
	if i, ok := t.order[key]; ok {
		t.writes[i].Value = value
		return
	}
	t.order[key] = len(t.writes)
	t.writes = append(t.writes, txn.Write{Key: key, Value: value})
}

// Delete buffers a deletion.
func (t *Txn) Delete(key string) {
	if i, ok := t.order[key]; ok {
		t.writes[i].Value = nil
		return
	}
	t.order[key] = len(t.writes)
	t.writes = append(t.writes, txn.Write{Key: key, Value: nil})
}

// Commit runs Percolator 2PC: prewrite everything (primary first among its
// region batch), then commit the primary — the atomicity point — then the
// secondaries. Any prewrite failure rolls back and aborts; TiDB aborts
// instantly on conflict rather than waiting for locks.
func (t *Txn) Commit(trace *metrics.Trace) error {
	if len(t.writes) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { trace.Observe(metrics.PhaseCommit, time.Since(start)) }()
	primary := t.writes[0].Key

	// Prewrite phase: fan out per region, concurrently.
	prewriteErrs := make([]error, len(t.writes))
	var wg sync.WaitGroup
	for i, w := range t.writes {
		wg.Add(1)
		go func(i int, w txn.Write) {
			defer wg.Done()
			prewriteErrs[i] = t.c.regionOf(w.Key).propose(&regionCmd{
				kind: cmdPrewrite, key: w.Key, value: w.Value,
				del: w.Value == nil, startTS: t.startTS, primary: primary,
			})
		}(i, w)
	}
	wg.Wait()
	for _, err := range prewriteErrs {
		if err == nil {
			continue
		}
		// Roll back everything we may have locked and abort.
		for _, w := range t.writes {
			_ = t.c.regionOf(w.Key).propose(&regionCmd{
				kind: cmdRollback, key: w.Key, startTS: t.startTS,
			})
		}
		t.c.Aborts.Inc()
		if errors.Is(err, mvcc.ErrWriteConflict) || errors.Is(err, mvcc.ErrLocked) {
			t.c.WWConf.Inc()
			return fmt.Errorf("%w: %v", ErrConflict, err)
		}
		return err
	}

	// Commit point: the primary key's commit record decides the
	// transaction. This is the serialized latch of Fig 9.
	commitTS := t.c.pd.Next()
	if err := t.c.regionOf(primary).propose(&regionCmd{
		kind: cmdCommit, key: primary, startTS: t.startTS, commitTS: commitTS,
	}); err != nil {
		t.c.Aborts.Inc()
		return err
	}
	// Secondaries commit after the decision; failures here cannot undo it
	// (Percolator resolves them lazily; we apply them synchronously).
	for _, w := range t.writes[1:] {
		_ = t.c.regionOf(w.Key).propose(&regionCmd{
			kind: cmdCommit, key: w.Key, startTS: t.startTS, commitTS: commitTS,
		})
	}
	return nil
}

// ErrConflict is the client-visible conflict abort.
var ErrConflict = errors.New("tidb: transaction conflict")

// --- system.System adapter ---

// Execute implements system.System as the thin Submit+Wait wrapper.
func (c *Cluster) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(c, t)
}

// Submit implements system.System by running the blocking path on its own
// goroutine (this system has no mempool-fed path).
func (c *Cluster) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return system.GoSubmit(func() system.Result { return c.execute(t) }), nil
}

// execute translates the generic invocation into SQL statements, exactly
// as the YCSB/OLTPBench drivers do.
func (c *Cluster) execute(t *txn.Tx) system.Result {
	s := c.NewSession()
	inv := t.Invocation
	switch inv.Contract {
	case contract.KVName:
		return c.execKV(s, t)
	case contract.SmallbankName:
		return c.execSmallbank(s, t)
	default:
		return system.Result{Err: fmt.Errorf("tidb: no translation for contract %q", inv.Contract)}
	}
}

func (c *Cluster) execKV(s *Session, t *txn.Tx) system.Result {
	inv := t.Invocation
	switch inv.Method {
	case "get":
		v, err := s.Exec("SELECT v FROM kv WHERE k = "+Quote(string(inv.Args[0])), t.Trace)
		if err != nil {
			return system.Result{Err: err}
		}
		return system.Result{Committed: true, Value: v}
	case "put", "modify":
		// A read-modify-write round, as the YCSB update profile does.
		_, plan, err := s.compile("UPDATE kv SET v = "+Quote(string(inv.Args[1]))+
			" WHERE k = "+Quote(string(inv.Args[0])), t.Trace)
		if err != nil {
			return system.Result{Err: err}
		}
		tx := c.NewTxn()
		if inv.Method == "modify" {
			if _, err := tx.Get(plan.StorageKey); err != nil {
				return c.conflictResult(err)
			}
		}
		tx.Write(plan.StorageKey, inv.Args[1])
		if err := tx.Commit(t.Trace); err != nil {
			return c.conflictResult(err)
		}
		return system.Result{Committed: true}
	case "multi":
		tx := c.NewTxn()
		for i := 0; i < len(inv.Args); i += 2 {
			_, plan, err := s.compile("UPDATE kv SET v = "+Quote(string(inv.Args[i+1]))+
				" WHERE k = "+Quote(string(inv.Args[i])), t.Trace)
			if err != nil {
				return system.Result{Err: err}
			}
			if _, err := tx.Get(plan.StorageKey); err != nil {
				return c.conflictResult(err)
			}
			tx.Write(plan.StorageKey, inv.Args[i+1])
		}
		if err := tx.Commit(t.Trace); err != nil {
			return c.conflictResult(err)
		}
		return system.Result{Committed: true}
	default:
		return system.Result{Err: fmt.Errorf("tidb: kv method %q", inv.Method)}
	}
}

func (c *Cluster) conflictResult(err error) system.Result {
	if errors.Is(err, ErrConflict) || errors.Is(err, mvcc.ErrLocked) || errors.Is(err, mvcc.ErrWriteConflict) {
		return system.Result{Reason: occ.WriteWriteConflict, Err: err}
	}
	return system.Result{Err: err}
}

// execSmallbank runs the Smallbank profiles as interactive transactions
// with client-side arithmetic, the OLTPBench style.
func (c *Cluster) execSmallbank(s *Session, t *txn.Tx) system.Result {
	inv := t.Invocation
	tx := c.NewTxn()
	get := func(table, id string) (int64, error) {
		_, plan, err := s.compile("SELECT v FROM "+table+" WHERE k = "+Quote(id), t.Trace)
		if err != nil {
			return 0, err
		}
		v, err := tx.Get(plan.StorageKey)
		if err != nil {
			return 0, err
		}
		return contract.DecodeInt64(v), nil
	}
	put := func(table, id string, v int64) error {
		_, plan, err := s.compile("UPDATE "+table+" SET v = 'x' WHERE k = "+Quote(id), t.Trace)
		if err != nil {
			return err
		}
		tx.Write(plan.StorageKey, contract.EncodeInt64(v))
		return nil
	}
	fail := func(err error) system.Result { return c.conflictResult(err) }
	arg := func(i int) string { return string(inv.Args[i]) }

	switch inv.Method {
	case "create_account":
		if err := put("chk", arg(0), contract.DecodeInt64(inv.Args[1])); err != nil {
			return fail(err)
		}
		if err := put("sav", arg(0), contract.DecodeInt64(inv.Args[2])); err != nil {
			return fail(err)
		}
	case "transact_savings":
		bal, err := get("sav", arg(0))
		if err != nil {
			return fail(err)
		}
		amount := contract.DecodeInt64(inv.Args[1])
		if bal+amount < 0 {
			return system.Result{Reason: occ.OK, Err: contract.ErrAbort}
		}
		if err := put("sav", arg(0), bal+amount); err != nil {
			return fail(err)
		}
	case "deposit_checking":
		bal, err := get("chk", arg(0))
		if err != nil {
			return fail(err)
		}
		if err := put("chk", arg(0), bal+contract.DecodeInt64(inv.Args[1])); err != nil {
			return fail(err)
		}
	case "send_payment":
		src, err := get("chk", arg(0))
		if err != nil {
			return fail(err)
		}
		amount := contract.DecodeInt64(inv.Args[2])
		if src < amount {
			return system.Result{Reason: occ.OK, Err: contract.ErrAbort}
		}
		dst, err := get("chk", arg(1))
		if err != nil {
			return fail(err)
		}
		if err := put("chk", arg(0), src-amount); err != nil {
			return fail(err)
		}
		if err := put("chk", arg(1), dst+amount); err != nil {
			return fail(err)
		}
	case "write_check":
		chk, err := get("chk", arg(0))
		if err != nil {
			return fail(err)
		}
		sav, err := get("sav", arg(0))
		if err != nil {
			return fail(err)
		}
		amount := contract.DecodeInt64(inv.Args[1])
		if chk+sav < amount {
			amount++
		}
		if err := put("chk", arg(0), chk-amount); err != nil {
			return fail(err)
		}
	case "amalgamate":
		sav, err := get("sav", arg(0))
		if err != nil {
			return fail(err)
		}
		chk, err := get("chk", arg(0))
		if err != nil {
			return fail(err)
		}
		dst, err := get("chk", arg(1))
		if err != nil {
			return fail(err)
		}
		if err := put("sav", arg(0), 0); err != nil {
			return fail(err)
		}
		if err := put("chk", arg(0), 0); err != nil {
			return fail(err)
		}
		if err := put("chk", arg(1), dst+sav+chk); err != nil {
			return fail(err)
		}
	case "query":
		if _, err := get("sav", arg(0)); err != nil {
			return fail(err)
		}
		if _, err := get("chk", arg(0)); err != nil {
			return fail(err)
		}
		return system.Result{Committed: true}
	default:
		return system.Result{Err: fmt.Errorf("tidb: smallbank method %q", inv.Method)}
	}
	if err := tx.Commit(t.Trace); err != nil {
		return c.conflictResult(err)
	}
	return system.Result{Committed: true}
}

// RawPut writes a key through the region raft group without transactional
// machinery — the standalone-TiKV data point of Fig 4. One consensus
// round, no locks, no 2PC: the overhead gap between this and a TiDB
// transaction is exactly the ACID cost the paper measures between TiKV
// and TiDB.
func (c *Cluster) RawPut(key string, value []byte) error {
	ts := c.pd.Next()
	return c.regionOf(key).propose(&regionCmd{
		kind: cmdRawPut, key: key, value: value,
		startTS: ts, commitTS: c.pd.Next(),
	})
}

// RawGet reads a key at the latest snapshot without SQL processing.
func (c *Cluster) RawGet(key string) ([]byte, error) {
	return c.read(key)
}

// StateBytes returns the live state footprint across regions of one full
// replica (Fig 12's TiDB series).
func (c *Cluster) StateBytes() int64 {
	var total int64
	for _, reg := range c.regions {
		total += reg.replicas[0].store.Load().Bytes()
	}
	return total
}
