package tidb

import (
	"fmt"
	"strings"
	"unicode"
)

// The micro-SQL dialect: enough of SQL for the paper's workloads, with a
// real lexer, parser, and planner so the SQL-parse and SQL-compile phases
// of Fig 8b do genuine work on every statement.
//
//	SELECT v FROM kv WHERE k = 'key'
//	INSERT INTO kv VALUES ('key', 'value')
//	UPDATE kv SET v = 'value' WHERE k = 'key'
//	DELETE FROM kv WHERE k = 'key'
//
// Values are single-quoted strings with '' as the escape for a quote.

// StmtKind discriminates parsed statements.
type StmtKind int

const (
	// StmtSelect is a point read.
	StmtSelect StmtKind = iota
	// StmtInsert writes a new row.
	StmtInsert
	// StmtUpdate overwrites a row's value.
	StmtUpdate
	// StmtDelete removes a row.
	StmtDelete
)

// Stmt is a parsed statement.
type Stmt struct {
	Kind  StmtKind
	Table string
	Key   string
	Value string
}

type token struct {
	kind tokenKind
	text string
}

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokString
	tokPunct
	tokEOF
)

// lex splits a statement into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case c == '=' || c == '(' || c == ')' || c == ',' || c == ';' || c == '*':
			toks = append(toks, token{tokPunct, string(c)})
			i++
		case isIdentChar(c):
			j := i
			for j < len(input) && isIdentChar(input[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToUpper(input[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	return append(toks, token{kind: tokEOF}), nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '-' || c == ':' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// parser walks the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return fmt.Errorf("sql: expected %s, got %q", word, t.text)
	}
	return nil
}

func (p *parser) expectPunct(ch string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != ch {
		return fmt.Errorf("sql: expected %q, got %q", ch, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) str() (string, error) {
	t := p.next()
	if t.kind != tokString {
		return "", fmt.Errorf("sql: expected string literal, got %q", t.text)
	}
	return t.text, nil
}

// Parse turns one statement into a Stmt.
func Parse(input string) (Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return Stmt{}, err
	}
	p := &parser{toks: toks}
	head := p.next()
	if head.kind != tokIdent {
		return Stmt{}, fmt.Errorf("sql: expected statement keyword, got %q", head.text)
	}
	var stmt Stmt
	switch head.text {
	case "SELECT":
		stmt, err = p.parseSelect()
	case "INSERT":
		stmt, err = p.parseInsert()
	case "UPDATE":
		stmt, err = p.parseUpdate()
	case "DELETE":
		stmt, err = p.parseDelete()
	default:
		return Stmt{}, fmt.Errorf("sql: unsupported statement %q", head.text)
	}
	if err != nil {
		return Stmt{}, err
	}
	// Optional trailing semicolon.
	if t := p.peek(); t.kind == tokPunct && t.text == ";" {
		p.next()
	}
	if t := p.next(); t.kind != tokEOF {
		return Stmt{}, fmt.Errorf("sql: trailing input %q", t.text)
	}
	return stmt, nil
}

func (p *parser) parseSelect() (Stmt, error) {
	// SELECT (v | *) FROM table WHERE k = 'key'
	t := p.next()
	if !(t.kind == tokIdent || (t.kind == tokPunct && t.text == "*")) {
		return Stmt{}, fmt.Errorf("sql: bad select list %q", t.text)
	}
	if err := p.expectIdent("FROM"); err != nil {
		return Stmt{}, err
	}
	table, err := p.ident()
	if err != nil {
		return Stmt{}, err
	}
	key, err := p.parseWhere()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Kind: StmtSelect, Table: table, Key: key}, nil
}

func (p *parser) parseInsert() (Stmt, error) {
	// INSERT INTO table VALUES ('key', 'value')
	if err := p.expectIdent("INTO"); err != nil {
		return Stmt{}, err
	}
	table, err := p.ident()
	if err != nil {
		return Stmt{}, err
	}
	if err := p.expectIdent("VALUES"); err != nil {
		return Stmt{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return Stmt{}, err
	}
	key, err := p.str()
	if err != nil {
		return Stmt{}, err
	}
	if err := p.expectPunct(","); err != nil {
		return Stmt{}, err
	}
	value, err := p.str()
	if err != nil {
		return Stmt{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return Stmt{}, err
	}
	return Stmt{Kind: StmtInsert, Table: table, Key: key, Value: value}, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	// UPDATE table SET v = 'value' WHERE k = 'key'
	table, err := p.ident()
	if err != nil {
		return Stmt{}, err
	}
	if err := p.expectIdent("SET"); err != nil {
		return Stmt{}, err
	}
	if _, err := p.ident(); err != nil { // column name
		return Stmt{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return Stmt{}, err
	}
	value, err := p.str()
	if err != nil {
		return Stmt{}, err
	}
	key, err := p.parseWhere()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Kind: StmtUpdate, Table: table, Key: key, Value: value}, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	// DELETE FROM table WHERE k = 'key'
	if err := p.expectIdent("FROM"); err != nil {
		return Stmt{}, err
	}
	table, err := p.ident()
	if err != nil {
		return Stmt{}, err
	}
	key, err := p.parseWhere()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Kind: StmtDelete, Table: table, Key: key}, nil
}

func (p *parser) parseWhere() (string, error) {
	if err := p.expectIdent("WHERE"); err != nil {
		return "", err
	}
	if _, err := p.ident(); err != nil { // column name
		return "", err
	}
	if err := p.expectPunct("="); err != nil {
		return "", err
	}
	return p.str()
}

// Plan is a compiled statement: the physical operation plus its routing
// key. Planning resolves the table, validates the operation shape, and
// derives the storage key — the SQL-compile phase of Fig 8b.
type Plan struct {
	Stmt Stmt
	// StorageKey is the key in the distributed store: table-prefixed so
	// different tables do not collide.
	StorageKey string
}

// Compile builds the plan for a parsed statement.
func Compile(stmt Stmt) (Plan, error) {
	if stmt.Table == "" {
		return Plan{}, fmt.Errorf("sql: statement has no table")
	}
	if stmt.Key == "" {
		return Plan{}, fmt.Errorf("sql: statement has no key")
	}
	return Plan{
		Stmt:       stmt,
		StorageKey: strings.ToLower(stmt.Table) + "/" + stmt.Key,
	}, nil
}

// Quote renders a string as a SQL literal.
func Quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
