// Package system defines the driver-facing contract implemented by every
// modelled transactional system — the two blockchains (Fabric, Quorum),
// the two databases (TiDB, etcd), the sharded systems (AHL, Spanner-like),
// and the hybrid prototypes. The benchmark harness in internal/bench
// drives anything satisfying System, which is what lets the paper's
// experiments compare them on identical workloads.
package system

import (
	"context"
	"sync"
	"sync/atomic"

	"dichotomy/internal/occ"
	"dichotomy/internal/txn"
)

// Result is the outcome of one transaction.
//
// The Err-vs-Reason contract: Reason classifies transaction-level
// verdicts the system itself reached — occ.OK on commit, an abort reason
// (stale read, write conflict, …) otherwise — while Err carries
// infrastructure failures: timeouts, stopped services, storage errors,
// and admission rejections. A Result with a non-nil Err and Reason ==
// occ.OK means the transaction never received a verdict; in particular,
// admission-control rejections from the ingress front door satisfy
// errors.Is(Err, ingress.ErrOverloaded) and mean the transaction was
// never executed, so the client may safely retry it.
type Result struct {
	// Committed reports whether the transaction's effects are durable.
	Committed bool
	// Reason classifies aborts (occ.OK when committed).
	Reason occ.AbortReason
	// Err carries infrastructure errors (not transaction aborts).
	Err error
	// Value holds a query result, when the request was a read.
	Value []byte
}

// System is a running transactional system under benchmark.
//
// Submit is the primary entry point; Execute is a thin Submit+Wait
// wrapper kept for the closed-loop harness and callers that want the
// blocking shape. Result's Err-vs-Reason contract (see Result) is shared
// by both paths.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Execute runs tx to completion — commit or abort — and returns the
	// outcome. Safe for concurrent use; the harness runs many clients.
	Execute(tx *txn.Tx) Result
	// Submit enqueues tx for asynchronous execution and returns a Handle
	// resolving to its outcome. A non-nil error means the transaction was
	// not accepted — a cancelled context, a closed system, or an
	// admission rejection (ingress.ErrOverloaded) — and never ran.
	// Systems with an ingress front door may return the same Handle to
	// concurrent submitters of one content-identical transaction.
	Submit(ctx context.Context, tx *txn.Tx) (*Handle, error)
	// Close shuts the system down.
	Close()
}

// Submitter is the Submit capability alone — what ExecuteViaSubmit needs.
type Submitter interface {
	Submit(ctx context.Context, tx *txn.Tx) (*Handle, error)
}

// Handle is the pending outcome of one submitted transaction. A handle
// supports any number of waiters — the mempool's dedup path hands the
// same handle to every submitter of a content-identical transaction —
// and is resolved exactly once; later Resolve calls are no-ops.
type Handle struct {
	mu       sync.Mutex
	resolved bool
	result   Result
	waiters  []chan Result
}

// NewHandle returns an unresolved handle.
func NewHandle() *Handle { return &Handle{} }

// ResolvedHandle returns a handle already carrying r — for paths that can
// answer at submission time (local reads, immediate rejections with a
// transaction-level verdict).
func ResolvedHandle(r Result) *Handle {
	return &Handle{resolved: true, result: r}
}

// Resolve delivers the outcome. The first call wins; every channel
// handed out by Done receives it, and later Done/Wait calls observe it
// immediately.
func (h *Handle) Resolve(r Result) {
	h.mu.Lock()
	if h.resolved {
		h.mu.Unlock()
		return
	}
	h.resolved = true
	h.result = r
	ws := h.waiters
	h.waiters = nil
	h.mu.Unlock()
	for _, ch := range ws {
		ch <- r // cap 1, one per Done call: never blocks
	}
}

// Done returns a channel that receives the outcome once resolved. Each
// call returns a fresh buffered channel, so multiple waiters (and
// select-based callers that abandon a wait) never steal each other's
// delivery.
func (h *Handle) Done() <-chan Result {
	ch := make(chan Result, 1)
	h.mu.Lock()
	if h.resolved {
		r := h.result
		h.mu.Unlock()
		ch <- r
		return ch
	}
	h.waiters = append(h.waiters, ch)
	h.mu.Unlock()
	return ch
}

// Wait blocks until the outcome or ctx is done; cancellation returns a
// Result carrying ctx.Err() (the transaction may still commit later).
func (h *Handle) Wait(ctx context.Context) Result {
	select {
	case r := <-h.Done():
		return r
	case <-ctx.Done():
		return Result{Err: ctx.Err()}
	}
}

// GoSubmit adapts a blocking execution path to the Submit shape: run is
// started on its own goroutine and its result resolves the returned
// handle. Systems without a mempool-fed path implement Submit with it.
func GoSubmit(run func() Result) *Handle {
	h := NewHandle()
	go func() { h.Resolve(run()) }()
	return h
}

// ExecuteViaSubmit is the canonical blocking Execute implementation:
// Submit, then Wait without a deadline. Every system's Execute is this
// thin wrapper, so the closed-loop harness and the asynchronous path
// exercise identical machinery.
func ExecuteViaSubmit(s Submitter, tx *txn.Tx) Result {
	h, err := s.Submit(context.Background(), tx)
	if err != nil {
		return Result{Err: err}
	}
	return h.Wait(context.Background())
}

// PayloadBox passes in-process block payloads through consensus by handle.
// Consensus data payloads stay small (8-byte handles) while Message.Size
// still reports true wire sizes for the bandwidth model; this skips
// serialization CPU, which none of the paper's experiments identify as a
// cost centre, while keeping every other cost real.
type PayloadBox struct {
	seq  atomic.Uint64
	mu   sync.Mutex
	data map[uint64]*boxEntry
}

type boxEntry struct {
	v         any
	remaining int
}

// NewPayloadBox returns an empty box.
func NewPayloadBox() *PayloadBox {
	return &PayloadBox{data: make(map[uint64]*boxEntry)}
}

// Put stores v for a given number of consumers and returns its handle.
// The entry is released after the last Take.
func (b *PayloadBox) Put(v any, consumers int) uint64 {
	if consumers < 1 {
		consumers = 1
	}
	id := b.seq.Add(1)
	b.mu.Lock()
	b.data[id] = &boxEntry{v: v, remaining: consumers}
	b.mu.Unlock()
	return id
}

// Take returns the value for a handle, consuming one reference.
func (b *PayloadBox) Take(id uint64) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.data[id]
	if !ok {
		return nil, false
	}
	e.remaining--
	if e.remaining <= 0 {
		delete(b.data, id)
	}
	return e.v, true
}

// Drop releases a stored payload without consumers (submission paths that
// failed after Put), so aborted appends cannot leak box entries.
func (b *PayloadBox) Drop(id uint64) {
	b.mu.Lock()
	delete(b.data, id)
	b.mu.Unlock()
}

// Len reports how many live payloads the box holds (tests bound leaks).
func (b *PayloadBox) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

// EncodeHandle encodes a payload handle as the 8-byte consensus payload.
func EncodeHandle(id uint64) []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(id >> (8 * (7 - i)))
	}
	return out
}

// HandleID decodes a consensus payload back into a handle.
func HandleID(data []byte) (uint64, bool) {
	if len(data) != 8 {
		return 0, false
	}
	var id uint64
	for _, b := range data {
		id = id<<8 | uint64(b)
	}
	return id, true
}

// Waiters matches submitted transactions with their eventual outcomes:
// clients block on their tx id, commit paths resolve them.
//
// Keys are content-hash transaction ids, so two concurrent registrations
// of one content-identical transaction collide — the second overwrites
// the first, whose waiter then times out. The direct Execute paths keep
// that historical limitation; the ingress mempool fixes it upstream by
// deduplicating at admission, so at most one registration per id is ever
// live on the mempool-fed path.
type Waiters struct {
	mu sync.Mutex
	m  map[string]func(Result)
}

// NewWaiters returns an empty registry.
func NewWaiters() *Waiters {
	return &Waiters{m: make(map[string]func(Result))}
}

// Register returns the channel a client should block on for key.
func (w *Waiters) Register(key string) <-chan Result {
	ch := make(chan Result, 1)
	w.RegisterFunc(key, func(r Result) { ch <- r })
	return ch
}

// RegisterFunc registers fn to be invoked (once, off the registry lock)
// with the outcome for key — the hook the ingress front door uses to
// route seal-path resolutions into mempool handles.
func (w *Waiters) RegisterFunc(key string, fn func(Result)) {
	w.mu.Lock()
	w.m[key] = fn
	w.mu.Unlock()
}

// Resolve delivers the outcome for key, if a waiter exists.
func (w *Waiters) Resolve(key string, r Result) {
	w.mu.Lock()
	fn, ok := w.m[key]
	if ok {
		delete(w.m, key)
	}
	w.mu.Unlock()
	if ok {
		fn(r)
	}
}

// Cancel drops the waiter for key.
func (w *Waiters) Cancel(key string) {
	w.mu.Lock()
	delete(w.m, key)
	w.mu.Unlock()
}

// Drainer controls a crash-time drain goroutine: the loop that keeps
// consuming a crashed node's ordered stream (taking its payload-box
// copies so entries never leak) runs until Halt, which blocks until the
// loop has observed the stop and exited. Halt is idempotent.
type Drainer struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewDrainer returns a Drainer; the drain loop must select on Stop and
// close Done when it returns.
func NewDrainer() *Drainer {
	return &Drainer{stop: make(chan struct{}), done: make(chan struct{})}
}

// Stop is the channel the drain loop selects on.
func (d *Drainer) Stop() <-chan struct{} { return d.stop }

// Finish marks the drain loop as exited; the loop defers it.
func (d *Drainer) Finish() { close(d.done) }

// Halt stops the drain loop and waits for it to exit.
func (d *Drainer) Halt() {
	d.once.Do(func() { close(d.stop) })
	<-d.done
}
