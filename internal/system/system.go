// Package system defines the driver-facing contract implemented by every
// modelled transactional system — the two blockchains (Fabric, Quorum),
// the two databases (TiDB, etcd), the sharded systems (AHL, Spanner-like),
// and the hybrid prototypes. The benchmark harness in internal/bench
// drives anything satisfying System, which is what lets the paper's
// experiments compare them on identical workloads.
package system

import (
	"sync"
	"sync/atomic"

	"dichotomy/internal/occ"
	"dichotomy/internal/txn"
)

// Result is the outcome of one transaction.
type Result struct {
	// Committed reports whether the transaction's effects are durable.
	Committed bool
	// Reason classifies aborts (occ.OK when committed).
	Reason occ.AbortReason
	// Err carries infrastructure errors (not transaction aborts).
	Err error
	// Value holds a query result, when the request was a read.
	Value []byte
}

// System is a running transactional system under benchmark.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// Execute runs tx to completion — commit or abort — and returns the
	// outcome. Safe for concurrent use; the harness runs many clients.
	Execute(tx *txn.Tx) Result
	// Close shuts the system down.
	Close()
}

// PayloadBox passes in-process block payloads through consensus by handle.
// Consensus data payloads stay small (8-byte handles) while Message.Size
// still reports true wire sizes for the bandwidth model; this skips
// serialization CPU, which none of the paper's experiments identify as a
// cost centre, while keeping every other cost real.
type PayloadBox struct {
	seq  atomic.Uint64
	mu   sync.Mutex
	data map[uint64]*boxEntry
}

type boxEntry struct {
	v         any
	remaining int
}

// NewPayloadBox returns an empty box.
func NewPayloadBox() *PayloadBox {
	return &PayloadBox{data: make(map[uint64]*boxEntry)}
}

// Put stores v for a given number of consumers and returns its handle.
// The entry is released after the last Take.
func (b *PayloadBox) Put(v any, consumers int) uint64 {
	if consumers < 1 {
		consumers = 1
	}
	id := b.seq.Add(1)
	b.mu.Lock()
	b.data[id] = &boxEntry{v: v, remaining: consumers}
	b.mu.Unlock()
	return id
}

// Take returns the value for a handle, consuming one reference.
func (b *PayloadBox) Take(id uint64) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.data[id]
	if !ok {
		return nil, false
	}
	e.remaining--
	if e.remaining <= 0 {
		delete(b.data, id)
	}
	return e.v, true
}

// Len reports how many live payloads the box holds (tests bound leaks).
func (b *PayloadBox) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

// Handle encodes a payload handle as the 8-byte consensus payload.
func Handle(id uint64) []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(id >> (8 * (7 - i)))
	}
	return out
}

// HandleID decodes a consensus payload back into a handle.
func HandleID(data []byte) (uint64, bool) {
	if len(data) != 8 {
		return 0, false
	}
	var id uint64
	for _, b := range data {
		id = id<<8 | uint64(b)
	}
	return id, true
}

// Waiters matches submitted transactions with their eventual outcomes:
// clients block on their tx id, commit paths resolve them.
type Waiters struct {
	mu sync.Mutex
	m  map[string]chan Result
}

// NewWaiters returns an empty registry.
func NewWaiters() *Waiters {
	return &Waiters{m: make(map[string]chan Result)}
}

// Register returns the channel a client should block on for key.
func (w *Waiters) Register(key string) <-chan Result {
	ch := make(chan Result, 1)
	w.mu.Lock()
	w.m[key] = ch
	w.mu.Unlock()
	return ch
}

// Resolve delivers the outcome for key, if a waiter exists.
func (w *Waiters) Resolve(key string, r Result) {
	w.mu.Lock()
	ch, ok := w.m[key]
	if ok {
		delete(w.m, key)
	}
	w.mu.Unlock()
	if ok {
		ch <- r
	}
}

// Cancel drops the waiter for key.
func (w *Waiters) Cancel(key string) {
	w.mu.Lock()
	delete(w.m, key)
	w.mu.Unlock()
}
