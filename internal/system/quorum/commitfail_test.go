package quorum

import (
	"errors"
	"sync/atomic"
	"testing"

	"dichotomy/internal/storage"
)

// failEngine passes reads through and fails every write while armed.
type failEngine struct {
	storage.Engine
	armed atomic.Bool
}

var errInjected = errors.New("injected write failure")

func (f *failEngine) Put(key, value []byte) error {
	if f.armed.Load() {
		return errInjected
	}
	return f.Engine.Put(key, value)
}

func (f *failEngine) Delete(key []byte) error {
	if f.armed.Load() {
		return errInjected
	}
	return f.Engine.Delete(key)
}

// TestCommitFailureSurfacesError is the regression test behind nopanic's
// quorum findings: a state-commit failure must reach the waiting client
// as an error through Seal, and the node must stay alive — before this
// PR it panicked the committer goroutine.
func TestCommitFailureSurfacesError(t *testing.T) {
	var engines []*failEngine
	cfg := Config{Nodes: 3}
	cfg.EngineHook = func(e storage.Engine) storage.Engine {
		fe := &failEngine{Engine: e}
		engines = append(engines, fe)
		return fe
	}
	nw, client := network(t, cfg)

	if r := nw.Execute(mustTx(t, client, "put", "alpha", "1")); !r.Committed {
		t.Fatalf("pre-fault put: %+v", r)
	}

	for _, fe := range engines {
		fe.armed.Store(true)
	}
	r := nw.Execute(mustTx(t, client, "put", "beta", "2"))
	if r.Err == nil {
		t.Fatalf("commit failure not surfaced: %+v", r)
	}
	if r.Committed {
		t.Fatalf("failed commit reported as committed: %+v", r)
	}

	// The node survived the fault: clear it and commit again.
	for _, fe := range engines {
		fe.armed.Store(false)
	}
	if r := nw.Execute(mustTx(t, client, "put", "gamma", "3")); !r.Committed {
		t.Fatalf("post-fault put: %+v", r)
	}
}
