package quorum

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/txn"
)

func network(t *testing.T, cfg Config) (*Network, *cryptoutil.Signer) {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	client := cryptoutil.MustNewSigner("client")
	nw.RegisterClient(client.Name(), client.Public())
	return nw, client
}

func mustTx(t *testing.T, client *cryptoutil.Signer, method string, args ...string) *txn.Tx {
	t.Helper()
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	tx, err := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: method, Args: raw})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestCommitAndRead(t *testing.T) {
	nw, client := network(t, Config{Nodes: 3})
	r := nw.Execute(mustTx(t, client, "put", "alpha", "1"))
	if !r.Committed {
		t.Fatalf("put result %+v", r)
	}
	r = nw.Execute(mustTx(t, client, "get", "alpha"))
	if !r.Committed {
		t.Fatalf("get result %+v", r)
	}
}

func TestUnknownClientRejected(t *testing.T) {
	nw, _ := network(t, Config{Nodes: 3})
	stranger := cryptoutil.MustNewSigner("stranger")
	tx, _ := txn.Sign(stranger, txn.Invocation{Contract: contract.KVName, Method: "get", Args: [][]byte{[]byte("k")}})
	if r := nw.Execute(tx); r.Err == nil {
		t.Fatal("unauthenticated client served")
	}
}

func TestStateAgreesAcrossNodes(t *testing.T) {
	nw, client := network(t, Config{Nodes: 3})
	for i := 0; i < 30; i++ {
		r := nw.Execute(mustTx(t, client, "put", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)))
		if !r.Committed {
			t.Fatalf("tx %d: %+v", i, r)
		}
	}
	// Wait until every node's ledger has converged to the same, stable
	// height (applies run asynchronously after clients return), then all
	// MPT roots must agree.
	h := waitConverged(t, nw, 3)
	if h == 0 {
		t.Fatal("no blocks committed")
	}
	root := nw.StateRoot(0)
	for i := 1; i < 3; i++ {
		if nw.StateRoot(i) != root {
			t.Fatalf("node %d state root diverged", i)
		}
	}
	if err := nw.Ledger(0).Verify(); err != nil {
		t.Fatal(err)
	}
}

// waitConverged blocks until all nodes report the same ledger height twice
// in a row, and returns that height.
func waitConverged(t *testing.T, nw *Network, nodes int) uint64 {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var prev uint64
	stable := 0
	for time.Now().Before(deadline) {
		h := nw.Ledger(0).Height()
		same := true
		for i := 1; i < nodes; i++ {
			if nw.Ledger(i).Height() != h {
				same = false
				break
			}
		}
		if same && h == prev && h > 0 {
			stable++
			if stable >= 3 {
				return h
			}
		} else {
			stable = 0
		}
		prev = h
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("ledgers never converged")
	return 0
}

func TestIBFTModeCommits(t *testing.T) {
	nw, client := network(t, Config{Nodes: 4, Consensus: IBFT})
	r := nw.Execute(mustTx(t, client, "put", "k", "v"))
	if !r.Committed {
		t.Fatalf("ibft put: %+v", r)
	}
}

func TestIBFTRejectsTooFewNodes(t *testing.T) {
	if _, err := New(Config{Nodes: 3, Consensus: IBFT}); err == nil {
		t.Fatal("IBFT with 3 nodes accepted")
	}
}

func TestSerialExecutionNoConflicts(t *testing.T) {
	// Order-execute systems never abort on contention: all writers to the
	// same key commit, serially.
	nw, client := network(t, Config{Nodes: 3})
	done := make(chan bool, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			r := nw.Execute(mustTx(t, client, "modify", "hot", fmt.Sprintf("w%d", w)))
			done <- r.Committed
		}(w)
	}
	for i := 0; i < 16; i++ {
		if !<-done {
			t.Fatal("serial execution aborted a contended write")
		}
	}
}

func TestStateBytesGrow(t *testing.T) {
	nw, client := network(t, Config{Nodes: 3})
	before := nw.StateBytes()
	for i := 0; i < 10; i++ {
		nw.Execute(mustTx(t, client, "put", fmt.Sprintf("key-%d", i), "some-value-payload"))
	}
	if nw.StateBytes() <= before {
		t.Fatal("state bytes did not grow")
	}
}
