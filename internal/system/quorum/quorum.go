// Package quorum models Quorum v2.2, the paper's order-execute
// permissioned blockchain: a geth fork that replaces PoW with Raft or
// IBFT but keeps the EVM execution model and MPT-over-LSM state.
//
// Transaction lifecycle (paper Fig 3a):
//
//  1. Clients submit signed contract invocations to any node, which pools
//     them.
//  2. The consensus leader *pre-executes* pending transactions serially at
//     the ledger tip — block construction is sequential, which is why
//     Quorum cannot exploit concurrency — and batches them into a block.
//  3. The block goes through consensus (Raft or IBFT).
//  4. Every node re-executes the block's transactions ("double
//     execution") through the shared block pipeline: client signatures
//     verify across a worker pool, write-disjoint transactions re-execute
//     speculatively in parallel (with a deterministic serial fix-up for
//     conflicting ones, so every replica still reaches the identical
//     state), writes land in the LSM-backed state as one batch, the node
//     reconstructs the MPT commitment (the per-commit hashing the paper
//     blames for the record-size collapse in Fig 11), and appends the
//     block.
package quorum

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/authstate"
	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/ibft"
	"dichotomy/internal/consensus/raft"
	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/ingress"
	"dichotomy/internal/ledger"
	"dichotomy/internal/metrics"
	"dichotomy/internal/occ"
	"dichotomy/internal/pipeline"
	"dichotomy/internal/recovery"
	"dichotomy/internal/state"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/lsm"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

// openEngine opens a node's LSM state engine: disk-backed under dataDir
// when set, purely in-memory otherwise. Errors surface to the caller —
// node setup no longer panics on an open failure.
func openEngine(dataDir string, id cluster.NodeID) (storage.Engine, error) {
	opt := lsm.Options{}
	if dataDir != "" {
		opt.Dir = filepath.Join(dataDir, fmt.Sprintf("node%d", id), "state")
	}
	return lsm.Open(opt)
}

func ckptDir(dataDir string, id cluster.NodeID) string {
	return filepath.Join(dataDir, fmt.Sprintf("node%d", id), "ckpt")
}

// ConsensusKind selects the replication protocol.
type ConsensusKind int

const (
	// Raft is Quorum's CFT mode.
	Raft ConsensusKind = iota
	// IBFT is Quorum's BFT mode.
	IBFT
)

// Config assembles a Quorum network.
type Config struct {
	// Nodes is the validator count.
	Nodes int
	// Consensus picks Raft (CFT) or IBFT (BFT).
	Consensus ConsensusKind
	// BlockSize caps transactions per block. Default 100.
	BlockSize int
	// BlockInterval cuts a non-full block after this delay. Default 5ms.
	BlockInterval time.Duration
	// ExecutionWorkers sizes each node's block re-execution worker pool:
	// write-disjoint transactions replay speculatively in parallel, with a
	// deterministic serial fix-up for conflicting ones. ≤ 0 selects 1 —
	// the real system's serial double execution, so the modelled system
	// stays faithful unless parallelism is asked for.
	ExecutionWorkers int
	// PipelineDepth is how many blocks a node keeps in flight: client
	// authentication of block N+1 overlaps commit of block N at depth
	// ≥ 2. ≤ 0 selects 1 — no cross-block overlap, as in the real system.
	PipelineDepth int
	// DataDir, when set, puts each node's LSM state on disk under
	// DataDir/nodeN/state and its checkpoints under DataDir/nodeN/ckpt.
	// Empty keeps nodes memory-only, as before.
	DataDir string
	// CheckpointInterval writes a block-consistent checkpoint of state
	// (values and versions) every this many blocks, on the committer after
	// sealing. 0 disables checkpointing. Requires DataDir.
	CheckpointInterval uint64
	// CheckpointMode selects full checkpoints (whole store, synchronous
	// on the committer) or delta checkpoints (dirtied keys only,
	// serialized off the committer). Default full.
	CheckpointMode recovery.Mode
	// CheckpointFullEvery is the delta-mode compaction period (≤ 0
	// selects the recovery package default).
	CheckpointFullEvery int
	// BatchVerify switches the validate stage's client authentication
	// from one VerifyDigest per transaction to one cryptoutil.VerifyBatch
	// pass per worker chunk (amortized checks, per-batch cost accounting,
	// bisection isolating exactly the bad transaction). Per-tx verdicts
	// are identical to the serial path.
	BatchVerify bool
	// RootPublishEvery signs and publishes the authenticated state root
	// every N blocks (internal/authstate); ≤ 0 selects 1 (every block).
	// Larger values trade root freshness for maintenance cost — the
	// root-lag knob the authreads experiment sweeps.
	RootPublishEvery int
	// ProofCacheSize is the per-node proof-server cache budget in
	// entries (≤ 0 selects the authstate default).
	ProofCacheSize int
	// Ingress, when set, puts the ingress front door (internal/ingress)
	// in front of the network: Submit feeds a bounded deduplicating
	// mempool, the builder hands batches to the leader's transaction pool
	// with a bounded handoff, and arrival pressure drives the proposer's
	// block-cut size. Nil keeps the paper-faithful direct path.
	Ingress *ingress.Config
	// Link models the network; nil means zero latency.
	Link cluster.LinkModel
	// Contracts deployed on all nodes. Default: KV and Smallbank.
	Contracts []contract.Contract
	// EngineHook, when set, wraps each node's state engine as it is
	// opened — including the fresh engine a recovering node rebuilds
	// onto. Tests inject failing engines through it; the chaos layer
	// injects write failures and fsync stalls.
	EngineHook func(storage.Engine) storage.Engine
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 100
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = 5 * time.Millisecond
	}
	if c.ExecutionWorkers <= 0 {
		c.ExecutionWorkers = 1
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	if c.Contracts == nil {
		c.Contracts = []contract.Contract{contract.KV{}, contract.Smallbank{}}
	}
	return c
}

// Network is a running Quorum deployment.
type Network struct {
	cfg     Config
	net     *cluster.Network
	nodes   []*node
	box     *system.PayloadBox
	waiters *system.Waiters
	clients sync.Map         // client name → cryptoutil.PublicKey
	ing     *ingress.Ingress // nil without Config.Ingress
	// blockCap is the proposer's current block-cut cap: Config.BlockSize
	// on the direct path, adaptively driven by the ingress builder's batch
	// size when the front door is on.
	blockCap atomic.Int64

	rr       uint64
	rrMu     sync.Mutex
	closeOne sync.Once
}

var _ system.System = (*Network)(nil)

// node is one Quorum validator. Committed state lives in the shared
// striped state layer; the MPT commitment is node-local, maintained by
// the node's RootMaintainer worker off the commit path and read only
// through its published snapshots.
type node struct {
	id        cluster.NodeID
	nw        *Network
	cons      consensus.Node
	ep        *cluster.Endpoint
	reg       *contract.Registry
	ledger    *ledger.Ledger
	st        *state.Store
	signer    *cryptoutil.Signer
	auth      *authstate.RootMaintainer
	proofs    *authstate.ProofServer
	pipe      *pipeline.Pipeline[consensus.Entry, *nodeBlock]
	ckpt      *recovery.Checkpointer // nil when checkpointing is off
	pendingMu sync.Mutex
	pending   []*txn.Tx
	stopCh    chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	// crashed marks a node whose execution layer was killed; submission
	// and query routing skip it, and a drain keeps its consensus replica
	// from wedging the cluster.
	crashed atomic.Bool
	// lastDelivered is the newest consensus index this node has consumed
	// — decoded while live, drained while down. The rejoin handoff in
	// RecoverNode pivots on it.
	lastDelivered atomic.Uint64
	// skipTo makes the restarted decode stage take-and-discard entries
	// the recovery replay already covered (index ≤ skipTo).
	skipTo atomic.Uint64
	// drain runs while the node is crashed, consuming its share of
	// payload-box handles so blocks never leak; nil when live.
	drain *system.Drainer
}

// block is the consensus payload (passed by handle through the box). It
// is shared read-only by every node's pipeline; per-node processing state
// lives in nodeBlock.
type block struct {
	proposer cluster.NodeID
	txs      []*txn.Tx
	size     int
}

// nodeBlock is one node's in-flight view of a committed block moving
// through its pipeline.
type nodeBlock struct {
	blk *block
	// authErrs holds per-transaction client-authentication failures
	// (pipeline Validate stage, stateless and worker-pooled).
	authErrs []error
	results  []system.Result
	// commitErr surfaces a failed state or ledger commit to the block's
	// waiting clients instead of panicking the node (fabric's pattern).
	commitErr error
}

// New assembles and starts a Quorum network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Consensus == IBFT && cfg.Nodes < 4 {
		return nil, fmt.Errorf("quorum: IBFT needs ≥ 4 nodes, got %d", cfg.Nodes)
	}
	if cfg.CheckpointInterval > 0 && cfg.DataDir == "" {
		return nil, fmt.Errorf("quorum: CheckpointInterval requires DataDir")
	}
	nw := &Network{
		cfg:     cfg,
		net:     cluster.NewNetwork(cfg.Link),
		box:     system.NewPayloadBox(),
		waiters: system.NewWaiters(),
	}
	peers := make([]cluster.NodeID, cfg.Nodes)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	// A failed node setup must tear down the nodes (and their consensus
	// instances) already started, not leak them.
	fail := func(err error) (*Network, error) {
		nw.Close()
		return nil, err
	}
	for _, id := range peers {
		eng, err := openEngine(cfg.DataDir, id)
		if err != nil {
			return fail(fmt.Errorf("quorum node %d: open state engine: %w", id, err))
		}
		if cfg.EngineHook != nil {
			eng = cfg.EngineHook(eng)
		}
		n := &node{
			id:     id,
			nw:     nw,
			reg:    contract.NewRegistry(cfg.Contracts...),
			ledger: ledger.New(),
			st:     state.New(eng, 0),
			stopCh: make(chan struct{}),
		}
		n.signer, err = cryptoutil.NewSigner(fmt.Sprintf("quorum-node-%d", id))
		if err != nil {
			n.st.Close() // not yet in nw.nodes; Close won't reach it
			return fail(fmt.Errorf("quorum node %d: signer: %w", id, err))
		}
		n.auth, err = authstate.New(authstate.Config{
			Signer:       n.signer,
			PublishEvery: cfg.RootPublishEvery,
		})
		if err != nil {
			n.st.Close()
			return fail(fmt.Errorf("quorum node %d: root maintainer: %w", id, err))
		}
		n.proofs = authstate.NewProofServer(n.auth, cfg.ProofCacheSize)
		if cfg.CheckpointInterval > 0 {
			n.ckpt, err = recovery.NewCheckpointer(n.st, recovery.Options{
				Dir:       ckptDir(cfg.DataDir, id),
				Interval:  cfg.CheckpointInterval,
				Mode:      cfg.CheckpointMode,
				FullEvery: cfg.CheckpointFullEvery,
			})
			if err != nil {
				n.auth.Close()
				n.st.Close()
				return fail(fmt.Errorf("quorum node %d: checkpointer: %w", id, err))
			}
		}
		n.pipe = pipeline.New(pipeline.Config{
			Workers: cfg.ExecutionWorkers,
			Depth:   cfg.PipelineDepth,
		}, pipeline.Stages[consensus.Entry, *nodeBlock]{
			Decode:   n.decodeBlock,
			Validate: n.validateBlock,
			Apply:    n.applyBlock,
			Seal:     n.sealBlock,
		})
		ep := nw.net.Register(id, 8192)
		n.ep = ep
		switch cfg.Consensus {
		case Raft:
			n.cons = raft.New(raft.Config{ID: id, Peers: peers, Endpoint: ep})
		case IBFT:
			n.cons = ibft.New(ibft.Config{ID: id, Peers: peers, Endpoint: ep})
		}
		nw.nodes = append(nw.nodes, n)
	}
	nw.blockCap.Store(int64(cfg.BlockSize))
	for _, n := range nw.nodes {
		n.wg.Add(2)
		go n.proposeLoop()
		go n.commitLoop()
	}
	if cfg.Ingress != nil {
		ing, err := ingress.New(*cfg.Ingress, nw.ingestBatch)
		if err != nil {
			nw.Close()
			return nil, fmt.Errorf("quorum: ingress: %w", err)
		}
		nw.ing = ing
	}
	return nw, nil
}

// Name implements system.System.
func (nw *Network) Name() string {
	if nw.cfg.Consensus == IBFT {
		return "quorum-ibft"
	}
	return "quorum-raft"
}

// RegisterClient makes a client identity known to all nodes; transactions
// from unknown clients are rejected at execution.
func (nw *Network) RegisterClient(name string, pub cryptoutil.PublicKey) {
	nw.clients.Store(name, pub)
}

// Execute implements system.System as the thin Submit+Wait wrapper.
func (nw *Network) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(nw, t)
}

// Submit implements system.System. Read-only invocations execute locally
// against one node and never enter the mempool; updates go through the
// ingress front door when one is configured, and otherwise run the direct
// pool-and-wait path on their own goroutine.
func (nw *Network) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	readOnly := t.Invocation.Method == "get" || t.Invocation.Method == "query"
	if nw.ing == nil || readOnly {
		return system.GoSubmit(func() system.Result { return nw.execute(t) }), nil
	}
	return nw.ing.Submit(ctx, t)
}

// pickLive returns a live node, round robin, or nil when none remain.
func (nw *Network) pickLive() *node {
	nw.rrMu.Lock()
	defer nw.rrMu.Unlock()
	for range nw.nodes {
		cand := nw.nodes[nw.rr%uint64(len(nw.nodes))]
		nw.rr++
		if !cand.crashed.Load() {
			return cand
		}
	}
	return nil
}

// leaderOr returns the current live consensus leader, falling back to
// fallback while no node leads (the proposeLoop re-routes strays).
func (nw *Network) leaderOr(fallback *node) *node {
	for _, cand := range nw.nodes {
		if cand.cons.IsLeader() && !cand.crashed.Load() {
			return cand
		}
	}
	return fallback
}

// execute is the direct blocking path: it submits the transaction to a
// node (round robin) and blocks until the block containing it commits.
func (nw *Network) execute(t *txn.Tx) system.Result {
	n := nw.pickLive()
	if n == nil {
		return system.Result{Err: errors.New("quorum: no live nodes")}
	}

	// Read-only transactions execute locally, without consensus (paper
	// §2.1) — but still pay client authentication, unlike a database.
	if t.Invocation.Method == "get" || t.Invocation.Method == "query" {
		return n.executeReadOnly(t)
	}

	done := nw.waiters.Register(string(t.ID[:]))
	start := time.Now()
	// The transaction pool is shared cluster-wide in spirit: real Quorum
	// gossips pending transactions so the proposer sees them. Enqueue on
	// the current leader when known; the proposeLoop also re-routes any
	// strays after leadership changes.
	target := nw.leaderOr(n)
	target.pendingMu.Lock()
	target.pending = append(target.pending, t)
	target.pendingMu.Unlock()
	select {
	case r := <-done:
		t.Trace.Observe(metrics.PhaseCommit, time.Since(start))
		return r
	case <-time.After(60 * time.Second):
		nw.waiters.Cancel(string(t.ID[:]))
		return system.Result{Err: errors.New("quorum: commit timeout")}
	}
}

// ingestBatch is the ingress builder's sink: it hands one built batch to
// the leader's transaction pool under a bound, so a stalled proposer
// pushes back on the builder instead of accumulating unbounded pending
// work. It owns every handed transaction — each resolves either here
// (no live node, handoff timeout) or through the seal path's waiter.
func (nw *Network) ingestBatch(txs []*txn.Tx) error {
	n := nw.pickLive()
	if n == nil {
		err := errors.New("quorum: no live nodes")
		for _, t := range txs {
			nw.ing.Resolve(t.ID, system.Result{Err: err})
		}
		return err
	}
	for _, t := range txs {
		nw.waiters.RegisterFunc(string(t.ID[:]), nw.ing.Resolver(t.ID))
	}
	// Adaptive block shape: let the proposer cut where arrival pressure
	// put this batch (never below the configured size, so the direct
	// path's behavior is a floor).
	capTxs := int64(len(txs))
	if capTxs < int64(nw.cfg.BlockSize) {
		capTxs = int64(nw.cfg.BlockSize)
	}
	nw.blockCap.Store(capTxs)
	// Bounded handoff: wait briefly for pool space; a pool that stays
	// full is consensus pushing back, and the overload must shed at
	// admission rather than queue here.
	bound := 4 * int(nw.blockCap.Load())
	deadline := time.Now().Add(time.Second)
	for {
		target := nw.leaderOr(n)
		target.pendingMu.Lock()
		if len(target.pending)+len(txs) <= bound {
			target.pending = append(target.pending, txs...)
			target.pendingMu.Unlock()
			return nil
		}
		target.pendingMu.Unlock()
		if !time.Now().Before(deadline) {
			err := fmt.Errorf("%w: proposer pool full (%d pending)", ingress.ErrOverloaded, bound)
			for _, t := range txs {
				nw.waiters.Cancel(string(t.ID[:]))
				nw.ing.Resolve(t.ID, system.Result{Err: err})
			}
			return err
		}
		//lint:allow sleepyloop bounded 1s handoff poll; proposer pool has no vacancy channel
		time.Sleep(time.Millisecond)
	}
}

// IngressStats returns the front door's counters; ok is false when the
// network runs without an ingress.
func (nw *Network) IngressStats() (ingress.Stats, bool) {
	if nw.ing == nil {
		return ingress.Stats{}, false
	}
	return nw.ing.Stats(), true
}

// SetFaults installs (or, with nil, removes) a message-fault hook on the
// network's transport — the chaos layer's drop/delay/reorder seam.
func (nw *Network) SetFaults(hook cluster.FaultHook) { nw.net.SetFaults(hook) }

// ConsensusDropped sums the nodes' transport drop counters — the
// consensus-side overload signal, as opposed to admission sheds.
func (nw *Network) ConsensusDropped() uint64 {
	var total uint64
	for _, n := range nw.nodes {
		total += n.ep.Dropped()
	}
	return total
}

// executeReadOnly serves a query from local committed state.
func (n *node) executeReadOnly(t *txn.Tx) system.Result {
	var authErr error
	t.Trace.Time(metrics.PhaseAuth, func() {
		authErr = n.verifyClient(t)
	})
	if authErr != nil {
		return system.Result{Err: authErr}
	}
	var rw txn.RWSet
	var err error
	var value []byte
	t.Trace.Time(metrics.PhaseSimulate, func() {
		snap := n.st.Snapshot()
		defer snap.Release()
		rw, err = n.reg.Execute(snap, t.Invocation)
		if inv := t.Invocation; err == nil && inv.Contract == "kv" && inv.Method == "get" && len(inv.Args) == 1 {
			if v, _, gerr := snap.Get(string(inv.Args[0])); gerr == nil {
				value = v
			}
		}
	})
	if err != nil {
		return system.Result{Reason: occ.OK, Err: err}
	}
	_ = rw
	return system.Result{Committed: true, Value: value}
}

func (n *node) verifyClient(t *txn.Tx) error {
	pubAny, ok := n.nw.clients.Load(t.Client)
	if !ok {
		return fmt.Errorf("quorum: unknown client %s", t.Client)
	}
	return t.VerifyClient(pubAny.(cryptoutil.PublicKey))
}

// proposeLoop batches pending transactions into blocks when this node
// leads consensus. The pre-execution of every transaction at the ledger
// tip happens here — serially, as in the real system.
func (n *node) proposeLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.nw.cfg.BlockInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		if !n.cons.IsLeader() {
			// Re-route stranded transactions to the current leader (the
			// txpool gossip a real node performs).
			n.pendingMu.Lock()
			stranded := n.pending
			n.pending = nil
			n.pendingMu.Unlock()
			if len(stranded) > 0 {
				for _, cand := range n.nw.nodes {
					if cand.cons.IsLeader() && !cand.crashed.Load() {
						cand.pendingMu.Lock()
						cand.pending = append(cand.pending, stranded...)
						cand.pendingMu.Unlock()
						stranded = nil
						break
					}
				}
				if stranded != nil {
					// No leader right now; keep them local.
					n.pendingMu.Lock()
					n.pending = append(stranded, n.pending...)
					n.pendingMu.Unlock()
				}
			}
			continue
		}
		cut := int(n.nw.blockCap.Load())
		n.pendingMu.Lock()
		batch := n.pending
		if len(batch) > cut {
			n.pending = batch[cut:]
			batch = batch[:cut]
		} else {
			n.pending = nil
		}
		n.pendingMu.Unlock()
		if len(batch) == 0 {
			continue
		}
		// Pre-execute serially at the tip (order-execute: the proposer
		// validates transactions before batching them).
		size := 0
		for _, t := range batch {
			start := time.Now()
			snap := n.st.Snapshot()
			_, _ = n.reg.Execute(snap, t.Invocation)
			snap.Release()
			t.Trace.Observe(metrics.PhaseProposal, time.Since(start))
			size += t.Size()
		}
		// The block is taken exactly once per node — live nodes Take in
		// decode, crashed nodes Take in their drain — so the count stays
		// constant across crashes and no entry leaks.
		id := n.nw.box.Put(&block{proposer: n.id, txs: batch, size: size}, len(n.nw.nodes))
		if err := n.cons.Propose(system.EncodeHandle(id)); err != nil {
			// Leadership moved between check and propose; requeue.
			n.pendingMu.Lock()
			n.pending = append(batch, n.pending...)
			n.pendingMu.Unlock()
		}
	}
}

// commitLoop drives the node's block pipeline over the consensus commit
// stream until shutdown.
func (n *node) commitLoop() {
	defer n.wg.Done()
	n.pipe.Run(n.cons.Committed(), n.stopCh)
}

// decodeBlock resolves a committed entry's payload handle (pipeline
// Decode stage). Ledger height must track the consensus index exactly —
// block N is always entry N — or the recovery handoff (RecoverNode)
// could not align a ledger replay with the committed stream; a handle
// that fails to resolve therefore still passes through as an empty
// block, while entries at or below skipTo (covered by a just-finished
// recovery replay) consume their box copy and are dropped, because the
// replay already appended their ledger blocks.
func (n *node) decodeBlock(e consensus.Entry) (*nodeBlock, bool) {
	n.lastDelivered.Store(e.Index)
	var blk *block
	if id, ok := system.HandleID(e.Data); ok {
		if v, ok := n.nw.box.Take(id); ok {
			blk = v.(*block)
		}
	}
	if e.Index <= n.skipTo.Load() {
		return nil, false
	}
	if blk == nil {
		blk = &block{}
	}
	return &nodeBlock{blk: blk}, true
}

// validateBlock authenticates the block's clients across the worker pool
// (pipeline Validate stage) — the stateless check that can overlap the
// previous block's commit. In batch mode each worker chunk goes through
// one VerifyBatch pass instead of per-tx curve checks; verdicts are
// identical either way.
func (n *node) validateBlock(nb *nodeBlock) {
	nb.authErrs = make([]error, len(nb.blk.txs))
	if n.nw.cfg.BatchVerify {
		keys := func(client string) (cryptoutil.PublicKey, bool) {
			pubAny, ok := n.nw.clients.Load(client)
			if !ok {
				return cryptoutil.PublicKey{}, false
			}
			return pubAny.(cryptoutil.PublicKey), true
		}
		pipeline.ParallelChunks(n.pipe.Workers(), len(nb.blk.txs), func(lo, hi int) {
			copy(nb.authErrs[lo:hi], txn.VerifyClientBatch(nb.blk.txs[lo:hi], keys))
		})
		return
	}
	pipeline.Parallel(n.pipe.Workers(), len(nb.blk.txs), func(i int) {
		nb.authErrs[i] = n.verifyClient(nb.blk.txs[i])
	})
}

// applyBlock re-executes the block and commits state (pipeline Apply
// stage, strict block order). Re-execution is speculative: every
// transaction replays in parallel against the block's base state, and a
// deterministic serial fix-up re-runs only those whose reads overlap an
// earlier transaction's writes — so write-disjoint transactions replay
// concurrently while every replica still reaches the state the serial
// "double execution" would have produced.
func (n *node) applyBlock(nb *nodeBlock) {
	blk := nb.blk
	blockNum := n.ledger.Height() + 1
	nb.results = make([]system.Result, len(blk.txs))

	// Per-transaction execution cost for the proposer's trace; a
	// conflicted transaction's serial re-run overwrites its speculative
	// timing, so the recorded cost is the authoritative execution's.
	execDur := make([]time.Duration, len(blk.txs))
	rws, errs := pipeline.ExecuteBlock(len(blk.txs), n.pipe.Workers(), blockNum, n.st,
		func(i int, view contract.StateReader) (txn.RWSet, error) {
			start := time.Now()
			defer func() { execDur[i] = time.Since(start) }()
			if err := nb.authErrs[i]; err != nil {
				return txn.RWSet{}, err
			}
			return n.reg.Execute(view, blk.txs[i].Invocation)
		})

	// Stage writes in block order (later writers win) and collect the
	// block's delta for the root maintainer. The MPT no longer sits on
	// this path — the per-block hashing of Fig 11 moved to the
	// maintainer's worker (internal/authstate).
	stage := n.st.NewBlock()
	var deltas []state.VersionedWrite
	for i, t := range blk.txs {
		if err := errs[i]; err != nil {
			if nb.authErrs[i] != nil {
				nb.results[i] = system.Result{Err: err}
			} else {
				nb.results[i] = system.Result{Reason: occ.OK, Err: err}
			}
			continue
		}
		ver := txn.Version{BlockNum: blockNum, TxNum: uint32(i)}
		for _, w := range rws[i].Writes {
			stage.Stage(w, ver)
			deltas = append(deltas, state.VersionedWrite{Write: w, Version: ver})
		}
		nb.results[i] = system.Result{Committed: true}
		if n.id == blk.proposer {
			t.Trace.Observe(metrics.PhaseExecute, execDur[i])
		}
	}
	// A failed commit no longer panics the node: the error travels to
	// Seal, which reports it to every client waiting on the block.
	if err := stage.Commit(); err != nil {
		nb.commitErr = fmt.Errorf("quorum node %d: block commit: %w", n.id, err)
		return
	}
	// Hand the committed delta to the root maintainer. Submit only blocks
	// when the maintainer trails by a full queue — the backpressure that
	// bounds root staleness. ErrClosed means the node is shutting down;
	// the delta dies with it, as a crash would lose it.
	if err := n.auth.Submit(blockNum, deltas); err != nil && err != authstate.ErrClosed {
		nb.commitErr = fmt.Errorf("quorum node %d: root maintainer: %w", n.id, err)
	}
}

// sealBlock appends the ledger block and resolves the waiting clients
// (pipeline Seal stage, strict block order).
func (n *node) sealBlock(nb *nodeBlock) {
	blk := nb.blk
	// Blocks persist their transactions whole (marshalled, as real Quorum
	// blocks do), which is what makes the ledger a sufficient replay
	// source for crash recovery.
	payloads := make([][]byte, len(blk.txs))
	for i, t := range blk.txs {
		payloads[i] = t.Marshal()
	}
	// The header carries the latest *published* state commitment — the
	// seal path no longer waits for (or computes) this block's root, so
	// the commitment may trail Number by a bounded number of blocks
	// (authstate's queue depth plus the publish interval).
	var stateRoot cryptoutil.Hash
	var stateRootHeight uint64
	if up, ok := n.auth.Published(); ok {
		stateRoot = up.Root.Root
		stateRootHeight = up.Root.Height
	}
	if nb.commitErr == nil {
		var parent cryptoutil.Hash
		if head := n.ledger.Head(); head != nil {
			parent = head.Hash()
		}
		lb := &ledger.Block{
			Header: ledger.Header{
				Number:          n.ledger.Height() + 1,
				ParentHash:      parent,
				TxRoot:          ledger.ComputeTxRoot(payloads),
				StateRoot:       stateRoot,
				StateRootHeight: stateRootHeight,
			},
			Txs: payloads,
		}
		if err := n.ledger.Append(lb); err != nil {
			nb.commitErr = fmt.Errorf("quorum node %d: ledger append: %w", n.id, err)
		}
	}

	// The proposer resolves the waiting clients once its own commit is
	// durable (clients connect round-robin but wait on the shared map).
	// A commit that failed reaches every client as an error rather than
	// a silent exit.
	for i, t := range blk.txs {
		r := nb.results[i]
		if nb.commitErr != nil {
			r = system.Result{Reason: r.Reason, Err: nb.commitErr}
		}
		n.nw.waiters.Resolve(string(t.ID[:]), r)
	}

	// Checkpoint at this block's boundary, still on the committer (see
	// fabric's sealBlock for the contract).
	if n.ckpt != nil && nb.commitErr == nil {
		//lint:allow errshadow failure retained in LastErr for the recovery stats
		_, _ = n.ckpt.MaybeCheckpoint(n.ledger.Height())
	}
}

// CrashNode kills node i's execution layer: propose and commit loops
// stop and its in-memory state — values, versions, trie, ledger — is
// lost. Its consensus replica keeps running behind a drain so the
// cluster never wedges on an unread commit stream (crash the leader and
// the cluster halts until it re-elects, exactly as a real deployment
// would; tests crash followers). Submission and query routing skip the
// node from now on.
func (nw *Network) CrashNode(i int) {
	n := nw.nodes[i]
	if n.crashed.Swap(true) {
		return
	}
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.wg.Wait()
	// The consensus replica keeps running behind a take-drain: every
	// entry's box copy is consumed (constant Take counts, no leaks) and
	// the newest index is recorded — the pivot the rejoin handoff in
	// RecoverNode resumes from.
	n.drain = system.NewDrainer()
	go n.drainWhileDown(n.cons.Committed(), n.drain)
	if n.ckpt != nil {
		n.ckpt.Close() // queued delta jobs die with the process, as a real crash would lose them
	}
	n.auth.Close() // queued root deltas die with the process too
	n.st.Close()
	n.ledger = nil
	n.auth = nil
	n.proofs = nil
}

// drainWhileDown consumes the crashed node's committed stream: every
// handle is taken (freeing this node's box copy) and the newest index is
// recorded in lastDelivered.
func (n *node) drainWhileDown(src <-chan consensus.Entry, d *system.Drainer) {
	defer d.Finish()
	for {
		select {
		case <-d.Stop():
			return
		case e, ok := <-src:
			if !ok {
				return
			}
			if id, ok := system.HandleID(e.Data); ok {
				n.nw.box.Take(id)
			}
			n.lastDelivered.Store(e.Index)
		}
	}
}

// RecoverNode rebuilds crashed node i from its newest on-disk checkpoint
// with height ≤ maxCkptHeight (0 = newest) plus a replay of the healthy
// node from's ledger through the node's own validate/apply pipeline
// stages — including the speculative parallel re-execution and the MPT
// reconstruction of live double execution — and then REJOINS live block
// consumption: the replay runs to at least the last index the node's
// crash-time drain consumed, the restarted decode stage take-and-drops
// entries the replay already covered (skipTo), and everything above
// flows through the ordinary pipeline. The network may keep committing
// throughout — no quiesce is required. May be called after each crash;
// each call rebuilds from scratch.
func (nw *Network) RecoverNode(i, from int, maxCkptHeight uint64) (recovery.Stats, error) {
	n, src := nw.nodes[i], nw.nodes[from]
	if !n.crashed.Load() {
		return recovery.Stats{}, fmt.Errorf("quorum: node %d is not crashed", i)
	}
	if src.crashed.Load() {
		return recovery.Stats{}, fmt.Errorf("quorum: source node %d is crashed", from)
	}
	// Stop the crash-time drain and pin the handoff pivot: every entry
	// ≤ D has had this node's box copy taken already.
	if n.drain != nil {
		n.drain.Halt()
		n.drain = nil
	}
	D := n.lastDelivered.Load()
	cfg := recovery.RebuildConfig{
		Old:     n.st,
		OldCkpt: n.ckpt,
		Open: func() (storage.Engine, error) {
			eng, err := openEngine(nw.cfg.DataDir, n.id)
			if err != nil || nw.cfg.EngineHook == nil {
				return eng, err
			}
			return nw.cfg.EngineHook(eng), nil
		},
		Interval:      nw.cfg.CheckpointInterval,
		Mode:          nw.cfg.CheckpointMode,
		FullEvery:     nw.cfg.CheckpointFullEvery,
		MaxCkptHeight: maxCkptHeight,
	}
	if nw.cfg.DataDir != "" {
		cfg.StateDir = filepath.Join(nw.cfg.DataDir, fmt.Sprintf("node%d", n.id), "state")
	}
	if n.ckpt != nil {
		cfg.CkptDir = n.ckpt.Dir()
	}
	st, ckpt, stats, err := recovery.RebuildStore(cfg)
	if err != nil {
		return stats, err
	}
	n.ckpt = ckpt
	ckptHeight := stats.CheckpointHeight

	// Seed the state commitment through the maintainer's delta path: the
	// restored store dumps as one synthetic block-ckptHeight delta, and
	// replay then feeds per-block deltas exactly as live commits do. The
	// trie root is content-determined, so this lands on the same root the
	// never-crashed node reached incrementally from genesis — without the
	// O(n) inline reseed the committer used to perform.
	if n.auth != nil {
		n.auth.Close()
	}
	auth, err := authstate.New(authstate.Config{
		Signer:       n.signer,
		PublishEvery: nw.cfg.RootPublishEvery,
	})
	if err != nil {
		st.Close()
		return stats, fmt.Errorf("quorum node %d: root maintainer: %w", n.id, err)
	}
	proofs := authstate.NewProofServer(auth, nw.cfg.ProofCacheSize)
	if ckptHeight > 0 {
		var seed []state.VersionedWrite
		st.Dump(func(key string, value []byte, ver txn.Version) bool {
			seed = append(seed, state.VersionedWrite{
				Write:   txn.Write{Key: key, Value: bytes.Clone(value)},
				Version: ver,
			})
			return true
		})
		if err := auth.Submit(ckptHeight, seed); err != nil {
			auth.Close()
			st.Close()
			return stats, fmt.Errorf("quorum node %d: seed root maintainer: %w", n.id, err)
		}
	}

	led := ledger.New()
	for bn := uint64(1); bn <= ckptHeight; bn++ {
		blk, ok := src.ledger.Block(bn)
		if !ok {
			st.Close()
			return stats, fmt.Errorf("quorum: source ledger missing block %d", bn)
		}
		if err := led.Append(blk); err != nil {
			st.Close()
			return stats, fmt.Errorf("quorum: copy block %d: %w", bn, err)
		}
	}
	n.st, n.ledger = st, led
	n.auth, n.proofs = auth, proofs

	// Replay the source ledger through the live validate/apply stages
	// until this node has covered everything its drain consumed (≥ D).
	// The source keeps committing while we replay, so loop: each pass
	// replays the tail the source has by now, and if the source has not
	// yet applied entry D itself, wait for it.
	replayStart := time.Now()
	replayOne := func(bn uint64, payloads [][]byte) error {
		txs, err := recovery.DecodeTxs(payloads)
		if err != nil {
			return err
		}
		nb := &nodeBlock{blk: &block{proposer: cluster.NodeID(-1), txs: txs}}
		n.validateBlock(nb) // client auth, worker-pooled
		n.applyBlock(nb)    // speculative re-execution + MPT, as live
		blk, _ := src.ledger.Block(bn)
		return n.ledger.Append(blk)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cnt, rerr := recovery.Replay(recovery.LedgerSource{L: src.ledger}, n.ledger.Height(), replayOne)
		stats.ReplayedBlocks += cnt
		if rerr != nil {
			stats.ReplayDuration = time.Since(replayStart)
			return stats, rerr
		}
		if cnt == 0 {
			if n.ledger.Height() >= D {
				break
			}
			if time.Now().After(deadline) {
				stats.ReplayDuration = time.Since(replayStart)
				return stats, fmt.Errorf("quorum: source node %d stuck below drained index %d", from, D)
			}
			//lint:allow sleepyloop waiting for the live replay source to apply the drained tail
			time.Sleep(time.Millisecond)
		}
	}
	stats.ReplayDuration = time.Since(replayStart)
	T1 := n.ledger.Height()
	stats.TipHeight = T1

	// Rejoin: entries ≤ T1 still buffered in the committed stream are
	// covered by the replay — the restarted decode take-and-drops them —
	// and everything above applies live. Indexes align because block N
	// is always entry N (empty-block pass-through in decode).
	n.skipTo.Store(T1)
	n.lastDelivered.Store(T1)
	n.stopCh = make(chan struct{})
	n.stopOnce = sync.Once{}
	n.crashed.Store(false)
	n.wg.Add(2)
	go n.proposeLoop()
	go n.commitLoop()
	return stats, nil
}

// Leader returns the index of the current consensus leader, or -1 while
// no node leads. Crash tests use it to kill a follower: a crashed
// leader's execution layer halts proposals (as in a real deployment)
// until consensus re-elects.
func (nw *Network) Leader() int {
	for i, n := range nw.nodes {
		if n.cons.IsLeader() {
			return i
		}
	}
	return -1
}

// Checkpointer exposes node i's checkpointer (nil when disabled) for
// tests and the recovery experiment.
func (nw *Network) Checkpointer(i int) *recovery.Checkpointer { return nw.nodes[i].ckpt }

// State exposes node i's striped state store (tests and inspection).
func (nw *Network) State(i int) *state.Store { return nw.nodes[i].st }

// Ledger exposes a node's ledger for verification in tests and examples.
func (nw *Network) Ledger(i int) *ledger.Ledger { return nw.nodes[i].ledger }

// Auth exposes node i's root maintainer (nil on a crashed node) for
// tests and the authreads experiment.
func (nw *Network) Auth(i int) *authstate.RootMaintainer { return nw.nodes[i].auth }

// Proofs exposes node i's proof server (nil on a crashed node) — the
// light-client read endpoint.
func (nw *Network) Proofs(i int) *authstate.ProofServer { return nw.nodes[i].proofs }

// StateRoot returns node i's state commitment at its current ledger tip,
// waiting for the asynchronous maintainer to catch up to it (the
// synchronous answer tests and cross-replica comparisons expect).
func (nw *Network) StateRoot(i int) cryptoutil.Hash {
	n := nw.nodes[i]
	if n.auth == nil {
		return cryptoutil.Hash{}
	}
	tip := uint64(0)
	if n.ledger != nil {
		tip = n.ledger.Height()
	}
	if tip == 0 {
		return cryptoutil.Hash{}
	}
	if sr, err := n.auth.WaitFor(tip, 30*time.Second); err == nil {
		return sr.Root
	}
	// PublishEvery > 1 never publishes non-multiple heights; fall back to
	// the freshest published root.
	if up, ok := n.auth.Published(); ok {
		return up.Root.Root
	}
	return cryptoutil.Hash{}
}

// StateBytes returns node 0's state storage footprint (engine bytes plus
// MPT node store), for the storage experiments. It waits for the root
// maintainer to reach the ledger tip so the trie reflects every sealed
// block.
func (nw *Network) StateBytes() int64 {
	n := nw.nodes[0]
	size := n.st.ApproxSize()
	if n.auth != nil && n.ledger != nil {
		if tip := n.ledger.Height(); tip > 0 {
			_, _ = n.auth.WaitFor(tip, 30*time.Second)
		}
		if up, ok := n.auth.Published(); ok {
			size += up.Snap.StorageBytes()
		}
	}
	return size
}

// Close implements system.System.
func (nw *Network) Close() {
	nw.closeOne.Do(func() {
		if nw.ing != nil {
			// Stop admission first: the builder drains or resolves what it
			// holds while the propose/commit paths below are still alive.
			nw.ing.Close()
		}
		for _, n := range nw.nodes {
			n.stopOnce.Do(func() { close(n.stopCh) })
		}
		for _, n := range nw.nodes {
			n.cons.Stop()
			n.wg.Wait()
			if n.drain != nil {
				n.drain.Halt()
				n.drain = nil
			}
			if n.ckpt != nil {
				n.ckpt.Close()
			}
			if n.auth != nil {
				n.auth.Close()
			}
			if n.st != nil {
				n.st.Close()
			}
		}
		nw.net.Close()
	})
}
