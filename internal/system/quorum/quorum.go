// Package quorum models Quorum v2.2, the paper's order-execute
// permissioned blockchain: a geth fork that replaces PoW with Raft or
// IBFT but keeps the EVM execution model and MPT-over-LSM state.
//
// Transaction lifecycle (paper Fig 3a):
//
//  1. Clients submit signed contract invocations to any node, which pools
//     them.
//  2. The consensus leader *pre-executes* pending transactions serially at
//     the ledger tip — block construction is sequential, which is why
//     Quorum cannot exploit concurrency — and batches them into a block.
//  3. The block goes through consensus (Raft or IBFT).
//  4. Every node re-executes the block's transactions serially ("double
//     execution"), applies writes to the LSM-backed state, reconstructs
//     the MPT commitment (the per-commit hashing the paper blames for the
//     record-size collapse in Fig 11), and appends the block.
package quorum

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dichotomy/internal/ads/mpt"
	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/ibft"
	"dichotomy/internal/consensus/raft"
	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/ledger"
	"dichotomy/internal/metrics"
	"dichotomy/internal/occ"
	"dichotomy/internal/state"
	"dichotomy/internal/storage/lsm"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

// ConsensusKind selects the replication protocol.
type ConsensusKind int

const (
	// Raft is Quorum's CFT mode.
	Raft ConsensusKind = iota
	// IBFT is Quorum's BFT mode.
	IBFT
)

// Config assembles a Quorum network.
type Config struct {
	// Nodes is the validator count.
	Nodes int
	// Consensus picks Raft (CFT) or IBFT (BFT).
	Consensus ConsensusKind
	// BlockSize caps transactions per block. Default 100.
	BlockSize int
	// BlockInterval cuts a non-full block after this delay. Default 5ms.
	BlockInterval time.Duration
	// Link models the network; nil means zero latency.
	Link cluster.LinkModel
	// Contracts deployed on all nodes. Default: KV and Smallbank.
	Contracts []contract.Contract
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 100
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = 5 * time.Millisecond
	}
	if c.Contracts == nil {
		c.Contracts = []contract.Contract{contract.KV{}, contract.Smallbank{}}
	}
	return c
}

// Network is a running Quorum deployment.
type Network struct {
	cfg     Config
	net     *cluster.Network
	nodes   []*node
	box     *system.PayloadBox
	waiters *system.Waiters
	clients sync.Map // client name → cryptoutil.PublicKey

	rr       uint64
	rrMu     sync.Mutex
	closeOne sync.Once
}

var _ system.System = (*Network)(nil)

// node is one Quorum validator. Committed state lives in the shared
// striped state layer; the MPT commitment is node-local and guarded by
// its own mutex (it is only touched by the serial commit loop and the
// state-root accessors).
type node struct {
	id        cluster.NodeID
	nw        *Network
	cons      consensus.Node
	reg       *contract.Registry
	ledger    *ledger.Ledger
	st        *state.Store
	trieMu    sync.Mutex
	trie      *mpt.Trie
	pendingMu sync.Mutex
	pending   []*txn.Tx
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// block is the consensus payload (passed by handle through the box).
type block struct {
	proposer cluster.NodeID
	txs      []*txn.Tx
	size     int
}

// New assembles and starts a Quorum network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Consensus == IBFT && cfg.Nodes < 4 {
		return nil, fmt.Errorf("quorum: IBFT needs ≥ 4 nodes, got %d", cfg.Nodes)
	}
	nw := &Network{
		cfg:     cfg,
		net:     cluster.NewNetwork(cfg.Link),
		box:     system.NewPayloadBox(),
		waiters: system.NewWaiters(),
	}
	peers := make([]cluster.NodeID, cfg.Nodes)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	for _, id := range peers {
		n := &node{
			id:     id,
			nw:     nw,
			reg:    contract.NewRegistry(cfg.Contracts...),
			ledger: ledger.New(),
			st:     state.New(lsm.MustOpenMemory(), 0),
			trie:   mpt.New(),
			stopCh: make(chan struct{}),
		}
		ep := nw.net.Register(id, 8192)
		switch cfg.Consensus {
		case Raft:
			n.cons = raft.New(raft.Config{ID: id, Peers: peers, Endpoint: ep})
		case IBFT:
			n.cons = ibft.New(ibft.Config{ID: id, Peers: peers, Endpoint: ep})
		}
		nw.nodes = append(nw.nodes, n)
	}
	for _, n := range nw.nodes {
		n.wg.Add(2)
		go n.proposeLoop()
		go n.commitLoop()
	}
	return nw, nil
}

// Name implements system.System.
func (nw *Network) Name() string {
	if nw.cfg.Consensus == IBFT {
		return "quorum-ibft"
	}
	return "quorum-raft"
}

// RegisterClient makes a client identity known to all nodes; transactions
// from unknown clients are rejected at execution.
func (nw *Network) RegisterClient(name string, pub cryptoutil.PublicKey) {
	nw.clients.Store(name, pub)
}

// Execute implements system.System: it submits the transaction to a node
// (round robin) and blocks until the block containing it commits.
func (nw *Network) Execute(t *txn.Tx) system.Result {
	nw.rrMu.Lock()
	n := nw.nodes[nw.rr%uint64(len(nw.nodes))]
	nw.rr++
	nw.rrMu.Unlock()

	// Read-only transactions execute locally, without consensus (paper
	// §2.1) — but still pay client authentication, unlike a database.
	if t.Invocation.Method == "get" || t.Invocation.Method == "query" {
		return n.executeReadOnly(t)
	}

	done := nw.waiters.Register(string(t.ID[:]))
	start := time.Now()
	// The transaction pool is shared cluster-wide in spirit: real Quorum
	// gossips pending transactions so the proposer sees them. Enqueue on
	// the current leader when known; the proposeLoop also re-routes any
	// strays after leadership changes.
	target := n
	for _, cand := range nw.nodes {
		if cand.cons.IsLeader() {
			target = cand
			break
		}
	}
	target.pendingMu.Lock()
	target.pending = append(target.pending, t)
	target.pendingMu.Unlock()
	select {
	case r := <-done:
		t.Trace.Observe(metrics.PhaseCommit, time.Since(start))
		return r
	case <-time.After(60 * time.Second):
		nw.waiters.Cancel(string(t.ID[:]))
		return system.Result{Err: errors.New("quorum: commit timeout")}
	}
}

// executeReadOnly serves a query from local committed state.
func (n *node) executeReadOnly(t *txn.Tx) system.Result {
	var authErr error
	t.Trace.Time(metrics.PhaseAuth, func() {
		authErr = n.verifyClient(t)
	})
	if authErr != nil {
		return system.Result{Err: authErr}
	}
	var rw txn.RWSet
	var err error
	var value []byte
	t.Trace.Time(metrics.PhaseSimulate, func() {
		snap := n.st.Snapshot()
		defer snap.Release()
		rw, err = n.reg.Execute(snap, t.Invocation)
		if inv := t.Invocation; err == nil && inv.Contract == "kv" && inv.Method == "get" && len(inv.Args) == 1 {
			if v, _, gerr := snap.Get(string(inv.Args[0])); gerr == nil {
				value = v
			}
		}
	})
	if err != nil {
		return system.Result{Reason: occ.OK, Err: err}
	}
	_ = rw
	return system.Result{Committed: true, Value: value}
}

func (n *node) verifyClient(t *txn.Tx) error {
	pubAny, ok := n.nw.clients.Load(t.Client)
	if !ok {
		return fmt.Errorf("quorum: unknown client %s", t.Client)
	}
	return t.VerifyClient(pubAny.(cryptoutil.PublicKey))
}

// proposeLoop batches pending transactions into blocks when this node
// leads consensus. The pre-execution of every transaction at the ledger
// tip happens here — serially, as in the real system.
func (n *node) proposeLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.nw.cfg.BlockInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		if !n.cons.IsLeader() {
			// Re-route stranded transactions to the current leader (the
			// txpool gossip a real node performs).
			n.pendingMu.Lock()
			stranded := n.pending
			n.pending = nil
			n.pendingMu.Unlock()
			if len(stranded) > 0 {
				for _, cand := range n.nw.nodes {
					if cand.cons.IsLeader() {
						cand.pendingMu.Lock()
						cand.pending = append(cand.pending, stranded...)
						cand.pendingMu.Unlock()
						stranded = nil
						break
					}
				}
				if stranded != nil {
					// No leader right now; keep them local.
					n.pendingMu.Lock()
					n.pending = append(stranded, n.pending...)
					n.pendingMu.Unlock()
				}
			}
			continue
		}
		n.pendingMu.Lock()
		batch := n.pending
		if len(batch) > n.nw.cfg.BlockSize {
			n.pending = batch[n.nw.cfg.BlockSize:]
			batch = batch[:n.nw.cfg.BlockSize]
		} else {
			n.pending = nil
		}
		n.pendingMu.Unlock()
		if len(batch) == 0 {
			continue
		}
		// Pre-execute serially at the tip (order-execute: the proposer
		// validates transactions before batching them).
		size := 0
		for _, t := range batch {
			start := time.Now()
			snap := n.st.Snapshot()
			_, _ = n.reg.Execute(snap, t.Invocation)
			snap.Release()
			t.Trace.Observe(metrics.PhaseProposal, time.Since(start))
			size += t.Size()
		}
		id := n.nw.box.Put(&block{proposer: n.id, txs: batch, size: size}, len(n.nw.nodes))
		if err := n.cons.Propose(system.Handle(id)); err != nil {
			// Leadership moved between check and propose; requeue.
			n.pendingMu.Lock()
			n.pending = append(batch, n.pending...)
			n.pendingMu.Unlock()
		}
	}
}

// commitLoop applies committed blocks: serial re-execution, state write,
// MPT reconstruction, ledger append.
func (n *node) commitLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case e, ok := <-n.cons.Committed():
			if !ok {
				return
			}
			n.applyEntry(e)
		}
	}
}

func (n *node) applyEntry(e consensus.Entry) {
	id, ok := system.HandleID(e.Data)
	if !ok {
		return
	}
	v, ok := n.nw.box.Take(id)
	if !ok {
		return
	}
	blk := v.(*block)

	blockNum := n.ledger.Height() + 1
	results := make([]system.Result, len(blk.txs))
	payloads := make([][]byte, len(blk.txs))
	// Serial re-execution — every node replays every transaction. Writes
	// are staged in a block overlay so later transactions read earlier
	// in-block writes, then flushed once, grouped by stripe, through the
	// engine's batch fast path.
	stage := n.st.NewBlock()
	n.trieMu.Lock()
	for i, t := range blk.txs {
		commitStart := time.Now()
		if err := n.verifyClient(t); err != nil {
			results[i] = system.Result{Err: err}
			payloads[i] = t.ID[:]
			continue
		}
		rw, err := n.reg.Execute(stage, t.Invocation)
		if err != nil {
			results[i] = system.Result{Reason: occ.OK, Err: err}
			payloads[i] = t.ID[:]
			continue
		}
		ver := txn.Version{BlockNum: blockNum, TxNum: uint32(i)}
		for _, w := range rw.Writes {
			stage.Stage(w, ver)
			if w.Value == nil {
				n.trie.Delete([]byte(w.Key))
			} else {
				n.trie.Put([]byte(w.Key), w.Value)
			}
		}
		results[i] = system.Result{Committed: true}
		payloads[i] = t.ID[:]
		if n.id == blk.proposer {
			t.Trace.Observe(metrics.PhaseExecute, time.Since(commitStart))
		}
	}
	if err := stage.Commit(); err != nil {
		panic(fmt.Sprintf("quorum node %d: block commit: %v", n.id, err))
	}
	// MPT reconstruction: the per-block state commitment.
	stateRoot := n.trie.RootHash()
	n.trieMu.Unlock()
	var parent cryptoutil.Hash
	if head := n.ledger.Head(); head != nil {
		parent = head.Hash()
	}
	lb := &ledger.Block{
		Header: ledger.Header{
			Number:     blockNum,
			ParentHash: parent,
			TxRoot:     ledger.ComputeTxRoot(payloads),
			StateRoot:  stateRoot,
		},
		Txs: payloads,
	}
	if err := n.ledger.Append(lb); err != nil {
		// A deterministic replay cannot diverge unless there is a bug;
		// surface it loudly in tests.
		panic(fmt.Sprintf("quorum node %d: ledger append: %v", n.id, err))
	}

	// The proposer resolves the waiting clients once its own commit is
	// durable (clients connect round-robin but wait on the shared map).
	for i, t := range blk.txs {
		n.nw.waiters.Resolve(string(t.ID[:]), results[i])
	}
}

// State exposes node i's striped state store (tests and inspection).
func (nw *Network) State(i int) *state.Store { return nw.nodes[i].st }

// Ledger exposes a node's ledger for verification in tests and examples.
func (nw *Network) Ledger(i int) *ledger.Ledger { return nw.nodes[i].ledger }

// StateRoot returns node i's current MPT commitment.
func (nw *Network) StateRoot(i int) cryptoutil.Hash {
	n := nw.nodes[i]
	n.trieMu.Lock()
	defer n.trieMu.Unlock()
	return n.trie.RootHash()
}

// StateBytes returns node 0's state storage footprint (engine bytes plus
// MPT node store), for the storage experiments.
func (nw *Network) StateBytes() int64 {
	n := nw.nodes[0]
	n.trieMu.Lock()
	defer n.trieMu.Unlock()
	return n.st.ApproxSize() + n.trie.StorageBytes()
}

// Close implements system.System.
func (nw *Network) Close() {
	nw.closeOne.Do(func() {
		for _, n := range nw.nodes {
			close(n.stopCh)
		}
		for _, n := range nw.nodes {
			n.cons.Stop()
			n.wg.Wait()
			n.st.Close()
		}
		nw.net.Close()
	})
}
