// Crash-equivalence under CONTINUOUS load: the open-loop workload keeps
// committing straight through both the crash AND the recovery — no
// quiesce, no pause-the-world — and once the load finishes and the
// replicas converge, the recovered replica must be byte-identical
// (values AND versions) to one that never crashed. On top of the
// quiesced recovery_equivalence tests this proves the live-rejoin
// handoff: replay catches the drained tail while the network commits,
// the restarted consumer take-and-drops what replay covered, and blocks
// committed AFTER recovery reach the recovered replica through the
// ordinary pipeline (each test commits a post-recovery marker and
// requires it everywhere). Run with -race this also exercises the
// crash/recover transitions racing in-flight commits.
package system_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/recovery"
	"dichotomy/internal/system"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/system/spanner"
	"dichotomy/internal/system/tidb"
)

// driveLoadThrough runs recWorkers×recIters conflicting Smallbank
// deposits against sys, crashing once a third of the way in and
// recovering once two thirds in — both while the other workers keep
// submitting. recov always runs strictly after crash completes, and
// both are guaranteed to have run by the time this returns.
func driveLoadThrough(t *testing.T, sys system.System, client *cryptoutil.Signer, rng *rand.Rand, crash, recov func()) int64 {
	t.Helper()
	for i := 0; i < recAccounts; i++ {
		r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
			recAccount(i), string(contract.EncodeInt64(0)), string(contract.EncodeInt64(0))))
		if !r.Committed {
			t.Fatalf("create %s: %+v", recAccount(i), r)
		}
	}
	total := recWorkers * recIters
	crashAt := int64(1 + rng.Intn(total/3))
	recoverAt := crashAt + int64(1+rng.Intn(total/3))
	t.Logf("crash after %d, recover after %d of %d transactions", crashAt, recoverAt, total)
	crashDone := make(chan struct{})
	var crashOnce, recoverOnce sync.Once
	doCrash := func() { crash(); close(crashDone) }
	doRecover := func() { <-crashDone; recov() }
	var done atomic.Int64
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < recWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < recIters; i++ {
				amount := int64(w*recIters + i + 1)
				r := sys.Execute(signTx(t, client, contract.SmallbankName, "deposit_checking",
					recAccount((w+i)%recAccounts), string(contract.EncodeInt64(amount))))
				if r.Committed {
					committed.Add(1)
				}
				switch done.Add(1) {
				case crashAt:
					crashOnce.Do(doCrash)
				case recoverAt:
					recoverOnce.Do(doRecover)
				}
			}
		}(w)
	}
	wg.Wait()
	// Workers may race past the trigger counts; make sure both ran.
	crashOnce.Do(doCrash)
	recoverOnce.Do(doRecover)
	return committed.Load()
}

// marker commits one more transaction AFTER recovery has completed —
// the block that proves the recovered replica serves post-recovery
// traffic, not just the replayed prefix.
func marker(t *testing.T, sys system.System, client *cryptoutil.Signer) {
	t.Helper()
	// Conflict aborts are ordinary client-visible OCC behavior — a block
	// still in flight from the load can invalidate the marker's reads —
	// so retry as a client would; distinct amounts keep the
	// content-hashed transaction IDs distinct.
	var r system.Result
	for attempt := 0; attempt < 50; attempt++ {
		r = sys.Execute(signTx(t, client, contract.SmallbankName, "deposit_checking",
			recAccount(0), string(contract.EncodeInt64(int64(424242+attempt)))))
		if r.Committed {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("post-recovery marker never committed: %+v", r)
}

func requireSameBytes(t *testing.T, name string, healthy, recovered map[string][]byte) {
	t.Helper()
	if len(healthy) == 0 {
		t.Fatalf("%s: healthy replica has no state; load never committed", name)
	}
	if len(healthy) != len(recovered) {
		t.Fatalf("%s: recovered %d keys, healthy %d", name, len(recovered), len(healthy))
	}
	for k, v := range healthy {
		if string(recovered[k]) != string(v) {
			t.Fatalf("%s: key %q diverged:\n recovered %x\n healthy   %x", name, k, recovered[k], v)
		}
	}
}

func TestChaosEquivalenceFabric(t *testing.T) {
	recModes(t, testChaosEquivalenceFabric)
}

func testChaosEquivalenceFabric(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("chaos-client")
	nw, err := fabric.New(fabric.Config{
		Peers:               4,
		EndorsementsNeeded:  3,
		BlockSize:           4,
		BlockTimeout:        2 * time.Millisecond,
		ValidationWorkers:   2,
		PipelineDepth:       2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  recInterval,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.RegisterClient(client.Name(), client.Public())

	const crashed = 2
	var stats recovery.Stats
	var recErr error
	committed := driveLoadThrough(t, nw, client, rng,
		func() { nw.CrashPeer(crashed) },
		func() { stats, recErr = nw.RecoverPeer(crashed, 0, 0) })
	if recErr != nil {
		t.Fatalf("recover: %v", recErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	t.Logf("recovery: checkpoint@%d, replayed %d blocks to %d in %v",
		stats.CheckpointHeight, stats.ReplayedBlocks, stats.TipHeight, stats.Total())
	marker(t, nw, client)
	tip := waitHeights(t,
		func() uint64 { return nw.Ledger(0).Height() },
		func() uint64 { return nw.Ledger(1).Height() },
		func() uint64 { return nw.Ledger(crashed).Height() },
		func() uint64 { return nw.Ledger(3).Height() },
	)
	if tip <= stats.TipHeight {
		t.Fatalf("no block after recovery: tip %d, recovered at %d", tip, stats.TipHeight)
	}
	requireIdentical(t, "fabric", dumpVersioned(nw.State(0)), dumpVersioned(nw.State(crashed)))
	if nw.Ledger(crashed).Head().Hash() != nw.Ledger(0).Head().Hash() {
		t.Fatal("recovered ledger head diverges from healthy replica")
	}
	if err := nw.Ledger(crashed).Verify(); err != nil {
		t.Fatalf("recovered ledger fails verification: %v", err)
	}
}

func TestChaosEquivalenceQuorum(t *testing.T) {
	recModes(t, testChaosEquivalenceQuorum)
}

func testChaosEquivalenceQuorum(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("chaos-client")
	nw, err := quorum.New(quorum.Config{
		Nodes:               4,
		Consensus:           quorum.Raft,
		BlockSize:           4,
		BlockInterval:       2 * time.Millisecond,
		ExecutionWorkers:    2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  recInterval,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.RegisterClient(client.Name(), client.Public())

	pickFollower := func() int {
		leader := nw.Leader()
		for _, cand := range []int{3, 2, 1} {
			if cand != leader {
				return cand
			}
		}
		return 3
	}
	var crashedIdx atomic.Int64
	var stats recovery.Stats
	var recErr error
	committed := driveLoadThrough(t, nw, client, rng,
		func() {
			idx := pickFollower()
			crashedIdx.Store(int64(idx))
			nw.CrashNode(idx)
		},
		func() {
			idx := int(crashedIdx.Load())
			healthy := 0
			if idx == 0 {
				healthy = 1
			}
			stats, recErr = nw.RecoverNode(idx, healthy, 0)
		})
	if recErr != nil {
		t.Fatalf("recover: %v", recErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	idx := int(crashedIdx.Load())
	healthy := 0
	if idx == 0 {
		healthy = 1
	}
	t.Logf("recovery: checkpoint@%d, replayed %d blocks to %d in %v",
		stats.CheckpointHeight, stats.ReplayedBlocks, stats.TipHeight, stats.Total())
	marker(t, nw, client)
	var heightFns []func() uint64
	for i := 0; i < 4; i++ {
		led := nw.Ledger(i)
		heightFns = append(heightFns, func() uint64 { return led.Height() })
	}
	tip := waitHeights(t, heightFns...)
	if tip <= stats.TipHeight {
		t.Fatalf("no block after recovery: tip %d, recovered at %d", tip, stats.TipHeight)
	}
	requireIdentical(t, "quorum", dumpVersioned(nw.State(healthy)), dumpVersioned(nw.State(idx)))
	if nw.StateRoot(idx) != nw.StateRoot(healthy) {
		t.Fatal("recovered state root diverges from healthy replica")
	}
	// Head hashes are NOT compared: a quorum header embeds the latest
	// published state-root snapshot at seal time, which is an async
	// per-node observation, so self-built post-rejoin blocks may legally
	// embed an older root than a peer's. The ordered transaction content
	// must still be identical block for block.
	for bn := uint64(1); bn <= tip; bn++ {
		hb, ok1 := nw.Ledger(healthy).Block(bn)
		rb, ok2 := nw.Ledger(idx).Block(bn)
		if !ok1 || !ok2 {
			t.Fatalf("block %d missing (healthy %v, recovered %v)", bn, ok1, ok2)
		}
		if hb.Header.TxRoot != rb.Header.TxRoot {
			t.Fatalf("block %d tx root diverged", bn)
		}
	}
}

func TestChaosEquivalenceVeritas(t *testing.T) {
	recModes(t, testChaosEquivalenceVeritas)
}

func testChaosEquivalenceVeritas(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("chaos-client")
	v, err := hybrid.NewVeritas(hybrid.VeritasConfig{
		Verifiers:           3,
		BatchSize:           4,
		BatchTimeout:        2 * time.Millisecond,
		ValidationWorkers:   2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  recInterval,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	const crashed = 1
	var recErr error
	committed := driveLoadThrough(t, v, client, rng,
		func() { v.CrashVerifier(crashed) },
		func() { _, recErr = v.RecoverVerifier(crashed, 0) })
	if recErr != nil {
		t.Fatalf("recover: %v", recErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	marker(t, v, client)
	waitHeights(t,
		func() uint64 {
			if h := v.Height(0); h >= v.LogBatches() {
				return h
			}
			return 0
		},
		func() uint64 { return v.Height(crashed) },
	)
	requireIdentical(t, "veritas", dumpVersioned(v.State(0)), dumpVersioned(v.State(crashed)))
}

func TestChaosEquivalenceBigchain(t *testing.T) {
	recModes(t, testChaosEquivalenceBigchain)
}

func testChaosEquivalenceBigchain(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("chaos-client")
	b, err := hybrid.NewBigchain(hybrid.BigchainConfig{
		Nodes:               4,
		DataDir:             t.TempDir(),
		CheckpointInterval:  3,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const crashed = 2
	var stats recovery.Stats
	var recErr error
	committed := driveLoadThrough(t, b, client, rng,
		func() { b.CrashValidator(crashed) },
		func() { stats, recErr = b.RecoverValidator(crashed, 0, 0) })
	if recErr != nil {
		t.Fatalf("recover: %v", recErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	t.Logf("recovery: checkpoint@%d, replayed %d txs to %d in %v",
		stats.CheckpointHeight, stats.ReplayedBlocks, stats.TipHeight, stats.Total())
	marker(t, b, client)
	tip := waitHeights(t,
		func() uint64 { return b.Height(0) },
		func() uint64 { return b.Height(1) },
		func() uint64 { return b.Height(crashed) },
		func() uint64 { return b.Height(3) },
	)
	if tip <= stats.TipHeight {
		t.Fatalf("no tx applied after recovery: tip %d, recovered at %d", tip, stats.TipHeight)
	}
	requireIdentical(t, "bigchain", dumpVersioned(b.State(0)), dumpVersioned(b.State(crashed)))
}

func TestChaosEquivalenceTiDB(t *testing.T) {
	recModes(t, testChaosEquivalenceTiDB)
}

func testChaosEquivalenceTiDB(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("chaos-client")
	c := tidb.New(tidb.Config{
		Servers:             2,
		StorageNodes:        3,
		Regions:             2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  4,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	defer c.Close()

	// The unit of failure is a region replica: crash one raft member of
	// EVERY region (the regions keep committing on the surviving 2/3
	// quorum), recover them mid-load, and require each rebuilt replica's
	// full MVCC content — version chains and locks — byte-identical to
	// a replica of the same region that never crashed.
	const crashedRep = 2
	var recErr error
	committed := driveLoadThrough(t, c, client, rng,
		func() {
			for r := 0; r < c.Regions(); r++ {
				c.CrashReplica(r, crashedRep)
			}
		},
		func() {
			for r := 0; r < c.Regions(); r++ {
				if _, err := c.RecoverReplica(r, crashedRep); err != nil && recErr == nil {
					recErr = err
				}
			}
		})
	if recErr != nil {
		t.Fatalf("recover: %v", recErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	marker(t, c, client)
	for r := 0; r < c.Regions(); r++ {
		var fns []func() uint64
		for i := 0; i < c.RegionReplicas(r); i++ {
			r, i := r, i
			fns = append(fns, func() uint64 { return c.ReplicaApplied(r, i) })
		}
		waitHeights(t, fns...)
		requireSameBytes(t, fmt.Sprintf("tidb region %d", r),
			c.DumpRegion(r, 0), c.DumpRegion(r, crashedRep))
	}
}

func TestChaosEquivalenceSpanner(t *testing.T) {
	recModes(t, testChaosEquivalenceSpanner)
}

func testChaosEquivalenceSpanner(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("chaos-client")
	c := spanner.New(spanner.Config{
		Shards:              2,
		NodesPerShard:       3,
		DataDir:             t.TempDir(),
		CheckpointInterval:  4,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	defer c.Close()

	const crashedRep = 2
	var recErr error
	committed := driveLoadThrough(t, c, client, rng,
		func() {
			for s := 0; s < c.Shards(); s++ {
				c.CrashReplica(s, crashedRep)
			}
		},
		func() {
			for s := 0; s < c.Shards(); s++ {
				if _, err := c.RecoverReplica(s, crashedRep); err != nil && recErr == nil {
					recErr = err
				}
			}
		})
	if recErr != nil {
		t.Fatalf("recover: %v", recErr)
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	marker(t, c, client)
	for s := 0; s < c.Shards(); s++ {
		var fns []func() uint64
		for i := 0; i < c.ShardReplicas(s); i++ {
			s, i := s, i
			fns = append(fns, func() uint64 { return c.ReplicaApplied(s, i) })
		}
		waitHeights(t, fns...)
		requireSameBytes(t, fmt.Sprintf("spanner shard %d", s),
			c.DumpShard(s, 0), c.DumpShard(s, crashedRep))
	}
}
