package spanner

import (
	"encoding/binary"

	"dichotomy/internal/txn"
)

// Shard-command wire codec. Commands ride inside the raft log entry
// rather than behind a payload-box handle: handle copies are in-memory
// and die with a crashed process, so they can neither survive a replica
// crash nor feed log-replay recovery. A self-contained log costs one
// copy per entry and lets the leader's re-replication rebuild any
// replica from scratch.
//
// Layout (big-endian):
//
//	phase u8 | reqID u64 | commit u8 | tlen u32 | txID |
//	nwrites u32 | nwrites × (klen u32 | key | hasValue u8 | [vlen u32 | value])

func encodeShardCmd(cmd *shardCmd) []byte {
	buf := make([]byte, 0, 18+len(cmd.txID))
	buf = append(buf, byte(cmd.phase))
	buf = binary.BigEndian.AppendUint64(buf, cmd.reqID)
	if cmd.commit {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cmd.txID)))
	buf = append(buf, cmd.txID...)
	return appendWrites(buf, cmd.writes)
}

func decodeShardCmd(buf []byte) (*shardCmd, bool) {
	off := 0
	cmd := &shardCmd{}
	p, ok := readU8(buf, &off)
	if !ok {
		return nil, false
	}
	cmd.phase = phase(p)
	if cmd.reqID, ok = readU64(buf, &off); !ok {
		return nil, false
	}
	commit, ok := readU8(buf, &off)
	if !ok {
		return nil, false
	}
	cmd.commit = commit == 1
	tx, ok := readBytes(buf, &off)
	if !ok {
		return nil, false
	}
	cmd.txID = string(tx)
	if cmd.writes, ok = readWrites(buf, &off); !ok {
		return nil, false
	}
	return cmd, off == len(buf)
}

// appendWrites/decodeWrites serialize a write set; the same encoding is
// the checkpoint record for prepared-but-undecided 2PC write sets, so a
// recovered replica can still apply a post-checkpoint phaseFinish.
func appendWrites(buf []byte, writes []txn.Write) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(writes)))
	for _, w := range writes {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(w.Key)))
		buf = append(buf, w.Key...)
		if w.Value == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(w.Value)))
		buf = append(buf, w.Value...)
	}
	return buf
}

func encodeWrites(writes []txn.Write) []byte {
	return appendWrites(nil, writes)
}

func decodeWrites(buf []byte) ([]txn.Write, bool) {
	off := 0
	w, ok := readWrites(buf, &off)
	if !ok || off != len(buf) {
		return nil, false
	}
	return w, true
}

func readWrites(buf []byte, off *int) ([]txn.Write, bool) {
	n, ok := readU32(buf, off)
	if !ok {
		return nil, false
	}
	writes := make([]txn.Write, 0, n)
	for i := uint32(0); i < n; i++ {
		key, ok := readBytes(buf, off)
		if !ok {
			return nil, false
		}
		w := txn.Write{Key: string(key)}
		hasValue, ok := readU8(buf, off)
		if !ok {
			return nil, false
		}
		if hasValue == 1 {
			v, ok := readBytes(buf, off)
			if !ok {
				return nil, false
			}
			w.Value = append([]byte(nil), v...)
		}
		writes = append(writes, w)
	}
	return writes, true
}

func readU8(buf []byte, off *int) (byte, bool) {
	if *off+1 > len(buf) {
		return 0, false
	}
	b := buf[*off]
	*off++
	return b, true
}

func readU32(buf []byte, off *int) (uint32, bool) {
	if *off+4 > len(buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint32(buf[*off:])
	*off += 4
	return v, true
}

func readU64(buf []byte, off *int) (uint64, bool) {
	if *off+8 > len(buf) {
		return 0, false
	}
	v := binary.BigEndian.Uint64(buf[*off:])
	*off += 8
	return v, true
}

func readBytes(buf []byte, off *int) ([]byte, bool) {
	n, ok := readU32(buf, off)
	if !ok || *off+int(n) > len(buf) {
		return nil, false
	}
	b := buf[*off : *off+int(n)]
	*off += int(n)
	return b, true
}

// Checkpoint record layout for a shardState: committed values carry an
// 's' key prefix, prepared write sets a 'p' prefix. Prepared sets must
// survive a crash — a phaseFinish replicated after the checkpoint height
// applies against the restored prepared map.

// dump emits the complete shardState content in checkpoint-record form;
// it matches recovery.ChainWriter's dump signature.
func (st *shardState) dump(emit func(key string, value []byte, ver txn.Version)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for k, v := range st.state {
		emit("s"+k, v, txn.Version{})
	}
	for txID, writes := range st.prepared {
		emit("p"+txID, encodeWrites(writes), txn.Version{})
	}
}

// restoreRecord routes one checkpoint record back into the maps.
func (st *shardState) restoreRecord(key string, value []byte) error {
	if len(key) == 0 {
		return errBadRecord
	}
	switch key[0] {
	case 's':
		st.state[key[1:]] = append([]byte(nil), value...)
		return nil
	case 'p':
		writes, ok := decodeWrites(value)
		if !ok {
			return errBadRecord
		}
		st.prepared[key[1:]] = writes
		return nil
	default:
		return errBadRecord
	}
}
