package spanner

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dichotomy/internal/recovery"
	"dichotomy/internal/txn"
)

var errBadRecord = errors.New("spanner: bad checkpoint record")

// Shard-replica crash/recover lifecycle. The unit of failure is one raft
// member of one shard — recovery is per-shard log replay on top of that
// replica's own checkpoint chain, never a global pause. The shard's lock
// table is client-side coordination state and is untouched by replica
// crashes, exactly as a lock service survives a storage-replica failure.

// CrashReplica fail-stops one replica of one shard: the network drops
// its traffic, its consensus member halts, its in-memory state is
// abandoned. The durable checkpoint chain under DataDir survives. The
// shard keeps committing as long as a raft quorum remains.
func (c *Cluster) CrashReplica(shard, replica int) {
	rep := c.shards[shard].replicas[replica]
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.crashed.Load() {
		return
	}
	// Flip the flag first so proposals and reads stop routing here
	// before the consensus member goes down.
	rep.crashed.Store(true)
	c.net.Crash(rep.id)
	close(rep.stopCh)
	rep.cons.Load().Stop()
	rep.wg.Wait()
}

// RecoverReplica restarts a crashed replica: restore the newest intact
// checkpoint chain into fresh state maps (committed values AND prepared
// 2PC write sets, so an in-flight 2PC decided after the crash still
// lands), rejoin the raft group on the same endpoint, and let the leader
// re-replicate the log. Entries at or below the restore height are
// skipped; everything above applies through the ordinary code path while
// the shard keeps serving.
//
// Catch-up is asynchronous by design — the replica is a full member
// again when this returns, still absorbing backfill. The stats cover the
// restore; ReplayedBlocks/TipHeight stay zero.
func (c *Cluster) RecoverReplica(shard, replica int) (recovery.Stats, error) {
	rep := c.shards[shard].replicas[replica]
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if !rep.crashed.Load() {
		return recovery.Stats{}, fmt.Errorf("spanner: shard %d replica %d is not crashed", shard, replica)
	}
	start := time.Now()
	skipTo, ckptBytes, err := rep.start(true)
	if err != nil {
		return recovery.Stats{}, fmt.Errorf("spanner: recover shard %d replica %d: %w", shard, replica, err)
	}
	c.net.Restart(rep.id)
	rep.crashed.Store(false)
	return recovery.Stats{
		CheckpointHeight: skipTo,
		CheckpointBytes:  ckptBytes,
		RestoreDuration:  time.Since(start),
	}, nil
}

// Shards returns the shard count (test/experiment surface).
func (c *Cluster) Shards() int { return len(c.shards) }

// ShardReplicas returns how many replicas shard has.
func (c *Cluster) ShardReplicas(shard int) int { return len(c.shards[shard].replicas) }

// ReplicaApplied returns the newest raft index the replica has applied
// (or restored); convergence checks poll it.
func (c *Cluster) ReplicaApplied(shard, replica int) uint64 {
	return c.shards[shard].replicas[replica].applied.Load()
}

// DumpShard returns one replica's complete content in checkpoint-record
// form — committed values ('s' prefix) and prepared 2PC write sets ('p'
// prefix). Two replicas of the same shard that have applied the same log
// prefix must return byte-identical maps; the crash-equivalence tests
// compare exactly this.
func (c *Cluster) DumpShard(shard, replica int) map[string][]byte {
	out := make(map[string][]byte)
	st := c.shards[shard].replicas[replica].st.Load()
	st.dump(func(key string, value []byte, _ txn.Version) {
		out[key] = append([]byte(nil), value...)
	})
	return out
}

// sortedKeys is shared by tests comparing dumps.
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
