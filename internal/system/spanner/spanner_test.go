package spanner

import (
	"fmt"
	"sync"
	"testing"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/txn"
)

func clusterUp(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

func kvTx(t *testing.T, client *cryptoutil.Signer, method string, args ...string) *txn.Tx {
	t.Helper()
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	tx, err := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: method, Args: raw})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestSingleShardWrite(t *testing.T) {
	c := clusterUp(t, Config{Shards: 2})
	client := cryptoutil.MustNewSigner("client")
	if r := c.Execute(kvTx(t, client, "put", "k", "v")); !r.Committed {
		t.Fatalf("put: %+v", r)
	}
	if r := c.Execute(kvTx(t, client, "get", "k")); !r.Committed {
		t.Fatalf("get: %+v", r)
	}
}

func TestCrossShardAtomic(t *testing.T) {
	c := clusterUp(t, Config{Shards: 4})
	client := cryptoutil.MustNewSigner("client")
	var k1, k2 string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if k1 == "" {
			k1 = k
			continue
		}
		if c.part.Shard(k) != c.part.Shard(k1) {
			k2 = k
			break
		}
	}
	if r := c.Execute(kvTx(t, client, "multi", k1, "v1", k2, "v2")); !r.Committed {
		t.Fatalf("cross-shard: %+v", r)
	}
	for _, k := range []string{k1, k2} {
		if _, ok := c.shards[c.part.Shard(k)].read(k); !ok {
			t.Fatalf("%s missing after commit", k)
		}
	}
}

func TestContendedWritersSerializeViaLocks(t *testing.T) {
	c := clusterUp(t, Config{Shards: 2})
	client := cryptoutil.MustNewSigner("client")
	if r := c.Execute(kvTx(t, client, "put", "hot", "0")); !r.Committed {
		t.Fatalf("seed: %+v", r)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := c.Execute(kvTx(t, client, "modify", "hot", fmt.Sprintf("w%d", w)))
			if r.Committed {
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// Pessimistic locking: most (often all) writers eventually get the
	// lock and commit; at minimum several must.
	if committed < 4 {
		t.Fatalf("only %d/8 committed; lock waiting broken", committed)
	}
}

func TestSmallbankConservation(t *testing.T) {
	c := clusterUp(t, Config{Shards: 2})
	client := cryptoutil.MustNewSigner("client")
	create := func(id string) {
		tx, _ := txn.Sign(client, txn.Invocation{Contract: contract.SmallbankName,
			Method: "create_account",
			Args:   [][]byte{[]byte(id), contract.EncodeInt64(100), contract.EncodeInt64(0)}})
		if r := c.Execute(tx); !r.Committed {
			t.Fatalf("create: %+v", r)
		}
	}
	create("x")
	create("y")
	for i := 0; i < 5; i++ {
		pay, _ := txn.Sign(client, txn.Invocation{Contract: contract.SmallbankName,
			Method: "send_payment",
			Args:   [][]byte{[]byte("x"), []byte("y"), contract.EncodeInt64(10)}})
		if r := c.Execute(pay); !r.Committed {
			t.Fatalf("payment %d: %+v", i, r)
		}
	}
	total := int64(0)
	for _, sh := range c.shards {
		st := sh.replicas[0].st.Load()
		st.mu.Lock()
		for k, v := range st.state {
			if len(k) > 4 && (k[:4] == "chk:" || k[:4] == "sav:") {
				total += contract.DecodeInt64(v)
			}
		}
		st.mu.Unlock()
	}
	if total != 200 {
		t.Fatalf("total = %d, want 200", total)
	}
	if v, _ := c.shards[c.part.Shard("chk:x")].read("chk:x"); contract.DecodeInt64(v) != 50 {
		t.Fatalf("x checking = %d, want 50", contract.DecodeInt64(v))
	}
}
