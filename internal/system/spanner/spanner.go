// Package spanner models a Spanner-like NewSQL database for the Fig 14
// sharding comparison: Raft-replicated shards (Spanner uses Paxos; both
// are majority-quorum CFT protocols), pessimistic two-phase locking with
// wound-wait deadlock avoidance, and 2PC across shards with a trusted
// coordinator.
//
// The contrast the paper draws against TiDB is concurrency-control
// temperament: Spanner's pessimistic locking makes conflicting
// transactions *wait* for locks, while TiDB aborts instantly — under a
// skewed workload the waiting depresses throughput below TiDB's (Fig 14).
package spanner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/raft"
	"dichotomy/internal/contract"
	"dichotomy/internal/occ"
	"dichotomy/internal/sharding"
	"dichotomy/internal/system"
	"dichotomy/internal/tso"
	"dichotomy/internal/twopc"
	"dichotomy/internal/txn"
)

// Config assembles a cluster.
type Config struct {
	// Shards is the number of data shards.
	Shards int
	// NodesPerShard is each shard's Raft group size (paper: 3).
	NodesPerShard int
	// Link models the network.
	Link cluster.LinkModel
	// LockWait bounds how long a transaction waits for a lock before
	// wound-wait resolves it. Default 50ms.
	LockWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.NodesPerShard <= 0 {
		c.NodesPerShard = 3
	}
	if c.LockWait <= 0 {
		c.LockWait = 50 * time.Millisecond
	}
	return c
}

// Cluster is a running deployment.
type Cluster struct {
	cfg    Config
	net    *cluster.Network
	part   sharding.Partitioner
	shards []*shard
	coord  *twopc.Coordinator
	oracle *tso.Oracle
	txSeq  atomic.Uint64

	closeOne sync.Once
}

var _ system.System = (*Cluster)(nil)

// shard is a Raft-replicated partition with a lock table.
type shard struct {
	idx     int
	nodes   []*raft.Node
	waiters *system.Waiters
	box     *system.PayloadBox
	seq     atomic.Uint64

	mu    sync.Mutex
	state map[string][]byte
	locks map[string]uint64 // key → lock-holder tx priority (start ts)

	prepared map[string][]txn.Write
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

type shardCmd struct {
	reqID  uint64
	txID   string
	phase  phase
	writes []txn.Write
	commit bool
}

type phase int

const (
	phaseApply phase = iota // direct single-shard write batch
	phasePrep
	phaseFinish
)

// New assembles and starts a cluster.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:    cfg,
		net:    cluster.NewNetwork(cfg.Link),
		part:   sharding.HashPartitioner{N: cfg.Shards},
		coord:  twopc.NewCoordinator(),
		oracle: tso.New(),
	}
	for s := 0; s < cfg.Shards; s++ {
		sh := &shard{
			idx:      s,
			waiters:  system.NewWaiters(),
			box:      system.NewPayloadBox(),
			state:    make(map[string][]byte),
			locks:    make(map[string]uint64),
			prepared: make(map[string][]txn.Write),
			stopCh:   make(chan struct{}),
		}
		peers := make([]cluster.NodeID, cfg.NodesPerShard)
		for i := range peers {
			peers[i] = cluster.NodeID(400000 + s*1000 + i)
		}
		for _, id := range peers {
			sh.nodes = append(sh.nodes, raft.New(raft.Config{
				ID: id, Peers: peers, Endpoint: c.net.Register(id, 8192),
			}))
		}
		for i, n := range sh.nodes {
			sh.wg.Add(1)
			go sh.applyLoop(n, i == 0)
		}
		c.shards = append(c.shards, sh)
	}
	return c
}

// Name implements system.System.
func (c *Cluster) Name() string { return "spanner" }

func (sh *shard) applyLoop(n *raft.Node, primary bool) {
	defer sh.wg.Done()
	for {
		select {
		case <-sh.stopCh:
			return
		case e, ok := <-n.Committed():
			if !ok {
				return
			}
			if primary {
				sh.apply(e)
			}
		}
	}
}

func (sh *shard) apply(e consensus.Entry) {
	id, ok := system.HandleID(e.Data)
	if !ok {
		return
	}
	v, ok := sh.box.Take(id)
	if !ok {
		return
	}
	cmd := v.(*shardCmd)
	sh.mu.Lock()
	switch cmd.phase {
	case phaseApply:
		for _, w := range cmd.writes {
			if w.Value == nil {
				delete(sh.state, w.Key)
			} else {
				sh.state[w.Key] = w.Value
			}
		}
	case phasePrep:
		sh.prepared[cmd.txID] = cmd.writes
	case phaseFinish:
		writes := sh.prepared[cmd.txID]
		delete(sh.prepared, cmd.txID)
		if cmd.commit {
			for _, w := range writes {
				if w.Value == nil {
					delete(sh.state, w.Key)
				} else {
					sh.state[w.Key] = w.Value
				}
			}
		}
	}
	sh.mu.Unlock()
	sh.waiters.Resolve(fmt.Sprintf("s%d", cmd.reqID), system.Result{Committed: true})
}

// replicate sequences a command through the shard's Raft group.
func (sh *shard) replicate(cmd *shardCmd) error {
	cmd.reqID = sh.seq.Add(1)
	done := sh.waiters.Register(fmt.Sprintf("s%d", cmd.reqID))
	id := sh.box.Put(cmd, 1)
	payload := system.EncodeHandle(id)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := false
		for _, n := range sh.nodes {
			if n.Propose(payload) == nil {
				ok = true
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			sh.waiters.Cancel(fmt.Sprintf("s%d", cmd.reqID))
			return errors.New("spanner: shard unavailable")
		}
		//lint:allow sleepyloop bounded retry backoff while the shard group re-elects
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		return nil
	case <-time.After(30 * time.Second):
		sh.waiters.Cancel(fmt.Sprintf("s%d", cmd.reqID))
		return errors.New("spanner: apply timeout")
	}
}

// lockKeys acquires write locks with wound-wait: an older transaction
// (lower ts) waits for a younger holder to finish... in wound-wait the
// older *wounds* the younger; we approximate with bounded waiting, after
// which the requester aborts (the waiting is the throughput depressant the
// paper contrasts with TiDB's abort-fast).
func (sh *shard) lockKeys(keys []string, ts uint64, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		sh.mu.Lock()
		allFree := true
		for _, k := range keys {
			if _, held := sh.locks[k]; held {
				allFree = false
				break
			}
		}
		if allFree {
			for _, k := range keys {
				sh.locks[k] = ts
			}
			sh.mu.Unlock()
			return true
		}
		sh.mu.Unlock()
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond) //lint:allow sleepyloop lock-wait, the throughput tax the paper measures
	}
}

func (sh *shard) unlockKeys(keys []string) {
	sh.mu.Lock()
	for _, k := range keys {
		delete(sh.locks, k)
	}
	sh.mu.Unlock()
}

// read returns the committed value of key.
func (sh *shard) read(key string) ([]byte, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.state[key]
	return v, ok
}

// Execute implements system.System as the thin Submit+Wait wrapper.
func (c *Cluster) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(c, t)
}

// Submit implements system.System by running the blocking path on its own
// goroutine (this system has no mempool-fed path).
func (c *Cluster) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return system.GoSubmit(func() system.Result { return c.execute(t) }), nil
}

// execute is the blocking path: lock → execute → replicate via 2PC.
func (c *Cluster) execute(t *txn.Tx) system.Result {
	rw, keys, err := c.simulate(t.Invocation)
	if err != nil {
		if errors.Is(err, contract.ErrAbort) {
			return system.Result{Reason: occ.OK, Err: err}
		}
		return system.Result{Err: err}
	}
	if len(rw.Writes) == 0 {
		return system.Result{Committed: true} // read-only
	}
	ts := c.oracle.Next()
	// Acquire write locks shard by shard (sorted shard order avoids
	// deadlock between lock phases).
	byShard := map[int][]string{}
	for _, k := range keys {
		s := c.part.Shard(k)
		byShard[s] = append(byShard[s], k)
	}
	locked := make([]int, 0, len(byShard))
	for s := 0; s < c.cfg.Shards; s++ {
		ks, ok := byShard[s]
		if !ok {
			continue
		}
		if !c.shards[s].lockKeys(ks, ts, c.cfg.LockWait) {
			for _, ls := range locked {
				c.shards[ls].unlockKeys(byShard[ls])
			}
			return system.Result{Reason: occ.WriteWriteConflict}
		}
		locked = append(locked, s)
	}
	defer func() {
		for _, ls := range locked {
			c.shards[ls].unlockKeys(byShard[ls])
		}
	}()

	// Re-execute under locks so the writes reflect locked state.
	rw, _, err = c.simulate(t.Invocation)
	if err != nil {
		if errors.Is(err, contract.ErrAbort) {
			return system.Result{Reason: occ.OK, Err: err}
		}
		return system.Result{Err: err}
	}
	writesByShard := map[int][]txn.Write{}
	for _, w := range rw.Writes {
		s := c.part.Shard(w.Key)
		writesByShard[s] = append(writesByShard[s], w)
	}
	if len(writesByShard) == 1 {
		for s, writes := range writesByShard {
			if err := c.shards[s].replicate(&shardCmd{phase: phaseApply, writes: writes}); err != nil {
				return system.Result{Err: err}
			}
		}
		return system.Result{Committed: true}
	}
	// Cross-shard 2PC with the trusted coordinator.
	txID := fmt.Sprintf("sp%d", c.txSeq.Add(1))
	parts := make([]twopc.Participant, 0, len(writesByShard))
	for s, writes := range writesByShard {
		parts = append(parts, &participant{sh: c.shards[s], writes: writes})
	}
	if err := c.coord.Run(txID, parts); err != nil {
		if errors.Is(err, twopc.ErrAborted) {
			return system.Result{Reason: occ.WriteWriteConflict}
		}
		return system.Result{Err: err}
	}
	return system.Result{Committed: true}
}

type participant struct {
	sh     *shard
	writes []txn.Write
}

// Prepare implements twopc.Participant.
func (p *participant) Prepare(txID string) (twopc.Vote, error) {
	if err := p.sh.replicate(&shardCmd{phase: phasePrep, txID: txID, writes: p.writes}); err != nil {
		return twopc.VoteAbort, err
	}
	return twopc.VoteCommit, nil
}

// Commit implements twopc.Participant.
func (p *participant) Commit(txID string) error {
	return p.sh.replicate(&shardCmd{phase: phaseFinish, txID: txID, commit: true})
}

// Abort implements twopc.Participant.
func (p *participant) Abort(txID string) error {
	return p.sh.replicate(&shardCmd{phase: phaseFinish, txID: txID, commit: false})
}

// ReadState returns the committed value of key, routed to its owning
// shard (tests and inspection).
func (c *Cluster) ReadState(key string) ([]byte, bool) {
	return c.shards[c.part.Shard(key)].read(key)
}

// simulate runs the contract against cross-shard committed state and also
// returns the full set of touched keys (reads ∪ writes) for locking.
func (c *Cluster) simulate(inv txn.Invocation) (txn.RWSet, []string, error) {
	reg := contract.NewRegistry(contract.KV{}, contract.Smallbank{})
	rw, err := reg.Execute(&clusterState{c: c}, inv)
	if err != nil {
		return txn.RWSet{}, nil, err
	}
	keySet := map[string]bool{}
	for _, w := range rw.Writes {
		keySet[w.Key] = true
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	return rw, keys, nil
}

type clusterState struct{ c *Cluster }

// GetState implements contract.StateReader.
func (s *clusterState) GetState(key string) ([]byte, txn.Version, error) {
	v, ok := s.c.shards[s.c.part.Shard(key)].read(key)
	if !ok {
		return nil, txn.Version{}, contract.ErrNotFound
	}
	return v, txn.Version{}, nil
}

// Close implements system.System.
func (c *Cluster) Close() {
	c.closeOne.Do(func() {
		for _, sh := range c.shards {
			close(sh.stopCh)
		}
		for _, sh := range c.shards {
			for _, n := range sh.nodes {
				n.Stop()
			}
			sh.wg.Wait()
		}
		c.net.Close()
	})
}
