// Package spanner models a Spanner-like NewSQL database for the Fig 14
// sharding comparison: Raft-replicated shards (Spanner uses Paxos; both
// are majority-quorum CFT protocols), pessimistic two-phase locking with
// wound-wait deadlock avoidance, and 2PC across shards with a trusted
// coordinator.
//
// The contrast the paper draws against TiDB is concurrency-control
// temperament: Spanner's pessimistic locking makes conflicting
// transactions *wait* for locks, while TiDB aborts instantly — under a
// skewed workload the waiting depresses throughput below TiDB's (Fig 14).
package spanner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/raft"
	"dichotomy/internal/contract"
	"dichotomy/internal/occ"
	"dichotomy/internal/recovery"
	"dichotomy/internal/sharding"
	"dichotomy/internal/system"
	"dichotomy/internal/tso"
	"dichotomy/internal/twopc"
	"dichotomy/internal/txn"
)

// Config assembles a cluster.
type Config struct {
	// Shards is the number of data shards.
	Shards int
	// NodesPerShard is each shard's Raft group size (paper: 3).
	NodesPerShard int
	// Link models the network.
	Link cluster.LinkModel
	// LockWait bounds how long a transaction waits for a lock before
	// wound-wait resolves it. Default 50ms.
	LockWait time.Duration

	// DataDir, together with CheckpointInterval, enables per-shard-replica
	// checkpoint chains under DataDir/shard-NNN/replica-N.
	DataDir string
	// CheckpointInterval is applied raft entries between checkpoints; 0
	// disables checkpointing (recovery replays the whole shard log).
	CheckpointInterval uint64
	// CheckpointKeep bounds retained checkpoint files per replica.
	CheckpointKeep int
	// CheckpointMode selects full or delta shard checkpoints.
	CheckpointMode recovery.Mode
	// CheckpointFullEvery folds delta chains every N-th checkpoint.
	CheckpointFullEvery int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.NodesPerShard <= 0 {
		c.NodesPerShard = 3
	}
	if c.LockWait <= 0 {
		c.LockWait = 50 * time.Millisecond
	}
	return c
}

// Cluster is a running deployment.
type Cluster struct {
	cfg    Config
	net    *cluster.Network
	part   sharding.Partitioner
	shards []*shard
	coord  *twopc.Coordinator
	oracle *tso.Oracle
	txSeq  atomic.Uint64

	closeOne sync.Once
}

var _ system.System = (*Cluster)(nil)

// shard is a Raft-replicated partition with a lock table. The lock table
// is coordination state, held once per shard on the client-facing path —
// it is not replicated, exactly as a lock leader's in-memory lock table
// is not. Committed data and prepared 2PC writes ARE replicated: every
// replica applies the shard log into its own copy (see shardReplica), so
// any replica can be crashed and rebuilt without touching the others.
type shard struct {
	idx      int
	replicas []*shardReplica
	peers    []cluster.NodeID
	waiters  *system.Waiters
	seq      atomic.Uint64

	lockMu sync.Mutex
	locks  map[string]uint64 // key → lock-holder tx priority (start ts)
}

// shardState is one replica's materialized copy of the shard log:
// committed values plus the prepared-but-undecided 2PC write sets.
// Guarded by its own mutex; swapped wholesale on crash/recover.
type shardState struct {
	mu       sync.Mutex
	state    map[string][]byte
	prepared map[string][]txn.Write
}

func newShardState() *shardState {
	return &shardState{
		state:    make(map[string][]byte),
		prepared: make(map[string][]txn.Write),
	}
}

// shardReplica is one raft member plus its materialized state. Commands
// are encoded into the log entries themselves (codec.go), so a replica
// restarted with an empty log is rebuilt entirely by the leader's
// re-replication, optionally shortcut by its own checkpoint chain.
type shardReplica struct {
	id       cluster.NodeID
	ep       *cluster.Endpoint
	shard    *shard
	ckptOpts recovery.Options // zero Dir disables checkpointing

	cons    atomic.Pointer[raft.Node]
	st      atomic.Pointer[shardState]
	applied atomic.Uint64

	mu      sync.Mutex // serializes crash/recover/close transitions
	crashed atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

type shardCmd struct {
	reqID  uint64
	txID   string
	phase  phase
	writes []txn.Write
	commit bool
}

type phase uint8

const (
	phaseApply phase = iota // direct single-shard write batch
	phasePrep
	phaseFinish
)

// New assembles and starts a cluster.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:    cfg,
		net:    cluster.NewNetwork(cfg.Link),
		part:   sharding.HashPartitioner{N: cfg.Shards},
		coord:  twopc.NewCoordinator(),
		oracle: tso.New(),
	}
	for s := 0; s < cfg.Shards; s++ {
		sh := &shard{
			idx:     s,
			waiters: system.NewWaiters(),
			locks:   make(map[string]uint64),
		}
		peers := make([]cluster.NodeID, cfg.NodesPerShard)
		for i := range peers {
			peers[i] = cluster.NodeID(400000 + s*1000 + i)
		}
		sh.peers = peers
		for i, id := range peers {
			rep := &shardReplica{id: id, ep: c.net.Register(id, 8192), shard: sh}
			if cfg.DataDir != "" && cfg.CheckpointInterval > 0 {
				rep.ckptOpts = recovery.Options{
					Dir: filepath.Join(cfg.DataDir,
						fmt.Sprintf("shard-%03d", s), fmt.Sprintf("replica-%d", i)),
					Interval:  cfg.CheckpointInterval,
					Keep:      cfg.CheckpointKeep,
					Mode:      cfg.CheckpointMode,
					FullEvery: cfg.CheckpointFullEvery,
				}
			}
			sh.replicas = append(sh.replicas, rep)
		}
		for _, rep := range sh.replicas {
			if _, _, err := rep.start(false); err != nil {
				// Only a pre-existing corrupt chain lands here; run
				// without checkpoints — the raft log still rebuilds.
				rep.ckptOpts = recovery.Options{}
				_, _, _ = rep.start(false)
			}
		}
		c.shards = append(c.shards, sh)
	}
	return c
}

// Name implements system.System.
func (c *Cluster) Name() string { return "spanner" }

// SetFaults installs (or, with nil, removes) a message-fault hook on the
// cluster's transport — the chaos layer's drop/delay/reorder seam.
func (c *Cluster) SetFaults(hook cluster.FaultHook) { c.net.SetFaults(hook) }

// start boots (or re-boots) the replica: restore its checkpoint chain
// when configured, rejoin the raft group on the fixed endpoint, run the
// apply loop. Entries at or below the restored height are skipped.
// rejoin distinguishes a post-crash reboot from initial construction: a
// rebooted replica lost its raft log and must sit out elections until
// re-replication catches it up (raft.Config.Recovering), while at
// construction every replica is equally empty and someone has to
// campaign. Callers hold rep.mu (or are constructing the cluster).
func (rep *shardReplica) start(rejoin bool) (skipTo uint64, ckptBytes int64, err error) {
	st := newShardState()
	var ckpt *recovery.ChainWriter
	if rep.ckptOpts.Dir != "" {
		w, err := recovery.OpenChainWriter(rep.ckptOpts)
		if err != nil {
			return 0, 0, err
		}
		if err := w.Restore(func(key string, value []byte, _ txn.Version) error {
			return st.restoreRecord(key, value)
		}); err != nil {
			return 0, 0, err
		}
		ckpt, skipTo, ckptBytes = w, w.LastHeight(), w.RestoredBytes()
	}
	cons := raft.New(raft.Config{ID: rep.id, Peers: rep.shard.peers, Endpoint: rep.ep, Recovering: rejoin})
	rep.st.Store(st)
	rep.cons.Store(cons)
	rep.applied.Store(skipTo)
	stopCh := make(chan struct{})
	rep.stopCh = stopCh
	rep.wg.Add(1)
	go rep.applyLoop(cons, st, ckpt, skipTo, stopCh)
	return skipTo, ckptBytes, nil
}

// applyLoop applies the shard log into this replica's state. Every
// replica applies (deterministically — same log prefix, same state) and
// every replica resolves the request waiter; resolve-once semantics make
// the duplicates no-ops.
func (rep *shardReplica) applyLoop(cons *raft.Node, st *shardState, ckpt *recovery.ChainWriter, skipTo uint64, stopCh chan struct{}) {
	defer rep.wg.Done()
	for {
		select {
		case <-stopCh:
			return
		case e, ok := <-cons.Committed():
			if !ok {
				return
			}
			if e.Index <= skipTo {
				continue // covered by the restored checkpoint
			}
			reqID, ok := rep.apply(st, e)
			// Publish the applied index BEFORE resolving the waiter:
			// readers route to the most-caught-up live replica, so a
			// resolved request is guaranteed visible to the next read.
			rep.applied.Store(e.Index)
			if ok {
				rep.shard.waiters.Resolve(fmt.Sprintf("s%d", reqID), system.Result{Committed: true})
			}
			if ckpt != nil {
				// Checkpoint failure degrades durability only; the apply
				// path keeps going and recovery replays more log.
				_ = ckpt.MaybeCheckpoint(e.Index, st.dump)
			}
		}
	}
}

func (rep *shardReplica) apply(st *shardState, e consensus.Entry) (reqID uint64, ok bool) {
	cmd, ok := decodeShardCmd(e.Data)
	if !ok {
		return 0, false
	}
	st.mu.Lock()
	switch cmd.phase {
	case phaseApply:
		for _, w := range cmd.writes {
			if w.Value == nil {
				delete(st.state, w.Key)
			} else {
				st.state[w.Key] = w.Value
			}
		}
	case phasePrep:
		st.prepared[cmd.txID] = cmd.writes
	case phaseFinish:
		writes := st.prepared[cmd.txID]
		delete(st.prepared, cmd.txID)
		if cmd.commit {
			for _, w := range writes {
				if w.Value == nil {
					delete(st.state, w.Key)
				} else {
					st.state[w.Key] = w.Value
				}
			}
		}
	}
	st.mu.Unlock()
	return cmd.reqID, true
}

// replicate sequences a command through the shard's Raft group. The
// command rides inside the log entry, so the replicated history is
// self-contained for recovery replay.
func (sh *shard) replicate(cmd *shardCmd) error {
	cmd.reqID = sh.seq.Add(1)
	done := sh.waiters.Register(fmt.Sprintf("s%d", cmd.reqID))
	payload := encodeShardCmd(cmd)
	deadline := time.Now().Add(30 * time.Second)
	// Re-propose until the command is applied. A proposal accepted by a
	// replica that crashes before replicating it is silently lost;
	// waiting on it alone would stall the client 30s. Duplicate
	// application is safe: every replica applies the same log, and a
	// second apply/prepare/finish of the same command is a deterministic
	// no-op (state writes are idempotent, a finished prepare is gone).
	for {
		ok := false
		for _, rep := range sh.replicas {
			if rep.crashed.Load() {
				continue
			}
			if rep.cons.Load().Propose(payload) == nil {
				ok = true
				break
			}
		}
		if !ok {
			if time.Now().After(deadline) {
				sh.waiters.Cancel(fmt.Sprintf("s%d", cmd.reqID))
				return errors.New("spanner: shard unavailable")
			}
			//lint:allow sleepyloop bounded retry backoff while the shard group re-elects
			time.Sleep(time.Millisecond)
			continue
		}
		select {
		case <-done:
			return nil
		case <-time.After(100 * time.Millisecond):
			if time.Now().After(deadline) {
				sh.waiters.Cancel(fmt.Sprintf("s%d", cmd.reqID))
				return errors.New("spanner: apply timeout")
			}
		}
	}
}

// lockKeys acquires write locks with wound-wait: an older transaction
// (lower ts) waits for a younger holder to finish... in wound-wait the
// older *wounds* the younger; we approximate with bounded waiting, after
// which the requester aborts (the waiting is the throughput depressant the
// paper contrasts with TiDB's abort-fast).
func (sh *shard) lockKeys(keys []string, ts uint64, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		sh.lockMu.Lock()
		allFree := true
		for _, k := range keys {
			if _, held := sh.locks[k]; held {
				allFree = false
				break
			}
		}
		if allFree {
			for _, k := range keys {
				sh.locks[k] = ts
			}
			sh.lockMu.Unlock()
			return true
		}
		sh.lockMu.Unlock()
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond) //lint:allow sleepyloop lock-wait, the throughput tax the paper measures
	}
}

func (sh *shard) unlockKeys(keys []string) {
	sh.lockMu.Lock()
	for _, k := range keys {
		delete(sh.locks, k)
	}
	sh.lockMu.Unlock()
}

// read returns the committed value of key from the most-caught-up live
// replica. Any replica's apply resolves the request waiter, so routing
// reads to the highest applied index preserves read-your-writes: the
// resolver is live with applied ≥ the resolved entry, hence so is the
// maximum.
func (sh *shard) read(key string) ([]byte, bool) {
	rep := sh.freshestReplica()
	if rep == nil {
		return nil, false
	}
	st := rep.st.Load()
	st.mu.Lock()
	v, ok := st.state[key]
	st.mu.Unlock()
	return v, ok
}

func (sh *shard) freshestReplica() *shardReplica {
	var best *shardReplica
	var bestApplied uint64
	for _, rep := range sh.replicas {
		if rep.crashed.Load() {
			continue
		}
		if a := rep.applied.Load(); best == nil || a > bestApplied {
			best, bestApplied = rep, a
		}
	}
	return best
}

// Execute implements system.System as the thin Submit+Wait wrapper.
func (c *Cluster) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(c, t)
}

// Submit implements system.System by running the blocking path on its own
// goroutine (this system has no mempool-fed path).
func (c *Cluster) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return system.GoSubmit(func() system.Result { return c.execute(t) }), nil
}

// execute is the blocking path: lock → execute → replicate via 2PC.
func (c *Cluster) execute(t *txn.Tx) system.Result {
	rw, keys, err := c.simulate(t.Invocation)
	if err != nil {
		if errors.Is(err, contract.ErrAbort) {
			return system.Result{Reason: occ.OK, Err: err}
		}
		return system.Result{Err: err}
	}
	if len(rw.Writes) == 0 {
		return system.Result{Committed: true} // read-only
	}
	ts := c.oracle.Next()
	// Acquire write locks shard by shard (sorted shard order avoids
	// deadlock between lock phases).
	byShard := map[int][]string{}
	for _, k := range keys {
		s := c.part.Shard(k)
		byShard[s] = append(byShard[s], k)
	}
	locked := make([]int, 0, len(byShard))
	for s := 0; s < c.cfg.Shards; s++ {
		ks, ok := byShard[s]
		if !ok {
			continue
		}
		if !c.shards[s].lockKeys(ks, ts, c.cfg.LockWait) {
			for _, ls := range locked {
				c.shards[ls].unlockKeys(byShard[ls])
			}
			return system.Result{Reason: occ.WriteWriteConflict}
		}
		locked = append(locked, s)
	}
	defer func() {
		for _, ls := range locked {
			c.shards[ls].unlockKeys(byShard[ls])
		}
	}()

	// Re-execute under locks so the writes reflect locked state.
	rw, _, err = c.simulate(t.Invocation)
	if err != nil {
		if errors.Is(err, contract.ErrAbort) {
			return system.Result{Reason: occ.OK, Err: err}
		}
		return system.Result{Err: err}
	}
	writesByShard := map[int][]txn.Write{}
	for _, w := range rw.Writes {
		s := c.part.Shard(w.Key)
		writesByShard[s] = append(writesByShard[s], w)
	}
	if len(writesByShard) == 1 {
		for s, writes := range writesByShard {
			if err := c.shards[s].replicate(&shardCmd{phase: phaseApply, writes: writes}); err != nil {
				return system.Result{Err: err}
			}
		}
		return system.Result{Committed: true}
	}
	// Cross-shard 2PC with the trusted coordinator.
	txID := fmt.Sprintf("sp%d", c.txSeq.Add(1))
	parts := make([]twopc.Participant, 0, len(writesByShard))
	for s, writes := range writesByShard {
		parts = append(parts, &participant{sh: c.shards[s], writes: writes})
	}
	if err := c.coord.Run(txID, parts); err != nil {
		if errors.Is(err, twopc.ErrAborted) {
			return system.Result{Reason: occ.WriteWriteConflict}
		}
		return system.Result{Err: err}
	}
	return system.Result{Committed: true}
}

type participant struct {
	sh     *shard
	writes []txn.Write
}

// Prepare implements twopc.Participant.
func (p *participant) Prepare(txID string) (twopc.Vote, error) {
	if err := p.sh.replicate(&shardCmd{phase: phasePrep, txID: txID, writes: p.writes}); err != nil {
		return twopc.VoteAbort, err
	}
	return twopc.VoteCommit, nil
}

// Commit implements twopc.Participant.
func (p *participant) Commit(txID string) error {
	return p.sh.replicate(&shardCmd{phase: phaseFinish, txID: txID, commit: true})
}

// Abort implements twopc.Participant.
func (p *participant) Abort(txID string) error {
	return p.sh.replicate(&shardCmd{phase: phaseFinish, txID: txID, commit: false})
}

// ReadState returns the committed value of key, routed to its owning
// shard (tests and inspection).
func (c *Cluster) ReadState(key string) ([]byte, bool) {
	return c.shards[c.part.Shard(key)].read(key)
}

// simulate runs the contract against cross-shard committed state and also
// returns the full set of touched keys (reads ∪ writes) for locking.
func (c *Cluster) simulate(inv txn.Invocation) (txn.RWSet, []string, error) {
	reg := contract.NewRegistry(contract.KV{}, contract.Smallbank{})
	rw, err := reg.Execute(&clusterState{c: c}, inv)
	if err != nil {
		return txn.RWSet{}, nil, err
	}
	keySet := map[string]bool{}
	for _, w := range rw.Writes {
		keySet[w.Key] = true
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	return rw, keys, nil
}

type clusterState struct{ c *Cluster }

// GetState implements contract.StateReader.
func (s *clusterState) GetState(key string) ([]byte, txn.Version, error) {
	v, ok := s.c.shards[s.c.part.Shard(key)].read(key)
	if !ok {
		return nil, txn.Version{}, contract.ErrNotFound
	}
	return v, txn.Version{}, nil
}

// Close implements system.System.
func (c *Cluster) Close() {
	c.closeOne.Do(func() {
		for _, sh := range c.shards {
			for _, rep := range sh.replicas {
				rep.mu.Lock()
				if !rep.crashed.Load() {
					close(rep.stopCh)
				}
				rep.mu.Unlock()
			}
			for _, rep := range sh.replicas {
				rep.mu.Lock()
				if !rep.crashed.Load() {
					rep.cons.Load().Stop()
					rep.wg.Wait()
				}
				rep.mu.Unlock()
			}
		}
		c.net.Close()
	})
}
