// Concurrent-execution conformance: every system.System implementation is
// driven by parallel workers over conflicting keys, and the committed
// results must be serializable — no lost updates. The increments are
// Smallbank deposit_checking calls (each a read-modify-write on a hot
// account), so a system whose state layer loses an update under
// concurrency reports a final balance below its own committed count.
// Run with -race this doubles as the thread-safety proof for the shared
// internal/state layer underneath Fabric, Quorum, AHL and the hybrids.
package system_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/system"
	"dichotomy/internal/system/ahl"
	"dichotomy/internal/system/etcd"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/system/spanner"
	"dichotomy/internal/system/tidb"
	"dichotomy/internal/txn"
)

const (
	concWorkers  = 4
	concIters    = 8
	concAccounts = 2 // few hot accounts → every transaction conflicts
)

func concAccount(i int) string { return fmt.Sprintf("acct%d", i%concAccounts) }

func signTx(t *testing.T, client *cryptoutil.Signer, contractName, method string, args ...string) *txn.Tx {
	t.Helper()
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	tx, err := txn.Sign(client, txn.Invocation{Contract: contractName, Method: method, Args: raw})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestConcurrentExecuteSerializable(t *testing.T) {
	client := cryptoutil.MustNewSigner("conc-client")
	cases := []struct {
		name  string
		build func(t *testing.T) system.System
		// read returns the final checking balance of account id.
		read func(t *testing.T, sys system.System, id string) int64
	}{
		{
			name: "fabric",
			build: func(t *testing.T) system.System {
				nw, err := fabric.New(fabric.Config{Peers: 4})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			read: func(t *testing.T, sys system.System, id string) int64 {
				r := sys.Execute(signTx(t, client, contract.KVName, "get", "chk:"+id))
				if r.Err != nil {
					t.Fatalf("read %s: %v", id, r.Err)
				}
				return contract.DecodeInt64(r.Value)
			},
		},
		{
			name: "quorum-raft",
			build: func(t *testing.T) system.System {
				nw, err := quorum.New(quorum.Config{Nodes: 4})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			read: func(t *testing.T, sys system.System, id string) int64 {
				r := sys.Execute(signTx(t, client, contract.KVName, "get", "chk:"+id))
				if r.Err != nil {
					t.Fatalf("read %s: %v", id, r.Err)
				}
				return contract.DecodeInt64(r.Value)
			},
		},
		{
			name: "tidb",
			build: func(t *testing.T) system.System {
				return tidb.New(tidb.Config{Servers: 2, StorageNodes: 3, Regions: 4})
			},
			read: func(t *testing.T, sys system.System, id string) int64 {
				v, err := sys.(*tidb.Cluster).RawGet("chk/" + id)
				if err != nil {
					t.Fatalf("read %s: %v", id, err)
				}
				return contract.DecodeInt64(v)
			},
		},
		{
			name:  "ahl",
			build: func(t *testing.T) system.System { return ahl.New(ahl.Config{Shards: 2, NodesPerShard: 3}) },
			read: func(t *testing.T, sys system.System, id string) int64 {
				v, _ := sys.(*ahl.Cluster).ReadState("chk:" + id)
				return contract.DecodeInt64(v)
			},
		},
		{
			name:  "spanner",
			build: func(t *testing.T) system.System { return spanner.New(spanner.Config{Shards: 2, NodesPerShard: 3}) },
			read: func(t *testing.T, sys system.System, id string) int64 {
				v, _ := sys.(*spanner.Cluster).ReadState("chk:" + id)
				return contract.DecodeInt64(v)
			},
		},
		{
			name: "veritas",
			build: func(t *testing.T) system.System {
				v, err := hybrid.NewVeritas(hybrid.VeritasConfig{Verifiers: 3})
				if err != nil {
					t.Fatal(err)
				}
				return v
			},
			read: func(t *testing.T, sys system.System, id string) int64 {
				v, _ := sys.(*hybrid.Veritas).ReadState("chk:" + id)
				return contract.DecodeInt64(v)
			},
		},
		{
			name: "bigchain",
			build: func(t *testing.T) system.System {
				b, err := hybrid.NewBigchain(hybrid.BigchainConfig{Nodes: 4})
				if err != nil {
					t.Fatal(err)
				}
				return b
			},
			read: func(t *testing.T, sys system.System, id string) int64 {
				v, _ := sys.(*hybrid.Bigchain).ReadState("chk:" + id)
				return contract.DecodeInt64(v)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := tc.build(t)
			defer sys.Close()
			for i := 0; i < concAccounts; i++ {
				r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
					concAccount(i), string(contract.EncodeInt64(0)), string(contract.EncodeInt64(0))))
				if !r.Committed {
					t.Fatalf("create %s: %+v", concAccount(i), r)
				}
			}
			var committed [concAccounts]atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < concWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < concIters; i++ {
						acct := (w + i) % concAccounts
						// Tx IDs are content hashes, so every deposit
						// carries a distinct amount to stay distinct.
						amount := int64(w*concIters + i + 1)
						r := sys.Execute(signTx(t, client, contract.SmallbankName, "deposit_checking",
							concAccount(acct), string(contract.EncodeInt64(amount))))
						if r.Err != nil && r.Committed {
							t.Errorf("committed with error: %+v", r)
							return
						}
						if r.Committed {
							committed[acct].Add(amount)
						}
					}
				}(w)
			}
			wg.Wait()
			total := int64(0)
			for i := 0; i < concAccounts; i++ {
				want := committed[i].Load()
				// A commit acks as soon as the first replica applies it, so
				// give the replica under inspection a moment to catch up;
				// a genuine lost update converges to the wrong balance and
				// still fails.
				var got int64
				deadline := time.Now().Add(5 * time.Second)
				for {
					got = tc.read(t, sys, concAccount(i))
					if got == want || time.Now().After(deadline) {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if got != want {
					t.Errorf("account %s: balance %d, want %d from committed deposits (lost or phantom updates)",
						concAccount(i), got, want)
				}
				total += want
			}
			if total == 0 {
				t.Error("no transaction committed; the workload never exercised the commit path")
			}
		})
	}
}

// TestConcurrentExecuteEtcd covers the one system without a transactional
// surface: etcd's single-op model has no read-modify-write to lose, so
// serializability reduces to atomicity — parallel blind puts must all
// commit and the final value must be exactly one of the written values.
func TestConcurrentExecuteEtcd(t *testing.T) {
	client := cryptoutil.MustNewSigner("conc-client")
	c := etcd.New(etcd.Config{Nodes: 3})
	defer c.Close()
	written := make([]string, concWorkers*concIters)
	var wg sync.WaitGroup
	for w := 0; w < concWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < concIters; i++ {
				val := fmt.Sprintf("w%d-i%d", w, i)
				written[w*concIters+i] = val
				if r := c.Execute(signTx(t, client, contract.KVName, "put", "hot", val)); !r.Committed {
					t.Errorf("put %s: %+v", val, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	r := c.Execute(signTx(t, client, contract.KVName, "get", "hot"))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	for _, v := range written {
		if string(r.Value) == v {
			return
		}
	}
	t.Fatalf("final value %q was never written", r.Value)
}
