// Crash-equivalence: a replica killed mid-load at a random block height
// and recovered from its durable checkpoint plus a replay of the
// replicated history must end byte-identical — committed values AND
// per-key versions — to a replica that never crashed. This is the
// end-to-end proof of the recovery layer's contract: the checkpoint
// never tears a block, replay reuses the exact validate/apply code of
// live operation, and verdicts recomputed during replay match the ones
// the live cluster reached. Run with -race it also proves the crash and
// recovery paths don't share state unsafely with in-flight commits.
package system_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/recovery"
	"dichotomy/internal/state"
	"dichotomy/internal/system"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/txn"
)

// recModes runs the crash-equivalence body once per checkpoint mode:
// byte-identical recovery must hold whether the restore point is a full
// snapshot or a full + delta chain (with a mid-test compaction — the
// small FullEvery below folds a chain during the run).
func recModes(t *testing.T, body func(t *testing.T, mode recovery.Mode)) {
	for _, mode := range []recovery.Mode{recovery.ModeFull, recovery.ModeDelta} {
		t.Run("ckpt="+mode.String(), func(t *testing.T) {
			body(t, mode)
		})
	}
}

// recFullEvery keeps delta chains short enough that a run crosses at
// least one worker-side compaction.
const recFullEvery = 3

const (
	recWorkers  = 4
	recIters    = 12
	recAccounts = 3
	recInterval = 2 // checkpoint every 2 blocks — the crash usually lands past one
)

func recAccount(i int) string { return fmt.Sprintf("racct%d", i%recAccounts) }

// driveConflictingLoad runs recWorkers×recIters conflicting Smallbank
// deposits against sys, invoking crash (once) after a random number of
// completed transactions. It returns how many committed.
func driveConflictingLoad(t *testing.T, sys system.System, client *cryptoutil.Signer, rng *rand.Rand, crash func()) int64 {
	t.Helper()
	for i := 0; i < recAccounts; i++ {
		r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
			recAccount(i), string(contract.EncodeInt64(0)), string(contract.EncodeInt64(0))))
		if !r.Committed {
			t.Fatalf("create %s: %+v", recAccount(i), r)
		}
	}
	total := recWorkers * recIters
	crashAt := int64(1 + rng.Intn(total/2)) // mid-load, height random
	t.Logf("crashing after %d/%d transactions", crashAt, total)
	var done atomic.Int64
	var committed atomic.Int64
	var crashOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < recWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < recIters; i++ {
				// Distinct amounts keep content-hashed tx IDs distinct.
				amount := int64(w*recIters + i + 1)
				r := sys.Execute(signTx(t, client, contract.SmallbankName, "deposit_checking",
					recAccount((w+i)%recAccounts), string(contract.EncodeInt64(amount))))
				if r.Committed {
					committed.Add(1)
				}
				if done.Add(1) == crashAt {
					crashOnce.Do(crash)
				}
			}
		}(w)
	}
	wg.Wait()
	// The counter may never hit crashAt exactly if workers race past it;
	// make sure the crash happened.
	crashOnce.Do(crash)
	return committed.Load()
}

func dumpVersioned(st *state.Store) map[string]string {
	out := make(map[string]string)
	st.Dump(func(key string, value []byte, ver txn.Version) bool {
		out[key] = fmt.Sprintf("%x@%d.%d", value, ver.BlockNum, ver.TxNum)
		return true
	})
	return out
}

func requireIdentical(t *testing.T, name string, healthy, recovered map[string]string) {
	t.Helper()
	if len(healthy) == 0 {
		t.Fatalf("%s: healthy replica has no state; load never committed", name)
	}
	if len(healthy) != len(recovered) {
		t.Fatalf("%s: recovered %d keys, healthy %d", name, len(recovered), len(healthy))
	}
	for k, v := range healthy {
		if recovered[k] != v {
			t.Fatalf("%s: key %s diverged: recovered %s, healthy %s", name, k, recovered[k], v)
		}
	}
}

// waitHeights polls until every height function reports the same value
// twice in a row — the quiesced-network precondition recovery documents.
func waitHeights(t *testing.T, heights ...func() uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var prev uint64
	stable := 0
	for {
		h0 := heights[0]()
		same := true
		for _, h := range heights[1:] {
			if h() != h0 {
				same = false
				break
			}
		}
		if same && h0 == prev {
			stable++
			if stable >= 3 {
				return h0
			}
		} else {
			stable = 0
		}
		prev = h0
		if time.Now().After(deadline) {
			all := make([]uint64, len(heights))
			for i, h := range heights {
				all[i] = h()
			}
			t.Fatalf("replicas failed to quiesce (heights %v, stable %d)", all, stable)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCrashEquivalenceFabric(t *testing.T) {
	recModes(t, testCrashEquivalenceFabric)
}

func testCrashEquivalenceFabric(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("rec-client")
	nw, err := fabric.New(fabric.Config{
		Peers:               4,
		EndorsementsNeeded:  3, // constant policy that survives one crashed peer
		BlockSize:           4,
		BlockTimeout:        2 * time.Millisecond,
		ValidationWorkers:   2,
		PipelineDepth:       2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  recInterval,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.RegisterClient(client.Name(), client.Public())

	const crashed = 2
	committed := driveConflictingLoad(t, nw, client, rng, func() { nw.CrashPeer(crashed) })
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	// Quiesce the survivors: all live ledgers at the same stable height.
	tip := waitHeights(t,
		func() uint64 { return nw.Ledger(0).Height() },
		func() uint64 { return nw.Ledger(1).Height() },
		func() uint64 { return nw.Ledger(3).Height() },
	)

	stats, err := nw.RecoverPeer(crashed, 0, 0)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	t.Logf("recovery: checkpoint@%d (%d bytes), replayed %d blocks to %d in %v",
		stats.CheckpointHeight, stats.CheckpointBytes, stats.ReplayedBlocks, stats.TipHeight, stats.Total())
	if stats.TipHeight != tip {
		t.Fatalf("recovered to height %d, survivors at %d", stats.TipHeight, tip)
	}
	if stats.CheckpointHeight+stats.ReplayedBlocks != tip {
		t.Fatalf("stats inconsistent: ckpt %d + replayed %d != tip %d",
			stats.CheckpointHeight, stats.ReplayedBlocks, tip)
	}
	requireIdentical(t, "fabric", dumpVersioned(nw.State(0)), dumpVersioned(nw.State(crashed)))
	// The rebuilt ledger must chain to the same head.
	if nw.Ledger(crashed).Head().Hash() != nw.Ledger(0).Head().Hash() {
		t.Fatal("recovered ledger head diverges from healthy replica")
	}
	if err := nw.Ledger(crashed).Verify(); err != nil {
		t.Fatalf("recovered ledger fails verification: %v", err)
	}
}

func TestCrashEquivalenceQuorum(t *testing.T) {
	recModes(t, testCrashEquivalenceQuorum)
}

func testCrashEquivalenceQuorum(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("rec-client")
	nw, err := quorum.New(quorum.Config{
		Nodes:               4,
		Consensus:           quorum.Raft,
		BlockSize:           4,
		BlockInterval:       2 * time.Millisecond,
		ExecutionWorkers:    2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  recInterval,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.RegisterClient(client.Name(), client.Public())

	// Crash a follower: a crashed leader halts proposals until re-election,
	// which is a liveness scenario, not the recovery-equivalence one.
	pickFollower := func() int {
		leader := nw.Leader()
		for _, cand := range []int{3, 2, 1} {
			if cand != leader {
				return cand
			}
		}
		return 3
	}
	var crashed atomic.Int64
	committed := driveConflictingLoad(t, nw, client, rng, func() {
		idx := pickFollower()
		crashed.Store(int64(idx))
		nw.CrashNode(idx)
	})
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	idx := int(crashed.Load())
	healthy := 0
	if idx == 0 {
		healthy = 1
	}
	var heightFns []func() uint64
	for i := 0; i < 4; i++ {
		if i == idx {
			continue
		}
		led := nw.Ledger(i)
		heightFns = append(heightFns, func() uint64 { return led.Height() })
	}
	tip := waitHeights(t, heightFns...)

	stats, err := nw.RecoverNode(idx, healthy, 0)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	t.Logf("recovery: checkpoint@%d (%d bytes), replayed %d blocks to %d in %v",
		stats.CheckpointHeight, stats.CheckpointBytes, stats.ReplayedBlocks, stats.TipHeight, stats.Total())
	if stats.TipHeight != tip {
		t.Fatalf("recovered to height %d, survivors at %d", stats.TipHeight, tip)
	}
	requireIdentical(t, "quorum", dumpVersioned(nw.State(healthy)), dumpVersioned(nw.State(idx)))
	// Double execution must also reconverge the MPT commitment.
	if nw.StateRoot(idx) != nw.StateRoot(healthy) {
		t.Fatal("recovered state root diverges from healthy replica")
	}
	if nw.Ledger(idx).Head().Hash() != nw.Ledger(healthy).Head().Hash() {
		t.Fatal("recovered ledger head diverges from healthy replica")
	}
}

func TestCrashEquivalenceVeritas(t *testing.T) {
	recModes(t, testCrashEquivalenceVeritas)
}

func testCrashEquivalenceVeritas(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("rec-client")
	v, err := hybrid.NewVeritas(hybrid.VeritasConfig{
		Verifiers:           3,
		BatchSize:           4,
		BatchTimeout:        2 * time.Millisecond,
		ValidationWorkers:   2,
		DataDir:             t.TempDir(),
		CheckpointInterval:  recInterval,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	const crashed = 1 // verifier 0 executes and acks; crash a follower
	committed := driveConflictingLoad(t, v, client, rng, func() { v.CrashVerifier(crashed) })
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	// Unlike the ledger systems, a recovered verifier re-joins live
	// consumption: resubscribe above the checkpoint and catch up through
	// the ordinary pipeline.
	stats, err := v.RecoverVerifier(crashed, 0)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	t.Logf("recovery: checkpoint@%d (%d bytes), resubscribed at %d, log tip %d",
		stats.CheckpointHeight, stats.CheckpointBytes, stats.CheckpointHeight+1, stats.TipHeight)
	// Wait until both verifiers have applied the full log and stabilized.
	waitHeights(t,
		func() uint64 {
			if h := v.Height(0); h >= v.LogBatches() {
				return h
			}
			return 0
		},
		func() uint64 { return v.Height(crashed) },
	)
	requireIdentical(t, "veritas", dumpVersioned(v.State(0)), dumpVersioned(v.State(crashed)))

	// The rejoined verifier is a full cluster member again: new traffic
	// reaches it through the same pipeline that replayed the tail.
	r := v.Execute(signTx(t, client, contract.SmallbankName, "deposit_checking",
		recAccount(0), string(contract.EncodeInt64(999_999))))
	if !r.Committed {
		t.Fatalf("post-recovery deposit: %+v", r)
	}
	waitHeights(t,
		func() uint64 { return v.Height(0) },
		func() uint64 { return v.Height(crashed) },
	)
	requireIdentical(t, "veritas-live", dumpVersioned(v.State(0)), dumpVersioned(v.State(crashed)))
}

func TestCrashEquivalenceBigchain(t *testing.T) {
	recModes(t, testCrashEquivalenceBigchain)
}

func testCrashEquivalenceBigchain(t *testing.T, mode recovery.Mode) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)
	client := cryptoutil.MustNewSigner("rec-client")
	b, err := hybrid.NewBigchain(hybrid.BigchainConfig{
		Nodes:               4,
		DataDir:             t.TempDir(),
		CheckpointInterval:  3,
		CheckpointMode:      mode,
		CheckpointFullEvery: recFullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const crashed = 2
	committed := driveConflictingLoad(t, b, client, rng, func() { b.CrashValidator(crashed) })
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	waitHeights(t,
		func() uint64 { return b.Height(0) },
		func() uint64 { return b.Height(1) },
		func() uint64 { return b.Height(3) },
	)
	stats, err := b.RecoverValidator(crashed, 0, 0)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	t.Logf("recovery: checkpoint@%d (%d bytes), replayed %d txs to %d in %v",
		stats.CheckpointHeight, stats.CheckpointBytes, stats.ReplayedBlocks, stats.TipHeight, stats.Total())
	requireIdentical(t, "bigchain", dumpVersioned(b.State(0)), dumpVersioned(b.State(crashed)))
}
