package ahl

import (
	"errors"
	"sync/atomic"
	"testing"

	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/storage"
)

// failEngine passes reads through and fails every write while armed.
type failEngine struct {
	storage.Engine
	armed atomic.Bool
}

var errInjected = errors.New("injected write failure")

func (f *failEngine) Put(key, value []byte) error {
	if f.armed.Load() {
		return errInjected
	}
	return f.Engine.Put(key, value)
}

func (f *failEngine) Delete(key []byte) error {
	if f.armed.Load() {
		return errInjected
	}
	return f.Engine.Delete(key)
}

// TestApplyFailureSurfacesError is the regression test behind nopanic's
// ahl finding: a shard whose store rejects a write must resolve the
// waiting client with the error and keep serving — before this PR the
// shard's applier goroutine panicked.
func TestApplyFailureSurfacesError(t *testing.T) {
	var engines []*failEngine
	cfg := Config{Shards: 1, NodesPerShard: 4}
	cfg.engineHook = func(e storage.Engine) storage.Engine {
		fe := &failEngine{Engine: e}
		engines = append(engines, fe)
		return fe
	}
	c := clusterUp(t, cfg)
	client := cryptoutil.MustNewSigner("client")

	if r := c.Execute(kvTx(t, client, "put", "alpha", "1")); !r.Committed {
		t.Fatalf("pre-fault put: %+v", r)
	}

	for _, fe := range engines {
		fe.armed.Store(true)
	}
	r := c.Execute(kvTx(t, client, "put", "beta", "2"))
	if r.Err == nil {
		t.Fatalf("apply failure not surfaced: %+v", r)
	}
	if r.Committed {
		t.Fatalf("failed apply reported as committed: %+v", r)
	}

	// The shard survived the fault: clear it and commit again.
	for _, fe := range engines {
		fe.armed.Store(false)
	}
	if r := c.Execute(kvTx(t, client, "put", "gamma", "3")); !r.Committed {
		t.Fatalf("post-fault put: %+v", r)
	}
}
