// Package ahl models Attested HyperLedger (AHL), the paper's
// state-of-the-art sharded blockchain (Dang et al., from the same group):
// data is hash-partitioned across shards, each shard is a small PBFT
// committee (trusted hardware lets AHL shrink committees to 3 nodes in the
// paper's Fig 14 setup), cross-shard transactions run 2PC whose
// coordinator is itself a BFT-replicated state machine, and shards
// periodically reconfigure to resist adaptive adversaries — pausing
// transaction processing and costing the ~30% Fig 14 measures.
package ahl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/pbft"
	"dichotomy/internal/contract"
	"dichotomy/internal/occ"
	"dichotomy/internal/pipeline"
	"dichotomy/internal/sharding"
	"dichotomy/internal/state"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/memdb"
	"dichotomy/internal/system"
	"dichotomy/internal/twopc"
	"dichotomy/internal/txn"
)

// Config assembles an AHL deployment.
type Config struct {
	// Shards is the number of data shards.
	Shards int
	// NodesPerShard is the PBFT committee size (paper: 3, thanks to TEEs;
	// our PBFT tolerates f=0 at 3 — attestation stands in for the missing
	// fault margin, as in the original system).
	NodesPerShard int
	// Reconfigure enables periodic shard reconfiguration.
	Reconfigure bool
	// ReconfigureEvery is the epoch length.
	ReconfigureEvery time.Duration
	// ReconfigurePause is the handoff stall per epoch.
	ReconfigurePause time.Duration
	// Link models the network.
	Link cluster.LinkModel
	// engineHook, when set, wraps each shard's state engine; tests
	// inject failing engines through it.
	engineHook func(storage.Engine) storage.Engine
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.NodesPerShard <= 0 {
		c.NodesPerShard = 3
	}
	if c.ReconfigureEvery <= 0 {
		c.ReconfigureEvery = 500 * time.Millisecond
	}
	if c.ReconfigurePause <= 0 {
		c.ReconfigurePause = 150 * time.Millisecond
	}
	return c
}

// Cluster is a running AHL deployment.
type Cluster struct {
	cfg    Config
	net    *cluster.Network
	shards []*shard
	part   sharding.Partitioner
	coord  *twopc.ReplicatedCoordinator
	coordN []*pbft.Node
	recfg  *sharding.Reconfigurer
	txSeq  atomic.Uint64

	closeOne sync.Once
}

var _ system.System = (*Cluster)(nil)

// shard is one PBFT committee plus its slice of the key space. Committed
// state lives in the shared striped state layer, which cross-shard
// simulation reads concurrently; the 2PC bookkeeping (prepared writes and
// prepare locks) plus the height counter are owned exclusively by the
// primary applier goroutine and need no lock.
type shard struct {
	idx     int
	nodes   []*pbft.Node
	waiters *system.Waiters
	box     *system.PayloadBox

	st *state.Store
	// prepared holds writes locked by in-flight cross-shard transactions.
	prepared map[string][]txn.Write
	locks    map[string]string // key → txID holding the prepare lock
	height   uint64

	reg    *contract.Registry
	stopCh chan struct{}
	wg     sync.WaitGroup
	seq    atomic.Uint64
}

// shardCmd is the payload sequenced through a shard's PBFT group.
type shardCmd struct {
	kind    cmdKind
	reqID   uint64
	txID    string
	inv     txn.Invocation
	writes  []txn.Write
	commitP bool // 2PC phase-2 verdict
}

type cmdKind int

const (
	cmdExecute cmdKind = iota // single-shard transaction
	cmdPrepare                // 2PC phase 1: lock + buffer writes
	cmdFinish                 // 2PC phase 2: commit or abort
)

// New assembles and starts an AHL cluster.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:  cfg,
		net:  cluster.NewNetwork(cfg.Link),
		part: sharding.HashPartitioner{N: cfg.Shards},
	}
	nodeIDs := make([]int, 0, cfg.Shards*cfg.NodesPerShard)
	for s := 0; s < cfg.Shards; s++ {
		var eng storage.Engine = memdb.New()
		if cfg.engineHook != nil {
			eng = cfg.engineHook(eng)
		}
		sh := &shard{
			idx:      s,
			waiters:  system.NewWaiters(),
			box:      system.NewPayloadBox(),
			st:       state.New(eng, 0),
			prepared: make(map[string][]txn.Write),
			locks:    make(map[string]string),
			reg:      contract.NewRegistry(contract.KV{}, contract.Smallbank{}),
			stopCh:   make(chan struct{}),
		}
		peers := make([]cluster.NodeID, cfg.NodesPerShard)
		for i := range peers {
			id := cluster.NodeID(200000 + s*1000 + i)
			peers[i] = id
			nodeIDs = append(nodeIDs, int(id))
		}
		for _, id := range peers {
			sh.nodes = append(sh.nodes, pbft.New(pbft.Config{
				ID: id, Peers: peers, Endpoint: c.net.Register(id, 8192),
			}))
		}
		for _, n := range sh.nodes {
			sh.wg.Add(1)
			go sh.applyLoop(n, c)
		}
		c.shards = append(c.shards, sh)
	}
	// The reference committee: a separate PBFT group acting as the
	// replicated 2PC coordinator.
	coordPeers := make([]cluster.NodeID, 4)
	for i := range coordPeers {
		coordPeers[i] = cluster.NodeID(300000 + i)
	}
	for _, id := range coordPeers {
		c.coordN = append(c.coordN, pbft.New(pbft.Config{
			ID: id, Peers: coordPeers, Endpoint: c.net.Register(id, 8192),
		}))
	}
	c.coord = twopc.NewReplicatedCoordinator(c.coordN[0])
	if cfg.Reconfigure {
		c.recfg = sharding.NewReconfigurer(nodeIDs, cfg.Shards,
			cfg.ReconfigureEvery, cfg.ReconfigurePause)
	}
	return c
}

// Name implements system.System.
func (c *Cluster) Name() string {
	if c.cfg.Reconfigure {
		return "ahl-periodic"
	}
	return "ahl-fixed"
}

// applyLoop consumes one PBFT replica's commits through the shared block
// pipeline. Only the first replica's loop mutates shard state and
// resolves waiters (they all deliver the same order; mutating once stands
// in for each replica holding its own copy, and keeps the memory
// footprint of large experiments manageable); the redundant replica
// streams ride pipeline.Drain so they never backpressure the group. A
// shard's unit of work is a single sequenced command — 2PC phases
// interleave with execution, so there is no stateless stage to fan out —
// which makes this the pipeline's degenerate depth-1 instantiation.
func (sh *shard) applyLoop(n *pbft.Node, c *Cluster) {
	defer sh.wg.Done()
	if n != sh.nodes[0] {
		pipeline.Drain(n.Committed(), sh.stopCh)
		return
	}
	pipe := pipeline.New(pipeline.Config{Workers: 1, Depth: 1},
		pipeline.Stages[consensus.Entry, *shardCmd]{
			Decode: sh.decodeCmd,
			Apply:  func(cmd *shardCmd) { sh.apply(cmd, c) },
		})
	pipe.Run(n.Committed(), sh.stopCh)
}

// decodeCmd resolves a committed entry's payload handle (pipeline Decode
// stage); view-change no-ops are skipped.
func (sh *shard) decodeCmd(e consensus.Entry) (*shardCmd, bool) {
	if len(e.Data) == 0 {
		return nil, false // view-change no-op
	}
	id, ok := system.HandleID(e.Data)
	if !ok {
		return nil, false
	}
	v, ok := sh.box.Take(id)
	if !ok {
		return nil, false
	}
	return v.(*shardCmd), true
}

// apply sequences one shard command (pipeline Apply stage).
func (sh *shard) apply(cmd *shardCmd, c *Cluster) {
	sh.height++
	switch cmd.kind {
	case cmdExecute:
		rw, err := sh.reg.Execute(sh.st, cmd.inv)
		if err != nil {
			sh.waiters.Resolve(waitKey(cmd.reqID), system.Result{Err: err})
			return
		}
		// Respect prepare locks: serial execution must not overwrite a
		// key a cross-shard transaction holds.
		for _, w := range rw.Writes {
			if _, locked := sh.locks[w.Key]; locked {
				sh.waiters.Resolve(waitKey(cmd.reqID),
					system.Result{Reason: occ.WriteWriteConflict})
				return
			}
		}
		if err := sh.applyWrites(rw.Writes); err != nil {
			sh.waiters.Resolve(waitKey(cmd.reqID), system.Result{Err: err})
			return
		}
		sh.waiters.Resolve(waitKey(cmd.reqID), system.Result{Committed: true})
	case cmdPrepare:
		for _, w := range cmd.writes {
			if holder, locked := sh.locks[w.Key]; locked && holder != cmd.txID {
				sh.waiters.Resolve(waitKey(cmd.reqID),
					system.Result{Reason: occ.WriteWriteConflict})
				return
			}
		}
		for _, w := range cmd.writes {
			sh.locks[w.Key] = cmd.txID
		}
		sh.prepared[cmd.txID] = cmd.writes
		sh.waiters.Resolve(waitKey(cmd.reqID), system.Result{Committed: true})
	case cmdFinish:
		writes := sh.prepared[cmd.txID]
		delete(sh.prepared, cmd.txID)
		for _, w := range writes {
			if sh.locks[w.Key] == cmd.txID {
				delete(sh.locks, w.Key)
			}
		}
		if cmd.commitP {
			if err := sh.applyWrites(writes); err != nil {
				sh.waiters.Resolve(waitKey(cmd.reqID), system.Result{Err: err})
				return
			}
		}
		sh.waiters.Resolve(waitKey(cmd.reqID), system.Result{Committed: cmd.commitP})
	}
}

// applyWrites installs a command's writes at the shard's current
// height. A store failure is returned (not panicked) so apply can
// resolve the waiting client with the error.
func (sh *shard) applyWrites(writes []txn.Write) error {
	if len(writes) == 0 {
		return nil
	}
	ver := txn.Version{BlockNum: sh.height}
	vw := make([]state.VersionedWrite, len(writes))
	for i, w := range writes {
		vw[i] = state.VersionedWrite{Write: w, Version: ver}
	}
	if err := sh.st.ApplyBlock(vw); err != nil {
		return fmt.Errorf("ahl shard %d: apply: %w", sh.idx, err)
	}
	return nil
}

func waitKey(reqID uint64) string { return fmt.Sprintf("q%d", reqID) }

// sequence pushes a command through the shard's PBFT group and waits.
func (sh *shard) sequence(cmd *shardCmd) system.Result {
	cmd.reqID = sh.seq.Add(1)
	done := sh.waiters.Register(waitKey(cmd.reqID))
	id := sh.box.Put(cmd, 1) // only the primary applier takes it
	payload := system.EncodeHandle(id)
	deadline := time.Now().Add(30 * time.Second)
	for {
		proposed := false
		for _, n := range sh.nodes {
			if n.Propose(payload) == nil {
				proposed = true
				break
			}
		}
		if proposed {
			break
		}
		if time.Now().After(deadline) {
			sh.waiters.Cancel(waitKey(cmd.reqID))
			return system.Result{Err: errors.New("ahl: shard unavailable")}
		}
		//lint:allow sleepyloop bounded retry backoff while the shard group re-elects
		time.Sleep(time.Millisecond)
	}
	select {
	case r := <-done:
		return r
	case <-time.After(30 * time.Second):
		sh.waiters.Cancel(waitKey(cmd.reqID))
		return system.Result{Err: errors.New("ahl: shard timeout")}
	}
}

// Execute implements system.System as the thin Submit+Wait wrapper.
func (c *Cluster) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(c, t)
}

// Submit implements system.System by running the blocking path on its own
// goroutine (this system has no mempool-fed path).
func (c *Cluster) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return system.GoSubmit(func() system.Result { return c.execute(t) }), nil
}

// execute is the blocking path.
func (c *Cluster) execute(t *txn.Tx) system.Result {
	// Reconfiguration pause: the whole system holds transactions during
	// shard handoff.
	if c.recfg != nil {
		for {
			_, paused := c.recfg.Current()
			if !paused {
				break
			}
			//lint:allow sleepyloop reconfiguration pause poll, the shard-handoff cost model
			time.Sleep(time.Millisecond)
		}
	}
	keys := invocationKeys(t.Invocation)
	shardSet := map[int]bool{}
	for _, k := range keys {
		shardSet[c.part.Shard(k)] = true
	}
	if len(shardSet) <= 1 {
		// Single-shard: sequence directly in the shard's PBFT group.
		shardIdx := 0
		for s := range shardSet {
			shardIdx = s
		}
		start := time.Now()
		r := c.shards[shardIdx].sequence(&shardCmd{kind: cmdExecute, inv: t.Invocation})
		t.Trace.Observe("consensus", time.Since(start))
		return r
	}
	return c.crossShard(t, shardSet)
}

// crossShard runs execute-at-owner + BFT-coordinated 2PC.
func (c *Cluster) crossShard(t *txn.Tx, shardSet map[int]bool) system.Result {
	// Simulate the transaction against a cross-shard read view to obtain
	// its writes. The read is not serialized with the shards' pipelines;
	// the prepare locks re-validate ownership at commit time.
	rw, err := c.simulate(t.Invocation)
	if err != nil {
		if errors.Is(err, contract.ErrAbort) {
			return system.Result{Reason: occ.OK, Err: err}
		}
		return system.Result{Err: err}
	}
	// Partition writes by shard.
	byShard := map[int][]txn.Write{}
	for _, w := range rw.Writes {
		s := c.part.Shard(w.Key)
		byShard[s] = append(byShard[s], w)
	}
	txID := fmt.Sprintf("x%d", c.txSeq.Add(1))
	parts := make([]twopc.Participant, 0, len(byShard))
	for s, writes := range byShard {
		parts = append(parts, &shardParticipant{sh: c.shards[s], writes: writes})
	}
	start := time.Now()
	err = c.coord.Run(txID, parts)
	t.Trace.Observe("2pc", time.Since(start))
	if errors.Is(err, twopc.ErrAborted) {
		return system.Result{Reason: occ.WriteWriteConflict}
	}
	if err != nil {
		return system.Result{Err: err}
	}
	return system.Result{Committed: true}
}

// simulate executes the invocation against the union of shard states.
func (c *Cluster) simulate(inv txn.Invocation) (txn.RWSet, error) {
	view := &unionState{c: c}
	reg := c.shards[0].reg
	return reg.Execute(view, inv)
}

type unionState struct{ c *Cluster }

// GetState implements contract.StateReader across shards; the striped
// stores make this safe without serializing against the shard pipelines.
func (u *unionState) GetState(key string) ([]byte, txn.Version, error) {
	return u.c.shards[u.c.part.Shard(key)].st.GetState(key)
}

// shardParticipant adapts a shard to the 2PC participant interface; each
// phase is sequenced through the shard's PBFT group.
type shardParticipant struct {
	sh     *shard
	writes []txn.Write
}

// Prepare implements twopc.Participant.
func (p *shardParticipant) Prepare(txID string) (twopc.Vote, error) {
	r := p.sh.sequence(&shardCmd{kind: cmdPrepare, txID: txID, writes: p.writes})
	if r.Err != nil {
		return twopc.VoteAbort, r.Err
	}
	if !r.Committed {
		return twopc.VoteAbort, nil
	}
	return twopc.VoteCommit, nil
}

// Commit implements twopc.Participant.
func (p *shardParticipant) Commit(txID string) error {
	r := p.sh.sequence(&shardCmd{kind: cmdFinish, txID: txID, commitP: true})
	return r.Err
}

// Abort implements twopc.Participant.
func (p *shardParticipant) Abort(txID string) error {
	r := p.sh.sequence(&shardCmd{kind: cmdFinish, txID: txID, commitP: false})
	return r.Err
}

// invocationKeys extracts the keys an invocation touches, for routing.
func invocationKeys(inv txn.Invocation) []string {
	switch inv.Contract {
	case contract.KVName:
		switch inv.Method {
		case "get", "put", "modify":
			return []string{string(inv.Args[0])}
		case "multi":
			keys := make([]string, 0, len(inv.Args)/2)
			for i := 0; i < len(inv.Args); i += 2 {
				keys = append(keys, string(inv.Args[i]))
			}
			return keys
		}
	case contract.SmallbankName:
		switch inv.Method {
		case "send_payment", "amalgamate":
			return []string{
				"sav:" + string(inv.Args[0]), "chk:" + string(inv.Args[0]),
				"sav:" + string(inv.Args[1]), "chk:" + string(inv.Args[1]),
			}
		default:
			return []string{"sav:" + string(inv.Args[0]), "chk:" + string(inv.Args[0])}
		}
	}
	return nil
}

// ReadState returns the committed value of key, routed to its owning
// shard — the uniform inspection surface the shared state layer provides.
func (c *Cluster) ReadState(key string) ([]byte, bool) {
	v, _, err := c.shards[c.part.Shard(key)].st.Get(key)
	return v, err == nil
}

// ShardState exposes shard i's striped state store (tests and inspection).
func (c *Cluster) ShardState(i int) *state.Store { return c.shards[i].st }

// Rotations reports completed reconfigurations (0 when disabled).
func (c *Cluster) Rotations() int {
	if c.recfg == nil {
		return 0
	}
	return c.recfg.Rotations()
}

// Close implements system.System.
func (c *Cluster) Close() {
	c.closeOne.Do(func() {
		c.coord.Close()
		for _, n := range c.coordN {
			n.Stop()
		}
		for _, sh := range c.shards {
			close(sh.stopCh)
		}
		for _, sh := range c.shards {
			for _, n := range sh.nodes {
				n.Stop()
			}
			sh.wg.Wait()
			sh.st.Close()
		}
		c.net.Close()
	})
}
