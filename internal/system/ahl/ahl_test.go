package ahl

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/txn"
)

func clusterUp(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

func kvTx(t *testing.T, client *cryptoutil.Signer, method string, args ...string) *txn.Tx {
	t.Helper()
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	tx, err := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: method, Args: raw})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestSingleShardCommit(t *testing.T) {
	c := clusterUp(t, Config{Shards: 2, NodesPerShard: 4})
	client := cryptoutil.MustNewSigner("client")
	if r := c.Execute(kvTx(t, client, "put", "alpha", "1")); !r.Committed {
		t.Fatalf("put: %+v", r)
	}
	if r := c.Execute(kvTx(t, client, "get", "alpha")); !r.Committed {
		t.Fatalf("get: %+v", r)
	}
}

func TestCrossShardTransactionAtomic(t *testing.T) {
	c := clusterUp(t, Config{Shards: 4, NodesPerShard: 4})
	client := cryptoutil.MustNewSigner("client")
	// Find two keys living on different shards.
	var k1, k2 string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if k1 == "" {
			k1 = k
			continue
		}
		if c.part.Shard(k) != c.part.Shard(k1) {
			k2 = k
			break
		}
	}
	r := c.Execute(kvTx(t, client, "multi", k1, "v1", k2, "v2"))
	if !r.Committed {
		t.Fatalf("cross-shard multi: %+v", r)
	}
	// Both writes visible.
	for _, k := range []string{k1, k2} {
		if _, ok := c.ReadState(k); !ok {
			t.Fatalf("key %s missing after cross-shard commit", k)
		}
	}
}

func TestSmallbankOnShards(t *testing.T) {
	c := clusterUp(t, Config{Shards: 2, NodesPerShard: 4})
	client := cryptoutil.MustNewSigner("client")
	create := func(id string) {
		tx, _ := txn.Sign(client, txn.Invocation{Contract: contract.SmallbankName,
			Method: "create_account",
			Args:   [][]byte{[]byte(id), contract.EncodeInt64(100), contract.EncodeInt64(50)}})
		if r := c.Execute(tx); !r.Committed {
			t.Fatalf("create %s: %+v", id, r)
		}
	}
	create("a1")
	create("a2")
	pay, _ := txn.Sign(client, txn.Invocation{Contract: contract.SmallbankName,
		Method: "send_payment",
		Args:   [][]byte{[]byte("a1"), []byte("a2"), contract.EncodeInt64(25)}})
	if r := c.Execute(pay); !r.Committed {
		t.Fatalf("payment: %+v", r)
	}
	// Balance conservation across shards.
	total := int64(0)
	for _, sh := range c.shards {
		sh.st.Range(func(k string, v []byte) bool {
			if len(k) > 4 && (k[:4] == "chk:" || k[:4] == "sav:") {
				total += contract.DecodeInt64(v)
			}
			return true
		})
	}
	if total != 300 {
		t.Fatalf("total balance = %d, want 300", total)
	}
}

func TestReconfigurationRotates(t *testing.T) {
	c := clusterUp(t, Config{
		Shards: 2, NodesPerShard: 4, Reconfigure: true,
		ReconfigureEvery: 50 * time.Millisecond, ReconfigurePause: 10 * time.Millisecond,
	})
	client := cryptoutil.MustNewSigner("client")
	deadline := time.Now().Add(10 * time.Second)
	for c.Rotations() < 2 && time.Now().Before(deadline) {
		if r := c.Execute(kvTx(t, client, "put", "k", "v")); r.Err != nil {
			t.Fatalf("put during reconfig: %v", r.Err)
		}
	}
	if c.Rotations() < 2 {
		t.Fatal("reconfiguration never rotated")
	}
}

func TestNames(t *testing.T) {
	fixed := clusterUp(t, Config{Shards: 1, NodesPerShard: 4})
	if fixed.Name() != "ahl-fixed" {
		t.Fatalf("Name = %q", fixed.Name())
	}
	periodic := clusterUp(t, Config{Shards: 1, NodesPerShard: 4, Reconfigure: true,
		ReconfigureEvery: time.Hour, ReconfigurePause: time.Millisecond})
	if periodic.Name() != "ahl-periodic" {
		t.Fatalf("Name = %q", periodic.Name())
	}
}
