// End-to-end check of the parallel block pipeline inside the real
// systems: Fabric, Quorum, and Veritas run with explicit multi-worker
// validation and cross-block pipelining under a concurrent, conflicting
// Smallbank workload. Every replica consumes the identical block sequence
// through its own parallel pipeline, so byte-identical state across
// replicas proves the parallel path is deterministic and
// serial-equivalent where it matters — a replica that speculated wrongly
// or published a wave out of order diverges. Money conservation (every
// committed transfer moves value, never creates it) guards the verdicts
// themselves. Run with -race this also proves the pipeline's stages don't
// share state unsafely. The primitive-level serial-vs-parallel proof
// lives in internal/pipeline's equivalence tests.
package system_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/state"
	"dichotomy/internal/system"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
)

const (
	pipeAccounts = 3
	pipeWorkers  = 4
	pipeIters    = 10
	pipeInitial  = int64(1000)
)

func pipeAccount(i int) string { return fmt.Sprintf("pacct%d", i%pipeAccounts) }

func dumpState(st *state.Store) map[string]string {
	out := make(map[string]string)
	st.Range(func(key string, value []byte) bool {
		ver, _ := st.CommittedVersion(key)
		out[key] = fmt.Sprintf("%x@%d.%d", value, ver.BlockNum, ver.TxNum)
		return true
	})
	return out
}

func dumpsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestParallelPipelineReplicaConsistency(t *testing.T) {
	client := cryptoutil.MustNewSigner("pipe-client")
	cases := []struct {
		name   string
		build  func(t *testing.T) system.System
		states func(sys system.System) []*state.Store
	}{
		{
			name: "fabric",
			build: func(t *testing.T) system.System {
				nw, err := fabric.New(fabric.Config{
					Peers:             4,
					ValidationWorkers: pipeWorkers,
					PipelineDepth:     3,
				})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			states: func(sys system.System) []*state.Store {
				nw := sys.(*fabric.Network)
				out := make([]*state.Store, 4)
				for i := range out {
					out[i] = nw.State(i)
				}
				return out
			},
		},
		{
			name: "quorum",
			build: func(t *testing.T) system.System {
				nw, err := quorum.New(quorum.Config{
					Nodes:            4,
					ExecutionWorkers: pipeWorkers,
					PipelineDepth:    3,
				})
				if err != nil {
					t.Fatal(err)
				}
				nw.RegisterClient(client.Name(), client.Public())
				return nw
			},
			states: func(sys system.System) []*state.Store {
				nw := sys.(*quorum.Network)
				out := make([]*state.Store, 4)
				for i := range out {
					out[i] = nw.State(i)
				}
				return out
			},
		},
		{
			name: "veritas",
			build: func(t *testing.T) system.System {
				v, err := hybrid.NewVeritas(hybrid.VeritasConfig{
					Verifiers:         3,
					ValidationWorkers: pipeWorkers,
					PipelineDepth:     3,
				})
				if err != nil {
					t.Fatal(err)
				}
				return v
			},
			states: func(sys system.System) []*state.Store {
				v := sys.(*hybrid.Veritas)
				out := make([]*state.Store, 3)
				for i := range out {
					out[i] = v.State(i)
				}
				return out
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := tc.build(t)
			defer sys.Close()

			for i := 0; i < pipeAccounts; i++ {
				r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
					pipeAccount(i), string(contract.EncodeInt64(pipeInitial)),
					string(contract.EncodeInt64(pipeInitial))))
				if r.Err != nil || !r.Committed {
					t.Fatalf("create_account %d: %+v", i, r)
				}
			}

			// Conflicting transfers over the hot accounts. Amounts vary per
			// worker and iteration: transaction IDs are content hashes, so
			// identical concurrent invocations would collide in the waiter
			// map. send_payment conserves total balance whether it commits
			// or aborts, which pins the verdicts' integrity below.
			var wg sync.WaitGroup
			for w := 0; w < pipeWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < pipeIters; i++ {
						src := pipeAccount(w + i)
						dst := pipeAccount(w + i + 1)
						amt := string(contract.EncodeInt64(int64(1 + w*pipeIters + i)))
						r := sys.Execute(signTx(t, client, contract.SmallbankName,
							"send_payment", src, dst, amt))
						if r.Err != nil && !errors.Is(r.Err, contract.ErrAbort) {
							t.Errorf("worker %d tx %d: %v", w, i, r.Err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			// Replicas consume the same blocks independently; wait for the
			// laggards, then require byte-identical state everywhere.
			stores := tc.states(sys)
			deadline := time.Now().Add(15 * time.Second)
			var dumps []map[string]string
			for {
				dumps = dumps[:0]
				for _, st := range stores {
					dumps = append(dumps, dumpState(st))
				}
				equal := true
				for i := 1; i < len(dumps); i++ {
					if !dumpsEqual(dumps[0], dumps[i]) {
						equal = false
						break
					}
				}
				if equal {
					break
				}
				if time.Now().After(deadline) {
					for i, d := range dumps {
						t.Logf("replica %d: %v", i, d)
					}
					t.Fatal("replica states diverged under the parallel pipeline")
				}
				time.Sleep(20 * time.Millisecond)
			}

			// Conservation: committed transfers move money, never mint it.
			var total int64
			for i := 0; i < pipeAccounts; i++ {
				for _, prefix := range []string{"chk:", "sav:"} {
					v, _, err := stores[0].Get(prefix + pipeAccount(i))
					if err != nil {
						t.Fatalf("read %s%s: %v", prefix, pipeAccount(i), err)
					}
					total += contract.DecodeInt64(v)
				}
			}
			if want := 2 * pipeInitial * pipeAccounts; total != want {
				t.Fatalf("total balance %d, want %d — a parallel verdict diverged", total, want)
			}
		})
	}
}
