package system

import (
	"sync"
	"testing"
	"testing/quick"

	"dichotomy/internal/occ"
)

func TestHandleRoundTrip(t *testing.T) {
	f := func(id uint64) bool {
		got, ok := HandleID(EncodeHandle(id))
		return ok && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandleIDRejectsBadLength(t *testing.T) {
	if _, ok := HandleID([]byte{1, 2, 3}); ok {
		t.Fatal("short handle accepted")
	}
	if _, ok := HandleID(nil); ok {
		t.Fatal("nil handle accepted")
	}
}

func TestPayloadBoxRefCounting(t *testing.T) {
	box := NewPayloadBox()
	id := box.Put("payload", 3)
	for i := 0; i < 3; i++ {
		v, ok := box.Take(id)
		if !ok || v.(string) != "payload" {
			t.Fatalf("take %d failed: %v %v", i, v, ok)
		}
	}
	if _, ok := box.Take(id); ok {
		t.Fatal("fourth take succeeded")
	}
	if box.Len() != 0 {
		t.Fatalf("Len = %d after exhaustion", box.Len())
	}
}

func TestPayloadBoxDistinctHandles(t *testing.T) {
	box := NewPayloadBox()
	a := box.Put("a", 1)
	b := box.Put("b", 1)
	if a == b {
		t.Fatal("duplicate handles")
	}
	va, _ := box.Take(a)
	vb, _ := box.Take(b)
	if va.(string) != "a" || vb.(string) != "b" {
		t.Fatal("payloads crossed")
	}
}

func TestPayloadBoxConcurrent(t *testing.T) {
	box := NewPayloadBox()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := box.Put(i, 1)
				if _, ok := box.Take(id); !ok {
					t.Error("lost payload")
					return
				}
			}
		}()
	}
	wg.Wait()
	if box.Len() != 0 {
		t.Fatalf("Len = %d, want 0", box.Len())
	}
}

func TestWaitersResolve(t *testing.T) {
	w := NewWaiters()
	ch := w.Register("tx1")
	w.Resolve("tx1", Result{Committed: true})
	r := <-ch
	if !r.Committed {
		t.Fatalf("r = %+v", r)
	}
	// Double-resolve must be a no-op, not a panic or double send.
	w.Resolve("tx1", Result{Committed: false})
}

func TestWaitersResolveUnknownKey(t *testing.T) {
	w := NewWaiters()
	w.Resolve("ghost", Result{}) // must not panic or block
}

func TestWaitersCancel(t *testing.T) {
	w := NewWaiters()
	ch := w.Register("tx1")
	w.Cancel("tx1")
	w.Resolve("tx1", Result{Committed: true})
	select {
	case r := <-ch:
		t.Fatalf("cancelled waiter got %+v", r)
	default:
	}
}

func TestResultZeroValue(t *testing.T) {
	var r Result
	if r.Committed || r.Reason != occ.OK || r.Err != nil {
		t.Fatalf("zero Result not neutral: %+v", r)
	}
}
