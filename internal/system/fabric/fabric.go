// Package fabric models Hyperledger Fabric v2.2, the paper's
// execute-order-validate blockchain.
//
// Transaction lifecycle (paper Fig 3b):
//
//  1. The client sends the proposal to every peer (the experiments set the
//     endorsement policy to all peers). Each peer authenticates the client,
//     simulates the chaincode against its committed state — concurrently,
//     execution is not serialized here — and signs the resulting read/write
//     set (endorsement).
//  2. The client checks that all endorsements report identical read sets;
//     divergence is the "inconsistent read" abort of Fig 10.
//  3. The assembled transaction goes to the ordering service (three Raft
//     orderers behind a shared-log facade), which batches it into blocks.
//  4. Every peer pulls blocks and validates them through the shared
//     block pipeline (internal/pipeline). By default validation is
//     serial, as in the modelled system — endorsement signature checks
//     are the 42%-of-validation cost Fig 8 identifies. With
//     ValidationWorkers > 1 the signature checks fan out across a worker
//     pool (and overlap the previous block's commit at PipelineDepth
//     ≥ 2), and the MVCC read-set check runs as key-scheduled waves
//     with verdicts identical to the serial block order; stale reads
//     abort (read-write conflicts). Valid writes commit to the
//     LSM-backed state as one batch. Fabric v2 has no Merkle index on
//     state — tamper evidence comes from the ledger alone.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/ledger"
	"dichotomy/internal/metrics"
	"dichotomy/internal/occ"
	"dichotomy/internal/pipeline"
	"dichotomy/internal/sharedlog"
	"dichotomy/internal/state"
	"dichotomy/internal/storage/lsm"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

// Config assembles a Fabric network.
type Config struct {
	// Peers is the number of endorsing/committing peers.
	Peers int
	// Orderers is the ordering service size (paper fixes 3).
	Orderers int
	// BlockSize caps transactions per block. Default 100.
	BlockSize int
	// BlockTimeout cuts a non-full block. Default 5ms.
	BlockTimeout time.Duration
	// EndorsementsNeeded is how many endorsements a transaction must carry
	// to validate; the paper's policy requires all peers. 0 means all.
	EndorsementsNeeded int
	// ValidationWorkers sizes each peer's block-validation worker pool
	// (endorsement signature checks and MVCC wave scheduling). ≤ 0
	// selects 1 — the paper's serial validation, so the modelled system
	// stays faithful unless parallelism is asked for (the blockshape
	// experiment sweeps it).
	ValidationWorkers int
	// PipelineDepth is how many blocks a peer keeps in flight: validation
	// of block N+1 overlaps commit of block N at depth ≥ 2. ≤ 0 selects
	// 1 — no cross-block overlap, as in the real system.
	PipelineDepth int
	// Link models the network; nil = zero latency.
	Link cluster.LinkModel
	// Contracts deployed on all peers. Default: KV and Smallbank.
	Contracts []contract.Contract
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 4
	}
	if c.Orderers <= 0 {
		c.Orderers = 3
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 100
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 5 * time.Millisecond
	}
	if c.ValidationWorkers <= 0 {
		c.ValidationWorkers = 1
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	if c.Contracts == nil {
		c.Contracts = []contract.Contract{contract.KV{}, contract.Smallbank{}}
	}
	return c
}

// Network is a running Fabric deployment.
type Network struct {
	cfg      Config
	net      *cluster.Network
	peers    []*peer
	ordering *sharedlog.Service
	box      *system.PayloadBox
	waiters  *system.Waiters
	clients  sync.Map // name → cryptoutil.PublicKey
	peerKeys map[string]cryptoutil.PublicKey

	// Breakdown aggregates validate-phase sub-costs for Fig 8.
	Breakdown *metrics.Breakdown

	rr       atomic.Uint64 // round-robin query routing
	closeOne sync.Once
}

var _ system.System = (*Network)(nil)

// peer is one endorsing/committing peer. Committed state lives in the
// shared striped state layer: endorsement simulates against a consistent
// snapshot while validation and block commit go through the store's
// grouped batch path, so signature verification no longer serializes
// endorsements behind a global state lock. Block processing runs on the
// shared staged pipeline: signature verification fans out across the
// validation worker pool (and overlaps the previous block's commit at
// depth ≥ 2), while the MVCC check and state/ledger commit stay in
// strict block order on the committer side.
type peer struct {
	name     string
	nw       *Network
	signer   *cryptoutil.Signer
	reg      *contract.Registry
	ledger   *ledger.Ledger
	st       *state.Store
	consumer *sharedlog.Consumer
	pipe     *pipeline.Pipeline[sharedlog.Batch, *fabricBlock]
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// fabricBlock is one decoded block moving through a peer's pipeline.
type fabricBlock struct {
	txs      []*txn.Tx
	verdicts []occ.AbortReason
	// valDur and applyStart together measure the validate phase as time
	// spent in the Validate and Apply/Seal stages only — at depth ≥ 2 a
	// block can also sit queued behind its predecessor's commit, and that
	// wait is pipeline occupancy, not validation cost.
	valDur     time.Duration
	applyStart time.Time
	sigNanos   atomic.Int64 // summed endorsement-verification CPU time
	// commitErr surfaces a failed state or ledger commit to the block's
	// clients instead of panicking the peer.
	commitErr error
}

// New assembles and starts a Fabric network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	nw := &Network{
		cfg:       cfg,
		net:       cluster.NewNetwork(cfg.Link),
		box:       system.NewPayloadBox(),
		waiters:   system.NewWaiters(),
		peerKeys:  make(map[string]cryptoutil.PublicKey),
		Breakdown: metrics.NewBreakdown(),
	}
	nw.ordering = sharedlog.New(sharedlog.Config{
		Net:          nw.net,
		NodeBase:     10000,
		Orderers:     cfg.Orderers,
		BatchSize:    cfg.BlockSize,
		BatchTimeout: cfg.BlockTimeout,
	})
	for i := 0; i < cfg.Peers; i++ {
		name := fmt.Sprintf("peer%d", i)
		signer, err := cryptoutil.NewSigner(name)
		if err != nil {
			return nil, err
		}
		p := &peer{
			name:   name,
			nw:     nw,
			signer: signer,
			reg:    contract.NewRegistry(cfg.Contracts...),
			ledger: ledger.New(),
			st:     state.New(lsm.MustOpenMemory(), 0),
			stopCh: make(chan struct{}),
		}
		p.pipe = pipeline.New(pipeline.Config{
			Workers: cfg.ValidationWorkers,
			Depth:   cfg.PipelineDepth,
		}, pipeline.Stages[sharedlog.Batch, *fabricBlock]{
			Decode:   p.decodeBlock,
			Validate: p.validateBlock,
			Apply:    p.applyBlock,
			Seal:     p.sealBlock,
		})
		nw.peerKeys[name] = signer.Public()
		nw.peers = append(nw.peers, p)
	}
	for _, p := range nw.peers {
		p.consumer = nw.ordering.Subscribe(1)
		p.wg.Add(1)
		go p.commitLoop()
	}
	return nw, nil
}

// Name implements system.System.
func (nw *Network) Name() string { return "fabric" }

// RegisterClient makes a client identity known to all peers.
func (nw *Network) RegisterClient(name string, pub cryptoutil.PublicKey) {
	nw.clients.Store(name, pub)
}

// needed returns the endorsement threshold.
func (nw *Network) needed() int {
	if nw.cfg.EndorsementsNeeded > 0 {
		return nw.cfg.EndorsementsNeeded
	}
	return len(nw.peers)
}

// Execute implements system.System: the full execute-order-validate
// lifecycle for updates; local simulation for read-only invocations.
func (nw *Network) Execute(t *txn.Tx) system.Result {
	readOnly := t.Invocation.Method == "get" || t.Invocation.Method == "query"
	if readOnly {
		// Queries hit a single peer and are never ordered; the dominant
		// cost is client authentication (Fig 8b).
		p := nw.peers[int(nw.rr.Add(1))%len(nw.peers)]
		if _, _, err := p.endorse(t); err != nil {
			return system.Result{Err: err}
		}
		return system.Result{Committed: true, Value: p.readValue(t.Invocation)}
	}

	// Phase 1: endorsement — all peers simulate concurrently.
	type endorsement struct {
		rw  txn.RWSet
		sig cryptoutil.Signature
		err error
	}
	results := make([]endorsement, len(nw.peers))
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range nw.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			results[i].rw, results[i].sig, results[i].err = p.endorse(t)
		}(i, p)
	}
	wg.Wait()
	t.Trace.Observe(metrics.PhaseProposal, time.Since(start))
	for _, r := range results {
		if r.err != nil {
			return system.Result{Err: r.err}
		}
	}
	// Client-side consistency check across endorsers.
	sets := make([]txn.RWSet, len(results))
	for i, r := range results {
		sets[i] = r.rw
	}
	if !occ.ConsistentReads(sets) {
		return system.Result{Reason: occ.InconsistentRead}
	}

	// Assemble: adopt the first simulation result plus all signatures.
	t.RWSet = results[0].rw
	t.Endorsements = t.Endorsements[:0]
	for i, p := range nw.peers {
		t.Endorsements = append(t.Endorsements, txn.Endorsement{Peer: p.name, Sig: results[i].sig})
	}

	// Phase 2: ordering.
	done := nw.waiters.Register(string(t.ID[:]))
	orderStart := time.Now()
	id := nw.box.Put(t, len(nw.peers))
	if err := nw.ordering.Append(system.Handle(id)); err != nil {
		nw.waiters.Cancel(string(t.ID[:]))
		return system.Result{Err: err}
	}
	select {
	case r := <-done:
		t.Trace.Observe(metrics.PhaseOrder, time.Since(orderStart))
		return r
	case <-time.After(60 * time.Second):
		nw.waiters.Cancel(string(t.ID[:]))
		return system.Result{Err: errors.New("fabric: commit timeout")}
	}
}

// readValue extracts a point-read result for KV queries.
func (p *peer) readValue(inv txn.Invocation) []byte {
	if inv.Contract != "kv" || inv.Method != "get" || len(inv.Args) != 1 {
		return nil
	}
	v, _, err := p.st.Get(string(inv.Args[0]))
	if err != nil {
		return nil
	}
	return v
}

// endorse authenticates, simulates, and signs on one peer.
func (p *peer) endorse(t *txn.Tx) (txn.RWSet, cryptoutil.Signature, error) {
	var authErr error
	t.Trace.Time(metrics.PhaseAuth, func() {
		pubAny, ok := p.nw.clients.Load(t.Client)
		if !ok {
			authErr = fmt.Errorf("fabric: unknown client %s", t.Client)
			return
		}
		authErr = t.VerifyClient(pubAny.(cryptoutil.PublicKey))
	})
	if authErr != nil {
		return txn.RWSet{}, cryptoutil.Signature{}, authErr
	}
	var rw txn.RWSet
	var simErr error
	t.Trace.Time(metrics.PhaseSimulate, func() {
		snap := p.st.Snapshot()
		defer snap.Release()
		rw, simErr = p.reg.Execute(snap, t.Invocation)
	})
	if simErr != nil {
		if errors.Is(simErr, contract.ErrAbort) {
			// Business rejection: endorse an empty effect; the client
			// counts it as an application abort.
			return txn.RWSet{}, cryptoutil.Signature{}, simErr
		}
		return txn.RWSet{}, cryptoutil.Signature{}, simErr
	}
	var sig cryptoutil.Signature
	var sigErr error
	t.Trace.Time(metrics.PhaseEndorse, func() {
		shadow := *t
		shadow.RWSet = rw
		sig, sigErr = p.signer.SignDigest(shadow.EndorsementDigest())
	})
	return rw, sig, sigErr
}

// commitLoop drives the peer's block pipeline over the ordering service's
// batch stream until shutdown.
func (p *peer) commitLoop() {
	defer p.wg.Done()
	p.pipe.Run(p.consumer.Batches(), p.stopCh)
}

// decodeBlock resolves a batch's payload handles into the block's
// transactions (pipeline Decode stage).
func (p *peer) decodeBlock(batch sharedlog.Batch) (*fabricBlock, bool) {
	txs := make([]*txn.Tx, 0, len(batch.Records))
	for _, rec := range batch.Records {
		id, ok := system.HandleID(rec)
		if !ok {
			continue
		}
		v, ok := p.nw.box.Take(id)
		if !ok {
			continue
		}
		txs = append(txs, v.(*txn.Tx))
	}
	if len(txs) == 0 {
		return nil, false
	}
	return &fabricBlock{txs: txs}, true
}

// validateBlock runs the stateless half of validation — the endorsement
// signature checks that dominate Fig 8 — across the worker pool (pipeline
// Validate stage). At depth ≥ 2 this overlaps the previous block's commit.
func (p *peer) validateBlock(b *fabricBlock) {
	start := time.Now()
	defer func() { b.valDur = time.Since(start) }()
	b.verdicts = make([]occ.AbortReason, len(b.txs))
	pipeline.Parallel(p.pipe.Workers(), len(b.txs), func(i int) {
		sigStart := time.Now()
		err := b.txs[i].VerifyEndorsements(func(name string) (cryptoutil.PublicKey, bool) {
			pub, ok := p.nw.peerKeys[name]
			return pub, ok
		}, p.nw.needed())
		b.sigNanos.Add(int64(time.Since(sigStart)))
		if err != nil {
			b.verdicts[i] = occ.InconsistentRead // endorsement failure
		}
	})
}

// applyBlock validates reads and commits state (pipeline Apply stage,
// strict block order). The MVCC check runs as key-scheduled waves with
// verdicts identical to the serial in-block-order pass; the commit loop
// is the store's only writer, so validating against the live store is
// stable without holding any lock across the block.
func (p *peer) applyBlock(b *fabricBlock) {
	b.applyStart = time.Now()
	blockNum := p.ledger.Height() + 1
	sets := make([]txn.RWSet, len(b.txs))
	for i, t := range b.txs {
		if b.verdicts[i] == occ.OK {
			sets[i] = t.RWSet
		}
	}
	mvccVerdicts := pipeline.ValidateWaves(sets, p.st, blockNum, p.pipe.Workers())
	for i := range b.verdicts {
		if b.verdicts[i] == occ.OK {
			b.verdicts[i] = mvccVerdicts[i]
		}
	}

	// Stage valid write sets and commit them as one block: grouped by
	// stripe, flushed through the engine's batch fast path. A failed
	// commit no longer panics the peer: the error travels to Seal, which
	// reports it to every client waiting on the block.
	blk := p.st.NewBlock()
	for i, t := range b.txs {
		if b.verdicts[i] != occ.OK {
			continue
		}
		blk.StageAll(t.RWSet.Writes, txn.Version{BlockNum: blockNum, TxNum: uint32(i)})
	}
	if err := blk.Commit(); err != nil {
		b.commitErr = fmt.Errorf("fabric %s: block commit: %w", p.name, err)
	}
}

// sealBlock appends the ledger block and resolves the waiting clients
// (pipeline Seal stage, strict block order).
func (p *peer) sealBlock(b *fabricBlock) {
	payloads := make([][]byte, len(b.txs))
	for i, t := range b.txs {
		payloads[i] = t.ID[:]
	}
	if b.commitErr == nil {
		var parent cryptoutil.Hash
		if head := p.ledger.Head(); head != nil {
			parent = head.Hash()
		}
		lb := &ledger.Block{
			Header: ledger.Header{
				Number:     p.ledger.Height() + 1,
				ParentHash: parent,
				TxRoot:     ledger.ComputeTxRoot(payloads),
			},
			Txs: payloads,
		}
		if err := p.ledger.Append(lb); err != nil {
			b.commitErr = fmt.Errorf("fabric %s: ledger append: %w", p.name, err)
		}
	}

	validate := b.valDur + time.Since(b.applyStart)
	p.nw.Breakdown.Observe(metrics.PhaseValidate, validate)
	p.nw.Breakdown.Observe("validate-sig", time.Duration(b.sigNanos.Load()))

	for i, t := range b.txs {
		t.Trace.Observe(metrics.PhaseValidate, validate)
		var r system.Result
		if b.commitErr != nil {
			r = system.Result{Reason: b.verdicts[i], Err: b.commitErr}
		} else {
			r = system.Result{Committed: b.verdicts[i] == occ.OK, Reason: b.verdicts[i]}
		}
		p.nw.waiters.Resolve(string(t.ID[:]), r)
	}
}

// State exposes peer i's striped state store (tests and inspection).
func (nw *Network) State(i int) *state.Store { return nw.peers[i].st }

// Ledger exposes peer i's ledger.
func (nw *Network) Ledger(i int) *ledger.Ledger { return nw.peers[i].ledger }

// StateBytes returns peer 0's state footprint; BlockBytes its ledger
// footprint (Fig 12's two series).
func (nw *Network) StateBytes() int64 { return nw.peers[0].st.ApproxSize() }

// BlockBytes returns peer 0's ledger storage footprint.
func (nw *Network) BlockBytes() int64 { return nw.peers[0].ledger.StorageSize() }

// Close implements system.System.
func (nw *Network) Close() {
	nw.closeOne.Do(func() {
		nw.ordering.Stop()
		for _, p := range nw.peers {
			close(p.stopCh)
		}
		for _, p := range nw.peers {
			p.wg.Wait()
			p.st.Close()
		}
		nw.net.Close()
	})
}
