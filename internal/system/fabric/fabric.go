// Package fabric models Hyperledger Fabric v2.2, the paper's
// execute-order-validate blockchain.
//
// Transaction lifecycle (paper Fig 3b):
//
//  1. The client sends the proposal to every peer (the experiments set the
//     endorsement policy to all peers). Each peer authenticates the client,
//     simulates the chaincode against its committed state — concurrently,
//     execution is not serialized here — and signs the resulting read/write
//     set (endorsement).
//  2. The client checks that all endorsements report identical read sets;
//     divergence is the "inconsistent read" abort of Fig 10.
//  3. The assembled transaction goes to the ordering service (three Raft
//     orderers behind a shared-log facade), which batches it into blocks.
//  4. Every peer pulls blocks and validates them through the shared
//     block pipeline (internal/pipeline). By default validation is
//     serial, as in the modelled system — endorsement signature checks
//     are the 42%-of-validation cost Fig 8 identifies. With
//     ValidationWorkers > 1 the signature checks fan out across a worker
//     pool (and overlap the previous block's commit at PipelineDepth
//     ≥ 2), and the MVCC read-set check runs as key-scheduled waves
//     with verdicts identical to the serial block order; stale reads
//     abort (read-write conflicts). Valid writes commit to the
//     LSM-backed state as one batch. Fabric v2 has no Merkle index on
//     state — tamper evidence comes from the ledger alone.
package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/authstate"
	"dichotomy/internal/cluster"
	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/ingress"
	"dichotomy/internal/ledger"
	"dichotomy/internal/metrics"
	"dichotomy/internal/occ"
	"dichotomy/internal/pipeline"
	"dichotomy/internal/recovery"
	"dichotomy/internal/sharedlog"
	"dichotomy/internal/state"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/lsm"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

// openEngine opens a peer's LSM state engine: disk-backed under dataDir
// when set, purely in-memory otherwise, wrapped by hook when one is
// configured (fault injection). Errors surface to the caller — node
// setup no longer panics on an open failure.
func openEngine(dataDir, name string, hook func(storage.Engine) storage.Engine) (storage.Engine, error) {
	opt := lsm.Options{}
	if dataDir != "" {
		opt.Dir = filepath.Join(dataDir, name, "state")
	}
	eng, err := lsm.Open(opt)
	if err != nil || hook == nil {
		return eng, err
	}
	return hook(eng), nil
}

func ckptDir(dataDir, name string) string {
	return filepath.Join(dataDir, name, "ckpt")
}

// Config assembles a Fabric network.
type Config struct {
	// Peers is the number of endorsing/committing peers.
	Peers int
	// Orderers is the ordering service size (paper fixes 3).
	Orderers int
	// BlockSize caps transactions per block. Default 100.
	BlockSize int
	// BlockTimeout cuts a non-full block. Default 5ms.
	BlockTimeout time.Duration
	// EndorsementsNeeded is how many endorsements a transaction must carry
	// to validate; the paper's policy requires all peers. 0 means all.
	EndorsementsNeeded int
	// ValidationWorkers sizes each peer's block-validation worker pool
	// (endorsement signature checks and MVCC wave scheduling). ≤ 0
	// selects 1 — the paper's serial validation, so the modelled system
	// stays faithful unless parallelism is asked for (the blockshape
	// experiment sweeps it).
	ValidationWorkers int
	// PipelineDepth is how many blocks a peer keeps in flight: validation
	// of block N+1 overlaps commit of block N at depth ≥ 2. ≤ 0 selects
	// 1 — no cross-block overlap, as in the real system.
	PipelineDepth int
	// DataDir, when set, puts each peer's LSM state on disk under
	// DataDir/peerN/state and its checkpoints under DataDir/peerN/ckpt.
	// Empty keeps peers memory-only, as before.
	DataDir string
	// CheckpointInterval writes a block-consistent checkpoint of state
	// (values and versions) every this many blocks, on the committer after
	// sealing. 0 disables checkpointing. Requires DataDir.
	CheckpointInterval uint64
	// CheckpointKeep is how many checkpoints each peer retains (older
	// ones are pruned; retention extends to the full snapshot a kept
	// delta depends on). ≤ 0 keeps 2. The recovery experiment keeps them
	// all to rehearse crashes at any height.
	CheckpointKeep int
	// CheckpointMode selects full checkpoints (the whole store,
	// serialized synchronously on the committer) or delta checkpoints
	// (only the keys dirtied since the last checkpoint, serialized off
	// the committer by a worker, with a full snapshot folded in every
	// CheckpointFullEvery checkpoints). Default full.
	CheckpointMode recovery.Mode
	// CheckpointFullEvery is the delta-mode compaction period (≤ 0
	// selects the recovery package default).
	CheckpointFullEvery int
	// BatchVerify switches the validate stage from one VerifyDigest per
	// endorsement to one cryptoutil.VerifyBatch pass per worker chunk:
	// amortized checks through the verified-signature cache, per-batch
	// cost accounting (BatchVerifyOps), and bisection to isolate exactly
	// the corrupt transaction when a batch fails. Per-tx verdicts are
	// identical to the serial path.
	BatchVerify bool
	// AggregateEndorsements makes the submitting client's leader peer
	// cosign the assembled endorsement set (commitment over the
	// co-signature bytes, leader-signed), so committers verify one
	// threshold check per transaction instead of one per endorser.
	// Committers fall back to per-signature verification whenever the
	// aggregate check fails, preserving exact verdicts. Takes precedence
	// over BatchVerify on the validate path.
	AggregateEndorsements bool
	// AuthState, when set, gives every peer an off-commit-path
	// authenticated state commitment (internal/authstate): the committer
	// hands each block's write set to a per-peer RootMaintainer, sealed
	// headers carry the latest published signed root, and a per-peer
	// ProofServer answers verified light-client reads. Off by default —
	// real Fabric v2 has no Merkle index over state (that absence is
	// Fig 12's point) — so the storage experiments are unaffected.
	AuthState bool
	// Ingress, when set, puts the ingress front door (internal/ingress)
	// in front of the network: Submit feeds a bounded deduplicating
	// mempool, an adaptive builder endorses admitted batches and drives
	// the ordering service's block cutting from arrival pressure, and
	// overload sheds at admission with ingress.ErrOverloaded instead of
	// queueing without bound. Nil keeps the paper-faithful direct path.
	Ingress *ingress.Config
	// EngineHook, when set, wraps every peer's state engine as it is
	// opened — including the fresh engine a recovering peer rebuilds
	// onto. The chaos layer injects write failures and fsync stalls here.
	EngineHook func(storage.Engine) storage.Engine
	// Link models the network; nil = zero latency.
	Link cluster.LinkModel
	// Contracts deployed on all peers. Default: KV and Smallbank.
	Contracts []contract.Contract
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 4
	}
	if c.Orderers <= 0 {
		c.Orderers = 3
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 100
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 5 * time.Millisecond
	}
	if c.ValidationWorkers <= 0 {
		c.ValidationWorkers = 1
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	if c.Contracts == nil {
		c.Contracts = []contract.Contract{contract.KV{}, contract.Smallbank{}}
	}
	return c
}

// Network is a running Fabric deployment.
type Network struct {
	cfg      Config
	net      *cluster.Network
	peers    []*peer
	ordering *sharedlog.Service
	box      *system.PayloadBox
	waiters  *system.Waiters
	clients  sync.Map // name → cryptoutil.PublicKey
	peerKeys map[string]cryptoutil.PublicKey
	ing      *ingress.Ingress // nil without Config.Ingress

	// Breakdown aggregates validate-phase sub-costs for Fig 8.
	Breakdown *metrics.Breakdown

	rr       atomic.Uint64 // round-robin query routing
	closeOne sync.Once
}

var _ system.System = (*Network)(nil)

// peer is one endorsing/committing peer. Committed state lives in the
// shared striped state layer: endorsement simulates against a consistent
// snapshot while validation and block commit go through the store's
// grouped batch path, so signature verification no longer serializes
// endorsements behind a global state lock. Block processing runs on the
// shared staged pipeline: signature verification fans out across the
// validation worker pool (and overlaps the previous block's commit at
// depth ≥ 2), while the MVCC check and state/ledger commit stay in
// strict block order on the committer side.
type peer struct {
	name     string
	nw       *Network
	signer   *cryptoutil.Signer
	reg      *contract.Registry
	ledger   *ledger.Ledger
	st       *state.Store
	consumer *sharedlog.Consumer
	auth     *authstate.RootMaintainer // nil unless Config.AuthState
	proofs   *authstate.ProofServer    // nil unless Config.AuthState
	pipe     *pipeline.Pipeline[sharedlog.Batch, *fabricBlock]
	ckpt     *recovery.Checkpointer // nil when checkpointing is off
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// crashed marks a peer whose commit pipeline and state were killed;
	// endorsement and query routing skip it until it is recovered.
	crashed atomic.Bool
	// lastDelivered is the newest ordering-batch sequence this peer has
	// consumed — decoded while live, drained while down. The block-sync
	// handoff in RecoverPeer pivots on it.
	lastDelivered atomic.Uint64
	// drain runs while the peer is crashed, consuming its share of
	// payload-box handles so entries never leak; nil when live.
	drain *system.Drainer
}

// fabricBlock is one decoded block moving through a peer's pipeline.
type fabricBlock struct {
	txs      []*txn.Tx
	verdicts []occ.AbortReason
	// valDur and applyStart together measure the validate phase as time
	// spent in the Validate and Apply/Seal stages only — at depth ≥ 2 a
	// block can also sit queued behind its predecessor's commit, and that
	// wait is pipeline occupancy, not validation cost.
	valDur     time.Duration
	applyStart time.Time
	sigNanos   atomic.Int64 // summed endorsement-verification CPU time
	// commitErr surfaces a failed state or ledger commit to the block's
	// clients instead of panicking the peer.
	commitErr error
}

// New assembles and starts a Fabric network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.CheckpointInterval > 0 && cfg.DataDir == "" {
		return nil, fmt.Errorf("fabric: CheckpointInterval requires DataDir")
	}
	nw := &Network{
		cfg:       cfg,
		net:       cluster.NewNetwork(cfg.Link),
		box:       system.NewPayloadBox(),
		waiters:   system.NewWaiters(),
		peerKeys:  make(map[string]cryptoutil.PublicKey),
		Breakdown: metrics.NewBreakdown(),
	}
	nw.ordering = sharedlog.New(sharedlog.Config{
		Net:          nw.net,
		NodeBase:     10000,
		Orderers:     cfg.Orderers,
		BatchSize:    cfg.BlockSize,
		BatchTimeout: cfg.BlockTimeout,
	})
	// The ordering service is already running; a failed peer setup must
	// tear down everything started so far, not leak it.
	fail := func(err error) (*Network, error) {
		nw.Close()
		return nil, err
	}
	for i := 0; i < cfg.Peers; i++ {
		name := fmt.Sprintf("peer%d", i)
		signer, err := cryptoutil.NewSigner(name)
		if err != nil {
			return fail(err)
		}
		eng, err := openEngine(cfg.DataDir, name, cfg.EngineHook)
		if err != nil {
			return fail(fmt.Errorf("fabric %s: open state engine: %w", name, err))
		}
		p := &peer{
			name:   name,
			nw:     nw,
			signer: signer,
			reg:    contract.NewRegistry(cfg.Contracts...),
			ledger: ledger.New(),
			st:     state.New(eng, 0),
			stopCh: make(chan struct{}),
		}
		// Appended before the fallible checkpointer setup so Close
		// reaches this peer's engine on the error path.
		nw.peers = append(nw.peers, p)
		if cfg.AuthState {
			p.auth, err = authstate.New(authstate.Config{Signer: signer})
			if err != nil {
				return fail(fmt.Errorf("fabric %s: root maintainer: %w", name, err))
			}
			p.proofs = authstate.NewProofServer(p.auth, 0)
		}
		if cfg.CheckpointInterval > 0 {
			p.ckpt, err = recovery.NewCheckpointer(p.st, recovery.Options{
				Dir:       ckptDir(cfg.DataDir, name),
				Interval:  cfg.CheckpointInterval,
				Keep:      cfg.CheckpointKeep,
				Mode:      cfg.CheckpointMode,
				FullEvery: cfg.CheckpointFullEvery,
			})
			if err != nil {
				return fail(fmt.Errorf("fabric %s: checkpointer: %w", name, err))
			}
		}
		p.pipe = pipeline.New(pipeline.Config{
			Workers: cfg.ValidationWorkers,
			Depth:   cfg.PipelineDepth,
		}, pipeline.Stages[sharedlog.Batch, *fabricBlock]{
			Decode:   p.decodeBlock,
			Validate: p.validateBlock,
			Apply:    p.applyBlock,
			Seal:     p.sealBlock,
		})
		nw.peerKeys[name] = signer.Public()
	}
	for _, p := range nw.peers {
		p.consumer = nw.ordering.Subscribe(1)
		p.wg.Add(1)
		go p.commitLoop()
	}
	if cfg.Ingress != nil {
		ing, err := ingress.New(*cfg.Ingress, nw.ingestBatch)
		if err != nil {
			return fail(fmt.Errorf("fabric: ingress: %w", err))
		}
		nw.ing = ing
	}
	return nw, nil
}

// Name implements system.System.
func (nw *Network) Name() string { return "fabric" }

// RegisterClient makes a client identity known to all peers.
func (nw *Network) RegisterClient(name string, pub cryptoutil.PublicKey) {
	nw.clients.Store(name, pub)
}

// needed returns the endorsement threshold. The default policy requires
// all peers; deployments that want to survive a peer crash set an
// explicit EndorsementsNeeded < Peers so the threshold stays constant
// across crash and recovery (validation verdicts must not depend on when
// a block is validated — replay re-checks them).
func (nw *Network) needed() int {
	if nw.cfg.EndorsementsNeeded > 0 {
		return nw.cfg.EndorsementsNeeded
	}
	return len(nw.peers)
}

// livePeers returns the peers whose commit pipelines are running.
func (nw *Network) livePeers() []*peer {
	out := make([]*peer, 0, len(nw.peers))
	for _, p := range nw.peers {
		if !p.crashed.Load() {
			out = append(out, p)
		}
	}
	return out
}

// Execute implements system.System as the thin Submit+Wait wrapper.
func (nw *Network) Execute(t *txn.Tx) system.Result {
	return system.ExecuteViaSubmit(nw, t)
}

// Submit implements system.System. Read-only invocations are served from
// a single peer without ordering (as on the direct path) and never enter
// the mempool; updates go through the ingress front door when one is
// configured, and otherwise run the direct execute path on their own
// goroutine.
func (nw *Network) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	readOnly := t.Invocation.Method == "get" || t.Invocation.Method == "query"
	if nw.ing == nil || readOnly {
		return system.GoSubmit(func() system.Result { return nw.execute(t) }), nil
	}
	return nw.ing.Submit(ctx, t)
}

// execute is the direct blocking path: the full execute-order-validate
// lifecycle for updates; local simulation for read-only invocations.
func (nw *Network) execute(t *txn.Tx) system.Result {
	readOnly := t.Invocation.Method == "get" || t.Invocation.Method == "query"
	live := nw.livePeers()
	if len(live) == 0 {
		return system.Result{Err: errors.New("fabric: no live peers")}
	}
	if readOnly {
		// Queries hit a single peer and are never ordered; the dominant
		// cost is client authentication (Fig 8b).
		p := live[int(nw.rr.Add(1))%len(live)]
		if _, _, err := p.endorse(t); err != nil {
			return system.Result{Err: err}
		}
		return system.Result{Committed: true, Value: p.readValue(t.Invocation)}
	}

	// Phase 1: endorsement — every live peer simulates concurrently. A
	// crashed peer contributes nothing; the transaction fails here if the
	// policy still requires it.
	if len(live) < nw.needed() {
		return system.Result{Err: fmt.Errorf("fabric: %d live peers, endorsement policy needs %d", len(live), nw.needed())}
	}
	if r, ok := nw.endorseAndAssemble(t, live); !ok {
		return r
	}

	// Phase 2: ordering. The payload is taken exactly once per peer —
	// live peers Take in decode, crashed peers Take in their drain, and
	// a recovering peer's handoff consumer Takes the batches its replay
	// covered — so the count stays constant across crashes and no entry
	// leaks.
	done := nw.waiters.Register(string(t.ID[:]))
	orderStart := time.Now()
	id := nw.box.Put(t, len(nw.peers))
	if err := nw.ordering.Append(system.EncodeHandle(id)); err != nil {
		nw.waiters.Cancel(string(t.ID[:]))
		nw.box.Drop(id)
		return system.Result{Err: err}
	}
	select {
	case r := <-done:
		t.Trace.Observe(metrics.PhaseOrder, time.Since(orderStart))
		return r
	case <-time.After(60 * time.Second):
		nw.waiters.Cancel(string(t.ID[:]))
		return system.Result{Err: errors.New("fabric: commit timeout")}
	}
}

// endorseAndAssemble runs phase 1 for one update transaction against the
// given live set: parallel endorsement on every peer, the client-side
// read-consistency check, and assembly of the endorsement set onto t.
// ok reports whether t may proceed to ordering; when false the returned
// Result is the final verdict. Shared by the direct execute path and the
// ingress batch sink.
func (nw *Network) endorseAndAssemble(t *txn.Tx, live []*peer) (system.Result, bool) {
	type endorsement struct {
		rw  txn.RWSet
		sig cryptoutil.Signature
		err error
	}
	results := make([]endorsement, len(live))
	start := time.Now()
	var wg sync.WaitGroup
	for i, p := range live {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			results[i].rw, results[i].sig, results[i].err = p.endorse(t)
		}(i, p)
	}
	wg.Wait()
	t.Trace.Observe(metrics.PhaseProposal, time.Since(start))
	for _, r := range results {
		if r.err != nil {
			return system.Result{Err: r.err}, false
		}
	}
	// Client-side consistency check across endorsers.
	sets := make([]txn.RWSet, len(results))
	for i, r := range results {
		sets[i] = r.rw
	}
	if !occ.ConsistentReads(sets) {
		return system.Result{Reason: occ.InconsistentRead}, false
	}

	// Assemble: adopt the first simulation result plus all signatures.
	t.RWSet = results[0].rw
	t.Endorsements = t.Endorsements[:0]
	t.AggEndorsement = nil
	for i, p := range live {
		t.Endorsements = append(t.Endorsements, txn.Endorsement{Peer: p.name, Sig: results[i].sig})
	}
	if nw.cfg.AggregateEndorsements {
		// The first live peer acts as aggregation leader: it has just
		// verified its own endorsement inputs, and every committer knows
		// its key. Committers that distrust the aggregate fall back to
		// per-signature checks, so a bad cosign only costs the fast path.
		if err := t.Cosign(live[0].signer); err != nil {
			return system.Result{Err: fmt.Errorf("fabric: aggregate endorsement: %w", err)}, false
		}
	}
	return system.Result{}, true
}

// ingestBatch is the ingress builder's sink: it owns every transaction
// handed to it and resolves each one, either immediately (endorsement
// failure, ordering unavailable) or through the registered waiter when
// the commit pipeline seals the block. The returned error is purely a
// throttle signal to the builder.
func (nw *Network) ingestBatch(txs []*txn.Tx) error {
	live := nw.livePeers()
	if len(live) < nw.needed() {
		err := fmt.Errorf("fabric: %d live peers, endorsement policy needs %d", len(live), nw.needed())
		for _, t := range txs {
			nw.ing.Resolve(t.ID, system.Result{Err: err})
		}
		return err
	}
	// Endorse the batch CPU-parallel — each transaction already fans out
	// across peers, but signature verification and simulation are the
	// builder's real cost and must not serialize block building.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(txs) {
		workers = len(txs)
	}
	results := make([]system.Result, len(txs))
	proceed := make([]bool, len(txs))
	pipeline.Parallel(workers, len(txs), func(i int) {
		results[i], proceed[i] = nw.endorseAndAssemble(txs[i], live)
	})
	survivors := 0
	for i, t := range txs {
		if !proceed[i] {
			nw.ing.Resolve(t.ID, results[i])
			continue
		}
		survivors++
	}
	if survivors == 0 {
		return nil
	}
	// Adaptive block shape: cut the next ordering batch where arrival
	// pressure put this one — small under light load, at the blockshape
	// optimum under pressure.
	nw.ordering.SetBatchSize(survivors)
	var throttle error
	for i, t := range txs {
		if !proceed[i] {
			continue
		}
		key := string(t.ID[:])
		nw.waiters.RegisterFunc(key, nw.ing.Resolver(t.ID))
		id := nw.box.Put(t, len(nw.peers))
		if err := nw.ordering.AppendBounded(system.EncodeHandle(id), time.Second); err != nil {
			nw.waiters.Cancel(key)
			nw.box.Drop(id)
			nw.ing.Resolve(t.ID, system.Result{
				Err: fmt.Errorf("%w: ordering unavailable: %v", ingress.ErrOverloaded, err),
			})
			throttle = err
		}
	}
	return throttle
}

// IngressStats returns the front door's counters; ok is false when the
// network runs without an ingress.
func (nw *Network) IngressStats() (ingress.Stats, bool) {
	if nw.ing == nil {
		return ingress.Stats{}, false
	}
	return nw.ing.Stats(), true
}

// ConsensusDropped sums the ordering service's transport drop counters —
// the consensus-side overload signal, as opposed to admission sheds.
func (nw *Network) ConsensusDropped() uint64 { return nw.ordering.Dropped() }

// SetFaults installs (or, with nil, removes) a message-fault hook on the
// network's transport — the chaos layer's drop/delay/reorder seam.
func (nw *Network) SetFaults(hook cluster.FaultHook) { nw.net.SetFaults(hook) }

// readValue extracts a point-read result for KV queries.
func (p *peer) readValue(inv txn.Invocation) []byte {
	if inv.Contract != "kv" || inv.Method != "get" || len(inv.Args) != 1 {
		return nil
	}
	v, _, err := p.st.Get(string(inv.Args[0]))
	if err != nil {
		return nil
	}
	return v
}

// endorse authenticates, simulates, and signs on one peer.
func (p *peer) endorse(t *txn.Tx) (txn.RWSet, cryptoutil.Signature, error) {
	var authErr error
	t.Trace.Time(metrics.PhaseAuth, func() {
		pubAny, ok := p.nw.clients.Load(t.Client)
		if !ok {
			authErr = fmt.Errorf("fabric: unknown client %s", t.Client)
			return
		}
		// Every endorsing peer authenticates the same submission; the
		// verified-signature cache (with single-flight on concurrent
		// misses) makes an E-peer endorsement cost one curve check
		// instead of E.
		authErr = t.VerifyClientCached(pubAny.(cryptoutil.PublicKey))
	})
	if authErr != nil {
		return txn.RWSet{}, cryptoutil.Signature{}, authErr
	}
	var rw txn.RWSet
	var simErr error
	t.Trace.Time(metrics.PhaseSimulate, func() {
		snap := p.st.Snapshot()
		defer snap.Release()
		rw, simErr = p.reg.Execute(snap, t.Invocation)
	})
	if simErr != nil {
		if errors.Is(simErr, contract.ErrAbort) {
			// Business rejection: endorse an empty effect; the client
			// counts it as an application abort.
			return txn.RWSet{}, cryptoutil.Signature{}, simErr
		}
		return txn.RWSet{}, cryptoutil.Signature{}, simErr
	}
	var sig cryptoutil.Signature
	var sigErr error
	t.Trace.Time(metrics.PhaseEndorse, func() {
		shadow := *t
		shadow.RWSet = rw
		sig, sigErr = p.signer.SignDigest(shadow.EndorsementDigest())
	})
	return rw, sig, sigErr
}

// commitLoop drives the peer's block pipeline over the ordering service's
// batch stream until shutdown.
func (p *peer) commitLoop() {
	defer p.wg.Done()
	p.pipe.Run(p.consumer.Batches(), p.stopCh)
}

// decodeBlock resolves a batch's payload handles into the block's
// transactions (pipeline Decode stage). Batches that decode to zero
// transactions still pass through as empty blocks: ledger height must
// track the ordering sequence exactly — block N is always batch N — or
// the recovery handoff (RecoverPeer) could not align a ledger replay
// with a log subscription.
func (p *peer) decodeBlock(batch sharedlog.Batch) (*fabricBlock, bool) {
	txs := make([]*txn.Tx, 0, len(batch.Records))
	for _, rec := range batch.Records {
		id, ok := system.HandleID(rec)
		if !ok {
			continue
		}
		v, ok := p.nw.box.Take(id)
		if !ok {
			continue
		}
		txs = append(txs, v.(*txn.Tx))
	}
	p.lastDelivered.Store(batch.Seq)
	return &fabricBlock{txs: txs}, true
}

// validateBlock runs the stateless half of validation — the endorsement
// signature checks that dominate Fig 8 — across the worker pool (pipeline
// Validate stage). At depth ≥ 2 this overlaps the previous block's commit.
//
// Three modes, all producing identical per-tx verdicts: aggregate (one
// threshold check per tx, serial fallback on aggregate failure), batch
// (one VerifyBatch pass per worker chunk, bisection isolating corrupt
// txs), and the default serial per-endorsement loop.
func (p *peer) validateBlock(b *fabricBlock) {
	start := time.Now()
	defer func() { b.valDur = time.Since(start) }()
	b.verdicts = make([]occ.AbortReason, len(b.txs))
	keys := func(name string) (cryptoutil.PublicKey, bool) {
		pub, ok := p.nw.peerKeys[name]
		return pub, ok
	}
	switch {
	case p.nw.cfg.AggregateEndorsements:
		pipeline.Parallel(p.pipe.Workers(), len(b.txs), func(i int) {
			sigStart := time.Now()
			err := b.txs[i].VerifyEndorsementsAggregate(keys, p.nw.needed())
			b.sigNanos.Add(int64(time.Since(sigStart)))
			if err != nil {
				b.verdicts[i] = occ.InconsistentRead // endorsement failure
			}
		})
	case p.nw.cfg.BatchVerify:
		pipeline.ParallelChunks(p.pipe.Workers(), len(b.txs), func(lo, hi int) {
			sigStart := time.Now()
			errs := txn.VerifyEndorsementsBatch(b.txs[lo:hi], keys, p.nw.needed())
			b.sigNanos.Add(int64(time.Since(sigStart)))
			for i, err := range errs {
				if err != nil {
					b.verdicts[lo+i] = occ.InconsistentRead // endorsement failure
				}
			}
		})
	default:
		pipeline.Parallel(p.pipe.Workers(), len(b.txs), func(i int) {
			sigStart := time.Now()
			err := b.txs[i].VerifyEndorsements(keys, p.nw.needed())
			b.sigNanos.Add(int64(time.Since(sigStart)))
			if err != nil {
				b.verdicts[i] = occ.InconsistentRead // endorsement failure
			}
		})
	}
}

// applyBlock validates reads and commits state (pipeline Apply stage,
// strict block order). The MVCC check runs as key-scheduled waves with
// verdicts identical to the serial in-block-order pass; the commit loop
// is the store's only writer, so validating against the live store is
// stable without holding any lock across the block.
func (p *peer) applyBlock(b *fabricBlock) {
	b.applyStart = time.Now()
	blockNum := p.ledger.Height() + 1
	sets := make([]txn.RWSet, len(b.txs))
	for i, t := range b.txs {
		if b.verdicts[i] == occ.OK {
			sets[i] = t.RWSet
		}
	}
	mvccVerdicts := pipeline.ValidateWaves(sets, p.st, blockNum, p.pipe.Workers())
	for i := range b.verdicts {
		if b.verdicts[i] == occ.OK {
			b.verdicts[i] = mvccVerdicts[i]
		}
	}

	// Stage valid write sets and commit them as one block: grouped by
	// stripe, flushed through the engine's batch fast path. A failed
	// commit no longer panics the peer: the error travels to Seal, which
	// reports it to every client waiting on the block.
	blk := p.st.NewBlock()
	var deltas []state.VersionedWrite
	for i, t := range b.txs {
		if b.verdicts[i] != occ.OK {
			continue
		}
		ver := txn.Version{BlockNum: blockNum, TxNum: uint32(i)}
		blk.StageAll(t.RWSet.Writes, ver)
		if p.auth != nil {
			for _, w := range t.RWSet.Writes {
				deltas = append(deltas, state.VersionedWrite{Write: w, Version: ver})
			}
		}
	}
	if err := blk.Commit(); err != nil {
		b.commitErr = fmt.Errorf("fabric %s: block commit: %w", p.name, err)
		return
	}
	if p.auth != nil {
		// Off-commit-path commitment: the maintainer hashes this delta on
		// its own worker. ErrClosed only happens on shutdown — the delta
		// dies with the peer, as a crash would lose it.
		if err := p.auth.Submit(blockNum, deltas); err != nil && err != authstate.ErrClosed {
			b.commitErr = fmt.Errorf("fabric %s: root maintainer: %w", p.name, err)
		}
	}
}

// sealBlock appends the ledger block and resolves the waiting clients
// (pipeline Seal stage, strict block order). Blocks persist their
// transactions whole (marshalled, as real Fabric blocks do), which is
// what makes the ledger a sufficient replay source for crash recovery.
func (p *peer) sealBlock(b *fabricBlock) {
	payloads := make([][]byte, len(b.txs))
	for i, t := range b.txs {
		payloads[i] = t.Marshal()
	}
	if b.commitErr == nil {
		var parent cryptoutil.Hash
		if head := p.ledger.Head(); head != nil {
			parent = head.Hash()
		}
		hdr := ledger.Header{
			Number:     p.ledger.Height() + 1,
			ParentHash: parent,
			TxRoot:     ledger.ComputeTxRoot(payloads),
		}
		// With AuthState on, headers carry the latest published signed
		// root — possibly a few blocks behind Number (bounded staleness).
		if p.auth != nil {
			if up, ok := p.auth.Published(); ok {
				hdr.StateRoot = up.Root.Root
				hdr.StateRootHeight = up.Root.Height
			}
		}
		lb := &ledger.Block{
			Header: hdr,
			Txs:    payloads,
		}
		if err := p.ledger.Append(lb); err != nil {
			b.commitErr = fmt.Errorf("fabric %s: ledger append: %w", p.name, err)
		}
	}

	validate := b.valDur + time.Since(b.applyStart)
	p.nw.Breakdown.Observe(metrics.PhaseValidate, validate)
	p.nw.Breakdown.Observe("validate-sig", time.Duration(b.sigNanos.Load()))

	for i, t := range b.txs {
		t.Trace.Observe(metrics.PhaseValidate, validate)
		var r system.Result
		if b.commitErr != nil {
			r = system.Result{Reason: b.verdicts[i], Err: b.commitErr}
		} else {
			r = system.Result{Committed: b.verdicts[i] == occ.OK, Reason: b.verdicts[i]}
		}
		p.nw.waiters.Resolve(string(t.ID[:]), r)
	}

	// Checkpoint after the clients are answered, still on the committer:
	// the store sits exactly at this block's boundary, so the snapshot can
	// never tear a block. The synchronous write is the commit-path cost
	// the checkpoint-interval experiment measures.
	if p.ckpt != nil && b.commitErr == nil {
		//lint:allow errshadow failure retained in LastErr for the recovery stats
		_, _ = p.ckpt.MaybeCheckpoint(p.ledger.Height())
	}
}

// CrashPeer kills peer i: its commit pipeline stops (blocks already past
// validation still seal, as a crash between fsyncs would leave them) and
// its in-memory state — values, versions, ledger — is lost. Endorsement
// and query routing skip it from now on. What survives is what recovery
// is allowed to use: the checkpoint directory on disk and the other
// replicas' ledgers.
func (nw *Network) CrashPeer(i int) {
	p := nw.peers[i]
	if p.crashed.Swap(true) {
		return
	}
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.wg.Wait()
	// The subscription stays open: a drain goroutine keeps consuming the
	// crashed peer's share of payload-box handles (constant Take counts,
	// no leaked entries) and records the last delivered sequence — the
	// pivot the recovery block-sync handoff resumes from.
	p.drain = system.NewDrainer()
	go p.drainWhileDown(p.consumer, p.drain)
	if p.ckpt != nil {
		p.ckpt.Close() // queued delta jobs die with the process, as a real crash would lose them
	}
	if p.auth != nil {
		p.auth.Close()
		p.auth, p.proofs = nil, nil
	}
	p.st.Close()
	p.ledger = nil
}

// drainWhileDown consumes the crashed peer's batch stream: every handle
// is taken (freeing this peer's box copy) and the newest sequence is
// recorded in lastDelivered.
func (p *peer) drainWhileDown(consumer *sharedlog.Consumer, d *system.Drainer) {
	defer d.Finish()
	for {
		select {
		case <-d.Stop():
			return
		case b, ok := <-consumer.Batches():
			if !ok {
				return
			}
			for _, rec := range b.Records {
				if id, ok := system.HandleID(rec); ok {
					p.nw.box.Take(id)
				}
			}
			p.lastDelivered.Store(b.Seq)
		}
	}
}

// RecoverPeer rebuilds crashed peer i from its newest on-disk checkpoint
// with height ≤ maxCkptHeight (0 = newest available — maxCkptHeight
// models how far checkpointing had gotten when the crash hit) plus a
// replay of the healthy peer from's ledger, through the peer's own
// validate/apply pipeline stages — and then REJOINS live block
// consumption via a block-sync handoff: the replay runs to at least the
// last sequence the peer's crash-time drain consumed, a handoff
// subscription takes (and drops) the peer's box copies for the batches
// the replay already covered, and the live subscription resumes exactly
// one past the replay tip. The network may keep committing throughout —
// no quiesce is required. RecoverPeer may be called after each crash;
// each call rebuilds from scratch.
func (nw *Network) RecoverPeer(i, from int, maxCkptHeight uint64) (recovery.Stats, error) {
	p, src := nw.peers[i], nw.peers[from]
	if !p.crashed.Load() {
		return recovery.Stats{}, fmt.Errorf("fabric: peer %d is not crashed", i)
	}
	if src.crashed.Load() {
		return recovery.Stats{}, fmt.Errorf("fabric: source peer %d is crashed", from)
	}
	// Stop the crash-time drain and pin the handoff pivot: every batch
	// ≤ D has had this peer's box copy taken already.
	if p.drain != nil {
		p.drain.Halt()
		p.drain = nil
		p.consumer.Close()
	}
	D := p.lastDelivered.Load()
	cfg := recovery.RebuildConfig{
		Old:           p.st,
		OldCkpt:       p.ckpt,
		Open:          func() (storage.Engine, error) { return openEngine(nw.cfg.DataDir, p.name, nw.cfg.EngineHook) },
		Interval:      nw.cfg.CheckpointInterval,
		Keep:          nw.cfg.CheckpointKeep,
		Mode:          nw.cfg.CheckpointMode,
		FullEvery:     nw.cfg.CheckpointFullEvery,
		MaxCkptHeight: maxCkptHeight,
	}
	if nw.cfg.DataDir != "" {
		cfg.StateDir = filepath.Join(nw.cfg.DataDir, p.name, "state")
	}
	if p.ckpt != nil {
		cfg.CkptDir = p.ckpt.Dir()
	}
	st, ckpt, stats, err := recovery.RebuildStore(cfg)
	if err != nil {
		return stats, err
	}
	p.ckpt = ckpt
	ckptHeight := stats.CheckpointHeight

	if nw.cfg.AuthState {
		// Rebuild the commitment through the maintainer's delta path: the
		// restored store dumps as one synthetic delta at the checkpoint
		// height, and replay then feeds per-block deltas as live commits
		// do (the trie root is content-determined).
		if p.auth != nil {
			p.auth.Close()
		}
		auth, aerr := authstate.New(authstate.Config{Signer: p.signer})
		if aerr != nil {
			st.Close()
			return stats, fmt.Errorf("fabric %s: root maintainer: %w", p.name, aerr)
		}
		p.auth, p.proofs = auth, authstate.NewProofServer(auth, 0)
		if ckptHeight > 0 {
			var seed []state.VersionedWrite
			st.Dump(func(key string, value []byte, ver txn.Version) bool {
				seed = append(seed, state.VersionedWrite{
					Write:   txn.Write{Key: key, Value: bytes.Clone(value)},
					Version: ver,
				})
				return true
			})
			if err := auth.Submit(ckptHeight, seed); err != nil {
				auth.Close()
				st.Close()
				return stats, fmt.Errorf("fabric %s: seed root maintainer: %w", p.name, err)
			}
		}
	}

	// Rebuild the ledger prefix up to the checkpoint by copying verified
	// blocks from the healthy replica, then replay the tail through the
	// live pipeline stages.
	led := ledger.New()
	for n := uint64(1); n <= ckptHeight; n++ {
		blk, ok := src.ledger.Block(n)
		if !ok {
			st.Close()
			return stats, fmt.Errorf("fabric: source ledger missing block %d", n)
		}
		if err := led.Append(blk); err != nil {
			st.Close()
			return stats, fmt.Errorf("fabric: copy block %d: %w", n, err)
		}
	}
	p.st, p.ledger = st, led

	// Replay the source ledger through the live validate/apply stages
	// until this peer has covered everything its drain consumed (≥ D).
	// The source keeps committing while we replay, so loop: each pass
	// replays the tail the source has by now, and if the source has not
	// yet applied batch D itself, wait for it.
	replayStart := time.Now()
	replayOne := func(n uint64, payloads [][]byte) error {
		txs, err := recovery.DecodeTxs(payloads)
		if err != nil {
			return err
		}
		b := &fabricBlock{txs: txs}
		p.validateBlock(b) // endorsement signature checks, worker-pooled
		p.applyBlock(b)    // MVCC waves + state commit, as live
		if b.commitErr != nil {
			return b.commitErr
		}
		blk, _ := src.ledger.Block(n)
		return p.ledger.Append(blk)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, rerr := recovery.Replay(recovery.LedgerSource{L: src.ledger}, p.ledger.Height(), replayOne)
		stats.ReplayedBlocks += n
		if rerr != nil {
			stats.ReplayDuration = time.Since(replayStart)
			return stats, rerr
		}
		if n == 0 {
			if p.ledger.Height() >= D {
				break
			}
			if time.Now().After(deadline) {
				stats.ReplayDuration = time.Since(replayStart)
				return stats, fmt.Errorf("fabric: source peer %d stuck below drained sequence %d", from, D)
			}
			//lint:allow sleepyloop waiting for the live replay source to apply the drained tail
			time.Sleep(time.Millisecond)
		}
	}
	stats.ReplayDuration = time.Since(replayStart)
	T1 := p.ledger.Height()
	stats.TipHeight = T1

	// Block-sync handoff: batches D+1..T1 were covered by the replay but
	// their box copies for this peer are still outstanding — take and
	// drop them, then subscribe live at T1+1. Sequences align because
	// block N is always batch N (empty-batch pass-through in decode).
	if T1 > D {
		tmp := nw.ordering.Subscribe(D + 1)
		for seq := D + 1; seq <= T1; seq++ {
			b, ok := <-tmp.Batches()
			if !ok {
				break
			}
			for _, rec := range b.Records {
				if id, ok := system.HandleID(rec); ok {
					nw.box.Take(id)
				}
			}
		}
		tmp.Close()
	}
	p.lastDelivered.Store(T1)
	p.stopCh = make(chan struct{})
	p.stopOnce = sync.Once{}
	p.consumer = nw.ordering.Subscribe(T1 + 1)
	p.crashed.Store(false)
	p.wg.Add(1)
	go p.commitLoop()
	return stats, nil
}

// Checkpointer exposes peer i's checkpointer (nil when disabled) for
// tests and the recovery experiment.
func (nw *Network) Checkpointer(i int) *recovery.Checkpointer { return nw.peers[i].ckpt }

// State exposes peer i's striped state store (tests and inspection).
func (nw *Network) State(i int) *state.Store { return nw.peers[i].st }

// Ledger exposes peer i's ledger.
func (nw *Network) Ledger(i int) *ledger.Ledger { return nw.peers[i].ledger }

// Auth exposes peer i's root maintainer (nil unless Config.AuthState).
func (nw *Network) Auth(i int) *authstate.RootMaintainer { return nw.peers[i].auth }

// Proofs exposes peer i's proof server (nil unless Config.AuthState) —
// the light-client read endpoint.
func (nw *Network) Proofs(i int) *authstate.ProofServer { return nw.peers[i].proofs }

// StateBytes returns peer 0's state footprint; BlockBytes its ledger
// footprint (Fig 12's two series).
func (nw *Network) StateBytes() int64 { return nw.peers[0].st.ApproxSize() }

// BlockBytes returns peer 0's ledger storage footprint.
func (nw *Network) BlockBytes() int64 { return nw.peers[0].ledger.StorageSize() }

// Close implements system.System.
func (nw *Network) Close() {
	nw.closeOne.Do(func() {
		if nw.ing != nil {
			// Stop admission first: the builder drains or resolves what it
			// holds while the ordering path below is still alive.
			nw.ing.Close()
		}
		nw.ordering.Stop()
		for _, p := range nw.peers {
			p.stopOnce.Do(func() { close(p.stopCh) })
			if p.drain != nil {
				p.drain.Halt()
				p.drain = nil
			}
		}
		for _, p := range nw.peers {
			p.wg.Wait()
			if p.ckpt != nil {
				p.ckpt.Close()
			}
			if p.auth != nil {
				p.auth.Close()
			}
			if p.st != nil {
				p.st.Close()
			}
		}
		nw.net.Close()
	})
}
