package fabric

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/ads/mpt"
	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/occ"
	"dichotomy/internal/txn"
)

func network(t *testing.T, cfg Config) (*Network, *cryptoutil.Signer) {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	client := cryptoutil.MustNewSigner("client")
	nw.RegisterClient(client.Name(), client.Public())
	return nw, client
}

func mustTx(t *testing.T, client *cryptoutil.Signer, method string, args ...string) *txn.Tx {
	t.Helper()
	raw := make([][]byte, len(args))
	for i, a := range args {
		raw[i] = []byte(a)
	}
	tx, err := txn.Sign(client, txn.Invocation{Contract: contract.KVName, Method: method, Args: raw})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestCommitAndRead(t *testing.T) {
	nw, client := network(t, Config{Peers: 3})
	if r := nw.Execute(mustTx(t, client, "put", "alpha", "1")); !r.Committed {
		t.Fatalf("put: %+v", r)
	}
	if r := nw.Execute(mustTx(t, client, "get", "alpha")); !r.Committed {
		t.Fatalf("get: %+v", r)
	}
}

func TestUnknownClientRejected(t *testing.T) {
	nw, _ := network(t, Config{Peers: 3})
	stranger := cryptoutil.MustNewSigner("stranger")
	tx, _ := txn.Sign(stranger, txn.Invocation{Contract: contract.KVName, Method: "put", Args: [][]byte{[]byte("k"), []byte("v")}})
	if r := nw.Execute(tx); r.Err == nil {
		t.Fatal("unauthenticated client accepted")
	}
}

func TestLedgersConverge(t *testing.T) {
	nw, client := network(t, Config{Peers: 3})
	for i := 0; i < 20; i++ {
		if r := nw.Execute(mustTx(t, client, "put", fmt.Sprintf("k%d", i), "v")); !r.Committed {
			t.Fatalf("tx %d: %+v", i, r)
		}
	}
	h := nw.Ledger(0).Height()
	if h == 0 {
		t.Fatal("no blocks")
	}
	for i := 1; i < 3; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for nw.Ledger(i).Height() < h && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if nw.Ledger(i).Height() < h {
			t.Fatalf("peer %d stuck at height %d < %d", i, nw.Ledger(i).Height(), h)
		}
	}
	for i := 0; i < 3; i++ {
		if err := nw.Ledger(i).Verify(); err != nil {
			t.Fatalf("peer %d ledger: %v", i, err)
		}
	}
}

func TestConcurrentWritersOnHotKeyAbort(t *testing.T) {
	// Fabric's OCC: concurrent read-modify-writes of one key mostly abort
	// with read-write conflicts — the Fig 9 mechanism.
	nw, client := network(t, Config{Peers: 3})
	if r := nw.Execute(mustTx(t, client, "put", "hot", "0")); !r.Committed {
		t.Fatalf("seed: %+v", r)
	}
	const writers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, conflicts := 0, 0
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := nw.Execute(mustTx(t, client, "modify", "hot", fmt.Sprintf("w%d", w)))
			mu.Lock()
			defer mu.Unlock()
			if r.Committed {
				committed++
			} else if r.Reason == occ.ReadWriteConflict {
				conflicts++
			}
		}(w)
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("every writer aborted; at least one must win")
	}
	if conflicts == 0 {
		t.Fatal("no read-write conflicts under contention — OCC not engaged")
	}
}

func TestIndependentKeysAllCommit(t *testing.T) {
	nw, client := network(t, Config{Peers: 3})
	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := nw.Execute(mustTx(t, client, "modify", fmt.Sprintf("key-%d", w), "v"))
			if !r.Committed {
				errs <- fmt.Sprintf("writer %d: %+v", w, r)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestValidationBreakdownPopulated(t *testing.T) {
	nw, client := network(t, Config{Peers: 3})
	for i := 0; i < 5; i++ {
		nw.Execute(mustTx(t, client, "put", fmt.Sprintf("k%d", i), "v"))
	}
	if nw.Breakdown.Mean("validate") == 0 {
		t.Fatal("validate phase unrecorded")
	}
	if nw.Breakdown.Mean("validate-sig") == 0 {
		t.Fatal("signature-verification share unrecorded")
	}
}

func TestBlockBytesExceedStateBytes(t *testing.T) {
	// Fig 12's core observation: the ledger keeps history, so block
	// storage outgrows state storage.
	nw, client := network(t, Config{Peers: 3})
	for i := 0; i < 10; i++ {
		nw.Execute(mustTx(t, client, "put", "same-key", fmt.Sprintf("version-%d", i)))
	}
	if nw.BlockBytes() <= nw.StateBytes() {
		t.Fatalf("blocks %d ≤ state %d; history not retained?", nw.BlockBytes(), nw.StateBytes())
	}
}

// TestAuthStateServesVerifiedReads: with AuthState on, committed writes
// become provable through each peer's proof server, every peer's signed
// root converges to the same hash, and sealed headers carry it.
func TestAuthStateServesVerifiedReads(t *testing.T) {
	nw, client := network(t, Config{Peers: 3, AuthState: true})
	for i := 0; i < 5; i++ {
		if r := nw.Execute(mustTx(t, client, "put", fmt.Sprintf("k%d", i), "v")); !r.Committed {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	// Execute returns when the first peer seals the block, so peer 0's
	// ledger may briefly trail the resolving peer; WaitFor(tip) can then
	// return roots at different heights. Raise tip to the highest height
	// any peer reports until all three answer at the same height — the
	// network is quiescent, so heights are monotone and bounded.
	tip := nw.Ledger(0).Height()
	roots := make([]cryptoutil.Hash, 3)
	deadline := time.Now().Add(10 * time.Second)
	for {
		heights := make([]uint64, 3)
		for i := 0; i < 3; i++ {
			sr, err := nw.Auth(i).WaitFor(tip, 10*time.Second)
			if err != nil {
				t.Fatalf("peer %d root: %v", i, err)
			}
			if err := sr.Verify(nw.Auth(i).Public()); err != nil {
				t.Fatalf("peer %d root sig: %v", i, err)
			}
			roots[i] = sr.Root
			heights[i] = sr.Height
			if heights[i] > tip {
				tip = heights[i]
			}
		}
		if heights[0] == heights[1] && heights[1] == heights[2] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer root heights never converge: %v", heights)
		}
	}
	if roots[0] != roots[1] || roots[1] != roots[2] {
		t.Fatalf("peer roots diverge: %x %x %x", roots[0], roots[1], roots[2])
	}
	got, err := nw.Proofs(0).VerifiedGet("k0")
	if err != nil {
		t.Fatal(err)
	}
	if err := mpt.VerifyProof(got.Root.Root, []byte("k0"), got.Proof); err != nil {
		t.Fatalf("proof: %v", err)
	}
	// A header sealed after the first publication carries a signed root.
	head := nw.Ledger(0).Head()
	if head.Header.Number > 1 && head.Header.StateRootHeight == 0 {
		t.Fatalf("head at %d carries no state commitment", head.Header.Number)
	}
}
