// Goroutine-leak lifecycle tests: every system spins up committers,
// orderers, appliers, and checkpoint workers, and Close must reap all
// of them. A leaked goroutine here means a background worker survived
// shutdown — exactly the kind of bug that turns a clean benchmark
// harness into one that measures its own garbage.
package system_test

import (
	"runtime"
	"testing"
	"time"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/hybrid"
	"dichotomy/internal/system"
	"dichotomy/internal/system/fabric"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/system/spanner"
	"dichotomy/internal/system/tidb"
)

// goroutineBaseline samples the goroutine count after letting any
// stragglers from earlier tests wind down.
func goroutineBaseline() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// assertGoroutinesReturn polls until the goroutine count drops back to
// the baseline (with a little slack for runtime-internal helpers), and
// dumps all stacks if it never does.
func assertGoroutinesReturn(t *testing.T, base int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after Close: %d, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// driveSmallLoad commits a handful of transactions so the pipeline,
// checkpointer, and appliers all wake up at least once.
func driveSmallLoad(t *testing.T, sys system.System, client *cryptoutil.Signer) {
	t.Helper()
	r := sys.Execute(signTx(t, client, contract.SmallbankName, "create_account",
		"leak0", string(contract.EncodeInt64(0)), string(contract.EncodeInt64(0))))
	if !r.Committed {
		t.Fatalf("create_account: %+v", r)
	}
	for i := 0; i < 8; i++ {
		sys.Execute(signTx(t, client, contract.SmallbankName, "deposit_checking",
			"leak0", string(contract.EncodeInt64(int64(i+1)))))
	}
}

func TestFabricCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	nw, err := fabric.New(fabric.Config{
		Peers:              4,
		EndorsementsNeeded: 3,
		BlockSize:          4,
		BlockTimeout:       2 * time.Millisecond,
		ValidationWorkers:  2,
		PipelineDepth:      2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.RegisterClient(client.Name(), client.Public())
	driveSmallLoad(t, nw, client)
	nw.Close()
	assertGoroutinesReturn(t, base)
}

func TestFabricCrashRecoveryCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	nw, err := fabric.New(fabric.Config{
		Peers:              4,
		EndorsementsNeeded: 3,
		BlockSize:          4,
		BlockTimeout:       2 * time.Millisecond,
		ValidationWorkers:  2,
		PipelineDepth:      2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.RegisterClient(client.Name(), client.Public())
	driveSmallLoad(t, nw, client)
	// A crash/recover cycle replaces the peer's worker set; the old
	// one must be gone and the new one must still honour Close.
	nw.CrashPeer(2)
	driveSmallLoad(t, nw, client)
	if _, err := nw.RecoverPeer(2, 0, 0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	driveSmallLoad(t, nw, client)
	nw.Close()
	assertGoroutinesReturn(t, base)
}

func TestQuorumCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	nw, err := quorum.New(quorum.Config{
		Nodes:              3,
		Consensus:          quorum.Raft,
		BlockSize:          4,
		BlockInterval:      2 * time.Millisecond,
		ExecutionWorkers:   2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.RegisterClient(client.Name(), client.Public())
	driveSmallLoad(t, nw, client)
	nw.Close()
	assertGoroutinesReturn(t, base)
}

func TestVeritasCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	v, err := hybrid.NewVeritas(hybrid.VeritasConfig{
		Verifiers:          2,
		BatchSize:          4,
		BatchTimeout:       2 * time.Millisecond,
		ValidationWorkers:  2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveSmallLoad(t, v, client)
	v.Close()
	assertGoroutinesReturn(t, base)
}

func TestBigchainCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	b, err := hybrid.NewBigchain(hybrid.BigchainConfig{
		Nodes:              3,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveSmallLoad(t, b, client)
	b.Close()
	assertGoroutinesReturn(t, base)
}

func TestTiDBCrashRecoveryCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	c := tidb.New(tidb.Config{
		Servers:            2,
		StorageNodes:       3,
		Regions:            2,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	driveSmallLoad(t, c, client)
	// Crash one replica of every region, keep committing on the raft
	// majority, then recover: the replaced applier/checkpoint workers
	// must all honour Close and the crashed ones must already be gone.
	for r := 0; r < c.Regions(); r++ {
		c.CrashReplica(r, 2)
	}
	driveSmallLoad(t, c, client)
	for r := 0; r < c.Regions(); r++ {
		if _, err := c.RecoverReplica(r, 2); err != nil {
			t.Fatalf("recover region %d: %v", r, err)
		}
	}
	driveSmallLoad(t, c, client)
	c.Close()
	assertGoroutinesReturn(t, base)
}

func TestSpannerCrashRecoveryCloseReapsGoroutines(t *testing.T) {
	base := goroutineBaseline()
	client := cryptoutil.MustNewSigner("leak-client")
	c := spanner.New(spanner.Config{
		Shards:             2,
		NodesPerShard:      3,
		DataDir:            t.TempDir(),
		CheckpointInterval: 2,
	})
	driveSmallLoad(t, c, client)
	for s := 0; s < c.Shards(); s++ {
		c.CrashReplica(s, 2)
	}
	driveSmallLoad(t, c, client)
	for s := 0; s < c.Shards(); s++ {
		if _, err := c.RecoverReplica(s, 2); err != nil {
			t.Fatalf("recover shard %d: %v", s, err)
		}
	}
	driveSmallLoad(t, c, client)
	c.Close()
	assertGoroutinesReturn(t, base)
}
