// Package smallbank generates the Smallbank OLTP workload used by the
// paper's Fig 6: six transaction profiles over checking/savings accounts,
// with Zipfian account selection (θ=1 in the paper, 1M accounts). The
// profile mix follows the OLTPBench defaults.
package smallbank

import (
	"fmt"
	"math/rand"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/txn"
)

// Config sizes the workload.
type Config struct {
	// Accounts is the populated account count (paper: 1M).
	Accounts int
	// Theta is the Zipfian coefficient over accounts.
	Theta float64
	// Seed makes generation reproducible.
	Seed int64
	// InitialBalance funds each account's checking and savings.
	InitialBalance int64
}

func (c Config) withDefaults() Config {
	if c.Accounts <= 0 {
		c.Accounts = 1_000_000
	}
	if c.InitialBalance <= 0 {
		c.InitialBalance = 10_000
	}
	return c
}

// Account renders the i-th account id.
func Account(i int) string { return fmt.Sprintf("acct%08d", i) }

// Generator produces signed Smallbank transactions. Not safe for
// concurrent use; one per worker.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	client *cryptoutil.Signer
}

// NewGenerator returns a generator for the given client identity.
func NewGenerator(cfg Config, client *cryptoutil.Signer) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{cfg: cfg, rng: rng, client: client}
	if cfg.Theta > 0 {
		// rand.Zipf wants s > 1; map θ∈(0,1] onto a steepness that keeps
		// θ=1 heavily skewed. s = 1+θ gives the familiar hot-spot shape.
		g.zipf = rand.NewZipf(rng, 1+cfg.Theta, 1, uint64(cfg.Accounts-1))
	}
	return g
}

func (g *Generator) account() []byte {
	if g.zipf != nil {
		return []byte(Account(int(g.zipf.Uint64())))
	}
	return []byte(Account(g.rng.Intn(g.cfg.Accounts)))
}

// otherAccount draws an account distinct from a.
func (g *Generator) otherAccount(a []byte) []byte {
	for {
		b := g.account()
		if string(b) != string(a) {
			return b
		}
	}
}

func amount(g *Generator) []byte {
	return contract.EncodeInt64(int64(1 + g.rng.Intn(100)))
}

// Next produces the next transaction using the OLTPBench profile mix:
// 15% transact_savings, 15% deposit_checking, 25% send_payment,
// 15% write_check, 15% amalgamate, 15% query.
func (g *Generator) Next() (*txn.Tx, error) {
	p := g.rng.Intn(100)
	var inv txn.Invocation
	switch {
	case p < 15:
		inv = txn.Invocation{Contract: contract.SmallbankName, Method: "transact_savings",
			Args: [][]byte{g.account(), amount(g)}}
	case p < 30:
		inv = txn.Invocation{Contract: contract.SmallbankName, Method: "deposit_checking",
			Args: [][]byte{g.account(), amount(g)}}
	case p < 55:
		src := g.account()
		inv = txn.Invocation{Contract: contract.SmallbankName, Method: "send_payment",
			Args: [][]byte{src, g.otherAccount(src), amount(g)}}
	case p < 70:
		inv = txn.Invocation{Contract: contract.SmallbankName, Method: "write_check",
			Args: [][]byte{g.account(), amount(g)}}
	case p < 85:
		src := g.account()
		inv = txn.Invocation{Contract: contract.SmallbankName, Method: "amalgamate",
			Args: [][]byte{src, g.otherAccount(src)}}
	default:
		inv = txn.Invocation{Contract: contract.SmallbankName, Method: "query",
			Args: [][]byte{g.account()}}
	}
	return txn.Sign(g.client, inv)
}

// LoadTxs returns the create_account transactions that populate the state.
func (c Config) LoadTxs(client *cryptoutil.Signer) ([]*txn.Tx, error) {
	c = c.withDefaults()
	txs := make([]*txn.Tx, 0, c.Accounts)
	for i := 0; i < c.Accounts; i++ {
		t, err := txn.Sign(client, txn.Invocation{
			Contract: contract.SmallbankName,
			Method:   "create_account",
			Args: [][]byte{
				[]byte(Account(i)),
				contract.EncodeInt64(c.InitialBalance),
				contract.EncodeInt64(c.InitialBalance),
			},
		})
		if err != nil {
			return nil, err
		}
		txs = append(txs, t)
	}
	return txs, nil
}
