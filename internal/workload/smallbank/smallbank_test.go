package smallbank

import (
	"testing"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
)

func TestProfileMix(t *testing.T) {
	g := NewGenerator(Config{Accounts: 1000, Seed: 1}, cryptoutil.MustNewSigner("c"))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		tx, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[tx.Invocation.Method]++
	}
	for _, m := range []string{"transact_savings", "deposit_checking", "send_payment",
		"write_check", "amalgamate", "query"} {
		if counts[m] == 0 {
			t.Fatalf("profile %s never generated (%v)", m, counts)
		}
	}
	// send_payment is the largest slice (~25%).
	if counts["send_payment"] < counts["query"] {
		t.Fatalf("mix off: %v", counts)
	}
}

func TestSendPaymentDistinctAccounts(t *testing.T) {
	g := NewGenerator(Config{Accounts: 5, Theta: 1, Seed: 2}, cryptoutil.MustNewSigner("c"))
	for i := 0; i < 2000; i++ {
		tx, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tx.Invocation.Method == "send_payment" || tx.Invocation.Method == "amalgamate" {
			if string(tx.Invocation.Args[0]) == string(tx.Invocation.Args[1]) {
				t.Fatal("self-transfer generated")
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(Config{Accounts: 10_000, Theta: 1, Seed: 3}, cryptoutil.MustNewSigner("c"))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[string(g.account())]++
	}
	if counts[Account(0)] < 100 {
		t.Fatalf("hottest account drawn only %d times", counts[Account(0)])
	}
}

func TestLoadTxs(t *testing.T) {
	client := cryptoutil.MustNewSigner("c")
	txs, err := Config{Accounts: 25, InitialBalance: 500}.LoadTxs(client)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 25 {
		t.Fatalf("LoadTxs = %d txs", len(txs))
	}
	if txs[0].Invocation.Method != "create_account" {
		t.Fatalf("method = %q", txs[0].Invocation.Method)
	}
	if contract.DecodeInt64(txs[0].Invocation.Args[1]) != 500 {
		t.Fatal("initial balance wrong")
	}
	if err := txs[0].VerifyClient(client.Public()); err != nil {
		t.Fatal(err)
	}
}

func TestAccountFormat(t *testing.T) {
	if Account(1) == Account(2) || len(Account(1)) != len(Account(99999)) {
		t.Fatal("account ids malformed")
	}
}
