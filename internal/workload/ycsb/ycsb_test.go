package ycsb

import (
	"testing"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
)

func TestKeysDeterministic(t *testing.T) {
	if Key(7) != Key(7) || Key(7) == Key(8) {
		t.Fatal("Key not stable/unique")
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	g := NewGenerator(Config{Records: 100, Seed: 1}, cryptoutil.MustNewSigner("c"))
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		idx := g.NextKeyIndex()
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform draw covered only %d/100 keys", len(seen))
	}
}

func TestZipfianSkewsTowardsHotKeys(t *testing.T) {
	g := NewGenerator(Config{Records: 10_000, Theta: 0.99, Seed: 2}, cryptoutil.MustNewSigner("c"))
	counts := map[int]int{}
	const draws = 20_000
	for i := 0; i < draws; i++ {
		counts[g.NextKeyIndex()]++
	}
	hot := 0
	for idx, c := range counts {
		if idx < 100 {
			hot += c
		}
	}
	// Under θ≈1, the hottest 1% of keys should absorb a large share.
	if float64(hot)/draws < 0.3 {
		t.Fatalf("hot-key share = %.2f, want ≥ 0.3", float64(hot)/draws)
	}
}

func TestZipfianBounds(t *testing.T) {
	g := NewGenerator(Config{Records: 50, Theta: 0.8, Seed: 3}, cryptoutil.MustNewSigner("c"))
	for i := 0; i < 10_000; i++ {
		idx := g.NextKeyIndex()
		if idx < 0 || idx >= 50 {
			t.Fatalf("zipfian index %d out of [0,50)", idx)
		}
	}
}

func TestNextSingleOp(t *testing.T) {
	g := NewGenerator(Config{Records: 100, RecordSize: 64, Seed: 4}, cryptoutil.MustNewSigner("c"))
	tx, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tx.Invocation.Method != "modify" || len(tx.Invocation.Args) != 2 {
		t.Fatalf("tx = %+v", tx.Invocation)
	}
	if len(tx.Invocation.Args[1]) != 64 {
		t.Fatalf("record size = %d", len(tx.Invocation.Args[1]))
	}
}

func TestNextMultiOpSplitsRecordSize(t *testing.T) {
	g := NewGenerator(Config{Records: 100, RecordSize: 1000, OpsPerTxn: 10, Seed: 5},
		cryptoutil.MustNewSigner("c"))
	tx, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tx.Invocation.Method != "multi" || len(tx.Invocation.Args) != 20 {
		t.Fatalf("tx = %v args", len(tx.Invocation.Args))
	}
	// Distinct keys, each value 100 bytes so the total stays 1000.
	keys := map[string]bool{}
	for i := 0; i < 20; i += 2 {
		keys[string(tx.Invocation.Args[i])] = true
		if len(tx.Invocation.Args[i+1]) != 100 {
			t.Fatalf("per-op size = %d, want 100", len(tx.Invocation.Args[i+1]))
		}
	}
	if len(keys) != 10 {
		t.Fatalf("%d distinct keys, want 10", len(keys))
	}
}

func TestReadFractionProducesGets(t *testing.T) {
	g := NewGenerator(Config{Records: 100, ReadFraction: 1.0, Seed: 6}, cryptoutil.MustNewSigner("c"))
	for i := 0; i < 10; i++ {
		tx, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tx.Invocation.Method != "get" {
			t.Fatalf("method = %q, want get", tx.Invocation.Method)
		}
	}
}

func TestTxsAreSigned(t *testing.T) {
	client := cryptoutil.MustNewSigner("c")
	g := NewGenerator(Config{Records: 10, Seed: 7}, client)
	tx, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.VerifyClient(client.Public()); err != nil {
		t.Fatalf("generated tx does not verify: %v", err)
	}
	if tx.Invocation.Contract != contract.KVName {
		t.Fatalf("contract = %q", tx.Invocation.Contract)
	}
}

func TestLoadKeys(t *testing.T) {
	keys := Config{Records: 10}.LoadKeys()
	if len(keys) != 10 || keys[0] != Key(0) {
		t.Fatalf("LoadKeys = %v", keys[:2])
	}
}
