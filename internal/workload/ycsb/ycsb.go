// Package ycsb generates the YCSB workloads of the paper's experiments:
// keyed records of configurable size, a Zipfian request distribution with
// tunable skew θ, and update/read/read-modify-write operation mixes with a
// configurable operation count per transaction (Table 3's parameters).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"

	"dichotomy/internal/contract"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/txn"
)

// Config mirrors Table 3.
type Config struct {
	// Records is the populated key-space size (paper: 100K for YCSB).
	Records int
	// RecordSize is the value size in bytes (default 1000).
	RecordSize int
	// Theta is the Zipfian coefficient; 0 = uniform.
	Theta float64
	// OpsPerTxn is the number of records one transaction modifies.
	OpsPerTxn int
	// ReadFraction is the probability a generated op is a read (0 = pure
	// update workload, 1 = pure query workload).
	ReadFraction float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Records <= 0 {
		c.Records = 100_000
	}
	if c.RecordSize <= 0 {
		c.RecordSize = 1000
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 1
	}
	return c
}

// Generator produces signed transactions for a client identity. Not safe
// for concurrent use; the harness creates one per worker.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	zipf   *zipfian
	client *cryptoutil.Signer
}

// NewGenerator returns a generator for the given client.
func NewGenerator(cfg Config, client *cryptoutil.Signer) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		client: client,
	}
	if cfg.Theta > 0 {
		g.zipf = newZipfian(cfg.Records, cfg.Theta, g.rng)
	}
	return g
}

// Key renders the i-th record key.
func Key(i int) string { return fmt.Sprintf("user%09d", i) }

// NextKeyIndex draws a record index from the configured distribution.
func (g *Generator) NextKeyIndex() int {
	if g.zipf != nil {
		return g.zipf.next()
	}
	return g.rng.Intn(g.cfg.Records)
}

// value produces a fresh record payload of the configured size. When a
// transaction carries multiple operations the per-record size shrinks so
// the total stays constant (the Fig 10 protocol).
func (g *Generator) value(perOp int) []byte {
	v := make([]byte, perOp)
	for i := range v {
		v[i] = byte('a' + g.rng.Intn(26))
	}
	return v
}

// Next produces the next transaction.
func (g *Generator) Next() (*txn.Tx, error) {
	if g.cfg.ReadFraction > 0 && g.rng.Float64() < g.cfg.ReadFraction {
		return txn.Sign(g.client, txn.Invocation{
			Contract: contract.KVName,
			Method:   "get",
			Args:     [][]byte{[]byte(Key(g.NextKeyIndex()))},
		})
	}
	perOp := g.cfg.RecordSize / g.cfg.OpsPerTxn
	if perOp < 1 {
		perOp = 1
	}
	if g.cfg.OpsPerTxn == 1 {
		return txn.Sign(g.client, txn.Invocation{
			Contract: contract.KVName,
			Method:   "modify",
			Args:     [][]byte{[]byte(Key(g.NextKeyIndex())), g.value(perOp)},
		})
	}
	args := make([][]byte, 0, g.cfg.OpsPerTxn*2)
	seen := make(map[int]bool, g.cfg.OpsPerTxn)
	for len(seen) < g.cfg.OpsPerTxn {
		idx := g.NextKeyIndex()
		if seen[idx] {
			continue
		}
		seen[idx] = true
		args = append(args, []byte(Key(idx)), g.value(perOp))
	}
	return txn.Sign(g.client, txn.Invocation{
		Contract: contract.KVName,
		Method:   "multi",
		Args:     args,
	})
}

// LoadKeys returns every key in the populated space, for pre-loading.
func (c Config) LoadKeys() []string {
	c = c.withDefaults()
	keys := make([]string, c.Records)
	for i := range keys {
		keys[i] = Key(i)
	}
	return keys
}

// zipfian draws ranks with P(i) ∝ 1/i^θ using the Gray et al. (1994)
// incremental method — the same algorithm the YCSB driver uses.
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func newZipfian(n int, theta float64, rng *rand.Rand) *zipfian {
	z := &zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
