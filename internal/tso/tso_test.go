package tso

import (
	"sync"
	"testing"
)

func TestMonotonic(t *testing.T) {
	o := New()
	prev := o.Next()
	for i := 0; i < 1000; i++ {
		ts := o.Next()
		if ts <= prev {
			t.Fatalf("timestamp %d not greater than %d", ts, prev)
		}
		prev = ts
	}
}

func TestNeverZero(t *testing.T) {
	if New().Next() == 0 {
		t.Fatal("oracle issued the zero sentinel")
	}
}

func TestUniqueUnderConcurrency(t *testing.T) {
	o := New()
	const workers, per = 16, 1000
	out := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- o.Next()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[uint64]bool, workers*per)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		seen[ts] = true
	}
}

func TestCurrentTracksNext(t *testing.T) {
	o := New()
	ts := o.Next()
	if o.Current() != ts {
		t.Fatalf("Current = %d, want %d", o.Current(), ts)
	}
}
