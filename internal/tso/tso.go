// Package tso implements a timestamp oracle — the Placement Driver
// component TiDB uses to issue globally ordered timestamps for snapshot
// isolation. A single atomic counter suffices in-process; the real PD's
// batching and leases change latency, not ordering semantics.
package tso

import "sync/atomic"

// Oracle issues strictly increasing timestamps.
type Oracle struct {
	last atomic.Uint64
}

// New returns an oracle starting above zero (zero is the "unset" sentinel
// throughout the MVCC layer).
func New() *Oracle {
	o := &Oracle{}
	o.last.Store(1)
	return o
}

// Next returns a fresh timestamp greater than all previously issued ones.
func (o *Oracle) Next() uint64 { return o.last.Add(1) }

// Current returns the most recently issued timestamp.
func (o *Oracle) Current() uint64 { return o.last.Load() }
