package twopc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus/pbft"
)

// fakePart is a scriptable participant.
type fakePart struct {
	mu       sync.Mutex
	vote     Vote
	prepErr  error
	prepared map[string]bool
	commits  []string
	aborts   []string
}

func newFakePart(v Vote) *fakePart {
	return &fakePart{vote: v, prepared: make(map[string]bool)}
}

func (p *fakePart) Prepare(txID string) (Vote, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.prepErr != nil {
		return VoteAbort, p.prepErr
	}
	p.prepared[txID] = true
	return p.vote, nil
}

func (p *fakePart) Commit(txID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.prepared[txID] {
		return fmt.Errorf("commit before prepare for %s", txID)
	}
	p.commits = append(p.commits, txID)
	return nil
}

func (p *fakePart) Abort(txID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborts = append(p.aborts, txID)
	return nil
}

func (p *fakePart) committed() int { p.mu.Lock(); defer p.mu.Unlock(); return len(p.commits) }
func (p *fakePart) aborted() int   { p.mu.Lock(); defer p.mu.Unlock(); return len(p.aborts) }

func TestAllVoteCommit(t *testing.T) {
	c := NewCoordinator()
	parts := []Participant{newFakePart(VoteCommit), newFakePart(VoteCommit)}
	if err := c.Run("tx1", parts); err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.(*fakePart).committed() != 1 {
			t.Fatalf("participant %d did not commit", i)
		}
	}
	if d, ok := c.Outcome("tx1"); !ok || d != DecisionCommit {
		t.Fatal("outcome not recorded")
	}
}

func TestOneAbortVoteAbortsAll(t *testing.T) {
	c := NewCoordinator()
	good := newFakePart(VoteCommit)
	bad := newFakePart(VoteAbort)
	err := c.Run("tx1", []Participant{good, bad})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if good.committed() != 0 || good.aborted() != 1 {
		t.Fatal("commit-voting participant must still abort")
	}
	if d, _ := c.Outcome("tx1"); d != DecisionAbort {
		t.Fatal("outcome should be abort")
	}
}

func TestPrepareErrorAborts(t *testing.T) {
	c := NewCoordinator()
	broken := newFakePart(VoteCommit)
	broken.prepErr = errors.New("disk on fire")
	good := newFakePart(VoteCommit)
	if err := c.Run("tx1", []Participant{good, broken}); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if good.committed() != 0 {
		t.Fatal("committed despite peer failure")
	}
}

func TestManyTransactionsIndependent(t *testing.T) {
	c := NewCoordinator()
	p := newFakePart(VoteCommit)
	for i := 0; i < 50; i++ {
		if err := c.Run(fmt.Sprintf("tx%d", i), []Participant{p}); err != nil {
			t.Fatal(err)
		}
	}
	if p.committed() != 50 {
		t.Fatalf("committed %d, want 50", p.committed())
	}
}

func bftGroup(t *testing.T) *pbft.Node {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	peers := []cluster.NodeID{0, 1, 2, 3}
	var nodes []*pbft.Node
	for _, id := range peers {
		nodes = append(nodes, pbft.New(pbft.Config{
			ID: id, Peers: peers, Endpoint: net.Register(id, 4096),
		}))
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
		net.Close()
	})
	return nodes[0]
}

func TestReplicatedCoordinatorCommit(t *testing.T) {
	rc := NewReplicatedCoordinator(bftGroup(t))
	defer rc.Close()
	parts := []Participant{newFakePart(VoteCommit), newFakePart(VoteCommit)}
	done := make(chan error, 1)
	go func() { done <- rc.Run("xtx-1", parts) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("replicated 2PC never finished")
	}
	for i, p := range parts {
		if p.(*fakePart).committed() != 1 {
			t.Fatalf("participant %d missing commit", i)
		}
	}
}

func TestReplicatedCoordinatorAbort(t *testing.T) {
	rc := NewReplicatedCoordinator(bftGroup(t))
	defer rc.Close()
	parts := []Participant{newFakePart(VoteCommit), newFakePart(VoteAbort)}
	if err := rc.Run("xtx-2", parts); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if parts[0].(*fakePart).aborted() != 1 {
		t.Fatal("abort not propagated")
	}
}
