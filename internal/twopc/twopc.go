// Package twopc implements two-phase commit for cross-shard transactions —
// the atomicity mechanism of the paper's sharding dimension. Two
// coordinator flavours exist:
//
//   - Coordinator: the database flavour — a single trusted coordinator
//     (TiDB, Spanner). Fast, but a blocking single point of failure.
//   - ReplicatedCoordinator: the blockchain flavour — the coordinator's
//     decisions are themselves sequenced through a BFT consensus group
//     before taking effect (AHL's "2PC state machine in a BFT shard"),
//     trading latency for a coordinator that cannot equivocate or block.
package twopc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dichotomy/internal/consensus"
)

// Vote is a participant's answer to prepare.
type Vote int

const (
	// VoteCommit means the participant locked its resources.
	VoteCommit Vote = iota
	// VoteAbort means the participant rejected the transaction.
	VoteAbort
)

// Participant is one shard's involvement in a distributed transaction.
type Participant interface {
	// Prepare locks the transaction's resources and votes.
	Prepare(txID string) (Vote, error)
	// Commit makes the prepared transaction durable. Called only after
	// every participant voted commit.
	Commit(txID string) error
	// Abort releases the prepared resources.
	Abort(txID string) error
}

// ErrAborted is returned by Run when any participant voted abort.
var ErrAborted = errors.New("twopc: transaction aborted")

// Decision is the coordinator's verdict for one transaction.
type Decision int

const (
	// DecisionCommit commits the transaction on all shards.
	DecisionCommit Decision = iota
	// DecisionAbort rolls it back.
	DecisionAbort
)

// Coordinator is the trusted single-node coordinator used by databases.
type Coordinator struct {
	mu       sync.Mutex
	outcomes map[string]Decision
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{outcomes: make(map[string]Decision)}
}

// Run drives txID through both phases across the participants. The first
// abort vote (or error) aborts everywhere. Prepares fan out concurrently —
// the round-trip structure whose cost grows with the number of shards
// touched (Fig 10).
func (c *Coordinator) Run(txID string, parts []Participant) error {
	votes := make([]Vote, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p Participant) {
			defer wg.Done()
			votes[i], errs[i] = p.Prepare(txID)
		}(i, p)
	}
	wg.Wait()
	decision := DecisionCommit
	for i := range parts {
		if errs[i] != nil || votes[i] == VoteAbort {
			decision = DecisionAbort
			break
		}
	}
	c.mu.Lock()
	c.outcomes[txID] = decision
	c.mu.Unlock()
	return finish(txID, decision, parts)
}

// Outcome reports the recorded decision for txID.
func (c *Coordinator) Outcome(txID string) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.outcomes[txID]
	return d, ok
}

func finish(txID string, d Decision, parts []Participant) error {
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p Participant) {
			defer wg.Done()
			if d == DecisionCommit {
				_ = p.Commit(txID)
			} else {
				_ = p.Abort(txID)
			}
		}(p)
	}
	wg.Wait()
	if d == DecisionAbort {
		return ErrAborted
	}
	return nil
}

// ReplicatedCoordinator sequences every decision through a consensus node
// (PBFT in AHL) before applying it, so no single machine can block or
// equivocate on an outcome. The consensus round inserted between voting
// and completion is the "considerable overhead to the 2PC process" the
// paper attributes to Byzantine-safe coordination.
type ReplicatedCoordinator struct {
	node consensus.Node

	mu      sync.Mutex
	waiters map[string]chan Decision
	stopCh  chan struct{}
	once    sync.Once
}

// NewReplicatedCoordinator wraps a running consensus node. The caller owns
// the node's lifecycle; Close only detaches the decision pump.
func NewReplicatedCoordinator(node consensus.Node) *ReplicatedCoordinator {
	rc := &ReplicatedCoordinator{
		node:    node,
		waiters: make(map[string]chan Decision),
		stopCh:  make(chan struct{}),
	}
	go rc.pump()
	return rc
}

// pump applies sequenced decisions to their waiters.
func (rc *ReplicatedCoordinator) pump() {
	for {
		select {
		case <-rc.stopCh:
			return
		case e, ok := <-rc.node.Committed():
			if !ok {
				return
			}
			if len(e.Data) < 2 {
				continue
			}
			d := Decision(e.Data[0])
			txID := string(e.Data[1:])
			rc.mu.Lock()
			if ch, ok := rc.waiters[txID]; ok {
				delete(rc.waiters, txID)
				ch <- d
			}
			rc.mu.Unlock()
		}
	}
}

// Close detaches the decision pump.
func (rc *ReplicatedCoordinator) Close() {
	rc.once.Do(func() { close(rc.stopCh) })
}

// Run drives txID through 2PC with the decision round replicated.
func (rc *ReplicatedCoordinator) Run(txID string, parts []Participant) error {
	votes := make([]Vote, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p Participant) {
			defer wg.Done()
			votes[i], errs[i] = p.Prepare(txID)
		}(i, p)
	}
	wg.Wait()
	decision := DecisionCommit
	for i := range parts {
		if errs[i] != nil || votes[i] == VoteAbort {
			decision = DecisionAbort
			break
		}
	}
	// Replicate the decision before telling any participant: once
	// sequenced, the outcome survives coordinator failure.
	ch := make(chan Decision, 1)
	rc.mu.Lock()
	rc.waiters[txID] = ch
	rc.mu.Unlock()
	payload := append([]byte{byte(decision)}, txID...)
	if err := rc.node.Propose(payload); err != nil {
		rc.mu.Lock()
		delete(rc.waiters, txID)
		rc.mu.Unlock()
		return fmt.Errorf("twopc: replicate decision: %w", err)
	}
	select {
	case sequenced := <-ch:
		return finish(txID, sequenced, parts)
	case <-time.After(30 * time.Second):
		rc.mu.Lock()
		delete(rc.waiters, txID)
		rc.mu.Unlock()
		return fmt.Errorf("twopc: decision for %s never sequenced", txID)
	}
}
