// Package blockingsend forbids raw blocking channel sends in the
// transport and consensus layers (internal/cluster, internal/consensus,
// internal/sharedlog) and the admission front door (internal/ingress).
//
// The invariant: a consensus state machine or transport pump that
// blocks on `ch <- v` while a peer is slow (or crashed, or its inbox
// full) wedges the whole cluster — exactly the PR-2-era sharedlog
// stall, where one undrained follower stream stopped every system cold.
// Every send on these paths must be able to give up: a select with a
// default or timeout/stop case, or the bounded non-blocking
// Endpoint.Send, which fails fast with ErrBackpressure.
package blockingsend

import (
	"go/ast"
	"strings"

	"dichotomy/internal/analysis"
)

// scopes are the package path fragments whose sends must be
// non-blocking; everywhere else a blocking send can be a legitimate
// rendezvous.
var scopes = []string{
	"internal/cluster",
	"internal/consensus",
	"internal/sharedlog",
	// The mempool sits upstream of consensus with the same obligation: a
	// Submit or builder that blocks on a raw send wedges every client at
	// the front door instead of shedding.
	"internal/ingress",
	// The fault injector runs inside Endpoint.Send and the engine write
	// path; a blocking send there would wedge the very seams it is meant
	// to stress.
	"internal/chaos",
}

var Analyzer = &analysis.Analyzer{
	Name: "blockingsend",
	Doc:  "channel sends in cluster/consensus/sharedlog/ingress must be non-blocking (select with default/timeout) or go through Endpoint.Send",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopes {
		if strings.Contains(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		parents := analysis.Parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(send.Pos()) {
				return true
			}
			if !escapable(send, parents) {
				pass.Report(send.Pos(), "blocking channel send on a consensus/transport path: use a select with default or timeout, or bounded Endpoint.Send")
			}
			return true
		})
	}
	return nil
}

// escapable reports whether the send is a comm clause of a select that
// has another way out: a default clause or a receive case (timeout,
// stop channel, peer cancellation).
func escapable(send *ast.SendStmt, parents map[ast.Node]ast.Node) bool {
	clause, ok := parents[send].(*ast.CommClause)
	if !ok || clause.Comm != send {
		return false
	}
	// The clause's parent is the select's body block; the select is one
	// level further up.
	body, ok := parents[clause].(*ast.BlockStmt)
	if !ok {
		return false
	}
	sel, ok := parents[body].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, stmt := range sel.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok || cc == clause {
			continue
		}
		if cc.Comm == nil {
			return true // default clause
		}
		if isReceive(cc.Comm) {
			return true // timeout / stop / cancellation case
		}
	}
	return false
}

func isReceive(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	}
	return false
}
