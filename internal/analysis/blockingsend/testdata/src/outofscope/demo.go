// Package demo holds the same raw send as the in-scope suite; under a
// non-transport import path it must produce no findings.
package demo

func raw(ch chan int) {
	ch <- 1
}
