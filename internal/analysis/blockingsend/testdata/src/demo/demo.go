// Package demo exercises blockingsend: raw sends on transport paths
// are the PR-2-era wedge class; selects with an escape hatch are not.
package demo

import "time"

func raw(ch chan int) {
	ch <- 1 // want `blocking channel send`
}

func selectOnlySend(ch chan int) {
	// A single-case select is still a blocking send.
	select {
	case ch <- 1: // want `blocking channel send`
	}
}

func twoSendsNoEscape(a, b chan int) {
	select {
	case a <- 1: // want `blocking channel send`
	case b <- 2: // want `blocking channel send`
	}
}

func withDefault(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func withTimeout(ch chan int) {
	select {
	case ch <- 1:
	case <-time.After(time.Millisecond):
	}
}

func withStop(ch chan int, stop chan struct{}) {
	select {
	case ch <- 1:
	case _, ok := <-stop:
		_ = ok
	}
}

func excused(ch chan int) {
	ch <- 1 //lint:allow blockingsend rendezvous with a guaranteed reader
}
