package blockingsend_test

import (
	"testing"

	"dichotomy/internal/analysis/analyzertest"
	"dichotomy/internal/analysis/blockingsend"
)

func TestBlockingSend(t *testing.T) {
	analyzertest.Run(t, blockingsend.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/cluster/demo",
	})
}

// The ingress front door carries the same obligation as the transport
// layers: the demo fixture's findings must reproduce under its import
// path.
func TestIngressScope(t *testing.T) {
	analyzertest.Run(t, blockingsend.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/ingress/demo",
	})
}

// The chaos injector executes inside transport and engine hot paths, so
// it carries the same non-blocking obligation.
func TestChaosScope(t *testing.T) {
	analyzertest.Run(t, blockingsend.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/chaos/demo",
	})
}

// Outside the transport/consensus scope a blocking send is a legitimate
// rendezvous; the same file must produce no findings.
func TestOutOfScope(t *testing.T) {
	analyzertest.Run(t, blockingsend.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/outofscope",
		Path: "dichotomy/internal/bench/demo",
	})
}
