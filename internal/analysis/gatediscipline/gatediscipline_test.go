package gatediscipline_test

import (
	"testing"

	"dichotomy/internal/analysis/analyzertest"
	"dichotomy/internal/analysis/gatediscipline"
)

func TestStateDiscipline(t *testing.T) {
	analyzertest.Run(t, gatediscipline.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/state",
		Path: "dichotomy/internal/state",
	})
}

func TestDumpResetPairing(t *testing.T) {
	analyzertest.Run(t, gatediscipline.Analyzer,
		analyzertest.Package{Dir: "testdata/src/state", Path: "dichotomy/internal/state"},
		analyzertest.Package{Dir: "testdata/src/consumer", Path: "dichotomy/internal/recovery/demo"},
	)
}
