// Package demo exercises the DumpDirty/ResetDirty pairing rule, which
// applies in every package that consumes internal/state's dirty set.
package demo

import "dichotomy/internal/state"

func paired(st *state.Store) int {
	dirty := st.DumpDirty()
	st.ResetDirty()
	return len(dirty)
}

func unpaired(st *state.Store) int {
	dirty := st.DumpDirty() // want `DumpDirty without a paired ResetDirty`
	return len(dirty)
}

// resetOnly is fine: clearing without consuming loses nothing.
func resetOnly(st *state.Store) {
	st.ResetDirty()
}
