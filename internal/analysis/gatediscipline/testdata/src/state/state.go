// Package state is a miniature of dichotomy/internal/state with the
// same locking contract: dirty bookkeeping under dirtyMu, stripe maps
// under their shard lock, and caller-holds preconditions in docs.
package state

import "sync"

type mapShard struct {
	mu sync.RWMutex
	m  map[string]int
}

type Store struct {
	gate       sync.RWMutex
	dirtyMu    sync.Mutex
	dirty      map[string]struct{}
	dirtyBytes int
	shards     []mapShard
}

// NewStore builds a Store; the value is not shared yet, so guarded
// fields may be initialized without locks — with a justification.
func NewStore(n int) *Store {
	s := &Store{shards: make([]mapShard, n)}
	s.dirty = make(map[string]struct{}) //lint:allow gatediscipline construction, not yet shared with any goroutine
	for i := range s.shards {
		s.shards[i].m = make(map[string]int) //lint:allow gatediscipline construction, not yet shared with any goroutine
	}
	return s
}

func (s *Store) shard(key string) *mapShard {
	return &s.shards[len(key)%len(s.shards)]
}

// lockShards acquires every stripe's write lock in order.
func (s *Store) lockShards() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

// unlockShards releases every stripe's write lock.
func (s *Store) unlockShards() {
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

func (s *Store) goodDirtyAdd(key string, n int) {
	s.dirtyMu.Lock()
	s.dirty[key] = struct{}{}
	s.dirtyBytes += n
	s.dirtyMu.Unlock()
}

func (s *Store) deferredUnlock(key string) {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	delete(s.dirty, key)
}

func (s *Store) badDirtyAdd(key string) {
	s.dirty[key] = struct{}{} // want `Store.dirty accessed without holding dirtyMu`
}

func (s *Store) badBytes() int {
	return s.dirtyBytes // want `Store.dirtyBytes accessed without holding dirtyMu`
}

// branchLock locks only inside the branch: after it, nothing is held.
func (s *Store) branchLock(key string) {
	if key != "" {
		s.dirtyMu.Lock()
		s.dirty[key] = struct{}{}
		s.dirtyMu.Unlock()
	}
	s.dirtyBytes++ // want `Store.dirtyBytes accessed without holding dirtyMu`
}

// asyncBad spawns a goroutine that inherits none of the spawner's locks.
func (s *Store) asyncBad(key string) {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	go func() {
		delete(s.dirty, key) // want `Store.dirty accessed without holding dirtyMu`
	}()
}

// get returns key's value. The caller must hold this shard's lock.
func (sh *mapShard) get(key string) int {
	return sh.m[key]
}

func (s *Store) readGood(key string) int {
	sh := s.shard(key)
	sh.mu.RLock()
	v := sh.m[key]
	sh.mu.RUnlock()
	return v
}

func (s *Store) readBad(key string) int {
	sh := s.shard(key)
	return sh.m[key] // want `mapShard.m accessed without holding the stripe lock`
}

func (s *Store) callGood(key string) int {
	sh := s.shard(key)
	sh.mu.Lock()
	v := sh.get(key)
	sh.mu.Unlock()
	return v
}

func (s *Store) callBad(key string) int {
	sh := s.shard(key)
	return sh.get(key) // want `call to get requires the stripe lock held`
}

// applyGroup installs one transaction's writes into a stripe. The
// caller holds the commit gate and the stripe's write lock.
func (s *Store) applyGroup(sh *mapShard, keys []string) {
	for _, k := range keys {
		sh.m[k] = len(k)
	}
}

func (s *Store) commitGood(keys []string) {
	s.gate.Lock()
	s.lockShards()
	for _, k := range keys {
		s.applyGroup(s.shard(k), keys[:1])
	}
	s.unlockShards()
	s.gate.Unlock()
}

func (s *Store) commitBad(keys []string) {
	s.gate.Lock()
	for _, k := range keys {
		s.applyGroup(s.shard(k), keys[:1]) // want `call to applyGroup requires the stripe lock held`
	}
	s.gate.Unlock()
}

// View runs fn under key's stripe lock; the callback is synchronous,
// so it lexically inherits the held set.
func (s *Store) View(key string, fn func(m map[string]int)) {
	sh := s.shard(key)
	sh.mu.RLock()
	fn(sh.m)
	sh.mu.RUnlock()
}

func (s *Store) updateInline(key string) {
	sh := s.shard(key)
	sh.mu.Lock()
	func() {
		sh.m[key] = 1
	}()
	sh.mu.Unlock()
}

// DumpDirty returns a copy of the dirty set.
func (s *Store) DumpDirty() map[string]struct{} {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	out := make(map[string]struct{}, len(s.dirty))
	for k := range s.dirty {
		out[k] = struct{}{}
	}
	return out
}

// ResetDirty clears the dirty set and its byte counter.
func (s *Store) ResetDirty() {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	s.dirty = make(map[string]struct{})
	s.dirtyBytes = 0
}
