// Package gatediscipline enforces internal/state's locking contract by
// flow analysis over each function body, plus the delta-checkpoint
// pairing rule every consumer of the dirty set must follow.
//
// The guarded entities and their locks:
//
//   - Store.dirty / Store.dirtyBytes — guarded by Store.dirtyMu. An
//     unguarded read races the commit path; an unguarded write corrupts
//     the next delta checkpoint.
//   - mapShard.m (a stripe's backing map) — guarded by that stripe's
//     write lock (mapShard.mu, or all touched stripes via lockShards).
//   - Store.gate — the commit gate ordering block commits against
//     snapshots; functions documented as requiring it are checked at
//     every call site.
//
// A function may declare that its caller acquires a lock on its behalf
// with a doc comment containing "caller ... hold[s]" and the lock name
// ("gate", "stripe"/"shard", "dirty"); the analyzer then grants those
// locks inside the body and requires them at every call site — the
// applyGroup/shardMap pattern.
//
// The analysis is lexical and conservative: a lock acquired inside a
// branch is not considered held after it, and a goroutine body starts
// with nothing held. Constructor code that touches a guarded field
// before the value is shared carries a //lint:allow justification.
//
// Pairing rule (checked in every package): a function that calls
// Store.DumpDirty must call ResetDirty too — a consumed-but-not-reset
// dirty set re-carries the whole interval in the next delta, silently
// inflating every checkpoint after the first.
package gatediscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"dichotomy/internal/analysis"
)

// Lock tokens.
const (
	tokGate    = "gate"
	tokStripe  = "stripe"
	tokDirtyMu = "dirtyMu"
)

// guardedFields maps (receiver type, field) to the token that must be
// held to touch it.
var guardedFields = map[[2]string]string{
	{"Store", "dirty"}:      tokDirtyMu,
	{"Store", "dirtyBytes"}: tokDirtyMu,
	{"mapShard", "m"}:       tokStripe,
}

// mutexTokens maps a mutex field name to its token (for X.<name>.Lock()
// recognition).
var mutexTokens = map[string]string{
	"gate":    tokGate,
	"dirtyMu": tokDirtyMu,
	"mu":      tokStripe,
}

var Analyzer = &analysis.Analyzer{
	Name: "gatediscipline",
	Doc:  "internal/state stripe maps and dirty fields must be accessed with their lock held on every path; DumpDirty callers must ResetDirty",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkPairing(pass)
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/state") {
		return nil
	}
	c := &checker{pass: pass, preconds: collectPreconds(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			held := map[string]int{}
			for _, tok := range docTokens(fd.Doc) {
				held[tok]++
			}
			c.stmts(fd.Body.List, held)
		}
	}
	return nil
}

// docTokens parses a caller-holds precondition out of a function's doc
// comment.
func docTokens(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	text := strings.ToLower(doc.Text())
	if !strings.Contains(text, "caller") || !strings.Contains(text, "hold") {
		return nil
	}
	var toks []string
	if strings.Contains(text, "gate") {
		toks = append(toks, tokGate)
	}
	if strings.Contains(text, "stripe") || strings.Contains(text, "shard") {
		toks = append(toks, tokStripe)
	}
	if strings.Contains(text, "dirty") {
		toks = append(toks, tokDirtyMu)
	}
	return toks
}

func collectPreconds(pass *analysis.Pass) map[types.Object][]string {
	pre := make(map[types.Object][]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if toks := docTokens(fd.Doc); len(toks) > 0 {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pre[obj] = toks
				}
			}
		}
	}
	return pre
}

type checker struct {
	pass     *analysis.Pass
	preconds map[types.Object][]string
}

func (c *checker) stmts(list []ast.Stmt, held map[string]int) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

// stmt interprets one statement: lock operations mutate the held set in
// place; control-flow statements analyze their bodies with a copy, so a
// lock acquired in a branch is (conservatively) not held after it.
func (c *checker) stmt(s ast.Stmt, held map[string]int) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if tok, delta, ok := lockOp(call); ok {
				if delta > 0 {
					held[tok]++
				} else if held[tok] > 0 {
					held[tok]--
				}
				return
			}
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		if _, _, ok := lockOp(s.Call); ok {
			return // deferred unlock: the lock stays held to function end
		}
		c.expr(s.Call, held)
	case *ast.GoStmt:
		// A spawned goroutine holds nothing, whatever the spawner held.
		c.expr(s.Call, map[string]int{})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held) // a bare block is sequential, not a branch
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		c.stmts(s.Body.List, clone(held))
		if s.Else != nil {
			c.stmt(s.Else, clone(held))
		}
	case *ast.ForStmt:
		inner := clone(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inner)
		}
		c.stmts(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.stmts(s.Body.List, clone(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := clone(held)
				if cc.Comm != nil {
					c.stmt(cc.Comm, inner)
				}
				c.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

// expr scans an expression for guarded-field accesses and calls to
// precondition-declaring functions, under the current held set.
func (c *checker) expr(e ast.Expr, held map[string]int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Callbacks run where they are invoked; lexically inheriting
			// the held set matches the package's synchronous-callback
			// style (View/Update run fn under the stripe lock).
			c.stmts(n.Body.List, clone(held))
			return false
		case *ast.SelectorExpr:
			c.fieldAccess(n, held)
		case *ast.CallExpr:
			c.callSite(n, held)
		}
		return true
	})
}

func (c *checker) fieldAccess(sel *ast.SelectorExpr, held map[string]int) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	recv := namedRecv(selection.Recv())
	tok, guarded := guardedFields[[2]string{recv, sel.Sel.Name}]
	if !guarded {
		return
	}
	if held[tok] == 0 {
		c.pass.Reportf(sel.Pos(), "%s.%s accessed without holding %s on this path", recv, sel.Sel.Name, lockName(tok))
	}
}

func (c *checker) callSite(call *ast.CallExpr, held map[string]int) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	obj := c.pass.TypesInfo.Uses[id]
	toks, ok := c.preconds[obj]
	if !ok {
		return
	}
	for _, tok := range toks {
		if held[tok] == 0 {
			c.pass.Reportf(call.Pos(), "call to %s requires %s held (caller-holds precondition)", id.Name, lockName(tok))
		}
	}
}

// lockOp recognizes lock-set mutations: X.gate.Lock(), X.dirtyMu.Lock(),
// X.mu.Lock() (and RLock/Unlock/RUnlock variants), and the multi-stripe
// lockShards/unlockShards pair. Returns the token and +1/-1.
func lockOp(call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "lockShards":
		return tokStripe, +1, true
	case "unlockShards":
		return tokStripe, -1, true
	case "Lock", "RLock", "Unlock", "RUnlock":
		name := ""
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			name = x.Sel.Name
		case *ast.Ident:
			name = x.Name
		}
		tok, ok := mutexTokens[name]
		if !ok {
			return "", 0, false
		}
		delta := +1
		if strings.Contains(sel.Sel.Name, "Unlock") {
			delta = -1
		}
		return tok, delta, true
	}
	return "", 0, false
}

func lockName(tok string) string {
	switch tok {
	case tokGate:
		return "the commit gate"
	case tokStripe:
		return "the stripe lock"
	case tokDirtyMu:
		return "dirtyMu"
	}
	return tok
}

func namedRecv(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func clone(held map[string]int) map[string]int {
	out := make(map[string]int, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkPairing runs in every package: a function body that consumes the
// dirty set via DumpDirty must also ResetDirty it.
func checkPairing(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			var dump *ast.CallExpr
			reset := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/state") {
					return true
				}
				switch fn.Name() {
				case "DumpDirty":
					if dump == nil {
						dump = call
					}
				case "ResetDirty":
					reset = true
				}
				return true
			})
			if dump != nil && !reset {
				pass.Report(dump.Pos(), "DumpDirty without a paired ResetDirty in this function: the next delta re-carries this whole interval")
			}
		}
	}
}
