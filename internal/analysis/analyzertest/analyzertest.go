// Package analyzertest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source —
// the same `// want "regexp"` convention as x/tools' analysistest, so
// each analyzer's test suite doubles as executable documentation of the
// violation class it catches.
//
// Testdata lives outside the module build (go tooling ignores testdata
// directories), so the intentional violations never trip the real lint
// run. Because several analyzers scope themselves by import path or
// match symbols from specific repo packages, each testdata package is
// type-checked under a caller-chosen import path, and earlier packages
// in the list are importable by later ones — a testdata stand-in for
// internal/state can be declared at "dichotomy/internal/state" and a
// consumer package type-checked against it.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dichotomy/internal/analysis"
)

// Package names one testdata package: a directory of .go files and the
// import path to type-check it as.
type Package struct {
	Dir  string
	Path string
}

// Run type-checks the packages in order (earlier ones are importable by
// later ones), runs the analyzer on the final package, and matches its
// diagnostics against that package's `// want` comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Package) {
	t.Helper()
	if len(pkgs) == 0 {
		t.Fatal("analyzertest: no packages")
	}

	fset := token.NewFileSet()
	deps := map[string]*types.Package{}
	// Stdlib imports in testdata resolve by compiling from GOROOT
	// source — the build environment ships no prebuilt export data.
	stdlib := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := deps[path]; ok {
			return p, nil
		}
		return stdlib.Import(path)
	})

	var (
		files []*ast.File
		pkg   *types.Package
		info  *types.Info
	)
	for i, spec := range pkgs {
		var err error
		files, err = parseDir(fset, spec.Dir)
		if err != nil {
			t.Fatalf("analyzertest: %v", err)
		}
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tc := &types.Config{Importer: imp}
		pkg, err = tc.Check(spec.Path, fset, files, info)
		if err != nil {
			t.Fatalf("analyzertest: typecheck %s: %v", spec.Path, err)
		}
		if i < len(pkgs)-1 {
			deps[spec.Path] = pkg
		}
	}

	diags := analysis.Run(fset, files, pkg, info, []*analysis.Analyzer{a})
	expects := collectWants(t, fset, files)
	matchDiagnostics(t, diags, expects)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}

// expectation is one `// want` comment: every listed pattern must be
// matched by a diagnostic on that line.
type expectation struct {
	file     string
	line     int
	patterns []*regexp.Regexp
	texts    []string
	matched  []bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				exp := &expectation{file: pos.Filename, line: pos.Line}
				for _, q := range splitQuoted(m[1]) {
					text, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
					}
					exp.patterns = append(exp.patterns, re)
					exp.texts = append(exp.texts, text)
					exp.matched = append(exp.matched, false)
				}
				if len(exp.patterns) > 0 {
					out = append(out, exp)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// splitQuoted extracts the double-quoted and backquoted strings from a
// want comment's payload (quotes included, ready for strconv.Unquote).
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= len(s) {
				return out
			}
			out = append(out, s[i:j+1])
			i = j
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, s[i:i+j+2])
			i += j + 1
		}
	}
	return out
}

func matchDiagnostics(t *testing.T, diags []analysis.Diagnostic, expects []*expectation) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, exp := range expects {
			if exp.file != d.Pos.Filename || exp.line != d.Pos.Line {
				continue
			}
			for i, re := range exp.patterns {
				if !exp.matched[i] && re.MatchString(d.Message) {
					exp.matched[i] = true
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, exp := range expects {
		for i, ok := range exp.matched {
			if !ok {
				t.Errorf("%s:%d: no diagnostic matched %q", exp.file, exp.line, exp.texts[i])
			}
		}
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
