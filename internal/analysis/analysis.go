// Package analysis is dichotomy-lint's analyzer framework: a minimal,
// dependency-free sibling of golang.org/x/tools/go/analysis (which the
// build environment does not vendor). It defines the Analyzer/Pass
// contract the repo's invariant checkers implement, and the shared
// machinery they all need — //lint:allow suppression comments and
// test-file detection.
//
// Each analyzer encodes one invariant the systems in this repo depend
// on for correctness under parallelism and crashes; see the package
// docs of the subdirectories and README.md ("Correctness tooling").
// The drivers are internal/analysis/unit (the `go vet -vettool`
// protocol) and internal/analysis/analyzertest (the `// want`-comment
// test harness).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> suppression comments.
	Name string

	// Doc is a one-paragraph description of the invariant the
	// analyzer enforces.
	Doc string

	// Run applies the analyzer to one package. It reports findings
	// through pass.Report/Reportf; the driver handles suppression
	// and rendering.
	Run func(pass *Pass) error
}

// A Pass provides one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	allow allowIndex
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a finding at pos unless a //lint:allow comment with a
// justification covers that line (the line itself or the line above).
func (pass *Pass) Report(pos token.Pos, msg string) {
	position := pass.Fset.Position(pos)
	if pass.allow.allows(pass.Analyzer.Name, position) {
		return
	}
	*pass.diags = append(*pass.diags, Diagnostic{
		Analyzer: pass.Analyzer.Name,
		Pos:      position,
		Message:  msg,
	})
}

// Reportf is Report with fmt.Sprintf formatting.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...any) {
	pass.Report(pos, fmt.Sprintf(format, args...))
}

// InTestFile reports whether pos lies in a _test.go file. The invariant
// analyzers target library code: tests deliberately provoke failures,
// block goroutines, and sleep.
func (pass *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzers over one type-checked package and returns
// the surviving (non-suppressed) diagnostics sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	allow := buildAllowIndex(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
			allow:     allow,
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer error: %v", err),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
