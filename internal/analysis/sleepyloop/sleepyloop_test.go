package sleepyloop_test

import (
	"testing"

	"dichotomy/internal/analysis/analyzertest"
	"dichotomy/internal/analysis/sleepyloop"
)

func TestSleepyLoop(t *testing.T) {
	analyzertest.Run(t, sleepyloop.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/demo",
	})
}
