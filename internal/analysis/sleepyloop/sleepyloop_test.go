package sleepyloop_test

import (
	"testing"

	"dichotomy/internal/analysis/analyzertest"
	"dichotomy/internal/analysis/sleepyloop"
)

func TestSleepyLoop(t *testing.T) {
	analyzertest.Run(t, sleepyloop.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/demo",
	})
}

// The chaos layer injects delays and stalls by design, so its sleeps are
// exactly the class that must carry a justification: the analyzer's
// internal/ scope must keep covering it.
func TestChaosScope(t *testing.T) {
	analyzertest.Run(t, sleepyloop.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/chaos/demo",
	})
}
