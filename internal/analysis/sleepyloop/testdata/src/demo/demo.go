// Package demo exercises sleepyloop: unannotated sleeps in library
// code are findings; justified cost-model sleeps are not.
package demo

import "time"

func pollLoop(done func() bool) {
	for !done() {
		time.Sleep(time.Millisecond) // want `time.Sleep in library code`
	}
}

func lockWait() {
	//lint:allow sleepyloop lock-wait cost model from the paper's figures
	time.Sleep(time.Millisecond)
}

func bareAllow() {
	time.Sleep(time.Millisecond) //lint:allow sleepyloop // want `time.Sleep in library code`
}

func notTheStdlib() {
	time := struct{ Sleep func(int) }{Sleep: func(int) {}}
	time.Sleep(1)
}
