// Package sleepyloop requires every time.Sleep in non-test library
// code to carry an explicit //lint:allow sleepyloop justification.
//
// The invariant: sleeping is either a deliberate cost model (the
// tidb/spanner/etcd lock-wait sleeps that emulate a real system's
// contention tax, the open-loop pacer) or a bug — polling where a
// channel belongs, hiding a missing wakeup, or stretching a test's
// wall-clock. Forcing the justification into the source keeps the
// first class documented and makes the second class fail CI instead of
// slipping in as an innocent-looking retry loop.
package sleepyloop

import (
	"go/ast"
	"go/types"
	"strings"

	"dichotomy/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sleepyloop",
	Doc:  "time.Sleep in library code requires a //lint:allow sleepyloop justification",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.FullName() != "time.Sleep" {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Report(call.Pos(), "time.Sleep in library code: justify with //lint:allow sleepyloop <why>, or wait on a channel")
			return true
		})
	}
	return nil
}
