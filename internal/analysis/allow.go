package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression convention: a finding is intentional when the line it
// sits on — or the line directly above it — carries a comment of the
// form
//
//	//lint:allow <analyzer> <justification>
//
// The justification is mandatory: an allow with no reason does not
// suppress anything (and the next reader learns nothing). One comment
// suppresses one analyzer; a site excused from two analyzers needs two
// comments.

const allowPrefix = "lint:allow "

// allowKey identifies one suppressed (file, line, analyzer) cell.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowIndex map[allowKey]bool

// buildAllowIndex scans every comment in the files for lint:allow
// directives and records which analyzer each one excuses, keyed by the
// comment's own line. Directives without a justification are dropped.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				// Testdata combines directives with trailing
				// `// want` expectations; those are not a reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					continue // no justification, no suppression
				}
				pos := fset.Position(c.Pos())
				idx[allowKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return idx
}

// allows reports whether the analyzer is suppressed at position: the
// directive may trail the offending line or sit on the line above it.
func (idx allowIndex) allows(analyzer string, pos token.Position) bool {
	return idx[allowKey{pos.Filename, pos.Line, analyzer}] ||
		idx[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}
