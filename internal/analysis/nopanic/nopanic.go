// Package nopanic forbids panic in non-test library code under
// internal/.
//
// The invariant: errors on the block path travel through the pipeline's
// Seal stage (or a constructor's error return) to the clients waiting
// on the block — a panic instead kills the whole node, turning a
// recoverable commit failure into the crash class PR 4's recovery layer
// exists to survive. Fabric has worked this way since PR 3; this
// analyzer holds every system to it.
//
// The ads/mpt package is allowlisted: its panics guard type switches
// over a closed node algebra that are unreachable by construction.
// Anywhere else an intentional panic (API-misuse guard, broken-platform
// randomness) needs a //lint:allow nopanic justification.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"dichotomy/internal/analysis"
)

// allowedPackages are exempt wholesale; see the package doc.
var allowedPackages = map[string]bool{
	"dichotomy/internal/ads/mpt": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in non-test library code; errors must surface through Seal or constructor returns",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/") || allowedPackages[path] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
				return true // a local function shadowing the name
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Report(call.Pos(), "panic in library code: return an error through the Seal/constructor path instead")
			return true
		})
	}
	return nil
}
