package nopanic_test

import (
	"testing"

	"dichotomy/internal/analysis/analyzertest"
	"dichotomy/internal/analysis/nopanic"
)

func TestNoPanic(t *testing.T) {
	analyzertest.Run(t, nopanic.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/demo",
		Path: "dichotomy/internal/demo",
	})
}

func TestMPTAllowlisted(t *testing.T) {
	analyzertest.Run(t, nopanic.Analyzer, analyzertest.Package{
		Dir:  "testdata/src/mpt",
		Path: "dichotomy/internal/ads/mpt",
	})
}
