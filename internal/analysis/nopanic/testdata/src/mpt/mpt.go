// Package mpt stands in for dichotomy/internal/ads/mpt, which is
// allowlisted wholesale: its panics guard closed-algebra type switches.
package mpt

type node interface{ isNode() }

type leaf struct{}

func (leaf) isNode() {}

func walk(n node) {
	switch n.(type) {
	case leaf:
	default:
		panic("mpt: unknown node") // allowlisted package: no finding
	}
}
