// Package demo exercises nopanic: library panics are findings, the
// Seal/constructor error path is the fix, and an allow needs a reason.
package demo

import "errors"

func bad() {
	panic("boom") // want `panic in library code`
}

func conditional(err error) {
	if err != nil {
		panic(err) // want `panic in library code`
	}
}

func errorPath(err error) error {
	if err != nil {
		return errors.New("surfaced") // the fix: no finding
	}
	return nil
}

func excusedTrailing() {
	panic("unreachable") //lint:allow nopanic provably unreachable guard
}

func excusedAbove() {
	//lint:allow nopanic provably unreachable guard
	panic("unreachable")
}

func noJustification() {
	panic("x") //lint:allow nopanic // want `panic in library code`
}

// A shadowing declaration is not the builtin.
func shadowed() {
	panic := func(any) {}
	panic("fine")
}
