// Package unit is the driver half of dichotomy-lint: it speaks the
// command-line protocol `go vet -vettool` requires of an analysis tool,
// so the repo's analyzers run under the go command's package loader,
// build cache, and export-data type information — no third-party
// loader needed.
//
// The protocol (see cmd/go/internal/work and the upstream unitchecker
// it was designed for):
//
//	tool -V=full    print an identity line for build caching
//	tool -flags     describe supported flags in JSON
//	tool unit.cfg   analyze the one compilation unit the JSON config
//	                describes; diagnostics to stderr, nonzero exit
//
// Anything else is taken as package patterns and re-executed as
// `go vet -vettool=<self> <patterns>`, which is what makes
// `go run ./cmd/dichotomy-lint ./...` a complete standalone run.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"dichotomy/internal/analysis"
)

// config mirrors the vetConfig JSON cmd/go writes for each package; only
// the fields this driver consumes are declared.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the driver and exits the process.
func Main(analyzers ...*analysis.Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags; cmd/go probes this at startup.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0], analyzers))
		}
	}
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(os.Stderr, "usage: %s <packages>  (e.g. ./...)\n", filepath.Base(os.Args[0]))
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

// printVersion implements the -V=full identity handshake. cmd/go keys
// its vet result cache on this line; hashing the executable makes a
// rebuilt tool invalidate stale cached results.
func printVersion() {
	progname := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		progname, string(h.Sum(nil)))
}

// standalone re-invokes the tool through `go vet -vettool`, which
// handles package loading, dependency export data, and caching.
func standalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dichotomy-lint: cannot locate own executable: %v\n", err)
		return 2
	}
	cmdArgs := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "dichotomy-lint: %v\n", err)
		return 2
	}
	return 0
}

// runUnit analyzes the single compilation unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dichotomy-lint: %v\n", err)
		return 2
	}
	if cfg.VetxOnly {
		// Dependency pass, run only to produce analysis facts; these
		// analyzers keep no cross-package facts, so there is nothing
		// to do (and no vetx file to write — cmd/go treats a missing
		// one as "no facts").
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "dichotomy-lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  makeImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dichotomy-lint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags := analysis.Run(fset, files, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func readConfig(name string) (*config, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("bad vet config %s: %v", name, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// makeImporter resolves imports from the export data files cmd/go lists
// in the config — the same mechanism the compiler itself uses, so type
// identity is exact and nothing is re-typechecked from source.
func makeImporter(cfg *config, fset *token.FileSet) types.Importer {
	compiled := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("unresolvable import %q", importPath)
		}
		return compiled.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
