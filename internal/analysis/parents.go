package analysis

import "go/ast"

// Parents maps every node in f to its parent, for analyzers that need
// to look outward from a match (e.g. "is this send the comm clause of a
// select").
func Parents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
