// Package recovery is a stand-in for dichotomy/internal/recovery with
// the Checkpointer methods the analyzer targets.
package recovery

type Checkpointer struct {
	LastErr error
}

func (c *Checkpointer) MaybeCheckpoint(height uint64) (bool, error) { return false, nil }

func (c *Checkpointer) Flush() error { return nil }
