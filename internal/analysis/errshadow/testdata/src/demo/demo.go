// Package demo exercises errshadow against the stand-in storage,
// lsm, and recovery packages.
package demo

import (
	"dichotomy/internal/ads/mbt"
	"dichotomy/internal/ads/mpt"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/recovery"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/lsm"
)

func openDropped() {
	lsm.Open(lsm.Options{}) // want `error result of Open discarded`
}

func openBlanked() *lsm.DB {
	db, _ := lsm.Open(lsm.Options{}) // want `error result of Open discarded`
	return db
}

func openHandled() (*lsm.DB, error) {
	db, err := lsm.Open(lsm.Options{})
	if err != nil {
		return nil, err
	}
	return db, nil
}

func writesDropped(e storage.Engine) {
	storage.ApplyWrites(e, 1) // want `error result of ApplyWrites discarded`
}

func putDropped(e storage.Engine) {
	e.Put("k", nil) // want `error result of Put discarded`
}

func putBlanked(e storage.Engine) {
	_ = e.Put("k", nil) // want `error result of Put discarded`
}

func putHandled(e storage.Engine) error {
	return e.Put("k", nil)
}

func deleteInGoroutine(e storage.Engine) {
	go e.Delete("k") // want `error result of Delete discarded`
}

func checkpointBlanked(c *recovery.Checkpointer) {
	_, _ = c.MaybeCheckpoint(5) // want `error result of MaybeCheckpoint discarded`
}

func checkpointExcused(c *recovery.Checkpointer) {
	//lint:allow errshadow failure retained in LastErr for the status endpoint
	_, _ = c.MaybeCheckpoint(5)
}

func flushDeferred(c *recovery.Checkpointer) {
	defer c.Flush() // want `error result of Flush discarded`
}

func flushHandled(c *recovery.Checkpointer) error {
	return c.Flush()
}

// A result passed straight into another call is consumed, not discarded.
func consume(err error) bool { return err == nil }

func flushForwarded(c *recovery.Checkpointer) bool {
	return consume(c.Flush())
}

func batchDropped(checks []cryptoutil.Check) {
	cryptoutil.VerifyBatch(checks) // want `error result of VerifyBatch discarded`
}

func batchBlanked(checks []cryptoutil.Check) {
	_ = cryptoutil.VerifyBatch(checks) // want `error result of VerifyBatch discarded`
}

func batchHandled(checks []cryptoutil.Check) error {
	return cryptoutil.VerifyBatch(checks)
}

func aggregateInGoroutine(leader cryptoutil.PublicKey, d cryptoutil.Hash, cs []cryptoutil.Signature, agg cryptoutil.AggregateSig) {
	go cryptoutil.VerifyAggregate(leader, d, cs, agg) // want `error result of VerifyAggregate discarded`
}

func aggregateHandled(leader cryptoutil.PublicKey, d cryptoutil.Hash, cs []cryptoutil.Signature, agg cryptoutil.AggregateSig) error {
	return cryptoutil.VerifyAggregate(leader, d, cs, agg)
}

// Close is not a target: unrelated error discards stay out of scope.
func closeDropped(db *lsm.DB) {
	db.Close()
}

func mptProofDropped(root mpt.Hash, proof mpt.Proof) {
	mpt.VerifyProof(root, []byte("k"), proof) // want `error result of VerifyProof discarded`
}

func mptProofBlanked(root mpt.Hash, proof mpt.Proof) {
	_ = mpt.VerifyProof(root, []byte("k"), proof) // want `error result of VerifyProof discarded`
}

func mptProofHandled(root mpt.Hash, proof mpt.Proof) error {
	return mpt.VerifyProof(root, []byte("k"), proof)
}

func mbtProofDropped(root mbt.Hash, proof mbt.Proof) {
	mbt.VerifyProof(root, []byte("k"), []byte("v"), proof) // want `error result of VerifyProof discarded`
}

func mbtProofForwarded(root mbt.Hash, proof mbt.Proof) bool {
	return consume(mbt.VerifyProof(root, []byte("k"), []byte("v"), proof))
}
