// Package lsm is a stand-in for dichotomy/internal/storage/lsm with
// the Open signature the analyzer targets.
package lsm

type Options struct {
	Path string
}

type DB struct{}

func Open(opt Options) (*DB, error) { return &DB{}, nil }

func (db *DB) Close() error { return nil }
