// Package mbt is a stand-in for dichotomy/internal/ads/mbt with the
// proof-verification surface the analyzer targets.
package mbt

type Hash [32]byte

type Proof struct{}

func VerifyProof(root Hash, key, value []byte, proof Proof) error { return nil }
