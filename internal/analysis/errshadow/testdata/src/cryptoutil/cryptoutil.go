// Package cryptoutil is a stand-in for dichotomy/internal/cryptoutil
// with the batched-verification surfaces the analyzer targets.
package cryptoutil

type Hash [32]byte

type Signature [64]byte

type PublicKey struct{}

type Check struct {
	Pub    PublicKey
	Digest Hash
	Sig    Signature
}

type AggregateSig struct {
	Commitment Hash
	Sig        Signature
}

func VerifyBatch(checks []Check) error { return nil }

func VerifyAggregate(leader PublicKey, digest Hash, cosigs []Signature, agg AggregateSig) error {
	return nil
}
