// Package storage is a stand-in for dichotomy/internal/storage with
// the Engine interface and ApplyWrites helper the analyzer targets.
package storage

type Engine interface {
	Put(key string, value []byte) error
	Delete(key string) error
}

func ApplyWrites(e Engine, n int) error { return nil }
