// Package mpt is a stand-in for dichotomy/internal/ads/mpt with the
// proof-verification surface the analyzer targets.
package mpt

type Hash [32]byte

type Proof [][]byte

func VerifyProof(root Hash, key []byte, proof Proof) error { return nil }
