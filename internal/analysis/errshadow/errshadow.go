// Package errshadow forbids discarding the error results of the
// storage and durability APIs whose failures the rest of the system is
// built to surface.
//
// The invariant: an lsm.Open or block-commit error that vanishes into
// `_` turns a detectable failure into silent state divergence — the
// exact class PR 3 moved onto the Seal error path and PR 4 made
// recoverable. The few sites that discard deliberately (crash paths
// modelling a process kill, checkpoint failures retained in LastErr)
// carry //lint:allow errshadow justifications.
package errshadow

import (
	"go/ast"
	"go/types"
	"strings"

	"dichotomy/internal/analysis"
)

// target identifies one function or method whose error result must be
// consumed. Recv is the receiver type name ("" for package functions);
// PkgSuffix anchors the match to the defining package.
type target struct {
	PkgSuffix string
	Recv      string
	Name      string
}

// targets: the engine-open, block-commit, checkpoint, signature-
// verification, and proof-verification surfaces. VerifyBatch and
// VerifyAggregate return the authoritative per-member verdict — dropping
// them admits forged endorsements into committed blocks. The ADS
// VerifyProof errors are the entire point of an authenticated read: a
// light client that discards them has trusted the replica after all.
var targets = []target{
	{"internal/storage/lsm", "", "Open"},
	{"internal/storage", "", "ApplyWrites"},
	{"internal/storage", "Engine", "Put"},
	{"internal/storage", "Engine", "Delete"},
	{"internal/state", "Store", "ApplyBlock"},
	{"internal/state", "Block", "Commit"},
	{"internal/recovery", "Checkpointer", "MaybeCheckpoint"},
	{"internal/recovery", "Checkpointer", "Flush"},
	{"internal/cryptoutil", "", "VerifyBatch"},
	{"internal/cryptoutil", "", "VerifyAggregate"},
	{"internal/ads/mpt", "", "VerifyProof"},
	{"internal/ads/mbt", "", "VerifyProof"},
}

var Analyzer = &analysis.Analyzer{
	Name: "errshadow",
	Doc:  "error results of lsm.Open, engine writes, block commits, checkpointer calls, and ADS proof verification must not be discarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		parents := analysis.Parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || !isTarget(fn) {
				return true
			}
			errIdx, nres := errResult(fn)
			if errIdx < 0 {
				return true
			}
			if discarded(call, parents, errIdx, nres) {
				pass.Reportf(call.Pos(), "error result of %s discarded: handle it or justify with //lint:allow errshadow <why>", fn.Name())
			}
			return true
		})
	}
	return nil
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isTarget(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	pkgPath := fn.Pkg().Path()
	recv := recvName(fn)
	for _, t := range targets {
		if fn.Name() == t.Name && recv == t.Recv && strings.HasSuffix(pkgPath, t.PkgSuffix) {
			return true
		}
	}
	return false
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// errResult returns the index of the (last) error result and the total
// result count, or -1 if the callee returns no error.
func errResult(fn *types.Func) (int, int) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1, 0
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return i, res.Len()
		}
	}
	return -1, res.Len()
}

// discarded reports whether the call's error result is thrown away: the
// call is a bare statement (or go/defer), or the error position on the
// left-hand side is the blank identifier.
func discarded(call *ast.CallExpr, parents map[ast.Node]ast.Node, errIdx, nres int) bool {
	switch p := parents[call].(type) {
	case *ast.ExprStmt:
		return true
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	case *ast.AssignStmt:
		// Only a direct `lhs... = call` assignment is checkable; a call
		// nested deeper (argument position, etc.) passes its results on.
		if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) == nres {
			if id, ok := p.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
				return true
			}
		}
	}
	return false
}
