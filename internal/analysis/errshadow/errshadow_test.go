package errshadow_test

import (
	"testing"

	"dichotomy/internal/analysis/analyzertest"
	"dichotomy/internal/analysis/errshadow"
)

func TestErrShadow(t *testing.T) {
	analyzertest.Run(t, errshadow.Analyzer,
		analyzertest.Package{Dir: "testdata/src/storage", Path: "dichotomy/internal/storage"},
		analyzertest.Package{Dir: "testdata/src/lsm", Path: "dichotomy/internal/storage/lsm"},
		analyzertest.Package{Dir: "testdata/src/recovery", Path: "dichotomy/internal/recovery"},
		analyzertest.Package{Dir: "testdata/src/cryptoutil", Path: "dichotomy/internal/cryptoutil"},
		analyzertest.Package{Dir: "testdata/src/mpt", Path: "dichotomy/internal/ads/mpt"},
		analyzertest.Package{Dir: "testdata/src/mbt", Path: "dichotomy/internal/ads/mbt"},
		analyzertest.Package{Dir: "testdata/src/demo", Path: "dichotomy/internal/system/demo"},
	)
}
