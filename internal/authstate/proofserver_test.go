package authstate

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/ads/mpt"
	"dichotomy/internal/state"
	"dichotomy/internal/txn"

	"dichotomy/internal/cryptoutil"
)

func newServed(t *testing.T, publishEvery, cacheSize int) (*RootMaintainer, *ProofServer) {
	t.Helper()
	m, err := New(Config{Signer: cryptoutil.MustNewSigner("endorser"), PublishEvery: publishEvery})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, NewProofServer(m, cacheSize)
}

func put(key, val string, h uint64) []state.VersionedWrite {
	return []state.VersionedWrite{{
		Write:   txn.Write{Key: key, Value: []byte(val)},
		Version: txn.Version{BlockNum: h},
	}}
}

// TestWarmCacheServesWithoutTraversal pins the acceptance criterion: a
// warm-cache VerifiedGet performs zero trie traversal — the Generated
// counter (one per trie walk) stays flat while Hits climbs.
func TestWarmCacheServesWithoutTraversal(t *testing.T) {
	m, ps := newServed(t, 1, 0)
	if err := m.Submit(1, put("acct", "100", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitFor(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	cold, err := ps.VerifiedGet("acct")
	if err != nil {
		t.Fatal(err)
	}
	if err := mpt.VerifyProof(cold.Root.Root, []byte("acct"), cold.Proof); err != nil {
		t.Fatalf("cold proof: %v", err)
	}
	if st := ps.Stats(); st.Generated != 1 || st.Misses != 1 {
		t.Fatalf("cold stats = %+v", st)
	}

	for i := 0; i < 50; i++ {
		warm, err := ps.VerifiedGet("acct")
		if err != nil {
			t.Fatal(err)
		}
		if err := mpt.VerifyProof(warm.Root.Root, []byte("acct"), warm.Proof); err != nil {
			t.Fatalf("warm proof: %v", err)
		}
		if err := warm.Root.Verify(m.Public()); err != nil {
			t.Fatalf("warm root sig: %v", err)
		}
	}
	st := ps.Stats()
	if st.Generated != 1 {
		t.Fatalf("warm hits traversed the trie: Generated = %d, want 1", st.Generated)
	}
	if st.Hits != 50 || st.Served != 51 {
		t.Fatalf("stats = %+v, want 50 hits / 51 served", st)
	}
}

// TestDirtyKeyInvalidation: a write to a cached key evicts exactly that
// entry at the next publication; untouched keys keep serving from cache.
func TestDirtyKeyInvalidation(t *testing.T) {
	m, ps := newServed(t, 1, 0)
	ws := append(put("hot", "1", 1), put("cold", "1", 1)...)
	if err := m.Submit(1, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitFor(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"hot", "cold"} {
		if _, err := ps.VerifiedGet(k); err != nil {
			t.Fatal(err)
		}
	}

	if err := m.Submit(2, put("hot", "2", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitFor(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	hot, err := ps.VerifiedGet("hot")
	if err != nil {
		t.Fatal(err)
	}
	if string(hot.Value) != "2" || hot.Root.Height != 2 {
		t.Fatalf("invalidated key served stale: value %q at height %d", hot.Value, hot.Root.Height)
	}
	cold, err := ps.VerifiedGet("cold")
	if err != nil {
		t.Fatal(err)
	}
	if st := ps.Stats(); st.Invalidated != 1 {
		t.Fatalf("Invalidated = %d, want 1", st.Invalidated)
	}
	// The untouched key's cached proof is from root 1 — still verifiable
	// against the root it carries.
	if err := mpt.VerifyProof(cold.Root.Root, []byte("cold"), cold.Proof); err != nil {
		t.Fatalf("cached proof vs its own root: %v", err)
	}
}

func TestVerifiedGetErrors(t *testing.T) {
	m, ps := newServed(t, 1, 0)
	if _, err := ps.VerifiedGet("anything"); err == nil {
		t.Fatal("VerifiedGet before first root succeeded")
	}
	if err := m.Submit(1, put("present", "1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitFor(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.VerifiedGet("ghost"); err == nil {
		t.Fatal("absent key served")
	}
}

// TestLRUEviction: the cache respects its entry budget.
func TestLRUEviction(t *testing.T) {
	m, ps := newServed(t, 1, 32)
	ws := make([]state.VersionedWrite, 0, 256)
	for i := 0; i < 256; i++ {
		ws = append(ws, put(fmt.Sprintf("k%03d", i), "v", 1)...)
	}
	if err := m.Submit(1, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitFor(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := ps.VerifiedGet(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cached := 0
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.Lock()
		cached += len(sh.entries)
		sh.mu.Unlock()
	}
	if cached > 32+proofCacheShards { // per-shard rounding slack
		t.Fatalf("cache holds %d entries, budget 32", cached)
	}
}

// TestConcurrentReadersUnderWrites hammers VerifiedGet from many
// goroutines while blocks keep publishing — the -race exercise for the
// snapshot/cache/invalidation machinery. Every served proof must verify
// against the root it carries.
func TestConcurrentReadersUnderWrites(t *testing.T) {
	m, ps := newServed(t, 1, 64)
	const keys = 40
	seed := make([]state.VersionedWrite, 0, keys)
	for i := 0; i < keys; i++ {
		seed = append(seed, put(fmt.Sprintf("k%02d", i), "0", 1)...)
	}
	if err := m.Submit(1, seed); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitFor(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%02d", i%keys)
				i++
				got, err := ps.VerifiedGet(k)
				if err != nil {
					t.Errorf("VerifiedGet(%s): %v", k, err)
					return
				}
				if err := mpt.VerifyProof(got.Root.Root, []byte(k), got.Proof); err != nil {
					t.Errorf("proof for %s at height %d: %v", k, got.Root.Height, err)
					return
				}
				if err := got.Root.Verify(m.Public()); err != nil {
					t.Errorf("root sig at height %d: %v", got.Root.Height, err)
					return
				}
			}
		}(g)
	}
	for h := uint64(2); h <= 40; h++ {
		if err := m.Submit(h, put(fmt.Sprintf("k%02d", int(h)%keys), fmt.Sprintf("%d", h), h)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.WaitFor(40, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
