package authstate

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/state"
	"dichotomy/internal/txn"
)

// BenchmarkProofServe measures one VerifiedGet against a populated
// authenticated state: mode cache=warm serves hot keys from the proof
// cache (zero trie traversal), cache=cold forces a fresh trie walk per
// read. The delta between the two is what the proof cache buys a
// light-client read endpoint.
func BenchmarkProofServe(b *testing.B) {
	const keys = 20_000
	setup := func(b *testing.B, cacheSize int) *ProofServer {
		b.Helper()
		m, err := New(Config{Signer: cryptoutil.MustNewSigner("endorser")})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(m.Close)
		ps := NewProofServer(m, cacheSize)
		ws := make([]state.VersionedWrite, 0, keys)
		for i := 0; i < keys; i++ {
			ws = append(ws, state.VersionedWrite{
				Write:   txn.Write{Key: fmt.Sprintf("chk:acct%08d", i), Value: []byte(fmt.Sprintf("balance-%d", i))},
				Version: txn.Version{BlockNum: 1, TxNum: uint32(i)},
			})
		}
		if err := m.Submit(1, ws); err != nil {
			b.Fatal(err)
		}
		if _, err := m.WaitFor(1, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		return ps
	}
	b.Run("cache=warm", func(b *testing.B) {
		ps := setup(b, 1024)
		const hot = 512
		for i := 0; i < hot; i++ {
			if _, err := ps.VerifiedGet(fmt.Sprintf("chk:acct%08d", i)); err != nil {
				b.Fatal(err)
			}
		}
		base := ps.Stats().Generated
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ps.VerifiedGet(fmt.Sprintf("chk:acct%08d", i%hot)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if gen := ps.Stats().Generated - base; gen != 0 {
			b.Fatalf("warm path traversed the trie %d times", gen)
		}
	})
	b.Run("cache=cold", func(b *testing.B) {
		ps := setup(b, 1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				b.StopTimer()
				ps.ResetCache()
				b.StartTimer()
			}
			if _, err := ps.VerifiedGet(fmt.Sprintf("chk:acct%08d", i%keys)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
