package authstate

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/ads/mpt"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/state"
	"dichotomy/internal/txn"
)

func testWrites(rng *rand.Rand, blockNum uint64, n int) []state.VersionedWrite {
	ws := make([]state.VersionedWrite, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(150))
		var v []byte
		if rng.Intn(8) != 0 { // occasional delete
			v = []byte(fmt.Sprintf("val-%d-%d", blockNum, i))
		}
		ws = append(ws, state.VersionedWrite{
			Write:   txn.Write{Key: k, Value: v},
			Version: txn.Version{BlockNum: blockNum, TxNum: uint32(i)},
		})
	}
	return ws
}

// TestAsyncRootMatchesSyncAtEveryHeight is the equivalence proof the
// refactor rests on: the maintainer's published root at every height is
// byte-identical to an inline-updated trie's — the synchronous baseline
// the committer used to compute under its lock.
func TestAsyncRootMatchesSyncAtEveryHeight(t *testing.T) {
	m, err := New(Config{Signer: cryptoutil.MustNewSigner("endorser")})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var mu sync.Mutex
	published := make(map[uint64]cryptoutil.Hash)
	m.Subscribe(func(up Update) {
		mu.Lock()
		published[up.Root.Height] = up.Root.Root
		mu.Unlock()
	})

	rng := rand.New(rand.NewSource(42))
	inline := mpt.New()
	want := make(map[uint64]cryptoutil.Hash)
	const blocks = 60
	for h := uint64(1); h <= blocks; h++ {
		ws := testWrites(rng, h, 25)
		// Synchronous baseline: apply inline, rehash per block.
		for _, w := range ws {
			if w.Value == nil {
				inline.Delete([]byte(w.Key))
			} else {
				inline.Put([]byte(w.Key), w.Value)
			}
		}
		want[h] = inline.RootHash()
		if err := m.Submit(h, ws); err != nil {
			t.Fatalf("Submit(%d): %v", h, err)
		}
	}
	if _, err := m.WaitFor(blocks, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(published) != blocks {
		t.Fatalf("published %d roots, want %d", len(published), blocks)
	}
	for h := uint64(1); h <= blocks; h++ {
		if published[h] != want[h] {
			t.Fatalf("height %d: async root %x != sync root %x", h, published[h], want[h])
		}
	}
}

func TestSignedRootVerifies(t *testing.T) {
	signer := cryptoutil.MustNewSigner("endorser")
	m, err := New(Config{Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Submit(1, testWrites(rand.New(rand.NewSource(1)), 1, 10)); err != nil {
		t.Fatal(err)
	}
	sr, err := m.WaitFor(1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Verify(m.Public()); err != nil {
		t.Fatalf("signed root rejected: %v", err)
	}
	// A different height re-binds the digest: the signature must fail.
	forged := sr
	forged.Height++
	if err := forged.Verify(m.Public()); err == nil {
		t.Fatal("replayed root at a different height verified")
	}
	other := cryptoutil.MustNewSigner("other")
	if err := sr.Verify(other.Public()); err == nil {
		t.Fatal("root verified under the wrong key")
	}
}

func TestPublishEveryLagsRoots(t *testing.T) {
	m, err := New(Config{Signer: cryptoutil.MustNewSigner("endorser"), PublishEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rng := rand.New(rand.NewSource(2))
	for h := uint64(1); h <= 10; h++ {
		if err := m.Submit(h, testWrites(rng, h, 5)); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := m.WaitFor(8, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Height != 8 {
		t.Fatalf("published height %d, want 8", sr.Height)
	}
	// Heights 9 and 10 applied but unpublished: bounded staleness.
	waitApplied(t, m, 10)
	st := m.Stats()
	if st.PublishedHeight != 8 || st.Published != 2 {
		t.Fatalf("stats = %+v, want published height 8 after 2 publications", st)
	}
}

func TestCloseSemantics(t *testing.T) {
	m, err := New(Config{Signer: cryptoutil.MustNewSigner("endorser")})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if err := m.Submit(1, nil); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := m.WaitFor(1, time.Second); err != ErrClosed {
		t.Fatalf("WaitFor after Close = %v, want ErrClosed", err)
	}
}

func waitApplied(t *testing.T, m *RootMaintainer, height uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().AppliedHeight < height {
		if time.Now().After(deadline) {
			t.Fatalf("maintainer stuck at applied height %d, want %d", m.Stats().AppliedHeight, height)
		}
		time.Sleep(time.Millisecond)
	}
}
