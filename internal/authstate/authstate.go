// Package authstate maintains an authenticated state commitment *off*
// the commit path — the read-side counterpart to the write-side pipeline
// work (PR 3/5/7).
//
// The paper's hybrid designs all hinge on an authenticated data
// structure over state, but maintaining it inline taxes every block
// commit with trie writes plus a root rehash (Quorum's Fig 11 collapse).
// This package moves that work onto a dedicated worker: the committer
// hands the RootMaintainer the per-block versioned write set it already
// has in hand — the same delta that feeds PR 5's dirty-set checkpoints —
// and seals the block immediately. The worker applies the delta to a
// memoized MPT, recomputes only the O(K·depth) invalidated hashes, signs
// the root, and publishes a height-tagged SignedRoot with a
// block-consistent trie snapshot. Staleness is bounded by construction:
// the queue is bounded, so the published root trails the ledger tip by
// at most the queue depth (plus the publish interval when roots are
// signed every N blocks).
//
// This is incremental view maintenance in the Hu/Motik/Horrocks sense:
// the root is a materialized commitment over state, and per-block deltas
// — not full recomputation — drive its upkeep.
package authstate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/ads/mpt"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/state"
)

// SignedRoot is a height-tagged, endorser-signed state commitment — what
// a light client verifies Merkle proofs against instead of trusting a
// replica.
type SignedRoot struct {
	Height uint64
	Root   cryptoutil.Hash
	Sig    cryptoutil.Signature
}

// RootDigest is the signing digest of a (height, root) pair. Binding the
// height prevents a replay of an old signed root at a newer height.
func RootDigest(height uint64, root cryptoutil.Hash) cryptoutil.Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], height)
	return cryptoutil.HashConcat(buf[:], root[:])
}

// Verify checks the endorser signature over the (height, root) binding.
func (sr SignedRoot) Verify(pub cryptoutil.PublicKey) error {
	return cryptoutil.VerifyDigest(pub, RootDigest(sr.Height, sr.Root), sr.Sig)
}

// Update is one published commitment: the signed root, the trie snapshot
// it was computed from (block-consistent, safe for concurrent reads),
// and the keys written since the previous publication — the invalidation
// set for proof caches layered on top.
type Update struct {
	Root  SignedRoot
	Snap  *mpt.Snapshot
	Dirty []string
}

// Config assembles a RootMaintainer.
type Config struct {
	// Signer endorses published roots. Required.
	Signer *cryptoutil.Signer
	// QueueDepth bounds the submit queue — the maximum number of block
	// deltas the maintainer may trail the committer by before Submit
	// exerts backpressure. Default 128.
	QueueDepth int
	// PublishEvery signs and publishes a root every N applied blocks
	// (the root-lag knob: larger N = cheaper maintenance, staler roots).
	// Heights that are a multiple of N publish; default 1 publishes
	// every block.
	PublishEvery int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 1
	}
	return c
}

// ErrClosed is returned by Submit and WaitFor after Close.
var ErrClosed = errors.New("authstate: maintainer closed")

type delta struct {
	height uint64
	writes []state.VersionedWrite
}

// Stats summarizes the maintainer's progress, in the counter style of
// cryptoutil's SigCacheStats.
type Stats struct {
	// BlocksApplied counts deltas applied to the trie.
	BlocksApplied uint64
	// KeysApplied counts individual writes applied.
	KeysApplied uint64
	// AppliedHeight is the height of the last applied delta.
	AppliedHeight uint64
	// PublishedHeight is the height of the last signed, published root.
	PublishedHeight uint64
	// Published counts signed-root publications.
	Published uint64
}

// RootMaintainer consumes per-block versioned write sets on a worker
// goroutine, applies them to a memoized MPT, and publishes endorser-
// signed roots with block-consistent snapshots. One maintainer per node;
// Submit is called by that node's committer (single producer).
type RootMaintainer struct {
	cfg  Config
	ch   chan delta
	done chan struct{}
	wg   sync.WaitGroup

	// trie is owned by the worker goroutine; everyone else reads only
	// published snapshots.
	trie *mpt.Trie
	// dirty accumulates keys written since the last publication.
	dirty map[string]struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	published Update
	hasPub    bool
	closed    bool
	subs      []func(Update)

	blocksApplied atomic.Uint64
	keysApplied   atomic.Uint64
	appliedHeight atomic.Uint64
	pubHeight     atomic.Uint64
	pubCount      atomic.Uint64

	closeOnce sync.Once
}

// New starts a RootMaintainer. Close must be called to stop its worker.
func New(cfg Config) (*RootMaintainer, error) {
	cfg = cfg.withDefaults()
	if cfg.Signer == nil {
		return nil, errors.New("authstate: Config.Signer is required")
	}
	m := &RootMaintainer{
		cfg:   cfg,
		ch:    make(chan delta, cfg.QueueDepth),
		done:  make(chan struct{}),
		trie:  mpt.New(),
		dirty: make(map[string]struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(1)
	go m.run()
	return m, nil
}

// Public returns the key published roots verify under.
func (m *RootMaintainer) Public() cryptoutil.PublicKey { return m.cfg.Signer.Public() }

// Subscribe registers fn to run (on the worker goroutine, in publication
// order) after each published update. Proof servers use it for
// per-height cache invalidation. Must be called before traffic.
func (m *RootMaintainer) Subscribe(fn func(Update)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, fn)
}

// Submit hands the maintainer one committed block's write set. Heights
// must be strictly increasing; the writes slice is owned by the
// maintainer from this call on (the committer passes its own copy, not
// a buffer it will reuse). A full queue blocks — backpressure that
// bounds how far the root can trail the tip. Submit fails only after
// Close.
func (m *RootMaintainer) Submit(height uint64, writes []state.VersionedWrite) error {
	select {
	case <-m.done:
		return ErrClosed
	default:
	}
	select {
	case m.ch <- delta{height: height, writes: writes}:
		return nil
	case <-m.done:
		return ErrClosed
	}
}

// run is the worker: apply deltas, publish signed roots.
func (m *RootMaintainer) run() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case d := <-m.ch:
			m.apply(d)
		}
	}
}

func (m *RootMaintainer) apply(d delta) {
	for _, w := range d.writes {
		if w.Value == nil {
			m.trie.Delete([]byte(w.Key))
		} else {
			m.trie.Put([]byte(w.Key), w.Value)
		}
		m.dirty[w.Key] = struct{}{}
	}
	m.blocksApplied.Add(1)
	m.keysApplied.Add(uint64(len(d.writes)))
	m.appliedHeight.Store(d.height)
	if d.height%uint64(m.cfg.PublishEvery) != 0 {
		return
	}
	m.publish(d.height)
}

func (m *RootMaintainer) publish(height uint64) {
	// Snapshot fills every reachable hash cache (via the memoized
	// RootHash), so the published view is read-only for any number of
	// concurrent provers.
	snap := m.trie.Snapshot()
	sig, err := m.cfg.Signer.SignDigest(RootDigest(height, snap.RootHash()))
	if err != nil {
		// Signing is deterministic local crypto; an error means a broken
		// signer. Leave the previous root published rather than publish
		// an unsigned one.
		return
	}
	up := Update{
		Root:  SignedRoot{Height: height, Root: snap.RootHash(), Sig: sig},
		Snap:  snap,
		Dirty: make([]string, 0, len(m.dirty)),
	}
	for k := range m.dirty {
		up.Dirty = append(up.Dirty, k)
	}
	clear(m.dirty)

	// Subscribers (cache invalidation) run strictly before the update
	// becomes visible through Published/WaitFor: a reader released by
	// WaitFor(h) must never race the invalidation pass for height h.
	m.mu.Lock()
	subs := m.subs
	m.mu.Unlock()
	for _, fn := range subs {
		fn(up)
	}
	m.mu.Lock()
	m.published = up
	m.hasPub = true
	m.pubHeight.Store(height)
	m.pubCount.Add(1)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Published returns the latest published update, if any. Non-blocking —
// the committer reads it on the seal path to stamp headers with the
// freshest available root (bounded staleness).
func (m *RootMaintainer) Published() (Update, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.published, m.hasPub
}

// WaitFor blocks until a root at or above height is published, then
// returns the latest published root. It fails on Close or after timeout
// (a maintainer configured with PublishEvery > 1 only publishes at
// multiples of the interval, so waiters must not assume every height
// arrives).
func (m *RootMaintainer) WaitFor(height uint64, timeout time.Duration) (SignedRoot, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.hasPub && m.published.Root.Height >= height {
			return m.published.Root, nil
		}
		if m.closed {
			return SignedRoot{}, ErrClosed
		}
		if !time.Now().Before(deadline) {
			return SignedRoot{}, fmt.Errorf("authstate: no root ≥ height %d within %v (published %d)",
				height, timeout, m.published.Root.Height)
		}
		m.cond.Wait()
	}
}

// Stats returns the maintainer's progress counters.
func (m *RootMaintainer) Stats() Stats {
	return Stats{
		BlocksApplied:   m.blocksApplied.Load(),
		KeysApplied:     m.keysApplied.Load(),
		AppliedHeight:   m.appliedHeight.Load(),
		PublishedHeight: m.pubHeight.Load(),
		Published:       m.pubCount.Load(),
	}
}

// Close stops the worker. Queued deltas are dropped — the crash
// semantics a node's death would impose anyway — and blocked Submit and
// WaitFor calls fail with ErrClosed. Idempotent.
func (m *RootMaintainer) Close() {
	m.closeOnce.Do(func() {
		close(m.done)
		m.wg.Wait()
		m.mu.Lock()
		m.closed = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
}
