package authstate

// ProofServer is the light-client read endpoint: VerifiedGet answers
// with a Merkle proof plus the signed root it verifies under, serving
// from block-consistent trie snapshots so a reader never sees half a
// block. A lock-striped LRU keyed by state key caches hot proofs; each
// published update invalidates exactly the block's dirty keys, so a
// cache hit costs zero trie traversal and stays verifiable against the
// SignedRoot it was generated under (bounded staleness — the entry
// carries its own root, and unchanged keys remain correct under newer
// roots too).

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dichotomy/internal/ads/mpt"
)

const proofCacheShards = 16

// DefaultProofCacheSize is the default total entry budget across shards.
const DefaultProofCacheSize = 4096

// ErrNoRoot is returned by VerifiedGet before the first root publishes.
var ErrNoRoot = errors.New("authstate: no published root yet")

// ErrKeyAbsent is returned for keys not present at the served root.
// (The MPT omits absence proofs, so an absent key is a plain error.)
var ErrKeyAbsent = errors.New("authstate: key absent at served root")

// VerifiedValue is one authenticated read: the proof binds Value to
// Root.Root, and Root.Sig endorses (Height, Root). StaleBlocks is how
// many blocks the served root trailed the maintainer's applied height
// at serve time.
type VerifiedValue struct {
	Value       []byte
	Proof       mpt.Proof
	Root        SignedRoot
	StaleBlocks uint64
}

// ProofCacheStats are the proof cache's monotone counters, in the style
// of cryptoutil.SigCacheStats.
type ProofCacheStats struct {
	// Hits served a cached proof — zero trie traversal.
	Hits uint64
	// Misses fell through to a trie walk.
	Misses uint64
	// Generated counts proofs built from a snapshot (== trie traversals).
	Generated uint64
	// Invalidated counts cache entries evicted by dirty-key invalidation.
	Invalidated uint64
	// Served counts successful VerifiedGet calls.
	Served uint64
}

type proofEntry struct {
	key string
	val VerifiedValue
}

type proofShard struct {
	mu      sync.Mutex
	order   *list.List // front = most recently used; values are *proofEntry
	entries map[string]*list.Element
	cap     int
}

// ProofServer answers VerifiedGet from the maintainer's published
// snapshots. Safe for concurrent use by any number of readers.
type ProofServer struct {
	m *RootMaintainer

	// latestHeight is the height of the newest update the server has
	// seen; inserts for proofs generated under an older root are skipped
	// so an in-flight miss can never outlive its invalidation pass.
	latestHeight atomic.Uint64

	mu     sync.RWMutex
	latest Update
	hasUp  bool

	shards [proofCacheShards]proofShard

	hits        atomic.Uint64
	misses      atomic.Uint64
	generated   atomic.Uint64
	invalidated atomic.Uint64
	served      atomic.Uint64
}

// NewProofServer attaches a proof server to m. cacheSize is the total
// entry budget (≤ 0 selects DefaultProofCacheSize). Must be created
// before traffic: it subscribes to m's publications for invalidation.
func NewProofServer(m *RootMaintainer, cacheSize int) *ProofServer {
	if cacheSize <= 0 {
		cacheSize = DefaultProofCacheSize
	}
	ps := &ProofServer{m: m}
	perShard := (cacheSize + proofCacheShards - 1) / proofCacheShards
	for i := range ps.shards {
		ps.shards[i].order = list.New()
		ps.shards[i].entries = make(map[string]*list.Element)
		ps.shards[i].cap = perShard
	}
	m.Subscribe(ps.onPublish)
	return ps
}

func (ps *ProofServer) shardFor(key string) *proofShard {
	// FNV-1a over the key; cheap and stable.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &ps.shards[h%proofCacheShards]
}

// onPublish runs on the maintainer's worker goroutine, in publication
// order: advance the served root first (so racing misses against the
// older snapshot skip their inserts), then evict the block's dirty keys.
func (ps *ProofServer) onPublish(up Update) {
	ps.latestHeight.Store(up.Root.Height)
	ps.mu.Lock()
	ps.latest = up
	ps.hasUp = true
	ps.mu.Unlock()
	for _, key := range up.Dirty {
		sh := ps.shardFor(key)
		sh.mu.Lock()
		if e, ok := sh.entries[key]; ok {
			sh.order.Remove(e)
			delete(sh.entries, key)
			ps.invalidated.Add(1)
		}
		sh.mu.Unlock()
	}
}

// VerifiedGet returns key's value with a Merkle proof and the signed
// root it verifies under. A cache hit serves without touching the trie;
// a miss proves against the latest published snapshot and caches the
// result.
func (ps *ProofServer) VerifiedGet(key string) (VerifiedValue, error) {
	sh := ps.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.order.MoveToFront(e)
		val := e.Value.(*proofEntry).val
		sh.mu.Unlock()
		ps.hits.Add(1)
		ps.served.Add(1)
		val.StaleBlocks = ps.staleness(val.Root.Height)
		return val, nil
	}
	sh.mu.Unlock()
	ps.misses.Add(1)

	ps.mu.RLock()
	up, ok := ps.latest, ps.hasUp
	ps.mu.RUnlock()
	if !ok {
		return VerifiedValue{}, ErrNoRoot
	}
	proof, found := up.Snap.Prove([]byte(key))
	ps.generated.Add(1)
	if !found {
		return VerifiedValue{}, fmt.Errorf("%w: %q", ErrKeyAbsent, key)
	}
	val := VerifiedValue{Value: proof.Value, Proof: proof, Root: up.Root}

	// Insert unless a newer root has published since we proved: the
	// invalidation pass for that root already ran, so caching this proof
	// could strand a stale entry until the key is next written.
	if ps.latestHeight.Load() == up.Root.Height {
		sh.mu.Lock()
		if _, exists := sh.entries[key]; !exists {
			sh.entries[key] = sh.order.PushFront(&proofEntry{key: key, val: val})
			for len(sh.entries) > sh.cap {
				back := sh.order.Back()
				sh.order.Remove(back)
				delete(sh.entries, back.Value.(*proofEntry).key)
			}
		}
		sh.mu.Unlock()
	}
	ps.served.Add(1)
	val.StaleBlocks = ps.staleness(up.Root.Height)
	return val, nil
}

// staleness is how many blocks the served root trails what the
// maintainer has applied.
func (ps *ProofServer) staleness(rootHeight uint64) uint64 {
	if applied := ps.m.Stats().AppliedHeight; applied > rootHeight {
		return applied - rootHeight
	}
	return 0
}

// Root returns the latest signed root the server would serve against.
func (ps *ProofServer) Root() (SignedRoot, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.latest.Root, ps.hasUp
}

// ResetCache empties the proof cache; the counters stay monotone.
// Benchmarks use it to measure the cold path.
func (ps *ProofServer) ResetCache() {
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.Lock()
		sh.order.Init()
		clear(sh.entries)
		sh.mu.Unlock()
	}
}

// Stats returns the proof cache's monotone counters.
func (ps *ProofServer) Stats() ProofCacheStats {
	return ProofCacheStats{
		Hits:        ps.hits.Load(),
		Misses:      ps.misses.Load(),
		Generated:   ps.generated.Load(),
		Invalidated: ps.invalidated.Load(),
		Served:      ps.served.Load(),
	}
}
