package sharedlog

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cluster"
)

func service(t *testing.T, batchSize int) *Service {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	svc := New(Config{Net: net, NodeBase: 1000, BatchSize: batchSize})
	t.Cleanup(func() {
		svc.Stop()
		net.Close()
	})
	return svc
}

func readBatches(t *testing.T, c *Consumer, records int, timeout time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(timeout)
	for len(out) < records {
		select {
		case b, ok := <-c.Batches():
			if !ok {
				t.Fatalf("consumer closed at %d records", len(out))
			}
			out = append(out, b.Records...)
		case <-deadline:
			t.Fatalf("timeout with %d/%d records", len(out), records)
		}
	}
	return out
}

func TestAppendAndConsume(t *testing.T) {
	svc := service(t, 10)
	c := svc.Subscribe(1)
	defer c.Close()
	const total = 25
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	records := readBatches(t, c, total, 10*time.Second)
	for i, r := range records {
		if string(r) != fmt.Sprintf("r-%d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
}

func TestMultipleConsumersSeeSameOrder(t *testing.T) {
	svc := service(t, 5)
	c1 := svc.Subscribe(1)
	defer c1.Close()
	c2 := svc.Subscribe(1)
	defer c2.Close()
	const total = 20
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r1 := readBatches(t, c1, total, 10*time.Second)
	r2 := readBatches(t, c2, total, 10*time.Second)
	for i := range r1 {
		if string(r1[i]) != string(r2[i]) {
			t.Fatalf("consumers disagree at %d: %q vs %q", i, r1[i], r2[i])
		}
	}
}

func TestLateSubscriberReplaysFromStart(t *testing.T) {
	svc := service(t, 5)
	const total = 15
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for ordering to finish before subscribing.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Appended() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c := svc.Subscribe(1)
	defer c.Close()
	records := readBatches(t, c, total, 10*time.Second)
	if string(records[0]) != "r-0" {
		t.Fatalf("replay started at %q", records[0])
	}
}

func TestSubscribeFromOffset(t *testing.T) {
	svc := service(t, 1) // one record per batch → batch seq == record index+1
	const total = 10
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Appended() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c := svc.Subscribe(6)
	defer c.Close()
	records := readBatches(t, c, total-5, 10*time.Second)
	if string(records[0]) != "r-5" {
		t.Fatalf("offset subscribe started at %q", records[0])
	}
}

func TestBatchTimeoutFlushesPartialBatch(t *testing.T) {
	svc := service(t, 1000) // batch size never reached
	c := svc.Subscribe(1)
	defer c.Close()
	if err := svc.Append([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	records := readBatches(t, c, 1, 10*time.Second)
	if string(records[0]) != "lonely" {
		t.Fatalf("got %q", records[0])
	}
}

func TestStopClosesConsumers(t *testing.T) {
	net := cluster.NewNetwork(cluster.ZeroLink{})
	defer net.Close()
	svc := New(Config{Net: net, NodeBase: 2000})
	c := svc.Subscribe(1)
	svc.Stop()
	select {
	case _, ok := <-c.Batches():
		if ok {
			// Drain any final batch; channel must close eventually.
			for range c.Batches() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer channel never closed after Stop")
	}
	if err := svc.Append([]byte("late")); err == nil {
		t.Fatal("Append after Stop should fail")
	}
}
