package sharedlog

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cluster"
)

func service(t *testing.T, batchSize int) *Service {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	svc := New(Config{Net: net, NodeBase: 1000, BatchSize: batchSize})
	t.Cleanup(func() {
		svc.Stop()
		net.Close()
	})
	return svc
}

func readBatches(t *testing.T, c *Consumer, records int, timeout time.Duration) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(timeout)
	for len(out) < records {
		select {
		case b, ok := <-c.Batches():
			if !ok {
				t.Fatalf("consumer closed at %d records", len(out))
			}
			out = append(out, b.Records...)
		case <-deadline:
			t.Fatalf("timeout with %d/%d records", len(out), records)
		}
	}
	return out
}

func TestAppendAndConsume(t *testing.T) {
	svc := service(t, 10)
	c := svc.Subscribe(1)
	defer c.Close()
	const total = 25
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	records := readBatches(t, c, total, 10*time.Second)
	for i, r := range records {
		if string(r) != fmt.Sprintf("r-%d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
}

func TestMultipleConsumersSeeSameOrder(t *testing.T) {
	svc := service(t, 5)
	c1 := svc.Subscribe(1)
	defer c1.Close()
	c2 := svc.Subscribe(1)
	defer c2.Close()
	const total = 20
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r1 := readBatches(t, c1, total, 10*time.Second)
	r2 := readBatches(t, c2, total, 10*time.Second)
	for i := range r1 {
		if string(r1[i]) != string(r2[i]) {
			t.Fatalf("consumers disagree at %d: %q vs %q", i, r1[i], r2[i])
		}
	}
}

func TestLateSubscriberReplaysFromStart(t *testing.T) {
	svc := service(t, 5)
	const total = 15
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for ordering to finish before subscribing.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Appended() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c := svc.Subscribe(1)
	defer c.Close()
	records := readBatches(t, c, total, 10*time.Second)
	if string(records[0]) != "r-0" {
		t.Fatalf("replay started at %q", records[0])
	}
}

func TestSubscribeFromOffset(t *testing.T) {
	svc := service(t, 1) // one record per batch → batch seq == record index+1
	const total = 10
	for i := 0; i < total; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Appended() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c := svc.Subscribe(6)
	defer c.Close()
	records := readBatches(t, c, total-5, 10*time.Second)
	if string(records[0]) != "r-5" {
		t.Fatalf("offset subscribe started at %q", records[0])
	}
}

func TestBatchTimeoutFlushesPartialBatch(t *testing.T) {
	svc := service(t, 1000) // batch size never reached
	c := svc.Subscribe(1)
	defer c.Close()
	if err := svc.Append([]byte("lonely")); err != nil {
		t.Fatal(err)
	}
	records := readBatches(t, c, 1, 10*time.Second)
	if string(records[0]) != "lonely" {
		t.Fatalf("got %q", records[0])
	}
}

func TestStopClosesConsumers(t *testing.T) {
	net := cluster.NewNetwork(cluster.ZeroLink{})
	defer net.Close()
	svc := New(Config{Net: net, NodeBase: 2000})
	c := svc.Subscribe(1)
	svc.Stop()
	select {
	case _, ok := <-c.Batches():
		if ok {
			// Drain any final batch; channel must close eventually.
			for range c.Batches() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer channel never closed after Stop")
	}
	if err := svc.Append([]byte("late")); err == nil {
		t.Fatal("Append after Stop should fail")
	}
}

// TestHighVolumeAppendDoesNotWedge regression-tests the follower-drain
// bug: only orderer 0's committed stream is consumed as the total order,
// and before the service drained the other replicas' identical streams, a
// follower wedged once its commit buffer (4096 entries) filled — it
// stopped reading its inbox, the leader blocked sending to it, and every
// subsequent append stalled, permanently. Pushing well past that
// threshold must keep delivering. The producer paces itself against
// delivery (a closed-loop client's natural backpressure) so the test
// exercises the drain bug, not the network-layer flow-control limits of
// an unbounded burst; pre-fix, delivery stalls for good just past 4096
// records no matter the pacing, so the deadline still trips.
func TestHighVolumeAppendDoesNotWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("high-volume append test")
	}
	svc := service(t, 100)
	c := svc.Subscribe(1)
	const records = 6_000 // > CommitBuffer (4096) + slack
	delivered := make(chan int, 1)
	go func() {
		n := 0
		for b := range c.Batches() {
			n += len(b.Records)
			select {
			case <-delivered:
			default:
			}
			delivered <- n
			if n >= records {
				return
			}
		}
	}()
	deadline := time.Now().Add(120 * time.Second)
	seen := 0
	for i := 0; i < records; i++ {
		if err := svc.Append([]byte(fmt.Sprintf("r%05d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		// Keep at most ~1000 records in flight.
		for i-seen > 1000 {
			select {
			case seen = <-delivered:
			case <-time.After(time.Until(deadline)):
				t.Fatalf("wedged at %d appended / %d delivered — follower commit streams not drained?", i, seen)
			}
		}
	}
	for seen < records {
		select {
		case seen = <-delivered:
		case <-time.After(time.Until(deadline)):
			t.Fatalf("delivered %d/%d records before deadline", seen, records)
		}
	}
}

// TestUnpacedBurstAppendDoesNotWedge regression-tests the network-layer
// flow-control gap left open by the follower-drain fix above: with an
// unbounded burst — no pacing at all — a follower's inbox eventually
// fills, and Endpoint.Send used to block the leader inside its own raft
// mutex, wedging the whole ordering service. The bounded send path now
// fails fast with backpressure instead (Append absorbs it through its
// retry loop), so a full-speed burst far past every buffer must still
// land every accepted record. The pre-fix symptom is a permanent stall,
// so the deadline trips.
func TestUnpacedBurstAppendDoesNotWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("high-volume burst test")
	}
	svc := service(t, 100)
	c := svc.Subscribe(1)
	const records = 10_000 // > raft CommitBuffer (4096) and inbox (8192)
	deadline := time.Now().Add(120 * time.Second)
	for i := 0; i < records; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("burst wedged at append %d — send path blocking?", i)
		}
		if err := svc.Append([]byte(fmt.Sprintf("b%05d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	seen := 0
	for seen < records {
		select {
		case b, ok := <-c.Batches():
			if !ok {
				t.Fatalf("consumer closed at %d/%d records", seen, records)
			}
			seen += len(b.Records)
		case <-time.After(time.Until(deadline)):
			t.Fatalf("delivered %d/%d records before deadline", seen, records)
		}
	}
}
