// Package sharedlog implements the shared-log replication approach of the
// paper's taxonomy: an ordering service with a small fixed set of orderer
// nodes (Fabric's Raft-based orderer, or a Kafka broker in Veritas and
// ChainifyDB) that sequences records into batches, which any number of
// consumers pull independently. Ordering is decoupled from state
// replication — the property the paper credits for shared logs' throughput
// staying flat as consumers scale, until producers saturate.
package sharedlog

import (
	"errors"
	"sync"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/consensus/raft"
)

// Batch is one ordered batch of records handed to consumers.
type Batch struct {
	// Seq is the 1-based batch sequence number.
	Seq uint64
	// Records are the payloads in their final total order.
	Records [][]byte
}

// Config configures the ordering service.
type Config struct {
	// Orderers is the number of orderer replicas (the paper fixes 3).
	Orderers int
	// BatchSize cuts a batch when this many records accumulate. Default 100.
	BatchSize int
	// BatchTimeout cuts a non-empty batch after this delay. Default 5ms.
	BatchTimeout time.Duration
	// Net is the cluster network the orderers attach to. Orderer node ids
	// are allocated from NodeBase upward.
	Net      *cluster.Network
	NodeBase cluster.NodeID
}

func (c Config) withDefaults() Config {
	if c.Orderers <= 0 {
		c.Orderers = 3
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 5 * time.Millisecond
	}
	return c
}

// Service is a running ordering service.
type Service struct {
	cfg      Config
	orderers []*raft.Node

	mu        sync.Mutex
	consumers []*Consumer
	batches   []Batch // retained log; consumers replay from any offset
	pending   [][]byte
	lastCut   time.Time
	appended  uint64

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New starts an ordering service on the given network.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	peers := make([]cluster.NodeID, cfg.Orderers)
	for i := range peers {
		peers[i] = cfg.NodeBase + cluster.NodeID(i)
	}
	s := &Service{
		cfg:     cfg,
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
		lastCut: time.Now(),
	}
	for i, id := range peers {
		s.orderers = append(s.orderers, raft.New(raft.Config{
			ID:       id,
			Peers:    peers,
			Endpoint: cfg.Net.Register(id, 8192),
		}))
		_ = i
	}
	go s.run()
	return s
}

// Append submits a record for ordering. It retries through leader changes
// and returns once an orderer accepted the record; ordering completion is
// observed through consumer delivery.
func (s *Service) Append(record []byte) error {
	select {
	case <-s.stopCh:
		return consensus.ErrStopped
	default:
	}
	for attempt := 0; ; attempt++ {
		for _, o := range s.orderers {
			if err := o.Propose(record); err == nil {
				return nil
			}
		}
		select {
		case <-s.stopCh:
			return consensus.ErrStopped
		case <-time.After(time.Millisecond):
		}
		if attempt > 5000 {
			return consensus.ErrNotLeader
		}
	}
}

// TryAppend submits a record with a single pass over the orderers and no
// retry: the last Propose error — cluster.ErrBackpressure from a full
// forwarding queue included — surfaces to the caller. The ingress batch
// builder uses it to observe consensus pushing back instead of hiding
// the signal inside Append's patient loop.
func (s *Service) TryAppend(record []byte) error {
	select {
	case <-s.stopCh:
		return consensus.ErrStopped
	default:
	}
	var err error
	for _, o := range s.orderers {
		if err = o.Propose(record); err == nil {
			return nil
		}
	}
	return err
}

// AppendBounded submits a record with a bounded exponential-backoff
// retry: unlike Append it gives up after roughly budget of accumulated
// waiting and returns the last error, so a throttling caller can shed
// instead of stalling multi-second. The short retries still ride out
// leader elections, which resolve in tens of milliseconds here.
func (s *Service) AppendBounded(record []byte, budget time.Duration) error {
	backoff := time.Millisecond
	deadline := time.Now().Add(budget)
	for {
		err := s.TryAppend(record)
		if err == nil || errors.Is(err, consensus.ErrStopped) {
			return err
		}
		if !time.Now().Before(deadline) {
			return err
		}
		select {
		case <-s.stopCh:
			return consensus.ErrStopped
		case <-time.After(backoff):
		}
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

// SetBatchSize adjusts the record count at which the service cuts a
// batch — the adaptive block-shape knob the ingress builder drives from
// arrival pressure. Values ≤ 0 are ignored.
func (s *Service) SetBatchSize(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.cfg.BatchSize = n
	s.mu.Unlock()
}

// Dropped sums the orderer endpoints' dropped-send counters — the
// consensus-side overload signal the ingress experiment reports next to
// admission sheds (sheds are intentional; growing drops are the wedge
// class the front door exists to prevent).
func (s *Service) Dropped() uint64 {
	var n uint64
	for _, o := range s.orderers {
		n += o.Dropped()
	}
	return n
}

// run consumes the orderer group's committed entries, cuts batches, and
// fans them out to consumers.
func (s *Service) run() {
	defer close(s.done)
	// Any single orderer's committed stream is the total order. The other
	// replicas produce identical streams (Raft safety) that exist only
	// because every replica applies; drain them, or a follower wedges once
	// its commit buffer fills — it stops reading its inbox, the leader
	// blocks sending to it, and the whole append path stalls. The drains
	// exit when Stop closes the nodes' commit channels.
	for _, o := range s.orderers[1:] {
		go func(c <-chan consensus.Entry) {
			for range c {
			}
		}(o.Committed())
	}
	commits := s.orderers[0].Committed()
	flush := time.NewTicker(s.cfg.BatchTimeout)
	defer flush.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case e, ok := <-commits:
			if !ok {
				return
			}
			s.mu.Lock()
			s.pending = append(s.pending, e.Data)
			s.appended++
			if len(s.pending) >= s.cfg.BatchSize {
				s.cutLocked()
			}
			s.mu.Unlock()
		case <-flush.C:
			s.mu.Lock()
			if len(s.pending) > 0 && time.Since(s.lastCut) >= s.cfg.BatchTimeout {
				s.cutLocked()
			}
			s.mu.Unlock()
		}
	}
}

func (s *Service) cutLocked() {
	batch := Batch{Seq: uint64(len(s.batches) + 1), Records: s.pending}
	s.pending = nil
	s.lastCut = time.Now()
	s.batches = append(s.batches, batch)
	for _, c := range s.consumers {
		c.notify()
	}
}

// Appended returns how many records have been sequenced.
func (s *Service) Appended() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Batches returns how many batches have been cut — the log's tip
// sequence number. The log retains every batch, so a consumer may
// subscribe anywhere at or below this and replay forward; that retained
// tail is the crash-recovery replay source for shared-log systems.
func (s *Service) Batches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.batches))
}

// Stop shuts the service and its orderers down.
func (s *Service) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		<-s.done
		for _, o := range s.orderers {
			o.Stop()
		}
		s.mu.Lock()
		for _, c := range s.consumers {
			c.close()
		}
		s.mu.Unlock()
	})
}

// Subscribe attaches a consumer that receives every batch from the given
// sequence number (1 = from the start). Each consumer pulls independently,
// at its own pace — the decoupling that lets shared-log systems add
// consumers without affecting ordering throughput.
func (s *Service) Subscribe(fromSeq uint64) *Consumer {
	c := &Consumer{
		svc:    s,
		next:   fromSeq,
		out:    make(chan Batch, 64),
		wake:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	if c.next < 1 {
		c.next = 1
	}
	s.mu.Lock()
	s.consumers = append(s.consumers, c)
	s.mu.Unlock()
	go c.pump()
	return c
}

// Consumer is one subscriber's cursor over the log.
type Consumer struct {
	svc  *Service
	next uint64
	out  chan Batch
	wake chan struct{}

	stopCh    chan struct{}
	closeOnce sync.Once
}

// Batches returns the channel of delivered batches, in order.
func (c *Consumer) Batches() <-chan Batch { return c.out }

// Close detaches the consumer.
func (c *Consumer) Close() { c.close() }

func (c *Consumer) close() {
	c.closeOnce.Do(func() { close(c.stopCh) })
}

func (c *Consumer) notify() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *Consumer) pump() {
	defer close(c.out)
	for {
		// Drain everything available from the cursor position.
		for {
			c.svc.mu.Lock()
			var batch Batch
			have := false
			if c.next <= uint64(len(c.svc.batches)) {
				batch = c.svc.batches[c.next-1]
				have = true
			}
			c.svc.mu.Unlock()
			if !have {
				break
			}
			select {
			case c.out <- batch:
				c.next++
			case <-c.stopCh:
				return
			}
		}
		select {
		case <-c.wake:
		case <-c.stopCh:
			return
		case <-c.svc.stopCh:
			return
		}
	}
}
