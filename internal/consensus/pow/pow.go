// Package pow implements Nakamoto-style proof-of-work consensus: miners
// race to find a nonce whose block hash clears a difficulty target, the
// winner broadcasts its block, and replicas follow the longest chain. It is
// the permissionless protocol of the paper's taxonomy; BlockchainDB-style
// hybrids and shard-formation (Elastico) build on it.
//
// The miner performs real SHA-256 puzzle searches; difficulty directly sets
// the expected block interval, reproducing PoW's defining property — a
// throughput ceiling set by resource expenditure rather than network speed.
// Forks can occur when two miners solve near-simultaneously; the
// longest-chain rule resolves them, and entries are only delivered once
// they are buried Confirmations deep.
package pow

import (
	"encoding/binary"
	"sync"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/cryptoutil"
)

// Config configures one miner/replica.
type Config struct {
	ID       cluster.NodeID
	Peers    []cluster.NodeID
	Endpoint *cluster.Endpoint
	// DifficultyBits is the number of leading zero bits a block hash must
	// have. Each extra bit doubles expected mining work. Default 16
	// (~65k hashes per block, a few ms of CPU).
	DifficultyBits int
	// Confirmations is the burial depth before an entry is delivered.
	// Default 1 (deliver as soon as a block extends it).
	Confirmations int
	CommitBuffer  int
	// Mine disables the mining loop when false (pure replica).
	Mine bool
}

func (c Config) withDefaults() Config {
	if c.DifficultyBits <= 0 {
		c.DifficultyBits = 16
	}
	if c.Confirmations <= 0 {
		c.Confirmations = 1
	}
	if c.CommitBuffer <= 0 {
		c.CommitBuffer = 4096
	}
	return c
}

// Block is one mined block.
type Block struct {
	Parent cryptoutil.Hash
	Height uint64
	Nonce  uint64
	Miner  cluster.NodeID
	Data   []byte
}

// Hash returns the block's PoW hash.
func (b Block) Hash() cryptoutil.Hash {
	var hdr [8 + 8 + 8]byte
	binary.BigEndian.PutUint64(hdr[0:], b.Height)
	binary.BigEndian.PutUint64(hdr[8:], b.Nonce)
	binary.BigEndian.PutUint64(hdr[16:], uint64(b.Miner))
	return cryptoutil.HashConcat(b.Parent[:], hdr[:], b.Data)
}

// Size implements cluster.Message.
func (b Block) Size() int { return 64 + len(b.Data) }

// meetsTarget reports whether h has at least bits leading zeros.
func meetsTarget(h cryptoutil.Hash, bits int) bool {
	full := bits / 8
	for i := 0; i < full; i++ {
		if h[i] != 0 {
			return false
		}
	}
	if rem := bits % 8; rem > 0 {
		if h[full]>>(8-rem) != 0 {
			return false
		}
	}
	return true
}

// Node is a PoW miner/replica.
type Node struct {
	cfg Config

	mu      sync.Mutex
	blocks  map[cryptoutil.Hash]Block
	tip     cryptoutil.Hash // head of the longest known chain
	tipH    uint64
	pending [][]byte
	// delivered is the height up to which entries have been emitted.
	delivered uint64
	forks     int

	commitCh chan consensus.Entry
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	mineDone chan struct{}
}

var _ consensus.Node = (*Node)(nil)

// New starts a replica (and its miner when cfg.Mine).
func New(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		blocks:   make(map[cryptoutil.Hash]Block),
		commitCh: make(chan consensus.Entry, cfg.CommitBuffer),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		mineDone: make(chan struct{}),
	}
	go n.run()
	if cfg.Mine {
		go n.mineLoop()
	} else {
		close(n.mineDone)
	}
	return n
}

// Propose implements consensus.Node: the payload joins the local mempool
// and is also gossiped so any miner can include it.
func (n *Node) Propose(data []byte) error {
	select {
	case <-n.stopCh:
		return consensus.ErrStopped
	default:
	}
	n.mu.Lock()
	n.pending = append(n.pending, data)
	n.mu.Unlock()
	n.broadcast(gossip{Data: data})
	return nil
}

type gossip struct{ Data []byte }

func (g gossip) Size() int { return 8 + len(g.Data) }

// Committed implements consensus.Node.
func (n *Node) Committed() <-chan consensus.Entry { return n.commitCh }

// IsLeader implements consensus.Node; PoW has no leader, any miner may
// extend the chain.
func (n *Node) IsLeader() bool { return n.cfg.Mine }

// Forks reports how many competing blocks lost the longest-chain race here.
func (n *Node) Forks() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.forks
}

// TipHeight returns the height of the longest known chain.
func (n *Node) TipHeight() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tipH
}

// Stop implements consensus.Node.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		<-n.done
		<-n.mineDone
		close(n.commitCh)
	})
}

func (n *Node) broadcast(msg cluster.Message) {
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			_ = n.cfg.Endpoint.Send(p, msg)
		}
	}
}

func (n *Node) run() {
	defer close(n.done)
	for {
		select {
		case <-n.stopCh:
			return
		case env, ok := <-n.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			switch msg := env.Msg.(type) {
			case Block:
				n.onBlock(msg)
			case gossip:
				n.mu.Lock()
				n.pending = append(n.pending, msg.Data)
				n.mu.Unlock()
			}
		}
	}
}

// mineLoop repeatedly mines on the current tip. Mining restarts whenever
// the tip moves (the loop re-reads it between nonce windows).
func (n *Node) mineLoop() {
	defer close(n.mineDone)
	nonce := uint64(n.cfg.ID) << 32 // disjoint nonce spaces per miner
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		n.mu.Lock()
		parent, height := n.tip, n.tipH
		var data []byte
		if len(n.pending) > 0 {
			data = n.pending[0]
		}
		n.mu.Unlock()
		if data == nil {
			//lint:allow sleepyloop miner idles between pending-data polls, part of PoW's cost model
			time.Sleep(500 * time.Microsecond)
			continue
		}
		b := Block{Parent: parent, Height: height + 1, Miner: n.cfg.ID, Data: data}
		solved := false
		for window := 0; window < 4096; window++ {
			b.Nonce = nonce
			nonce++
			if meetsTarget(b.Hash(), n.cfg.DifficultyBits) {
				solved = true
				break
			}
		}
		if !solved {
			continue // re-read tip and keep searching
		}
		n.onBlock(b)
		n.broadcast(b)
	}
}

// onBlock validates a block and applies the longest-chain rule.
func (n *Node) onBlock(b Block) {
	if !meetsTarget(b.Hash(), n.cfg.DifficultyBits) {
		return // invalid PoW
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	h := b.Hash()
	if _, seen := n.blocks[h]; seen {
		return
	}
	if b.Height > 1 {
		if _, ok := n.blocks[b.Parent]; !ok {
			return // orphan: parent unknown; a real client would sync
		}
	}
	n.blocks[h] = b
	if b.Height > n.tipH {
		n.tip = h
		n.tipH = b.Height
		// Drop the included payload from the mempool.
		for i, p := range n.pending {
			if string(p) == string(b.Data) {
				n.pending = append(n.pending[:i], n.pending[i+1:]...)
				break
			}
		}
		n.deliverLocked()
	} else {
		n.forks++
	}
}

// deliverLocked emits entries buried Confirmations deep under the tip.
func (n *Node) deliverLocked() {
	safe := int64(n.tipH) - int64(n.cfg.Confirmations) + 1
	if safe <= int64(n.delivered) {
		return
	}
	// Walk back from the tip to collect the canonical chain.
	chain := make([]Block, 0, n.tipH)
	cur := n.tip
	for {
		b, ok := n.blocks[cur]
		if !ok {
			break
		}
		chain = append(chain, b)
		if b.Height == 1 {
			break
		}
		cur = b.Parent
	}
	// chain is tip-first; deliver in height order.
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		if int64(b.Height) > safe || b.Height <= n.delivered {
			continue
		}
		n.delivered = b.Height
		select {
		case n.commitCh <- consensus.Entry{Index: b.Height, Data: b.Data, Term: uint64(b.Miner)}:
		case <-n.stopCh:
			return
		}
	}
}
