package pow

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/cryptoutil"
)

func miners(t *testing.T, n int, bits int) []*Node {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	peers := make([]cluster.NodeID, n)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(Config{
			ID:             peers[i],
			Peers:          peers,
			Endpoint:       net.Register(peers[i], 8192),
			DifficultyBits: bits,
			Mine:           true,
		})
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	})
	return nodes
}

func TestMeetsTarget(t *testing.T) {
	var h cryptoutil.Hash
	if !meetsTarget(h, 256) {
		t.Fatal("all-zero hash should meet any target")
	}
	h[0] = 0x80
	if meetsTarget(h, 1) {
		t.Fatal("leading 1-bit should fail 1-bit target")
	}
	h[0] = 0x00
	h[1] = 0xff
	if !meetsTarget(h, 8) {
		t.Fatal("8 zero bits should pass 8-bit target")
	}
	if meetsTarget(h, 9) {
		t.Fatal("9-bit target should fail")
	}
}

func TestBlockHashDependsOnFields(t *testing.T) {
	b := Block{Height: 1, Nonce: 42, Data: []byte("x")}
	h1 := b.Hash()
	b.Nonce = 43
	if b.Hash() == h1 {
		t.Fatal("hash ignored nonce")
	}
}

func TestSingleMinerCommits(t *testing.T) {
	nodes := miners(t, 1, 12)
	if err := nodes[0].Propose([]byte("tx-1")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-nodes[0].Committed():
		if string(e.Data) != "tx-1" || e.Index != 1 {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("never mined a block")
	}
}

func TestAllReplicasConverge(t *testing.T) {
	nodes := miners(t, 3, 14)
	const total = 5
	for i := 0; i < total; i++ {
		if err := nodes[0].Propose([]byte(fmt.Sprintf("tx-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		seen := map[string]bool{}
		deadline := time.After(60 * time.Second)
		for len(seen) < total {
			select {
			case e := <-n.Committed():
				seen[string(e.Data)] = true
			case <-deadline:
				t.Fatalf("node %d saw only %d/%d txs", n.cfg.ID, len(seen), total)
			}
		}
	}
}

func TestDifficultySlowsMining(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	mine := func(bits int) time.Duration {
		nodes := miners(t, 1, bits)
		start := time.Now()
		nodes[0].Propose([]byte("tx"))
		<-nodes[0].Committed()
		return time.Since(start)
	}
	easy := mine(8)
	hard := mine(18)
	if hard < easy {
		t.Logf("easy=%v hard=%v (stochastic; only logging)", easy, hard)
	}
}

func TestNonMinerDeliversViaGossip(t *testing.T) {
	net := cluster.NewNetwork(cluster.ZeroLink{})
	t.Cleanup(net.Close)
	peers := []cluster.NodeID{0, 1}
	miner := New(Config{ID: 0, Peers: peers, Endpoint: net.Register(0, 1024), DifficultyBits: 12, Mine: true})
	replica := New(Config{ID: 1, Peers: peers, Endpoint: net.Register(1, 1024), DifficultyBits: 12, Mine: false})
	t.Cleanup(func() { miner.Stop(); replica.Stop() })

	if err := replica.Propose([]byte("from-replica")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-replica.Committed():
		if string(e.Data) != "from-replica" {
			t.Fatalf("got %q", e.Data)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("replica never saw its tx mined")
	}
}

func TestStoppedPropose(t *testing.T) {
	nodes := miners(t, 1, 8)
	nodes[0].Stop()
	if err := nodes[0].Propose([]byte("late")); err != consensus.ErrStopped {
		t.Fatalf("err = %v", err)
	}
}
