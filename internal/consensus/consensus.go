// Package consensus defines the contract every replication protocol in this
// repository satisfies: Raft (CFT), PBFT and IBFT (BFT), and proof-of-work.
// The paper's replication dimension observes that blockchains and databases
// differ in *what* they feed through consensus (transactions vs storage
// operations) but both consume a totally ordered log; this interface is
// that log.
package consensus

import "errors"

// Entry is one committed payload in the total order.
type Entry struct {
	// Index is the 1-based position in the committed log.
	Index uint64
	// Data is the opaque payload the application proposed.
	Data []byte
	// Term or view/round in which the entry committed; diagnostic.
	Term uint64
}

// ErrNotLeader is returned by Propose on a replica that cannot currently
// sequence proposals and cannot forward them.
var ErrNotLeader = errors.New("consensus: not the leader")

// ErrStopped is returned after Stop.
var ErrStopped = errors.New("consensus: stopped")

// Node is one replica's handle on a consensus group.
type Node interface {
	// Propose submits data for total ordering. Followers forward to the
	// leader where the protocol permits. Delivery is confirmed through
	// Committed, not by Propose returning.
	Propose(data []byte) error
	// Committed returns the channel of entries in commit order. The
	// channel is closed on Stop.
	Committed() <-chan Entry
	// IsLeader reports whether this replica currently sequences proposals.
	IsLeader() bool
	// Stop shuts the replica down.
	Stop()
}
