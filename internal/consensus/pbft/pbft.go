// Package pbft implements Practical Byzantine Fault Tolerance over the
// simulated cluster: the three-phase pre-prepare/prepare/commit protocol
// with 2f+1 quorums out of n = 3f+1 replicas, plus view change for primary
// failover. It is the BFT protocol of the paper's taxonomy, used by the
// AHL sharded-blockchain model and by Fabric v0.6.
//
// Authentication model: the simulated network provides authenticated
// point-to-point channels (the PBFT-with-MACs variant), so protocol
// messages carry no signatures; payload-level signatures belong to the
// application layer. Checkpointing is replaced by delivering entries in
// contiguous order, which the systems built on top require anyway.
package pbft

import (
	"fmt"
	"sync"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/cryptoutil"
)

// Config configures one replica.
type Config struct {
	ID       cluster.NodeID
	Peers    []cluster.NodeID // all validators, including ID; len = 3f+1
	Endpoint *cluster.Endpoint
	// TickInterval is the internal clock granularity. Default 2ms.
	TickInterval time.Duration
	// ViewChangeTicks is how many ticks without progress trigger a view
	// change while work is outstanding. Default 50.
	ViewChangeTicks int
	// RetransmitTicks is how many ticks between retransmissions of the
	// protocol messages for in-flight instances. The simulated channels
	// may drop messages (fault injection); without retransmission a
	// three-phase quorum waits forever for a message that will never
	// arrive and liveness degenerates to view-change churn. Default 10.
	RetransmitTicks int
	CommitBuffer    int
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 2 * time.Millisecond
	}
	if c.ViewChangeTicks <= 0 {
		c.ViewChangeTicks = 50
	}
	if c.RetransmitTicks <= 0 {
		c.RetransmitTicks = 10
	}
	if c.CommitBuffer <= 0 {
		c.CommitBuffer = 4096
	}
	return c
}

// F returns the number of Byzantine faults tolerated by a group of n.
func F(n int) int { return (n - 1) / 3 }

// instance is one sequence number's agreement state.
type instance struct {
	view        uint64
	digest      cryptoutil.Hash
	data        []byte
	prePrepared bool
	prepares    map[cluster.NodeID]bool
	commits     map[cluster.NodeID]bool
	committed   bool
	delivered   bool
	// fetchVotes collects state-transfer replies (fetched) by sender; the
	// instance is adopted once f+1 peers agree on the digest, so no single
	// faulty peer can feed this replica a fabricated committed value.
	fetchVotes map[cluster.NodeID]cryptoutil.Hash
}

// Node is a PBFT replica.
type Node struct {
	cfg Config
	f   int

	mu        sync.Mutex
	view      uint64
	nextSeq   uint64 // primary only: next sequence to assign
	delivered uint64 // highest contiguously delivered seq
	instances map[uint64]*instance
	pending   [][]byte // primary queue of unassigned payloads
	// forwarded holds payloads this replica knows are outstanding but is
	// not primary for, keyed by digest. It stands in for PBFT's client
	// behaviour of broadcasting requests to all replicas: while non-empty
	// the view-change timer runs, and on a view change the payloads are
	// re-sent to the new primary. A payload can commit twice across a view
	// change; systems deduplicate by transaction id.
	forwarded map[cryptoutil.Hash][]byte
	// assigned records digests this replica has sequenced (as primary) or
	// seen re-proposed in a new view or delivered; it deduplicates
	// retransmissions.
	assigned map[cryptoutil.Hash]bool
	// viewChangeVotes[v] collects replicas demanding view v.
	viewChangeVotes map[uint64]map[cluster.NodeID]*viewChange
	inViewChange    bool
	progressTicks   int
	retransTicks    int
	// votedView is the highest view this replica has demanded; repeated
	// timer expiries and catch-up votes re-target it instead of
	// regressing to view+1.
	votedView uint64
	// lastNewView is the new-view announcement this replica broadcast as
	// primary; it is re-sent to stragglers whose vote shows they missed
	// it (a dropped newView would otherwise strand them in the old view).
	lastNewView *newView

	commitCh chan consensus.Entry
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

var _ consensus.Node = (*Node)(nil)

// New starts a PBFT replica.
func New(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:             cfg,
		f:               F(len(cfg.Peers)),
		instances:       make(map[uint64]*instance),
		forwarded:       make(map[cryptoutil.Hash][]byte),
		assigned:        make(map[cryptoutil.Hash]bool),
		viewChangeVotes: make(map[uint64]map[cluster.NodeID]*viewChange),
		commitCh:        make(chan consensus.Entry, cfg.CommitBuffer),
		stopCh:          make(chan struct{}),
		done:            make(chan struct{}),
	}
	n.progressTicks = cfg.ViewChangeTicks
	go n.run()
	return n
}

// primaryOf returns the primary replica for view v.
func (n *Node) primaryOf(v uint64) cluster.NodeID {
	return n.cfg.Peers[int(v)%len(n.cfg.Peers)]
}

// quorum is the 2f+1 threshold.
func (n *Node) quorum() int { return 2*n.f + 1 }

// --- messages ---

type forward struct{ Data []byte }

type prePrepare struct {
	View   uint64
	Seq    uint64
	Digest cryptoutil.Hash
	Data   []byte
}

type prepare struct {
	View   uint64
	Seq    uint64
	Digest cryptoutil.Hash
}

type commit struct {
	View   uint64
	Seq    uint64
	Digest cryptoutil.Hash
}

// preparedProof carries a prepared-but-undelivered instance into a view
// change so the new primary can re-propose it.
type preparedProof struct {
	Seq    uint64
	View   uint64
	Digest cryptoutil.Hash
	Data   []byte
}

type viewChange struct {
	NewView  uint64
	Prepared []preparedProof
}

type newView struct {
	View        uint64
	PrePrepares []prePrepare
}

// fetch asks peers to re-supply a sequence this replica is missing: its
// pre-prepare was dropped and every other replica has already delivered
// it, so ordinary retransmission (which covers only undelivered work)
// will never close the gap.
type fetch struct{ Seq uint64 }

// fetched answers a fetch with the committed instance — the crash-phase
// state-transfer path. The payload is self-certifying against Digest;
// the requester additionally waits for f+1 matching digests.
type fetched struct {
	View   uint64
	Seq    uint64
	Digest cryptoutil.Hash
	Data   []byte
}

func (m forward) Size() int    { return 8 + len(m.Data) }
func (m prePrepare) Size() int { return 48 + len(m.Data) }
func (m prepare) Size() int    { return 48 }
func (m commit) Size() int     { return 48 }
func (m fetch) Size() int      { return 8 }
func (m fetched) Size() int    { return 48 + len(m.Data) }
func (m viewChange) Size() int {
	s := 16
	for _, p := range m.Prepared {
		s += 48 + len(p.Data)
	}
	return s
}
func (m newView) Size() int {
	s := 8
	for _, p := range m.PrePrepares {
		s += 48 + len(p.Data)
	}
	return s
}

// --- public API ---

// Propose implements consensus.Node. Non-primaries forward to the current
// primary.
func (n *Node) Propose(data []byte) error {
	select {
	case <-n.stopCh:
		return consensus.ErrStopped
	default:
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inViewChange {
		return fmt.Errorf("%w: view change in progress", consensus.ErrNotLeader)
	}
	// Like a PBFT client, announce the request to every replica: backups
	// track it as outstanding (arming their view-change timers), the
	// primary sequences it.
	n.broadcast(forward{Data: data})
	if n.primaryOf(n.view) == n.cfg.ID {
		n.enqueueLocked(data)
		return nil
	}
	n.forwarded[cryptoutil.HashBytes(data)] = data
	return nil
}

// enqueueLocked queues a payload for sequencing, dropping digests already
// sequenced (retransmissions after a view change).
func (n *Node) enqueueLocked(data []byte) {
	if n.assigned[cryptoutil.HashBytes(data)] {
		return
	}
	n.pending = append(n.pending, data)
	n.drainPendingLocked()
}

// drainPendingLocked assigns sequence numbers to queued payloads and
// broadcasts pre-prepares. Primary only.
func (n *Node) drainPendingLocked() {
	for _, data := range n.pending {
		n.nextSeq++
		seq := n.nextSeq
		digest := cryptoutil.HashBytes(data)
		n.assigned[digest] = true
		pp := prePrepare{View: n.view, Seq: seq, Digest: digest, Data: data}
		inst := n.getInstance(seq)
		inst.view = n.view
		inst.digest = digest
		inst.data = data
		inst.prePrepared = true
		n.broadcast(pp)
		// The primary's own prepare is implicit in the pre-prepare; count it.
		inst.prepares[n.cfg.ID] = true
	}
	n.pending = nil
}

// Committed implements consensus.Node.
func (n *Node) Committed() <-chan consensus.Entry { return n.commitCh }

// IsLeader implements consensus.Node.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.inViewChange && n.primaryOf(n.view) == n.cfg.ID
}

// View returns the current view number.
func (n *Node) View() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view
}

// Stop implements consensus.Node.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		<-n.done
		close(n.commitCh)
	})
}

func (n *Node) broadcast(msg cluster.Message) {
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			_ = n.cfg.Endpoint.Send(p, msg)
		}
	}
}

// --- event loop ---

func (n *Node) run() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.tick()
		case env, ok := <-n.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			n.handle(env)
		}
	}
}

// tick drives the retransmission and view-change timers: both count
// down only while there is outstanding work (undelivered instances or
// queued payloads).
func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.outstandingLocked() {
		// A view change this replica demanded while stranded is moot once
		// state transfer delivers everything: a content majority will
		// never vote for it, so staying in it wedges this replica forever.
		// The vote already broadcast still counts at peers that do need
		// the view change, so retracting is purely local.
		n.inViewChange = false
		n.progressTicks = n.cfg.ViewChangeTicks
		return
	}
	if n.retransTicks--; n.retransTicks <= 0 {
		n.retransmitLocked()
		n.retransTicks = n.cfg.RetransmitTicks
	}
	n.progressTicks--
	if n.progressTicks > 0 {
		return
	}
	newV := n.view + 1
	if n.votedView > newV {
		newV = n.votedView
	}
	n.startViewChangeLocked(newV)
}

// retransmitLocked re-sends the protocol messages for in-flight work in
// the current view: the primary's pre-prepares, this replica's prepare
// and (once sent) commit votes, and outstanding payload announcements
// to the primary. Every handler is idempotent — quorums are sets — so a
// duplicate costs bandwidth, while a dropped message without
// retransmission costs a whole view change.
func (n *Node) retransmitLocked() {
	// Always offer the delivery gap to state transfer, even mid
	// view-change: whether the gap lost its pre-prepare or its commit
	// quorum, peers that already delivered it are silent, so only a
	// fetch can close it. Peers that haven't delivered it just ignore.
	n.broadcast(fetch{Seq: n.delivered + 1})
	if n.inViewChange {
		return // the view-change timer re-broadcasts its own vote
	}
	primary := n.primaryOf(n.view)
	for seq, inst := range n.instances {
		if seq <= n.delivered || inst.delivered || !inst.prePrepared || inst.view != n.view {
			continue
		}
		if primary == n.cfg.ID {
			n.broadcast(prePrepare{View: inst.view, Seq: seq, Digest: inst.digest, Data: inst.data})
		}
		n.broadcast(prepare{View: inst.view, Seq: seq, Digest: inst.digest})
		if inst.commits[n.cfg.ID] {
			n.broadcast(commit{View: inst.view, Seq: seq, Digest: inst.digest})
		}
	}
	if primary != n.cfg.ID {
		for digest, data := range n.forwarded {
			if !n.assigned[digest] {
				_ = n.cfg.Endpoint.Send(primary, forward{Data: data})
			}
		}
	}
}

// catchUpLocked reacts to protocol traffic from a view ahead of this
// replica's: the new-view announcement was dropped. Demanding the
// sender's view makes the sitting primary re-send it (see onViewChange).
func (n *Node) catchUpLocked(msgView uint64) {
	if msgView <= n.view {
		return
	}
	if n.inViewChange && n.votedView >= msgView {
		return // already demanding it; the timer retransmits the vote
	}
	n.startViewChangeLocked(msgView)
}

func (n *Node) outstandingLocked() bool {
	if len(n.pending) > 0 || len(n.forwarded) > 0 {
		return true
	}
	for seq, inst := range n.instances {
		// Orphan prepare/commit votes above the watermark count too: they
		// are evidence the group sequenced something this replica never
		// saw the pre-prepare for, and the fetch path must keep running.
		if seq > n.delivered && !inst.delivered &&
			(inst.prePrepared || len(inst.prepares) > 0 || len(inst.commits) > 0) {
			return true
		}
	}
	return false
}

func (n *Node) getInstance(seq uint64) *instance {
	inst, ok := n.instances[seq]
	if !ok {
		inst = &instance{
			prepares: make(map[cluster.NodeID]bool),
			commits:  make(map[cluster.NodeID]bool),
		}
		n.instances[seq] = inst
	}
	return inst
}

func (n *Node) handle(env cluster.Envelope) {
	switch msg := env.Msg.(type) {
	case forward:
		n.onForward(msg)
	case prePrepare:
		n.onPrePrepare(env.From, msg)
	case prepare:
		n.onPrepare(env.From, msg)
	case commit:
		n.onCommit(env.From, msg)
	case viewChange:
		n.onViewChange(env.From, msg)
	case newView:
		n.onNewView(env.From, msg)
	case fetch:
		n.onFetch(env.From, msg)
	case fetched:
		n.onFetched(env.From, msg)
	}
}

// onFetch serves state transfer for a sequence this replica delivered;
// instances are retained after delivery, so the payload is still here.
func (n *Node) onFetch(from cluster.NodeID, msg fetch) {
	n.mu.Lock()
	defer n.mu.Unlock()
	inst, ok := n.instances[msg.Seq]
	if !ok || !inst.delivered {
		return
	}
	_ = n.cfg.Endpoint.Send(from, fetched{
		View: inst.view, Seq: msg.Seq, Digest: inst.digest, Data: inst.data,
	})
}

// onFetched adopts a state-transferred instance once f+1 peers agree on
// its digest (at least one of them is correct) and the payload hashes
// to that digest, then delivers anything the filled gap unblocks.
func (n *Node) onFetched(from cluster.NodeID, msg fetched) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Seq <= n.delivered || cryptoutil.HashBytes(msg.Data) != msg.Digest {
		return
	}
	inst := n.getInstance(msg.Seq)
	if inst.delivered {
		return
	}
	if inst.fetchVotes == nil {
		inst.fetchVotes = make(map[cluster.NodeID]cryptoutil.Hash)
	}
	inst.fetchVotes[from] = msg.Digest
	votes := 0
	for _, d := range inst.fetchVotes {
		if d == msg.Digest {
			votes++
		}
	}
	if votes < n.f+1 {
		return
	}
	inst.view = msg.View
	inst.digest = msg.Digest
	inst.data = msg.Data
	inst.prePrepared = true
	inst.committed = true
	n.progressTicks = n.cfg.ViewChangeTicks
	n.deliverReadyLocked()
}

func (n *Node) onForward(msg forward) {
	n.mu.Lock()
	defer n.mu.Unlock()
	digest := cryptoutil.HashBytes(msg.Data)
	if n.assigned[digest] {
		return
	}
	if !n.inViewChange && n.primaryOf(n.view) == n.cfg.ID {
		n.enqueueLocked(msg.Data)
		return
	}
	// Track as outstanding so a dead primary triggers a view change here.
	n.forwarded[digest] = msg.Data
}

func (n *Node) onPrePrepare(from cluster.NodeID, msg prePrepare) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.View > n.view {
		n.catchUpLocked(msg.View)
		return
	}
	if n.inViewChange || msg.View != n.view || from != n.primaryOf(msg.View) {
		return
	}
	if cryptoutil.HashBytes(msg.Data) != msg.Digest {
		return // Byzantine primary sent inconsistent payload
	}
	inst := n.getInstance(msg.Seq)
	if inst.prePrepared && inst.digest != msg.Digest && inst.view == msg.View {
		return // conflicting pre-prepare for the same (view, seq): ignore
	}
	inst.view = msg.View
	inst.digest = msg.Digest
	inst.data = msg.Data
	inst.prePrepared = true
	inst.prepares[from] = true // primary's implicit prepare
	inst.prepares[n.cfg.ID] = true
	n.progressTicks = n.cfg.ViewChangeTicks
	n.broadcast(prepare{View: msg.View, Seq: msg.Seq, Digest: msg.Digest})
	n.maybeAdvanceLocked(msg.Seq)
}

func (n *Node) onPrepare(from cluster.NodeID, msg prepare) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.View > n.view {
		n.catchUpLocked(msg.View)
		return
	}
	if msg.View != n.view {
		return
	}
	inst := n.getInstance(msg.Seq)
	if inst.prePrepared && inst.digest != msg.Digest {
		return
	}
	inst.prepares[from] = true
	n.maybeAdvanceLocked(msg.Seq)
}

func (n *Node) onCommit(from cluster.NodeID, msg commit) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.View > n.view {
		n.catchUpLocked(msg.View)
		return
	}
	inst := n.getInstance(msg.Seq)
	if inst.prePrepared && inst.digest != msg.Digest {
		return
	}
	inst.commits[from] = true
	n.maybeAdvanceLocked(msg.Seq)
}

// maybeAdvanceLocked moves an instance through prepared → committed →
// delivered as quorums fill in.
func (n *Node) maybeAdvanceLocked(seq uint64) {
	inst := n.instances[seq]
	if inst == nil || !inst.prePrepared {
		return
	}
	// Prepared: pre-prepare + 2f prepares (own included above).
	if !inst.committed && len(inst.prepares) >= n.quorum() {
		if !inst.commits[n.cfg.ID] {
			inst.commits[n.cfg.ID] = true
			n.broadcast(commit{View: inst.view, Seq: seq, Digest: inst.digest})
		}
	}
	if !inst.committed && len(inst.commits) >= n.quorum() {
		inst.committed = true
		n.progressTicks = n.cfg.ViewChangeTicks
	}
	n.deliverReadyLocked()
}

func (n *Node) deliverReadyLocked() {
	for {
		next := n.delivered + 1
		inst, ok := n.instances[next]
		if !ok || !inst.committed || inst.delivered {
			return
		}
		inst.delivered = true
		n.delivered = next
		delete(n.forwarded, inst.digest)
		n.assigned[inst.digest] = true
		select {
		case n.commitCh <- consensus.Entry{Index: next, Data: inst.data, Term: inst.view}:
		case <-n.stopCh:
			return
		}
	}
}

// --- view change ---

func (n *Node) startViewChangeLocked(newV uint64) {
	if newV <= n.view {
		return
	}
	n.inViewChange = true
	n.progressTicks = n.cfg.ViewChangeTicks
	n.votedView = newV
	vc := &viewChange{NewView: newV, Prepared: n.preparedSetLocked()}
	// Record own vote and broadcast.
	votes := n.viewChangeVotes[newV]
	if votes == nil {
		votes = make(map[cluster.NodeID]*viewChange)
		n.viewChangeVotes[newV] = votes
	}
	votes[n.cfg.ID] = vc
	n.broadcast(*vc)
	n.maybeEnterViewLocked(newV)
}

// preparedSetLocked lists instances this replica prepared but has not yet
// delivered; they must survive into the new view.
func (n *Node) preparedSetLocked() []preparedProof {
	var out []preparedProof
	for seq, inst := range n.instances {
		if seq <= n.delivered || !inst.prePrepared {
			continue
		}
		if len(inst.prepares) >= n.quorum() {
			out = append(out, preparedProof{Seq: seq, View: inst.view, Digest: inst.digest, Data: inst.data})
		}
	}
	return out
}

func (n *Node) onViewChange(from cluster.NodeID, msg viewChange) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.NewView <= n.view {
		// A vote for the view this primary already announced means the
		// voter never received the newView message; re-send it directly.
		if msg.NewView == n.view && n.primaryOf(n.view) == n.cfg.ID &&
			!n.inViewChange && n.lastNewView != nil {
			_ = n.cfg.Endpoint.Send(from, *n.lastNewView)
		}
		return
	}
	votes := n.viewChangeVotes[msg.NewView]
	if votes == nil {
		votes = make(map[cluster.NodeID]*viewChange)
		n.viewChangeVotes[msg.NewView] = votes
	}
	votes[from] = &msg
	// Join the view change once f+1 replicas demand it (the replica knows
	// at least one honest node timed out).
	if !n.inViewChange && len(votes) > n.f {
		n.startViewChangeLocked(msg.NewView)
		return
	}
	n.maybeEnterViewLocked(msg.NewView)
}

func (n *Node) maybeEnterViewLocked(newV uint64) {
	votes := n.viewChangeVotes[newV]
	if len(votes) < n.quorum() || n.primaryOf(newV) != n.cfg.ID {
		return
	}
	// New primary: merge prepared sets, re-propose the survivors.
	merged := make(map[uint64]preparedProof)
	for _, vc := range votes {
		for _, p := range vc.Prepared {
			cur, ok := merged[p.Seq]
			if !ok || p.View > cur.View {
				merged[p.Seq] = p
			}
		}
	}
	nv := newView{View: newV}
	maxSeq := n.delivered
	for seq := range merged {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	// Re-propose every sequence up to maxSeq: surviving prepared values
	// keep their payload, gaps become no-ops (empty Data) so delivery
	// never stalls behind an abandoned sequence number.
	for seq := n.delivered + 1; seq <= maxSeq; seq++ {
		p, ok := merged[seq]
		if !ok {
			p = preparedProof{Seq: seq, Digest: cryptoutil.HashBytes(nil), Data: nil}
		}
		nv.PrePrepares = append(nv.PrePrepares, prePrepare{
			View: newV, Seq: seq, Digest: p.Digest, Data: p.Data,
		})
	}
	n.enterViewLocked(newV)
	n.nextSeq = maxSeq
	n.lastNewView = &nv
	n.broadcast(nv)
	for _, pp := range nv.PrePrepares {
		inst := n.getInstance(pp.Seq)
		inst.view = newV
		inst.digest = pp.Digest
		inst.data = pp.Data
		inst.prePrepared = true
		inst.prepares = map[cluster.NodeID]bool{n.cfg.ID: true}
		inst.commits = map[cluster.NodeID]bool{}
		n.assigned[pp.Digest] = true
	}
	// Re-propose payloads that were stranded at the old primary.
	n.drainPendingLocked()
}

func (n *Node) onNewView(from cluster.NodeID, msg newView) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.View < n.view || from != n.primaryOf(msg.View) {
		return
	}
	if msg.View == n.view && !n.inViewChange {
		return // duplicate announcement for a view already entered
	}
	n.enterViewLocked(msg.View)
	for _, pp := range msg.PrePrepares {
		if cryptoutil.HashBytes(pp.Data) != pp.Digest {
			continue
		}
		inst := n.getInstance(pp.Seq)
		inst.view = msg.View
		inst.digest = pp.Digest
		inst.data = pp.Data
		inst.prePrepared = true
		inst.prepares = map[cluster.NodeID]bool{from: true, n.cfg.ID: true}
		inst.commits = map[cluster.NodeID]bool{}
		n.broadcast(prepare{View: msg.View, Seq: pp.Seq, Digest: pp.Digest})
		n.maybeAdvanceLocked(pp.Seq)
	}
}

func (n *Node) enterViewLocked(v uint64) {
	n.view = v
	n.inViewChange = false
	n.progressTicks = n.cfg.ViewChangeTicks
	// Retransmit unacknowledged forwards to the new primary, or queue them
	// locally when this replica takes over (the caller drains the queue
	// after it finishes setting up the new view).
	if primary := n.primaryOf(v); primary == n.cfg.ID {
		for digest, data := range n.forwarded {
			if !n.assigned[digest] {
				n.pending = append(n.pending, data)
			}
		}
		n.forwarded = make(map[cryptoutil.Hash][]byte)
	} else {
		for _, data := range n.forwarded {
			_ = n.cfg.Endpoint.Send(primary, forward{Data: data})
		}
	}
	// Un-prepared instances from old views are abandoned; clients retry.
	for seq, inst := range n.instances {
		if seq > n.delivered && !inst.committed && inst.view < v {
			if len(inst.prepares) < n.quorum() {
				delete(n.instances, seq)
			}
		}
	}
	delete(n.viewChangeVotes, v)
}
