package pbft

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
)

func group(t *testing.T, n int) (*cluster.Network, []*Node) {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	peers := make([]cluster.NodeID, n)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(Config{
			ID:       peers[i],
			Peers:    peers,
			Endpoint: net.Register(peers[i], 8192),
		})
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	})
	return net, nodes
}

// collect reads entries, skipping view-change no-ops (empty Data).
func collect(t *testing.T, n *Node, count int, timeout time.Duration) []consensus.Entry {
	t.Helper()
	var out []consensus.Entry
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case e, ok := <-n.Committed():
			if !ok {
				t.Fatalf("commit channel closed at %d entries", len(out))
			}
			if len(e.Data) == 0 {
				continue
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("timeout with %d/%d entries", len(out), count)
		}
	}
	return out
}

func TestFToleranceTable(t *testing.T) {
	for n, want := range map[int]int{1: 0, 3: 0, 4: 1, 6: 1, 7: 2, 10: 3, 13: 4} {
		if got := F(n); got != want {
			t.Errorf("F(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCommitsOnPrimary(t *testing.T) {
	_, nodes := group(t, 4)
	primary := nodes[0] // view 0 → peers[0]
	if !primary.IsLeader() {
		t.Fatal("node 0 should be the view-0 primary")
	}
	if err := primary.Propose([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		entries := collect(t, n, 1, 5*time.Second)
		if string(entries[0].Data) != "hello" {
			t.Fatalf("node %d got %q", n.cfg.ID, entries[0].Data)
		}
	}
}

func TestOrderingIsIdenticalEverywhere(t *testing.T) {
	_, nodes := group(t, 4)
	const total = 40
	for i := 0; i < total; i++ {
		if err := nodes[0].Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var reference []string
	for ni, n := range nodes {
		entries := collect(t, n, total, 10*time.Second)
		if ni == 0 {
			for _, e := range entries {
				reference = append(reference, string(e.Data))
			}
			continue
		}
		for i, e := range entries {
			if string(e.Data) != reference[i] {
				t.Fatalf("node %d disagrees at %d: %q vs %q", n.cfg.ID, i, e.Data, reference[i])
			}
		}
	}
}

func TestForwardedProposalCommits(t *testing.T) {
	_, nodes := group(t, 4)
	// Propose through a backup; it forwards to the primary.
	if err := nodes[2].Propose([]byte("via-backup")); err != nil {
		t.Fatal(err)
	}
	entries := collect(t, nodes[1], 1, 5*time.Second)
	if string(entries[0].Data) != "via-backup" {
		t.Fatalf("got %q", entries[0].Data)
	}
}

func TestToleratesOneCrashedBackup(t *testing.T) {
	net, nodes := group(t, 4)
	net.Crash(3) // a backup, not the primary
	const total = 10
	for i := 0; i < total; i++ {
		if err := nodes[0].Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes[:3] {
		collect(t, n, total, 10*time.Second)
	}
}

func TestViewChangeOnPrimaryCrash(t *testing.T) {
	net, nodes := group(t, 4)
	// Commit one entry under the original primary.
	if err := nodes[0].Propose([]byte("first")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		collect(t, n, 1, 5*time.Second)
	}
	net.Crash(0)
	// Proposing through a backup forwards to the dead primary; the
	// outstanding work triggers a view change and node 1 takes over.
	deadline := time.Now().Add(10 * time.Second)
	proposed := false
	for !proposed && time.Now().Before(deadline) {
		if err := nodes[1].Propose([]byte("second")); err == nil {
			proposed = true
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !proposed {
		t.Fatal("could not propose after primary crash")
	}
	// The replica retransmits the forwarded payload after the view change;
	// wait for it to commit.
	got := make(chan consensus.Entry, 1)
	go func() {
		for e := range nodes[1].Committed() {
			if string(e.Data) == "second" {
				got <- e
				return
			}
		}
	}()
	select {
	case <-got:
		if v := nodes[1].View(); v == 0 {
			t.Fatal("committed without a view change?")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("no commit after view change")
	}
}

func TestNoProgressWithTwoFaultsOfFour(t *testing.T) {
	net, nodes := group(t, 4) // f=1: two crashes exceed tolerance
	net.Crash(2)
	net.Crash(3)
	_ = nodes[0].Propose([]byte("doomed"))
	select {
	case e := <-nodes[0].Committed():
		if len(e.Data) != 0 {
			t.Fatalf("committed %q despite 2 faults with f=1", e.Data)
		}
	case <-time.After(500 * time.Millisecond):
	}
}

func TestSevenNodeGroup(t *testing.T) {
	_, nodes := group(t, 7) // f=2
	const total = 20
	for i := 0; i < total; i++ {
		if err := nodes[0].Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		collect(t, n, total, 10*time.Second)
	}
}

// TestLivenessUnderSustainedDrops runs the group under a lossy network
// for the whole proposal stream, then lifts the faults and requires
// every replica to deliver everything. This exercises the within-view
// retransmission path (dropped prepares/commits), the newView re-send
// to stragglers, and the fetch/state-transfer path for replicas whose
// pre-prepare was lost while the rest of the group moved on.
func TestLivenessUnderSustainedDrops(t *testing.T) {
	net, nodes := group(t, 4)
	drops := rand.New(rand.NewSource(1))
	var mu sync.Mutex
	net.SetFaults(func(from, to cluster.NodeID) (bool, time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		return drops.Float64() < 0.15, 0
	})
	const total = 30
	for i := 0; i < total; i++ {
		// Propose through rotating replicas so forwards are lossy too.
		if err := nodes[i%4].Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Give the lossy phase time to strand at least some instances, then
	// heal the network; retransmission and fetch must finish the rest.
	time.Sleep(200 * time.Millisecond)
	net.SetFaults(nil)
	var reference []string
	for ni, n := range nodes {
		entries := collect(t, n, total, 30*time.Second)
		if ni == 0 {
			for _, e := range entries {
				reference = append(reference, string(e.Data))
			}
			continue
		}
		for i, e := range entries {
			if string(e.Data) != reference[i] {
				t.Fatalf("node %d disagrees at %d: %q vs %q", n.cfg.ID, i, e.Data, reference[i])
			}
		}
	}
}
