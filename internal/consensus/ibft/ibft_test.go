package ibft

import (
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
)

func group(t *testing.T, n int) (*cluster.Network, []*Node) {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	peers := make([]cluster.NodeID, n)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(Config{
			ID:       peers[i],
			Peers:    peers,
			Endpoint: net.Register(peers[i], 8192),
		})
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	})
	return net, nodes
}

func collect(t *testing.T, n *Node, count int, timeout time.Duration) []consensus.Entry {
	t.Helper()
	var out []consensus.Entry
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case e, ok := <-n.Committed():
			if !ok {
				t.Fatalf("commit channel closed at %d entries", len(out))
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("timeout with %d/%d entries", len(out), count)
		}
	}
	return out
}

func TestSingleEntryCommits(t *testing.T) {
	_, nodes := group(t, 4)
	if err := nodes[0].Propose([]byte("block-1")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		entries := collect(t, n, 1, 5*time.Second)
		if string(entries[0].Data) != "block-1" || entries[0].Index != 1 {
			t.Fatalf("node %d got %+v", n.cfg.ID, entries[0])
		}
	}
}

func TestHeightsAreSequential(t *testing.T) {
	_, nodes := group(t, 4)
	const total = 30
	for i := 0; i < total; i++ {
		if err := nodes[i%4].Propose([]byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		entries := collect(t, n, total, 15*time.Second)
		for i, e := range entries {
			if e.Index != uint64(i+1) {
				t.Fatalf("node %d: height %d delivered at position %d", n.cfg.ID, e.Index, i)
			}
		}
	}
}

func TestAllNodesAgreeOnOrder(t *testing.T) {
	_, nodes := group(t, 4)
	const total = 20
	for i := 0; i < total; i++ {
		if err := nodes[0].Propose([]byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var ref []string
	for ni, n := range nodes {
		entries := collect(t, n, total, 15*time.Second)
		if ni == 0 {
			for _, e := range entries {
				ref = append(ref, string(e.Data))
			}
			continue
		}
		for i, e := range entries {
			if string(e.Data) != ref[i] {
				t.Fatalf("node %d disagrees at %d", n.cfg.ID, i)
			}
		}
	}
}

func TestProposerRotates(t *testing.T) {
	_, nodes := group(t, 4)
	// proposer(h=1,r=0) = peers[1], h=2 → peers[2], etc.
	if nodes[1].proposerOf(1, 0) != 1 || nodes[1].proposerOf(2, 0) != 2 {
		t.Fatal("round-robin rotation broken")
	}
	// After committing one block the next height has a different proposer.
	if err := nodes[0].Propose([]byte("b")); err != nil {
		t.Fatal(err)
	}
	collect(t, nodes[0], 1, 5*time.Second)
	time.Sleep(20 * time.Millisecond)
	if nodes[0].Height() != 2 {
		t.Fatalf("Height = %d, want 2", nodes[0].Height())
	}
}

func TestRoundChangeOnProposerCrash(t *testing.T) {
	net, nodes := group(t, 4)
	// Height 1's proposer is node 1. Crash it, then propose from node 0:
	// the payload stays in node 0's queue and the stall triggers round
	// changes until a live proposer picks it up.
	net.Crash(1)
	if err := nodes[0].Propose([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{nodes[0], nodes[2], nodes[3]} {
		entries := collect(t, n, 1, 20*time.Second)
		if string(entries[0].Data) != "after-crash" {
			t.Fatalf("got %q", entries[0].Data)
		}
		if entries[0].Term == 0 {
			t.Fatal("commit should record a non-zero round after round change")
		}
	}
}

func TestEmbeddedMetadata(t *testing.T) {
	_, nodes := group(t, 4)
	if err := nodes[0].Propose([]byte("meta")); err != nil {
		t.Fatal(err)
	}
	e := collect(t, nodes[0], 1, 5*time.Second)[0]
	// Round 0, height 1 embedded in the entry itself — IBFT keeps its
	// consensus metadata in the ledger, not in checkpoints.
	if e.Index != 1 || e.Term != 0 {
		t.Fatalf("entry metadata = %+v", e)
	}
}

func TestNoProgressBeyondFaultBudget(t *testing.T) {
	net, nodes := group(t, 4) // f=1
	net.Crash(2)
	net.Crash(3)
	_ = nodes[0].Propose([]byte("doomed"))
	select {
	case e := <-nodes[0].Committed():
		t.Fatalf("committed %q with 2 of 4 crashed", e.Data)
	case <-time.After(500 * time.Millisecond):
	}
}

func TestSevenValidators(t *testing.T) {
	_, nodes := group(t, 7)
	const total = 15
	for i := 0; i < total; i++ {
		if err := nodes[i%7].Propose([]byte(fmt.Sprintf("b-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		collect(t, n, total, 20*time.Second)
	}
}
