// Package ibft implements Istanbul BFT, the Byzantine consensus protocol
// Quorum ships alongside Raft. IBFT shares the three-phase crux of PBFT
// (pre-prepare, prepare with 2f+1, commit with 2f+1 out of n = 3f+1) but is
// restructured for blockchains, exactly as the paper describes: consensus
// runs height by height — one instance at a time, sequenced with the ledger
// — the proposer rotates round-robin across validators, consensus metadata
// is embedded in the delivered entry rather than kept in checkpoints, and a
// round change (not a PBFT view change) replaces a stalled proposer.
//
// The height-sequential structure is what makes Quorum's block proposal
// rate hostage to the ledger's sequentiality (Section 5.2.2); the larger
// quorums (2f+1 of 3f+1 vs Raft's f+1 of 2f+1) produce the throughput
// variance at scale that Fig 7 reports.
package ibft

import (
	"sync"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
	"dichotomy/internal/cryptoutil"
)

// Config configures one validator.
type Config struct {
	ID       cluster.NodeID
	Peers    []cluster.NodeID // validator set, including ID; len = 3f+1
	Endpoint *cluster.Endpoint
	// TickInterval is the internal clock granularity. Default 2ms.
	TickInterval time.Duration
	// RoundChangeTicks is how many ticks a height may stall before the
	// validators move to the next round (and proposer). Default 50.
	RoundChangeTicks int
	CommitBuffer     int
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 2 * time.Millisecond
	}
	if c.RoundChangeTicks <= 0 {
		c.RoundChangeTicks = 50
	}
	if c.CommitBuffer <= 0 {
		c.CommitBuffer = 4096
	}
	return c
}

// F returns the number of Byzantine faults tolerated by n validators.
func F(n int) int { return (n - 1) / 3 }

// Node is an IBFT validator.
type Node struct {
	cfg Config
	f   int

	mu       sync.Mutex
	height   uint64 // current consensus instance (1-based; delivered = height-1)
	round    uint64
	locked   bool // proposal accepted in this height (pre-prepared)
	digest   cryptoutil.Hash
	data     []byte
	prepares map[cluster.NodeID]bool
	commits  map[cluster.NodeID]bool
	// roundChangeVotes[r] holds validators asking for round r of the
	// current height.
	roundChangeVotes map[uint64]map[cluster.NodeID]bool
	queue            [][]byte // local payloads waiting to be proposed
	stallTicks       int

	commitCh chan consensus.Entry
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

var _ consensus.Node = (*Node)(nil)

// New starts a validator.
func New(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:              cfg,
		f:                F(len(cfg.Peers)),
		height:           1,
		prepares:         make(map[cluster.NodeID]bool),
		commits:          make(map[cluster.NodeID]bool),
		roundChangeVotes: make(map[uint64]map[cluster.NodeID]bool),
		commitCh:         make(chan consensus.Entry, cfg.CommitBuffer),
		stopCh:           make(chan struct{}),
		done:             make(chan struct{}),
	}
	n.stallTicks = cfg.RoundChangeTicks
	go n.run()
	return n
}

// proposerOf rotates the proposer by height and round, IBFT's round-robin
// policy.
func (n *Node) proposerOf(height, round uint64) cluster.NodeID {
	return n.cfg.Peers[int(height+round)%len(n.cfg.Peers)]
}

func (n *Node) quorum() int { return 2*n.f + 1 }

// --- messages ---

type forward struct{ Data []byte }

type preprepare struct {
	Height uint64
	Round  uint64
	Digest cryptoutil.Hash
	Data   []byte
}

type prepare struct {
	Height uint64
	Round  uint64
	Digest cryptoutil.Hash
}

type commitMsg struct {
	Height uint64
	Round  uint64
	Digest cryptoutil.Hash
}

type roundChange struct {
	Height uint64
	Round  uint64
}

func (m forward) Size() int     { return 8 + len(m.Data) }
func (m preprepare) Size() int  { return 48 + len(m.Data) }
func (m prepare) Size() int     { return 48 }
func (m commitMsg) Size() int   { return 48 }
func (m roundChange) Size() int { return 16 }

// --- public API ---

// Propose implements consensus.Node. The payload queues locally; it is
// proposed when this validator becomes the proposer, or forwarded to the
// current proposer otherwise.
func (n *Node) Propose(data []byte) error {
	select {
	case <-n.stopCh:
		return consensus.ErrStopped
	default:
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Gossip the payload to every validator: all queues hold it, so every
	// round-change timer arms if the current proposer dies, and whichever
	// validator proposes next has the payload at hand. Delivery removes
	// the queued copy by digest on all validators.
	n.broadcast(forward{Data: data})
	n.queue = append(n.queue, data)
	n.maybeProposeLocked()
	return nil
}

// maybeProposeLocked starts the current height's agreement if this
// validator is the proposer, no proposal is in flight, and work is queued.
func (n *Node) maybeProposeLocked() {
	if n.locked || len(n.queue) == 0 || n.proposerOf(n.height, n.round) != n.cfg.ID {
		return
	}
	data := n.queue[0]
	n.queue = n.queue[1:]
	n.acceptProposalLocked(n.round, cryptoutil.HashBytes(data), data)
	n.broadcast(preprepare{Height: n.height, Round: n.round, Digest: n.digest, Data: data})
}

func (n *Node) acceptProposalLocked(round uint64, digest cryptoutil.Hash, data []byte) {
	n.locked = true
	n.round = round
	n.digest = digest
	n.data = data
	n.prepares[n.cfg.ID] = true
	n.stallTicks = n.cfg.RoundChangeTicks
}

// Committed implements consensus.Node.
func (n *Node) Committed() <-chan consensus.Entry { return n.commitCh }

// IsLeader reports whether this validator proposes the current height.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.proposerOf(n.height, n.round) == n.cfg.ID
}

// Height returns the current consensus height (delivered + 1).
func (n *Node) Height() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.height
}

// Round returns the current round within the height.
func (n *Node) Round() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}

// Stop implements consensus.Node.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		<-n.done
		close(n.commitCh)
	})
}

func (n *Node) broadcast(msg cluster.Message) {
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			_ = n.cfg.Endpoint.Send(p, msg)
		}
	}
}

// --- event loop ---

func (n *Node) run() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.tick()
		case env, ok := <-n.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			n.handle(env)
		}
	}
}

func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The round-change timer runs only while this height has work: a
	// locked proposal, or queued payloads waiting on a dead proposer.
	if !n.locked && len(n.queue) == 0 {
		n.stallTicks = n.cfg.RoundChangeTicks
		return
	}
	n.stallTicks--
	if n.stallTicks > 0 {
		return
	}
	n.voteRoundChangeLocked(n.round + 1)
}

func (n *Node) voteRoundChangeLocked(newRound uint64) {
	n.stallTicks = n.cfg.RoundChangeTicks
	votes := n.roundChangeVotes[newRound]
	if votes == nil {
		votes = make(map[cluster.NodeID]bool)
		n.roundChangeVotes[newRound] = votes
	}
	votes[n.cfg.ID] = true
	n.broadcast(roundChange{Height: n.height, Round: newRound})
	n.maybeChangeRoundLocked(newRound)
}

func (n *Node) handle(env cluster.Envelope) {
	switch msg := env.Msg.(type) {
	case forward:
		n.onForward(msg)
	case preprepare:
		n.onPrePrepare(env.From, msg)
	case prepare:
		n.onPrepare(env.From, msg)
	case commitMsg:
		n.onCommit(env.From, msg)
	case roundChange:
		n.onRoundChange(env.From, msg)
	}
}

func (n *Node) onForward(msg forward) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.queue = append(n.queue, msg.Data)
	n.maybeProposeLocked()
}

func (n *Node) onPrePrepare(from cluster.NodeID, msg preprepare) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Height != n.height || msg.Round < n.round {
		return
	}
	if from != n.proposerOf(msg.Height, msg.Round) {
		return // not the legitimate proposer for that round
	}
	if cryptoutil.HashBytes(msg.Data) != msg.Digest {
		return
	}
	if n.locked && n.round == msg.Round && n.digest != msg.Digest {
		return // conflicting proposal in the same round
	}
	if msg.Round > n.round {
		// The proposer of a later round is ahead of us; join its round.
		n.enterRoundLocked(msg.Round)
	}
	n.acceptProposalLocked(msg.Round, msg.Digest, msg.Data)
	n.prepares[from] = true
	n.broadcast(prepare{Height: n.height, Round: n.round, Digest: n.digest})
	n.maybeAdvanceLocked()
}

func (n *Node) onPrepare(from cluster.NodeID, msg prepare) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Height != n.height || msg.Round != n.round {
		return
	}
	if n.locked && n.digest != msg.Digest {
		return
	}
	n.prepares[from] = true
	n.maybeAdvanceLocked()
}

func (n *Node) onCommit(from cluster.NodeID, msg commitMsg) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Height != n.height {
		return
	}
	if n.locked && n.digest != msg.Digest {
		return
	}
	n.commits[from] = true
	n.maybeAdvanceLocked()
}

func (n *Node) maybeAdvanceLocked() {
	if !n.locked {
		return
	}
	if len(n.prepares) >= n.quorum() && !n.commits[n.cfg.ID] {
		n.commits[n.cfg.ID] = true
		n.broadcast(commitMsg{Height: n.height, Round: n.round, Digest: n.digest})
	}
	if len(n.commits) >= n.quorum() {
		// Height decided: deliver with embedded metadata and move on.
		entry := consensus.Entry{Index: n.height, Data: n.data, Term: n.round}
		select {
		case n.commitCh <- entry:
		case <-n.stopCh:
			return
		}
		// Drop the local copy of the decided payload, if queued here.
		decided := n.digest
		for i, q := range n.queue {
			if cryptoutil.HashBytes(q) == decided {
				n.queue = append(n.queue[:i], n.queue[i+1:]...)
				break
			}
		}
		n.height++
		n.round = 0
		n.locked = false
		n.data = nil
		n.digest = cryptoutil.Hash{}
		n.prepares = make(map[cluster.NodeID]bool)
		n.commits = make(map[cluster.NodeID]bool)
		n.roundChangeVotes = make(map[uint64]map[cluster.NodeID]bool)
		n.stallTicks = n.cfg.RoundChangeTicks
		n.maybeProposeLocked()
	}
}

func (n *Node) onRoundChange(from cluster.NodeID, msg roundChange) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Height != n.height || msg.Round <= n.round {
		return
	}
	votes := n.roundChangeVotes[msg.Round]
	if votes == nil {
		votes = make(map[cluster.NodeID]bool)
		n.roundChangeVotes[msg.Round] = votes
	}
	votes[from] = true
	// f+1 demands prove an honest validator timed out: join early.
	if len(votes) > n.f && !votes[n.cfg.ID] {
		votes[n.cfg.ID] = true
		n.broadcast(roundChange{Height: n.height, Round: msg.Round})
	}
	n.maybeChangeRoundLocked(msg.Round)
}

func (n *Node) maybeChangeRoundLocked(newRound uint64) {
	votes := n.roundChangeVotes[newRound]
	if len(votes) < n.quorum() || newRound <= n.round {
		return
	}
	n.enterRoundLocked(newRound)
	// The new proposer re-proposes: a locked value survives (IBFT's
	// locking rule), otherwise the head of its queue goes out.
	if n.proposerOf(n.height, n.round) == n.cfg.ID {
		if n.locked {
			n.prepares = map[cluster.NodeID]bool{n.cfg.ID: true}
			n.commits = make(map[cluster.NodeID]bool)
			n.stallTicks = n.cfg.RoundChangeTicks
			n.broadcast(preprepare{Height: n.height, Round: n.round, Digest: n.digest, Data: n.data})
		} else {
			n.maybeProposeLocked()
		}
	}
}

func (n *Node) enterRoundLocked(r uint64) {
	n.round = r
	n.stallTicks = n.cfg.RoundChangeTicks
	if n.locked {
		// Keep the locked value but reset vote tallies for the new round.
		n.prepares = map[cluster.NodeID]bool{n.cfg.ID: true}
		n.commits = make(map[cluster.NodeID]bool)
	} else {
		n.prepares = make(map[cluster.NodeID]bool)
		n.commits = make(map[cluster.NodeID]bool)
	}
}
