// Package raft implements the Raft consensus protocol over the simulated
// cluster network: randomized-timeout leader election, log replication with
// consistency checks, majority commit, and follower-to-leader proposal
// forwarding. It is the CFT protocol of the paper's taxonomy — used by
// Quorum (Raft mode), etcd, TiKV regions, and the Fabric ordering service.
//
// The implementation favours clarity over raw speed but cuts no protocol
// corners: terms, vote safety (§5.4.1 up-to-date check), the commit rule
// that only current-term entries commit by counting (§5.4.2), and leader
// step-down on higher terms are all present, which the failover tests
// exercise.
package raft

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
)

// Config configures one replica.
type Config struct {
	// ID is this replica's node id; it must appear in Peers.
	ID cluster.NodeID
	// Peers lists every member of the group, including ID.
	Peers []cluster.NodeID
	// Endpoint is the replica's attachment to the cluster network.
	Endpoint *cluster.Endpoint
	// TickInterval is the internal clock granularity. Default 2ms.
	TickInterval time.Duration
	// HeartbeatTicks is the leader heartbeat period in ticks. Default 3.
	HeartbeatTicks int
	// ElectionTicks is the base election timeout in ticks; the effective
	// timeout is uniform in [ElectionTicks, 2×ElectionTicks). Default 15.
	ElectionTicks int
	// MaxBatch bounds entries per AppendEntries message. Default 256.
	MaxBatch int
	// CommitBuffer sizes the Committed channel. Default 4096.
	CommitBuffer int
	// Recovering marks a replica rebooted after losing its durable raft
	// state (log, term, vote) — the crash/recover lifecycle the systems
	// drive, where only the state-machine checkpoint survives. Raft's
	// safety proof assumes that state is stable: a forgetful replica
	// that votes can elect a leader missing committed entries (every
	// candidate looks up-to-date against an empty log), and one that
	// campaigns deposes the live leader with inflated terms it can never
	// back with a winning log. A recovering replica therefore rejoins as
	// a non-voting, non-campaigning follower — it accepts the leader's
	// ordinary log re-replication and resumes full membership once its
	// log covers the leader's commit index, the point at which it again
	// holds every entry the group ever committed (VR-style recovery;
	// sound under the one-replica-recovering-at-a-time lifecycle the
	// systems enforce).
	Recovering bool
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 2 * time.Millisecond
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 3
	}
	if c.ElectionTicks <= 0 {
		c.ElectionTicks = 15
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.CommitBuffer <= 0 {
		c.CommitBuffer = 4096
	}
	return c
}

type role int

const (
	follower role = iota
	candidate
	leader
)

type logEntry struct {
	Term uint64
	Data []byte
}

// Node is a Raft replica.
type Node struct {
	cfg Config

	mu          sync.Mutex
	role        role
	term        uint64
	votedFor    cluster.NodeID // -1 when none
	leaderID    cluster.NodeID // -1 when unknown
	log         []logEntry     // log[0] is a sentinel with Term 0
	commitIndex uint64
	applied     uint64
	nextIndex   map[cluster.NodeID]uint64
	matchIndex  map[cluster.NodeID]uint64
	votes       map[cluster.NodeID]bool
	ticksLeft   int // ticks until election (follower/candidate) or heartbeat (leader)
	recovering  bool
	rng         *rand.Rand

	commitCh chan consensus.Entry
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

var _ consensus.Node = (*Node)(nil)

// New starts a replica. The returned node runs until Stop.
func New(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:        cfg,
		votedFor:   -1,
		leaderID:   -1,
		recovering: cfg.Recovering,
		log:        make([]logEntry, 1),
		rng:        rand.New(rand.NewSource(int64(cfg.ID) + 1)),
		commitCh:   make(chan consensus.Entry, cfg.CommitBuffer),
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
	}
	n.resetElectionTimer()
	go n.run()
	return n
}

// --- message types ---

type requestVote struct {
	Term         uint64
	LastLogIndex uint64
	LastLogTerm  uint64
}

type voteResponse struct {
	Term    uint64
	Granted bool
}

type appendEntries struct {
	Term         uint64
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []logEntry
	LeaderCommit uint64
}

type appendResponse struct {
	Term    uint64
	Success bool
	// MatchIndex is the follower's last replicated index on success; on
	// failure it hints where the leader should back up to.
	MatchIndex uint64
}

type forward struct {
	Data []byte
}

func (m requestVote) Size() int  { return 24 }
func (m voteResponse) Size() int { return 9 }
func (m appendEntries) Size() int {
	s := 32
	for _, e := range m.Entries {
		s += 8 + len(e.Data)
	}
	return s
}
func (m appendResponse) Size() int { return 17 }
func (m forward) Size() int        { return 8 + len(m.Data) }

// --- public API ---

// Propose implements consensus.Node. On a follower the proposal is
// forwarded to the last known leader; if no leader is known the proposal is
// rejected and the caller retries.
func (n *Node) Propose(data []byte) error {
	select {
	case <-n.stopCh:
		return consensus.ErrStopped
	default:
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == leader {
		n.appendLocal(data)
		return nil
	}
	if n.leaderID >= 0 && n.leaderID != n.cfg.ID {
		to := n.leaderID
		// Send outside the lock is unnecessary: Endpoint.Send never blocks.
		return n.cfg.Endpoint.Send(to, forward{Data: data})
	}
	return fmt.Errorf("%w: no known leader", consensus.ErrNotLeader)
}

func (n *Node) appendLocal(data []byte) {
	n.log = append(n.log, logEntry{Term: n.term, Data: data})
	n.matchIndex[n.cfg.ID] = n.lastIndex()
	// Single-node groups commit immediately.
	n.advanceCommitLocked()
}

// Committed implements consensus.Node.
func (n *Node) Committed() <-chan consensus.Entry { return n.commitCh }

// IsLeader implements consensus.Node.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader
}

// Leader returns the id of the last known leader, or -1.
func (n *Node) Leader() cluster.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID
}

// Dropped returns the replica's transport drop counter — sends its
// bounded endpoint queue refused. Aggregators (the shared log's Dropped)
// report it as the consensus-side overload signal.
func (n *Node) Dropped() uint64 { return n.cfg.Endpoint.Dropped() }

// Term returns the current term; tests observe elections with it.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Recovering reports whether the replica is still in the non-voting
// rejoin phase of a post-crash recovery (see Config.Recovering).
func (n *Node) Recovering() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.recovering
}

// Stop implements consensus.Node.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		<-n.done
		close(n.commitCh)
	})
}

// --- event loop ---

func (n *Node) run() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
			n.tick()
		case env, ok := <-n.cfg.Endpoint.Inbox():
			if !ok {
				return
			}
			n.handle(env)
		}
	}
}

func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ticksLeft--
	if n.ticksLeft > 0 {
		return
	}
	if n.role == leader {
		n.broadcastAppendLocked()
		n.ticksLeft = n.cfg.HeartbeatTicks
		return
	}
	if n.recovering {
		// No campaigning until caught up: an election backed by a
		// rebuilt log could only disrupt the live quorum's leader.
		n.resetElectionTimer()
		return
	}
	n.startElectionLocked()
}

func (n *Node) resetElectionTimer() {
	n.ticksLeft = n.cfg.ElectionTicks + n.rng.Intn(n.cfg.ElectionTicks)
}

func (n *Node) lastIndex() uint64 { return uint64(len(n.log) - 1) }

func (n *Node) startElectionLocked() {
	n.role = candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.leaderID = -1
	n.votes = map[cluster.NodeID]bool{n.cfg.ID: true}
	n.resetElectionTimer()
	msg := requestVote{
		Term:         n.term,
		LastLogIndex: n.lastIndex(),
		LastLogTerm:  n.log[n.lastIndex()].Term,
	}
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			_ = n.cfg.Endpoint.Send(p, msg)
		}
	}
	if n.quorum(len(n.votes)) { // single-node group
		n.becomeLeaderLocked()
	}
}

func (n *Node) quorum(count int) bool { return count*2 > len(n.cfg.Peers) }

func (n *Node) becomeLeaderLocked() {
	n.role = leader
	n.leaderID = n.cfg.ID
	n.nextIndex = make(map[cluster.NodeID]uint64, len(n.cfg.Peers))
	n.matchIndex = make(map[cluster.NodeID]uint64, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = n.lastIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.cfg.ID] = n.lastIndex()
	n.ticksLeft = n.cfg.HeartbeatTicks
	n.broadcastAppendLocked()
}

func (n *Node) stepDownLocked(term uint64) {
	n.term = term
	n.role = follower
	n.votedFor = -1
	n.resetElectionTimer()
}

func (n *Node) broadcastAppendLocked() {
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.sendAppendLocked(p)
		}
	}
}

func (n *Node) sendAppendLocked(to cluster.NodeID) {
	next := n.nextIndex[to]
	if next < 1 {
		next = 1
	}
	prev := next - 1
	entries := n.log[next:]
	if len(entries) > n.cfg.MaxBatch {
		entries = entries[:n.cfg.MaxBatch]
	}
	// Copy: the slice aliases the log, which may grow concurrently.
	batch := make([]logEntry, len(entries))
	copy(batch, entries)
	_ = n.cfg.Endpoint.Send(to, appendEntries{
		Term:         n.term,
		PrevLogIndex: prev,
		PrevLogTerm:  n.log[prev].Term,
		Entries:      batch,
		LeaderCommit: n.commitIndex,
	})
}

func (n *Node) handle(env cluster.Envelope) {
	switch msg := env.Msg.(type) {
	case requestVote:
		n.onRequestVote(env.From, msg)
	case voteResponse:
		n.onVoteResponse(env.From, msg)
	case appendEntries:
		n.onAppendEntries(env.From, msg)
	case appendResponse:
		n.onAppendResponse(env.From, msg)
	case forward:
		n.onForward(msg)
	}
}

func (n *Node) onForward(msg forward) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == leader {
		n.appendLocal(msg.Data)
		return
	}
	// Re-forward once if leadership moved; drop otherwise. The client
	// confirms through commit notifications, so a dropped forward is a
	// retry, not a loss.
	if n.leaderID >= 0 && n.leaderID != n.cfg.ID {
		_ = n.cfg.Endpoint.Send(n.leaderID, msg)
	}
}

func (n *Node) onRequestVote(from cluster.NodeID, msg requestVote) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Term > n.term {
		n.stepDownLocked(msg.Term)
	}
	grant := false
	// A recovering replica never grants votes: it may have voted in this
	// term before the crash wiped the record, and its rebuilt log makes
	// candidates missing committed entries look up-to-date.
	if msg.Term == n.term && !n.recovering && (n.votedFor == -1 || n.votedFor == from) {
		// §5.4.1: candidate's log must be at least as up-to-date.
		lastTerm := n.log[n.lastIndex()].Term
		upToDate := msg.LastLogTerm > lastTerm ||
			(msg.LastLogTerm == lastTerm && msg.LastLogIndex >= n.lastIndex())
		if upToDate {
			grant = true
			n.votedFor = from
			n.resetElectionTimer()
		}
	}
	_ = n.cfg.Endpoint.Send(from, voteResponse{Term: n.term, Granted: grant})
}

func (n *Node) onVoteResponse(from cluster.NodeID, msg voteResponse) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Term > n.term {
		n.stepDownLocked(msg.Term)
		return
	}
	if n.role != candidate || msg.Term != n.term || !msg.Granted {
		return
	}
	n.votes[from] = true
	if n.quorum(len(n.votes)) {
		n.becomeLeaderLocked()
	}
}

func (n *Node) onAppendEntries(from cluster.NodeID, msg appendEntries) {
	n.mu.Lock()
	if msg.Term < n.term {
		term := n.term
		n.mu.Unlock()
		_ = n.cfg.Endpoint.Send(from, appendResponse{Term: term, Success: false})
		return
	}
	if msg.Term > n.term || n.role != follower {
		n.stepDownLocked(msg.Term)
	}
	n.term = msg.Term
	n.leaderID = from
	n.resetElectionTimer()

	// Consistency check on the previous entry.
	if msg.PrevLogIndex > n.lastIndex() || n.log[msg.PrevLogIndex].Term != msg.PrevLogTerm {
		hint := n.lastIndex()
		if msg.PrevLogIndex < hint {
			hint = msg.PrevLogIndex
		}
		term := n.term
		n.mu.Unlock()
		_ = n.cfg.Endpoint.Send(from, appendResponse{Term: term, Success: false, MatchIndex: hint})
		return
	}
	// Append, truncating conflicts.
	idx := msg.PrevLogIndex
	for i, e := range msg.Entries {
		idx = msg.PrevLogIndex + uint64(i) + 1
		if idx <= n.lastIndex() {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx]
				n.log = append(n.log, e)
			}
			continue
		}
		n.log = append(n.log, e)
	}
	match := msg.PrevLogIndex + uint64(len(msg.Entries))
	if msg.LeaderCommit > n.commitIndex {
		n.commitIndex = min(msg.LeaderCommit, n.lastIndex())
	}
	if n.recovering && n.lastIndex() >= msg.LeaderCommit {
		// The log now covers everything the leader has committed, and
		// the consistency check above proved it matches the leader's —
		// this replica once again holds every committed entry, so it is
		// safe to vote and campaign.
		n.recovering = false
	}
	term := n.term
	n.applyLocked()
	n.mu.Unlock()
	_ = n.cfg.Endpoint.Send(from, appendResponse{Term: term, Success: true, MatchIndex: match})
}

func (n *Node) onAppendResponse(from cluster.NodeID, msg appendResponse) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if msg.Term > n.term {
		n.stepDownLocked(msg.Term)
		return
	}
	if n.role != leader || msg.Term != n.term {
		return
	}
	if !msg.Success {
		// Back up; the hint is the follower's last plausible match.
		next := n.nextIndex[from]
		if msg.MatchIndex+1 < next {
			n.nextIndex[from] = msg.MatchIndex + 1
		} else if next > 1 {
			n.nextIndex[from] = next - 1
		}
		n.sendAppendLocked(from)
		return
	}
	if msg.MatchIndex > n.matchIndex[from] {
		n.matchIndex[from] = msg.MatchIndex
	}
	n.nextIndex[from] = n.matchIndex[from] + 1
	n.advanceCommitLocked()
	// Keep streaming if the follower is behind.
	if n.nextIndex[from] <= n.lastIndex() {
		n.sendAppendLocked(from)
	}
}

// advanceCommitLocked applies the §5.4.2 rule: an index commits when a
// majority has it and it belongs to the current term. The highest index a
// majority holds is the quorum'th-largest match index, so one sort of the
// match vector finds it — O(peers log peers) per call, where scanning
// down from lastIndex is O(backlog) and turns a deep replication backlog
// into quadratic work (the livelock an unbounded append burst exposed).
// Terms are nondecreasing along the log, so a single term check on that
// index is equivalent to the descending scan's current-term guard.
func (n *Node) advanceCommitLocked() {
	matches := make([]uint64, 0, 8)
	for _, p := range n.cfg.Peers {
		matches = append(matches, n.matchIndex[p])
	}
	slices.Sort(matches)
	q := len(n.cfg.Peers)/2 + 1
	idx := matches[len(matches)-q]
	if idx > n.commitIndex && n.log[idx].Term == n.term {
		n.commitIndex = idx
	}
	n.applyLocked()
}

func (n *Node) applyLocked() {
	for n.applied < n.commitIndex {
		n.applied++
		e := n.log[n.applied]
		select {
		case n.commitCh <- consensus.Entry{Index: n.applied, Data: e.Data, Term: e.Term}:
		case <-n.stopCh:
			return
		}
	}
}
