package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dichotomy/internal/cluster"
	"dichotomy/internal/consensus"
)

// group spins up n raft replicas on a fresh network.
func group(t *testing.T, n int) (*cluster.Network, []*Node) {
	t.Helper()
	net := cluster.NewNetwork(cluster.ZeroLink{})
	peers := make([]cluster.NodeID, n)
	for i := range peers {
		peers[i] = cluster.NodeID(i)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(Config{
			ID:       peers[i],
			Peers:    peers,
			Endpoint: net.Register(peers[i], 4096),
		})
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		net.Close()
	})
	return net, nodes
}

func waitLeader(t *testing.T, nodes []*Node, timeout time.Duration) *Node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			if n.IsLeader() {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return nil
}

func collect(t *testing.T, n *Node, count int, timeout time.Duration) []consensus.Entry {
	t.Helper()
	var out []consensus.Entry
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case e, ok := <-n.Committed():
			if !ok {
				t.Fatalf("commit channel closed after %d entries", len(out))
			}
			out = append(out, e)
		case <-deadline:
			t.Fatalf("timed out with %d/%d entries", len(out), count)
		}
	}
	return out
}

func TestSingleNodeCommits(t *testing.T) {
	_, nodes := group(t, 1)
	leader := waitLeader(t, nodes, 2*time.Second)
	if err := leader.Propose([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	entries := collect(t, leader, 1, 2*time.Second)
	if string(entries[0].Data) != "solo" || entries[0].Index != 1 {
		t.Fatalf("got %+v", entries[0])
	}
}

func TestElectsExactlyOneLeader(t *testing.T) {
	_, nodes := group(t, 5)
	waitLeader(t, nodes, 2*time.Second)
	time.Sleep(100 * time.Millisecond) // let the election settle
	leaders := 0
	term := uint64(0)
	for _, n := range nodes {
		if n.IsLeader() {
			leaders++
			term = n.Term()
		}
	}
	if leaders != 1 {
		t.Fatalf("found %d leaders, want 1", leaders)
	}
	// All nodes should agree on the leader's term eventually.
	for _, n := range nodes {
		if n.Term() != term {
			t.Fatalf("term disagreement: %d vs %d", n.Term(), term)
		}
	}
}

func TestReplicatesToAll(t *testing.T) {
	_, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	const total = 50
	for i := 0; i < total; i++ {
		if err := leader.Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		entries := collect(t, n, total, 5*time.Second)
		for i, e := range entries {
			if e.Index != uint64(i+1) {
				t.Fatalf("node %d: entry %d has index %d", n.cfg.ID, i, e.Index)
			}
			if string(e.Data) != fmt.Sprintf("op-%d", i) {
				t.Fatalf("node %d: entry %d = %q", n.cfg.ID, i, e.Data)
			}
		}
	}
}

func TestFollowerForwardsProposals(t *testing.T) {
	_, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	var follower *Node
	for _, n := range nodes {
		if n != leader {
			follower = n
			break
		}
	}
	// The follower may briefly not know the leader; retry.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := follower.Propose([]byte("via-follower"))
		if err == nil {
			break
		}
		if !errors.Is(err, consensus.ErrNotLeader) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never learned the leader")
		}
		time.Sleep(5 * time.Millisecond)
	}
	entries := collect(t, leader, 1, 2*time.Second)
	if string(entries[0].Data) != "via-follower" {
		t.Fatalf("got %q", entries[0].Data)
	}
}

func TestLeaderFailover(t *testing.T) {
	net, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	if err := leader.Propose([]byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	// Every node must commit the first entry before the crash.
	for _, n := range nodes {
		collect(t, n, 1, 2*time.Second)
	}
	net.Crash(leader.cfg.ID)

	// A new leader must emerge among the survivors.
	survivors := make([]*Node, 0, 2)
	for _, n := range nodes {
		if n != leader {
			survivors = append(survivors, n)
		}
	}
	var newLeader *Node
	deadline := time.Now().Add(5 * time.Second)
	for newLeader == nil && time.Now().Before(deadline) {
		for _, n := range survivors {
			if n.IsLeader() {
				newLeader = n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("no failover")
	}
	if err := newLeader.Propose([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	for _, n := range survivors {
		entries := collect(t, n, 1, 5*time.Second)
		if string(entries[0].Data) != "after-crash" {
			t.Fatalf("survivor got %q", entries[0].Data)
		}
	}
}

func TestCrashedFollowerCatchesUp(t *testing.T) {
	net, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	var follower *Node
	for _, n := range nodes {
		if n != leader {
			follower = n
			break
		}
	}
	net.Crash(follower.cfg.ID)
	const total = 20
	for i := 0; i < total; i++ {
		if err := leader.Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, leader, total, 5*time.Second)
	net.Restart(follower.cfg.ID)
	entries := collect(t, follower, total, 5*time.Second)
	if string(entries[total-1].Data) != fmt.Sprintf("op-%d", total-1) {
		t.Fatalf("follower tail = %q", entries[total-1].Data)
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	net, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	// Cut the leader off from both followers.
	for _, n := range nodes {
		if n != leader {
			net.Partition(leader.cfg.ID, n.cfg.ID)
		}
	}
	_ = leader.Propose([]byte("doomed"))
	select {
	case e := <-leader.Committed():
		t.Fatalf("minority leader committed %q", e.Data)
	case <-time.After(300 * time.Millisecond):
	}
	// Majority side elects a new leader and commits.
	var newLeader *Node
	deadline := time.Now().Add(5 * time.Second)
	for newLeader == nil && time.Now().Before(deadline) {
		for _, n := range nodes {
			if n != leader && n.IsLeader() {
				newLeader = n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("majority never elected a leader")
	}
	if err := newLeader.Propose([]byte("survives")); err != nil {
		t.Fatal(err)
	}
	entries := collect(t, newLeader, 1, 5*time.Second)
	if string(entries[0].Data) != "survives" {
		t.Fatalf("got %q", entries[0].Data)
	}
}

func TestLogsConvergeAfterHeal(t *testing.T) {
	net, nodes := group(t, 5)
	leader := waitLeader(t, nodes, 2*time.Second)
	var isolated *Node
	for _, n := range nodes {
		if n != leader {
			isolated = n
			break
		}
	}
	for _, n := range nodes {
		if n != isolated {
			net.Partition(isolated.cfg.ID, n.cfg.ID)
		}
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := leader.Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, leader, total, 5*time.Second)
	net.HealAll()
	entries := collect(t, isolated, total, 5*time.Second)
	for i, e := range entries {
		if string(e.Data) != fmt.Sprintf("op-%d", i) {
			t.Fatalf("entry %d = %q after heal", i, e.Data)
		}
	}
}

func TestProposeAfterStop(t *testing.T) {
	_, nodes := group(t, 1)
	waitLeader(t, nodes, 2*time.Second)
	nodes[0].Stop()
	if err := nodes[0].Propose([]byte("late")); !errors.Is(err, consensus.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestThroughputUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	_, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	const total = 2000
	go func() {
		for i := 0; i < total; i++ {
			for leader.Propose([]byte("payload-of-reasonable-size")) != nil {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	entries := collect(t, leader, total, 30*time.Second)
	if len(entries) != total {
		t.Fatalf("committed %d, want %d", len(entries), total)
	}
}

// TestRecoveringReplicaDoesNotVoteOrCampaign pins the recovery mode's
// safety half: a replica that lost its raft state must neither campaign
// nor grant votes until caught up. In a 2-node group where the second
// member is recovering, no candidate can ever assemble a quorum — the
// group must stay leaderless.
func TestRecoveringReplicaDoesNotVoteOrCampaign(t *testing.T) {
	net := cluster.NewNetwork(cluster.ZeroLink{})
	defer net.Close()
	peers := []cluster.NodeID{0, 1}
	healthy := New(Config{ID: 0, Peers: peers, Endpoint: net.Register(0, 4096)})
	defer healthy.Stop()
	recovering := New(Config{ID: 1, Peers: peers, Endpoint: net.Register(1, 4096), Recovering: true})
	defer recovering.Stop()
	time.Sleep(500 * time.Millisecond)
	if healthy.IsLeader() || recovering.IsLeader() {
		t.Fatal("a leader was elected with only a recovering second voter")
	}
	if !recovering.Recovering() {
		t.Fatal("recovering replica left recovery without a leader to catch up from")
	}
}

// TestRecoveredReplicaCatchesUpAndRejoins pins the recovery mode's
// liveness half: a recovering replica rebuilt with an empty log catches
// up through ordinary re-replication, exits recovery once its log covers
// the leader's commit index, and then observes the exact committed
// sequence the healthy replicas hold — including entries committed while
// it was down.
func TestRecoveredReplicaCatchesUpAndRejoins(t *testing.T) {
	net, nodes := group(t, 3)
	leader := waitLeader(t, nodes, 2*time.Second)
	var follower *Node
	for _, n := range nodes {
		if n != leader {
			follower = n
			break
		}
	}
	propose := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := leader.Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	propose(0, 10)
	reference := collect(t, leader, 10, 5*time.Second)

	// Crash the follower and lose its raft state entirely.
	id := follower.cfg.ID
	net.Crash(id)
	follower.Stop()
	propose(10, 20)
	reference = append(reference, collect(t, leader, 10, 5*time.Second)...)

	// Reboot it on the same endpoint as a fresh, recovering node.
	net.Restart(id)
	replacement := New(Config{ID: id, Peers: leader.cfg.Peers, Endpoint: follower.cfg.Endpoint, Recovering: true})
	defer replacement.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for replacement.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("replacement never exited recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	propose(20, 25)
	reference = append(reference, collect(t, leader, 5, 5*time.Second)...)

	entries := collect(t, replacement, 25, 5*time.Second)
	for i, e := range entries {
		if e.Index != reference[i].Index || string(e.Data) != string(reference[i].Data) {
			t.Fatalf("entry %d: replacement (%d, %q) != leader (%d, %q)",
				i, e.Index, e.Data, reference[i].Index, reference[i].Data)
		}
	}
}
