package ingress

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

var testClient = cryptoutil.MustNewSigner("ingress-test")

// mkTx signs a distinct put; equal (k, v) pairs produce equal content
// hashes, which is exactly what the dedup tests rely on.
func mkTx(t testing.TB, k, v string) *txn.Tx {
	t.Helper()
	tx, err := txn.Sign(testClient, txn.Invocation{
		Contract: "kv", Method: "put",
		Args: [][]byte{[]byte(k), []byte(v)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// commitSink resolves everything it is handed as committed.
func commitSink(in **Ingress) BatchFunc {
	return func(txs []*txn.Tx) error {
		for _, tx := range txs {
			(*in).Resolve(tx.ID, system.Result{Committed: true})
		}
		return nil
	}
}

func TestSubmitResolvesThroughSink(t *testing.T) {
	var in *Ingress
	var err error
	in, err = New(Config{}, commitSink(&in))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	h, err := in.Submit(context.Background(), mkTx(t, "k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r := h.Wait(ctx)
	if !r.Committed || r.Err != nil {
		t.Fatalf("r = %+v", r)
	}
	st := in.Stats()
	if st.Admitted != 1 || st.Resolved != 1 || st.Blocks == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitContextError(t *testing.T) {
	var in *Ingress
	var err error
	in, err = New(Config{}, commitSink(&in))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.Submit(ctx, mkTx(t, "k", "v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// gatedSink blocks the builder inside the sink until released, keeping
// subsequent admissions queued so tests control exactly what the next
// batch contains.
type gatedSink struct {
	mu      sync.Mutex
	batches [][]*txn.Tx
	gate    chan struct{}
	in      *Ingress
	resolve bool
}

func (g *gatedSink) sink(txs []*txn.Tx) error {
	<-g.gate
	g.mu.Lock()
	g.batches = append(g.batches, txs)
	g.mu.Unlock()
	if g.resolve {
		for _, tx := range txs {
			g.in.Resolve(tx.ID, system.Result{Committed: true})
		}
	}
	return nil
}

// hold submits one plug transaction and waits until the builder is
// parked inside the sink on it, so every following Submit stays queued.
func (g *gatedSink) hold(t *testing.T) {
	t.Helper()
	if _, err := g.in.Submit(context.Background(), mkTx(t, "plug", "plug")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.in.Depth() != 0 || g.in.Stats().Blocks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("builder never picked up the plug")
		}
		time.Sleep(time.Millisecond)
	}
}

func newGated(t *testing.T, cfg Config, resolve bool) *gatedSink {
	t.Helper()
	g := &gatedSink{gate: make(chan struct{}), resolve: resolve}
	in, err := New(cfg, g.sink)
	if err != nil {
		t.Fatal(err)
	}
	g.in = in
	return g
}

func TestDedupSharesOneHandle(t *testing.T) {
	g := newGated(t, Config{}, true)
	defer g.in.Close()
	g.hold(t)

	// Two submissions with identical content while the first is queued:
	// one admission, one dedup, one shared handle — the regression for
	// the per-system waiter-map collision.
	a := mkTx(t, "same", "content")
	b := mkTx(t, "same", "content")
	if a.ID != b.ID {
		t.Fatal("content hashes differ for identical invocations")
	}
	ha, err := g.in.Submit(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := g.in.Submit(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("duplicate submission did not attach to the pending handle")
	}
	st := g.in.Stats()
	if st.Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1", st.Deduped)
	}

	close(g.gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ra, rb := ha.Wait(ctx), hb.Wait(ctx)
	if !ra.Committed || !rb.Committed {
		t.Fatalf("ra = %+v, rb = %+v", ra, rb)
	}
	// The sink saw the transaction exactly once.
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := 0
	for _, batch := range g.batches {
		for _, tx := range batch {
			if tx.ID == a.ID {
				seen++
			}
		}
	}
	if seen != 1 {
		t.Fatalf("deduplicated transaction executed %d times", seen)
	}
}

func TestDedupSpansInFlight(t *testing.T) {
	// resolve=false: the batch is handed to consensus but not yet
	// committed. A duplicate arriving now must still attach.
	g := newGated(t, Config{}, false)
	defer g.in.Close()
	g.hold(t)

	dup, err := g.in.Submit(context.Background(), mkTx(t, "plug", "plug"))
	if err != nil {
		t.Fatal(err)
	}
	if g.in.Stats().Deduped != 1 {
		t.Fatalf("in-flight duplicate not deduplicated: %+v", g.in.Stats())
	}
	g.in.Resolve(mkTx(t, "plug", "plug").ID, system.Result{Committed: true})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if r := dup.Wait(ctx); !r.Committed {
		t.Fatalf("r = %+v", r)
	}
	close(g.gate)
}

func TestCapacityShedsTyped(t *testing.T) {
	g := newGated(t, Config{Capacity: 4, MaxBlock: 2}, true)
	defer g.in.Close()
	g.hold(t)

	var shedErr error
	for i := 0; i < 8; i++ {
		_, err := g.in.Submit(context.Background(), mkTx(t, fmt.Sprintf("k%d", i), "v"))
		if err != nil {
			shedErr = err
			break
		}
	}
	if shedErr == nil {
		t.Fatal("full pool admitted more than its capacity")
	}
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("shed error %v is not ErrOverloaded", shedErr)
	}
	if !Retryable(shedErr) {
		t.Fatal("admission shed not classified retryable")
	}
	if g.in.Stats().Shed == 0 {
		t.Fatal("Shed counter unmoved")
	}
	close(g.gate)
}

func TestLanePriority(t *testing.T) {
	g := newGated(t, Config{
		Lanes: 2,
		Classify: func(tx *txn.Tx) int {
			if tx.Invocation.Args[1][0] == 'h' {
				return 0
			}
			return 1
		},
	}, true)
	defer g.in.Close()
	g.hold(t)

	// Low-priority work arrives first, high-priority second; the next
	// batch must still lead with lane 0.
	for i := 0; i < 3; i++ {
		if _, err := g.in.Submit(context.Background(), mkTx(t, fmt.Sprintf("lo%d", i), "low")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := g.in.Submit(context.Background(), mkTx(t, fmt.Sprintf("hi%d", i), "high")); err != nil {
			t.Fatal(err)
		}
	}
	close(g.gate)

	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		n := len(g.batches)
		g.mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second batch never built")
		}
		time.Sleep(time.Millisecond)
	}
	g.mu.Lock()
	second := g.batches[1]
	g.mu.Unlock()
	if len(second) != 5 {
		t.Fatalf("batch holds %d txs, want the 5 queued", len(second))
	}
	for i, tx := range second {
		wantHigh := i < 2
		isHigh := tx.Invocation.Args[1][0] == 'h'
		if isHigh != wantHigh {
			t.Fatalf("position %d: priority lane not drained first: %q", i, tx.Invocation.Args[1])
		}
	}
}

func TestAdaptiveBatchSizing(t *testing.T) {
	g := newGated(t, Config{MaxBlock: 4}, true)
	defer g.in.Close()
	g.hold(t)

	// Backlog of 10 against MaxBlock 4: the builder must cut full blocks
	// under pressure, never one over the cap.
	for i := 0; i < 10; i++ {
		if _, err := g.in.Submit(context.Background(), mkTx(t, fmt.Sprintf("b%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	close(g.gate)
	deadline := time.Now().Add(5 * time.Second)
	for g.in.Depth() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("backlog never drained")
		}
		time.Sleep(time.Millisecond)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	sawFull := false
	for _, batch := range g.batches[1:] {
		if len(batch) > 4 {
			t.Fatalf("batch of %d exceeds MaxBlock 4", len(batch))
		}
		if len(batch) == 4 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("a 10-deep backlog never produced a MaxBlock-sized batch")
	}
	// The first batch held exactly the plug: low load cuts small blocks.
	if len(g.batches[0]) != 1 {
		t.Fatalf("idle-load batch held %d txs, want 1", len(g.batches[0]))
	}
}

func TestMinBlockWaitsBounded(t *testing.T) {
	// MinBlock 8 with a single submitted transaction: the builder still
	// cuts after roughly one BuildInterval instead of waiting forever.
	var in *Ingress
	var err error
	in, err = New(Config{MinBlock: 8, BuildInterval: 10 * time.Millisecond}, commitSink(&in))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	h, err := in.Submit(context.Background(), mkTx(t, "solo", "v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if r := h.Wait(ctx); !r.Committed {
		t.Fatalf("r = %+v", r)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("undersized batch waited %v, want ≈ BuildInterval", waited)
	}
}

func TestThrottleBacksOff(t *testing.T) {
	var in *Ingress
	var err error
	var calls int
	var mu sync.Mutex
	times := []time.Time{}
	in, err = New(Config{BuildInterval: 5 * time.Millisecond}, func(txs []*txn.Tx) error {
		mu.Lock()
		calls++
		times = append(times, time.Now())
		n := calls
		mu.Unlock()
		for _, tx := range txs {
			if n <= 2 {
				in.Resolve(tx.ID, system.Result{Err: fmt.Errorf("%w: consensus busy", ErrOverloaded)})
			} else {
				in.Resolve(tx.ID, system.Result{Committed: true})
			}
		}
		if n <= 2 {
			return errors.New("backpressure")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// First two rounds are throttled; keep submitting until one commits.
	deadline := time.Now().Add(8 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("builder never recovered from throttle")
		}
		h, err := in.Submit(ctx, mkTx(t, fmt.Sprintf("t%d", i), "v"))
		if err != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		r := h.Wait(ctx)
		if r.Committed {
			break
		}
		if r.Err != nil && !errors.Is(r.Err, ErrOverloaded) {
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	st := in.Stats()
	if st.Throttled < 2 {
		t.Fatalf("Throttled = %d, want ≥ 2", st.Throttled)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) >= 3 {
		// Second backoff doubles: the gap after call 2 must dominate the
		// configured interval.
		if gap := times[2].Sub(times[1]); gap < 2*(5*time.Millisecond) {
			t.Fatalf("backoff gap %v shorter than doubled interval", gap)
		}
	}
}

func TestCloseSweepsPending(t *testing.T) {
	// A sink that never resolves: Close must answer both the dispatched
	// batch and the still-queued backlog with ErrClosed.
	g := newGated(t, Config{}, false)
	g.hold(t)
	h, err := g.in.Submit(context.Background(), mkTx(t, "queued", "v"))
	if err != nil {
		t.Fatal(err)
	}
	close(g.gate)
	g.in.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if r := h.Wait(ctx); !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("swept result %+v, want ErrClosed", r)
	}
	if _, err := g.in.Submit(context.Background(), mkTx(t, "late", "v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit err = %v", err)
	}
}

func TestWatchdogTimesOutUnresolved(t *testing.T) {
	var in *Ingress
	var err error
	in, err = New(Config{CommitTimeout: 50 * time.Millisecond}, func(txs []*txn.Tx) error {
		return nil // consensus black hole: accepted, never sealed
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	h, err := in.Submit(context.Background(), mkTx(t, "lost", "v"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r := h.Wait(ctx)
	if r.Err == nil || r.Committed {
		t.Fatalf("r = %+v, want commit-timeout error", r)
	}
}

func TestStaleWatchdogDoesNotClobberResubmission(t *testing.T) {
	// The commit-timeout watchdog holds the *entry* it dispatched, not
	// just its id. After the entry resolves and a same-content
	// resubmission creates a fresh entry under the same id, the stale
	// timer firing must be a no-op on the new entry.
	var in *Ingress
	var err error
	in, err = New(Config{}, func(txs []*txn.Tx) error {
		return nil // the test resolves by hand
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tx1 := mkTx(t, "re", "used")
	h1, err := in.Submit(ctx, tx1)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for dispatch, then grab the first entry the way its watchdog
	// timer holds it.
	deadline := time.Now().Add(5 * time.Second)
	var e1 *entry
	for e1 == nil {
		if time.Now().After(deadline) {
			t.Fatal("first submission never dispatched")
		}
		in.mu.Lock()
		e1 = in.byID[tx1.ID]
		in.mu.Unlock()
		if e1 == nil {
			time.Sleep(time.Millisecond)
		}
	}
	in.Resolve(tx1.ID, system.Result{Committed: true})
	if r := h1.Wait(ctx); !r.Committed {
		t.Fatalf("first submission %+v", r)
	}

	// Fresh entry, same content hash. A genuinely new transaction: not
	// deduplicated against the resolved one.
	h2, err := in.Submit(ctx, mkTx(t, "re", "used"))
	if err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.Admitted != 2 || st.Deduped != 0 {
		t.Fatalf("resubmission after resolve was deduplicated: %+v", st)
	}

	// The stale timer fires: pointer identity must protect the new entry.
	in.resolveEntry(e1, system.Result{Err: errors.New("stale watchdog")})
	select {
	case r := <-h2.Done():
		t.Fatalf("stale watchdog resolved the resubmission: %+v", r)
	default:
	}
	in.Resolve(tx1.ID, system.Result{Committed: true})
	if r := h2.Wait(ctx); !r.Committed {
		t.Fatalf("second submission %+v", r)
	}
}

func TestValidateRejectsImpossibleShapes(t *testing.T) {
	noop := func([]*txn.Tx) error { return nil }
	if _, err := New(Config{MinBlock: 8, MaxBlock: 4}, noop); err == nil {
		t.Fatal("MinBlock > MaxBlock accepted")
	}
	if _, err := New(Config{MaxBlock: 64, Capacity: 32}, noop); err == nil {
		t.Fatal("MaxBlock > Capacity accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestConcurrentSubmitClean(t *testing.T) {
	var in *Ingress
	var err error
	in, err = New(Config{Capacity: 64, MaxBlock: 16}, commitSink(&in))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Half the keys collide across workers, exercising dedup
				// and shed paths under race.
				h, err := in.Submit(ctx, mkTx(t, fmt.Sprintf("k%d", (w*50+i)%200), "v"))
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					continue
				}
				if r := h.Wait(ctx); !r.Committed && r.Err == nil {
					t.Errorf("worker %d: %+v", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := in.Stats()
	if st.Admitted == 0 || st.Resolved != st.Admitted {
		t.Fatalf("resolved %d of %d admitted", st.Resolved, st.Admitted)
	}
}
