// Package ingress is the admission front door the paper's closed-loop
// harness never needed: a bounded mempool plus an adaptive batch builder
// sitting between clients and a system's consensus pipeline.
//
// The paper's figures feed every system from closed-loop clients calling
// straight into execution, so offered load can never exceed what the
// system absorbs. A deployment serving open-loop traffic has no such
// luck: arrivals keep coming when the system slows down, and without an
// admission layer the excess queues without bound inside consensus until
// something wedges (the raft transport's bounded send queues fail fast,
// but nothing upstream of them sheds). This package turns that cliff
// into a plateau:
//
//   - Admission: Submit deduplicates by content-hash transaction id —
//     concurrent submitters of one identical transaction share a single
//     pending system.Handle instead of racing each other through the
//     per-system waiter maps — classifies into priority lanes, and
//     rejects with ErrOverloaded once the bounded pool is full, so
//     overload sheds at the door instead of inside consensus.
//   - Building: a single builder goroutine forms blocks from arrival
//     pressure. At low load it cuts small blocks immediately (latency);
//     as the pool fills the batch grows toward MaxBlock, the throughput
//     end of the blockshape sweep's size×workers×depth map.
//   - Backpressure: the sink's error return is a throttle signal — when
//     consensus pushes back (cluster.ErrBackpressure surfacing through a
//     bounded append, a leaderless interval) the builder backs off
//     exponentially, the pool fills, and new arrivals shed as retryable
//     admission errors rather than queueing without bound.
package ingress

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/metrics"
	"dichotomy/internal/system"
	"dichotomy/internal/txn"
)

// ErrOverloaded is the typed admission rejection: the mempool was full
// (or the batch builder could not hand the transaction to consensus) and
// the transaction never ran. It surfaces through system.Result.Err and
// classifies with errors.Is through any wrapping, so clients implement
// retry policies against one sentinel instead of string-matching each
// system's failure modes.
var ErrOverloaded = errors.New("ingress: overloaded")

// ErrClosed reports submission to (or pending work swept by) a closed
// front door.
var ErrClosed = errors.New("ingress: closed")

// Retryable reports whether err is a transient admission failure the
// client should back off and retry — the transaction was never executed.
func Retryable(err error) bool { return errors.Is(err, ErrOverloaded) }

// Config shapes the front door. It is the shared knob set embedded by
// fabric.Config, quorum.Config, and hybrid.VeritasConfig — one validated
// default story instead of three per-system copies.
type Config struct {
	// Capacity bounds the queued (admitted, not yet built) transactions
	// across all lanes; Submit sheds with ErrOverloaded beyond it.
	// Default 4096.
	Capacity int
	// Lanes is the number of priority lanes; the builder drains lane 0
	// first. Default 1.
	Lanes int
	// Classify maps a transaction to its lane (clamped to [0, Lanes));
	// nil admits everything to lane 0.
	Classify func(*txn.Tx) int
	// MinBlock is the batch size the builder prefers to wait for; an
	// undersized pool is still cut after BuildInterval, bounding the
	// latency cost of waiting. Default 1 — cut immediately at low load.
	MinBlock int
	// MaxBlock caps a built batch — the pressure ceiling, normally set
	// from the blockshape sweep's optimum. Default 256.
	MaxBlock int
	// BuildInterval is how long the builder lets an undersized batch
	// accumulate, and the base of its backpressure backoff. Default 1ms.
	BuildInterval time.Duration
	// CommitTimeout bounds how long a dispatched transaction may stay
	// unresolved before the front door answers its waiters with an error
	// (the direct paths' 60s commit timeout, enforced per batch).
	// Default 60s.
	CommitTimeout time.Duration
	// TimeoutSkew, when set, maps the nominal CommitTimeout to the value
	// actually armed for each dispatched batch — the seam the chaos layer
	// uses to model clock skew on the commit-timeout clock. nil is the
	// identity.
	TimeoutSkew func(time.Duration) time.Duration
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Lanes <= 0 {
		c.Lanes = 1
	}
	if c.MinBlock <= 0 {
		c.MinBlock = 1
	}
	if c.MaxBlock <= 0 {
		c.MaxBlock = 256
	}
	if c.BuildInterval <= 0 {
		c.BuildInterval = time.Millisecond
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 60 * time.Second
	}
	return c
}

// Validate rejects impossible shapes after defaults are applied.
func (c Config) Validate() error {
	if c.MinBlock > c.MaxBlock {
		return fmt.Errorf("ingress: MinBlock %d > MaxBlock %d", c.MinBlock, c.MaxBlock)
	}
	if c.MaxBlock > c.Capacity {
		return fmt.Errorf("ingress: MaxBlock %d > Capacity %d", c.MaxBlock, c.Capacity)
	}
	return nil
}

// BatchFunc is a system's batch sink: it receives one built block and
// owns every transaction in it — each must eventually resolve through
// Resolve, either immediately (per-transaction admission failures) or
// later via the system's commit path. The returned error is purely a
// throttle signal (consensus pushing back); it must not leave handed
// transactions unresolved.
type BatchFunc func(txs []*txn.Tx) error

// Stats is a point-in-time snapshot of the front door's counters.
type Stats struct {
	// Admitted / Deduped / Shed decompose Submit calls: entered the pool,
	// attached to an already-pending identical transaction, rejected.
	Admitted uint64
	Deduped  uint64
	Shed     uint64
	// Resolved counts transactions whose outcome reached their handles.
	Resolved uint64
	// Blocks and BlockTxs count built batches and the transactions in
	// them; their ratio is the realized adaptive block size.
	Blocks   uint64
	BlockTxs uint64
	// Throttled counts builder backoffs forced by sink throttle signals.
	Throttled uint64
	// Depth is the current queued (admitted, unbuilt) transaction count.
	Depth int
	// QueueDelayP50/P99/Max summarize admission-to-build queueing delay
	// of admitted transactions — the bounded-queueing claim's evidence.
	QueueDelayP50 time.Duration
	QueueDelayP99 time.Duration
	QueueDelayMax time.Duration
}

// entry is one admitted transaction: its handle outlives the queue (it
// stays in byID until resolved, so duplicate submissions attach even
// while the transaction is in flight through consensus).
type entry struct {
	tx  *txn.Tx
	h   *system.Handle
	enq time.Time
}

// Ingress is a running front door: the bounded mempool and its builder.
type Ingress struct {
	cfg  Config
	sink BatchFunc

	mu     sync.Mutex
	lanes  [][]*entry
	byID   map[cryptoutil.Hash]*entry
	queued int
	closed bool

	wake      chan struct{}
	stopCh    chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	admitted  metrics.Counter
	deduped   metrics.Counter
	shed      metrics.Counter
	resolved  metrics.Counter
	blocks    metrics.Counter
	blockTxs  metrics.Counter
	throttled metrics.Counter
	qdelay    metrics.Histogram
}

// New validates cfg (after defaults) and starts the builder feeding sink.
func New(cfg Config, sink BatchFunc) (*Ingress, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sink == nil {
		return nil, errors.New("ingress: nil sink")
	}
	in := &Ingress{
		cfg:    cfg,
		sink:   sink,
		lanes:  make([][]*entry, cfg.Lanes),
		byID:   make(map[cryptoutil.Hash]*entry),
		wake:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	in.wg.Add(1)
	go in.buildLoop()
	return in, nil
}

// Submit admits t into the pool and returns its pending handle. A
// transaction whose content hash is already pending — queued or in
// flight through consensus — attaches to the existing submission's
// handle: both callers observe the same committed result, executed once.
// A full pool rejects with ErrOverloaded; a closed one with ErrClosed.
func (in *Ingress) Submit(ctx context.Context, t *txn.Tx) (*system.Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	if e, ok := in.byID[t.ID]; ok {
		in.mu.Unlock()
		in.deduped.Inc()
		return e.h, nil
	}
	if in.queued >= in.cfg.Capacity {
		in.mu.Unlock()
		in.shed.Inc()
		return nil, fmt.Errorf("%w: mempool at capacity %d", ErrOverloaded, in.cfg.Capacity)
	}
	lane := 0
	if in.cfg.Classify != nil {
		lane = in.cfg.Classify(t)
		if lane < 0 {
			lane = 0
		} else if lane >= in.cfg.Lanes {
			lane = in.cfg.Lanes - 1
		}
	}
	e := &entry{tx: t, h: system.NewHandle(), enq: time.Now()}
	in.lanes[lane] = append(in.lanes[lane], e)
	in.byID[t.ID] = e
	in.queued++
	in.mu.Unlock()
	in.admitted.Inc()
	select {
	case in.wake <- struct{}{}:
	default:
	}
	return e.h, nil
}

// Resolve delivers the outcome for the pending transaction id — the hook
// a system's seal path (or its sink, for immediate failures) calls. It
// detaches the entry, so a later re-submission of the same content is a
// genuinely new transaction. Unknown ids are no-ops, matching the waiter
// registries' semantics.
func (in *Ingress) Resolve(id cryptoutil.Hash, r system.Result) {
	in.mu.Lock()
	e, ok := in.byID[id]
	if ok {
		delete(in.byID, id)
	}
	in.mu.Unlock()
	if ok {
		in.resolved.Inc()
		e.h.Resolve(r)
	}
}

// Resolver returns Resolve curried on id, in the shape Waiters'
// RegisterFunc wants.
func (in *Ingress) Resolver(id cryptoutil.Hash) func(system.Result) {
	return func(r system.Result) { in.Resolve(id, r) }
}

// resolveEntry resolves e only if it is still the pending entry for its
// id — the commit-timeout watchdog must not clobber a same-content
// resubmission that arrived after e resolved.
func (in *Ingress) resolveEntry(e *entry, r system.Result) {
	in.mu.Lock()
	cur, ok := in.byID[e.tx.ID]
	if ok && cur == e {
		delete(in.byID, e.tx.ID)
	} else {
		ok = false
	}
	in.mu.Unlock()
	if ok {
		in.resolved.Inc()
		e.h.Resolve(r)
	}
}

// Depth returns the queued (admitted, unbuilt) transaction count.
func (in *Ingress) Depth() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.queued
}

// Stats snapshots the front door's counters.
func (in *Ingress) Stats() Stats {
	return Stats{
		Admitted:      in.admitted.Load(),
		Deduped:       in.deduped.Load(),
		Shed:          in.shed.Load(),
		Resolved:      in.resolved.Load(),
		Blocks:        in.blocks.Load(),
		BlockTxs:      in.blockTxs.Load(),
		Throttled:     in.throttled.Load(),
		Depth:         in.Depth(),
		QueueDelayP50: in.qdelay.Percentile(50),
		QueueDelayP99: in.qdelay.Percentile(99),
		QueueDelayMax: in.qdelay.Max(),
	}
}

// Close stops the builder and answers every pending handle — queued or
// dispatched-but-uncommitted — with ErrClosed, so no submitter is left
// blocked on a front door that no longer exists.
func (in *Ingress) Close() {
	in.closeOnce.Do(func() {
		close(in.stopCh)
		in.wg.Wait()
		in.mu.Lock()
		in.closed = true
		pending := make([]*entry, 0, len(in.byID))
		for _, e := range in.byID {
			pending = append(pending, e)
		}
		in.byID = make(map[cryptoutil.Hash]*entry)
		in.lanes = make([][]*entry, in.cfg.Lanes)
		in.queued = 0
		in.mu.Unlock()
		for _, e := range pending {
			in.resolved.Inc()
			e.h.Resolve(system.Result{Err: ErrClosed})
		}
	})
}

// oldestEnq returns the enqueue time of the oldest queued entry (ok =
// false when empty). Lane order does not matter for age: the deadline
// only needs some lower bound on how long work has waited.
func (in *Ingress) oldestEnq() (time.Time, int, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	var oldest time.Time
	found := false
	for _, lane := range in.lanes {
		if len(lane) == 0 {
			continue
		}
		if !found || lane[0].enq.Before(oldest) {
			oldest = lane[0].enq
			found = true
		}
	}
	return oldest, in.queued, found
}

// pull drains up to the adaptive target from the lanes, highest priority
// first, recording each entry's queueing delay. The target is the pool
// occupancy clamped to [MinBlock, MaxBlock]: small blocks at low load,
// growing toward the blockshape optimum under pressure.
func (in *Ingress) pull() []*entry {
	in.mu.Lock()
	defer in.mu.Unlock()
	target := in.queued
	if target > in.cfg.MaxBlock {
		target = in.cfg.MaxBlock
	}
	if target == 0 {
		return nil
	}
	out := make([]*entry, 0, target)
	now := time.Now()
	for l := range in.lanes {
		if len(out) == target {
			break
		}
		lane := in.lanes[l]
		n := min(target-len(out), len(lane))
		for _, e := range lane[:n] {
			in.qdelay.Record(now.Sub(e.enq))
			out = append(out, e)
		}
		if n == len(lane) {
			in.lanes[l] = nil
		} else {
			in.lanes[l] = lane[n:]
		}
	}
	in.queued -= len(out)
	return out
}

// buildLoop is the adaptive batch builder: wait for work, give an
// undersized pool one BuildInterval to fill toward MinBlock, cut a batch
// sized by occupancy, hand it to the sink, and back off exponentially
// while the sink reports consensus pushing back.
func (in *Ingress) buildLoop() {
	defer in.wg.Done()
	var backoff time.Duration
	for {
		oldest, depth, ok := in.oldestEnq()
		if !ok {
			select {
			case <-in.stopCh:
				return
			case <-in.wake:
			}
			continue
		}
		if depth < in.cfg.MinBlock {
			// Anchor the wait on the oldest arrival, not on the last
			// wake: a trickle of arrivals must not postpone the cut
			// beyond one BuildInterval of queueing.
			wait := time.Until(oldest.Add(in.cfg.BuildInterval))
			if wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-in.stopCh:
					t.Stop()
					return
				case <-in.wake:
					t.Stop()
					continue
				case <-t.C:
				}
			}
		}
		batch := in.pull()
		if len(batch) == 0 {
			continue
		}
		txs := make([]*txn.Tx, len(batch))
		for i, e := range batch {
			txs[i] = e.tx
		}
		in.blocks.Inc()
		in.blockTxs.Add(uint64(len(txs)))
		err := in.sink(txs)
		if err == nil {
			backoff = 0
			in.watchdog(batch)
			continue
		}
		// Throttle: the sink resolved (or will resolve) its transactions;
		// our job is only to slow down so admission shedding, not
		// consensus queueing, absorbs the overload.
		in.throttled.Inc()
		if backoff < in.cfg.BuildInterval {
			backoff = in.cfg.BuildInterval
		} else {
			backoff *= 2
		}
		if limit := 64 * in.cfg.BuildInterval; backoff > limit {
			backoff = limit
		}
		in.watchdog(batch)
		t := time.NewTimer(backoff)
		select {
		case <-in.stopCh:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// watchdog bounds how long a dispatched batch may stay unresolved: one
// timer per block (not per transaction) answers any leftover waiters
// with a timeout error, mirroring the direct paths' per-transaction 60s
// guard without a goroutine per transaction.
func (in *Ingress) watchdog(batch []*entry) {
	if in.cfg.CommitTimeout <= 0 {
		return
	}
	timeout := in.cfg.CommitTimeout
	if in.cfg.TimeoutSkew != nil {
		if skewed := in.cfg.TimeoutSkew(timeout); skewed > 0 {
			timeout = skewed
		}
	}
	time.AfterFunc(timeout, func() {
		for _, e := range batch {
			in.resolveEntry(e, system.Result{
				Err: fmt.Errorf("ingress: commit timeout after %v", timeout),
			})
		}
	})
}
