// Package occ implements the optimistic concurrency control used by
// execute-order-validate blockchains (Fabric) and the storage-based
// hybrids: transactions simulate against a versioned state, and at commit
// time the validator re-checks that every read version is still current.
// Stale reads abort the transaction — the read-write conflicts whose rates
// Fig 9 and Fig 10 chart.
package occ

import (
	"dichotomy/internal/txn"
)

// AbortReason classifies why validation rejected a transaction; the abort
// decomposition in Fig 10 reports these.
type AbortReason int

const (
	// OK means the transaction validated.
	OK AbortReason = iota
	// ReadWriteConflict means a read version was stale at commit time.
	ReadWriteConflict
	// InconsistentRead means endorsing peers returned diverging results,
	// detected before ordering (Fabric client-side check).
	InconsistentRead
	// WriteWriteConflict is reported by pessimistic/percolator validators
	// for overlapping writers (TiDB path; unused by pure OCC).
	WriteWriteConflict
)

// String names the reason for reports.
func (r AbortReason) String() string {
	switch r {
	case OK:
		return "ok"
	case ReadWriteConflict:
		return "read-write-conflict"
	case InconsistentRead:
		return "inconsistent-read"
	case WriteWriteConflict:
		return "write-write-conflict"
	default:
		return "unknown"
	}
}

// VersionSource resolves the currently committed version of a key.
type VersionSource interface {
	CommittedVersion(key string) (txn.Version, bool)
}

// Validate applies Fabric's MVCC read-set check: every read version must
// equal the committed version. A read of an absent key validates only if
// the key is still absent.
func Validate(rw txn.RWSet, state VersionSource) AbortReason {
	for _, r := range rw.Reads {
		cur, exists := state.CommittedVersion(r.Key)
		if !exists {
			// Key absent now; the read must also have seen absence
			// (zero version).
			if r.Version != (txn.Version{}) {
				return ReadWriteConflict
			}
			continue
		}
		if cur != r.Version {
			return ReadWriteConflict
		}
	}
	return OK
}

// ValidateBlock validates transactions in block order against state,
// applying each valid transaction's writes to the version view before
// checking the next — Fabric's serial in-block validation, which makes
// later transactions conflict with earlier ones in the same block.
// It returns the per-transaction verdicts.
func ValidateBlock(txs []txn.RWSet, state VersionSource, blockNum uint64) []AbortReason {
	overlay := &versionOverlay{base: state, dirty: make(map[string]txn.Version)}
	verdicts := make([]AbortReason, len(txs))
	for i, rw := range txs {
		verdicts[i] = Validate(rw, overlay)
		if verdicts[i] != OK {
			continue
		}
		for _, w := range rw.Writes {
			overlay.dirty[w.Key] = txn.Version{BlockNum: blockNum, TxNum: uint32(i)}
		}
	}
	return verdicts
}

// versionOverlay layers in-block writes over the committed state.
type versionOverlay struct {
	base  VersionSource
	dirty map[string]txn.Version
}

// CommittedVersion implements VersionSource.
func (o *versionOverlay) CommittedVersion(key string) (txn.Version, bool) {
	if v, ok := o.dirty[key]; ok {
		return v, true
	}
	return o.base.CommittedVersion(key)
}

// ConsistentReads checks that simulation results from multiple endorsers
// agree — the client-side consistency check whose failures the paper calls
// "inconsistent reads". Results agree when their read sets match exactly.
func ConsistentReads(results []txn.RWSet) bool {
	if len(results) < 2 {
		return true
	}
	ref := results[0].Reads
	for _, r := range results[1:] {
		if len(r.Reads) != len(ref) {
			return false
		}
		for i := range ref {
			if r.Reads[i] != ref[i] {
				return false
			}
		}
	}
	return true
}
