package occ

import (
	"testing"

	"dichotomy/internal/txn"
)

type versions map[string]txn.Version

func (v versions) CommittedVersion(key string) (txn.Version, bool) {
	ver, ok := v[key]
	return ver, ok
}

func TestValidateCleanRead(t *testing.T) {
	state := versions{"k": {BlockNum: 3, TxNum: 0}}
	rw := txn.RWSet{Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 3}}}}
	if got := Validate(rw, state); got != OK {
		t.Fatalf("verdict = %v", got)
	}
}

func TestValidateStaleRead(t *testing.T) {
	state := versions{"k": {BlockNum: 5, TxNum: 0}}
	rw := txn.RWSet{Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 3}}}}
	if got := Validate(rw, state); got != ReadWriteConflict {
		t.Fatalf("verdict = %v, want rw-conflict", got)
	}
}

func TestValidateAbsentKeyReads(t *testing.T) {
	state := versions{}
	// Read saw absence, key still absent: valid.
	rw := txn.RWSet{Reads: []txn.Read{{Key: "k"}}}
	if got := Validate(rw, state); got != OK {
		t.Fatalf("verdict = %v", got)
	}
	// Read saw a version but the key is gone (deleted): conflict.
	rw = txn.RWSet{Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 1}}}}
	if got := Validate(rw, state); got != ReadWriteConflict {
		t.Fatalf("verdict = %v, want rw-conflict", got)
	}
}

func TestValidateBlockSerialDependency(t *testing.T) {
	// Two txs in one block read the same key at the same version; the
	// first also writes it. Fabric's serial validation must abort the
	// second.
	state := versions{"hot": {BlockNum: 1}}
	read := txn.Read{Key: "hot", Version: txn.Version{BlockNum: 1}}
	tx1 := txn.RWSet{Reads: []txn.Read{read}, Writes: []txn.Write{{Key: "hot", Value: []byte("x")}}}
	tx2 := txn.RWSet{Reads: []txn.Read{read}, Writes: []txn.Write{{Key: "hot", Value: []byte("y")}}}
	verdicts := ValidateBlock([]txn.RWSet{tx1, tx2}, state, 2)
	if verdicts[0] != OK {
		t.Fatalf("tx1 verdict = %v", verdicts[0])
	}
	if verdicts[1] != ReadWriteConflict {
		t.Fatalf("tx2 verdict = %v, want rw-conflict", verdicts[1])
	}
}

func TestValidateBlockIndependentTxsAllPass(t *testing.T) {
	state := versions{"a": {BlockNum: 1}, "b": {BlockNum: 1}}
	tx1 := txn.RWSet{
		Reads:  []txn.Read{{Key: "a", Version: txn.Version{BlockNum: 1}}},
		Writes: []txn.Write{{Key: "a", Value: []byte("x")}},
	}
	tx2 := txn.RWSet{
		Reads:  []txn.Read{{Key: "b", Version: txn.Version{BlockNum: 1}}},
		Writes: []txn.Write{{Key: "b", Value: []byte("y")}},
	}
	for i, v := range ValidateBlock([]txn.RWSet{tx1, tx2}, state, 2) {
		if v != OK {
			t.Fatalf("tx%d verdict = %v", i+1, v)
		}
	}
}

func TestValidateBlockAbortedTxLeavesNoTrace(t *testing.T) {
	// tx1 aborts (stale read); tx2 reads what tx1 would have written and
	// must still validate against the committed version.
	state := versions{"k": {BlockNum: 2}}
	tx1 := txn.RWSet{
		Reads:  []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 1}}}, // stale
		Writes: []txn.Write{{Key: "k", Value: []byte("x")}},
	}
	tx2 := txn.RWSet{
		Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 2}}}, // current
	}
	verdicts := ValidateBlock([]txn.RWSet{tx1, tx2}, state, 3)
	if verdicts[0] != ReadWriteConflict || verdicts[1] != OK {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

func TestConsistentReads(t *testing.T) {
	a := txn.RWSet{Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 1}}}}
	b := txn.RWSet{Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 1}}}}
	c := txn.RWSet{Reads: []txn.Read{{Key: "k", Version: txn.Version{BlockNum: 2}}}}
	if !ConsistentReads([]txn.RWSet{a, b}) {
		t.Fatal("identical reads reported inconsistent")
	}
	if ConsistentReads([]txn.RWSet{a, c}) {
		t.Fatal("diverging reads reported consistent")
	}
	if !ConsistentReads([]txn.RWSet{a}) {
		t.Fatal("single result must be consistent")
	}
	d := txn.RWSet{Reads: []txn.Read{}}
	if ConsistentReads([]txn.RWSet{a, d}) {
		t.Fatal("different read counts reported consistent")
	}
}

func TestAbortReasonStrings(t *testing.T) {
	for r, want := range map[AbortReason]string{
		OK:                 "ok",
		ReadWriteConflict:  "read-write-conflict",
		InconsistentRead:   "inconsistent-read",
		WriteWriteConflict: "write-write-conflict",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}
