package core

import (
	"strings"
	"testing"
)

func TestTable2Coverage(t *testing.T) {
	rows := Table2()
	if len(rows) < 15 {
		t.Fatalf("Table 2 has %d rows; paper lists more", len(rows))
	}
	seen := map[string]bool{}
	for _, p := range rows {
		if seen[p.Name] {
			t.Fatalf("duplicate row %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"Quorum", "Fabric v2.2", "TiDB", "etcd", "Veritas", "BigchainDB", "AHL"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("Lookup(%q) missing", want)
		}
	}
}

func TestGoalsMatchThesis(t *testing.T) {
	// The paper's thesis: blockchains choose security, databases choose
	// performance, hybrids sit between.
	cases := map[string]string{
		"Ethereum":    "security",
		"Fabric v0.6": "security",
		"TiDB":        "performance",
		"Cassandra":   "performance",
		"Veritas":     "hybrid",
		"ChainifyDB":  "hybrid",
	}
	for name, want := range cases {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if got := p.Goal(); got != want {
			t.Errorf("%s.Goal() = %s, want %s", name, got, want)
		}
	}
}

func TestBlockchainsAreTxnReplicated(t *testing.T) {
	for _, p := range Table2() {
		isBlockchain := strings.Contains(p.Category, "blockchain") &&
			!strings.Contains(p.Category, "out-of-the-blockchain")
		if isBlockchain && p.Replication != TxnReplication {
			t.Errorf("%s is a blockchain but not txn-replicated", p.Name)
		}
		isDB := strings.HasSuffix(p.Category, "SQL database")
		if isDB && p.Replication != StorageReplication {
			t.Errorf("%s is a database but not storage-replicated", p.Name)
		}
	}
}

func TestDatabasesKeepLatestStateOnly(t *testing.T) {
	for _, name := range []string{"TiDB", "etcd", "Spanner", "Cassandra"} {
		p, _ := Lookup(name)
		if p.Storage != LatestStateOnly {
			t.Errorf("%s should expose latest state only", name)
		}
	}
	for _, name := range []string{"Ethereum", "Quorum", "Fabric v2.2"} {
		p, _ := Lookup(name)
		if p.Storage != AppendOnlyLedger {
			t.Errorf("%s should have a ledger", name)
		}
	}
}

func TestSecureShardingOnlyOnBlockchainSide(t *testing.T) {
	for _, p := range Table2() {
		if p.Sharding == SecureSharding && p.Failure != ByzantineFaults {
			t.Errorf("%s has secure sharding without a Byzantine model", p.Name)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	if _, ok := Lookup("nonexistent-system"); ok {
		t.Fatal("lookup of unknown system succeeded")
	}
}

func TestStringRendering(t *testing.T) {
	p, _ := Lookup("TiDB")
	s := p.String()
	if !strings.Contains(s, "storage") || !strings.Contains(s, "cft") {
		t.Fatalf("String() = %q", s)
	}
}
