// Package core encodes the paper's primary contribution: the taxonomy
// that places blockchains and distributed databases in one design space of
// four dimensions — replication, concurrency, storage, and sharding — and
// the system catalog of Table 2 expressed in those terms. The fusion
// framework built on top of the taxonomy lives in internal/hybrid; the
// running systems assembled from these design choices live in
// internal/system.
package core

import (
	"fmt"
	"strings"
)

// ReplicationModel is dimension 1a: what gets replicated.
type ReplicationModel int

const (
	// TxnReplication replicates whole transactions; every replica replays
	// execution (blockchains).
	TxnReplication ReplicationModel = iota
	// StorageReplication replicates read/write operations beneath a
	// trusted transaction manager (databases).
	StorageReplication
)

// ReplicationApproach is dimension 1b: how replicas stay consistent.
type ReplicationApproach int

const (
	// ConsensusReplication runs a protocol among the replicas (Raft,
	// Paxos, PBFT, PoW).
	ConsensusReplication ReplicationApproach = iota
	// SharedLogReplication delegates ordering to an external log (Kafka,
	// the Fabric ordering service).
	SharedLogReplication
	// PrimaryBackup designates a primary that synchronizes backups.
	PrimaryBackup
)

// FailureModel is dimension 1c: what failures replication tolerates.
type FailureModel int

const (
	// CrashFaults covers hardware/software crashes only (CFT).
	CrashFaults FailureModel = iota
	// ByzantineFaults covers arbitrary, including malicious, behaviour
	// (BFT).
	ByzantineFaults
)

// Concurrency is dimension 2: how much execution overlaps.
type Concurrency int

const (
	// SerialExecution runs transactions one at a time in ledger order.
	SerialExecution Concurrency = iota
	// ConcurrentExecution overlaps transactions under a concurrency
	// control protocol.
	ConcurrentExecution
	// SimulateThenSerialCommit executes concurrently but commits
	// serially with optimistic validation (execute-order-validate).
	SimulateThenSerialCommit
)

// StorageModel is dimension 3: what the storage layer exposes.
type StorageModel int

const (
	// LatestStateOnly exposes mutable current state (databases; history
	// only in prunable recovery logs).
	LatestStateOnly StorageModel = iota
	// AppendOnlyLedger additionally retains hash-chained history.
	AppendOnlyLedger
)

// StateIndex classifies the state index of dimension 3.
type StateIndex int

const (
	// PlainIndex is a performance-oriented index (B-tree, LSM, skip list).
	PlainIndex StateIndex = iota
	// AuthenticatedIndex additionally commits to contents (MPT, MBT,
	// Merkle trees).
	AuthenticatedIndex
)

// Sharding is dimension 4: how the system scales out.
type Sharding int

const (
	// NoSharding fully replicates everything.
	NoSharding Sharding = iota
	// WorkloadSharding partitions for performance with a trusted 2PC
	// coordinator (databases).
	WorkloadSharding
	// SecureSharding forms shards under adversarial assumptions with
	// unbiasable assignment, BFT-protected 2PC, and periodic
	// reconfiguration (blockchains).
	SecureSharding
)

// Profile is one row of Table 2: a system described in taxonomy terms.
type Profile struct {
	Name        string
	Category    string
	Replication ReplicationModel
	Approach    ReplicationApproach
	Failure     FailureModel
	Concurrency Concurrency
	Storage     StorageModel
	Index       StateIndex
	Sharding    Sharding
}

// Goal returns which high-level goal the profile's choices serve: the
// paper's thesis is that blockchains choose security and databases choose
// performance, dimension by dimension.
func (p Profile) Goal() string {
	securityLeaning := 0
	if p.Replication == TxnReplication {
		securityLeaning++
	}
	if p.Failure == ByzantineFaults {
		securityLeaning++
	}
	if p.Concurrency == SerialExecution || p.Concurrency == SimulateThenSerialCommit {
		// Serial commit order — full or after optimistic simulation — is
		// chosen for deterministic, auditable state, a security goal.
		securityLeaning++
	}
	if p.Storage == AppendOnlyLedger {
		securityLeaning++
	}
	if p.Index == AuthenticatedIndex {
		securityLeaning++
	}
	switch {
	case securityLeaning >= 4:
		return "security"
	case securityLeaning <= 1:
		return "performance"
	default:
		return "hybrid"
	}
}

// Table2 returns the paper's system comparison in taxonomy form (the
// systems this repository also implements or models are all present).
func Table2() []Profile {
	return []Profile{
		{"Ethereum", "permissionless blockchain", TxnReplication, ConsensusReplication, ByzantineFaults, SerialExecution, AppendOnlyLedger, AuthenticatedIndex, NoSharding},
		{"Quorum v2.2", "permissioned blockchain", TxnReplication, ConsensusReplication, CrashFaults, SerialExecution, AppendOnlyLedger, AuthenticatedIndex, NoSharding},
		{"Fabric v2.2", "permissioned blockchain", TxnReplication, SharedLogReplication, CrashFaults, SimulateThenSerialCommit, AppendOnlyLedger, PlainIndex, NoSharding},
		{"Fabric v0.6", "permissioned blockchain", TxnReplication, ConsensusReplication, ByzantineFaults, SerialExecution, AppendOnlyLedger, AuthenticatedIndex, NoSharding},
		{"TiDB v4.0", "NewSQL database", StorageReplication, ConsensusReplication, CrashFaults, ConcurrentExecution, LatestStateOnly, PlainIndex, WorkloadSharding},
		{"CockroachDB", "NewSQL database", StorageReplication, ConsensusReplication, CrashFaults, ConcurrentExecution, LatestStateOnly, PlainIndex, WorkloadSharding},
		{"Spanner", "NewSQL database", StorageReplication, ConsensusReplication, CrashFaults, ConcurrentExecution, LatestStateOnly, PlainIndex, WorkloadSharding},
		{"etcd v3.3", "NoSQL database", StorageReplication, ConsensusReplication, CrashFaults, SerialExecution, LatestStateOnly, PlainIndex, NoSharding},
		{"Cassandra", "NoSQL database", StorageReplication, PrimaryBackup, CrashFaults, ConcurrentExecution, LatestStateOnly, PlainIndex, WorkloadSharding},
		{"BlockchainDB", "out-of-the-blockchain database", StorageReplication, ConsensusReplication, ByzantineFaults, SerialExecution, AppendOnlyLedger, AuthenticatedIndex, SecureSharding},
		{"Veritas", "out-of-the-blockchain database", StorageReplication, SharedLogReplication, CrashFaults, SimulateThenSerialCommit, AppendOnlyLedger, PlainIndex, NoSharding},
		{"FalconDB", "out-of-the-blockchain database", StorageReplication, ConsensusReplication, ByzantineFaults, SimulateThenSerialCommit, AppendOnlyLedger, AuthenticatedIndex, NoSharding},
		{"BRD", "out-of-the-database blockchain", TxnReplication, SharedLogReplication, ByzantineFaults, ConcurrentExecution, AppendOnlyLedger, PlainIndex, NoSharding},
		{"ChainifyDB", "out-of-the-database blockchain", TxnReplication, SharedLogReplication, CrashFaults, ConcurrentExecution, AppendOnlyLedger, PlainIndex, NoSharding},
		{"BigchainDB", "out-of-the-database blockchain", TxnReplication, ConsensusReplication, ByzantineFaults, ConcurrentExecution, AppendOnlyLedger, PlainIndex, NoSharding},
		{"AHL", "sharded blockchain", TxnReplication, ConsensusReplication, ByzantineFaults, SerialExecution, AppendOnlyLedger, AuthenticatedIndex, SecureSharding},
	}
}

// Lookup returns the profile with the given name (case-insensitive
// prefix match), if any.
func Lookup(name string) (Profile, bool) {
	needle := strings.ToLower(name)
	for _, p := range Table2() {
		if strings.HasPrefix(strings.ToLower(p.Name), needle) {
			return p, true
		}
	}
	return Profile{}, false
}

// String renders a profile compactly.
func (p Profile) String() string {
	rep := "storage"
	if p.Replication == TxnReplication {
		rep = "txn"
	}
	fail := "cft"
	if p.Failure == ByzantineFaults {
		fail = "bft"
	}
	return fmt.Sprintf("%s[%s/%s/%s]", p.Name, rep, fail, p.Goal())
}
