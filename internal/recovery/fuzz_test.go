package recovery

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dichotomy/internal/txn"
)

// FuzzDeltaDecode drives the delta-checkpoint loader with arbitrary
// file contents. Crash recovery walks these files after an unclean
// shutdown, so the loader must turn any corruption — bad magic, lying
// counts, truncation, trailing bytes — into an error, never a panic or
// a huge allocation. The format is canonical (loadDelta rejects
// trailing bytes, writeDelta preserves record order), so anything the
// loader accepts must survive a byte-exact write/reload round trip.
func FuzzDeltaDecode(f *testing.F) {
	seedDir := f.TempDir()
	entries := []deltaEntry{
		{key: "alpha", value: []byte("1"), ver: txn.Version{BlockNum: 3, TxNum: 1}, live: true},
		{key: "beta", live: false},
		{key: "", value: nil, ver: txn.Version{}, live: true},
	}
	if _, err := writeDelta(seedDir, 8, 4, entries); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(deltaPath(seedDir, 8, 4))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte("DCKDL1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.dckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []deltaEntry
		height, base, err := loadDelta(path, func(key string, value []byte, ver txn.Version, live bool) error {
			got = append(got, deltaEntry{key: key, value: value, ver: ver, live: live})
			return nil
		})
		if err != nil {
			return
		}
		if _, err := writeDelta(dir, height, base, got); err != nil {
			t.Fatalf("rewrite of accepted delta: %v", err)
		}
		rewritten, err := os.ReadFile(deltaPath(dir, height, base))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rewritten, data) {
			t.Fatal("accepted delta did not round-trip byte-exactly")
		}
	})
}
