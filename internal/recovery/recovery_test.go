package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dichotomy/internal/state"
	"dichotomy/internal/storage/memdb"
	"dichotomy/internal/txn"
)

func fill(t *testing.T, st *state.Store, block uint64, n int) {
	t.Helper()
	writes := make([]state.VersionedWrite, n)
	for i := range writes {
		writes[i] = state.VersionedWrite{
			Write: txn.Write{
				Key:   fmt.Sprintf("key-%03d", i),
				Value: []byte(fmt.Sprintf("v%d-%d", block, i)),
			},
			Version: txn.Version{BlockNum: block, TxNum: uint32(i)},
		}
	}
	if err := st.ApplyBlock(writes); err != nil {
		t.Fatal(err)
	}
}

func dump(st *state.Store) map[string]string {
	out := make(map[string]string)
	st.Dump(func(key string, value []byte, v txn.Version) bool {
		out[key] = fmt.Sprintf("%s@%d.%d", value, v.BlockNum, v.TxNum)
		return true
	})
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := state.New(memdb.New(), 8)
	defer src.Close()
	fill(t, src, 1, 100)
	fill(t, src, 2, 50) // overwrites the first 50 at a newer version

	if _, err := WriteCheckpoint(dir, 2, src); err != nil {
		t.Fatal(err)
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, size, err := Restore(dst, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("restored height %d, want 2", h)
	}
	if size <= 0 {
		t.Fatalf("restored size %d", size)
	}
	want, got := dump(src), dump(dst)
	if len(want) != len(got) {
		t.Fatalf("restored %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: restored %s, want %s", k, got[k], v)
		}
	}
}

func TestRestoreHonoursMaxHeight(t *testing.T) {
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	for b := uint64(1); b <= 3; b++ {
		fill(t, st, b, 20)
		if _, err := WriteCheckpoint(dir, b, st); err != nil {
			t.Fatal(err)
		}
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("restored height %d, want 2 (crash before checkpoint 3)", h)
	}
	// Every restored version must predate checkpoint 3.
	dst.Dump(func(key string, _ []byte, v txn.Version) bool {
		if v.BlockNum > 2 {
			t.Fatalf("key %s carries future version %v", key, v)
		}
		return true
	})
}

func TestRestoreFallsBackAcrossCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	fill(t, st, 1, 30)
	if _, err := WriteCheckpoint(dir, 1, st); err != nil {
		t.Fatal(err)
	}
	fill(t, st, 2, 30)
	if _, err := WriteCheckpoint(dir, 2, st); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint's tail (flip a CRC byte).
	path := filepath.Join(dir, "ckpt-0000000000000002.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Fatalf("restored height %d, want fallback to 1", h)
	}
}

func TestRestoreCorruptCheckpointLeaksNothing(t *testing.T) {
	// A corrupt newest checkpoint with far more records than Restore's
	// internal apply block must not leave any of its future-versioned
	// keys behind after the fallback — replay would misvalidate against
	// them.
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	fill(t, st, 1, 3000)
	if _, err := WriteCheckpoint(dir, 1, st); err != nil {
		t.Fatal(err)
	}
	fill(t, st, 2, 3000) // rewrite every key at block 2
	if _, err := WriteCheckpoint(dir, 2, st); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ckpt-0000000000000002.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // bad CRC, intact records
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Fatalf("restored height %d, want fallback to 1", h)
	}
	dst.Dump(func(key string, _ []byte, v txn.Version) bool {
		if v.BlockNum != 1 {
			t.Fatalf("key %s carries version %v leaked from the corrupt checkpoint", key, v)
		}
		return true
	})
}

func TestRestoreEmptyDirReplaysFromGenesis(t *testing.T) {
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, size, err := Restore(dst, t.TempDir(), 0)
	if err != nil || h != 0 || size != 0 {
		t.Fatalf("Restore on empty dir = %d, %d, %v; want 0, 0, nil", h, size, err)
	}
	// A missing dir behaves the same (the node never checkpointed).
	h, _, err = Restore(dst, filepath.Join(t.TempDir(), "never-created"), 0)
	if err != nil || h != 0 {
		t.Fatalf("Restore on missing dir = %d, %v; want 0, nil", h, err)
	}
}

func TestRestoreAllCorruptReturnsError(t *testing.T) {
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	fill(t, st, 1, 10)
	if _, err := WriteCheckpoint(dir, 1, st); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ckpt-0000000000000001.ckpt")
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	if _, _, err := Restore(dst, dir, 0); err == nil {
		t.Fatal("Restore of a lone corrupt checkpoint reported success")
	}
}

func TestCheckpointerIntervalAndPruning(t *testing.T) {
	st := state.New(memdb.New(), 8)
	defer st.Close()
	dir := t.TempDir()
	c, err := NewCheckpointer(st, Options{Dir: dir, Interval: 3, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrote := 0
	for h := uint64(1); h <= 10; h++ {
		fill(t, st, h, 5)
		did, err := c.MaybeCheckpoint(h)
		if err != nil {
			t.Fatal(err)
		}
		if did {
			wrote++
		}
	}
	// Interval 3 over heights 1..10 fires at 3, 6, 9.
	if wrote != 3 {
		t.Fatalf("wrote %d checkpoints, want 3", wrote)
	}
	if c.LastHeight() != 9 {
		t.Fatalf("last height %d, want 9", c.LastHeight())
	}
	heights, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(heights) != 2 || heights[0] != 6 || heights[1] != 9 {
		t.Fatalf("retained checkpoints %v, want [6 9]", heights)
	}
	count, last, total := c.Totals()
	if count != 3 || last <= 0 || total < 3*last/2 {
		t.Fatalf("Totals = %d, %d, %d", count, last, total)
	}
}

func TestReplayDrivesBlocksAboveCheckpoint(t *testing.T) {
	// A fake source of 10 blocks, each one payload.
	blocks := make([][][]byte, 10)
	for i := range blocks {
		blocks[i] = [][]byte{[]byte(fmt.Sprintf("block-%d", i+1))}
	}
	src := fakeSource(blocks)
	var seen []uint64
	n, err := Replay(src, 4, func(n uint64, payloads [][]byte) error {
		if string(payloads[0]) != fmt.Sprintf("block-%d", n) {
			return fmt.Errorf("wrong payload for block %d", n)
		}
		seen = append(seen, n)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || len(seen) != 6 || seen[0] != 5 || seen[5] != 10 {
		t.Fatalf("replayed %d blocks (%v), want 5..10", n, seen)
	}
	// From == tip replays nothing.
	n, err = Replay(src, 10, func(uint64, [][]byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("Replay at tip = %d, %v", n, err)
	}
}

type fakeSource [][][]byte

func (s fakeSource) Height() uint64 { return uint64(len(s)) }
func (s fakeSource) Payloads(n uint64) ([][]byte, bool) {
	if n < 1 || n > uint64(len(s)) {
		return nil, false
	}
	return s[n-1], true
}

func TestDecodeTxs(t *testing.T) {
	payloads := [][]byte{[]byte("not a tx")}
	if _, err := DecodeTxs(payloads); err == nil {
		t.Fatal("garbage payload decoded")
	}
}
