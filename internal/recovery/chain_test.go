package recovery

import (
	"fmt"
	"testing"

	"dichotomy/internal/txn"
)

// chainModel is the "component" under test: a plain map the test
// mutates between checkpoints.
type chainModel map[string]string

func (m chainModel) dump(emit func(key string, value []byte, ver txn.Version)) {
	for k, v := range m {
		emit(k, []byte(v), txn.Version{})
	}
}

func restoreModel(t *testing.T, w *ChainWriter) chainModel {
	t.Helper()
	got := chainModel{}
	if err := w.Restore(func(key string, value []byte, ver txn.Version) error {
		got[key] = string(value)
		return nil
	}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return got
}

func requireModel(t *testing.T, got, want chainModel) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("restored %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: restored %q, want %q", k, got[k], v)
		}
	}
}

func TestChainWriterRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeFull, ModeDelta} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Dir: dir, Interval: 1, Keep: 3, Mode: mode, FullEvery: 3}
			w, err := OpenChainWriter(opts)
			if err != nil {
				t.Fatal(err)
			}
			if w.LastHeight() != 0 {
				t.Fatalf("fresh dir has height %d", w.LastHeight())
			}
			model := chainModel{}
			// Mutate and checkpoint across enough heights to cross a
			// delta-mode fold (FullEvery=3) and a deletion.
			for h := uint64(1); h <= 7; h++ {
				model[fmt.Sprintf("k%d", h)] = fmt.Sprintf("v%d", h)
				model["hot"] = fmt.Sprintf("hot%d", h)
				if h == 5 {
					delete(model, "k2")
				}
				if err := w.Checkpoint(h, model.dump); err != nil {
					t.Fatalf("checkpoint %d: %v", h, err)
				}
			}
			// A fresh open restores exactly the final content.
			w2, err := OpenChainWriter(opts)
			if err != nil {
				t.Fatal(err)
			}
			if w2.LastHeight() != 7 {
				t.Fatalf("reopened at height %d, want 7", w2.LastHeight())
			}
			requireModel(t, restoreModel(t, w2), model)

			// The reopened writer continues the chain seamlessly.
			model["k8"] = "v8"
			if err := w2.Checkpoint(8, model.dump); err != nil {
				t.Fatalf("checkpoint 8: %v", err)
			}
			w3, err := OpenChainWriter(opts)
			if err != nil {
				t.Fatal(err)
			}
			requireModel(t, restoreModel(t, w3), model)
		})
	}
}

func TestChainWriterMaybeCheckpointInterval(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenChainWriter(Options{Dir: dir, Interval: 3, Mode: ModeDelta})
	if err != nil {
		t.Fatal(err)
	}
	model := chainModel{"a": "1"}
	for h := uint64(1); h <= 2; h++ {
		if err := w.MaybeCheckpoint(h, model.dump); err != nil {
			t.Fatal(err)
		}
	}
	if w.LastHeight() != 0 {
		t.Fatalf("checkpoint fired below interval: height %d", w.LastHeight())
	}
	if err := w.MaybeCheckpoint(3, model.dump); err != nil {
		t.Fatal(err)
	}
	if w.LastHeight() != 3 {
		t.Fatalf("checkpoint did not fire at interval: height %d", w.LastHeight())
	}
}

func TestRestoreChainMaxHeight(t *testing.T) {
	dir := t.TempDir()
	// Full mode so every height is independently restorable.
	w, err := OpenChainWriter(Options{Dir: dir, Interval: 1, Keep: 10, Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	model := chainModel{}
	for h := uint64(1); h <= 3; h++ {
		model["k"] = fmt.Sprintf("v%d", h)
		if err := w.Checkpoint(h, model.dump); err != nil {
			t.Fatal(err)
		}
	}
	got := chainModel{}
	tip, _, err := RestoreChain(dir, 2, func(key string, value []byte, ver txn.Version) error {
		got[key] = string(value)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tip != 2 {
		t.Fatalf("capped restore landed at %d, want 2", tip)
	}
	requireModel(t, got, chainModel{"k": "v2"})
}
