package recovery

import (
	"fmt"
	"time"

	"dichotomy/internal/ledger"
	"dichotomy/internal/txn"
)

// BlockSource is the replicated history a recovering node replays from: a
// healthy replica's ledger (Fabric, Quorum, BigchainDB's applied log) or
// a shared-log tail (Veritas). Block n's payloads are the marshalled
// transactions of block n, in block order.
type BlockSource interface {
	// Height returns the source's current tip.
	Height() uint64
	// Payloads returns block n's transaction payloads, or false if the
	// source does not have block n (pruned below, or above the tip).
	Payloads(n uint64) ([][]byte, bool)
}

// LedgerSource adapts a hash-chained ledger as a BlockSource.
type LedgerSource struct{ L *ledger.Ledger }

// Height implements BlockSource.
func (s LedgerSource) Height() uint64 { return s.L.Height() }

// Payloads implements BlockSource.
func (s LedgerSource) Payloads(n uint64) ([][]byte, bool) {
	b, ok := s.L.Block(n)
	if !ok {
		return nil, false
	}
	return b.Txs, true
}

// Replay drives blocks (from, src.Height()] through apply, in order, and
// returns how many blocks were replayed. apply closures wrap the live
// pipeline stages, so the recovering node runs the exact validate/apply
// code of normal operation.
func Replay(src BlockSource, from uint64, apply func(n uint64, payloads [][]byte) error) (uint64, error) {
	tip := src.Height()
	replayed := uint64(0)
	for n := from + 1; n <= tip; n++ {
		payloads, ok := src.Payloads(n)
		if !ok {
			return replayed, fmt.Errorf("recovery: source missing block %d (tip %d)", n, tip)
		}
		if err := apply(n, payloads); err != nil {
			return replayed, fmt.Errorf("recovery: replay block %d: %w", n, err)
		}
		replayed++
	}
	return replayed, nil
}

// DecodeTxs unmarshals a block's payloads back into transactions,
// preserving block order — the decode half every system's replay shares.
func DecodeTxs(payloads [][]byte) ([]*txn.Tx, error) {
	txs := make([]*txn.Tx, len(payloads))
	for i, p := range payloads {
		t, err := txn.Unmarshal(p)
		if err != nil {
			return nil, fmt.Errorf("recovery: payload %d: %w", i, err)
		}
		txs[i] = t
	}
	return txs, nil
}

// Stats summarizes one recovery: what it started from, how much it
// replayed, and how long each half took. The recovery experiment sweeps
// checkpoint interval × crash height and reports these.
type Stats struct {
	// CheckpointHeight is the height of the checkpoint restored (0 =
	// recovered from genesis).
	CheckpointHeight uint64
	// CheckpointBytes is the restored checkpoint's file size.
	CheckpointBytes int64
	// TipHeight is the source height recovery caught up to.
	TipHeight uint64
	// ReplayedBlocks counts blocks replayed above the checkpoint.
	ReplayedBlocks uint64
	// RestoreDuration is the checkpoint-load time; ReplayDuration the
	// ledger/log replay time.
	RestoreDuration time.Duration
	ReplayDuration  time.Duration
}

// Total returns the end-to-end recovery time.
func (s Stats) Total() time.Duration { return s.RestoreDuration + s.ReplayDuration }
