// Package recovery is the durable checkpoint and crash-recovery layer.
//
// The paper's dichotomy hinges on where the source of truth lives: a
// database restarts from checkpointed state plus a pruned log, while a
// blockchain node can always rebuild from the replicated ledger. This
// package supplies both halves over the shared state layer:
//
//   - A Checkpointer serializes a block-consistent snapshot of a
//     state.Store — committed values AND the per-key txn.Version metadata
//     that otherwise lives only in memory — every Interval blocks. It is
//     driven from a system's committer goroutine (the pipeline's Apply/
//     Seal stage), where the store is between blocks by construction, so
//     a checkpoint can never tear a block.
//   - Restore rebuilds a fresh store from the newest intact checkpoint at
//     or below a crash height, falling back across corrupt files the way
//     WAL replay discards a torn tail.
//   - Replay drives the blocks above the checkpoint back through a
//     system-supplied apply function — systems pass closures over their
//     live pipeline stages, so recovery exercises the exact validate/
//     apply code of normal operation against a ledger or shared-log tail.
package recovery

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"

	"dichotomy/internal/state"
	"dichotomy/internal/txn"
)

// Checkpoint file layout (all integers big-endian):
//
//	magic [6] | height u64 | count u64 |
//	count × ( klen u32 | key | vlen u32 | value | blockNum u64 | txNum u32 ) |
//	crc u32  (IEEE, over everything before it)
//
// Files are written to <height>-named temp files and atomically renamed,
// so a crash mid-checkpoint leaves at most a stray .tmp, never a torn
// checkpoint under the real name.
var ckptMagic = [6]byte{'D', 'C', 'K', 'P', 'T', '1'}

func ckptPath(dir string, height uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016d.ckpt", height))
}

// WriteCheckpoint serializes st's committed values and versions at the
// given height into dir and returns the file's size in bytes. The caller
// must guarantee the store sits at a block boundary for the duration —
// the committer goroutine between blocks, or a quiesced store. One pass
// over the store buffers the records (the count lands in the header
// before them), then header, records, and CRC stream to a temp file
// that is renamed into place.
func WriteCheckpoint(dir string, height uint64, st *state.Store) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("recovery: mkdir: %w", err)
	}

	var records bytes.Buffer
	count := uint64(0)
	var rec [12]byte
	st.Dump(func(key string, value []byte, ver txn.Version) bool {
		binary.BigEndian.PutUint32(rec[:4], uint32(len(key)))
		records.Write(rec[:4])
		records.WriteString(key)
		binary.BigEndian.PutUint32(rec[:4], uint32(len(value)))
		records.Write(rec[:4])
		records.Write(value)
		binary.BigEndian.PutUint64(rec[0:8], ver.BlockNum)
		binary.BigEndian.PutUint32(rec[8:12], ver.TxNum)
		records.Write(rec[:12])
		count++
		return true
	})

	var hdr [6 + 8 + 8]byte
	copy(hdr[:6], ckptMagic[:])
	binary.BigEndian.PutUint64(hdr[6:14], height)
	binary.BigEndian.PutUint64(hdr[14:22], count)
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(records.Bytes())

	path := ckptPath(dir, height)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("recovery: create checkpoint: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	w.Write(hdr[:])
	w.Write(records.Bytes())
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc.Sum32())
	w.Write(tail[:])
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return int64(6 + 8 + 8 + records.Len() + 4), nil
}

// loadCheckpoint streams one checkpoint file's records to fn after
// verifying magic and, at the end, the CRC. fn is called as records are
// read; a corrupt file can therefore deliver a prefix before the error —
// callers must buffer and discard everything delivered before a non-nil
// return (Restore applies nothing until the whole file verified).
func loadCheckpoint(path string, fn func(key string, value []byte, ver txn.Version) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	// The CRC must cover exactly the bytes before the trailer, so hash on
	// consumption rather than teeing the (read-ahead) buffered reader.
	crc := crc32.NewIEEE()
	r := bufio.NewReaderSize(f, 1<<16)
	readFull := func(buf []byte) error {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		crc.Write(buf)
		return nil
	}

	var hdr [6 + 8 + 8]byte
	if err := readFull(hdr[:]); err != nil {
		return 0, fmt.Errorf("recovery: %s: short header: %w", path, err)
	}
	if [6]byte(hdr[:6]) != ckptMagic {
		return 0, fmt.Errorf("recovery: %s: bad magic", path)
	}
	height := binary.BigEndian.Uint64(hdr[6:14])
	count := binary.BigEndian.Uint64(hdr[14:22])
	// A corrupt length must not trigger a huge allocation; every record is
	// at least 20 bytes, and no key or value exceeds 1 GiB (same bound as
	// the WAL).
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if count > uint64(info.Size())/20 {
		return 0, fmt.Errorf("recovery: %s: implausible record count %d", path, count)
	}
	checkLen := func(n uint32, what string) error {
		if int64(n) > info.Size() || n > 1<<30 {
			return fmt.Errorf("recovery: %s: implausible %s length %d", path, what, n)
		}
		return nil
	}

	var lenBuf [4]byte
	var verBuf [12]byte
	for i := uint64(0); i < count; i++ {
		if err := readFull(lenBuf[:]); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated at record %d: %w", path, i, err)
		}
		klen := binary.BigEndian.Uint32(lenBuf[:])
		if err := checkLen(klen, "key"); err != nil {
			return 0, err
		}
		key := make([]byte, klen)
		if err := readFull(key); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated key at record %d: %w", path, i, err)
		}
		if err := readFull(lenBuf[:]); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated at record %d: %w", path, i, err)
		}
		vlen := binary.BigEndian.Uint32(lenBuf[:])
		if err := checkLen(vlen, "value"); err != nil {
			return 0, err
		}
		value := make([]byte, vlen)
		if err := readFull(value); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated value at record %d: %w", path, i, err)
		}
		if err := readFull(verBuf[:]); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated version at record %d: %w", path, i, err)
		}
		ver := txn.Version{
			BlockNum: binary.BigEndian.Uint64(verBuf[0:8]),
			TxNum:    binary.BigEndian.Uint32(verBuf[8:12]),
		}
		if err := fn(string(key), value, ver); err != nil {
			return 0, err
		}
	}
	// The trailer sits outside the checksummed region.
	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, fmt.Errorf("recovery: %s: missing crc: %w", path, err)
	}
	if binary.BigEndian.Uint32(tail[:]) != want {
		return 0, fmt.Errorf("recovery: %s: crc mismatch", path)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return 0, fmt.Errorf("recovery: %s: trailing bytes", path)
	}
	return height, nil
}

// Checkpoints lists the checkpoint heights present in dir, ascending.
func Checkpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var heights []uint64
	for _, e := range entries {
		name := e.Name()
		var h uint64
		if _, err := fmt.Sscanf(name, "ckpt-%d.ckpt", &h); err == nil && strings.HasSuffix(name, ".ckpt") {
			heights = append(heights, h)
		}
	}
	slices.Sort(heights)
	return heights, nil
}

// Restore loads the newest intact checkpoint in dir with height ≤
// maxHeight (0 means no limit) into st, which must be empty, and returns
// the checkpoint's height and file size. Corrupt checkpoints are skipped,
// falling back to the next older one; with no usable checkpoint it
// returns height 0 and a nil error — recovery then replays from genesis.
// A candidate file is buffered in full and nothing touches st until its
// CRC verifies, so a corrupt newer checkpoint can never leak
// future-versioned keys into the state a fallback restore builds (replay
// would misvalidate against them).
func Restore(st *state.Store, dir string, maxHeight uint64) (uint64, int64, error) {
	heights, err := Checkpoints(dir)
	if err != nil {
		return 0, 0, err
	}
	if maxHeight == 0 {
		maxHeight = ^uint64(0)
	}
	var lastErr error
	for i := len(heights) - 1; i >= 0; i-- {
		h := heights[i]
		if h > maxHeight {
			continue
		}
		path := ckptPath(dir, h)
		var pending []state.VersionedWrite
		height, err := loadCheckpoint(path, func(key string, value []byte, ver txn.Version) error {
			if value == nil {
				value = []byte{}
			}
			pending = append(pending, state.VersionedWrite{
				Write:   txn.Write{Key: key, Value: value},
				Version: ver,
			})
			return nil
		})
		if err != nil {
			lastErr = err
			continue // corrupt: fall back to the next older checkpoint
		}
		for len(pending) > 0 {
			block := pending
			if len(block) > 1024 {
				block = block[:1024]
			}
			if err := st.ApplyBlock(block); err != nil {
				return 0, 0, err
			}
			pending = pending[len(block):]
		}
		info, err := os.Stat(path)
		if err != nil {
			return 0, 0, err
		}
		return height, info.Size(), nil
	}
	if lastErr != nil {
		// Every candidate was corrupt; surface the newest failure but let
		// the caller decide whether genesis replay is acceptable.
		return 0, 0, fmt.Errorf("recovery: no intact checkpoint (newest failure: %w)", lastErr)
	}
	return 0, 0, nil
}

// Checkpointer writes periodic checkpoints of a store. Systems call
// MaybeCheckpoint from their committer goroutine after sealing each
// block; the write happens synchronously there, which is exactly the
// commit-path cost the checkpoint-interval experiment measures.
type Checkpointer struct {
	st       *state.Store
	dir      string
	interval uint64
	keep     int

	mu         sync.Mutex
	last       uint64
	count      int
	lastBytes  int64
	totalBytes int64
	lastErr    error
}

// NewCheckpointer builds a checkpointer writing to dir every interval
// blocks, retaining the keep most recent checkpoints (≤ 0 keeps 2).
func NewCheckpointer(st *state.Store, dir string, interval uint64, keep int) (*Checkpointer, error) {
	if interval == 0 {
		return nil, fmt.Errorf("recovery: checkpoint interval must be ≥ 1")
	}
	if keep <= 0 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: mkdir: %w", err)
	}
	return &Checkpointer{st: st, dir: dir, interval: interval, keep: keep}, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpointer) Dir() string { return c.dir }

// MaybeCheckpoint writes a checkpoint if height has advanced a full
// interval past the last one. It reports whether a checkpoint was
// written. Errors are returned and also retained for LastErr, so a
// committer that cannot stop may keep going and let the operator (or a
// test) observe the failure.
func (c *Checkpointer) MaybeCheckpoint(height uint64) (bool, error) {
	c.mu.Lock()
	due := height >= c.last+c.interval
	c.mu.Unlock()
	if !due {
		return false, nil
	}
	return true, c.Checkpoint(height)
}

// Checkpoint writes a checkpoint at height unconditionally and prunes
// old ones.
func (c *Checkpointer) Checkpoint(height uint64) error {
	n, err := WriteCheckpoint(c.dir, height, c.st)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.lastErr = err
		return err
	}
	c.last = height
	c.count++
	c.lastBytes = n
	c.totalBytes += n
	c.pruneLocked()
	return nil
}

func (c *Checkpointer) pruneLocked() {
	heights, err := Checkpoints(c.dir)
	if err != nil || len(heights) <= c.keep {
		return
	}
	for _, h := range heights[:len(heights)-c.keep] {
		os.Remove(ckptPath(c.dir, h))
	}
}

// LastHeight returns the height of the most recent checkpoint (0 if none).
func (c *Checkpointer) LastHeight() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// LastErr returns the most recent checkpoint failure, if any.
func (c *Checkpointer) LastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Totals reports how many checkpoints were written and their cumulative
// and most-recent sizes in bytes.
func (c *Checkpointer) Totals() (count int, lastBytes, totalBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count, c.lastBytes, c.totalBytes
}
