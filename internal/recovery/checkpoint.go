// Package recovery is the durable checkpoint and crash-recovery layer.
//
// The paper's dichotomy hinges on where the source of truth lives: a
// database restarts from checkpointed state plus a pruned log, while a
// blockchain node can always rebuild from the replicated ledger. This
// package supplies both halves over the shared state layer:
//
//   - A Checkpointer serializes a block-consistent snapshot of a
//     state.Store — committed values AND the per-key txn.Version metadata
//     that otherwise lives only in memory — every Interval blocks. It is
//     driven from a system's committer goroutine (the pipeline's Apply/
//     Seal stage), where the store is between blocks by construction, so
//     a checkpoint can never tear a block.
//   - Restore rebuilds a fresh store from the newest intact checkpoint at
//     or below a crash height, falling back across corrupt files the way
//     WAL replay discards a torn tail.
//   - Replay drives the blocks above the checkpoint back through a
//     system-supplied apply function — systems pass closures over their
//     live pipeline stages, so recovery exercises the exact validate/
//     apply code of normal operation against a ledger or shared-log tail.
package recovery

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dichotomy/internal/state"
	"dichotomy/internal/txn"
)

// Checkpoint file layout (all integers big-endian):
//
//	magic [6] | height u64 | count u64 |
//	count × ( klen u32 | key | vlen u32 | value | blockNum u64 | txNum u32 ) |
//	crc u32  (IEEE, over everything before it)
//
// Files are written to <height>-named temp files and atomically renamed,
// so a crash mid-checkpoint leaves at most a stray .tmp, never a torn
// checkpoint under the real name.
var ckptMagic = [6]byte{'D', 'C', 'K', 'P', 'T', '1'}

func ckptPath(dir string, height uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016d.ckpt", height))
}

// WriteCheckpoint serializes st's committed values and versions at the
// given height into dir and returns the file's size in bytes. The caller
// must guarantee the store sits at a block boundary for the duration —
// the committer goroutine between blocks, or a quiesced store.
func WriteCheckpoint(dir string, height uint64, st *state.Store) (int64, error) {
	return writeFullFile(dir, height, func(put func(key string, value []byte, ver txn.Version)) {
		st.Dump(func(key string, value []byte, ver txn.Version) bool {
			put(key, value, ver)
			return true
		})
	})
}

// writeFullFile writes one full-format checkpoint file: emit is called
// once and puts every record; one pass buffers the records (the count
// lands in the header before them), then header, records, and CRC stream
// to a temp file that is renamed into place.
func writeFullFile(dir string, height uint64, emit func(put func(key string, value []byte, ver txn.Version))) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("recovery: mkdir: %w", err)
	}

	var records bytes.Buffer
	count := uint64(0)
	var rec [12]byte
	emit(func(key string, value []byte, ver txn.Version) {
		binary.BigEndian.PutUint32(rec[:4], uint32(len(key)))
		records.Write(rec[:4])
		records.WriteString(key)
		binary.BigEndian.PutUint32(rec[:4], uint32(len(value)))
		records.Write(rec[:4])
		records.Write(value)
		binary.BigEndian.PutUint64(rec[0:8], ver.BlockNum)
		binary.BigEndian.PutUint32(rec[8:12], ver.TxNum)
		records.Write(rec[:12])
		count++
	})

	var hdr [6 + 8 + 8]byte
	copy(hdr[:6], ckptMagic[:])
	binary.BigEndian.PutUint64(hdr[6:14], height)
	binary.BigEndian.PutUint64(hdr[14:22], count)
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(records.Bytes())

	path := ckptPath(dir, height)
	return writeAtomic(path, func(w *bufio.Writer) {
		w.Write(hdr[:])
		w.Write(records.Bytes())
		var tail [4]byte
		binary.BigEndian.PutUint32(tail[:], crc.Sum32())
		w.Write(tail[:])
	})
}

// writeAtomic streams body to path via a synced temp file and atomic
// rename, returning the bytes written. A crash mid-write leaves at most
// a stray .tmp, never a torn file under the real name.
func writeAtomic(path string, body func(w *bufio.Writer)) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("recovery: create %s: %w", path, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	body(w)
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// loadCheckpoint streams one checkpoint file's records to fn after
// verifying magic and, at the end, the CRC. fn is called as records are
// read; a corrupt file can therefore deliver a prefix before the error —
// callers must buffer and discard everything delivered before a non-nil
// return (Restore applies nothing until the whole file verified).
func loadCheckpoint(path string, fn func(key string, value []byte, ver txn.Version) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	// The CRC must cover exactly the bytes before the trailer, so hash on
	// consumption rather than teeing the (read-ahead) buffered reader.
	crc := crc32.NewIEEE()
	r := bufio.NewReaderSize(f, 1<<16)
	readFull := func(buf []byte) error {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		crc.Write(buf)
		return nil
	}

	var hdr [6 + 8 + 8]byte
	if err := readFull(hdr[:]); err != nil {
		return 0, fmt.Errorf("recovery: %s: short header: %w", path, err)
	}
	if [6]byte(hdr[:6]) != ckptMagic {
		return 0, fmt.Errorf("recovery: %s: bad magic", path)
	}
	height := binary.BigEndian.Uint64(hdr[6:14])
	count := binary.BigEndian.Uint64(hdr[14:22])
	// A corrupt length must not trigger a huge allocation; every record is
	// at least 20 bytes, and no key or value exceeds 1 GiB (same bound as
	// the WAL).
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if count > uint64(info.Size())/20 {
		return 0, fmt.Errorf("recovery: %s: implausible record count %d", path, count)
	}
	checkLen := func(n uint32, what string) error {
		if int64(n) > info.Size() || n > 1<<30 {
			return fmt.Errorf("recovery: %s: implausible %s length %d", path, what, n)
		}
		return nil
	}

	var lenBuf [4]byte
	var verBuf [12]byte
	for i := uint64(0); i < count; i++ {
		if err := readFull(lenBuf[:]); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated at record %d: %w", path, i, err)
		}
		klen := binary.BigEndian.Uint32(lenBuf[:])
		if err := checkLen(klen, "key"); err != nil {
			return 0, err
		}
		key := make([]byte, klen)
		if err := readFull(key); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated key at record %d: %w", path, i, err)
		}
		if err := readFull(lenBuf[:]); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated at record %d: %w", path, i, err)
		}
		vlen := binary.BigEndian.Uint32(lenBuf[:])
		if err := checkLen(vlen, "value"); err != nil {
			return 0, err
		}
		value := make([]byte, vlen)
		if err := readFull(value); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated value at record %d: %w", path, i, err)
		}
		if err := readFull(verBuf[:]); err != nil {
			return 0, fmt.Errorf("recovery: %s: truncated version at record %d: %w", path, i, err)
		}
		ver := txn.Version{
			BlockNum: binary.BigEndian.Uint64(verBuf[0:8]),
			TxNum:    binary.BigEndian.Uint32(verBuf[8:12]),
		}
		if err := fn(string(key), value, ver); err != nil {
			return 0, err
		}
	}
	// The trailer sits outside the checksummed region.
	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, fmt.Errorf("recovery: %s: missing crc: %w", path, err)
	}
	if binary.BigEndian.Uint32(tail[:]) != want {
		return 0, fmt.Errorf("recovery: %s: crc mismatch", path)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return 0, fmt.Errorf("recovery: %s: trailing bytes", path)
	}
	return height, nil
}

// Checkpoints lists the full-snapshot heights present in dir, ascending
// (a filter over listChain, the one place checkpoint filenames are
// parsed).
func Checkpoints(dir string) ([]uint64, error) {
	files, err := listChain(dir)
	if err != nil {
		return nil, err
	}
	var heights []uint64
	for _, f := range files {
		if !f.delta {
			heights = append(heights, f.height)
		}
	}
	return heights, nil
}

// Mode selects the checkpoint strategy.
type Mode int

const (
	// ModeFull serializes the whole store every interval, synchronously
	// on the committer — durability cost O(store) per checkpoint. The
	// baseline the delta sweep compares against.
	ModeFull Mode = iota
	// ModeDelta serializes only the keys dirtied since the previous
	// checkpoint. The committer's cost is materializing the dirty set
	// (O(block writes)); encoding, file I/O, fsync, compaction, and
	// pruning all happen on a checkpoint worker goroutine.
	ModeDelta
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeDelta {
		return "delta"
	}
	return "full"
}

// ParseMode parses "full" or "delta".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "full":
		return ModeFull, nil
	case "delta":
		return ModeDelta, nil
	}
	return ModeFull, fmt.Errorf("recovery: unknown checkpoint mode %q (want full or delta)", s)
}

// Options configures a Checkpointer.
type Options struct {
	// Dir is the checkpoint directory.
	Dir string
	// Interval is how many blocks between checkpoints (must be ≥ 1).
	Interval uint64
	// Keep is how many recent checkpoint files to retain (≤ 0 keeps 2).
	// Pruning extends retention downward to the full snapshot the oldest
	// retained delta depends on, so a kept delta is never orphaned.
	Keep int
	// Mode selects full or delta checkpoints.
	Mode Mode
	// FullEvery, in delta mode, folds the chain into a fresh full
	// snapshot every FullEvery-th checkpoint (≤ 0 selects 8); the fold
	// runs on the worker, off the commit path. 1 degenerates to
	// worker-side full checkpoints.
	FullEvery int
}

func (o Options) withDefaults() Options {
	if o.Keep <= 0 {
		o.Keep = 2
	}
	if o.FullEvery <= 0 {
		o.FullEvery = 8
	}
	return o
}

// deltaJob is one materialized checkpoint handed from the committer to
// the worker: the dirty entries as of height, already copied, so the
// worker never touches the store.
type deltaJob struct {
	height uint64
	base   uint64 // previous checkpoint height this delta applies on top of
	// seedFull marks the chain's first checkpoint: the dirty set covers
	// every key the store ever committed (dirt accumulates from store
	// creation, and restore itself re-dirties what it loads), so the
	// entries ARE the full state and are written as a full snapshot.
	seedFull bool
	// compact folds the on-disk chain up to base with the new entries
	// into a fresh full snapshot at height.
	compact bool
	entries []deltaEntry
}

// Checkpointer writes periodic checkpoints of a store. Systems call
// MaybeCheckpoint from their committer goroutine after sealing each
// block. In full mode the write is synchronous there — the commit-path
// cost the recovery experiment's full rows measure. In delta mode the
// committer only materializes the dirty set and enqueues it; a worker
// goroutine does the serialization and file I/O, so block sealing never
// stalls for a disk write. PauseNs reports the measured commit-path
// stall per checkpoint in both modes.
type Checkpointer struct {
	st   *state.Store
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // signals the worker and Flush waiters
	last uint64
	// base/haveBase track the on-disk chain tip the next delta links to;
	// haveBase == false makes the next checkpoint a chain-seeding full.
	base                      uint64
	haveBase                  bool
	sinceFull                 int
	count                     int
	lastBytes, totalBytes     int64
	lastPauseNs, totalPauseNs int64
	lastErr                   error
	jobs                      []deltaJob
	busy                      bool
	closed                    bool
	wg                        sync.WaitGroup
}

// NewCheckpointer builds a checkpointer over st. In delta mode it starts
// the checkpoint worker; call Close to stop it (Close discards queued
// work, like the crash it models — Flush first for a clean drain).
func NewCheckpointer(st *state.Store, opts Options) (*Checkpointer, error) {
	if opts.Interval == 0 {
		return nil, fmt.Errorf("recovery: checkpoint interval must be ≥ 1")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: mkdir: %w", err)
	}
	c := &Checkpointer{st: st, opts: opts}
	c.cond = sync.NewCond(&c.mu)
	if opts.Mode == ModeDelta {
		// Dirty tracking is opt-in on the store (non-checkpointing runs
		// skip the bookkeeping); a delta checkpointer must see every
		// write from here on. Callers construct the checkpointer before
		// traffic — recovery enables tracking even earlier, before the
		// restore's writes (see RebuildStore).
		st.EnableDirtyTracking()
		c.wg.Add(1)
		go c.runWorker()
	}
	return c, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpointer) Dir() string { return c.opts.Dir }

// Mode returns the checkpoint mode.
func (c *Checkpointer) Mode() Mode { return c.opts.Mode }

// MaybeCheckpoint takes a checkpoint if height has advanced a full
// interval past the last one. It reports whether a checkpoint was
// taken. Errors are returned and also retained for LastErr, so a
// committer that cannot stop may keep going and let the operator (or a
// test) observe the failure.
func (c *Checkpointer) MaybeCheckpoint(height uint64) (bool, error) {
	c.mu.Lock()
	due := height >= c.last+c.opts.Interval
	c.mu.Unlock()
	if !due {
		return false, nil
	}
	return true, c.Checkpoint(height)
}

// Checkpoint takes a checkpoint at height unconditionally. In full mode
// the whole store is serialized and pruned synchronously; in delta mode
// the dirty set is materialized and handed to the worker. Either way the
// store's dirty set resets — the next delta accumulates from here.
func (c *Checkpointer) Checkpoint(height uint64) error {
	if c.opts.Mode == ModeDelta {
		return c.deltaCheckpoint(height)
	}
	start := time.Now()
	n, err := WriteCheckpoint(c.opts.Dir, height, c.st)
	c.st.ResetDirty() // a full checkpoint covers everything dirtied so far
	pause := time.Since(start).Nanoseconds()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastPauseNs, c.totalPauseNs = pause, c.totalPauseNs+pause
	if err != nil {
		c.lastErr = err
		return err
	}
	c.last, c.base, c.haveBase = height, height, true
	c.count++
	c.lastBytes = n
	c.totalBytes += n
	pruneChains(c.opts.Dir, c.opts.Keep)
	return nil
}

// deltaCheckpoint materializes the dirty set on the caller (the
// committer) and enqueues it; the measured pause covers exactly the
// work that stays on the commit path.
func (c *Checkpointer) deltaCheckpoint(height uint64) error {
	start := time.Now()
	var entries []deltaEntry
	c.st.DumpDirty(func(key string, value []byte, ver txn.Version, live bool) bool {
		e := deltaEntry{key: key, ver: ver, live: live}
		if live {
			// The store may reuse or mutate the backing slice after the
			// next block commits; the job needs a stable copy.
			e.value = append([]byte(nil), value...)
		}
		entries = append(entries, e)
		return true
	})
	c.st.ResetDirty()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		err := fmt.Errorf("recovery: checkpointer closed")
		c.lastErr = err
		return err
	}
	job := deltaJob{height: height, base: c.base, entries: entries}
	switch {
	case !c.haveBase:
		job.seedFull = true
		c.sinceFull = 0
	case c.sinceFull+1 >= c.opts.FullEvery:
		job.compact = true
		c.sinceFull = 0
	default:
		c.sinceFull++
	}
	c.base, c.haveBase = height, true
	c.last = height
	c.count++
	c.jobs = append(c.jobs, job)
	pause := time.Since(start).Nanoseconds()
	c.lastPauseNs, c.totalPauseNs = pause, c.totalPauseNs+pause
	c.cond.Broadcast()
	return nil
}

// runWorker drains the delta-job queue: encode, write, fsync, compact,
// prune — everything the commit path no longer waits for.
func (c *Checkpointer) runWorker() {
	defer c.wg.Done()
	c.mu.Lock()
	for {
		for len(c.jobs) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		job := c.jobs[0]
		c.jobs = c.jobs[1:]
		c.busy = true
		c.mu.Unlock()

		n, err := c.writeJob(job)

		c.mu.Lock()
		c.busy = false
		if err != nil {
			c.lastErr = err
		} else {
			c.lastBytes = n
			c.totalBytes += n
			pruneChains(c.opts.Dir, c.opts.Keep)
		}
		c.cond.Broadcast()
	}
}

// writeJob turns one materialized dirty set into a file: a chain-seeding
// full, a compacted full (chain fold + overlay), or a plain delta. A
// failed fold degrades to a plain delta — the chain keeps extending and
// the fold error is retained for LastErr.
func (c *Checkpointer) writeJob(job deltaJob) (int64, error) {
	dir := c.opts.Dir
	if job.seedFull {
		m := make(map[string]chainEntry, len(job.entries))
		overlayEntries(m, job.entries)
		return writeFullFromMap(dir, job.height, m)
	}
	if job.compact {
		m, tip, _, err := loadChain(dir, job.base)
		if err == nil && tip != job.base {
			err = fmt.Errorf("recovery: compaction chain tip %d, want %d", tip, job.base)
		}
		if err != nil {
			n, werr := writeDelta(dir, job.height, job.base, job.entries)
			if werr != nil {
				return 0, werr
			}
			c.noteErr(fmt.Errorf("recovery: compaction fold failed, wrote delta instead: %w", err))
			return n, nil
		}
		overlayEntries(m, job.entries)
		return writeFullFromMap(dir, job.height, m)
	}
	return writeDelta(dir, job.height, job.base, job.entries)
}

func (c *Checkpointer) noteErr(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// Flush blocks until every enqueued delta job has been written to disk
// (a no-op in full mode, where checkpoints are synchronous). Callers
// that want the on-disk chain to reflect a quiesced store — the
// recovery experiment before it crashes a node — flush first.
func (c *Checkpointer) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for (len(c.jobs) > 0 || c.busy) && !c.closed {
		c.cond.Wait()
	}
}

// Close stops the checkpoint worker, discarding queued jobs — the same
// loss a crash inflicts, which Restore's chain fallback absorbs. A file
// mid-write finishes (atomic rename keeps it intact). Close is
// idempotent and safe on a full-mode checkpointer.
func (c *Checkpointer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.jobs = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// LastHeight returns the height of the most recent checkpoint (0 if none).
func (c *Checkpointer) LastHeight() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// LastErr returns the most recent checkpoint failure, if any.
func (c *Checkpointer) LastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// Totals reports how many checkpoints were taken and the cumulative and
// most-recent file sizes written (delta-mode bytes are recorded by the
// worker as files land; Flush first for an exact count).
func (c *Checkpointer) Totals() (count int, lastBytes, totalBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count, c.lastBytes, c.totalBytes
}

// PauseNs reports the most recent and cumulative commit-path stall, in
// nanoseconds, measured across checkpoints: the full serialization in
// full mode, only the dirty-set materialization in delta mode.
func (c *Checkpointer) PauseNs() (lastNs, totalNs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPauseNs, c.totalPauseNs
}
