package recovery

import (
	"bytes"
	"fmt"
	"slices"

	"dichotomy/internal/txn"
)

// This file generalizes the full+delta checkpoint chain beyond
// state.Store. TiDB region replicas and Spanner shard replicas carry
// their durable state in component-specific structures (an MVCC version
// store, a plain replicated map), yet their crash/recover lifecycles
// need exactly the chain format PR 5 built: full snapshots, linked
// deltas, CRC-verified files, corrupt-file fallback, whole-chain
// pruning. ChainWriter exposes that machinery over a dump callback —
// the component serializes itself however it likes; the writer owns
// diffing, folding, file layout, and pruning.

// ChainWriter maintains one on-disk checkpoint chain for a component
// that can dump its complete logical content as key → (value, version)
// records. It is NOT safe for concurrent use: systems call it from the
// single goroutine that applies the component's mutations, which also
// makes the dump race-free by construction.
type ChainWriter struct {
	opts Options
	// prev is the content of the newest checkpoint — the base the next
	// delta diffs against. Held in memory: the components using this
	// writer are per-region/per-shard slices of state, far smaller than
	// a whole node's store.
	prev map[string]chainEntry
	last uint64
	// restoredBytes is the checkpoint-file volume Open read; recovery
	// stats report it.
	restoredBytes int64
	hasFull       bool
	sinceFull     int
}

// OpenChainWriter loads the newest intact chain in opts.Dir (if any) and
// returns a writer seeded with it: LastHeight reports the restore point
// and Restore feeds its content to the caller. Corrupt files degrade the
// restore point exactly as Restore for stores does — an intact prefix,
// never a torn or partial state.
func OpenChainWriter(opts Options) (*ChainWriter, error) {
	opts = opts.withDefaults()
	if opts.Interval == 0 {
		opts.Interval = 1
	}
	m, tip, bytesRead, err := loadChain(opts.Dir, 0)
	if err != nil {
		return nil, fmt.Errorf("recovery: open chain %s: %w", opts.Dir, err)
	}
	if m == nil {
		m = make(map[string]chainEntry)
	}
	return &ChainWriter{
		opts:          opts,
		prev:          m,
		last:          tip,
		restoredBytes: bytesRead,
		hasFull:       tip > 0,
	}, nil
}

// LastHeight returns the height of the newest checkpoint — on a fresh
// open, the restore point (0 when no checkpoint exists).
func (w *ChainWriter) LastHeight() uint64 { return w.last }

// RestoredBytes returns the checkpoint bytes read when the writer was
// opened.
func (w *ChainWriter) RestoredBytes() int64 { return w.restoredBytes }

// Restore feeds every entry of the loaded restore point to apply, in
// sorted key order. Call it once, right after OpenChainWriter, before
// the component starts applying new mutations.
func (w *ChainWriter) Restore(apply func(key string, value []byte, ver txn.Version) error) error {
	keys := make([]string, 0, len(w.prev))
	for k := range w.prev {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		e := w.prev[k]
		if err := apply(k, e.value, e.ver); err != nil {
			return err
		}
	}
	return nil
}

// MaybeCheckpoint writes a checkpoint when height has advanced at least
// Interval past the previous one; otherwise it is a cheap no-op. dump
// must emit the component's complete logical content as of height; the
// writer copies values, so the component may reuse buffers.
func (w *ChainWriter) MaybeCheckpoint(height uint64, dump func(emit func(key string, value []byte, ver txn.Version))) error {
	if height < w.last+w.opts.Interval {
		return nil
	}
	return w.Checkpoint(height, dump)
}

// Checkpoint writes one checkpoint at height unconditionally (unless
// height has not advanced past the last one). The chain's first
// checkpoint and, in delta mode, every FullEvery-th one are full
// snapshots; the rest are deltas diffed against the previous content.
func (w *ChainWriter) Checkpoint(height uint64, dump func(emit func(key string, value []byte, ver txn.Version))) error {
	if height <= w.last {
		return nil
	}
	cur := make(map[string]chainEntry, len(w.prev))
	dump(func(key string, value []byte, ver txn.Version) {
		cur[key] = chainEntry{value: bytes.Clone(value), ver: ver}
	})
	full := w.opts.Mode == ModeFull || !w.hasFull || w.sinceFull+1 >= w.opts.FullEvery
	if full {
		if _, err := writeFullFromMap(w.opts.Dir, height, cur); err != nil {
			return err
		}
		w.hasFull = true
		w.sinceFull = 0
	} else {
		if _, err := writeDelta(w.opts.Dir, height, w.last, diffChain(w.prev, cur)); err != nil {
			return err
		}
		w.sinceFull++
	}
	w.prev = cur
	w.last = height
	pruneChains(w.opts.Dir, w.opts.Keep)
	return nil
}

// diffChain computes the delta entries that turn prev into cur: changed
// and new keys as live records, vanished keys as tombstones, sorted so
// delta files are deterministic.
func diffChain(prev, cur map[string]chainEntry) []deltaEntry {
	var out []deltaEntry
	for k, e := range cur {
		if p, ok := prev[k]; ok && p.ver == e.ver && bytes.Equal(p.value, e.value) {
			continue
		}
		out = append(out, deltaEntry{key: k, value: e.value, ver: e.ver, live: true})
	}
	for k := range prev {
		if _, ok := cur[k]; !ok {
			out = append(out, deltaEntry{key: k, live: false})
		}
	}
	slices.SortFunc(out, func(a, b deltaEntry) int {
		return bytes.Compare([]byte(a.key), []byte(b.key))
	})
	return out
}

// RestoreChain is the one-shot form: it materializes the newest intact
// chain in dir with tip ≤ maxHeight (0 = no limit) and feeds every entry
// to apply in sorted key order, returning the chain's tip height and the
// checkpoint bytes read. Components that keep a ChainWriter should use
// OpenChainWriter + Restore instead, which seeds the delta base in the
// same pass.
func RestoreChain(dir string, maxHeight uint64, apply func(key string, value []byte, ver txn.Version) error) (uint64, int64, error) {
	m, tip, bytesRead, err := loadChain(dir, maxHeight)
	if err != nil {
		return 0, 0, err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		e := m[k]
		if err := apply(k, e.value, e.ver); err != nil {
			return 0, 0, err
		}
	}
	return tip, bytesRead, nil
}
