package recovery

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"dichotomy/internal/state"
	"dichotomy/internal/txn"
)

// Delta checkpoint format. A checkpoint chain is one full snapshot (the
// legacy ckpt-<height>.ckpt format) plus zero or more delta files, each
// carrying only the key/version/value triples dirtied since the previous
// checkpoint, plus tombstones for keys deleted in the interval. Deltas
// link explicitly: the file name carries both the delta's height and the
// height of the checkpoint it applies on top of, so chain walking and
// pruning never need to open a file to discover structure.
//
// Delta file layout (all integers big-endian):
//
//	magic [6] | height u64 | base u64 | count u64 |
//	count × ( klen u32 | key | live u8 |
//	          live: vlen u32 | value | blockNum u64 | txNum u32 ) |
//	crc u32  (IEEE, over everything before it)
//
// Files are written to temp names and atomically renamed, like fulls.
var deltaMagic = [6]byte{'D', 'C', 'K', 'D', 'L', '1'}

func deltaPath(dir string, height, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("delta-%016d-%016d.dckpt", height, base))
}

// deltaEntry is one dirtied key as materialized by the committer: its
// committed value and version, or a tombstone (live == false) when the
// key was deleted during the interval.
type deltaEntry struct {
	key   string
	value []byte
	ver   txn.Version
	live  bool
}

// chainEntry is one key's state while materializing a chain: the value
// and version the chain's newest covering file assigned it.
type chainEntry struct {
	value []byte
	ver   txn.Version
}

// overlayEntries applies one delta's entries over a materialized chain
// state: live entries replace, tombstones delete.
func overlayEntries(m map[string]chainEntry, entries []deltaEntry) {
	for _, e := range entries {
		if e.live {
			m[e.key] = chainEntry{value: e.value, ver: e.ver}
		} else {
			delete(m, e.key)
		}
	}
}

// writeFullFromMap serializes a materialized chain state as a full
// checkpoint at height. Keys are sorted so the file is deterministic —
// folding the same chain always yields identical bytes.
func writeFullFromMap(dir string, height uint64, m map[string]chainEntry) (int64, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return writeFullFile(dir, height, func(put func(key string, value []byte, ver txn.Version)) {
		for _, k := range keys {
			e := m[k]
			put(k, e.value, e.ver)
		}
	})
}

// writeDelta writes one delta file at height on top of base.
func writeDelta(dir string, height, base uint64, entries []deltaEntry) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("recovery: mkdir: %w", err)
	}
	var records bytes.Buffer
	var rec [12]byte
	for _, e := range entries {
		binary.BigEndian.PutUint32(rec[:4], uint32(len(e.key)))
		records.Write(rec[:4])
		records.WriteString(e.key)
		if !e.live {
			records.WriteByte(0)
			continue
		}
		records.WriteByte(1)
		binary.BigEndian.PutUint32(rec[:4], uint32(len(e.value)))
		records.Write(rec[:4])
		records.Write(e.value)
		binary.BigEndian.PutUint64(rec[0:8], e.ver.BlockNum)
		binary.BigEndian.PutUint32(rec[8:12], e.ver.TxNum)
		records.Write(rec[:12])
	}

	var hdr [6 + 8 + 8 + 8]byte
	copy(hdr[:6], deltaMagic[:])
	binary.BigEndian.PutUint64(hdr[6:14], height)
	binary.BigEndian.PutUint64(hdr[14:22], base)
	binary.BigEndian.PutUint64(hdr[22:30], uint64(len(entries)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(records.Bytes())

	return writeAtomic(deltaPath(dir, height, base), func(w *bufio.Writer) {
		w.Write(hdr[:])
		w.Write(records.Bytes())
		var tail [4]byte
		binary.BigEndian.PutUint32(tail[:], crc.Sum32())
		w.Write(tail[:])
	})
}

// loadDelta streams one delta file's records to fn after verifying the
// magic and, at the end, the CRC. Like loadCheckpoint, a corrupt file
// can deliver a prefix before the error — callers buffer and discard
// everything delivered before a non-nil return.
func loadDelta(path string, fn func(key string, value []byte, ver txn.Version, live bool) error) (height, base uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	r := bufio.NewReaderSize(f, 1<<16)
	readFull := func(buf []byte) error {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		crc.Write(buf)
		return nil
	}

	var hdr [6 + 8 + 8 + 8]byte
	if err := readFull(hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("recovery: %s: short header: %w", path, err)
	}
	if [6]byte(hdr[:6]) != deltaMagic {
		return 0, 0, fmt.Errorf("recovery: %s: bad delta magic", path)
	}
	height = binary.BigEndian.Uint64(hdr[6:14])
	base = binary.BigEndian.Uint64(hdr[14:22])
	count := binary.BigEndian.Uint64(hdr[22:30])
	info, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	// A record is at least 5 bytes (length prefix + live flag); the same
	// implausibility bounds as the full loader keep a corrupt count or
	// length from triggering a huge allocation.
	if count > uint64(info.Size())/5 {
		return 0, 0, fmt.Errorf("recovery: %s: implausible record count %d", path, count)
	}
	checkLen := func(n uint32, what string) error {
		if int64(n) > info.Size() || n > 1<<30 {
			return fmt.Errorf("recovery: %s: implausible %s length %d", path, what, n)
		}
		return nil
	}

	var lenBuf [4]byte
	var verBuf [12]byte
	for i := uint64(0); i < count; i++ {
		if err := readFull(lenBuf[:]); err != nil {
			return 0, 0, fmt.Errorf("recovery: %s: truncated at record %d: %w", path, i, err)
		}
		klen := binary.BigEndian.Uint32(lenBuf[:])
		if err := checkLen(klen, "key"); err != nil {
			return 0, 0, err
		}
		key := make([]byte, klen)
		if err := readFull(key); err != nil {
			return 0, 0, fmt.Errorf("recovery: %s: truncated key at record %d: %w", path, i, err)
		}
		var flag [1]byte
		if err := readFull(flag[:]); err != nil {
			return 0, 0, fmt.Errorf("recovery: %s: truncated flag at record %d: %w", path, i, err)
		}
		if flag[0] == 0 {
			if err := fn(string(key), nil, txn.Version{}, false); err != nil {
				return 0, 0, err
			}
			continue
		}
		if err := readFull(lenBuf[:]); err != nil {
			return 0, 0, fmt.Errorf("recovery: %s: truncated at record %d: %w", path, i, err)
		}
		vlen := binary.BigEndian.Uint32(lenBuf[:])
		if err := checkLen(vlen, "value"); err != nil {
			return 0, 0, err
		}
		value := make([]byte, vlen)
		if err := readFull(value); err != nil {
			return 0, 0, fmt.Errorf("recovery: %s: truncated value at record %d: %w", path, i, err)
		}
		if err := readFull(verBuf[:]); err != nil {
			return 0, 0, fmt.Errorf("recovery: %s: truncated version at record %d: %w", path, i, err)
		}
		ver := txn.Version{
			BlockNum: binary.BigEndian.Uint64(verBuf[0:8]),
			TxNum:    binary.BigEndian.Uint32(verBuf[8:12]),
		}
		if err := fn(string(key), value, ver, true); err != nil {
			return 0, 0, err
		}
	}
	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, 0, fmt.Errorf("recovery: %s: missing crc: %w", path, err)
	}
	if binary.BigEndian.Uint32(tail[:]) != want {
		return 0, 0, fmt.Errorf("recovery: %s: crc mismatch", path)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return 0, 0, fmt.Errorf("recovery: %s: trailing bytes", path)
	}
	return height, base, nil
}

// chainFile is one checkpoint file as discovered from its name.
type chainFile struct {
	height uint64
	base   uint64 // deltas only
	delta  bool
}

func (f chainFile) path(dir string) string {
	if f.delta {
		return deltaPath(dir, f.height, f.base)
	}
	return ckptPath(dir, f.height)
}

// listChain lists every checkpoint file in dir — fulls and deltas —
// sorted by height (a full sorts before a delta at the same height).
func listChain(dir string) ([]chainFile, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []chainFile
	for _, e := range entries {
		name := e.Name()
		var h, b uint64
		// Sscanf does not anchor the end of the name, so a stray .tmp
		// left by a crash mid-write ("ckpt-…​.ckpt.tmp") would still
		// match; the suffix guards keep such phantoms out of the chain.
		if n, err := fmt.Sscanf(name, "delta-%d-%d.dckpt", &h, &b); n == 2 && err == nil && strings.HasSuffix(name, ".dckpt") {
			files = append(files, chainFile{height: h, base: b, delta: true})
		} else if n, err := fmt.Sscanf(name, "ckpt-%d.ckpt", &h); n == 1 && err == nil && strings.HasSuffix(name, ".ckpt") {
			files = append(files, chainFile{height: h})
		}
	}
	slices.SortFunc(files, func(a, b chainFile) int {
		if a.height != b.height {
			if a.height < b.height {
				return -1
			}
			return 1
		}
		if a.delta == b.delta {
			return 0
		}
		if !a.delta {
			return -1
		}
		return 1
	})
	return files, nil
}

// loadChain materializes the newest intact checkpoint chain with tip ≤
// upto (0 means no limit): the newest loadable full snapshot plus every
// delta that links onto it, applied in chain order. A corrupt or
// truncated delta ends the chain there — the intact prefix still
// restores, and replay covers the difference; a corrupt full falls back
// to the next older full's chain. Each file is buffered and CRC-verified
// in isolation before anything is applied, so a corrupt file can never
// leak records into the result. Returns the materialized state, the
// chain's tip height, and the total file bytes read. With no full
// snapshot at all it returns (nil, 0, 0, nil); with fulls present but
// none intact, an error.
func loadChain(dir string, upto uint64) (map[string]chainEntry, uint64, int64, error) {
	if upto == 0 {
		upto = ^uint64(0)
	}
	files, err := listChain(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	var fulls []chainFile
	deltasByBase := make(map[uint64][]chainFile)
	for _, f := range files {
		if f.height > upto {
			continue
		}
		if f.delta {
			deltasByBase[f.base] = append(deltasByBase[f.base], f)
		} else {
			fulls = append(fulls, f)
		}
	}

	var lastErr error
	for i := len(fulls) - 1; i >= 0; i-- {
		root := fulls[i]
		m := make(map[string]chainEntry)
		var pending []deltaEntry
		_, err := loadCheckpoint(root.path(dir), func(key string, value []byte, ver txn.Version) error {
			pending = append(pending, deltaEntry{key: key, value: value, ver: ver, live: true})
			return nil
		})
		if err != nil {
			lastErr = err
			continue // corrupt full: fall back to the previous chain
		}
		overlayEntries(m, pending)
		bytesRead := fileSize(root.path(dir))
		tip := root.height
		for {
			next, ok := nextDelta(deltasByBase[tip], tip)
			if !ok {
				break
			}
			pending = pending[:0]
			_, _, err := loadDelta(next.path(dir), func(key string, value []byte, ver txn.Version, live bool) error {
				pending = append(pending, deltaEntry{key: key, value: value, ver: ver, live: live})
				return nil
			})
			if err != nil {
				// Corrupt mid-chain delta: keep the intact prefix. The
				// restore lands at a lower height and replay covers the
				// rest, exactly like falling back to an older checkpoint.
				break
			}
			overlayEntries(m, pending)
			bytesRead += fileSize(next.path(dir))
			tip = next.height
		}
		return m, tip, bytesRead, nil
	}
	if lastErr != nil {
		return nil, 0, 0, fmt.Errorf("recovery: no intact checkpoint (newest failure: %w)", lastErr)
	}
	return nil, 0, 0, nil
}

// nextDelta picks the chain's successor among the deltas based at tip:
// the lowest height above tip. Stale files from a pre-crash incarnation
// can leave several deltas with the same base; the lowest is the
// immediate successor (and replay determinism makes the contents of
// same-height incarnations value-identical anyway).
func nextDelta(candidates []chainFile, tip uint64) (chainFile, bool) {
	var best chainFile
	found := false
	for _, f := range candidates {
		if f.height <= tip {
			continue
		}
		if !found || f.height < best.height {
			best, found = f, true
		}
	}
	return best, found
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// Restore loads the newest intact checkpoint chain in dir with tip ≤
// maxHeight (0 means no limit) into st, which must be empty, and returns
// the chain's tip height and the total checkpoint bytes read. Corrupt
// fulls fall back to the previous chain; a corrupt mid-chain delta
// truncates the chain to its intact prefix. With no usable checkpoint it
// returns height 0 and a nil error — recovery then replays from genesis.
func Restore(st *state.Store, dir string, maxHeight uint64) (uint64, int64, error) {
	m, tip, bytesRead, err := loadChain(dir, maxHeight)
	if err != nil {
		return 0, 0, err
	}
	if tip == 0 {
		return 0, 0, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	pending := make([]state.VersionedWrite, 0, min(len(keys), 1024))
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := st.ApplyBlock(pending); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	for _, k := range keys {
		e := m[k]
		value := e.value
		if value == nil {
			value = []byte{} // a nil write would read as a deletion
		}
		pending = append(pending, state.VersionedWrite{
			Write:   txn.Write{Key: k, Value: value},
			Version: e.ver,
		})
		if len(pending) == 1024 {
			if err := flush(); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := flush(); err != nil {
		return 0, 0, err
	}
	return tip, bytesRead, nil
}

// pruneChains removes old checkpoint files, retaining the newest keep
// files and then extending retention downward along chain links: the
// full snapshot a retained delta (transitively) applies on top of is
// never deleted, so pruning keeps whole chains and never orphans a
// delta.
func pruneChains(dir string, keep int) {
	files, err := listChain(dir)
	if err != nil || len(files) <= keep {
		return
	}
	retained := files[len(files)-keep:]
	// Collect the heights the retained files depend on by walking delta
	// bases transitively. A base may itself be a delta (whose own base
	// extends the walk) or a full (which roots the chain).
	byHeight := make(map[uint64][]chainFile, len(files))
	for _, f := range files {
		byHeight[f.height] = append(byHeight[f.height], f)
	}
	needed := make(map[uint64]bool)
	var walk func(h uint64)
	walk = func(h uint64) {
		if h == 0 || needed[h] {
			return
		}
		needed[h] = true
		for _, f := range byHeight[h] {
			if f.delta {
				walk(f.base)
			}
		}
	}
	for _, f := range retained {
		needed[f.height] = true
		if f.delta {
			walk(f.base)
		}
	}
	for _, f := range files[:len(files)-keep] {
		if needed[f.height] {
			continue
		}
		os.Remove(f.path(dir))
	}
}
