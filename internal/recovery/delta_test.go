package recovery

import (
	"os"
	"testing"

	"dichotomy/internal/state"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/memdb"
	"dichotomy/internal/txn"
)

// newDeltaCheckpointer builds an interval-1 delta checkpointer for tests.
func newDeltaCheckpointer(t *testing.T, st *state.Store, dir string, keep, fullEvery int) *Checkpointer {
	t.Helper()
	c, err := NewCheckpointer(st, Options{
		Dir:       dir,
		Interval:  1,
		Keep:      keep,
		Mode:      ModeDelta,
		FullEvery: fullEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// listKinds summarizes dir's checkpoint files as height → "full"/"delta".
func listKinds(t *testing.T, dir string) map[uint64]string {
	t.Helper()
	files, err := listChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]string)
	for _, f := range files {
		kind := "full"
		if f.delta {
			kind = "delta"
		}
		// A full and a stale delta can share a height; the full wins the
		// summary.
		if _, ok := out[f.height]; !ok || !f.delta {
			out[f.height] = kind
		}
	}
	return out
}

func TestDeltaCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := state.New(memdb.New(), 8)
	defer src.Close()
	c := newDeltaCheckpointer(t, src, dir, 1<<20, 1<<20) // no pruning, no compaction

	fill(t, src, 1, 100)
	if err := c.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	fill(t, src, 2, 20) // overwrites the first 20 at a newer version
	if err := c.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	// Delete one key and add a fresh one in block 3.
	if err := src.ApplyBlock([]state.VersionedWrite{
		{Write: txn.Write{Key: "key-050", Value: nil}},
		{Write: txn.Write{Key: "extra", Value: []byte("x")}, Version: txn.Version{BlockNum: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if err := c.LastErr(); err != nil {
		t.Fatal(err)
	}

	// The chain must be one seeding full plus two deltas.
	kinds := listKinds(t, dir)
	if kinds[1] != "full" || kinds[2] != "delta" || kinds[3] != "delta" {
		t.Fatalf("chain kinds = %v, want full@1 delta@2 delta@3", kinds)
	}

	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, size, err := Restore(dst, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Fatalf("restored height %d, want 3", h)
	}
	if size <= 0 {
		t.Fatalf("restored size %d", size)
	}
	want, got := dump(src), dump(dst)
	if len(want) != len(got) {
		t.Fatalf("restored %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: restored %s, want %s", k, got[k], v)
		}
	}
	if _, deleted := got["key-050"]; deleted {
		t.Fatal("tombstoned key survived the delta restore")
	}
}

func TestDeltaCheckpointBytesTrackBlockNotStore(t *testing.T) {
	// The whole point of delta mode: with a large store and small blocks,
	// per-checkpoint bytes written drop from O(store) to O(block writes).
	run := func(mode Mode) (last int64) {
		dir := t.TempDir()
		st := state.New(memdb.New(), 8)
		defer st.Close()
		c, err := NewCheckpointer(st, Options{Dir: dir, Interval: 1, Keep: 1 << 20, Mode: mode, FullEvery: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		fill(t, st, 1, 2000)
		if err := c.Checkpoint(1); err != nil {
			t.Fatal(err)
		}
		// A small block of 10 writes, then the checkpoint under test.
		fill(t, st, 2, 10)
		if err := c.Checkpoint(2); err != nil {
			t.Fatal(err)
		}
		c.Flush()
		if err := c.LastErr(); err != nil {
			t.Fatal(err)
		}
		_, last, _ = c.Totals()
		return last
	}
	fullLast := run(ModeFull)
	deltaLast := run(ModeDelta)
	if deltaLast <= 0 || fullLast <= 0 {
		t.Fatalf("sizes full=%d delta=%d", fullLast, deltaLast)
	}
	if deltaLast*10 > fullLast {
		t.Fatalf("delta checkpoint wrote %d bytes, full wrote %d; want ≥10× separation", deltaLast, fullLast)
	}
}

func TestDeltaPauseMetricRecorded(t *testing.T) {
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	c := newDeltaCheckpointer(t, st, dir, 1<<20, 1<<20)
	fill(t, st, 1, 50)
	if err := c.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	last, total := c.PauseNs()
	if last <= 0 || total < last {
		t.Fatalf("PauseNs = %d, %d; want positive pause", last, total)
	}
}

func TestDeltaChainCorruptMiddleFallsBackToPrefix(t *testing.T) {
	// A corrupt middle delta must truncate the restore to the intact
	// prefix — and replaying the remaining blocks on top must land
	// byte-identical to the never-crashed store (crash equivalence).
	for _, corrupt := range []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"flip-crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(corrupt.name, func(t *testing.T) {
			dir := t.TempDir()
			src := state.New(memdb.New(), 8)
			defer src.Close()
			c := newDeltaCheckpointer(t, src, dir, 1<<20, 1<<20)
			const blocks = 6
			for b := uint64(1); b <= blocks; b++ {
				fill(t, src, b, 30)
				if err := c.Checkpoint(b); err != nil {
					t.Fatal(err)
				}
			}
			c.Flush()
			if err := c.LastErr(); err != nil {
				t.Fatal(err)
			}
			corrupt.mut(t, deltaPath(dir, 4, 3))

			dst := state.New(memdb.New(), 8)
			defer dst.Close()
			h, _, err := Restore(dst, dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if h != 3 {
				t.Fatalf("restored height %d, want intact prefix tip 3", h)
			}
			dst.Dump(func(key string, _ []byte, v txn.Version) bool {
				if v.BlockNum > 3 {
					t.Fatalf("key %s carries version %v leaked past the corrupt delta", key, v)
				}
				return true
			})
			// Replay blocks 4..6 — the deterministic tail a ledger replay
			// would drive — and require byte-identical equivalence.
			for b := uint64(h + 1); b <= blocks; b++ {
				fill(t, dst, b, 30)
			}
			want, got := dump(src), dump(dst)
			if len(want) != len(got) {
				t.Fatalf("replayed store has %d keys, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %s diverged after prefix restore + replay: %s, want %s", k, got[k], v)
				}
			}
		})
	}
}

func TestDeltaChainCorruptFullFallsBackToOlderChain(t *testing.T) {
	dir := t.TempDir()
	src := state.New(memdb.New(), 8)
	defer src.Close()
	// FullEvery 3 → full@1 (seed), delta@2, delta@3, full@4 (compacted),
	// delta@5.
	c := newDeltaCheckpointer(t, src, dir, 1<<20, 3)
	for b := uint64(1); b <= 5; b++ {
		fill(t, src, b, 20)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := c.LastErr(); err != nil {
		t.Fatal(err)
	}
	kinds := listKinds(t, dir)
	if kinds[1] != "full" || kinds[4] != "full" || kinds[2] != "delta" || kinds[3] != "delta" || kinds[5] != "delta" {
		t.Fatalf("chain kinds = %v, want fulls at 1 and 4", kinds)
	}

	// Corrupt the newer full: restore must fall back to the full@1 chain
	// and walk its deltas to height 3 (delta@5 links to full@4, not 3, so
	// the older chain tops out there).
	data, err := os.ReadFile(ckptPath(dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(ckptPath(dir, 4), data, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Fatalf("restored height %d, want 3 (older chain's tip)", h)
	}
}

func TestDeltaCompactionFullMatchesStore(t *testing.T) {
	dir := t.TempDir()
	src := state.New(memdb.New(), 8)
	defer src.Close()
	c := newDeltaCheckpointer(t, src, dir, 1<<20, 3)
	for b := uint64(1); b <= 4; b++ {
		fill(t, src, b, 50)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := c.LastErr(); err != nil {
		t.Fatal(err)
	}
	// Restore from the compacted full alone (maxHeight 4 with deltas 2,3
	// folded in) and diff against the live store at height 4.
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h != 4 {
		t.Fatalf("restored height %d, want the compacted full at 4", h)
	}
	want, got := dump(src), dump(dst)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: compacted restore %s, want %s", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("compacted restore has %d keys, want %d", len(got), len(want))
	}
}

func TestDeltaPruneKeepsChainDependencies(t *testing.T) {
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	// Keep 2 with FullEvery 4: after 10 checkpoints the two newest files
	// are deltas whose chain roots at an older full — pruning must keep
	// that full and every delta between, and never orphan a delta.
	c := newDeltaCheckpointer(t, st, dir, 2, 4)
	const blocks = 10
	for b := uint64(1); b <= blocks; b++ {
		fill(t, st, b, 20)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := c.LastErr(); err != nil {
		t.Fatal(err)
	}

	files, err := listChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) >= blocks {
		t.Fatalf("pruning retained %d of %d checkpoint files", len(files), blocks)
	}
	present := make(map[uint64]chainFile)
	for _, f := range files {
		present[f.height] = f
	}
	// Every retained delta's base chain must terminate at a retained full.
	for _, f := range files {
		cur := f
		for cur.delta {
			next, ok := present[cur.base]
			if !ok {
				t.Fatalf("delta@%d depends on height %d, which was pruned (files: %+v)", f.height, cur.base, files)
			}
			cur = next
		}
	}
	// And the surviving chain must still restore to the tip.
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h != blocks {
		t.Fatalf("post-prune restore reached %d, want %d", h, blocks)
	}
	want, got := dump(st), dump(dst)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: post-prune restore %s, want %s", k, got[k], v)
		}
	}
}

func TestDeltaRestoreHonoursMaxHeight(t *testing.T) {
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	c := newDeltaCheckpointer(t, st, dir, 1<<20, 1<<20)
	for b := uint64(1); b <= 5; b++ {
		fill(t, st, b, 20)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Fatalf("restored height %d, want 3 (crash before delta 4)", h)
	}
	dst.Dump(func(key string, _ []byte, v txn.Version) bool {
		if v.BlockNum > 3 {
			t.Fatalf("key %s carries future version %v", key, v)
		}
		return true
	})
}

func TestDeltaCloseDiscardsQueuedJobs(t *testing.T) {
	// Close models the crash: queued-but-unwritten deltas are lost, and
	// the chain on disk still restores to whatever the worker finished.
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	c := newDeltaCheckpointer(t, st, dir, 1<<20, 1<<20)
	fill(t, st, 1, 10)
	if err := c.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	c.Close()
	if err := c.Checkpoint(2); err == nil {
		t.Fatal("Checkpoint on a closed checkpointer succeeded")
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, dir, 0)
	if err != nil || h != 1 {
		t.Fatalf("Restore after close = %d, %v; want 1, nil", h, err)
	}
}

func TestFullModeStillPrunesByCount(t *testing.T) {
	// Full mode has no deltas; chain-aware pruning degenerates to the old
	// keep-newest-N behavior (TestCheckpointerIntervalAndPruning covers
	// the interval half; this pins the interaction with pruneChains).
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	c, err := NewCheckpointer(st, Options{Dir: dir, Interval: 1, Keep: 2, Mode: ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for b := uint64(1); b <= 5; b++ {
		fill(t, st, b, 5)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	heights, err := Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(heights) != 2 || heights[0] != 4 || heights[1] != 5 {
		t.Fatalf("retained %v, want [4 5]", heights)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"full": ModeFull, "delta": ModeDelta} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("incremental"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}
	if ModeFull.String() != "full" || ModeDelta.String() != "delta" {
		t.Fatal("Mode.String mismatch")
	}
}

func TestDeltaRebuildStoreReseedsChain(t *testing.T) {
	// After a rebuild bounded below the newest checkpoint, the rebound
	// checkpointer must seed a fresh full rather than linking a delta
	// onto stale newer files — and a restore over the mixed directory
	// must still land on a consistent chain.
	dir := t.TempDir()
	ckptDir := dir + "/ckpt"
	src := state.New(memdb.New(), 8)
	defer src.Close()
	c, err := NewCheckpointer(src, Options{Dir: ckptDir, Interval: 1, Keep: 1 << 20, Mode: ModeDelta, FullEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for b := uint64(1); b <= 4; b++ {
		fill(t, src, b, 20)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()

	// Crash with only checkpoints ≤ 2 surviving the rewind.
	st, ckpt, stats, err := RebuildStore(RebuildConfig{
		OldCkpt:       c,
		Open:          func() (storage.Engine, error) { return memdb.New(), nil },
		CkptDir:       ckptDir,
		Interval:      1,
		Keep:          1 << 20,
		Mode:          ModeDelta,
		FullEvery:     1 << 20,
		MaxCkptHeight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	defer ckpt.Close()
	if stats.CheckpointHeight != 2 {
		t.Fatalf("restored height %d, want 2", stats.CheckpointHeight)
	}
	// Replay block 3 (deterministic) and checkpoint: must be a seeding
	// full at 3, not a delta onto the stale chain.
	fill(t, st, 3, 20)
	if err := ckpt.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	ckpt.Flush()
	if err := ckpt.LastErr(); err != nil {
		t.Fatal(err)
	}
	kinds := listKinds(t, ckptDir)
	if kinds[3] != "full" {
		t.Fatalf("post-rebuild checkpoint at 3 is %q, want a chain-seeding full (kinds %v)", kinds[3], kinds)
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	h, _, err := Restore(dst, ckptDir, 3)
	if err != nil || h != 3 {
		t.Fatalf("Restore = %d, %v; want 3", h, err)
	}
	want, got := dump(st), dump(dst)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: %s, want %s", k, got[k], v)
		}
	}
}

func TestListChainIgnoresTempFiles(t *testing.T) {
	// A crash mid-write leaves .tmp leftovers; Sscanf alone would match
	// "ckpt-….ckpt.tmp", and a phantom chain entry would distort pruning
	// and restore fallback.
	dir := t.TempDir()
	st := state.New(memdb.New(), 8)
	defer st.Close()
	c := newDeltaCheckpointer(t, st, dir, 1<<20, 1<<20)
	for b := uint64(1); b <= 2; b++ {
		fill(t, st, b, 10)
		if err := c.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	for _, stray := range []string{
		ckptPath(dir, 3) + ".tmp",
		deltaPath(dir, 4, 2) + ".tmp",
	} {
		if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := listChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f.height > 2 {
			t.Fatalf("phantom chain entry for temp file: %+v", f)
		}
	}
	dst := state.New(memdb.New(), 8)
	defer dst.Close()
	if h, _, err := Restore(dst, dir, 0); err != nil || h != 2 {
		t.Fatalf("Restore with stray temps = %d, %v; want 2", h, err)
	}
}
