package recovery

import (
	"fmt"
	"os"
	"time"

	"dichotomy/internal/state"
	"dichotomy/internal/storage"
)

// RebuildConfig describes how to rebuild one crashed node's store. The
// four systems differ only in engine policy and directory layout; the
// sequence itself — close the dead store, wipe the engine directory,
// reopen, restore the checkpoint, rebind a fresh checkpointer — is
// shared, so a fix to it lands everywhere at once.
type RebuildConfig struct {
	// Old is the crashed (or previously-recovered) store; closed and
	// discarded when non-nil.
	Old *state.Store
	// StateDir, when non-empty, is removed before reopening: a
	// disk-backed engine may hold writes from after the checkpoint whose
	// version metadata died with the process, and recovery trusts only
	// the checkpoint.
	StateDir string
	// Open opens the node's fresh engine.
	Open func() (storage.Engine, error)
	// CkptDir enables checkpoint restore and checkpointer rebinding when
	// non-empty; Interval and Keep configure the rebound checkpointer.
	CkptDir  string
	Interval uint64
	Keep     int
	// MaxCkptHeight bounds the restore (0 = newest): a crash at height c
	// means only checkpoints at or below c exist.
	MaxCkptHeight uint64
}

// RebuildStore rebuilds a crashed node's store from its newest usable
// checkpoint and returns it with a rebound checkpointer (nil when
// checkpointing is off) and the restore half of the recovery stats; the
// caller replays the replicated tail above stats.CheckpointHeight.
func RebuildStore(cfg RebuildConfig) (*state.Store, *Checkpointer, Stats, error) {
	var stats Stats
	if cfg.Old != nil {
		cfg.Old.Close()
	}
	if cfg.StateDir != "" {
		if err := os.RemoveAll(cfg.StateDir); err != nil {
			return nil, nil, stats, fmt.Errorf("recovery: wipe state dir: %w", err)
		}
	}
	eng, err := cfg.Open()
	if err != nil {
		return nil, nil, stats, fmt.Errorf("recovery: reopen engine: %w", err)
	}
	st := state.New(eng, 0)

	start := time.Now()
	var ckpt *Checkpointer
	if cfg.CkptDir != "" {
		stats.CheckpointHeight, stats.CheckpointBytes, err = Restore(st, cfg.CkptDir, cfg.MaxCkptHeight)
		if err != nil {
			st.Close()
			return nil, nil, stats, err
		}
		ckpt, err = NewCheckpointer(st, cfg.CkptDir, cfg.Interval, cfg.Keep)
		if err != nil {
			st.Close()
			return nil, nil, stats, err
		}
	}
	stats.RestoreDuration = time.Since(start)
	return st, ckpt, stats, nil
}
