package recovery

import (
	"fmt"
	"os"
	"time"

	"dichotomy/internal/state"
	"dichotomy/internal/storage"
)

// RebuildConfig describes how to rebuild one crashed node's store. The
// four systems differ only in engine policy and directory layout; the
// sequence itself — close the dead store, wipe the engine directory,
// reopen, restore the checkpoint, rebind a fresh checkpointer — is
// shared, so a fix to it lands everywhere at once.
type RebuildConfig struct {
	// Old is the crashed (or previously-recovered) store; closed and
	// discarded when non-nil.
	Old *state.Store
	// OldCkpt is the crashed store's checkpointer; closed (stopping its
	// worker, if any) and discarded when non-nil.
	OldCkpt *Checkpointer
	// StateDir, when non-empty, is removed before reopening: a
	// disk-backed engine may hold writes from after the checkpoint whose
	// version metadata died with the process, and recovery trusts only
	// the checkpoint.
	StateDir string
	// Open opens the node's fresh engine.
	Open func() (storage.Engine, error)
	// CkptDir enables checkpoint restore and checkpointer rebinding when
	// non-empty; Interval, Keep, Mode, and FullEvery configure the
	// rebound checkpointer.
	CkptDir   string
	Interval  uint64
	Keep      int
	Mode      Mode
	FullEvery int
	// MaxCkptHeight bounds the restore (0 = newest): a crash at height c
	// means only checkpoints at or below c exist.
	MaxCkptHeight uint64
}

// RebuildStore rebuilds a crashed node's store from its newest usable
// checkpoint and returns it with a rebound checkpointer (nil when
// checkpointing is off) and the restore half of the recovery stats; the
// caller replays the replicated tail above stats.CheckpointHeight.
func RebuildStore(cfg RebuildConfig) (*state.Store, *Checkpointer, Stats, error) {
	var stats Stats
	if cfg.OldCkpt != nil {
		cfg.OldCkpt.Close()
	}
	if cfg.Old != nil {
		cfg.Old.Close()
	}
	if cfg.StateDir != "" {
		if err := os.RemoveAll(cfg.StateDir); err != nil {
			return nil, nil, stats, fmt.Errorf("recovery: wipe state dir: %w", err)
		}
	}
	eng, err := cfg.Open()
	if err != nil {
		return nil, nil, stats, fmt.Errorf("recovery: reopen engine: %w", err)
	}
	st := state.New(eng, 0)

	start := time.Now()
	var ckpt *Checkpointer
	if cfg.CkptDir != "" {
		if cfg.Mode == ModeDelta {
			// Enabled before the restore so the restored keys land in the
			// dirty set: the rebound checkpointer's first (chain-seeding)
			// full is built from that set and must cover them.
			st.EnableDirtyTracking()
		}
		stats.CheckpointHeight, stats.CheckpointBytes, err = Restore(st, cfg.CkptDir, cfg.MaxCkptHeight)
		if err != nil {
			st.Close()
			return nil, nil, stats, err
		}
		// The rebound checkpointer starts with no chain base: the restored
		// store's dirty set covers everything the restore applied (restore
		// itself goes through ApplyBlock), so its first delta-mode
		// checkpoint is a chain-seeding full — it never links onto stale
		// pre-crash files above the restored height.
		ckpt, err = NewCheckpointer(st, Options{
			Dir:       cfg.CkptDir,
			Interval:  cfg.Interval,
			Keep:      cfg.Keep,
			Mode:      cfg.Mode,
			FullEvery: cfg.FullEvery,
		})
		if err != nil {
			st.Close()
			return nil, nil, stats, err
		}
	}
	stats.RestoreDuration = time.Since(start)
	return st, ckpt, stats, nil
}
