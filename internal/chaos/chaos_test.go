package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"dichotomy/internal/storage/memdb"
)

// TestScheduleDeterministic is the acceptance criterion in miniature:
// same seed ⇒ same fault schedule, different seed ⇒ (almost surely) a
// different one.
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, 4, 16, time.Second, 5*time.Millisecond, 50*time.Millisecond)
	b := Schedule(42, 4, 16, time.Second, 5*time.Millisecond, 50*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := Schedule(43, 4, 16, time.Second, 5*time.Millisecond, 50*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, ev := range a {
		if ev.At < 0 || ev.At >= time.Second {
			t.Fatalf("event %d outside span: %v", i, ev)
		}
		if ev.Node < 0 || ev.Node >= 4 {
			t.Fatalf("event %d node out of range: %v", i, ev)
		}
		if ev.Down < 5*time.Millisecond || ev.Down > 50*time.Millisecond {
			t.Fatalf("event %d downtime out of range: %v", i, ev)
		}
		if i > 0 && a[i-1].At > ev.At {
			t.Fatalf("schedule not sorted at %d", i)
		}
	}
}

// TestMessageFaultDeterministicStream: two injectors with equal seeds
// make identical decisions for an identical call sequence.
func TestMessageFaultDeterministicStream(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.3, DelayRate: 0.5, MaxDelay: time.Millisecond}
	a, b := MustNew(cfg), MustNew(cfg)
	for i := 0; i < 1000; i++ {
		dropA, delayA := a.MessageFault(1, 2)
		dropB, delayB := b.MessageFault(1, 2)
		if dropA != dropB || delayA != delayB {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, dropA, delayA, dropB, delayB)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if s := a.Stats(); s.Dropped == 0 || s.Delayed == 0 {
		t.Fatalf("rates 0.3/0.5 over 1000 draws injected nothing: %+v", s)
	}
}

func TestMessageFaultZeroConfigInjectsNothing(t *testing.T) {
	in := MustNew(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if drop, delay := in.MessageFault(1, 2); drop || delay != 0 {
			t.Fatalf("zero config injected a fault")
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("zero config counted faults: %+v", s)
	}
}

func TestFlakyEngine(t *testing.T) {
	// Rate 1: every mutation fails, reads and the underlying data are
	// untouched.
	in := MustNew(Config{Seed: 1, WriteFailRate: 1})
	e := in.WrapEngine(memdb.New())
	if err := e.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrWriteFault) {
		t.Fatalf("Put with rate 1: %v", err)
	}
	if err := e.Delete([]byte("k")); !errors.Is(err, ErrWriteFault) {
		t.Fatalf("Delete with rate 1: %v", err)
	}
	if _, err := e.Get([]byte("k")); err == nil {
		t.Fatal("failed Put still landed")
	}
	if in.Stats().WriteFaults != 2 {
		t.Fatalf("fault count: %+v", in.Stats())
	}

	// Rate 0: transparent wrapper.
	in = MustNew(Config{Seed: 1})
	e = in.WrapEngine(memdb.New())
	if err := e.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put with rate 0: %v", err)
	}
	got, err := e.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get: %q %v", got, err)
	}
}

func TestSkewTimeoutBounds(t *testing.T) {
	in := MustNew(Config{Seed: 3, SkewMin: 0.25, SkewMax: 2})
	nominal := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		d := in.SkewTimeout(nominal)
		if d < 25*time.Millisecond || d > 200*time.Millisecond {
			t.Fatalf("skewed timeout %v outside [25ms, 200ms]", d)
		}
	}
	if in.Stats().SkewedTimeouts != 200 {
		t.Fatalf("skew count: %+v", in.Stats())
	}
	// No skew configured: identity.
	if d := MustNew(Config{}).SkewTimeout(nominal); d != nominal {
		t.Fatalf("identity skew changed timeout: %v", d)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DropRate: 1.5},
		{DropRate: -0.1},
		{DelayRate: 0.5},            // no MaxDelay
		{StallRate: 0.5},            // no MaxStall
		{SkewMin: 2, SkewMax: 1},    // inverted
		{SkewMin: -1, SkewMax: 0.5}, // negative
		{WriteFailRate: 2},          // out of range
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should not validate: %+v", i, c)
		}
	}
	if err := (Config{Seed: 9, DropRate: 0.1, DelayRate: 0.1, MaxDelay: time.Millisecond,
		WriteFailRate: 0.1, StallRate: 0.1, MaxStall: time.Millisecond,
		SkewMin: 0.5, SkewMax: 1.5}).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestDisarmStopsInjection(t *testing.T) {
	in := MustNew(Config{Seed: 5, DropRate: 1, WriteFailRate: 1, SkewMin: 0.5, SkewMax: 0.5})
	if drop, _ := in.MessageFault(1, 2); !drop {
		t.Fatal("armed injector at rate 1 did not drop")
	}
	in.Disarm()
	if drop, delay := in.MessageFault(1, 2); drop || delay != 0 {
		t.Fatal("disarmed injector still injecting message faults")
	}
	if err := in.WrapEngine(memdb.New()).Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("disarmed injector still failing writes: %v", err)
	}
	if d := in.SkewTimeout(time.Second); d != time.Second {
		t.Fatalf("disarmed injector still skewing: %v", d)
	}
	if s := in.Stats(); s.Dropped != 1 || s.WriteFaults != 0 || s.SkewedTimeouts != 0 {
		t.Fatalf("post-disarm stats: %+v", s)
	}
}

func TestArmResumesInjection(t *testing.T) {
	in := MustNew(Config{Seed: 5, DropRate: 1})
	in.Disarm()
	if drop, _ := in.MessageFault(1, 2); drop {
		t.Fatal("disarmed injector dropped")
	}
	in.Arm()
	if drop, _ := in.MessageFault(1, 2); !drop {
		t.Fatal("rearmed injector at rate 1 did not drop")
	}
}
