// Package chaos is a deterministic, seeded fault-injection layer. It
// threads through the seams the repo already has rather than inventing
// new ones: message drop/delay at cluster.Endpoint.Send (via
// cluster.FaultHook), engine write failure and slow-fsync stalls via the
// storage-engine hook the systems expose, clock-skewed commit timeouts
// at the ingress watchdog, and scheduled node crashes driven through the
// systems' existing Crash*/Recover* lifecycles.
//
// Determinism contract: the fault *schedule* (Schedule) is a pure
// function of its arguments — equal seeds produce identical crash
// plans. Per-message and per-write draws come from one seeded generator
// guarded by a mutex, so a single-threaded caller sees a reproducible
// decision sequence; under concurrent load the draws are still from the
// seeded stream but their assignment to messages follows runtime
// interleaving, which is the strongest guarantee possible without
// serializing the system under test.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dichotomy/internal/cluster"
)

// ErrWriteFault is returned by a fault-wrapped storage engine in place
// of a successful mutation. Committer paths must surface it as an
// error, never panic (the PR-6 hardening this layer exercises).
var ErrWriteFault = errors.New("chaos: injected write fault")

// Config sets the per-seam fault rates. All rates are probabilities in
// [0, 1]; a zero rate disables that fault class entirely, so the zero
// Config injects nothing.
type Config struct {
	// Seed initializes the draw stream. Equal seeds give equal draw
	// sequences.
	Seed int64

	// DropRate is the probability an endpoint-to-endpoint message is
	// silently dropped (indistinguishable from a lossy link).
	DropRate float64
	// DelayRate is the probability a message gets extra in-flight delay,
	// uniform in (0, MaxDelay]. Because delays are drawn per message,
	// they reorder traffic across endpoint pairs while the transport's
	// per-pair FIFO (which raft and PBFT assume) is preserved.
	DelayRate float64
	// MaxDelay bounds the injected per-message delay.
	MaxDelay time.Duration

	// WriteFailRate is the probability an engine mutation (Put, Delete,
	// ApplyBatch) fails with ErrWriteFault.
	WriteFailRate float64
	// StallRate is the probability an engine mutation stalls — the
	// slow-fsync fault — for a uniform duration in (0, MaxStall].
	StallRate float64
	// MaxStall bounds the injected write stall.
	MaxStall time.Duration

	// SkewMin and SkewMax bound the multiplicative clock skew applied to
	// the ingress commit timeout: each armed watchdog uses a timeout of
	// nominal × uniform[SkewMin, SkewMax]. Both zero disables skew.
	SkewMin float64
	SkewMax float64
}

// Validate rejects configurations the injector cannot honour.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropRate", c.DropRate},
		{"DelayRate", c.DelayRate},
		{"WriteFailRate", c.WriteFailRate},
		{"StallRate", c.StallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.DelayRate > 0 && c.MaxDelay <= 0 {
		return errors.New("chaos: DelayRate set without MaxDelay")
	}
	if c.StallRate > 0 && c.MaxStall <= 0 {
		return errors.New("chaos: StallRate set without MaxStall")
	}
	if c.SkewMin < 0 || c.SkewMax < c.SkewMin {
		return errors.New("chaos: need 0 <= SkewMin <= SkewMax")
	}
	return nil
}

// Stats attributes every injected fault by class, so experiment reports
// can separate chaos-caused sheds and errors from organic ones.
type Stats struct {
	Dropped        uint64
	Delayed        uint64
	WriteFaults    uint64
	WriteStalls    uint64
	SkewedTimeouts uint64
}

// Injector draws faults from one seeded stream and counts what it
// injected. Safe for concurrent use.
type Injector struct {
	cfg      Config
	disarmed atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand

	dropped     atomic.Uint64
	delayed     atomic.Uint64
	writeFaults atomic.Uint64
	writeStalls atomic.Uint64
	skewed      atomic.Uint64
}

// New builds an injector; the config must be valid.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// MustNew is New for static configs in tests and experiments.
func MustNew(cfg Config) *Injector {
	in, err := New(cfg)
	if err != nil {
		//lint:allow nopanic static-config constructor, a bad literal is a construction-time bug
		panic(err)
	}
	return in
}

// draw2 returns two uniform [0,1) samples from the seeded stream in one
// critical section, so a fault decision consumes a fixed draw count.
func (in *Injector) draw2() (float64, float64) {
	in.mu.Lock()
	a, b := in.rng.Float64(), in.rng.Float64()
	in.mu.Unlock()
	return a, b
}

// Disarm turns every fault class off: subsequent decisions are identity
// pass-throughs and stop consuming draws. Experiments disarm around the
// phases that must run clean — preload before measurement, and the
// post-fault convergence check after it — so injected faults land only
// on measured traffic.
func (in *Injector) Disarm() { in.disarmed.Store(true) }

// Arm undoes Disarm, resuming injection from the seeded stream where it
// left off.
func (in *Injector) Arm() { in.disarmed.Store(false) }

// MessageFault is a cluster.FaultHook: it decides whether to drop the
// message and how much extra in-flight delay to add.
func (in *Injector) MessageFault(from, to cluster.NodeID) (bool, time.Duration) {
	if in == nil || in.disarmed.Load() || (in.cfg.DropRate <= 0 && in.cfg.DelayRate <= 0) {
		return false, 0
	}
	d1, d2 := in.draw2()
	if in.cfg.DropRate > 0 && d1 < in.cfg.DropRate {
		in.dropped.Add(1)
		return true, 0
	}
	if in.cfg.DelayRate > 0 && d2 < in.cfg.DelayRate {
		in.delayed.Add(1)
		in.mu.Lock()
		extra := time.Duration(1 + in.rng.Int63n(int64(in.cfg.MaxDelay)))
		in.mu.Unlock()
		return false, extra
	}
	return false, 0
}

// SkewTimeout is the ingress watchdog hook: it maps the nominal commit
// timeout to the skewed one this batch's clock would have used.
func (in *Injector) SkewTimeout(nominal time.Duration) time.Duration {
	if in == nil || in.disarmed.Load() || in.cfg.SkewMax <= 0 {
		return nominal
	}
	in.mu.Lock()
	f := in.cfg.SkewMin + in.rng.Float64()*(in.cfg.SkewMax-in.cfg.SkewMin)
	in.mu.Unlock()
	in.skewed.Add(1)
	skewed := time.Duration(float64(nominal) * f)
	if skewed <= 0 {
		skewed = time.Nanosecond
	}
	return skewed
}

// Stats snapshots the per-class injection counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Dropped:        in.dropped.Load(),
		Delayed:        in.delayed.Load(),
		WriteFaults:    in.writeFaults.Load(),
		WriteStalls:    in.writeStalls.Load(),
		SkewedTimeouts: in.skewed.Load(),
	}
}

// Event is one scheduled lifecycle fault: crash Node at offset At from
// the run start and recover it Down later. Events may overlap on the
// same node; runners skip a crash aimed at a node that is already down.
type Event struct {
	At   time.Duration
	Node int
	Down time.Duration
}

// Schedule derives a deterministic crash/recover plan: a pure function
// of its arguments, so equal seeds give byte-identical schedules. The
// returned events are sorted by At.
func Schedule(seed int64, nodes, events int, span, minDown, maxDown time.Duration) []Event {
	if nodes <= 0 || events <= 0 || span <= 0 {
		return nil
	}
	if minDown <= 0 {
		minDown = time.Millisecond
	}
	if maxDown < minDown {
		maxDown = minDown
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Event, events)
	for i := range out {
		down := minDown
		if spread := int64(maxDown - minDown); spread > 0 {
			down += time.Duration(rng.Int63n(spread + 1))
		}
		out[i] = Event{
			At:   time.Duration(rng.Int63n(int64(span))),
			Node: rng.Intn(nodes),
			Down: down,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
