package chaos

import (
	"time"

	"dichotomy/internal/storage"
)

// flakyEngine injects write failures and slow-fsync stalls in front of a
// real engine. Reads pass through untouched: the fault model is a disk
// whose write path degrades (full, throttled, dying), which is the
// failure mode that matters for commit durability.
type flakyEngine struct {
	storage.Engine
	in *Injector
}

// WrapEngine returns e with this injector's write faults in front of it.
// It is shaped for the systems' engine-hook seam:
//
//	cfg.EngineHook = inj.WrapEngine
func (in *Injector) WrapEngine(e storage.Engine) storage.Engine {
	return &flakyEngine{Engine: e, in: in}
}

// writeFault performs at most one stall and one failure decision for a
// mutation. The stall happens even when the write then fails — a dying
// disk is usually slow before it errors.
func (in *Injector) writeFault() error {
	if in == nil || in.disarmed.Load() || (in.cfg.WriteFailRate <= 0 && in.cfg.StallRate <= 0) {
		return nil
	}
	d1, d2 := in.draw2()
	if in.cfg.StallRate > 0 && d2 < in.cfg.StallRate {
		in.mu.Lock()
		stall := time.Duration(1 + in.rng.Int63n(int64(in.cfg.MaxStall)))
		in.mu.Unlock()
		in.writeStalls.Add(1)
		//lint:allow sleepyloop the injected fsync stall IS the fault being modeled
		time.Sleep(stall)
	}
	if in.cfg.WriteFailRate > 0 && d1 < in.cfg.WriteFailRate {
		in.writeFaults.Add(1)
		return ErrWriteFault
	}
	return nil
}

func (f *flakyEngine) Put(key, value []byte) error {
	if err := f.in.writeFault(); err != nil {
		return err
	}
	return f.Engine.Put(key, value)
}

func (f *flakyEngine) Delete(key []byte) error {
	if err := f.in.writeFault(); err != nil {
		return err
	}
	return f.Engine.Delete(key)
}

// ApplyBatch keeps the wrapped engine's atomic-batch capability visible
// through the wrapper: one fault decision gates the whole batch, so an
// injected failure never tears it.
func (f *flakyEngine) ApplyBatch(writes []storage.Write) error {
	if err := f.in.writeFault(); err != nil {
		return err
	}
	return storage.ApplyWrites(f.Engine, writes)
}
