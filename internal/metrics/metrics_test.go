package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 16000 {
		t.Fatalf("Load = %d, want 16000", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	mean := h.Mean()
	if mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Fatalf("Mean = %v, want ~50ms", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("P50 = %v, want ~50ms", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 85*time.Millisecond || p99 > 115*time.Millisecond {
		t.Fatalf("P99 = %v, want ~99ms", p99)
	}
	if h.Max() < 95*time.Millisecond {
		t.Fatalf("Max = %v, want ≥ 95ms", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramZeroDuration(t *testing.T) {
	var h Histogram
	h.Record(0)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
}

func TestHistogramRelativeError(t *testing.T) {
	var h Histogram
	exact := 123456 * time.Microsecond
	h.Record(exact)
	got := h.Percentile(100)
	lo := exact - exact/10
	hi := exact + exact/10
	if got < lo || got > hi {
		t.Fatalf("P100 = %v, want within 10%% of %v", got, exact)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d, want 4000", h.Count())
	}
}

func TestSnapshot(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Max < 9*time.Millisecond {
		t.Fatalf("unexpected snapshot %+v", s)
	}
}

func TestTracePhases(t *testing.T) {
	tr := NewTrace()
	tr.Observe(PhaseExecute, 5*time.Millisecond)
	tr.Observe(PhaseExecute, 5*time.Millisecond)
	tr.Observe(PhaseCommit, 2*time.Millisecond)
	d := tr.Durations()
	if d[PhaseExecute] != 10*time.Millisecond {
		t.Fatalf("execute = %v, want 10ms", d[PhaseExecute])
	}
	if d[PhaseCommit] != 2*time.Millisecond {
		t.Fatalf("commit = %v, want 2ms", d[PhaseCommit])
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Observe(PhaseCommit, time.Millisecond) // must not panic
	if tr.Durations() != nil {
		t.Fatal("nil trace should report nil durations")
	}
}

func TestTraceTime(t *testing.T) {
	tr := NewTrace()
	tr.Time(PhaseOrder, func() { time.Sleep(2 * time.Millisecond) })
	if tr.Durations()[PhaseOrder] < time.Millisecond {
		t.Fatal("Time did not record elapsed duration")
	}
}

func TestBreakdownMergeAndMean(t *testing.T) {
	b := NewBreakdown()
	t1 := NewTrace()
	t1.Observe(PhaseValidate, 10*time.Millisecond)
	t2 := NewTrace()
	t2.Observe(PhaseValidate, 20*time.Millisecond)
	b.Merge(t1)
	b.Merge(t2)
	b.Merge(nil)
	if got := b.Mean(PhaseValidate); got != 15*time.Millisecond {
		t.Fatalf("Mean = %v, want 15ms", got)
	}
	if b.Mean("unseen") != 0 {
		t.Fatal("unseen phase should have zero mean")
	}
}

func TestBreakdownPhasesSorted(t *testing.T) {
	b := NewBreakdown()
	b.Observe("zeta", time.Millisecond)
	b.Observe("alpha", time.Millisecond)
	phases := b.Phases()
	if len(phases) != 2 || phases[0] != "alpha" || phases[1] != "zeta" {
		t.Fatalf("Phases = %v, want [alpha zeta]", phases)
	}
	if b.String() == "" {
		t.Fatal("String should render something")
	}
}

func TestLocalHistogramMatchesHistogram(t *testing.T) {
	var atomic Histogram
	var local LocalHistogram
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i*i) * time.Microsecond
		atomic.Record(d)
		local.Record(d)
	}
	want, got := atomic.Snapshot(), local.Snapshot()
	if want != got {
		t.Fatalf("snapshots diverge: atomic %+v, local %+v", want, got)
	}
}

func TestLocalHistogramMerge(t *testing.T) {
	var whole LocalHistogram
	parts := make([]LocalHistogram, 4)
	for i := 1; i <= 400; i++ {
		d := time.Duration(i) * time.Millisecond
		whole.Record(d)
		parts[i%len(parts)].Record(d)
	}
	var merged LocalHistogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	merged.Merge(nil)
	if whole.Snapshot() != merged.Snapshot() {
		t.Fatalf("merge diverges: whole %+v, merged %+v", whole.Snapshot(), merged.Snapshot())
	}
}

func TestLocalHistogramEmpty(t *testing.T) {
	var h LocalHistogram
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty local histogram should report zeros")
	}
}

func TestBreakdownMergeFrom(t *testing.T) {
	a, b := NewBreakdown(), NewBreakdown()
	a.Observe(PhaseCommit, 10*time.Millisecond)
	b.Observe(PhaseCommit, 20*time.Millisecond)
	b.Observe(PhaseOrder, 4*time.Millisecond)
	a.MergeFrom(b)
	a.MergeFrom(nil)
	a.MergeFrom(a) // self-merge must be a no-op, not a deadlock
	if got := a.Mean(PhaseCommit); got != 15*time.Millisecond {
		t.Fatalf("commit mean = %v, want 15ms", got)
	}
	if got := a.Mean(PhaseOrder); got != 4*time.Millisecond {
		t.Fatalf("order mean = %v, want 4ms", got)
	}
}

func TestBucketValueMonotone(t *testing.T) {
	prev := time.Duration(-1)
	for i := 0; i < 64*16; i++ {
		v := bucketValue(i)
		if v < prev {
			t.Fatalf("bucketValue(%d) = %v < previous %v", i, v, prev)
		}
		prev = v
	}
}
