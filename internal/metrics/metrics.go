// Package metrics provides the measurement plumbing for the benchmark
// harness: lock-free counters, latency histograms with percentile queries,
// and per-transaction phase traces used to regenerate the paper's latency
// breakdown figures (Fig 8, Fig 11).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for concurrent
// use. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Histogram records durations in exponentially sized buckets spanning
// 1µs..~1h and supports approximate percentile queries. It is a simplified
// HDR histogram: 64 major buckets (powers of two of microseconds), each
// split into 16 linear sub-buckets, bounding relative error at ~6%.
// The zero value is ready to use and safe for concurrent Record calls.
//
// Histogram is the shared-writer variant, for recorders that cannot be
// given private state (live monitoring of a long-running component).
// Hot paths that can shard per worker should prefer LocalHistogram and
// merge once at the end — the benchmark harness does exactly that. The
// two implement the same bucket scheme and their snapshots are
// interchangeable (asserted by tests).
type Histogram struct {
	buckets [64 * 16]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // microseconds
	maxUS   atomic.Uint64
}

// bucketIndex maps a microsecond value to a histogram slot. Values below
// 16µs get exact linear buckets 0..15; above that, each power-of-two range
// is split into 16 linear sub-buckets, bounding relative error at 1/16.
func bucketIndex(us uint64) int {
	if us < 16 {
		return int(us)
	}
	major := bits.Len64(us) - 1 // ≥ 4
	sub := (us >> (uint(major) - 4)) - 16
	idx := (major-3)*16 + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

const numBuckets = 64 * 16

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Percentile returns the approximate p-th percentile (0 < p ≤ 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	return percentileOver(h.count.Load(), p, func(i int) uint64 { return h.buckets[i].Load() }, h.Max())
}

// percentileOver walks buckets (indexed by the shared bucketIndex scheme)
// until the rank for percentile p is reached; max is returned when the
// rank falls past the last bucket.
func percentileOver(total uint64, p float64, bucket func(int) uint64, max time.Duration) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += bucket(i)
		if seen >= rank {
			return bucketValue(i)
		}
	}
	return max
}

// bucketValue is the inverse of bucketIndex: the lower bound of slot idx.
func bucketValue(idx int) time.Duration {
	if idx < 16 {
		return time.Duration(idx) * time.Microsecond
	}
	group := idx/16 - 1 // 0-based group above the linear range
	sub := uint64(idx % 16)
	us := (16 + sub) << uint(group)
	if group > 38 || us > math.MaxInt64/uint64(time.Microsecond) {
		return math.MaxInt64 // beyond representable durations; clamp
	}
	return time.Duration(us) * time.Microsecond
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count          uint64
	Mean, P50, P99 time.Duration
	Max            time.Duration
}

// Snapshot returns the current summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// LocalHistogram is the unsynchronized counterpart of Histogram for
// single-goroutine accumulation: same bucket scheme and error bound, plain
// uint64 slots instead of atomics. The benchmark harness gives each worker
// one LocalHistogram and merges them after the run, keeping the record
// path free of cross-core cache traffic. The zero value is ready to use.
type LocalHistogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64 // microseconds
	maxUS   uint64
}

// Record adds one observation.
func (h *LocalHistogram) Record(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.buckets[bucketIndex(us)]++
	h.count++
	h.sum += us
	if us > h.maxUS {
		h.maxUS = us
	}
}

// Merge folds o into h. Neither histogram may be concurrently mutated.
func (h *LocalHistogram) Merge(o *LocalHistogram) {
	if o == nil {
		return
	}
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.maxUS > h.maxUS {
		h.maxUS = o.maxUS
	}
}

// Count returns the number of observations.
func (h *LocalHistogram) Count() uint64 { return h.count }

// Mean returns the average observation.
func (h *LocalHistogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum/h.count) * time.Microsecond
}

// Max returns the largest observation.
func (h *LocalHistogram) Max() time.Duration {
	return time.Duration(h.maxUS) * time.Microsecond
}

// Percentile returns the approximate p-th percentile (0 < p ≤ 100).
func (h *LocalHistogram) Percentile(p float64) time.Duration {
	return percentileOver(h.count, p, func(i int) uint64 { return h.buckets[i] }, h.Max())
}

// Snapshot returns the current summary.
func (h *LocalHistogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// Phase names shared across the systems so breakdown reports line up with
// the paper's terminology.
const (
	PhaseProposal  = "proposal"
	PhaseExecute   = "execute"
	PhaseOrder     = "order"
	PhaseValidate  = "validate"
	PhaseCommit    = "commit"
	PhaseConsensus = "consensus"
	PhaseAuth      = "auth"
	PhaseSimulate  = "simulate"
	PhaseEndorse   = "endorse"
	PhaseSQLParse  = "sql-parse"
	PhaseSQLPlan   = "sql-compile"
	PhaseStorage   = "storage-get"
)

// Trace records named phase durations for one transaction. A Trace is owned
// by a single transaction and is not safe for concurrent mutation; systems
// hand it from stage to stage along with the transaction.
type Trace struct {
	mu     sync.Mutex
	phases []phaseSpan
}

type phaseSpan struct {
	name string
	d    time.Duration
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Observe adds a completed phase duration.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phases = append(t.phases, phaseSpan{name, d})
	t.mu.Unlock()
}

// Time runs fn and records its duration under name.
func (t *Trace) Time(name string, fn func()) {
	start := time.Now()
	fn()
	t.Observe(name, time.Since(start))
}

// Durations returns the accumulated duration per phase name.
func (t *Trace) Durations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.phases))
	for _, p := range t.phases {
		out[p.name] += p.d
	}
	return out
}

// Breakdown aggregates phase durations across many transactions. Safe for
// concurrent use.
type Breakdown struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]uint64
}

// NewBreakdown returns an empty aggregate.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		totals: make(map[string]time.Duration),
		counts: make(map[string]uint64),
	}
}

// Merge folds one transaction's trace into the aggregate.
func (b *Breakdown) Merge(t *Trace) {
	if t == nil {
		return
	}
	for name, d := range t.Durations() {
		b.mu.Lock()
		b.totals[name] += d
		b.counts[name]++
		b.mu.Unlock()
	}
}

// MergeFrom folds another aggregate into b. Used by the benchmark
// harness to combine per-worker breakdowns after a run. The source is
// snapshotted before b locks, so the two mutexes are never held together
// (no lock-order inversion between concurrent cross-merges, and
// b.MergeFrom(b) is a no-op rather than a self-deadlock).
func (b *Breakdown) MergeFrom(o *Breakdown) {
	if o == nil || o == b {
		return
	}
	o.mu.Lock()
	totals := make(map[string]time.Duration, len(o.totals))
	counts := make(map[string]uint64, len(o.counts))
	for name, d := range o.totals {
		totals[name] = d
	}
	for name, n := range o.counts {
		counts[name] = n
	}
	o.mu.Unlock()

	b.mu.Lock()
	defer b.mu.Unlock()
	for name, d := range totals {
		b.totals[name] += d
	}
	for name, n := range counts {
		b.counts[name] += n
	}
}

// Observe adds a single phase measurement directly.
func (b *Breakdown) Observe(name string, d time.Duration) {
	b.mu.Lock()
	b.totals[name] += d
	b.counts[name]++
	b.mu.Unlock()
}

// Mean returns the mean duration of the named phase, or zero if unseen.
func (b *Breakdown) Mean(name string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.counts[name]
	if n == 0 {
		return 0
	}
	return b.totals[name] / time.Duration(n)
}

// Phases returns the phase names seen, sorted.
func (b *Breakdown) Phases() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.totals))
	for name := range b.totals {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders the breakdown as "phase=mean" pairs sorted by name.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, name := range b.Phases() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", name, b.Mean(name))
	}
	return sb.String()
}
