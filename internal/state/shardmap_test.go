package state

import (
	"fmt"
	"sync"
	"testing"
)

func TestMapShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {32, 32}, {33, 64},
	} {
		if got := NewMap[int](tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewMap(%d).ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestMapBasics(t *testing.T) {
	m := NewMap[string](8)
	m.Set("a", "1")
	m.Set("b", "2")
	if v, ok := m.Get("a"); !ok || v != "1" {
		t.Fatalf("Get a = %q %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("a survived delete")
	}
	seen := map[string]string{}
	m.Range(func(k, v string) bool { seen[k] = v; return true })
	if len(seen) != 1 || seen["b"] != "2" {
		t.Fatalf("Range saw %v", seen)
	}
}

func TestMapUpdateSemantics(t *testing.T) {
	m := NewMap[int](4)
	// Insert through Update.
	m.Update("k", func(v int, ok bool) (int, bool) {
		if ok {
			t.Fatal("phantom entry")
		}
		return 7, true
	})
	// Transform.
	m.Update("k", func(v int, ok bool) (int, bool) { return v + 1, true })
	if v, _ := m.Get("k"); v != 8 {
		t.Fatalf("k = %d", v)
	}
	// Returning keep=false deletes.
	m.Update("k", func(v int, ok bool) (int, bool) { return 0, false })
	if _, ok := m.Get("k"); ok {
		t.Fatal("k survived delete-update")
	}
	// Delete-update of an absent key is a no-op.
	m.Update("ghost", func(v int, ok bool) (int, bool) { return 0, false })
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapShardRouting(t *testing.T) {
	m := NewMap[int](8)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		idx := m.ShardOf(k)
		if idx < 0 || idx >= m.ShardCount() {
			t.Fatalf("ShardOf(%q) = %d out of range", k, idx)
		}
		if again := m.ShardOf(k); again != idx {
			t.Fatalf("ShardOf(%q) unstable: %d then %d", k, idx, again)
		}
	}
	// The stripes should all see traffic for a non-adversarial key set.
	used := map[int]bool{}
	for i := 0; i < 1000; i++ {
		used[m.ShardOf(fmt.Sprintf("key-%d", i))] = true
	}
	if len(used) != m.ShardCount() {
		t.Fatalf("only %d/%d stripes used", len(used), m.ShardCount())
	}
}

func TestMapConcurrentCounters(t *testing.T) {
	m := NewMap[int](16)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("ctr-%d", i%10)
				m.Update(k, func(v int, ok bool) (int, bool) { return v + 1, true })
			}
		}(w)
	}
	wg.Wait()
	total := 0
	m.Range(func(_ string, v int) bool { total += v; return true })
	if total != workers*iters {
		t.Fatalf("lost updates: total = %d, want %d", total, workers*iters)
	}
}
