// Package state is the shared versioned-state layer every modelled system
// commits through: a lock-striped concurrent map of per-key version
// metadata (txn.Version) layered over any storage.Engine. Before this
// layer existed each system guarded its engine plus a private
// map[string]txn.Version behind one global mutex, so concurrent load
// measured lock convoys instead of the paper's design dichotomy. The
// striping here hash-partitions keys across N shards, each with its own
// RWMutex, so point reads and per-key version CAS on different keys never
// contend; block-boundary-consistent snapshots (for simulation and
// endorsement) and block commits coordinate through Store's commit gate —
// one shared acquisition per snapshot, one exclusive per block.
package state

import (
	"sync"
)

// DefaultShards is the stripe count used when the caller passes zero; it
// comfortably exceeds the worker counts the experiments sweep.
const DefaultShards = 32

// Map is a lock-striped hash map from string keys to V. Every operation
// locks only the shard owning its key, so operations on keys in different
// shards never contend. The zero value is not usable; call NewMap.
type Map[V any] struct {
	shards []mapShard[V]
	mask   uint32
}

// mapShard pads each stripe to its own cache line so shard locks on
// adjacent stripes do not false-share.
type mapShard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
	_  [32]byte
}

// NewMap returns a striped map with the given shard count, rounded up to
// a power of two; n ≤ 0 selects DefaultShards. A single shard degenerates
// to one global lock — the baseline BenchmarkStateScaling compares
// against.
func NewMap[V any](n int) *Map[V] {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	m := &Map[V]{shards: make([]mapShard[V], size), mask: uint32(size - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[string]V) //lint:allow gatediscipline construction, the map is not yet shared
	}
	return m
}

// ShardCount returns the number of stripes.
func (m *Map[V]) ShardCount() int { return len(m.shards) }

// ShardOf returns the index of the stripe owning key (FNV-1a).
func (m *Map[V]) ShardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & m.mask)
}

// Get returns the value stored under key.
func (m *Map[V]) Get(key string) (V, bool) {
	sh := &m.shards[m.ShardOf(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

// View runs fn with the key's current value under the shard read lock.
// fn must not call back into the map (the shard lock is held).
func (m *Map[V]) View(key string, fn func(v V, ok bool)) {
	sh := &m.shards[m.ShardOf(key)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[key]
	fn(v, ok)
}

// Set stores v under key.
func (m *Map[V]) Set(key string, v V) {
	sh := &m.shards[m.ShardOf(key)]
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
}

// Delete removes key.
func (m *Map[V]) Delete(key string) {
	sh := &m.shards[m.ShardOf(key)]
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Update atomically transforms the entry for key: fn receives the current
// value (zero value if absent) and returns the new value plus whether to
// keep it — false deletes the entry. The shard write lock is held across
// fn, which is what gives multi-field per-key operations (version CAS,
// Percolator lock checks) their atomicity. fn must not call back into the
// map.
func (m *Map[V]) Update(key string, fn func(v V, ok bool) (V, bool)) {
	sh := &m.shards[m.ShardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[key]
	next, keep := fn(v, ok)
	if keep {
		sh.m[key] = next
	} else if ok {
		delete(sh.m, key)
	}
}

// Range calls fn for every entry until fn returns false. Each shard is
// visited under its read lock; entries added or removed concurrently in
// other shards may or may not be observed. fn must not call back into the
// map.
func (m *Map[V]) Range(fn func(key string, v V) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Len returns the number of entries.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// lockShards acquires the write locks of the listed shards, which must
// be sorted ascending and deduplicated; unlockShards releases them.
// Holding all of a block's stripes at once keeps point readers from
// observing a torn block commit. Concurrent multi-lock callers must be
// externally serialized (the Store's commit gate does this).
func (m *Map[V]) lockShards(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Lock()
	}
}

// unlockShards releases the locks taken by lockShards.
func (m *Map[V]) unlockShards(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Unlock()
	}
}

// shardMap returns a shard's backing map; the caller must hold that
// shard's write lock (via lockShards).
func (m *Map[V]) shardMap(shard int) map[string]V { return m.shards[shard].m }
