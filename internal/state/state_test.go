package state

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dichotomy/internal/contract"
	"dichotomy/internal/storage"
	"dichotomy/internal/storage/memdb"
	"dichotomy/internal/txn"
)

func put(k, v string) txn.Write { return txn.Write{Key: k, Value: []byte(v)} }

func ver(block uint64, tx uint32) txn.Version { return txn.Version{BlockNum: block, TxNum: tx} }

func TestStoreApplyBlockAndGet(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	if err := s.ApplyBlock([]VersionedWrite{
		{Write: put("a", "1"), Version: ver(1, 0)},
		{Write: put("b", "2"), Version: ver(1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	v, vv, err := s.Get("a")
	if err != nil || string(v) != "1" || vv != ver(1, 0) {
		t.Fatalf("Get a = %q %v %v", v, vv, err)
	}
	// Overwrite and delete in one block; later writes of a key win.
	if err := s.ApplyBlock([]VersionedWrite{
		{Write: put("a", "old"), Version: ver(2, 0)},
		{Write: put("a", "new"), Version: ver(2, 1)},
		{Write: txn.Write{Key: "b"}, Version: ver(2, 2)},
	}); err != nil {
		t.Fatal(err)
	}
	v, vv, _ = s.Get("a")
	if string(v) != "new" || vv != ver(2, 1) {
		t.Fatalf("a = %q %v after overwrite", v, vv)
	}
	if _, _, err := s.Get("b"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("deleted b: err = %v", err)
	}
	if _, ok := s.CommittedVersion("b"); ok {
		t.Fatal("deleted b retains a version")
	}
	if _, _, err := s.GetState("b"); !errors.Is(err, contract.ErrNotFound) {
		t.Fatalf("GetState of absent key: %v", err)
	}
}

func TestCompareAndSetVersion(t *testing.T) {
	s := New(memdb.New(), 4)
	defer s.Close()
	// Zero expect matches an absent key.
	if !s.CompareAndSetVersion("k", txn.Version{}, ver(1, 0)) {
		t.Fatal("CAS from absent failed")
	}
	if s.CompareAndSetVersion("k", txn.Version{}, ver(9, 9)) {
		t.Fatal("stale CAS succeeded")
	}
	if !s.CompareAndSetVersion("k", ver(1, 0), ver(2, 0)) {
		t.Fatal("CAS from current failed")
	}
	// Zero next deletes the entry.
	if !s.CompareAndSetVersion("k", ver(2, 0), txn.Version{}) {
		t.Fatal("CAS delete failed")
	}
	if _, ok := s.CommittedVersion("k"); ok {
		t.Fatal("entry survived CAS delete")
	}
}

// TestSnapshotExcludesBlockCommit pins a snapshot, lets a block commit
// race against it, and checks the snapshot never observes any part of the
// block.
func TestSnapshotExcludesBlockCommit(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	const n = 64
	var block []VersionedWrite
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := s.ApplyBlock([]VersionedWrite{{Write: put(k, "old"), Version: ver(1, uint32(i))}}); err != nil {
			t.Fatal(err)
		}
		block = append(block, VersionedWrite{Write: put(k, "new"), Version: ver(2, uint32(i))})
	}
	snap := s.Snapshot()
	committed := make(chan error, 1)
	go func() { committed <- s.ApplyBlock(block) }()
	for i := 0; i < n; i++ {
		v, vv, err := snap.Get(fmt.Sprintf("k%02d", i))
		if err != nil || string(v) != "old" || vv.BlockNum != 1 {
			t.Errorf("snapshot saw k%02d = %q %v %v mid-commit", i, v, vv, err)
		}
	}
	snap.Release()
	if err := <-committed; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, _, _ := s.Get(fmt.Sprintf("k%02d", i)); string(v) != "new" {
			t.Fatalf("k%02d = %q after release", i, v)
		}
	}
}

func TestBlockReadYourWrites(t *testing.T) {
	s := New(memdb.New(), 4)
	defer s.Close()
	if err := s.ApplyBlock([]VersionedWrite{{Write: put("x", "base"), Version: ver(1, 0)}}); err != nil {
		t.Fatal(err)
	}
	b := s.NewBlock()
	b.Stage(put("x", "staged"), ver(2, 0))
	b.Stage(txn.Write{Key: "y"}, ver(2, 1)) // staged delete of an absent key
	if v, vv, err := b.GetState("x"); err != nil || string(v) != "staged" || vv != ver(2, 0) {
		t.Fatalf("block read x = %q %v %v", v, vv, err)
	}
	if _, _, err := b.GetState("y"); !errors.Is(err, contract.ErrNotFound) {
		t.Fatalf("staged delete visible: %v", err)
	}
	if _, ok := b.CommittedVersion("y"); ok {
		t.Fatal("staged delete has a version")
	}
	// The store is untouched until Commit.
	if v, _, _ := s.Get("x"); string(v) != "base" {
		t.Fatalf("store saw staged write: %q", v)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get("x"); string(v) != "staged" {
		t.Fatalf("x = %q after commit", v)
	}
	if b.Pending() != 0 {
		t.Fatalf("block not reset: %d pending", b.Pending())
	}
}

// batchCountingEngine wraps memdb and counts ApplyBatch calls, verifying
// the block-commit path uses the engine's batch fast path per stripe.
type batchCountingEngine struct {
	*memdb.DB
	mu      sync.Mutex
	batches int
}

func (e *batchCountingEngine) ApplyBatch(writes []storage.Write) error {
	e.mu.Lock()
	e.batches++
	e.mu.Unlock()
	return e.DB.ApplyBatch(writes)
}

func TestApplyBlockGroupsPerStripe(t *testing.T) {
	eng := &batchCountingEngine{DB: memdb.New()}
	s := New(eng, 8)
	defer s.Close()
	var block []VersionedWrite
	stripes := map[int]bool{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%d", i)
		block = append(block, VersionedWrite{Write: put(k, "v"), Version: ver(1, uint32(i))})
		stripes[s.versions.ShardOf(k)] = true
	}
	if err := s.ApplyBlock(block); err != nil {
		t.Fatal(err)
	}
	if eng.batches != len(stripes) {
		t.Fatalf("ApplyBatch called %d times, want one per touched stripe (%d)", eng.batches, len(stripes))
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestConcurrentMixedOps drives reads, CAS, snapshots and block commits
// from many goroutines; run under -race this is the layer's thread-safety
// proof.
func TestConcurrentMixedOps(t *testing.T) {
	s := New(memdb.New(), 16)
	defer s.Close()
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
		if err := s.ApplyBlock([]VersionedWrite{{Write: put(keys[i], "0"), Version: ver(1, uint32(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := keys[(w*131+i)%len(keys)]
				switch i % 4 {
				case 0:
					if _, _, err := s.Get(k); err != nil && !errors.Is(err, storage.ErrNotFound) {
						t.Errorf("get %s: %v", k, err)
					}
				case 1:
					cur, _ := s.CommittedVersion(k)
					s.CompareAndSetVersion(k, cur, ver(uint64(w+2), uint32(i)))
				case 2:
					snap := s.Snapshot()
					_, _, _ = snap.Get(k)
					snap.Release()
				default:
					if err := s.ApplyBlock([]VersionedWrite{{Write: put(k, "w"), Version: ver(uint64(w+2), uint32(i))}}); err != nil {
						t.Errorf("apply %s: %v", k, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
}

func TestDumpYieldsValuesAndVersions(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	if err := s.ApplyBlock([]VersionedWrite{
		{Write: put("a", "1"), Version: ver(3, 0)},
		{Write: put("b", "2"), Version: ver(3, 1)},
		{Write: put("c", "3"), Version: ver(4, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	s.Dump(func(key string, value []byte, v txn.Version) bool {
		got[key] = fmt.Sprintf("%s@%d.%d", value, v.BlockNum, v.TxNum)
		return true
	})
	want := map[string]string{"a": "1@3.0", "b": "2@3.1", "c": "3@4.0"}
	if len(got) != len(want) {
		t.Fatalf("Dump yielded %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Dump[%s] = %s, want %s", k, got[k], v)
		}
	}
	// Early stop is honoured.
	n := 0
	s.Dump(func(string, []byte, txn.Version) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Dump visited %d keys", n)
	}
}

func TestDumpExcludesBlockCommits(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	if err := s.ApplyBlock([]VersionedWrite{
		{Write: put("k0", "x"), Version: ver(1, 0)},
		{Write: put("k1", "x"), Version: ver(1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	// A block commit racing the dump must not tear it: every dumped
	// version belongs to the same block boundary (all old or all new).
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.ApplyBlock([]VersionedWrite{
			{Write: put("k0", "y"), Version: ver(2, 0)},
			{Write: put("k1", "y"), Version: ver(2, 1)},
		})
	}()
	for i := 0; i < 50; i++ {
		blocks := make(map[uint64]bool)
		s.Dump(func(_ string, _ []byte, v txn.Version) bool {
			blocks[v.BlockNum] = true
			return true
		})
		if len(blocks) > 1 {
			t.Fatalf("torn dump: saw versions from blocks %v", blocks)
		}
	}
	<-done
}

func TestDirtyTrackingOffByDefault(t *testing.T) {
	// Stores without a delta checkpointer never enable tracking; the
	// commit path must not accumulate (or pay for) a dirty set.
	s := New(memdb.New(), 8)
	defer s.Close()
	if err := s.ApplyBlock([]VersionedWrite{{Write: put("a", "1"), Version: ver(1, 0)}}); err != nil {
		t.Fatal(err)
	}
	if st := s.DirtyStats(); st.Keys != 0 || st.ApproxBytes != 0 {
		t.Fatalf("untracked store accumulated dirty state: %+v", st)
	}
}

func TestDirtyTrackingFollowsBlockWrites(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	s.EnableDirtyTracking()
	if st := s.DirtyStats(); st.Keys != 0 || st.ApproxBytes != 0 {
		t.Fatalf("fresh store dirty stats = %+v", st)
	}
	if err := s.ApplyBlock([]VersionedWrite{
		{Write: put("a", "1"), Version: ver(1, 0)},
		{Write: put("b", "2"), Version: ver(1, 1)},
		{Write: put("a", "3"), Version: ver(1, 2)}, // rewrite: same key, one dirty entry
	}); err != nil {
		t.Fatal(err)
	}
	st := s.DirtyStats()
	if st.Keys != 2 {
		t.Fatalf("dirty keys = %d, want 2", st.Keys)
	}
	if st.ApproxBytes <= 0 {
		t.Fatalf("dirty bytes = %d", st.ApproxBytes)
	}

	got := make(map[string]string)
	s.DumpDirty(func(key string, value []byte, v txn.Version, live bool) bool {
		if !live {
			t.Fatalf("key %s reported dead", key)
		}
		got[key] = string(value) + "@" + fmt.Sprint(v.TxNum)
		return true
	})
	// DumpDirty reads the committed state: the rewrite of a wins.
	if len(got) != 2 || got["a"] != "3@2" || got["b"] != "2@1" {
		t.Fatalf("DumpDirty = %v", got)
	}

	s.ResetDirty()
	if st := s.DirtyStats(); st.Keys != 0 || st.ApproxBytes != 0 {
		t.Fatalf("post-reset dirty stats = %+v", st)
	}
	n := 0
	s.DumpDirty(func(string, []byte, txn.Version, bool) bool { n++; return true })
	if n != 0 {
		t.Fatalf("post-reset DumpDirty visited %d keys", n)
	}

	// Only the keys of the next interval are dirty; untouched keys stay
	// out even though they remain in the store.
	if err := s.ApplyBlock([]VersionedWrite{
		{Write: put("b", "9"), Version: ver(2, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.DirtyStats(); st.Keys != 1 {
		t.Fatalf("second-interval dirty keys = %d, want 1", st.Keys)
	}
}

func TestDirtyTrackingRecordsDeletesAsTombstones(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	s.EnableDirtyTracking()
	if err := s.ApplyBlock([]VersionedWrite{{Write: put("gone", "x"), Version: ver(1, 0)}}); err != nil {
		t.Fatal(err)
	}
	s.ResetDirty()
	if err := s.ApplyBlock([]VersionedWrite{{Write: txn.Write{Key: "gone", Value: nil}, Version: ver(2, 0)}}); err != nil {
		t.Fatal(err)
	}
	seen := false
	s.DumpDirty(func(key string, value []byte, _ txn.Version, live bool) bool {
		if key != "gone" {
			t.Fatalf("unexpected dirty key %s", key)
		}
		if live || value != nil {
			t.Fatalf("deleted key reported live (value %q)", value)
		}
		seen = true
		return true
	})
	if !seen {
		t.Fatal("tombstone missing from DumpDirty")
	}
}

func TestDirtyTrackingFollowsVersionCAS(t *testing.T) {
	s := New(memdb.New(), 8)
	defer s.Close()
	s.EnableDirtyTracking()
	if err := s.ApplyBlock([]VersionedWrite{{Write: put("k", "v"), Version: ver(1, 0)}}); err != nil {
		t.Fatal(err)
	}
	s.ResetDirty()
	// A failed CAS dirties nothing; a successful one dirties the key.
	if s.CompareAndSetVersion("k", ver(9, 9), ver(2, 0)) {
		t.Fatal("CAS with wrong expectation succeeded")
	}
	if st := s.DirtyStats(); st.Keys != 0 {
		t.Fatalf("failed CAS dirtied %d keys", st.Keys)
	}
	if !s.CompareAndSetVersion("k", ver(1, 0), ver(2, 0)) {
		t.Fatal("CAS failed")
	}
	if st := s.DirtyStats(); st.Keys != 1 {
		t.Fatalf("successful CAS dirtied %d keys, want 1", st.Keys)
	}
}
