package state

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"dichotomy/internal/contract"
	"dichotomy/internal/storage"
	"dichotomy/internal/txn"
)

// Store is a concurrent versioned key-value store: values live in the
// underlying storage.Engine, per-key version metadata lives in a
// lock-striped Map. It implements both contract.StateReader (GetState)
// and occ.VersionSource (CommittedVersion), so contract simulation and
// MVCC validation read it directly.
//
// Concurrency contract:
//   - Get / GetState / CommittedVersion / CompareAndSetVersion lock only
//     the key's stripe.
//   - Snapshot pins a block-boundary-consistent view for the duration of
//     a simulation: it holds the commit gate shared, which excludes
//     ApplyBlock (the only multi-key mutator) but not point reads, CAS,
//     or other snapshots. One shared lock per snapshot — not one per
//     stripe — so many concurrent simulators do not convoy with the
//     commit path.
//   - ApplyBlock takes the commit gate exclusively, then each touched
//     stripe's write lock group by group.
type Store struct {
	engine   storage.Engine
	versions *Map[txn.Version]
	// gate orders block commits against snapshots: commits hold it
	// exclusively, snapshots share it. Point operations skip it — their
	// consistency unit is the single key, guarded by its stripe.
	gate sync.RWMutex

	// dirty is the set of keys touched since the last ResetDirty — the
	// per-interval dirty set delta checkpoints serialize instead of the
	// whole store. Tracking is opt-in (EnableDirtyTracking): stores
	// without a delta checkpointer skip the bookkeeping entirely, so
	// the commit path pays nothing for a feature it doesn't use and the
	// set can't grow unbounded with nobody resetting it. When enabled,
	// ApplyBlock and CompareAndSetVersion record into it; dirtyBytes
	// accumulates an upper bound of the touched data (rewrites of the
	// same key count each time). Guarded by its own mutex so DirtyStats
	// is readable from any goroutine without touching the commit gate.
	trackDirty atomic.Bool
	dirtyMu    sync.Mutex
	dirty      map[string]struct{}
	dirtyBytes int64
}

// EnableDirtyTracking turns on dirty-key tracking. It must be called
// before the writes the next delta checkpoint is expected to cover —
// in practice before any traffic: the delta checkpointer enables it at
// construction, and recovery enables it before restoring into a fresh
// store (so the restored keys count as dirty and the first post-crash
// checkpoint is a complete chain seed). Enabling is one-way.
func (s *Store) EnableDirtyTracking() { s.trackDirty.Store(true) }

// New layers a versioned store over engine with the given stripe count
// (≤ 0 selects DefaultShards; 1 is the global-lock baseline).
func New(engine storage.Engine, shards int) *Store {
	return &Store{
		engine:   engine,
		versions: NewMap[txn.Version](shards),
		dirty:    make(map[string]struct{}),
	}
}

// Engine exposes the underlying engine (for footprint accounting).
func (s *Store) Engine() storage.Engine { return s.engine }

// Shards returns the stripe count.
func (s *Store) Shards() int { return s.versions.ShardCount() }

// Get returns the committed value and version of key, or
// storage.ErrNotFound. Value and version are read together under the
// key's stripe lock, so they are mutually consistent even against a
// concurrent block commit.
func (s *Store) Get(key string) ([]byte, txn.Version, error) {
	var (
		val []byte
		ver txn.Version
		err error
	)
	s.versions.View(key, func(v txn.Version, ok bool) {
		val, err = s.engine.Get([]byte(key))
		if ok {
			ver = v
		}
	})
	return val, ver, err
}

// GetState implements contract.StateReader.
func (s *Store) GetState(key string) ([]byte, txn.Version, error) {
	v, ver, err := s.Get(key)
	if errors.Is(err, storage.ErrNotFound) {
		return nil, txn.Version{}, contract.ErrNotFound
	}
	return v, ver, err
}

// CommittedVersion implements occ.VersionSource.
func (s *Store) CommittedVersion(key string) (txn.Version, bool) {
	return s.versions.Get(key)
}

// CompareAndSetVersion installs next as key's version iff the current
// version equals expect (the zero Version matches an absent key). A zero
// next deletes the entry. It returns whether the swap happened — the
// per-key CAS validation primitive.
func (s *Store) CompareAndSetVersion(key string, expect, next txn.Version) bool {
	swapped := false
	s.versions.Update(key, func(cur txn.Version, ok bool) (txn.Version, bool) {
		if !ok {
			cur = txn.Version{}
		}
		if cur != expect {
			return cur, ok
		}
		swapped = true
		if next == (txn.Version{}) {
			return cur, false
		}
		return next, true
	})
	if swapped && s.trackDirty.Load() {
		// A version-only change still dirties the key: a delta checkpoint
		// must carry the new version even though the value is unchanged.
		s.dirtyMu.Lock()
		s.dirty[key] = struct{}{}
		s.dirtyBytes += int64(len(key)) + versionDirtyCost
		s.dirtyMu.Unlock()
	}
	return swapped
}

// Range iterates the committed key-value pairs in engine order (a test
// and inspection surface; it observes the engine's iterator snapshot
// semantics).
func (s *Store) Range(fn func(key string, value []byte) bool) {
	it := s.engine.NewIterator(nil)
	defer it.Close()
	for it.Next() {
		if !fn(string(it.Key()), it.Value()) {
			return
		}
	}
}

// Dump iterates every committed key with its value and version while
// holding the commit gate shared, so no block commit can tear the view:
// the triples are consistent with a block boundary. Per-key CAS is not
// excluded — callers that need an exact-height snapshot (the checkpoint
// path) run Dump from the committer goroutine or a quiesced store, where
// no validation CAS is in flight. Return false from fn to stop early.
func (s *Store) Dump(fn func(key string, value []byte, ver txn.Version) bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	it := s.engine.NewIterator(nil)
	defer it.Close()
	for it.Next() {
		key := string(it.Key())
		ver, _ := s.versions.Get(key)
		if !fn(key, it.Value(), ver) {
			return
		}
	}
}

// versionDirtyCost is the per-entry bookkeeping charged to dirtyBytes on
// top of key and value length (a txn.Version plus a liveness flag — the
// fixed wire cost a delta checkpoint record carries).
const versionDirtyCost = 16

// DirtyStats summarizes the dirty set accumulated since the last
// ResetDirty: how many distinct keys a delta checkpoint would carry and
// an upper bound on their serialized size (rewrites of the same key are
// counted each time they commit, so ApproxBytes ≥ the delta file size).
type DirtyStats struct {
	Keys        int
	ApproxBytes int64
}

// DirtyStats returns the current dirty-set summary. It is cheap (two
// field reads under the dirty mutex) and safe from any goroutine.
func (s *Store) DirtyStats() DirtyStats {
	s.dirtyMu.Lock()
	defer s.dirtyMu.Unlock()
	return DirtyStats{Keys: len(s.dirty), ApproxBytes: s.dirtyBytes}
}

// DumpDirty iterates only the keys dirtied since the last ResetDirty
// (nothing unless EnableDirtyTracking preceded the writes),
// with their committed value and version, under the commit gate shared —
// the same block-boundary consistency Dump provides, at O(dirty) cost
// instead of O(store). A key that was dirtied and then deleted is
// reported with live == false (a tombstone: the delta must record the
// deletion, not skip it). Keys are visited in sorted order, so a delta
// serialized from this iteration is deterministic. Like Dump, callers
// needing an exact-height snapshot run it from the committer goroutine
// or a quiesced store. Return false from fn to stop early.
func (s *Store) DumpDirty(fn func(key string, value []byte, ver txn.Version, live bool) bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.dirtyMu.Lock()
	keys := make([]string, 0, len(s.dirty))
	for k := range s.dirty {
		keys = append(keys, k)
	}
	s.dirtyMu.Unlock()
	slices.Sort(keys)
	for _, k := range keys {
		v, err := s.engine.Get([]byte(k))
		if err != nil {
			// Deleted since it was dirtied (or unreadable, which the
			// in-memory engines only report as not-found): tombstone.
			if !fn(k, nil, txn.Version{}, false) {
				return
			}
			continue
		}
		ver, _ := s.versions.Get(k)
		if !fn(k, v, ver, true) {
			return
		}
	}
}

// ResetDirty clears the dirty set; the checkpointer calls it right after
// materializing a delta (or writing a full checkpoint, which covers
// everything), so the next interval accumulates from empty.
func (s *Store) ResetDirty() {
	s.dirtyMu.Lock()
	s.dirty = make(map[string]struct{})
	s.dirtyBytes = 0
	s.dirtyMu.Unlock()
}

// Len returns the number of live keys in the engine.
func (s *Store) Len() int { return s.engine.Len() }

// ApproxSize returns the engine's resident data size in bytes.
func (s *Store) ApproxSize() int64 { return s.engine.ApproxSize() }

// Close releases the underlying engine.
func (s *Store) Close() error { return s.engine.Close() }

// VersionedWrite couples one write with the version it installs.
type VersionedWrite struct {
	txn.Write
	Version txn.Version
}

// ApplyBlock commits a block of writes atomically: it takes the commit
// gate exclusively (excluding snapshots), groups the writes by stripe,
// acquires every touched stripe's write lock at once (ascending; the
// gate serializes commits, so multi-lock acquisition cannot deadlock),
// and flushes each group through the engine's storage.Batch fast path —
// so neither snapshots nor point readers ever observe half a block.
// Writes are applied in slice order within each stripe, so a later write
// of the same key wins. A nil Value deletes the key and its version.
//
// Error contract: a failing stripe group stops the commit, and groups
// applied before it remain committed. With the repo's in-memory engines
// an error implies the engine is closed, so no reader observes the
// partial state; a fallible engine would need an undo log here.
func (s *Store) ApplyBlock(writes []VersionedWrite) error {
	if len(writes) == 0 {
		return nil
	}
	s.gate.Lock()
	defer s.gate.Unlock()

	// Small blocks: stripe ids on the stack, grouped by rescanning the
	// write slice per stripe. Large blocks: one-pass map bucketing.
	const smallBlock = 64
	if len(writes) <= smallBlock {
		var idxArr, bufArr [smallBlock]int
		idxs := idxArr[:0]
		for _, w := range writes {
			idxs = append(idxs, s.versions.ShardOf(w.Key))
		}
		sorted := append(bufArr[:0], idxs...)
		slices.Sort(sorted)
		stripes := slices.Compact(sorted)
		s.versions.lockShards(stripes)
		defer s.versions.unlockShards(stripes)
		if len(stripes) == 1 {
			return s.applyGroup(stripes[0], writes)
		}
		group := make([]VersionedWrite, 0, len(writes))
		for _, idx := range stripes {
			group = group[:0]
			for i, w := range writes {
				if idxs[i] == idx {
					group = append(group, w)
				}
			}
			if err := s.applyGroup(idx, group); err != nil {
				return err
			}
		}
		return nil
	}

	groups := make(map[int][]VersionedWrite, 8)
	for _, w := range writes {
		idx := s.versions.ShardOf(w.Key)
		groups[idx] = append(groups[idx], w)
	}
	stripes := make([]int, 0, len(groups))
	for idx := range groups {
		stripes = append(stripes, idx)
	}
	slices.Sort(stripes)
	s.versions.lockShards(stripes)
	defer s.versions.unlockShards(stripes)
	for _, idx := range stripes {
		if err := s.applyGroup(idx, groups[idx]); err != nil {
			return err
		}
	}
	return nil
}

// applyGroup flushes one stripe's write group through the engine batch
// path and installs its version metadata; the caller holds the commit
// gate and the stripe's write lock.
func (s *Store) applyGroup(idx int, group []VersionedWrite) error {
	batch := make([]storage.Write, len(group))
	for i, w := range group {
		batch[i] = storage.Write{Key: []byte(w.Key), Value: w.Value}
	}
	if err := storage.ApplyWrites(s.engine, batch); err != nil {
		return fmt.Errorf("state: block commit (stripe %d): %w", idx, err)
	}
	m := s.versions.shardMap(idx)
	for _, w := range group {
		if w.Value == nil {
			delete(m, w.Key)
		} else {
			m[w.Key] = w.Version
		}
	}
	if s.trackDirty.Load() {
		s.dirtyMu.Lock()
		for _, w := range group {
			s.dirty[w.Key] = struct{}{}
			s.dirtyBytes += int64(len(w.Key)+len(w.Value)) + versionDirtyCost
		}
		s.dirtyMu.Unlock()
	}
	return nil
}

// Snapshot pins a block-boundary-consistent read view: the commit gate is
// held shared until Release, which excludes ApplyBlock (but not point
// reads, per-key CAS, or other snapshots) for the snapshot's lifetime.
// This is the view contract simulation and endorsement run against.
type Snapshot struct {
	s        *Store
	released bool
}

// Snapshot returns a consistent view of the store. The caller must
// Release it; reads through a released snapshot are invalid.
func (s *Store) Snapshot() *Snapshot {
	s.gate.RLock()
	return &Snapshot{s: s}
}

// Get returns the value and version of key in the snapshot.
func (sn *Snapshot) Get(key string) ([]byte, txn.Version, error) {
	// Block commits are excluded by the gate; the per-key stripe lock
	// inside Store.Get keeps the read atomic against concurrent CAS.
	return sn.s.Get(key)
}

// GetState implements contract.StateReader over the snapshot.
func (sn *Snapshot) GetState(key string) ([]byte, txn.Version, error) {
	return sn.s.GetState(key)
}

// CommittedVersion implements occ.VersionSource over the snapshot.
func (sn *Snapshot) CommittedVersion(key string) (txn.Version, bool) {
	return sn.s.CommittedVersion(key)
}

// Release unpins the snapshot. Safe to call more than once.
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	sn.s.gate.RUnlock()
}

// Block stages a block commit: writes accumulate with their versions and
// overlay reads, so order-execute systems re-executing a block see their
// own earlier writes (read-your-block-writes) before anything touches the
// store. Commit flushes the staged writes through ApplyBlock in one
// multi-stripe critical section. A Block is used by a single committer
// goroutine and is not safe for concurrent use.
type Block struct {
	s      *Store
	dirty  map[string]stagedWrite
	writes []VersionedWrite
}

type stagedWrite struct {
	value []byte
	ver   txn.Version
	del   bool
}

// NewBlock starts staging a block commit against s.
func (s *Store) NewBlock() *Block {
	return &Block{s: s, dirty: make(map[string]stagedWrite)}
}

// Stage buffers one write at the given version.
func (b *Block) Stage(w txn.Write, ver txn.Version) {
	b.writes = append(b.writes, VersionedWrite{Write: w, Version: ver})
	b.dirty[w.Key] = stagedWrite{value: w.Value, ver: ver, del: w.Value == nil}
}

// StageAll buffers a write set at the given version.
func (b *Block) StageAll(ws []txn.Write, ver txn.Version) {
	for _, w := range ws {
		b.Stage(w, ver)
	}
}

// Pending returns the number of staged writes.
func (b *Block) Pending() int { return len(b.writes) }

// GetState implements contract.StateReader: staged writes shadow the
// store, giving in-block read-your-writes.
func (b *Block) GetState(key string) ([]byte, txn.Version, error) {
	if w, ok := b.dirty[key]; ok {
		if w.del {
			return nil, txn.Version{}, contract.ErrNotFound
		}
		return w.value, w.ver, nil
	}
	return b.s.GetState(key)
}

// CommittedVersion implements occ.VersionSource with the staged overlay,
// so in-block validation sees earlier in-block writes (Fabric's serial
// block semantics).
func (b *Block) CommittedVersion(key string) (txn.Version, bool) {
	if w, ok := b.dirty[key]; ok {
		if w.del {
			return txn.Version{}, false
		}
		return w.ver, true
	}
	return b.s.CommittedVersion(key)
}

// Commit applies the staged writes through the store's grouped batch
// path. On success the block resets for reuse; on error the staged
// writes are preserved so the caller can inspect or retry (see
// ApplyBlock's error contract).
func (b *Block) Commit() error {
	if err := b.s.ApplyBlock(b.writes); err != nil {
		return err
	}
	b.writes = b.writes[:0]
	clear(b.dirty)
	return nil
}
