package contract

import (
	"errors"
	"fmt"
)

// Smallbank implements the Smallbank OLTP workload as a contract: checking
// and savings accounts with six transaction profiles. Each transaction
// touches one or two accounts and enforces balance constraints — the
// "more constraints" property the paper credits for shrinking the
// blockchain/database gap under this workload.
type Smallbank struct{}

// SmallbankName is the registry key of the Smallbank contract.
const SmallbankName = "smallbank"

// Name implements Contract.
func (Smallbank) Name() string { return SmallbankName }

// Account key layout.
func savingsKey(id []byte) string  { return "sav:" + string(id) }
func checkingKey(id []byte) string { return "chk:" + string(id) }

// Invoke implements Contract. Methods follow the OLTPBench profile set:
//
//	create_account    id initChecking initSavings
//	transact_savings  id amount      (credit savings; reject overdraft)
//	deposit_checking  id amount
//	send_payment      src dst amount (checking → checking)
//	write_check       id amount      (debit checking, may overdraft fee)
//	amalgamate        src dst        (move all funds to dst checking)
//	query             id             (read both balances)
func (Smallbank) Invoke(stub *Stub, method string, args [][]byte) error {
	switch method {
	case "create_account":
		if len(args) != 3 {
			return fmt.Errorf("smallbank: create_account wants 3 args")
		}
		stub.PutState(checkingKey(args[0]), args[1])
		stub.PutState(savingsKey(args[0]), args[2])
		return nil

	case "transact_savings":
		if len(args) != 2 {
			return fmt.Errorf("smallbank: transact_savings wants 2 args")
		}
		bal, err := readBalance(stub, savingsKey(args[0]))
		if err != nil {
			return err
		}
		amount := DecodeInt64(args[1])
		if bal+amount < 0 {
			return fmt.Errorf("%w: savings overdraft", ErrAbort)
		}
		stub.PutState(savingsKey(args[0]), EncodeInt64(bal+amount))
		return nil

	case "deposit_checking":
		if len(args) != 2 {
			return fmt.Errorf("smallbank: deposit_checking wants 2 args")
		}
		amount := DecodeInt64(args[1])
		if amount < 0 {
			return fmt.Errorf("%w: negative deposit", ErrAbort)
		}
		bal, err := readBalance(stub, checkingKey(args[0]))
		if err != nil {
			return err
		}
		stub.PutState(checkingKey(args[0]), EncodeInt64(bal+amount))
		return nil

	case "send_payment":
		if len(args) != 3 {
			return fmt.Errorf("smallbank: send_payment wants 3 args")
		}
		amount := DecodeInt64(args[2])
		if amount <= 0 {
			return fmt.Errorf("%w: non-positive payment", ErrAbort)
		}
		src, err := readBalance(stub, checkingKey(args[0]))
		if err != nil {
			return err
		}
		if src < amount {
			return fmt.Errorf("%w: insufficient funds", ErrAbort)
		}
		dst, err := readBalance(stub, checkingKey(args[1]))
		if err != nil {
			return err
		}
		stub.PutState(checkingKey(args[0]), EncodeInt64(src-amount))
		stub.PutState(checkingKey(args[1]), EncodeInt64(dst+amount))
		return nil

	case "write_check":
		if len(args) != 2 {
			return fmt.Errorf("smallbank: write_check wants 2 args")
		}
		amount := DecodeInt64(args[1])
		if amount <= 0 {
			return fmt.Errorf("%w: non-positive check", ErrAbort)
		}
		chk, err := readBalance(stub, checkingKey(args[0]))
		if err != nil {
			return err
		}
		sav, err := readBalance(stub, savingsKey(args[0]))
		if err != nil {
			return err
		}
		// Smallbank semantics: a check beyond total funds incurs a $1
		// overdraft penalty but still debits checking.
		if chk+sav < amount {
			stub.PutState(checkingKey(args[0]), EncodeInt64(chk-amount-1))
		} else {
			stub.PutState(checkingKey(args[0]), EncodeInt64(chk-amount))
		}
		return nil

	case "amalgamate":
		if len(args) != 2 {
			return fmt.Errorf("smallbank: amalgamate wants 2 args")
		}
		sav, err := readBalance(stub, savingsKey(args[0]))
		if err != nil {
			return err
		}
		chk, err := readBalance(stub, checkingKey(args[0]))
		if err != nil {
			return err
		}
		dst, err := readBalance(stub, checkingKey(args[1]))
		if err != nil {
			return err
		}
		stub.PutState(savingsKey(args[0]), EncodeInt64(0))
		stub.PutState(checkingKey(args[0]), EncodeInt64(0))
		stub.PutState(checkingKey(args[1]), EncodeInt64(dst+sav+chk))
		return nil

	case "query":
		if len(args) != 1 {
			return fmt.Errorf("smallbank: query wants 1 arg")
		}
		if _, err := readBalance(stub, savingsKey(args[0])); err != nil {
			return err
		}
		_, err := readBalance(stub, checkingKey(args[0]))
		return err

	default:
		return fmt.Errorf("smallbank: unknown method %q", method)
	}
}

// readBalance reads an account balance; a missing account aborts the
// transaction (Smallbank assumes pre-populated accounts).
func readBalance(stub *Stub, key string) (int64, error) {
	v, err := stub.GetState(key)
	if errors.Is(err, ErrNotFound) {
		return 0, fmt.Errorf("%w: missing account %s", ErrAbort, key)
	}
	if err != nil {
		return 0, err
	}
	return DecodeInt64(v), nil
}
