package contract

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// KV is the YCSB-style key-value contract: reads, writes, and
// read-modify-write over opaque records. Both blockchains deploy it for
// the YCSB experiments; the databases serve the same operations natively.
type KV struct{}

// KVName is the registry key of the KV contract.
const KVName = "kv"

// Name implements Contract.
func (KV) Name() string { return KVName }

// Invoke implements Contract. Methods:
//
//	get    key                 → reads key
//	put    key value           → writes key
//	modify key value           → read-modify-write (YCSB update)
//	multi  k1 v1 k2 v2 ...     → read-modify-write over several records
func (KV) Invoke(stub *Stub, method string, args [][]byte) error {
	switch method {
	case "get":
		if len(args) != 1 {
			return fmt.Errorf("kv: get wants 1 arg, got %d", len(args))
		}
		_, err := stub.GetState(string(args[0]))
		if errors.Is(err, ErrNotFound) {
			return nil // reading an absent key is not an error for YCSB
		}
		return err
	case "put":
		if len(args) != 2 {
			return fmt.Errorf("kv: put wants 2 args, got %d", len(args))
		}
		stub.PutState(string(args[0]), args[1])
		return nil
	case "modify":
		if len(args) != 2 {
			return fmt.Errorf("kv: modify wants 2 args, got %d", len(args))
		}
		key := string(args[0])
		if _, err := stub.GetState(key); err != nil && !errors.Is(err, ErrNotFound) {
			return err
		}
		stub.PutState(key, args[1])
		return nil
	case "multi":
		if len(args) == 0 || len(args)%2 != 0 {
			return fmt.Errorf("kv: multi wants key/value pairs, got %d args", len(args))
		}
		for i := 0; i < len(args); i += 2 {
			key := string(args[i])
			if _, err := stub.GetState(key); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			stub.PutState(key, args[i+1])
		}
		return nil
	default:
		return fmt.Errorf("kv: unknown method %q", method)
	}
}

// EncodeInt64 renders a counter value for contract arguments and state.
func EncodeInt64(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 parses a counter value; absent/short values read as zero.
func DecodeInt64(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}
