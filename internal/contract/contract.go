// Package contract implements the deterministic smart-contract engine both
// blockchain models execute. Contracts are Go functions invoked against a
// StateReader through a stub that records read and write sets — exactly the
// simulate interface Fabric chaincode sees — and the identical code path is
// replayed post-order in order-execute systems, where determinism is what
// keeps replicas consistent.
package contract

import (
	"errors"
	"fmt"

	"dichotomy/internal/txn"
)

// ErrNotFound is returned by Stub.GetState for absent keys.
var ErrNotFound = errors.New("contract: key not found")

// ErrAbort signals a business-rule rejection (e.g. insufficient funds);
// systems count such transactions as application aborts, not conflicts.
var ErrAbort = errors.New("contract: aborted by contract logic")

// StateReader is the view of committed state a contract executes against.
// Implementations return the value and the version that last wrote it.
type StateReader interface {
	GetState(key string) (value []byte, ver txn.Version, err error)
}

// Stub is the contract's handle on state during one invocation. It records
// every read (with its version) and buffers writes; nothing touches the
// store until the system decides to commit the write set.
type Stub struct {
	state  StateReader
	reads  []txn.Read
	writes map[string][]byte
	order  []string // write keys in first-write order, for determinism
}

// NewStub returns a stub over the given committed-state view.
func NewStub(state StateReader) *Stub {
	return &Stub{state: state, writes: make(map[string][]byte)}
}

// GetState reads a key, observing earlier writes in the same invocation
// (read-your-writes) and recording the read version otherwise.
func (s *Stub) GetState(key string) ([]byte, error) {
	if v, ok := s.writes[key]; ok {
		if v == nil {
			return nil, ErrNotFound
		}
		return v, nil
	}
	v, ver, err := s.state.GetState(key)
	s.reads = append(s.reads, txn.Read{Key: key, Version: ver})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// PutState buffers a write.
func (s *Stub) PutState(key string, value []byte) {
	if _, seen := s.writes[key]; !seen {
		s.order = append(s.order, key)
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.writes[key] = v
}

// DelState buffers a deletion.
func (s *Stub) DelState(key string) {
	if _, seen := s.writes[key]; !seen {
		s.order = append(s.order, key)
	}
	s.writes[key] = nil
}

// RWSet returns the recorded effect of the invocation.
func (s *Stub) RWSet() txn.RWSet {
	ws := make([]txn.Write, 0, len(s.order))
	for _, k := range s.order {
		ws = append(ws, txn.Write{Key: k, Value: s.writes[k]})
	}
	return txn.RWSet{Reads: s.reads, Writes: ws}
}

// Contract is a deterministic state-transition program.
type Contract interface {
	// Name is the registry key used in invocations.
	Name() string
	// Invoke runs method with args against the stub. It must be
	// deterministic: no time, randomness, or I/O beyond the stub.
	Invoke(stub *Stub, method string, args [][]byte) error
}

// Registry maps contract names to implementations; each node holds one.
type Registry struct {
	contracts map[string]Contract
}

// NewRegistry returns a registry preloaded with the given contracts.
func NewRegistry(contracts ...Contract) *Registry {
	r := &Registry{contracts: make(map[string]Contract)}
	for _, c := range contracts {
		r.contracts[c.Name()] = c
	}
	return r
}

// Register adds a contract; last registration wins, as in redeployment.
func (r *Registry) Register(c Contract) { r.contracts[c.Name()] = c }

// Execute runs an invocation against state and returns the read/write set.
func (r *Registry) Execute(state StateReader, inv txn.Invocation) (txn.RWSet, error) {
	c, ok := r.contracts[inv.Contract]
	if !ok {
		return txn.RWSet{}, fmt.Errorf("contract: unknown contract %q", inv.Contract)
	}
	stub := NewStub(state)
	if err := c.Invoke(stub, inv.Method, inv.Args); err != nil {
		return txn.RWSet{}, err
	}
	return stub.RWSet(), nil
}
