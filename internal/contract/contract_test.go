package contract

import (
	"errors"
	"testing"

	"dichotomy/internal/txn"
)

// mapState is a StateReader over a plain map with fixed versions.
type mapState struct {
	data map[string][]byte
	vers map[string]txn.Version
}

func newMapState() *mapState {
	return &mapState{data: map[string][]byte{}, vers: map[string]txn.Version{}}
}

func (m *mapState) GetState(key string) ([]byte, txn.Version, error) {
	v, ok := m.data[key]
	if !ok {
		return nil, txn.Version{}, ErrNotFound
	}
	return v, m.vers[key], nil
}

func (m *mapState) apply(rw txn.RWSet, ver txn.Version) {
	for _, w := range rw.Writes {
		if w.Value == nil {
			delete(m.data, w.Key)
			delete(m.vers, w.Key)
			continue
		}
		m.data[w.Key] = w.Value
		m.vers[w.Key] = ver
	}
}

func TestStubRecordsReadsWithVersions(t *testing.T) {
	st := newMapState()
	st.data["k"] = []byte("v")
	st.vers["k"] = txn.Version{BlockNum: 7, TxNum: 3}
	stub := NewStub(st)
	if _, err := stub.GetState("k"); err != nil {
		t.Fatal(err)
	}
	rw := stub.RWSet()
	if len(rw.Reads) != 1 || rw.Reads[0].Version.BlockNum != 7 {
		t.Fatalf("reads = %+v", rw.Reads)
	}
}

func TestStubReadYourWrites(t *testing.T) {
	stub := NewStub(newMapState())
	stub.PutState("k", []byte("new"))
	v, err := stub.GetState("k")
	if err != nil || string(v) != "new" {
		t.Fatalf("read-your-writes broken: %q %v", v, err)
	}
	// The buffered read must NOT add to the read set.
	if len(stub.RWSet().Reads) != 0 {
		t.Fatal("own-write read polluted the read set")
	}
}

func TestStubDeleteVisibleInTx(t *testing.T) {
	st := newMapState()
	st.data["k"] = []byte("v")
	stub := NewStub(st)
	stub.DelState("k")
	if _, err := stub.GetState("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still readable in-tx")
	}
	rw := stub.RWSet()
	if len(rw.Writes) != 1 || rw.Writes[0].Value != nil {
		t.Fatalf("writes = %+v", rw.Writes)
	}
}

func TestStubWriteOrderDeterministic(t *testing.T) {
	stub := NewStub(newMapState())
	stub.PutState("b", []byte("2"))
	stub.PutState("a", []byte("1"))
	stub.PutState("b", []byte("3")) // overwrite keeps first position
	rw := stub.RWSet()
	if rw.Writes[0].Key != "b" || rw.Writes[1].Key != "a" {
		t.Fatalf("write order = %v", rw.Writes)
	}
	if string(rw.Writes[0].Value) != "3" {
		t.Fatal("overwrite lost")
	}
}

func TestRegistryExecute(t *testing.T) {
	reg := NewRegistry(KV{})
	rw, err := reg.Execute(newMapState(), txn.Invocation{
		Contract: KVName, Method: "put", Args: [][]byte{[]byte("k"), []byte("v")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Writes) != 1 || rw.Writes[0].Key != "k" {
		t.Fatalf("writes = %+v", rw.Writes)
	}
	if _, err := reg.Execute(newMapState(), txn.Invocation{Contract: "ghost"}); err == nil {
		t.Fatal("unknown contract accepted")
	}
}

func TestKVMethods(t *testing.T) {
	st := newMapState()
	reg := NewRegistry(KV{})
	// put, then modify, then get, then multi.
	rw, err := reg.Execute(st, txn.Invocation{Contract: KVName, Method: "put", Args: [][]byte{[]byte("a"), []byte("1")}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 1})

	rw, err = reg.Execute(st, txn.Invocation{Contract: KVName, Method: "modify", Args: [][]byte{[]byte("a"), []byte("2")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Reads) != 1 || len(rw.Writes) != 1 {
		t.Fatalf("modify rwset = %+v", rw)
	}
	st.apply(rw, txn.Version{BlockNum: 2})

	rw, err = reg.Execute(st, txn.Invocation{Contract: KVName, Method: "get", Args: [][]byte{[]byte("a")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Reads) != 1 || len(rw.Writes) != 0 {
		t.Fatalf("get rwset = %+v", rw)
	}

	rw, err = reg.Execute(st, txn.Invocation{Contract: KVName, Method: "multi", Args: [][]byte{
		[]byte("x"), []byte("10"), []byte("y"), []byte("20"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Writes) != 2 {
		t.Fatalf("multi writes = %+v", rw.Writes)
	}
	// get of an absent key succeeds with an empty-version read.
	rw, err = reg.Execute(st, txn.Invocation{Contract: KVName, Method: "get", Args: [][]byte{[]byte("ghost")}})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Reads[0].Version != (txn.Version{}) {
		t.Fatal("absent read should carry zero version")
	}
}

func TestKVBadArgs(t *testing.T) {
	reg := NewRegistry(KV{})
	for _, bad := range []txn.Invocation{
		{Contract: KVName, Method: "get"},
		{Contract: KVName, Method: "put", Args: [][]byte{[]byte("k")}},
		{Contract: KVName, Method: "multi", Args: [][]byte{[]byte("k")}},
		{Contract: KVName, Method: "nosuch"},
	} {
		if _, err := reg.Execute(newMapState(), bad); err == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
}

func TestInt64Codec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if DecodeInt64(EncodeInt64(v)) != v {
			t.Fatalf("round trip failed for %d", v)
		}
	}
	if DecodeInt64(nil) != 0 || DecodeInt64([]byte{1}) != 0 {
		t.Fatal("short input should decode to zero")
	}
}

// --- Smallbank ---

func setupBank(t *testing.T) (*mapState, *Registry) {
	t.Helper()
	st := newMapState()
	reg := NewRegistry(Smallbank{})
	rw, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "create_account",
		Args: [][]byte{[]byte("acct1"), EncodeInt64(100), EncodeInt64(50)}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 1})
	rw, err = reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "create_account",
		Args: [][]byte{[]byte("acct2"), EncodeInt64(200), EncodeInt64(0)}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 1, TxNum: 1})
	return st, reg
}

func balance(t *testing.T, st *mapState, key string) int64 {
	t.Helper()
	v, _, err := st.GetState(key)
	if err != nil {
		t.Fatalf("balance %s: %v", key, err)
	}
	return DecodeInt64(v)
}

func TestSmallbankSendPayment(t *testing.T) {
	st, reg := setupBank(t)
	rw, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "send_payment",
		Args: [][]byte{[]byte("acct1"), []byte("acct2"), EncodeInt64(30)}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 2})
	if got := balance(t, st, "chk:acct1"); got != 70 {
		t.Fatalf("src = %d, want 70", got)
	}
	if got := balance(t, st, "chk:acct2"); got != 230 {
		t.Fatalf("dst = %d, want 230", got)
	}
}

func TestSmallbankInsufficientFundsAborts(t *testing.T) {
	st, reg := setupBank(t)
	_, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "send_payment",
		Args: [][]byte{[]byte("acct1"), []byte("acct2"), EncodeInt64(1000)}})
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("err = %v, want ErrAbort", err)
	}
}

func TestSmallbankSavingsOverdraftAborts(t *testing.T) {
	st, reg := setupBank(t)
	_, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "transact_savings",
		Args: [][]byte{[]byte("acct1"), EncodeInt64(-60)}}) // savings is 50
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("err = %v, want ErrAbort", err)
	}
	// A withdrawal within balance succeeds.
	rw, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "transact_savings",
		Args: [][]byte{[]byte("acct1"), EncodeInt64(-50)}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 2})
	if got := balance(t, st, "sav:acct1"); got != 0 {
		t.Fatalf("savings = %d, want 0", got)
	}
}

func TestSmallbankWriteCheckOverdraftPenalty(t *testing.T) {
	st, reg := setupBank(t)
	// acct1: chk 100, sav 50. Check of 200 > 150 total → penalty $1.
	rw, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "write_check",
		Args: [][]byte{[]byte("acct1"), EncodeInt64(200)}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 2})
	if got := balance(t, st, "chk:acct1"); got != 100-200-1 {
		t.Fatalf("checking = %d, want -101", got)
	}
}

func TestSmallbankAmalgamate(t *testing.T) {
	st, reg := setupBank(t)
	rw, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "amalgamate",
		Args: [][]byte{[]byte("acct1"), []byte("acct2")}})
	if err != nil {
		t.Fatal(err)
	}
	st.apply(rw, txn.Version{BlockNum: 2})
	if got := balance(t, st, "chk:acct2"); got != 350 {
		t.Fatalf("dst = %d, want 350", got)
	}
	if balance(t, st, "chk:acct1") != 0 || balance(t, st, "sav:acct1") != 0 {
		t.Fatal("source accounts not emptied")
	}
}

func TestSmallbankQueryTouchesBothBalances(t *testing.T) {
	st, reg := setupBank(t)
	rw, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "query",
		Args: [][]byte{[]byte("acct1")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Reads) != 2 || len(rw.Writes) != 0 {
		t.Fatalf("query rwset = %+v", rw)
	}
}

func TestSmallbankMissingAccountAborts(t *testing.T) {
	st, reg := setupBank(t)
	_, err := reg.Execute(st, txn.Invocation{Contract: SmallbankName, Method: "query",
		Args: [][]byte{[]byte("ghost")}})
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("err = %v, want ErrAbort", err)
	}
}

func TestSmallbankMoneyConservation(t *testing.T) {
	st, reg := setupBank(t)
	total := func() int64 {
		return balance(t, st, "chk:acct1") + balance(t, st, "sav:acct1") +
			balance(t, st, "chk:acct2") + balance(t, st, "sav:acct2")
	}
	before := total()
	ops := []txn.Invocation{
		{Contract: SmallbankName, Method: "send_payment", Args: [][]byte{[]byte("acct1"), []byte("acct2"), EncodeInt64(10)}},
		{Contract: SmallbankName, Method: "amalgamate", Args: [][]byte{[]byte("acct2"), []byte("acct1")}},
		{Contract: SmallbankName, Method: "send_payment", Args: [][]byte{[]byte("acct1"), []byte("acct2"), EncodeInt64(5)}},
	}
	for i, op := range ops {
		rw, err := reg.Execute(st, op)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		st.apply(rw, txn.Version{BlockNum: uint64(i + 2)})
	}
	if total() != before {
		t.Fatalf("money not conserved: %d → %d", before, total())
	}
}
