package sharding

import (
	"testing"
	"time"
)

func TestHashPartitionerCoversAllShards(t *testing.T) {
	p := HashPartitioner{N: 8}
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		s := p.Shard(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i)))
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d shards used", len(seen))
	}
}

func TestHashPartitionerDeterministic(t *testing.T) {
	p := HashPartitioner{N: 16}
	if p.Shard("key-42") != p.Shard("key-42") {
		t.Fatal("non-deterministic partitioning")
	}
}

func TestRangePartitioner(t *testing.T) {
	p := RangePartitioner{Bounds: []string{"g", "p"}}
	if p.Shards() != 3 {
		t.Fatalf("Shards = %d", p.Shards())
	}
	cases := map[string]int{"a": 0, "f": 0, "g": 1, "m": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := p.Shard(k); got != want {
			t.Errorf("Shard(%q) = %d, want %d", k, got, want)
		}
	}
}

func nodeIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFormShardsBalanced(t *testing.T) {
	a := FormShards(nodeIDs(16), 4, 0)
	for s, members := range a.Members {
		if len(members) != 4 {
			t.Fatalf("shard %d has %d members", s, len(members))
		}
	}
	// Every node assigned exactly once.
	if len(a.ShardOf) != 16 {
		t.Fatalf("ShardOf has %d entries", len(a.ShardOf))
	}
}

func TestFormShardsUnevenDivision(t *testing.T) {
	a := FormShards(nodeIDs(10), 3, 0)
	total := 0
	for _, m := range a.Members {
		if len(m) < 3 || len(m) > 4 {
			t.Fatalf("imbalanced shard: %d members", len(m))
		}
		total += len(m)
	}
	if total != 10 {
		t.Fatalf("assigned %d nodes, want 10", total)
	}
}

func TestFormShardsDeterministicPerEpoch(t *testing.T) {
	a := FormShards(nodeIDs(12), 3, 7)
	b := FormShards(nodeIDs(12), 3, 7)
	for node, s := range a.ShardOf {
		if b.ShardOf[node] != s {
			t.Fatal("same epoch produced different assignments")
		}
	}
}

func TestFormShardsChangesAcrossEpochs(t *testing.T) {
	a := FormShards(nodeIDs(32), 8, 1)
	b := FormShards(nodeIDs(32), 8, 2)
	same := 0
	for node := range a.ShardOf {
		if a.ShardOf[node] == b.ShardOf[node] {
			same++
		}
	}
	if same == 32 {
		t.Fatal("reconfiguration did not move any node")
	}
}

func TestMaxByzantineFraction(t *testing.T) {
	a := FormShards(nodeIDs(12), 3, 0)
	if f := a.MaxByzantineFraction(nil); f != 0 {
		t.Fatalf("clean network fraction = %f", f)
	}
	// Corrupt one full shard's worth of nodes spread by the beacon; the
	// fraction must reflect the worst shard.
	corrupted := map[int]bool{a.Members[0][0]: true, a.Members[0][1]: true}
	f := a.MaxByzantineFraction(corrupted)
	if f < 0.5 {
		t.Fatalf("fraction = %f, want ≥ 0.5 for 2/4 corrupted", f)
	}
}

func TestReconfigurerRotates(t *testing.T) {
	r := NewReconfigurer(nodeIDs(8), 2, 30*time.Millisecond, 10*time.Millisecond)
	first, paused := r.Current()
	if paused {
		t.Fatal("fresh reconfigurer should not be paused")
	}
	time.Sleep(40 * time.Millisecond)
	second, paused := r.Current()
	if second.Epoch == first.Epoch {
		t.Fatal("no rotation after interval")
	}
	if !paused {
		t.Fatal("rotation should pause for handoff")
	}
	time.Sleep(15 * time.Millisecond)
	if _, paused := r.Current(); paused {
		t.Fatal("pause should have ended")
	}
	if r.Rotations() < 1 {
		t.Fatal("rotation not counted")
	}
}

func TestPoWIdentity(t *testing.T) {
	nonce, attempts := SolveIdentity(42, 1, 8)
	if attempts < 1 {
		t.Fatal("no work performed")
	}
	if !VerifyIdentity(42, 1, nonce, 8) {
		t.Fatal("solution does not verify")
	}
	if VerifyIdentity(43, 1, nonce, 8) && VerifyIdentity(42, 2, nonce, 8) {
		t.Fatal("solution transplants to other node and epoch")
	}
}

func TestPoWDifficultyIncreasesWork(t *testing.T) {
	_, easy := SolveIdentity(1, 1, 4)
	_, hard := SolveIdentity(1, 1, 12)
	// Stochastic, but 8 extra bits ≈ 256× work; equal would be suspicious.
	if hard <= easy {
		t.Logf("easy=%d hard=%d attempts (stochastic, logging only)", easy, hard)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	h := identityHash(1, 1, 1)
	if got := leadingZeroBits(h); got < 0 || got > 256 {
		t.Fatalf("bits = %d", got)
	}
}
