// Package sharding implements the paper's fourth design dimension: how
// data and nodes are assigned to shards. Databases partition data for
// workload performance (hash or range partitioning, no reconfiguration
// unless the workload moves); blockchains must also partition *nodes*
// under adversarial assumptions — shard assignment must be unbiasable
// (Sybil-resistant) and refreshed periodically to resist adaptive
// attackers, which costs throughput (Fig 14's AHL-periodic line).
package sharding

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dichotomy/internal/cryptoutil"
)

// Partitioner maps keys to shard indexes.
type Partitioner interface {
	// Shard returns the shard index for key, in [0, Shards()).
	Shard(key string) int
	// Shards returns the number of shards.
	Shards() int
}

// HashPartitioner spreads keys uniformly by hash — the default scheme in
// TiKV-style stores and the only scheme available to blockchains (range
// partitioning would let an adversary aim transactions at one shard).
type HashPartitioner struct {
	N int
}

// Shard implements Partitioner.
func (p HashPartitioner) Shard(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(p.N))
}

// Shards implements Partitioner.
func (p HashPartitioner) Shards() int { return p.N }

// RangePartitioner assigns keys by sorted boundary — the locality-aware
// scheme databases offer for scan-heavy workloads. Bounds[i] is the first
// key of shard i+1; keys below Bounds[0] go to shard 0.
type RangePartitioner struct {
	Bounds []string
}

// Shard implements Partitioner.
func (p RangePartitioner) Shard(key string) int {
	return sort.SearchStrings(p.Bounds, key+"\x00")
}

// Shards implements Partitioner.
func (p RangePartitioner) Shards() int { return len(p.Bounds) + 1 }

// --- node assignment (blockchain side) ---

// Assignment maps node ids to shards.
type Assignment struct {
	// Epoch counts reconfigurations.
	Epoch uint64
	// ShardOf[node] is the shard index of each node id.
	ShardOf map[int]int
	// Members[s] lists the node ids of shard s.
	Members [][]int
}

// FormShards assigns nodes to shards using a randomness beacon (here, a
// hash chain seeded by epoch), so no node can choose or predict its shard —
// the Sybil/bias resistance requirement. Every shard receives an equal
// share ±1; with honest majority overall, a large enough shard size keeps
// each shard's Byzantine fraction below threshold with high probability.
func FormShards(nodes []int, shards int, epoch uint64) Assignment {
	if shards < 1 {
		shards = 1
	}
	// Beacon: deterministic, unpredictable-without-epoch permutation seed.
	seed := cryptoutil.HashUint64(epoch ^ 0xD1C407037)
	rng := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(seed[:8]))))
	perm := append([]int(nil), nodes...)
	sort.Ints(perm)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	a := Assignment{
		Epoch:   epoch,
		ShardOf: make(map[int]int, len(nodes)),
		Members: make([][]int, shards),
	}
	for i, node := range perm {
		s := i % shards
		a.ShardOf[node] = s
		a.Members[s] = append(a.Members[s], node)
	}
	return a
}

// MaxByzantineFraction returns the worst shard's Byzantine fraction given
// the set of corrupted node ids — the quantity shard formation must keep
// below 1/3 for PBFT shards.
func (a Assignment) MaxByzantineFraction(corrupted map[int]bool) float64 {
	worst := 0.0
	for _, members := range a.Members {
		if len(members) == 0 {
			continue
		}
		bad := 0
		for _, m := range members {
			if corrupted[m] {
				bad++
			}
		}
		if f := float64(bad) / float64(len(members)); f > worst {
			worst = f
		}
	}
	return worst
}

// Reconfigurer drives periodic shard reconfiguration — AHL's defence
// against adaptive adversaries. During a reconfiguration the shards pause
// for PauseFor (state handoff, new PBFT instances), which is the ~30%
// throughput tax Fig 14 measures.
type Reconfigurer struct {
	Interval time.Duration
	PauseFor time.Duration

	mu          sync.Mutex
	current     Assignment
	nodes       []int
	shards      int
	pausedUntil time.Time
	lastRotate  time.Time
	rotations   int
}

// NewReconfigurer starts with epoch-0 shards.
func NewReconfigurer(nodes []int, shards int, interval, pause time.Duration) *Reconfigurer {
	return &Reconfigurer{
		Interval:   interval,
		PauseFor:   pause,
		current:    FormShards(nodes, shards, 0),
		nodes:      nodes,
		shards:     shards,
		lastRotate: time.Now(),
	}
}

// Current returns the active assignment, rotating first if the interval
// elapsed. The bool reports whether the system is currently paused for
// handoff; callers must hold transactions while paused.
func (r *Reconfigurer) Current() (Assignment, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if now.Sub(r.lastRotate) >= r.Interval {
		r.current = FormShards(r.nodes, r.shards, r.current.Epoch+1)
		r.lastRotate = now
		r.pausedUntil = now.Add(r.PauseFor)
		r.rotations++
	}
	return r.current, now.Before(r.pausedUntil)
}

// Rotations reports how many reconfigurations have happened.
func (r *Reconfigurer) Rotations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotations
}

// --- PoW identity establishment (Elastico-style) ---

// SolveIdentity performs the proof-of-work that permissionless sharding
// protocols require before a node may join a shard: find a nonce whose
// hash with the epoch and node id clears the difficulty. It returns the
// nonce and the number of hash attempts (the paid cost).
func SolveIdentity(nodeID int, epoch uint64, difficultyBits int) (nonce uint64, attempts int) {
	for {
		attempts++
		h := identityHash(nodeID, epoch, nonce)
		if leadingZeroBits(h) >= difficultyBits {
			return nonce, attempts
		}
		nonce++
	}
}

// VerifyIdentity checks a claimed identity solution.
func VerifyIdentity(nodeID int, epoch uint64, nonce uint64, difficultyBits int) bool {
	return leadingZeroBits(identityHash(nodeID, epoch, nonce)) >= difficultyBits
}

func identityHash(nodeID int, epoch, nonce uint64) cryptoutil.Hash {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(nodeID))
	binary.BigEndian.PutUint64(buf[8:], epoch)
	binary.BigEndian.PutUint64(buf[16:], nonce)
	return cryptoutil.HashBytes(buf[:])
}

func leadingZeroBits(h cryptoutil.Hash) int {
	bits := 0
	for _, b := range h {
		if b == 0 {
			bits += 8
			continue
		}
		for mask := byte(0x80); mask > 0; mask >>= 1 {
			if b&mask != 0 {
				return bits
			}
			bits++
		}
	}
	return bits
}
