package bptree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dichotomy/internal/storage"
)

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

func TestPutGet(t *testing.T) {
	tr := New()
	defer tr.Close()
	for i := 0; i < 1000; i++ {
		if err := tr.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		got, err := tr.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), got, err)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	if tr.Depth() < 2 {
		t.Fatalf("Depth = %d; splits never happened", tr.Depth())
	}
}

func TestGetMissing(t *testing.T) {
	tr := New()
	defer tr.Close()
	if _, err := tr.Get([]byte("nope")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	tr := New()
	defer tr.Close()
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2"))
	got, _ := tr.Get([]byte("k"))
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("Get = %q", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	defer tr.Close()
	for i := 0; i < 500; i++ {
		tr.Put(key(i), value(i))
	}
	for i := 0; i < 500; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("deleted key %d visible", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d, want 250", tr.Len())
	}
	if err := tr.Delete([]byte("absent")); err != nil {
		t.Fatal(err)
	}
}

func TestIterationSortedComplete(t *testing.T) {
	tr := New()
	defer tr.Close()
	perm := rand.New(rand.NewSource(3)).Perm(800)
	for _, i := range perm {
		tr.Put(key(i), value(i))
	}
	it := tr.NewIterator(nil)
	defer it.Close()
	n := 0
	var prev []byte
	for it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatalf("out of order: %q after %q", it.Key(), prev)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != 800 {
		t.Fatalf("iterated %d, want 800", n)
	}
}

func TestIteratorStart(t *testing.T) {
	tr := New()
	defer tr.Close()
	for i := 0; i < 300; i++ {
		tr.Put(key(i), value(i))
	}
	it := tr.NewIterator(key(250))
	defer it.Close()
	n := 0
	first := true
	for it.Next() {
		if first && !bytes.Equal(it.Key(), key(250)) {
			t.Fatalf("first key = %q, want %q", it.Key(), key(250))
		}
		first = false
		n++
	}
	if n != 50 {
		t.Fatalf("iterated %d, want 50", n)
	}
}

func TestIteratorStartBeyondEnd(t *testing.T) {
	tr := New()
	defer tr.Close()
	tr.Put([]byte("a"), []byte("1"))
	it := tr.NewIterator([]byte("z"))
	defer it.Close()
	if it.Next() {
		t.Fatal("iterator past end yielded a key")
	}
}

func TestSnapshotIsolationOfIterator(t *testing.T) {
	tr := New()
	defer tr.Close()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), value(i))
	}
	it := tr.NewIterator(nil)
	defer it.Close()
	// Mutate heavily after iterator creation.
	for i := 100; i < 200; i++ {
		tr.Put(key(i), value(i))
	}
	for i := 0; i < 50; i++ {
		tr.Delete(key(i))
	}
	n := 0
	for it.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("snapshot iterator saw %d keys, want 100", n)
	}
}

func TestApplyBatchAtomicVisibility(t *testing.T) {
	tr := New()
	defer tr.Close()
	tr.Put([]byte("stale"), []byte("x"))
	err := tr.ApplyBatch([]storage.Write{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("stale"), Value: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if _, err := tr.Get([]byte("stale")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("batch delete ignored")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	tr := New()
	defer tr.Close()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), value(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rand.Intn(100)
				got, err := tr.Get(key(i))
				if err == nil && !bytes.HasPrefix(got, []byte("value-")) {
					t.Errorf("torn read: %q", got)
					return
				}
				it := tr.NewIterator(nil)
				for j := 0; j < 20 && it.Next(); j++ {
				}
				it.Close()
			}
		}()
	}
	for i := 100; i < 3000; i++ {
		tr.Put(key(i), value(i))
	}
	close(stop)
	wg.Wait()
}

func TestBytesAccounting(t *testing.T) {
	tr := New()
	defer tr.Close()
	tr.Put([]byte("ab"), []byte("cdef")) // 6
	if tr.ApproxSize() != 6 {
		t.Fatalf("ApproxSize = %d, want 6", tr.ApproxSize())
	}
	tr.Put([]byte("ab"), []byte("x")) // 3
	if tr.ApproxSize() != 3 {
		t.Fatalf("ApproxSize = %d, want 3", tr.ApproxSize())
	}
	tr.Delete([]byte("ab"))
	if tr.ApproxSize() != 0 {
		t.Fatalf("ApproxSize = %d, want 0", tr.ApproxSize())
	}
}

func TestClosed(t *testing.T) {
	tr := New()
	tr.Close()
	if err := tr.Put([]byte("k"), []byte("v")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Put = %v", err)
	}
	if _, err := tr.Get([]byte("k")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Get = %v", err)
	}
}

func TestModelEquivalence(t *testing.T) {
	tr := New()
	defer tr.Close()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 8000; step++ {
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		switch rng.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("v%d", step)
			model[k] = v
			tr.Put([]byte(k), []byte(v))
		case 2:
			delete(model, k)
			tr.Delete([]byte(k))
		case 3:
			got, err := tr.Get([]byte(k))
			want, ok := model[k]
			if ok && (err != nil || string(got) != want) {
				t.Fatalf("step %d: Get(%s)=%q,%v want %q", step, k, got, err, want)
			}
			if !ok && !errors.Is(err, storage.ErrNotFound) {
				t.Fatalf("step %d: Get(%s) should be not-found, got %q,%v", step, k, got, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	it := tr.NewIterator(nil)
	defer it.Close()
	seen := 0
	for it.Next() {
		if model[string(it.Key())] != string(it.Value()) {
			t.Fatalf("iterator mismatch at %q", it.Key())
		}
		seen++
	}
	if seen != len(model) {
		t.Fatalf("iterator saw %d, want %d", seen, len(model))
	}
}
