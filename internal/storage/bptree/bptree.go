// Package bptree implements a copy-on-write B+tree storage engine — the
// stand-in for BoltDB, which backs etcd in the paper. Writers clone the
// path from the root (shadow paging, exactly Bolt's design); readers pin a
// root pointer and traverse an immutable snapshot, so reads never block and
// observe a consistent tree. A single writer mutex serializes mutations,
// matching Bolt's one-writer/many-readers model.
package bptree

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"

	"dichotomy/internal/storage"
)

// order is the maximum number of children per internal node. 64 keeps nodes
// around a cache line multiple without page management.
const order = 64

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaf only
	children []*node  // internal only
}

// Tree is a copy-on-write B+tree satisfying storage.Engine.
type Tree struct {
	root    atomic.Pointer[node]
	writeMu sync.Mutex
	count   atomic.Int64
	bytes   atomic.Int64
	closed  atomic.Bool
}

var _ storage.Engine = (*Tree)(nil)
var _ storage.Batch = (*Tree)(nil)

// New returns an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root.Store(&node{leaf: true})
	return t
}

// Get implements storage.Engine.
func (t *Tree) Get(key []byte) ([]byte, error) {
	if t.closed.Load() {
		return nil, storage.ErrClosed
	}
	n := t.root.Load()
	for !n.leaf {
		i := childIndex(n, key)
		n = n.children[i]
	}
	i, ok := leafIndex(n, key)
	if !ok {
		return nil, storage.ErrNotFound
	}
	return n.vals[i], nil
}

// childIndex picks the subtree for key: the first separator > key decides.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) > 0
	})
}

func leafIndex(n *node, key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) >= 0
	})
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return i, true
	}
	return i, false
}

// Put implements storage.Engine.
func (t *Tree) Put(key, value []byte) error {
	if t.closed.Load() {
		return storage.ErrClosed
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.putLocked(key, value)
	return nil
}

func (t *Tree) putLocked(key, value []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	root := t.root.Load()
	newRoot, split, replaced, oldLen := insert(root, k, v)
	if split != nil {
		newRoot = &node{
			keys:     [][]byte{split.key},
			children: []*node{newRoot, split.right},
		}
	}
	t.root.Store(newRoot)
	if replaced {
		t.bytes.Add(int64(len(v) - oldLen))
	} else {
		t.count.Add(1)
		t.bytes.Add(int64(len(k) + len(v)))
	}
}

type splitResult struct {
	key   []byte
	right *node
}

// insert clones the path from n down to the leaf and inserts key/value.
// It returns the cloned node, an optional split, whether an existing key
// was replaced, and the replaced value's length.
func insert(n *node, key, value []byte) (*node, *splitResult, bool, int) {
	if n.leaf {
		c := cloneNode(n)
		i, found := leafIndex(c, key)
		if found {
			oldLen := len(c.vals[i])
			c.vals[i] = value
			return c, nil, true, oldLen
		}
		c.keys = insertAt(c.keys, i, key)
		c.vals = insertAt(c.vals, i, value)
		if len(c.keys) < order {
			return c, nil, false, 0
		}
		return splitLeaf(c)
	}
	i := childIndex(n, key)
	child, split, replaced, oldLen := insert(n.children[i], key, value)
	c := cloneNode(n)
	c.children[i] = child
	if split != nil {
		c.keys = insertAt(c.keys, i, split.key)
		c.children = insertAt(c.children, i+1, split.right)
		if len(c.children) > order {
			left, sr := splitInternal(c)
			return left, sr, replaced, oldLen
		}
	}
	return c, nil, replaced, oldLen
}

func splitLeaf(c *node) (*node, *splitResult, bool, int) {
	mid := len(c.keys) / 2
	right := &node{
		leaf: true,
		keys: append([][]byte(nil), c.keys[mid:]...),
		vals: append([][]byte(nil), c.vals[mid:]...),
	}
	c.keys = c.keys[:mid]
	c.vals = c.vals[:mid]
	return c, &splitResult{key: right.keys[0], right: right}, false, 0
}

func splitInternal(c *node) (*node, *splitResult) {
	mid := len(c.keys) / 2
	promote := c.keys[mid]
	right := &node{
		keys:     append([][]byte(nil), c.keys[mid+1:]...),
		children: append([]*node(nil), c.children[mid+1:]...),
	}
	c.keys = c.keys[:mid]
	c.children = c.children[:mid+1]
	return c, &splitResult{key: promote, right: right}
}

func cloneNode(n *node) *node {
	c := &node{leaf: n.leaf}
	c.keys = append([][]byte(nil), n.keys...)
	if n.leaf {
		c.vals = append([][]byte(nil), n.vals...)
	} else {
		c.children = append([]*node(nil), n.children...)
	}
	return c
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Delete implements storage.Engine. Underflowed nodes are not rebalanced;
// like Bolt, the tree tolerates sparse nodes and reclaims space on Compact.
func (t *Tree) Delete(key []byte) error {
	if t.closed.Load() {
		return storage.ErrClosed
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	root := t.root.Load()
	newRoot, removed, vlen := remove(root, key)
	if removed {
		t.root.Store(newRoot)
		t.count.Add(-1)
		t.bytes.Add(-int64(len(key) + vlen))
	}
	return nil
}

func remove(n *node, key []byte) (*node, bool, int) {
	if n.leaf {
		i, found := leafIndex(n, key)
		if !found {
			return n, false, 0
		}
		c := cloneNode(n)
		vlen := len(c.vals[i])
		c.keys = append(c.keys[:i], c.keys[i+1:]...)
		c.vals = append(c.vals[:i], c.vals[i+1:]...)
		return c, true, vlen
	}
	i := childIndex(n, key)
	child, removed, vlen := remove(n.children[i], key)
	if !removed {
		return n, false, 0
	}
	c := cloneNode(n)
	c.children[i] = child
	return c, true, vlen
}

// ApplyBatch implements storage.Batch: all writes become visible in one
// root swap, so a snapshot reader sees none or all of them.
func (t *Tree) ApplyBatch(writes []storage.Write) error {
	if t.closed.Load() {
		return storage.ErrClosed
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	for _, w := range writes {
		if w.Value == nil {
			root := t.root.Load()
			newRoot, removed, vlen := remove(root, w.Key)
			if removed {
				t.root.Store(newRoot)
				t.count.Add(-1)
				t.bytes.Add(-int64(len(w.Key) + vlen))
			}
			continue
		}
		t.putLocked(w.Key, w.Value)
	}
	return nil
}

// NewIterator implements storage.Engine. The iterator walks the snapshot of
// the tree taken at creation: concurrent writes are invisible to it.
func (t *Tree) NewIterator(start []byte) storage.Iterator {
	return &iterator{stack: descend(t.root.Load(), start)}
}

// frame tracks a position within one node during iteration.
type frame struct {
	n   *node
	idx int
}

// descend builds the stack of frames from root to the leaf containing the
// first key ≥ start.
func descend(n *node, start []byte) []frame {
	var stack []frame
	for !n.leaf {
		i := 0
		if start != nil {
			i = childIndex(n, start)
		}
		stack = append(stack, frame{n: n, idx: i})
		n = n.children[i]
	}
	i := 0
	if start != nil {
		i, _ = leafIndex(n, start)
	}
	stack = append(stack, frame{n: n, idx: i - 1})
	return stack
}

type iterator struct {
	stack []frame
	key   []byte
	val   []byte
}

// Next implements storage.Iterator.
func (it *iterator) Next() bool {
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		if top.n.leaf {
			top.idx++
			if top.idx < len(top.n.keys) {
				it.key = top.n.keys[top.idx]
				it.val = top.n.vals[top.idx]
				return true
			}
			it.stack = it.stack[:len(it.stack)-1]
			continue
		}
		top.idx++
		if top.idx < len(top.n.children) {
			child := top.n.children[top.idx]
			for !child.leaf {
				it.stack = append(it.stack, frame{n: child, idx: 0})
				child = child.children[0]
			}
			it.stack = append(it.stack, frame{n: child, idx: -1})
			continue
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	return false
}

// Key implements storage.Iterator.
func (it *iterator) Key() []byte { return it.key }

// Value implements storage.Iterator.
func (it *iterator) Value() []byte { return it.val }

// Close implements storage.Iterator.
func (it *iterator) Close() error { return nil }

// ApproxSize implements storage.Engine.
func (t *Tree) ApproxSize() int64 { return t.bytes.Load() }

// Len implements storage.Engine.
func (t *Tree) Len() int { return int(t.count.Load()) }

// Close implements storage.Engine.
func (t *Tree) Close() error {
	t.closed.Store(true)
	return nil
}

// Depth returns the tree height; tests use it to confirm splits happen.
func (t *Tree) Depth() int {
	d := 1
	n := t.root.Load()
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
