// Package memdb provides a simple sorted in-memory storage engine built on
// the skiplist. It is the reference implementation of storage.Engine used
// by unit tests and by systems whose storage layer is not under measurement.
package memdb

import (
	"sync/atomic"

	"dichotomy/internal/storage"
	"dichotomy/internal/storage/skiplist"
)

// DB is an in-memory storage engine. Safe for concurrent use.
type DB struct {
	list   *skiplist.List
	closed atomic.Bool
}

var _ storage.Engine = (*DB)(nil)
var _ storage.Batch = (*DB)(nil)

// New returns an empty engine.
func New() *DB {
	return &DB{list: skiplist.New()}
}

// Get implements storage.Engine.
func (d *DB) Get(key []byte) ([]byte, error) {
	if d.closed.Load() {
		return nil, storage.ErrClosed
	}
	v, ok := d.list.Get(key)
	if !ok {
		return nil, storage.ErrNotFound
	}
	return v, nil
}

// Put implements storage.Engine.
func (d *DB) Put(key, value []byte) error {
	if d.closed.Load() {
		return storage.ErrClosed
	}
	d.list.Put(key, value)
	return nil
}

// Delete implements storage.Engine.
func (d *DB) Delete(key []byte) error {
	if d.closed.Load() {
		return storage.ErrClosed
	}
	d.list.Delete(key)
	return nil
}

// ApplyBatch implements storage.Batch. The skiplist serializes writers, so
// the batch is atomic with respect to single-key readers; full snapshot
// isolation is not claimed by this engine.
func (d *DB) ApplyBatch(writes []storage.Write) error {
	if d.closed.Load() {
		return storage.ErrClosed
	}
	for _, w := range writes {
		if w.Value == nil {
			d.list.Delete(w.Key)
		} else {
			d.list.Put(w.Key, w.Value)
		}
	}
	return nil
}

// NewIterator implements storage.Engine.
func (d *DB) NewIterator(start []byte) storage.Iterator {
	return &iter{it: d.list.NewIterator(start)}
}

// ApproxSize implements storage.Engine.
func (d *DB) ApproxSize() int64 { return d.list.Bytes() }

// Len implements storage.Engine.
func (d *DB) Len() int { return d.list.Len() }

// Close implements storage.Engine.
func (d *DB) Close() error {
	d.closed.Store(true)
	return nil
}

type iter struct {
	it  *skiplist.Iterator
	cur skiplist.Entry
}

func (i *iter) Next() bool {
	for i.it.Next() {
		e := i.it.Item()
		if e.Tomb {
			continue
		}
		i.cur = e
		return true
	}
	return false
}

func (i *iter) Key() []byte   { return i.cur.Key }
func (i *iter) Value() []byte { return i.cur.Value }
func (i *iter) Close() error  { return nil }
