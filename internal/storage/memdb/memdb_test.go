package memdb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dichotomy/internal/storage"
)

func TestEngineContract(t *testing.T) {
	db := New()
	defer db.Close()
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("a"))
	if err != nil || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("b")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("delete did not take effect")
	}
}

func TestIteratorSkipsDeleted(t *testing.T) {
	db := New()
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	db.Delete([]byte("k3"))
	it := db.NewIterator(nil)
	defer it.Close()
	n := 0
	for it.Next() {
		if string(it.Key()) == "k3" {
			t.Fatal("iterator exposed deleted key")
		}
		n++
	}
	if n != 9 {
		t.Fatalf("iterated %d keys, want 9", n)
	}
}

func TestIteratorStart(t *testing.T) {
	db := New()
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	it := db.NewIterator([]byte("k7"))
	defer it.Close()
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != 3 || got[0] != "k7" {
		t.Fatalf("got %v", got)
	}
}

func TestBatch(t *testing.T) {
	db := New()
	defer db.Close()
	db.Put([]byte("x"), []byte("old"))
	err := db.ApplyBatch([]storage.Write{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("x"), Value: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("x")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("batch delete ignored")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
}

func TestClosed(t *testing.T) {
	db := New()
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if err := db.Delete([]byte("k")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Delete after close = %v", err)
	}
}

func TestApproxSize(t *testing.T) {
	db := New()
	defer db.Close()
	db.Put([]byte("abc"), []byte("defg"))
	if db.ApproxSize() != 7 {
		t.Fatalf("ApproxSize = %d, want 7", db.ApproxSize())
	}
}
