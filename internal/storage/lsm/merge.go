package lsm

import (
	"bytes"

	"dichotomy/internal/storage"
	"dichotomy/internal/storage/skiplist"
)

// entrySource is a positioned cursor over entries; sources earlier in the
// merge list are newer and win duplicate keys.
type entrySource interface {
	next() bool
	item() entry
}

type memSource struct {
	it  *skiplist.Iterator
	cur entry
}

func (s *memSource) next() bool {
	if !s.it.Next() {
		return false
	}
	e := s.it.Item()
	s.cur = entry{key: e.Key, value: e.Value, tomb: e.Tomb}
	return true
}

func (s *memSource) item() entry { return s.cur }

type tblSource struct {
	it *tableIter
}

func (s *tblSource) next() bool  { return s.it.next() }
func (s *tblSource) item() entry { return s.it.ent }

// mergeIterator implements storage.Iterator over a set of entry sources,
// resolving duplicates newest-first and hiding tombstones.
type mergeIterator struct {
	srcs []entrySource
	ok   []bool
	key  []byte
	val  []byte
}

func newMergeIterator(srcs []entrySource) *mergeIterator {
	m := &mergeIterator{srcs: srcs, ok: make([]bool, len(srcs))}
	for i, s := range srcs {
		m.ok[i] = s.next()
	}
	return m
}

// Next implements storage.Iterator.
func (m *mergeIterator) Next() bool {
	for {
		best := -1
		for i, s := range m.srcs {
			if !m.ok[i] {
				continue
			}
			if best == -1 || bytes.Compare(s.item().key, m.srcs[best].item().key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return false
		}
		chosen := m.srcs[best].item()
		// Advance all sources positioned on the chosen key; the winner is
		// the lowest-ranked (newest) source, which best already is because
		// ties above keep the earlier index.
		for i, s := range m.srcs {
			for m.ok[i] && bytes.Equal(s.item().key, chosen.key) {
				m.ok[i] = s.next()
			}
		}
		if chosen.tomb {
			continue
		}
		m.key = chosen.key
		m.val = chosen.value
		return true
	}
}

// Key implements storage.Iterator.
func (m *mergeIterator) Key() []byte { return m.key }

// Value implements storage.Iterator.
func (m *mergeIterator) Value() []byte { return m.val }

// Close implements storage.Iterator.
func (m *mergeIterator) Close() error { return nil }

var _ storage.Iterator = (*mergeIterator)(nil)
