package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// wal is a write-ahead log of Put/Delete records. Each record is
//
//	len u32 | crc u32 | flags u8 | klen u32 | key | value
//
// Replay stops at the first torn or corrupt record, discarding the tail —
// the standard crash-recovery contract. The paper notes databases keep such
// logs only for recovery and prune them; Sync truncates after a flush.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	len int64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriter(f), len: st.Size()}, nil
}

func (w *wal) append(key, value []byte, tomb bool) error {
	payload := make([]byte, 1+4+len(key)+len(value))
	if tomb {
		payload[0] = flagTomb
	}
	binary.BigEndian.PutUint32(payload[1:5], uint32(len(key)))
	copy(payload[5:], key)
	copy(payload[5+len(key):], value)

	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.len += int64(8 + len(payload))
	return nil
}

func (w *wal) flush() error { return w.w.Flush() }

// reset truncates the log after its contents have been made durable in an
// SSTable.
func (w *wal) reset() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	w.len = 0
	return nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL streams intact records from the log at path to fn. A missing
// file is not an error. Corrupt tails are truncated away silently.
func replayWAL(path string, fn func(key, value []byte, tomb bool)) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean end or torn header: stop
		}
		plen := binary.BigEndian.Uint32(hdr[0:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if plen < 5 || plen > 1<<30 {
			return nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn record
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // corrupt tail
		}
		tomb := payload[0]&flagTomb != 0
		klen := binary.BigEndian.Uint32(payload[1:5])
		if uint64(5+klen) > uint64(len(payload)) {
			return nil
		}
		key := payload[5 : 5+klen]
		value := payload[5+klen:]
		fn(key, value, tomb)
	}
}

func walPath(dir string) string { return filepath.Join(dir, "wal.log") }
