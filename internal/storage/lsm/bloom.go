package lsm

import (
	"encoding/binary"
	"hash/fnv"
)

// bloomFilter is a split Bloom filter with k derived hash functions, built
// once per SSTable (as LevelDB does) to let point reads skip tables that
// cannot contain a key.
type bloomFilter struct {
	bits []byte
	k    uint32
}

// newBloomFilter sizes the filter for n keys at ~10 bits per key, which
// gives a ~1% false positive rate with k=7, matching LevelDB's default.
func newBloomFilter(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * 10
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: 7}
}

func bloomHash(key []byte) (h1, h2 uint32) {
	f := fnv.New64a()
	f.Write(key)
	v := f.Sum64()
	return uint32(v), uint32(v >> 32)
}

func (b *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint32(len(b.bits) * 8)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % n
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	n := uint32(len(b.bits) * 8)
	if n == 0 {
		return true
	}
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % n
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter as k || bits.
func (b *bloomFilter) marshal() []byte {
	out := make([]byte, 4+len(b.bits))
	binary.BigEndian.PutUint32(out, b.k)
	copy(out[4:], b.bits)
	return out
}

func unmarshalBloom(data []byte) *bloomFilter {
	if len(data) < 4 {
		return &bloomFilter{bits: make([]byte, 8), k: 7}
	}
	return &bloomFilter{
		k:    binary.BigEndian.Uint32(data),
		bits: data[4:],
	}
}
