package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dichotomy/internal/storage"
)

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

// MustOpenMemory returns an in-memory DB for tests and benchmarks.
func MustOpenMemory() *DB {
	db, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return db
}

func TestPutGet(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("Get(%s): %v", key(i), err)
		}
		if !bytes.Equal(got, value(i)) {
			t.Fatalf("Get(%s) = %q, want %q", key(i), got, value(i))
		}
	}
}

func TestGetMissing(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	if _, err := db.Get([]byte("absent")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOverwrite(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	db.Put([]byte("k"), []byte("v2"))
	got, err := db.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("Get = %q, %v; want v2", got, err)
	}
}

func TestDelete(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("deleted key still visible: %v", err)
	}
	// Deleting an absent key is fine.
	if err := db.Delete([]byte("never")); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("tombstone did not shadow flushed value")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("tombstone lost after flush")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("key resurrected by compaction")
	}
}

func TestFlushAndReadBack(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	for i := 0; i < 200; i++ {
		db.Put(key(i), value(i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("after flush Get(%s) = %q, %v", key(i), got, err)
		}
	}
}

func TestCompactionTriggersAndPreservesData(t *testing.T) {
	db, err := Open(Options{MemtableBytes: 1024, L0Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), got, err)
		}
	}
	db.mu.RLock()
	l0 := len(db.l0)
	db.mu.RUnlock()
	if l0 >= 2+1 {
		t.Fatalf("L0 has %d tables; compaction never ran", l0)
	}
}

func TestNewerVersionWinsAcrossLevels(t *testing.T) {
	db, err := Open(Options{MemtableBytes: 1 << 20, L0Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("old"))
	db.Flush()
	db.Put([]byte("k"), []byte("mid"))
	db.Flush()
	db.Put([]byte("k"), []byte("new"))
	got, _ := db.Get([]byte("k"))
	if !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get = %q, want new", got)
	}
	db.Compact()
	got, _ = db.Get([]byte("k"))
	if !bytes.Equal(got, []byte("new")) {
		t.Fatalf("after compact Get = %q, want new", got)
	}
}

func TestIteratorSortedAndComplete(t *testing.T) {
	db, err := Open(Options{MemtableBytes: 2048, L0Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		db.Put(key(i), value(i))
	}
	it := db.NewIterator(nil)
	defer it.Close()
	var prev []byte
	n := 0
	for it.Next() {
		if prev != nil && bytes.Compare(it.Key(), prev) <= 0 {
			t.Fatalf("iterator out of order: %q after %q", it.Key(), prev)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != 500 {
		t.Fatalf("iterator yielded %d keys, want 500", n)
	}
}

func TestIteratorStart(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put(key(i), value(i))
	}
	db.Flush()
	it := db.NewIterator(key(90))
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("iterator from key-90 yielded %d keys, want 10", n)
	}
}

func TestIteratorHidesTombstones(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put(key(i), value(i))
	}
	db.Flush()
	for i := 0; i < 10; i += 2 {
		db.Delete(key(i))
	}
	it := db.NewIterator(nil)
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	if n != 5 {
		t.Fatalf("iterator yielded %d keys, want 5", n)
	}
}

func TestApplyBatch(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Put([]byte("gone"), []byte("x"))
	writes := []storage.Write{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("gone"), Value: nil},
	}
	if err := storage.ApplyWrites(db, writes); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get([]byte("a")); !bytes.Equal(v, []byte("1")) {
		t.Fatal("batch write a lost")
	}
	if _, err := db.Get([]byte("gone")); !errors.Is(err, storage.ErrNotFound) {
		t.Fatal("batch delete ignored")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, MemtableBytes: 4096, L0Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete(key(7))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir, MemtableBytes: 4096, L0Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 300; i++ {
		got, err := db2.Get(key(i))
		if i == 7 {
			if !errors.Is(err, storage.ErrNotFound) {
				t.Fatalf("deleted key survived reopen: %q %v", got, err)
			}
			continue
		}
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("after reopen Get(%s) = %q, %v", key(i), got, err)
		}
	}
}

func TestWALReplayWithoutFlush(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("wal-only"), []byte("survives"))
	db.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Get([]byte("wal-only"))
	if err != nil || !bytes.Equal(got, []byte("survives")) {
		t.Fatalf("wal entry lost: %q %v", got, err)
	}
}

func TestClosedOperations(t *testing.T) {
	db := MustOpenMemory()
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Put on closed = %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, storage.ErrClosed) {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestApproxSizeGrows(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	before := db.ApproxSize()
	for i := 0; i < 100; i++ {
		db.Put(key(i), make([]byte, 100))
	}
	if db.ApproxSize() <= before {
		t.Fatal("ApproxSize did not grow")
	}
}

func TestLenCountsLiveKeys(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	for i := 0; i < 20; i++ {
		db.Put(key(i), value(i))
	}
	db.Flush()
	db.Delete(key(0))
	if got := db.Len(); got != 19 {
		t.Fatalf("Len = %d, want 19", got)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Put([]byte("empty"), []byte{})
	got, err := db.Get([]byte("empty"))
	if err != nil {
		t.Fatalf("empty value not found: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %q, want empty", got)
	}
	db.Flush()
	if _, err := db.Get([]byte("empty")); err != nil {
		t.Fatalf("empty value lost after flush: %v", err)
	}
}

// TestModelEquivalence drives random operations against the LSM engine and
// a plain map, comparing results — the core property of any KV engine.
func TestModelEquivalence(t *testing.T) {
	db, err := Open(Options{MemtableBytes: 512, L0Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 5000; step++ {
		k := fmt.Sprintf("k%03d", rng.Intn(200))
		switch rng.Intn(4) {
		case 0, 1: // put
			v := fmt.Sprintf("v%d", step)
			model[k] = v
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		case 2: // delete
			delete(model, k)
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
		case 3: // get
			got, err := db.Get([]byte(k))
			want, ok := model[k]
			if ok {
				if err != nil || string(got) != want {
					t.Fatalf("step %d: Get(%s) = %q,%v want %q", step, k, got, err, want)
				}
			} else if !errors.Is(err, storage.ErrNotFound) {
				t.Fatalf("step %d: Get(%s) = %q,%v want not-found", step, k, got, err)
			}
		}
	}
	// Final sweep: everything must match, including via iterator.
	if got := db.Len(); got != len(model) {
		t.Fatalf("Len = %d, model has %d", got, len(model))
	}
	it := db.NewIterator(nil)
	defer it.Close()
	seen := 0
	for it.Next() {
		want, ok := model[string(it.Key())]
		if !ok || want != string(it.Value()) {
			t.Fatalf("iterator saw %q=%q; model %q,%v", it.Key(), it.Value(), want, ok)
		}
		seen++
	}
	if seen != len(model) {
		t.Fatalf("iterator yielded %d, model has %d", seen, len(model))
	}
}

func TestSSTableRejectsCorruption(t *testing.T) {
	raw := buildSSTable([]entry{{key: []byte("a"), value: []byte("1")}})
	if _, err := openSSTable(raw); err != nil {
		t.Fatalf("clean table rejected: %v", err)
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := openSSTable(bad); err == nil {
		t.Fatal("corrupt body accepted")
	}
	short := raw[:16]
	if _, err := openSSTable(short); err == nil {
		t.Fatal("truncated table accepted")
	}
}

func TestBloomFilterProperties(t *testing.T) {
	bf := newBloomFilter(1000)
	for i := 0; i < 1000; i++ {
		bf.add(key(i))
	}
	for i := 0; i < 1000; i++ {
		if !bf.mayContain(key(i)) {
			t.Fatalf("false negative for %s", key(i))
		}
	}
	fp := 0
	for i := 1000; i < 2000; i++ {
		if bf.mayContain(key(i)) {
			fp++
		}
	}
	if fp > 100 { // 10%; expected ~1%
		t.Fatalf("false positive rate too high: %d/1000", fp)
	}
}

func TestBloomRoundTrip(t *testing.T) {
	f := func(keys [][]byte) bool {
		bf := newBloomFilter(len(keys))
		for _, k := range keys {
			bf.add(k)
		}
		back := unmarshalBloom(bf.marshal())
		for _, k := range keys {
			if !back.mayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
