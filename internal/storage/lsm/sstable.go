package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// SSTable layout (all integers big-endian):
//
//	entries:  repeated (klen u32 | vlen u32 | flags u8 | key | value)
//	index:    repeated (klen u32 | key | offset u64)   — one per restart
//	bloom:    k u32 | bits
//	footer:   indexOff u64 | bloomOff u64 | count u64 | crc u32 | magic u32
//
// A "restart" index entry is emitted every indexInterval entries, giving a
// sparse index: point reads binary-search the index, then scan at most
// indexInterval entries. Tables are immutable after build.

const (
	ssMagic       = 0x55DA7AB1
	indexInterval = 16
	flagTomb      = 1
)

var errCorrupt = errors.New("lsm: corrupt sstable")

// entry is a key/value pair with tombstone flag inside a table or memtable
// flush.
type entry struct {
	key, value []byte
	tomb       bool
}

// buildSSTable serializes sorted entries into the table format.
func buildSSTable(entries []entry) []byte {
	var buf bytes.Buffer
	bloom := newBloomFilter(len(entries))
	type idxEnt struct {
		key []byte
		off uint64
	}
	var index []idxEnt
	var tmp [9]byte
	for i, e := range entries {
		if i%indexInterval == 0 {
			index = append(index, idxEnt{key: e.key, off: uint64(buf.Len())})
		}
		bloom.add(e.key)
		binary.BigEndian.PutUint32(tmp[0:4], uint32(len(e.key)))
		binary.BigEndian.PutUint32(tmp[4:8], uint32(len(e.value)))
		tmp[8] = 0
		if e.tomb {
			tmp[8] = flagTomb
		}
		buf.Write(tmp[:9])
		buf.Write(e.key)
		buf.Write(e.value)
	}
	indexOff := uint64(buf.Len())
	for _, ie := range index {
		binary.BigEndian.PutUint32(tmp[0:4], uint32(len(ie.key)))
		buf.Write(tmp[0:4])
		buf.Write(ie.key)
		binary.BigEndian.PutUint64(tmp[0:8], ie.off)
		buf.Write(tmp[0:8])
	}
	bloomOff := uint64(buf.Len())
	buf.Write(bloom.marshal())

	crc := crc32.ChecksumIEEE(buf.Bytes())
	var footer [32]byte
	binary.BigEndian.PutUint64(footer[0:8], indexOff)
	binary.BigEndian.PutUint64(footer[8:16], bloomOff)
	binary.BigEndian.PutUint64(footer[16:24], uint64(len(entries)))
	binary.BigEndian.PutUint32(footer[24:28], crc)
	binary.BigEndian.PutUint32(footer[28:32], ssMagic)
	buf.Write(footer[:])
	return buf.Bytes()
}

// sstable is a parsed, immutable table.
type sstable struct {
	seq      int    // file sequence number, set by the DB that owns the table
	data     []byte // entry region
	index    []indexEntry
	bloom    *bloomFilter
	count    int
	min, max []byte
}

type indexEntry struct {
	key []byte
	off uint64
}

// openSSTable parses a serialized table, verifying the checksum and magic.
func openSSTable(raw []byte) (*sstable, error) {
	if len(raw) < 32 {
		return nil, errCorrupt
	}
	footer := raw[len(raw)-32:]
	indexOff := binary.BigEndian.Uint64(footer[0:8])
	bloomOff := binary.BigEndian.Uint64(footer[8:16])
	count := binary.BigEndian.Uint64(footer[16:24])
	crc := binary.BigEndian.Uint32(footer[24:28])
	magic := binary.BigEndian.Uint32(footer[28:32])
	if magic != ssMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", errCorrupt, magic)
	}
	body := raw[:len(raw)-32]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	if indexOff > bloomOff || bloomOff > uint64(len(body)) {
		return nil, errCorrupt
	}
	t := &sstable{
		data:  body[:indexOff],
		bloom: unmarshalBloom(body[bloomOff:]),
		count: int(count),
	}
	// Parse the sparse index.
	idx := body[indexOff:bloomOff]
	for len(idx) > 0 {
		if len(idx) < 4 {
			return nil, errCorrupt
		}
		klen := binary.BigEndian.Uint32(idx)
		if uint64(len(idx)) < 4+uint64(klen)+8 {
			return nil, errCorrupt
		}
		key := idx[4 : 4+klen]
		off := binary.BigEndian.Uint64(idx[4+klen:])
		t.index = append(t.index, indexEntry{key: key, off: off})
		idx = idx[4+uint64(klen)+8:]
	}
	// Record key bounds for level placement and range pruning.
	it := t.iterate(nil)
	if it.next() {
		t.min = it.ent.key
		for {
			t.max = it.ent.key
			if !it.next() {
				break
			}
		}
	}
	return t, nil
}

// get looks the key up. found=false means the table has no verdict; a found
// tombstone returns tomb=true.
func (t *sstable) get(key []byte) (value []byte, tomb, found bool) {
	if t.count == 0 || !t.bloom.mayContain(key) {
		return nil, false, false
	}
	if t.min != nil && (bytes.Compare(key, t.min) < 0 || bytes.Compare(key, t.max) > 0) {
		return nil, false, false
	}
	// Binary search the sparse index for the last restart ≤ key.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) > 0
	}) - 1
	if i < 0 {
		return nil, false, false
	}
	it := &tableIter{t: t, off: t.index[i].off}
	for n := 0; n < indexInterval && it.next(); n++ {
		switch bytes.Compare(it.ent.key, key) {
		case 0:
			return it.ent.value, it.ent.tomb, true
		case 1:
			return nil, false, false
		}
	}
	return nil, false, false
}

// iterate returns an iterator positioned before the first key ≥ start.
func (t *sstable) iterate(start []byte) *tableIter {
	it := &tableIter{t: t}
	if start == nil || len(t.index) == 0 {
		return it
	}
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, start) > 0
	}) - 1
	if i < 0 {
		return it
	}
	it.off = t.index[i].off
	// Advance until positioned just before the first key ≥ start.
	for {
		save := it.off
		if !it.next() {
			it.off = save
			return it
		}
		if bytes.Compare(it.ent.key, start) >= 0 {
			it.off = save
			return it
		}
	}
}

type tableIter struct {
	t   *sstable
	off uint64
	ent entry
}

func (it *tableIter) next() bool {
	data := it.t.data
	if it.off+9 > uint64(len(data)) {
		return false
	}
	klen := binary.BigEndian.Uint32(data[it.off:])
	vlen := binary.BigEndian.Uint32(data[it.off+4:])
	flags := data[it.off+8]
	start := it.off + 9
	end := start + uint64(klen) + uint64(vlen)
	if end > uint64(len(data)) {
		return false
	}
	it.ent = entry{
		key:   data[start : start+uint64(klen)],
		value: data[start+uint64(klen) : end],
		tomb:  flags&flagTomb != 0,
	}
	it.off = end
	return true
}
