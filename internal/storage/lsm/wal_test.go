package lsm

import (
	"os"
	"path/filepath"
	"testing"
)

// walRecords replays the log at path and collects what survives.
func walRecords(t *testing.T, path string) []string {
	t.Helper()
	var got []string
	err := replayWAL(path, func(key, value []byte, tomb bool) {
		if tomb {
			got = append(got, "-"+string(key))
		} else {
			got = append(got, string(key)+"="+string(value))
		}
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func writeWAL(t *testing.T, path string, entries ...[3]string) {
	t.Helper()
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		tomb := e[2] == "tomb"
		var value []byte
		if !tomb {
			value = []byte(e[1])
		}
		if err := w.append([]byte(e[0]), value, tomb); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayZeroLengthFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := walRecords(t, path); len(got) != 0 {
		t.Fatalf("zero-length wal replayed %v", got)
	}
}

func TestReplayMissingFileIsNotAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never-written.log")
	if got := walRecords(t, path); len(got) != 0 {
		t.Fatalf("missing wal replayed %v", got)
	}
}

func TestReplayTruncatedFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeWAL(t, path, [3]string{"a", "1", ""}, [3]string{"b", "2", ""}, [3]string{"c", "3", ""})
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Shear bytes off the tail one at a time until the last record's
	// header is gone: every truncation point must drop exactly the torn
	// record and keep the intact prefix.
	full := walRecords(t, path)
	if len(full) != 3 {
		t.Fatalf("full replay %v", full)
	}
	for cut := int64(1); cut <= 10; cut++ {
		if err := os.Truncate(path, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		got := walRecords(t, path)
		if len(got) != 2 || got[0] != "a=1" || got[1] != "b=2" {
			t.Fatalf("truncated by %d: replayed %v, want intact prefix [a=1 b=2]", cut, got)
		}
	}
}

func TestReplayCorruptMiddleRecordStopsAtIt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeWAL(t, path, [3]string{"a", "1", ""}, [3]string{"b", "2", ""}, [3]string{"c", "3", ""})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record. Record layout: 8-byte
	// header + 5-byte meta + 1-byte key + 1-byte value = 15 bytes each;
	// offset 15+8+5 lands in record b's key.
	data[15+8+5] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := walRecords(t, path)
	if len(got) != 1 || got[0] != "a=1" {
		t.Fatalf("corrupt middle: replayed %v, want [a=1] (stop at first bad crc)", got)
	}
}

func TestReplayAfterReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("old1"), []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("old2"), []byte("y"), false); err != nil {
		t.Fatal(err)
	}
	// reset models a memtable flush: the log truncates and new appends
	// start from a clean file.
	if err := w.reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("new"), []byte("z"), false); err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("gone"), nil, true); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got := walRecords(t, path)
	if len(got) != 2 || got[0] != "new=z" || got[1] != "-gone" {
		t.Fatalf("replay after reset %v, want [new=z -gone]", got)
	}
	// A reset to empty followed by crash (no appends) replays nothing.
	w2, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.reset(); err != nil {
		t.Fatal(err)
	}
	if err := w2.close(); err != nil {
		t.Fatal(err)
	}
	if got := walRecords(t, path); len(got) != 0 {
		t.Fatalf("post-reset wal replayed %v", got)
	}
}

// TestDBRecoversThroughWALAndTruncation exercises the whole engine path:
// a disk-backed DB whose process dies with a torn final WAL record must
// reopen with every intact write and without the torn one.
func TestDBRecoversThroughWALAndTruncation(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.wal.flush(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record (a crash mid-write); drop the file's final byte.
	info, err := os.Stat(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath(dir), info.Size()-1); err != nil {
		t.Fatal(err)
	}
	// Abandon db without Close — the crash — and reopen.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k1")); err != nil || string(v) != "v1" {
		t.Fatalf("k1 after recovery: %q, %v", v, err)
	}
	if _, err := db2.Get([]byte("k2")); err == nil {
		t.Fatal("torn record k2 survived recovery")
	}
}
