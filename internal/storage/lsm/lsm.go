// Package lsm implements a log-structured merge tree storage engine — the
// stand-in for LevelDB/RocksDB, which back Quorum, Fabric, and TiKV in the
// paper. It provides a write-ahead log, a skiplist memtable, immutable
// SSTables with sparse indexes and Bloom filters, and tiered compaction.
//
// With Options.Dir set, SSTables and the WAL live on disk and the engine
// recovers its state on reopen. With Dir empty the engine is purely
// in-memory (tables are still built and compacted — the CPU cost structure
// is identical) which is what the benchmark harness uses.
package lsm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"dichotomy/internal/storage"
	"dichotomy/internal/storage/skiplist"
)

// Options configures a DB.
type Options struct {
	// Dir is the storage directory. Empty means in-memory operation: no
	// WAL, tables held as byte slices.
	Dir string
	// MemtableBytes is the flush threshold. Default 4 MiB.
	MemtableBytes int64
	// L0Limit is the number of level-0 tables that triggers compaction
	// into level 1. Default 4.
	L0Limit int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemtableBytes <= 0 {
		out.MemtableBytes = 4 << 20
	}
	if out.L0Limit <= 0 {
		out.L0Limit = 4
	}
	return out
}

// DB is an LSM-tree storage engine. Safe for concurrent use.
type DB struct {
	opt Options

	mu     sync.RWMutex
	mem    *skiplist.List
	l0     []*sstable // newest first
	l1     *sstable   // fully-compacted base level; may be nil
	wal    *wal
	seq    int
	closed bool
}

var _ storage.Engine = (*DB)(nil)
var _ storage.Batch = (*DB)(nil)

// Open creates or recovers a DB.
func Open(opt Options) (*DB, error) {
	db := &DB{opt: opt.withDefaults(), mem: skiplist.New()}
	if db.opt.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(db.opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	if err := db.loadManifest(); err != nil {
		return nil, err
	}
	// Replay the WAL into a fresh memtable, then reopen it for appends.
	err := replayWAL(walPath(db.opt.Dir), func(key, value []byte, tomb bool) {
		if tomb {
			db.mem.Delete(key)
		} else {
			db.mem.Put(key, value)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("lsm: wal replay: %w", err)
	}
	w, err := openWAL(walPath(db.opt.Dir))
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

// Get implements storage.Engine. It consults the memtable, then level-0
// tables newest-first, then the base level; the first verdict (value or
// tombstone) wins.
func (d *DB) Get(key []byte) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, storage.ErrClosed
	}
	if v, tomb, found := d.mem.GetEntry(key); found {
		if tomb {
			return nil, storage.ErrNotFound
		}
		return v, nil
	}
	for _, t := range d.l0 {
		if v, tomb, found := t.get(key); found {
			if tomb {
				return nil, storage.ErrNotFound
			}
			return v, nil
		}
	}
	if d.l1 != nil {
		if v, tomb, found := d.l1.get(key); found {
			if tomb {
				return nil, storage.ErrNotFound
			}
			return v, nil
		}
	}
	return nil, storage.ErrNotFound
}

// Put implements storage.Engine.
func (d *DB) Put(key, value []byte) error {
	if value == nil {
		value = []byte{}
	}
	return d.write(key, value, false)
}

// Delete implements storage.Engine.
func (d *DB) Delete(key []byte) error {
	return d.write(key, nil, true)
}

func (d *DB) write(key, value []byte, tomb bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return storage.ErrClosed
	}
	if d.wal != nil {
		if err := d.wal.append(key, value, tomb); err != nil {
			return fmt.Errorf("lsm: wal append: %w", err)
		}
	}
	if tomb {
		d.mem.Delete(key)
	} else {
		d.mem.Put(key, value)
	}
	if d.mem.Bytes() >= d.opt.MemtableBytes {
		return d.flushLocked()
	}
	return nil
}

// ApplyBatch implements storage.Batch: all writes land under one lock
// acquisition, so readers see either none or all of them relative to the
// flush boundary.
func (d *DB) ApplyBatch(writes []storage.Write) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return storage.ErrClosed
	}
	for _, w := range writes {
		tomb := w.Value == nil
		if d.wal != nil {
			if err := d.wal.append(w.Key, w.Value, tomb); err != nil {
				return err
			}
		}
		if tomb {
			d.mem.Delete(w.Key)
		} else {
			d.mem.Put(w.Key, w.Value)
		}
	}
	if d.mem.Bytes() >= d.opt.MemtableBytes {
		return d.flushLocked()
	}
	return nil
}

// Flush forces the memtable into a level-0 table. Exposed for tests and for
// the storage-cost experiment, which measures on-disk layout.
func (d *DB) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return storage.ErrClosed
	}
	return d.flushLocked()
}

func (d *DB) flushLocked() error {
	if d.mem.Len() == 0 && !hasTombs(d.mem) {
		return nil
	}
	var entries []entry
	it := d.mem.NewIterator(nil)
	for it.Next() {
		e := it.Item()
		entries = append(entries, entry{key: e.Key, value: e.Value, tomb: e.Tomb})
	}
	if len(entries) == 0 {
		return nil
	}
	raw := buildSSTable(entries)
	t, err := openSSTable(raw)
	if err != nil {
		return fmt.Errorf("lsm: flush: %w", err)
	}
	t.seq = d.seq
	if d.opt.Dir != "" {
		if err := d.writeTable(raw, d.seq); err != nil {
			return err
		}
	}
	d.seq++
	d.l0 = append([]*sstable{t}, d.l0...)
	d.mem = skiplist.New()
	if d.wal != nil {
		if err := d.wal.reset(); err != nil {
			return err
		}
	}
	if len(d.l0) >= d.opt.L0Limit {
		if err := d.compactLocked(); err != nil {
			return err
		}
	}
	return d.saveManifest()
}

func hasTombs(l *skiplist.List) bool {
	it := l.NewIterator(nil)
	for it.Next() {
		if it.Item().Tomb {
			return true
		}
	}
	return false
}

// Compact merges every table into a single base-level table, dropping
// shadowed versions and, at the base level, tombstones.
func (d *DB) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return storage.ErrClosed
	}
	if err := d.compactLocked(); err != nil {
		return err
	}
	return d.saveManifest()
}

func (d *DB) compactLocked() error {
	sources := make([]*tableIter, 0, len(d.l0)+1)
	for _, t := range d.l0 {
		sources = append(sources, t.iterate(nil))
	}
	if d.l1 != nil {
		sources = append(sources, d.l1.iterate(nil))
	}
	if len(sources) == 0 {
		return nil
	}
	merged := mergeTables(sources)
	// The base level has nothing underneath it, so tombstones can drop.
	live := merged[:0]
	for _, e := range merged {
		if !e.tomb {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		d.removeObsoleteFiles()
		d.l0 = nil
		d.l1 = nil
		return nil
	}
	raw := buildSSTable(live)
	t, err := openSSTable(raw)
	if err != nil {
		return fmt.Errorf("lsm: compact: %w", err)
	}
	t.seq = d.seq
	if d.opt.Dir != "" {
		if err := d.writeTable(raw, d.seq); err != nil {
			return err
		}
	}
	d.seq++
	d.removeObsoleteFiles()
	d.l0 = nil
	d.l1 = t
	return nil
}

// mergeTables merges iterators where sources[0] is newest: on duplicate
// keys the earliest source wins.
func mergeTables(sources []*tableIter) []entry {
	type cursor struct {
		it   *tableIter
		rank int
		ok   bool
	}
	curs := make([]*cursor, len(sources))
	for i, it := range sources {
		c := &cursor{it: it, rank: i}
		c.ok = it.next()
		curs[i] = c
	}
	var out []entry
	for {
		var best *cursor
		for _, c := range curs {
			if !c.ok {
				continue
			}
			if best == nil {
				best = c
				continue
			}
			cmp := bytes.Compare(c.it.ent.key, best.it.ent.key)
			if cmp < 0 || (cmp == 0 && c.rank < best.rank) {
				best = c
			}
		}
		if best == nil {
			return out
		}
		key := best.it.ent.key
		out = append(out, best.it.ent)
		// Advance every cursor sitting on the chosen key.
		for _, c := range curs {
			for c.ok && bytes.Equal(c.it.ent.key, key) {
				c.ok = c.it.next()
			}
		}
	}
}

// NewIterator implements storage.Engine. The iterator merges the memtable
// and all tables, hiding tombstones. It holds a snapshot of the table list;
// memtable mutations during iteration may or may not be observed.
func (d *DB) NewIterator(start []byte) storage.Iterator {
	d.mu.RLock()
	defer d.mu.RUnlock()
	srcs := make([]entrySource, 0, len(d.l0)+2)
	srcs = append(srcs, &memSource{it: d.mem.NewIterator(start)})
	for _, t := range d.l0 {
		srcs = append(srcs, &tblSource{it: t.iterate(start)})
	}
	if d.l1 != nil {
		srcs = append(srcs, &tblSource{it: d.l1.iterate(start)})
	}
	return newMergeIterator(srcs)
}

// ApproxSize implements storage.Engine.
func (d *DB) ApproxSize() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	size := d.mem.Bytes()
	for _, t := range d.l0 {
		size += int64(len(t.data))
	}
	if d.l1 != nil {
		size += int64(len(d.l1.data))
	}
	return size
}

// Len implements storage.Engine. It is exact only after Compact; between
// compactions shadowed versions in upper levels are estimated away by a
// full merge count, which is acceptable for its diagnostic role.
func (d *DB) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	it := d.newIteratorLocked()
	n := 0
	for it.Next() {
		n++
	}
	return n
}

func (d *DB) newIteratorLocked() storage.Iterator {
	srcs := make([]entrySource, 0, len(d.l0)+2)
	srcs = append(srcs, &memSource{it: d.mem.NewIterator(nil)})
	for _, t := range d.l0 {
		srcs = append(srcs, &tblSource{it: t.iterate(nil)})
	}
	if d.l1 != nil {
		srcs = append(srcs, &tblSource{it: d.l1.iterate(nil)})
	}
	return newMergeIterator(srcs)
}

// Close implements storage.Engine.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.wal != nil {
		return d.wal.close()
	}
	return nil
}

// --- persistence ---

func tablePath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("sst-%08d.sst", seq))
}

func (d *DB) writeTable(raw []byte, seq int) error {
	path := tablePath(d.opt.Dir, seq)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// removeObsoleteFiles deletes the files of every table currently in the
// tree; callers invoke it right before replacing the tree with a compacted
// table.
func (d *DB) removeObsoleteFiles() {
	if d.opt.Dir == "" {
		return
	}
	for _, t := range d.l0 {
		os.Remove(tablePath(d.opt.Dir, t.seq))
	}
	if d.l1 != nil {
		os.Remove(tablePath(d.opt.Dir, d.l1.seq))
	}
}

// saveManifest records the live table sequence numbers — L0 newest first,
// base level last. Written atomically via rename.
func (d *DB) saveManifest() error {
	if d.opt.Dir == "" {
		return nil
	}
	var sb strings.Builder
	for _, t := range d.l0 {
		fmt.Fprintf(&sb, "l0 %d\n", t.seq)
	}
	if d.l1 != nil {
		fmt.Fprintf(&sb, "l1 %d\n", d.l1.seq)
	}
	tmp := filepath.Join(d.opt.Dir, "MANIFEST.tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(d.opt.Dir, "MANIFEST"))
}

func (d *DB) loadManifest() error {
	data, err := os.ReadFile(filepath.Join(d.opt.Dir, "MANIFEST"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var level string
		var seq int
		if _, err := fmt.Sscanf(line, "%s %d", &level, &seq); err != nil {
			return fmt.Errorf("lsm: bad manifest entry %q", line)
		}
		raw, err := os.ReadFile(tablePath(d.opt.Dir, seq))
		if err != nil {
			return fmt.Errorf("lsm: load table %d: %w", seq, err)
		}
		t, err := openSSTable(raw)
		if err != nil {
			return fmt.Errorf("lsm: table %d: %w", seq, err)
		}
		t.seq = seq
		switch level {
		case "l0":
			d.l0 = append(d.l0, t)
		case "l1":
			d.l1 = t
		default:
			return fmt.Errorf("lsm: bad manifest level %q", level)
		}
		if seq >= d.seq {
			d.seq = seq + 1
		}
	}
	return nil
}
