// Package storage defines the key-value engine contract shared by every
// system in the repository, mirroring the paper's storage dimension: the
// blockchains run over an LSM engine (LevelDB/RocksDB in Fabric, Quorum and
// TiKV) while etcd runs over a copy-on-write B+tree (BoltDB). Both engine
// families live in subpackages and satisfy the Engine interface defined
// here, so systems can be assembled with either.
package storage

import (
	"errors"
	"fmt"
)

// ErrNotFound is returned by Get when the key has never been written or was
// deleted.
var ErrNotFound = errors.New("storage: key not found")

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("storage: engine closed")

// Engine is an ordered key-value store. Implementations must be safe for
// concurrent use by multiple goroutines.
type Engine interface {
	// Get returns the value stored under key, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte) error
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key []byte) error
	// NewIterator returns an iterator positioned before the first key that
	// is ≥ start. If start is nil, iteration begins at the first key. The
	// iterator observes a snapshot taken at creation time where the engine
	// supports it; at minimum it must never observe a torn write.
	NewIterator(start []byte) Iterator
	// ApproxSize returns the engine's approximate resident data size in
	// bytes; the storage experiments (Fig 12) read it.
	ApproxSize() int64
	// Len returns the number of live keys.
	Len() int
	// Close releases resources. Operations after Close return ErrClosed.
	Close() error
}

// Iterator walks keys in ascending byte order.
type Iterator interface {
	// Next advances to the next entry and reports whether one exists.
	Next() bool
	// Key returns the current key. The slice is only valid until the next
	// call to Next.
	Key() []byte
	// Value returns the current value, valid until the next call to Next.
	Value() []byte
	// Close releases the iterator.
	Close() error
}

// Batch is an optional interface engines may implement to apply a set of
// writes atomically; the block-commit paths use it when present.
type Batch interface {
	// ApplyBatch applies all writes (value == nil means delete) atomically.
	ApplyBatch(writes []Write) error
}

// Write is one entry of a batch. A nil Value deletes the key.
type Write struct {
	Key   []byte
	Value []byte
}

// ApplyWrites applies a batch through the Batch fast path when the engine
// provides one, falling back to individual operations. The fallback stops
// at the first failed write and returns an error naming its key, so a
// partial apply is never silently reported as success.
func ApplyWrites(e Engine, writes []Write) error {
	if b, ok := e.(Batch); ok {
		return b.ApplyBatch(writes)
	}
	for _, w := range writes {
		var err error
		if w.Value == nil {
			err = e.Delete(w.Key)
		} else {
			err = e.Put(w.Key, w.Value)
		}
		if err != nil {
			return fmt.Errorf("storage: apply write %q: %w", w.Key, err)
		}
	}
	return nil
}
