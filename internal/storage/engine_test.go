package storage

import (
	"errors"
	"strings"
	"testing"
)

// flakyEngine fails writes to a designated key and records the operations
// it received. It deliberately does not implement Batch, exercising
// ApplyWrites' fallback path.
type flakyEngine struct {
	failKey string
	applied []string
}

var errInjected = errors.New("injected failure")

func (e *flakyEngine) Get(key []byte) ([]byte, error) { return nil, ErrNotFound }

func (e *flakyEngine) Put(key, value []byte) error {
	if string(key) == e.failKey {
		return errInjected
	}
	e.applied = append(e.applied, string(key))
	return nil
}

func (e *flakyEngine) Delete(key []byte) error {
	if string(key) == e.failKey {
		return errInjected
	}
	e.applied = append(e.applied, string(key))
	return nil
}

func (e *flakyEngine) NewIterator(start []byte) Iterator { return nil }
func (e *flakyEngine) ApproxSize() int64                 { return 0 }
func (e *flakyEngine) Len() int                          { return len(e.applied) }
func (e *flakyEngine) Close() error                      { return nil }

func TestApplyWritesFallbackStopsAtFirstFailure(t *testing.T) {
	e := &flakyEngine{failKey: "bad"}
	err := ApplyWrites(e, []Write{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("bad"), Value: []byte("2")},
		{Key: []byte("c"), Value: nil}, // must never be attempted
	})
	if err == nil {
		t.Fatal("partial apply reported success")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("cause not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("error does not name the failed key: %v", err)
	}
	if len(e.applied) != 1 || e.applied[0] != "a" {
		t.Fatalf("writes after the failure were applied: %v", e.applied)
	}
}

func TestApplyWritesFallbackAppliesAll(t *testing.T) {
	e := &flakyEngine{}
	err := ApplyWrites(e, []Write{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.applied) != 2 {
		t.Fatalf("applied %v", e.applied)
	}
}
