package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	l := New()
	l.Put([]byte("a"), []byte("1"))
	v, ok := l.Get([]byte("a"))
	if !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := l.Get([]byte("b")); ok {
		t.Fatal("absent key found")
	}
}

func TestOverwriteKeepsLen(t *testing.T) {
	l := New()
	l.Put([]byte("k"), []byte("v1"))
	l.Put([]byte("k"), []byte("v2"))
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	v, _ := l.Get([]byte("k"))
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("Get = %q, want v2", v)
	}
}

func TestDeleteTombstone(t *testing.T) {
	l := New()
	l.Put([]byte("k"), []byte("v"))
	l.Delete([]byte("k"))
	if _, ok := l.Get([]byte("k")); ok {
		t.Fatal("deleted key visible through Get")
	}
	_, tomb, found := l.GetEntry([]byte("k"))
	if !found || !tomb {
		t.Fatalf("GetEntry tomb=%v found=%v, want true,true", tomb, found)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
}

func TestDeleteThenPutResurrects(t *testing.T) {
	l := New()
	l.Put([]byte("k"), []byte("v1"))
	l.Delete([]byte("k"))
	l.Put([]byte("k"), []byte("v2"))
	v, ok := l.Get([]byte("k"))
	if !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("Get = %q,%v, want v2", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestDeleteAbsentKeyCreatesTombstone(t *testing.T) {
	l := New()
	l.Delete([]byte("ghost"))
	_, tomb, found := l.GetEntry([]byte("ghost"))
	if !found || !tomb {
		t.Fatal("tombstone for never-written key missing")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
}

func TestIterationSorted(t *testing.T) {
	l := New()
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", rng.Intn(10000))
		l.Put([]byte(keys[i]), []byte("v"))
	}
	uniq := map[string]bool{}
	for _, k := range keys {
		uniq[k] = true
	}
	it := l.NewIterator(nil)
	var got []string
	for it.Next() {
		got = append(got, string(it.Item().Key))
	}
	if len(got) != len(uniq) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(uniq))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("iteration not sorted")
	}
}

func TestIteratorStart(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	it := l.NewIterator([]byte("k05"))
	var got []string
	for it.Next() {
		got = append(got, string(it.Item().Key))
	}
	if len(got) != 5 || got[0] != "k05" {
		t.Fatalf("got %v, want k05..k09", got)
	}
}

func TestIteratorStartBetweenKeys(t *testing.T) {
	l := New()
	l.Put([]byte("a"), []byte("1"))
	l.Put([]byte("c"), []byte("3"))
	it := l.NewIterator([]byte("b"))
	if !it.Next() || string(it.Item().Key) != "c" {
		t.Fatal("start between keys should land on next key")
	}
}

func TestValueCopiedOnInsert(t *testing.T) {
	l := New()
	v := []byte("mutable")
	l.Put([]byte("k"), v)
	v[0] = 'X'
	got, _ := l.Get([]byte("k"))
	if got[0] == 'X' {
		t.Fatal("list aliases caller's value slice")
	}
}

func TestBytesAccounting(t *testing.T) {
	l := New()
	l.Put([]byte("kk"), []byte("vvvv"))
	if l.Bytes() != 6 {
		t.Fatalf("Bytes = %d, want 6", l.Bytes())
	}
	l.Put([]byte("kk"), []byte("v"))
	if l.Bytes() != 3 {
		t.Fatalf("Bytes after overwrite = %d, want 3", l.Bytes())
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	l := New()
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			l.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				l.Get([]byte(fmt.Sprintf("k%05d", i%100)))
				it := l.NewIterator(nil)
				for j := 0; j < 10 && it.Next(); j++ {
				}
			}
		}()
	}
	wg.Wait()
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
}

func TestConcurrentWriters(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Put([]byte(fmt.Sprintf("w%d-k%d", w, i)), []byte("v"))
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 8*500 {
		t.Fatalf("Len = %d, want 4000", l.Len())
	}
}

func TestQuickModelMatch(t *testing.T) {
	type op struct {
		Key byte
		Del bool
	}
	f := func(ops []op) bool {
		l := New()
		model := map[string]bool{}
		for i, o := range ops {
			k := []byte{o.Key}
			if o.Del {
				l.Delete(k)
				delete(model, string(k))
			} else {
				l.Put(k, []byte{byte(i)})
				model[string(k)] = true
			}
		}
		for k := range model {
			if _, ok := l.Get([]byte(k)); !ok {
				return false
			}
		}
		return l.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
