// Package skiplist implements a concurrent ordered map used as the LSM
// memtable and as a standalone performance-oriented index. The design
// follows the parallel skip list (PSL) idea the paper cites for
// hardware-conscious database indexes: reads are lock-free (atomic pointer
// loads), writes take a single short mutex, and the probabilistic level
// structure keeps expected O(log n) search without rebalancing.
package skiplist

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
)

const maxLevel = 24

// List is a concurrent skip list from []byte keys to []byte values. The
// zero value is not usable; call New.
type List struct {
	head   *node
	level  atomic.Int32
	length atomic.Int64
	bytes  atomic.Int64

	writeMu sync.Mutex
	rng     *rand.Rand
}

type node struct {
	key   []byte
	value atomic.Pointer[[]byte]
	// tombstone marks logically deleted entries; the LSM layer needs
	// deletions to shadow older SSTable versions rather than disappear.
	tomb atomic.Bool
	next [maxLevel]atomic.Pointer[node]
}

// New returns an empty list.
func New() *List {
	l := &List{
		head: &node{},
		rng:  rand.New(rand.NewSource(0x5EED)),
	}
	l.level.Store(1)
	return l
}

// Len returns the number of live (non-tombstone) entries.
func (l *List) Len() int { return int(l.length.Load()) }

// Bytes returns the approximate resident size of keys and values.
func (l *List) Bytes() int64 { return l.bytes.Load() }

func (l *List) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findGE returns the first node with key ≥ key, along with the predecessor
// at every level (only filled when preds != nil).
func (l *List) findGE(key []byte, preds *[maxLevel]*node) *node {
	x := l.head
	for i := int(l.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || bytes.Compare(nxt.key, key) >= 0 {
				break
			}
			x = nxt
		}
		if preds != nil {
			preds[i] = x
		}
	}
	return x.next[0].Load()
}

// Get returns the value for key and whether it exists. Tombstoned keys
// report !ok but found=true via GetEntry; plain Get treats them as absent.
func (l *List) Get(key []byte) (value []byte, ok bool) {
	v, tomb, found := l.GetEntry(key)
	if !found || tomb {
		return nil, false
	}
	return v, true
}

// GetEntry returns the stored value, its tombstone flag, and whether the key
// is present at all. The LSM read path needs the three-way distinction:
// a tombstone must stop the search through older levels.
func (l *List) GetEntry(key []byte) (value []byte, tomb, found bool) {
	n := l.findGE(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false, false
	}
	vp := n.value.Load()
	if vp != nil {
		value = *vp
	}
	return value, n.tomb.Load(), true
}

// Put inserts or replaces the value for key.
func (l *List) Put(key, value []byte) {
	l.set(key, value, false)
}

// Delete inserts a tombstone for key. The entry still occupies the list so
// iterators and the LSM flush can observe the deletion.
func (l *List) Delete(key []byte) {
	l.set(key, nil, true)
}

func (l *List) set(key, value []byte, tomb bool) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()

	var preds [maxLevel]*node
	// Fill every level's predecessor: levels above the current height use
	// head.
	for i := range preds {
		preds[i] = l.head
	}
	n := l.findGE(key, &preds)
	if n != nil && bytes.Equal(n.key, key) {
		old := n.value.Load()
		wasTomb := n.tomb.Load()
		v := make([]byte, len(value))
		copy(v, value)
		n.value.Store(&v)
		n.tomb.Store(tomb)
		var delta int64
		if old != nil {
			delta -= int64(len(*old))
		}
		delta += int64(len(v))
		l.bytes.Add(delta)
		switch {
		case wasTomb && !tomb:
			l.length.Add(1)
		case !wasTomb && tomb:
			l.length.Add(-1)
		}
		return
	}

	lvl := l.randomLevel()
	if cur := int(l.level.Load()); lvl > cur {
		l.level.Store(int32(lvl))
	}
	k := make([]byte, len(key))
	copy(k, key)
	v := make([]byte, len(value))
	copy(v, value)
	nn := &node{key: k}
	nn.value.Store(&v)
	nn.tomb.Store(tomb)
	// Link bottom-up so concurrent readers never see a node reachable at a
	// high level but missing below.
	for i := 0; i < lvl; i++ {
		nn.next[i].Store(preds[i].next[i].Load())
	}
	for i := 0; i < lvl; i++ {
		preds[i].next[i].Store(nn)
	}
	l.bytes.Add(int64(len(k) + len(v)))
	if !tomb {
		l.length.Add(1)
	}
}

// Entry is one element yielded by an iterator, including the tombstone flag
// so the LSM merge can propagate deletions.
type Entry struct {
	Key, Value []byte
	Tomb       bool
}

// Iterator walks entries in ascending key order. It tolerates concurrent
// inserts (it may or may not observe them) and never blocks writers.
type Iterator struct {
	cur *node
}

// NewIterator returns an iterator positioned before the first key ≥ start
// (or before the first key when start is nil).
func (l *List) NewIterator(start []byte) *Iterator {
	if start == nil {
		return &Iterator{cur: l.head}
	}
	// Position at the node *before* the first ≥ start; findGE gives the
	// target, so walk predecessors manually.
	x := l.head
	for i := int(l.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || bytes.Compare(nxt.key, start) >= 0 {
				break
			}
			x = nxt
		}
	}
	return &Iterator{cur: x}
}

// Next advances and reports whether an entry is available.
func (it *Iterator) Next() bool {
	if it.cur == nil {
		return false
	}
	it.cur = it.cur.next[0].Load()
	return it.cur != nil
}

// Item returns the current entry. Valid only after Next returned true.
func (it *Iterator) Item() Entry {
	vp := it.cur.value.Load()
	var v []byte
	if vp != nil {
		v = *vp
	}
	return Entry{Key: it.cur.key, Value: v, Tomb: it.cur.tomb.Load()}
}
