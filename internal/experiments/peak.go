package experiments

import (
	"io"

	"dichotomy/internal/bench"
	"dichotomy/internal/cryptoutil"
	"dichotomy/internal/system"
	"dichotomy/internal/system/quorum"
	"dichotomy/internal/workload/smallbank"
	"dichotomy/internal/workload/ycsb"
)

// builder assembles one system under test; a constructor failure is
// reported as a row rather than panicking the sweep.
type builder func() (system.System, error)

// fig4Systems builds the five systems of the peak-performance comparison.
func fig4Systems(sc Scale, client *cryptoutil.Signer) []builder {
	return []builder{
		func() (system.System, error) { return BuildFabric(sc.Nodes, client) },
		func() (system.System, error) { return BuildQuorum(sc.Nodes, quorum.Raft, client) },
		func() (system.System, error) { return BuildTiDB(3, 3), nil },
		func() (system.System, error) { return BuildEtcd(3), nil },
		func() (system.System, error) { return TiKV{C: BuildTiDB(3, 3)}, nil },
	}
}

// Fig4 reproduces "Throughput of YCSB workload": peak tps for fabric,
// quorum, tidb, etcd, and standalone tikv under uniform update-only and
// query-only workloads.
func Fig4(w io.Writer, sc Scale) {
	Header(w, "Fig 4: YCSB peak throughput (update / query), uniform, 1KB records")
	Row(w, "system", "update-tps", "query-tps")
	client := Client()
	cfg := ycsb.Config{Records: sc.Records, RecordSize: 1000}

	for _, build := range fig4Systems(sc, client) {
		sys, err := build()
		if err != nil {
			Row(w, "-", "build-error", err.Error())
			continue
		}
		if err := PreloadYCSB(sys, cfg, client); err != nil {
			Row(w, sys.Name(), "preload-error", err.Error())
			sys.Close()
			continue
		}
		update := RunYCSB(sys, cfg, sc, 0, client)
		queryCfg := cfg
		queryCfg.ReadFraction = 1
		query := RunYCSB(sys, queryCfg, sc, 0, client)
		Row(w, sys.Name(), update.TPS, query.TPS)
		sys.Close()
	}
}

// Fig5 reproduces "Latency of YCSB workload": unsaturated latency (single
// closed-loop client) for the same systems and workloads, with the P99
// tail alongside the paper's means.
func Fig5(w io.Writer, sc Scale) {
	Header(w, "Fig 5: YCSB latency, unsaturated (update / query)")
	Row(w, "system", "update-mean", "update-p99", "query-mean", "query-p99")
	client := Client()
	cfg := ycsb.Config{Records: sc.Records, RecordSize: 1000}
	for _, build := range fig4Systems(sc, client) {
		sys, err := build()
		if err != nil {
			continue
		}
		if err := PreloadYCSB(sys, cfg, client); err != nil {
			sys.Close()
			continue
		}
		update := RunYCSB(sys, cfg, sc, 1, client)
		queryCfg := cfg
		queryCfg.ReadFraction = 1
		query := RunYCSB(sys, queryCfg, sc, 1, client)
		Row(w, sys.Name(), update.Latency.Mean, update.Latency.P99,
			query.Latency.Mean, query.Latency.P99)
		sys.Close()
	}
}

// Peak sweeps offered load against each system with the open-loop driver:
// the closed-loop saturation throughput calibrates a set of target rates
// (fractions of peak), and each rate reports delivered tps, service
// latency, and queueing delay separately — the latency-vs-offered-load
// curve a closed-loop harness structurally cannot produce (arrivals keep
// coming when the system slows down, so overload shows up as queueing).
func Peak(w io.Writer, sc Scale, fracs []float64) {
	Header(w, "Peak: open-loop latency vs offered load (Poisson arrivals)")
	Row(w, "system", "frac", "rate", "tps", "svc-p50", "svc-p99", "queue-p50", "queue-p99")
	if len(fracs) == 0 {
		fracs = []float64{0.5, 0.9, 1.2}
	}
	client := Client()
	cfg := ycsb.Config{Records: sc.Records, RecordSize: 1000}
	builds := []builder{
		func() (system.System, error) { return BuildQuorum(sc.Nodes, quorum.Raft, client) },
		func() (system.System, error) { return BuildEtcd(3), nil },
	}
	for _, build := range builds {
		sys, err := build()
		if err != nil {
			Row(w, "-", "build-error", err.Error())
			continue
		}
		if err := PreloadYCSB(sys, cfg, client); err != nil {
			Row(w, sys.Name(), "preload-error", err.Error())
			sys.Close()
			continue
		}
		peak := RunYCSB(sys, cfg, sc, 0, client).TPS
		if peak <= 0 {
			Row(w, sys.Name(), "no-peak")
			sys.Close()
			continue
		}
		for _, frac := range fracs {
			rate := peak * frac
			r := RunYCSBOpenLoop(sys, cfg, sc, 0, rate, client)
			Row(w, sys.Name(), frac, rate, r.TPS,
				r.Latency.P50, r.Latency.P99,
				r.QueueDelay.P50, r.QueueDelay.P99)
		}
		sys.Close()
	}
}

// RunSmallbank drives the Smallbank mix against sys.
func RunSmallbank(sys system.System, cfg smallbank.Config, sc Scale, client *cryptoutil.Signer) bench.Report {
	sources := make([]bench.TxSource, sc.Workers)
	for i := range sources {
		c := cfg
		c.Seed = int64(i + 1)
		gen := smallbank.NewGenerator(c, client)
		sources[i] = bench.FuncSource(gen.Next)
	}
	return bench.Run(sys, sources, BenchOptions(sc, sc.Workers))
}

// Fig6 reproduces "Throughput of the skewed Smallbank workload": fabric,
// quorum, and tidb under θ=1 account selection. etcd is excluded, as in
// the paper, because it lacks general transactions.
func Fig6(w io.Writer, sc Scale) {
	Header(w, "Fig 6: Smallbank throughput, zipfian θ=1")
	Row(w, "system", "tps", "abort%")
	client := Client()
	sbCfg := smallbank.Config{Accounts: sc.Accounts, Theta: 1}

	builds := []builder{
		func() (system.System, error) { return BuildFabric(sc.Nodes, client) },
		func() (system.System, error) { return BuildQuorum(sc.Nodes, quorum.Raft, client) },
		func() (system.System, error) { return BuildTiDB(3, 3), nil },
	}
	for _, build := range builds {
		sys, err := build()
		if err != nil {
			Row(w, "-", "build-error", err.Error())
			continue
		}
		load, err := sbCfg.LoadTxs(client)
		if err == nil {
			err = bench.Preload(sys, load, 16)
		}
		if err != nil {
			Row(w, sys.Name(), "preload-error", err.Error())
			sys.Close()
			continue
		}
		r := RunSmallbank(sys, sbCfg, sc, client)
		Row(w, sys.Name(), r.TPS, r.AbortRate())
		sys.Close()
	}
}
